#!/usr/bin/env bash
# Tier-1 verification plus a sanitizer pass.
#
#   scripts/check.sh          # plain build + full test suite
#   scripts/check.sh --asan   # additionally build/test with ASan + UBSan
#
# The sanitizer build lives in build-asan/ so it never disturbs the
# regular build tree (benchmarks must not run instrumented).

set -euo pipefail
cd "$(dirname "$0")/.."

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

echo "== tier-1: default build =="
run_suite build

echo "== tier-1: forced-scalar crypto backend =="
BOLTED_FORCE_SCALAR=1 ctest --test-dir build --output-on-failure \
  -j "$(nproc)" -R "crypto_test|determinism_test"

if [[ "${1:-}" == "--asan" ]]; then
  echo "== sanitizers: ASan + UBSan =="
  run_suite build-asan -DBOLTED_SANITIZE=ON
fi

echo "All checks passed."
