#!/usr/bin/env bash
# Tier-1 verification plus optional sanitizer and bench-smoke passes.
#
#   scripts/check.sh          # plain build + full test suite
#   scripts/check.sh --asan   # additionally build/test with ASan + UBSan
#   scripts/check.sh --tsan   # additionally build/run the sharding suite under TSan
#   scripts/check.sh --bench  # additionally smoke-run the JSON bench runners
#   scripts/check.sh --scenario  # additionally run the full 16-seed scenario soak
#
# Flags combine (e.g. `scripts/check.sh --asan --bench`).  The sanitizer
# builds live in build-asan/ and build-tsan/ so they never disturb the
# regular build tree (benchmarks must not run instrumented).

set -euo pipefail
cd "$(dirname "$0")/.."

want_asan=0
want_tsan=0
want_bench=0
want_scenario=0
for arg in "$@"; do
  case "${arg}" in
    --asan) want_asan=1 ;;
    --tsan) want_tsan=1 ;;
    --bench) want_bench=1 ;;
    --scenario) want_scenario=1 ;;
    *)
      echo "unknown flag: ${arg}" >&2
      exit 2
      ;;
  esac
done

run_suite() {
  local build_dir="$1"
  shift
  cmake -B "${build_dir}" -S . "$@"
  cmake --build "${build_dir}" -j
  ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)"
}

echo "== tier-1: default build =="
run_suite build

echo "== tier-1: forced-scalar crypto backend =="
BOLTED_FORCE_SCALAR=1 ctest --test-dir build --output-on-failure \
  -j "$(nproc)" -R "crypto_test|determinism_test"

echo "== tier-1: observability suite (ctest -L obs) =="
ctest --test-dir build --output-on-failure -L obs

echo "== tier-1: batched attestation suite (ctest -L attestation) =="
ctest --test-dir build --output-on-failure -L attestation

echo "== tier-1: sharded-runtime suite (ctest -L sharding) =="
ctest --test-dir build --output-on-failure -L sharding

# The -L argument is a regex, so "scenario" selects both the scenario_test
# suite and the 16-seed scenario_soak sweep (incl. the 1024-node sharded
# acceptance run).
echo "== tier-1: scenario suite + soak (ctest -L scenario) =="
ctest --test-dir build --output-on-failure -L scenario

# Merkle tamper/rollback matrix, seeded fuzz-vs-oracle battery, the
# crypt+merkle crash-point sweep, and the chunk-distribution protocol tests.
echo "== tier-1: storage-integrity suite (ctest -L storage-integrity) =="
ctest --test-dir build --output-on-failure -L storage-integrity

# Burst fast-path battery: flow-cache invalidation matrix, burst-vs-generic
# digest parity under faults and topology churn, InjectFrame metric
# reconciliation, and the deterministic pcap capture suite.  (The -L regex
# also matches net_test's discovered entries — all the better.)
echo "== tier-1: switch fast-path + pcap suite (ctest -L net) =="
ctest --test-dir build --output-on-failure -L net

if [[ "${want_asan}" == 1 ]]; then
  echo "== sanitizers: ASan + UBSan =="
  run_suite build-asan -DBOLTED_SANITIZE=ON
  # The P-256 table build, joint verify ladders, and batch inversion only
  # execute under real curve traffic; drive them (and the fleet polling
  # loop that exercises the prepared-AIK cache) instrumented.
  echo "== sanitizers: crypto + attestation benches under ASan =="
  ./build-asan/bench/bench_crypto_json /tmp/bolted_asan_bench_crypto.json
  # 128 nodes: enough to exercise every code path; 4096 instrumented
  # nodes would dominate the whole check run.
  ./build-asan/bench/fleet_attestation --nodes=128 \
    /tmp/bolted_asan_bench_attestation.json
  # The obs exporters shuffle strings and trace-event vectors; run the
  # registry + span machinery (and a traced provisioning flow) instrumented.
  echo "== sanitizers: observability suite under ASan =="
  ctest --test-dir build-asan --output-on-failure -L obs
  # The batch verifier's bisection, square-root recovery, and worker-pool
  # scatter paths all juggle raw spans and index vectors; run them
  # instrumented too.
  echo "== sanitizers: batched attestation suite under ASan =="
  ctest --test-dir build-asan --output-on-failure -L attestation
  # The scenario runner drives every subsystem at once (coroutines, fault
  # injector, Keylime pipeline, sniffer) over long horizons, so it is a
  # good ASan workload; 4 seeds keep the instrumented run tractable.
  echo "== sanitizers: scenario soak under ASan (4 seeds) =="
  ./build-asan/tests/scenario_soak_test --seeds=4
  # The Merkle device and chunk caches juggle raw sector buffers, an LRU
  # of hash nodes, and parked RPC fetchers; the tamper matrix and fuzz
  # battery must fail closed under instrumentation too.
  echo "== sanitizers: storage-integrity suite under ASan =="
  ctest --test-dir build-asan --output-on-failure -L storage-integrity
  # The burst engine juggles a flight arena + freelist, ring-batched
  # deliveries, and pooled MessageBoxes; the pcap writer assembles frames
  # in a reused scratch buffer.  Both must stay clean instrumented.
  echo "== sanitizers: switch fast-path + pcap suite under ASan =="
  ctest --test-dir build-asan --output-on-failure -L net
fi

if [[ "${want_tsan}" == 1 ]]; then
  echo "== sanitizers: sharded-runtime suite under TSan =="
  # TSan is the sanitizer that matters for the sharded runtime: the SPSC
  # rings, barrier phases, and worker pool are the only cross-thread code
  # in the tree, and the sharding suite drives all of them (plus a
  # multi-threaded fleet_sharding sweep for the window loop at scale).
  cmake -B build-tsan -S . -DBOLTED_SANITIZE=thread
  cmake --build build-tsan -j --target sharding_test fleet_sharding \
    net_fastpath_test scenario_soak_test
  ./build-tsan/tests/sharding_test
  # The burst engine runs inside the sharded workers (per-rack Networks,
  # uplink ingress via InjectFrame); the fast-path suite's sharded cases
  # are the TSan workload for it.
  ./build-tsan/tests/net_fastpath_test
  ./build-tsan/bench/fleet_sharding --nodes=512 --horizon-ms=1 \
    /tmp/bolted_tsan_bench_sharding.json
  # The sharded scenario model layers lifecycle state on the same rings and
  # barriers; --sharded-only skips the single-threaded oracle sweep and
  # runs just the threaded 1024-node acceptance scenario.
  ./build-tsan/tests/scenario_soak_test --sharded-only
fi

if [[ "${want_bench}" == 1 ]]; then
  echo "== bench smoke: ctest -L bench_smoke (uninstrumented build) =="
  ctest --test-dir build --output-on-failure -L bench_smoke
  echo "== bench regression guard: full-scale runs vs committed baselines =="
  # Fresh full-scale runs (4096-node fleets, 2M-op scheduler workloads),
  # then a >25% host-time comparison against the committed BENCH_*.json
  # baselines.  Regenerate baselines by copying build/bench output to the
  # repo root when a change legitimately moves the numbers.
  ./build/bench/bench_sim_json build/bench/BENCH_sim.fresh.json
  ./build/bench/switch_saturation build/bench/BENCH_net.fresh.json
  ./build/bench/fleet_attestation build/bench/BENCH_attestation.fresh.json
  ./build/bench/fleet_provisioning build/bench/BENCH_provisioning.fresh.json
  ./build/bench/fleet_sharding build/bench/BENCH_sharding.fresh.json
  ./build/bench/fleet_scenario build/bench/BENCH_scenario.fresh.json
  python3 scripts/bench_guard.py \
    BENCH_sim.json build/bench/BENCH_sim.fresh.json \
    BENCH_net.json build/bench/BENCH_net.fresh.json \
    BENCH_attestation.json build/bench/BENCH_attestation.fresh.json \
    BENCH_provisioning.json build/bench/BENCH_provisioning.fresh.json \
    BENCH_sharding.json build/bench/BENCH_sharding.fresh.json \
    BENCH_scenario.json build/bench/BENCH_scenario.fresh.json
fi

if [[ "${want_scenario}" == 1 ]]; then
  # The plain tier-1 pass above already ran the scenario label through
  # ctest; this flag re-runs the soak binary directly with verbose seed
  # output, which is the handy form when bisecting a failing seed.
  echo "== scenario: 16-seed soak + 1024-node sharded acceptance =="
  ./build/tests/scenario_soak_test
fi

echo "All checks passed."
