#!/usr/bin/env bash
# Produce a chrome://tracing / Perfetto-loadable trace of the Fig. 4
# provisioning flow and sanity-check it.
#
#   scripts/trace.sh [out.json]     # default: build/fig4_trace.json
#
# Builds the default tree if needed, runs `fig4_provisioning --trace=...`,
# and verifies the output parses as JSON (python3 when available, a shape
# grep otherwise).  Load the file at chrome://tracing or ui.perfetto.dev.

set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-build/fig4_trace.json}"

cmake -B build -S . > /dev/null
cmake --build build -j --target fig4_provisioning > /dev/null

./build/bench/fig4_provisioning --trace="${out}"

if [[ ! -s "${out}" ]]; then
  echo "trace file ${out} is missing or empty" >&2
  exit 1
fi

if command -v python3 > /dev/null 2>&1; then
  python3 - "${out}" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
spans = [e for e in events if e.get("ph") == "X"]
if not spans:
    sys.exit("trace parsed but contains no complete spans")
print(f"ok: {len(events)} events ({len(spans)} spans) parse as JSON")
EOF
else
  grep -q '"traceEvents"' "${out}" && grep -q '"ph":"X"' "${out}" || {
    echo "trace file ${out} does not look like a chrome trace" >&2
    exit 1
  }
  echo "ok: trace has the expected shape (python3 unavailable for a full parse)"
fi

echo "wrote ${out} — open it at chrome://tracing or https://ui.perfetto.dev"
