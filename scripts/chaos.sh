#!/usr/bin/env bash
# Seed-replayable chaos suite (DESIGN.md §8).
#
#   scripts/chaos.sh             # the full 32-seed CI sweep
#   scripts/chaos.sh 4000029     # replay one seed (the repro line a
#                                # failing sweep prints)
#   scripts/chaos.sh 1 2 3       # any ad-hoc seed list
#
# Every seed runs the scenario twice and asserts identical event-trace
# digests, so a failure seen here is reproducible bit-for-bit from the
# printed seed.

set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j --target chaos_test

args=()
for seed in "$@"; do
  args+=("--seed=${seed}")
done

exec ./build/tests/chaos_test "${args[@]+"${args[@]}"}"
