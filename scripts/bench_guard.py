#!/usr/bin/env python3
"""Bench regression guard: fresh host-time numbers vs committed baselines.

Usage: bench_guard.py BASELINE FRESH [BASELINE FRESH ...]

Each argument pair names a committed baseline JSON at the repo root and a
freshly generated JSON from the same bench binary.  Every key containing
"wall_ms" is compared, along with throughput keys ending in
"ns_per_event" (lower is better) or "events_per_second" (higher is
better); a fresh value more than 25% worse than the baseline fails the
guard.  Cold-start keys (first_round_*, build_*) are skipped — they
measure one-off setup, not the steady state the guard protects.

Documents from the sharding sweep additionally carry speedup keys
("sharding_speedup_shards4"): on hosts with at least 4 cores the guard
requires >= 3x events/second at 4 shards vs the single-shard oracle.
The bar is gated on the fresh run's "host_cores" — parallel speedup is
not a meaningful demand on a 1- or 2-core machine, where the sweep still
runs for its digest cross-check.

Baselines are regenerated manually (on the machine that committed them),
so the comparison is same-host: 25% of headroom absorbs normal jitter
while still catching a real frame-path or scheduler regression.
"""

import json
import sys

THRESHOLD = 1.25
SKIP_PREFIXES = ("first_round", "build_")
# Key suffixes where a HIGHER fresh value is an improvement, not a
# regression: the guard inverts the ratio so >1.25 always means
# "25% worse".
HIGHER_IS_BETTER = ("events_per_second",)
# Minimum parallel speedup at 4 shards, enforced only when the fresh run's
# host has at least MIN_CORES_FOR_SPEEDUP cores.
SPEEDUP_KEY = "sharding_speedup_shards4"
MIN_SPEEDUP = 3.0
MIN_CORES_FOR_SPEEDUP = 4


def wall_keys(doc):
    return {
        key: value
        for key, value in doc.items()
        if ("wall_ms" in key
            or key.endswith(("ns_per_event", "events_per_second")))
        and not key.startswith(SKIP_PREFIXES)
        and isinstance(value, (int, float))
    }


def check_speedup(fresh_path, fresh, failures):
    """Core-gated floor on the 4-shard parallel speedup."""
    if SPEEDUP_KEY not in fresh:
        return
    cores = fresh.get("host_cores", 0)
    speedup = fresh[SPEEDUP_KEY]
    if cores < MIN_CORES_FOR_SPEEDUP:
        print(f"  skip {fresh_path}:{SPEEDUP_KEY}: {speedup:.2f}x "
              f"(host has {cores} cores, floor needs >= "
              f"{MIN_CORES_FOR_SPEEDUP})")
        return
    status = "FAIL" if speedup < MIN_SPEEDUP else "ok"
    print(f"  {status:4} {fresh_path}:{SPEEDUP_KEY}: {speedup:.2f}x "
          f"(floor {MIN_SPEEDUP}x on {cores} cores)")
    if speedup < MIN_SPEEDUP:
        failures.append(
            f"{fresh_path}:{SPEEDUP_KEY} {speedup:.2f}x below "
            f"{MIN_SPEEDUP}x floor")


def main(argv):
    if len(argv) < 2 or len(argv) % 2 != 0:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    failures = []
    for i in range(0, len(argv), 2):
        baseline_path, fresh_path = argv[i], argv[i + 1]
        try:
            with open(baseline_path) as f:
                baseline = json.load(f)
        except FileNotFoundError:
            print(f"  {baseline_path}: no committed baseline, skipping")
            continue
        with open(fresh_path) as f:
            fresh = json.load(f)

        base_keys = wall_keys(baseline)
        fresh_keys = wall_keys(fresh)
        for key, base_value in sorted(base_keys.items()):
            if key not in fresh_keys or base_value <= 0 or fresh_keys[key] <= 0:
                continue
            if key.endswith(HIGHER_IS_BETTER):
                ratio = base_value / fresh_keys[key]
            else:
                ratio = fresh_keys[key] / base_value
            status = "FAIL" if ratio > THRESHOLD else "ok"
            print(f"  {status:4} {baseline_path}:{key}: "
                  f"{base_value:.1f} -> {fresh_keys[key]:.1f} ({ratio:.2f}x)")
            if ratio > THRESHOLD:
                failures.append(f"{baseline_path}:{key} regressed {ratio:.2f}x")
        check_speedup(fresh_path, fresh, failures)

    if failures:
        print("bench regression guard FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench regression guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
