#!/usr/bin/env python3
"""Bench regression guard: fresh host-time numbers vs committed baselines.

Usage: bench_guard.py BASELINE FRESH [BASELINE FRESH ...]

Each argument pair names a committed baseline JSON at the repo root and a
freshly generated JSON from the same bench binary.  Every key containing
"wall_ms" is compared, along with throughput keys ending in
"ns_per_event"/"ns_per_frame" (lower is better) or
"events_per_second"/"frames_per_second" (higher is better); a fresh
value more than 25% worse than the baseline fails the guard.  Cold-start
keys (first_round_*, build_*) are skipped — they measure one-off setup,
not the steady state the guard protects.

Some documents additionally carry speedup keys with absolute floors:

  sharding_speedup_shards4       >= 3x, gated on host_cores >= 4 (parallel
                                 speedup is meaningless on a 1-2 core box,
                                 where the sweep still runs for its digest
                                 cross-check);
  saturation_burst_speedup       >= 2x, ungated — burst vs generic
  net_pingpong_burst_speedup     forwarding on the same single-threaded
  net_mixed_burst_speedup        sim, so core count is irrelevant.

The burst floors are the PR acceptance bar for the switch fast path: if
the flight engine ever stops being at least twice the coroutine-per-frame
oracle, the guard (and the bench binaries themselves) fail.

Baselines are regenerated manually (on the machine that committed them),
so the comparison is same-host: 25% of headroom absorbs normal jitter
while still catching a real frame-path or scheduler regression.
"""

import json
import sys

THRESHOLD = 1.25
SKIP_PREFIXES = ("first_round", "build_")
# Key suffixes where a HIGHER fresh value is an improvement, not a
# regression: the guard inverts the ratio so >1.25 always means
# "25% worse".
HIGHER_IS_BETTER = ("events_per_second", "frames_per_second")
LOWER_IS_BETTER = ("ns_per_event", "ns_per_frame")
# Absolute speedup floors: key -> (floor, min host cores to enforce, or 0
# for always).  The sharding floor measures parallel scaling, so it only
# binds on hosts with enough cores; the burst floors compare two
# forwarding paths on the same single-threaded sim, so they always bind.
SPEEDUP_FLOORS = {
    "sharding_speedup_shards4": (3.0, 4),
    "saturation_burst_speedup": (2.0, 0),
    "net_pingpong_burst_speedup": (2.0, 0),
    "net_mixed_burst_speedup": (2.0, 0),
}


def wall_keys(doc):
    return {
        key: value
        for key, value in doc.items()
        if ("wall_ms" in key
            or key.endswith(HIGHER_IS_BETTER + LOWER_IS_BETTER))
        and not key.startswith(SKIP_PREFIXES)
        and isinstance(value, (int, float))
    }


def check_speedups(fresh_path, fresh, failures):
    """Absolute floors on speedup keys (some core-gated)."""
    for key, (floor, min_cores) in SPEEDUP_FLOORS.items():
        if key not in fresh:
            continue
        cores = fresh.get("host_cores", 0)
        speedup = fresh[key]
        if cores < min_cores:
            print(f"  skip {fresh_path}:{key}: {speedup:.2f}x "
                  f"(host has {cores} cores, floor needs >= {min_cores})")
            continue
        status = "FAIL" if speedup < floor else "ok"
        print(f"  {status:4} {fresh_path}:{key}: {speedup:.2f}x "
              f"(floor {floor}x)")
        if speedup < floor:
            failures.append(
                f"{fresh_path}:{key} {speedup:.2f}x below {floor}x floor")


def main(argv):
    if len(argv) < 2 or len(argv) % 2 != 0:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    failures = []
    for i in range(0, len(argv), 2):
        baseline_path, fresh_path = argv[i], argv[i + 1]
        try:
            with open(baseline_path) as f:
                baseline = json.load(f)
        except FileNotFoundError:
            print(f"  {baseline_path}: no committed baseline, skipping")
            continue
        with open(fresh_path) as f:
            fresh = json.load(f)

        base_keys = wall_keys(baseline)
        fresh_keys = wall_keys(fresh)
        for key, base_value in sorted(base_keys.items()):
            if key not in fresh_keys or base_value <= 0 or fresh_keys[key] <= 0:
                continue
            if key.endswith(HIGHER_IS_BETTER):
                ratio = base_value / fresh_keys[key]
            else:
                ratio = fresh_keys[key] / base_value
            status = "FAIL" if ratio > THRESHOLD else "ok"
            print(f"  {status:4} {baseline_path}:{key}: "
                  f"{base_value:.1f} -> {fresh_keys[key]:.1f} ({ratio:.2f}x)")
            if ratio > THRESHOLD:
                failures.append(f"{baseline_path}:{key} regressed {ratio:.2f}x")
        check_speedups(fresh_path, fresh, failures)

    if failures:
        print("bench regression guard FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("bench regression guard passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
