# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/tpm_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/hil_test[1]_include.cmake")
include("/root/repo/build/tests/keylime_test[1]_include.cmake")
include("/root/repo/build/tests/ima_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/bmi_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_test[1]_include.cmake")
include("/root/repo/build/tests/enclave_edge_test[1]_include.cmake")
include("/root/repo/build/tests/peripheral_test[1]_include.cmake")
include("/root/repo/build/tests/shaping_test[1]_include.cmake")
include("/root/repo/build/tests/topology_test[1]_include.cmake")
include("/root/repo/build/tests/determinism_test[1]_include.cmake")
include("/root/repo/build/tests/storage_property_test[1]_include.cmake")
