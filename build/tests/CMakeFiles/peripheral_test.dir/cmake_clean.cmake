file(REMOVE_RECURSE
  "CMakeFiles/peripheral_test.dir/peripheral_test.cc.o"
  "CMakeFiles/peripheral_test.dir/peripheral_test.cc.o.d"
  "peripheral_test"
  "peripheral_test.pdb"
  "peripheral_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peripheral_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
