# Empty dependencies file for peripheral_test.
# This may be replaced when dependencies are built.
