# Empty compiler generated dependencies file for ima_test.
# This may be replaced when dependencies are built.
