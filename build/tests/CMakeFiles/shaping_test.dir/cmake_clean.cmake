file(REMOVE_RECURSE
  "CMakeFiles/shaping_test.dir/shaping_test.cc.o"
  "CMakeFiles/shaping_test.dir/shaping_test.cc.o.d"
  "shaping_test"
  "shaping_test.pdb"
  "shaping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shaping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
