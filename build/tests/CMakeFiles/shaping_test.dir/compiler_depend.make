# Empty compiler generated dependencies file for shaping_test.
# This may be replaced when dependencies are built.
