file(REMOVE_RECURSE
  "CMakeFiles/enclave_edge_test.dir/enclave_edge_test.cc.o"
  "CMakeFiles/enclave_edge_test.dir/enclave_edge_test.cc.o.d"
  "enclave_edge_test"
  "enclave_edge_test.pdb"
  "enclave_edge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enclave_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
