# Empty dependencies file for tpm_test.
# This may be replaced when dependencies are built.
