# Empty dependencies file for keylime_test.
# This may be replaced when dependencies are built.
