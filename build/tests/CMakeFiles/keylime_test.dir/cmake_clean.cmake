file(REMOVE_RECURSE
  "CMakeFiles/keylime_test.dir/keylime_test.cc.o"
  "CMakeFiles/keylime_test.dir/keylime_test.cc.o.d"
  "keylime_test"
  "keylime_test.pdb"
  "keylime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keylime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
