file(REMOVE_RECURSE
  "CMakeFiles/hil_test.dir/hil_test.cc.o"
  "CMakeFiles/hil_test.dir/hil_test.cc.o.d"
  "hil_test"
  "hil_test.pdb"
  "hil_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
