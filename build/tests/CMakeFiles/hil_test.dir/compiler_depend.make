# Empty compiler generated dependencies file for hil_test.
# This may be replaced when dependencies are built.
