file(REMOVE_RECURSE
  "CMakeFiles/bmi_test.dir/bmi_test.cc.o"
  "CMakeFiles/bmi_test.dir/bmi_test.cc.o.d"
  "bmi_test"
  "bmi_test.pdb"
  "bmi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bmi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
