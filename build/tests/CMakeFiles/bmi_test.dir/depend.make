# Empty dependencies file for bmi_test.
# This may be replaced when dependencies are built.
