file(REMOVE_RECURSE
  "CMakeFiles/fig5_concurrency.dir/fig5_concurrency.cc.o"
  "CMakeFiles/fig5_concurrency.dir/fig5_concurrency.cc.o.d"
  "fig5_concurrency"
  "fig5_concurrency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_concurrency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
