# Empty dependencies file for fig5_concurrency.
# This may be replaced when dependencies are built.
