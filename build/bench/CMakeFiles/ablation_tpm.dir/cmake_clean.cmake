file(REMOVE_RECURSE
  "CMakeFiles/ablation_tpm.dir/ablation_tpm.cc.o"
  "CMakeFiles/ablation_tpm.dir/ablation_tpm.cc.o.d"
  "ablation_tpm"
  "ablation_tpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
