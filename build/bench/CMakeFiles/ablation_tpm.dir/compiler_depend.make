# Empty compiler generated dependencies file for ablation_tpm.
# This may be replaced when dependencies are built.
