file(REMOVE_RECURSE
  "CMakeFiles/fig4_provisioning.dir/fig4_provisioning.cc.o"
  "CMakeFiles/fig4_provisioning.dir/fig4_provisioning.cc.o.d"
  "fig4_provisioning"
  "fig4_provisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_provisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
