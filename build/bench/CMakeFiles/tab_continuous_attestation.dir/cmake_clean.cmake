file(REMOVE_RECURSE
  "CMakeFiles/tab_continuous_attestation.dir/tab_continuous_attestation.cc.o"
  "CMakeFiles/tab_continuous_attestation.dir/tab_continuous_attestation.cc.o.d"
  "tab_continuous_attestation"
  "tab_continuous_attestation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_continuous_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
