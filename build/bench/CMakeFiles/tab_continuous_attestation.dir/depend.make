# Empty dependencies file for tab_continuous_attestation.
# This may be replaced when dependencies are built.
