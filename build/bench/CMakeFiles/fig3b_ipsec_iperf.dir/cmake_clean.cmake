file(REMOVE_RECURSE
  "CMakeFiles/fig3b_ipsec_iperf.dir/fig3b_ipsec_iperf.cc.o"
  "CMakeFiles/fig3b_ipsec_iperf.dir/fig3b_ipsec_iperf.cc.o.d"
  "fig3b_ipsec_iperf"
  "fig3b_ipsec_iperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_ipsec_iperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
