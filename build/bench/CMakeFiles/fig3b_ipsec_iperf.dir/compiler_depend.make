# Empty compiler generated dependencies file for fig3b_ipsec_iperf.
# This may be replaced when dependencies are built.
