# Empty compiler generated dependencies file for ablation_release.
# This may be replaced when dependencies are built.
