file(REMOVE_RECURSE
  "CMakeFiles/ablation_release.dir/ablation_release.cc.o"
  "CMakeFiles/ablation_release.dir/ablation_release.cc.o.d"
  "ablation_release"
  "ablation_release.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_release.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
