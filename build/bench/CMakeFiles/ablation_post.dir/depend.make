# Empty dependencies file for ablation_post.
# This may be replaced when dependencies are built.
