file(REMOVE_RECURSE
  "CMakeFiles/ablation_post.dir/ablation_post.cc.o"
  "CMakeFiles/ablation_post.dir/ablation_post.cc.o.d"
  "ablation_post"
  "ablation_post.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_post.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
