# Empty compiler generated dependencies file for ablation_racks.
# This may be replaced when dependencies are built.
