file(REMOVE_RECURSE
  "CMakeFiles/ablation_racks.dir/ablation_racks.cc.o"
  "CMakeFiles/ablation_racks.dir/ablation_racks.cc.o.d"
  "ablation_racks"
  "ablation_racks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_racks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
