# Empty compiler generated dependencies file for fig6_ima_overhead.
# This may be replaced when dependencies are built.
