# Empty compiler generated dependencies file for ablation_airlock.
# This may be replaced when dependencies are built.
