file(REMOVE_RECURSE
  "CMakeFiles/ablation_airlock.dir/ablation_airlock.cc.o"
  "CMakeFiles/ablation_airlock.dir/ablation_airlock.cc.o.d"
  "ablation_airlock"
  "ablation_airlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_airlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
