file(REMOVE_RECURSE
  "CMakeFiles/fig3a_luks_ramdisk.dir/fig3a_luks_ramdisk.cc.o"
  "CMakeFiles/fig3a_luks_ramdisk.dir/fig3a_luks_ramdisk.cc.o.d"
  "fig3a_luks_ramdisk"
  "fig3a_luks_ramdisk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_luks_ramdisk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
