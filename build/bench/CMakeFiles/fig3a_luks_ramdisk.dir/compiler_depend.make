# Empty compiler generated dependencies file for fig3a_luks_ramdisk.
# This may be replaced when dependencies are built.
