file(REMOVE_RECURSE
  "CMakeFiles/ablation_shaping.dir/ablation_shaping.cc.o"
  "CMakeFiles/ablation_shaping.dir/ablation_shaping.cc.o.d"
  "ablation_shaping"
  "ablation_shaping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shaping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
