# Empty compiler generated dependencies file for ablation_shaping.
# This may be replaced when dependencies are built.
