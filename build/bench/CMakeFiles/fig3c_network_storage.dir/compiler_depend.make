# Empty compiler generated dependencies file for fig3c_network_storage.
# This may be replaced when dependencies are built.
