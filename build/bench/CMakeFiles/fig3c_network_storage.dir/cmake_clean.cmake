file(REMOVE_RECURSE
  "CMakeFiles/fig3c_network_storage.dir/fig3c_network_storage.cc.o"
  "CMakeFiles/fig3c_network_storage.dir/fig3c_network_storage.cc.o.d"
  "fig3c_network_storage"
  "fig3c_network_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_network_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
