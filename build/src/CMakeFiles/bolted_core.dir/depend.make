# Empty dependencies file for bolted_core.
# This may be replaced when dependencies are built.
