file(REMOVE_RECURSE
  "libbolted_core.a"
)
