file(REMOVE_RECURSE
  "CMakeFiles/bolted_core.dir/core/cloud.cc.o"
  "CMakeFiles/bolted_core.dir/core/cloud.cc.o.d"
  "CMakeFiles/bolted_core.dir/core/enclave.cc.o"
  "CMakeFiles/bolted_core.dir/core/enclave.cc.o.d"
  "libbolted_core.a"
  "libbolted_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolted_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
