file(REMOVE_RECURSE
  "CMakeFiles/bolted_keylime.dir/keylime/agent.cc.o"
  "CMakeFiles/bolted_keylime.dir/keylime/agent.cc.o.d"
  "CMakeFiles/bolted_keylime.dir/keylime/payload.cc.o"
  "CMakeFiles/bolted_keylime.dir/keylime/payload.cc.o.d"
  "CMakeFiles/bolted_keylime.dir/keylime/registrar.cc.o"
  "CMakeFiles/bolted_keylime.dir/keylime/registrar.cc.o.d"
  "CMakeFiles/bolted_keylime.dir/keylime/verifier.cc.o"
  "CMakeFiles/bolted_keylime.dir/keylime/verifier.cc.o.d"
  "libbolted_keylime.a"
  "libbolted_keylime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolted_keylime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
