file(REMOVE_RECURSE
  "libbolted_keylime.a"
)
