# Empty dependencies file for bolted_keylime.
# This may be replaced when dependencies are built.
