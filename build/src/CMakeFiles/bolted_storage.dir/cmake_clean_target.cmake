file(REMOVE_RECURSE
  "libbolted_storage.a"
)
