file(REMOVE_RECURSE
  "CMakeFiles/bolted_storage.dir/storage/block_device.cc.o"
  "CMakeFiles/bolted_storage.dir/storage/block_device.cc.o.d"
  "CMakeFiles/bolted_storage.dir/storage/crypt_device.cc.o"
  "CMakeFiles/bolted_storage.dir/storage/crypt_device.cc.o.d"
  "CMakeFiles/bolted_storage.dir/storage/image.cc.o"
  "CMakeFiles/bolted_storage.dir/storage/image.cc.o.d"
  "CMakeFiles/bolted_storage.dir/storage/iscsi.cc.o"
  "CMakeFiles/bolted_storage.dir/storage/iscsi.cc.o.d"
  "CMakeFiles/bolted_storage.dir/storage/object_store.cc.o"
  "CMakeFiles/bolted_storage.dir/storage/object_store.cc.o.d"
  "libbolted_storage.a"
  "libbolted_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolted_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
