# Empty dependencies file for bolted_storage.
# This may be replaced when dependencies are built.
