
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/block_device.cc" "src/CMakeFiles/bolted_storage.dir/storage/block_device.cc.o" "gcc" "src/CMakeFiles/bolted_storage.dir/storage/block_device.cc.o.d"
  "/root/repo/src/storage/crypt_device.cc" "src/CMakeFiles/bolted_storage.dir/storage/crypt_device.cc.o" "gcc" "src/CMakeFiles/bolted_storage.dir/storage/crypt_device.cc.o.d"
  "/root/repo/src/storage/image.cc" "src/CMakeFiles/bolted_storage.dir/storage/image.cc.o" "gcc" "src/CMakeFiles/bolted_storage.dir/storage/image.cc.o.d"
  "/root/repo/src/storage/iscsi.cc" "src/CMakeFiles/bolted_storage.dir/storage/iscsi.cc.o" "gcc" "src/CMakeFiles/bolted_storage.dir/storage/iscsi.cc.o.d"
  "/root/repo/src/storage/object_store.cc" "src/CMakeFiles/bolted_storage.dir/storage/object_store.cc.o" "gcc" "src/CMakeFiles/bolted_storage.dir/storage/object_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bolted_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bolted_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bolted_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
