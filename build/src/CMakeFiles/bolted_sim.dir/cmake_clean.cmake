file(REMOVE_RECURSE
  "CMakeFiles/bolted_sim.dir/sim/random.cc.o"
  "CMakeFiles/bolted_sim.dir/sim/random.cc.o.d"
  "CMakeFiles/bolted_sim.dir/sim/simulation.cc.o"
  "CMakeFiles/bolted_sim.dir/sim/simulation.cc.o.d"
  "CMakeFiles/bolted_sim.dir/sim/time.cc.o"
  "CMakeFiles/bolted_sim.dir/sim/time.cc.o.d"
  "libbolted_sim.a"
  "libbolted_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolted_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
