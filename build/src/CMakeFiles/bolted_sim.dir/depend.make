# Empty dependencies file for bolted_sim.
# This may be replaced when dependencies are built.
