file(REMOVE_RECURSE
  "libbolted_sim.a"
)
