file(REMOVE_RECURSE
  "libbolted_provision.a"
)
