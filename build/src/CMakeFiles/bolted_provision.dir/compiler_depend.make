# Empty compiler generated dependencies file for bolted_provision.
# This may be replaced when dependencies are built.
