file(REMOVE_RECURSE
  "CMakeFiles/bolted_provision.dir/provision/foreman.cc.o"
  "CMakeFiles/bolted_provision.dir/provision/foreman.cc.o.d"
  "libbolted_provision.a"
  "libbolted_provision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolted_provision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
