
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cc" "src/CMakeFiles/bolted_crypto.dir/crypto/aes.cc.o" "gcc" "src/CMakeFiles/bolted_crypto.dir/crypto/aes.cc.o.d"
  "/root/repo/src/crypto/aes_gcm.cc" "src/CMakeFiles/bolted_crypto.dir/crypto/aes_gcm.cc.o" "gcc" "src/CMakeFiles/bolted_crypto.dir/crypto/aes_gcm.cc.o.d"
  "/root/repo/src/crypto/aes_xts.cc" "src/CMakeFiles/bolted_crypto.dir/crypto/aes_xts.cc.o" "gcc" "src/CMakeFiles/bolted_crypto.dir/crypto/aes_xts.cc.o.d"
  "/root/repo/src/crypto/bytes.cc" "src/CMakeFiles/bolted_crypto.dir/crypto/bytes.cc.o" "gcc" "src/CMakeFiles/bolted_crypto.dir/crypto/bytes.cc.o.d"
  "/root/repo/src/crypto/drbg.cc" "src/CMakeFiles/bolted_crypto.dir/crypto/drbg.cc.o" "gcc" "src/CMakeFiles/bolted_crypto.dir/crypto/drbg.cc.o.d"
  "/root/repo/src/crypto/ecies.cc" "src/CMakeFiles/bolted_crypto.dir/crypto/ecies.cc.o" "gcc" "src/CMakeFiles/bolted_crypto.dir/crypto/ecies.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/CMakeFiles/bolted_crypto.dir/crypto/hmac.cc.o" "gcc" "src/CMakeFiles/bolted_crypto.dir/crypto/hmac.cc.o.d"
  "/root/repo/src/crypto/p256.cc" "src/CMakeFiles/bolted_crypto.dir/crypto/p256.cc.o" "gcc" "src/CMakeFiles/bolted_crypto.dir/crypto/p256.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/CMakeFiles/bolted_crypto.dir/crypto/sha256.cc.o" "gcc" "src/CMakeFiles/bolted_crypto.dir/crypto/sha256.cc.o.d"
  "/root/repo/src/crypto/u256.cc" "src/CMakeFiles/bolted_crypto.dir/crypto/u256.cc.o" "gcc" "src/CMakeFiles/bolted_crypto.dir/crypto/u256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
