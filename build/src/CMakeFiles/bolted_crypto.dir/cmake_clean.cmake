file(REMOVE_RECURSE
  "CMakeFiles/bolted_crypto.dir/crypto/aes.cc.o"
  "CMakeFiles/bolted_crypto.dir/crypto/aes.cc.o.d"
  "CMakeFiles/bolted_crypto.dir/crypto/aes_gcm.cc.o"
  "CMakeFiles/bolted_crypto.dir/crypto/aes_gcm.cc.o.d"
  "CMakeFiles/bolted_crypto.dir/crypto/aes_xts.cc.o"
  "CMakeFiles/bolted_crypto.dir/crypto/aes_xts.cc.o.d"
  "CMakeFiles/bolted_crypto.dir/crypto/bytes.cc.o"
  "CMakeFiles/bolted_crypto.dir/crypto/bytes.cc.o.d"
  "CMakeFiles/bolted_crypto.dir/crypto/drbg.cc.o"
  "CMakeFiles/bolted_crypto.dir/crypto/drbg.cc.o.d"
  "CMakeFiles/bolted_crypto.dir/crypto/ecies.cc.o"
  "CMakeFiles/bolted_crypto.dir/crypto/ecies.cc.o.d"
  "CMakeFiles/bolted_crypto.dir/crypto/hmac.cc.o"
  "CMakeFiles/bolted_crypto.dir/crypto/hmac.cc.o.d"
  "CMakeFiles/bolted_crypto.dir/crypto/p256.cc.o"
  "CMakeFiles/bolted_crypto.dir/crypto/p256.cc.o.d"
  "CMakeFiles/bolted_crypto.dir/crypto/sha256.cc.o"
  "CMakeFiles/bolted_crypto.dir/crypto/sha256.cc.o.d"
  "CMakeFiles/bolted_crypto.dir/crypto/u256.cc.o"
  "CMakeFiles/bolted_crypto.dir/crypto/u256.cc.o.d"
  "libbolted_crypto.a"
  "libbolted_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolted_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
