# Empty compiler generated dependencies file for bolted_crypto.
# This may be replaced when dependencies are built.
