file(REMOVE_RECURSE
  "libbolted_crypto.a"
)
