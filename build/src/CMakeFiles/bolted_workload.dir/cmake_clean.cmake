file(REMOVE_RECURSE
  "CMakeFiles/bolted_workload.dir/workload/workload.cc.o"
  "CMakeFiles/bolted_workload.dir/workload/workload.cc.o.d"
  "libbolted_workload.a"
  "libbolted_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolted_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
