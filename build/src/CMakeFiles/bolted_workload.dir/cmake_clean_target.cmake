file(REMOVE_RECURSE
  "libbolted_workload.a"
)
