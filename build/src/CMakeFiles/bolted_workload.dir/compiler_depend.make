# Empty compiler generated dependencies file for bolted_workload.
# This may be replaced when dependencies are built.
