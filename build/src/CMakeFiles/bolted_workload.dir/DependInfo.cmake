
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/workload.cc" "src/CMakeFiles/bolted_workload.dir/workload/workload.cc.o" "gcc" "src/CMakeFiles/bolted_workload.dir/workload/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bolted_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bolted_bmi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bolted_hil.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bolted_keylime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bolted_ima.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bolted_provision.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bolted_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bolted_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bolted_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bolted_tpm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bolted_firmware.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bolted_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bolted_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
