file(REMOVE_RECURSE
  "CMakeFiles/bolted_tpm.dir/tpm/event_log.cc.o"
  "CMakeFiles/bolted_tpm.dir/tpm/event_log.cc.o.d"
  "CMakeFiles/bolted_tpm.dir/tpm/tpm.cc.o"
  "CMakeFiles/bolted_tpm.dir/tpm/tpm.cc.o.d"
  "libbolted_tpm.a"
  "libbolted_tpm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolted_tpm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
