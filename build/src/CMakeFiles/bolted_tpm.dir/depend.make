# Empty dependencies file for bolted_tpm.
# This may be replaced when dependencies are built.
