file(REMOVE_RECURSE
  "libbolted_tpm.a"
)
