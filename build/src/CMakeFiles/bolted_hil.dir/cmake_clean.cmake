file(REMOVE_RECURSE
  "CMakeFiles/bolted_hil.dir/hil/hil.cc.o"
  "CMakeFiles/bolted_hil.dir/hil/hil.cc.o.d"
  "libbolted_hil.a"
  "libbolted_hil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolted_hil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
