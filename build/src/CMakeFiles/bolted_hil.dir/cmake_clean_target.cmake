file(REMOVE_RECURSE
  "libbolted_hil.a"
)
