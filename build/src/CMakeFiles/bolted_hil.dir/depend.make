# Empty dependencies file for bolted_hil.
# This may be replaced when dependencies are built.
