# Empty compiler generated dependencies file for bolted_ima.
# This may be replaced when dependencies are built.
