file(REMOVE_RECURSE
  "libbolted_ima.a"
)
