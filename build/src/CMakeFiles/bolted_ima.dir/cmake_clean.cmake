file(REMOVE_RECURSE
  "CMakeFiles/bolted_ima.dir/ima/ima.cc.o"
  "CMakeFiles/bolted_ima.dir/ima/ima.cc.o.d"
  "libbolted_ima.a"
  "libbolted_ima.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolted_ima.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
