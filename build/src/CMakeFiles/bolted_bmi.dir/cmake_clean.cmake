file(REMOVE_RECURSE
  "CMakeFiles/bolted_bmi.dir/bmi/bmi.cc.o"
  "CMakeFiles/bolted_bmi.dir/bmi/bmi.cc.o.d"
  "libbolted_bmi.a"
  "libbolted_bmi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolted_bmi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
