# Empty dependencies file for bolted_bmi.
# This may be replaced when dependencies are built.
