file(REMOVE_RECURSE
  "libbolted_bmi.a"
)
