file(REMOVE_RECURSE
  "CMakeFiles/bolted_firmware.dir/firmware/firmware.cc.o"
  "CMakeFiles/bolted_firmware.dir/firmware/firmware.cc.o.d"
  "libbolted_firmware.a"
  "libbolted_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolted_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
