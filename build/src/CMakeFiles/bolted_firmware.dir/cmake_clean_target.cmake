file(REMOVE_RECURSE
  "libbolted_firmware.a"
)
