# Empty dependencies file for bolted_firmware.
# This may be replaced when dependencies are built.
