file(REMOVE_RECURSE
  "CMakeFiles/bolted_net.dir/net/ipsec.cc.o"
  "CMakeFiles/bolted_net.dir/net/ipsec.cc.o.d"
  "CMakeFiles/bolted_net.dir/net/network.cc.o"
  "CMakeFiles/bolted_net.dir/net/network.cc.o.d"
  "CMakeFiles/bolted_net.dir/net/resource.cc.o"
  "CMakeFiles/bolted_net.dir/net/resource.cc.o.d"
  "CMakeFiles/bolted_net.dir/net/rpc.cc.o"
  "CMakeFiles/bolted_net.dir/net/rpc.cc.o.d"
  "CMakeFiles/bolted_net.dir/net/shaping.cc.o"
  "CMakeFiles/bolted_net.dir/net/shaping.cc.o.d"
  "libbolted_net.a"
  "libbolted_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolted_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
