
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ipsec.cc" "src/CMakeFiles/bolted_net.dir/net/ipsec.cc.o" "gcc" "src/CMakeFiles/bolted_net.dir/net/ipsec.cc.o.d"
  "/root/repo/src/net/network.cc" "src/CMakeFiles/bolted_net.dir/net/network.cc.o" "gcc" "src/CMakeFiles/bolted_net.dir/net/network.cc.o.d"
  "/root/repo/src/net/resource.cc" "src/CMakeFiles/bolted_net.dir/net/resource.cc.o" "gcc" "src/CMakeFiles/bolted_net.dir/net/resource.cc.o.d"
  "/root/repo/src/net/rpc.cc" "src/CMakeFiles/bolted_net.dir/net/rpc.cc.o" "gcc" "src/CMakeFiles/bolted_net.dir/net/rpc.cc.o.d"
  "/root/repo/src/net/shaping.cc" "src/CMakeFiles/bolted_net.dir/net/shaping.cc.o" "gcc" "src/CMakeFiles/bolted_net.dir/net/shaping.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bolted_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bolted_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
