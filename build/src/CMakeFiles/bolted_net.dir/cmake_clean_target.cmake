file(REMOVE_RECURSE
  "libbolted_net.a"
)
