# Empty dependencies file for bolted_net.
# This may be replaced when dependencies are built.
