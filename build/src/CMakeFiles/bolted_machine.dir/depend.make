# Empty dependencies file for bolted_machine.
# This may be replaced when dependencies are built.
