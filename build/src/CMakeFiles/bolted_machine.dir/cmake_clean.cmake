file(REMOVE_RECURSE
  "CMakeFiles/bolted_machine.dir/machine/machine.cc.o"
  "CMakeFiles/bolted_machine.dir/machine/machine.cc.o.d"
  "CMakeFiles/bolted_machine.dir/machine/peripheral.cc.o"
  "CMakeFiles/bolted_machine.dir/machine/peripheral.cc.o.d"
  "libbolted_machine.a"
  "libbolted_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bolted_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
