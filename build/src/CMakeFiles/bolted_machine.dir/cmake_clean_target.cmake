file(REMOVE_RECURSE
  "libbolted_machine.a"
)
