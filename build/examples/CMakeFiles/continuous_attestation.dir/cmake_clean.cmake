file(REMOVE_RECURSE
  "CMakeFiles/continuous_attestation.dir/continuous_attestation.cpp.o"
  "CMakeFiles/continuous_attestation.dir/continuous_attestation.cpp.o.d"
  "continuous_attestation"
  "continuous_attestation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuous_attestation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
