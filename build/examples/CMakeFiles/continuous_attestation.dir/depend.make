# Empty dependencies file for continuous_attestation.
# This may be replaced when dependencies are built.
