# Empty dependencies file for colo_loan.
# This may be replaced when dependencies are built.
