file(REMOVE_RECURSE
  "CMakeFiles/colo_loan.dir/colo_loan.cpp.o"
  "CMakeFiles/colo_loan.dir/colo_loan.cpp.o.d"
  "colo_loan"
  "colo_loan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colo_loan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
