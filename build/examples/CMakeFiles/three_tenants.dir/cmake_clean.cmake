file(REMOVE_RECURSE
  "CMakeFiles/three_tenants.dir/three_tenants.cpp.o"
  "CMakeFiles/three_tenants.dir/three_tenants.cpp.o.d"
  "three_tenants"
  "three_tenants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_tenants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
