# Empty compiler generated dependencies file for three_tenants.
# This may be replaced when dependencies are built.
