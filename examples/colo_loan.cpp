// The co-location loan use case (§4.3) — the scenario Bolted first went
// to production for: one organisation temporarily "loans" bare-metal
// capacity to another.  The borrowing party (an HPC centre with a demand
// spike) trusts only the lender's isolation service (HIL); it brings its
// own attestation service, its own whitelist, and encrypts everything.
//
// The example borrows three servers, verifies them against the borrower's
// own Keylime, runs a communication-heavy job inside the encrypted
// enclave, and hands the servers back — showing that nothing the borrower
// did survives on them.
//
//   ./build/examples/colo_loan

#include <cstdio>

#include "src/core/cloud.h"
#include "src/core/enclave.h"
#include "src/workload/workload.h"

int main() {
  using namespace bolted;

  // The lender's datacenter.
  core::CloudConfig config;
  config.num_machines = 6;
  config.linuxboot_in_flash = true;
  core::Cloud lender(config);

  // The borrower: tenant-deployed Keylime, LUKS, IPsec — it does not
  // trust the lender with anything but availability.
  core::TrustProfile profile = core::TrustProfile::Charlie();
  profile.continuous_attestation = false;  // batch jobs; attest at entry
  core::Enclave borrower(lender, "hpc-centre", profile, 555);

  constexpr int kLoanedNodes = 3;
  sim::Duration job_elapsed = sim::Duration::Zero();
  auto flow = [&]() -> sim::Task {
    std::printf("free nodes before the loan: %zu\n", lender.hil().FreeNodes().size());
    for (int i = 0; i < kLoanedNodes; ++i) {
      core::ProvisionOutcome outcome;
      co_await borrower.ProvisionNode(lender.node_name(static_cast<size_t>(i)),
                                      &outcome);
      std::printf("  borrowed %s: %s (%.0f s, attested by the *borrower's* "
                  "Keylime)\n",
                  lender.node_name(static_cast<size_t>(i)).c_str(),
                  outcome.success ? "ok" : outcome.failure.c_str(),
                  outcome.trace.total().ToSecondsF());
      if (!outcome.success) {
        co_return;
      }
    }

    // Run the demand-spike job inside the encrypted enclave.
    workload::WorkloadSpec job = workload::NasMg();
    job.name = "overflow-job";
    workload::WorkloadRunner runner(lender, borrower);
    co_await runner.Run(job, &job_elapsed);
    std::printf("job finished in %s inside the encrypted enclave\n",
                job_elapsed.ToString().c_str());

    // Hand the servers back: stateless release, keep a snapshot so the
    // job can resume later on any compatible node (even elsewhere).
    for (int i = 0; i < kLoanedNodes; ++i) {
      co_await borrower.ReleaseNode(lender.node_name(static_cast<size_t>(i)),
                                    /*keep_snapshot=*/true);
    }
  };
  lender.sim().Spawn(flow());
  lender.sim().Run();

  std::printf("\nafter the loan:\n");
  std::printf("  free nodes:            %zu (all returned)\n",
              lender.hil().FreeNodes().size());
  for (int i = 0; i < kLoanedNodes; ++i) {
    machine::Machine* m = lender.FindMachine(lender.node_name(static_cast<size_t>(i)));
    std::printf("  %s: memory dirty until next scrub=%s, VLANs=%zu, "
                "local disk untouched (diskless boot)\n",
                m->name().c_str(), m->memory_dirty() ? "yes" : "no",
                m->endpoint().vlans().size());
  }
  std::printf("  borrower snapshots kept in *borrower-visible* storage: %s\n",
              lender.images().FindByName("saved:node-0:0").has_value() ? "yes"
                                                                        : "no");
  return 0;
}
