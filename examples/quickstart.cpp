// Quickstart: rent one bare-metal server from a Bolted cloud, attest it,
// and boot your own image on it.
//
// This walks the Figure-1 life cycle with the "Bob" trust profile
// (provider-deployed attestation): the node passes through the airlock,
// its firmware and boot chain are measured into the TPM and verified
// against the tenant's whitelist, and only then does it join the enclave
// and kexec into the tenant kernel.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "src/core/cloud.h"
#include "src/core/enclave.h"

int main() {
  using namespace bolted;

  // A small simulated datacenter: 4 machines with LinuxBoot in flash,
  // provider-run HIL + BMI + Keylime, a Ceph-backed image store.
  core::CloudConfig config;
  config.num_machines = 4;
  config.linuxboot_in_flash = true;
  core::Cloud cloud(config);

  // A tenant that trusts the provider's services but wants proof that no
  // previous tenant tampered with the firmware.
  core::Enclave tenant(cloud, "quickstart", core::TrustProfile::Bob(), 2024);

  core::ProvisionOutcome outcome;
  auto flow = [&]() -> sim::Task {
    co_await tenant.ProvisionNode("node-0", &outcome);
  };
  cloud.sim().Spawn(flow());
  cloud.sim().Run();

  if (!outcome.success) {
    std::printf("provisioning failed: %s\n", outcome.failure.c_str());
    return 1;
  }

  std::printf("node-0 provisioned and attested in %s\n",
              outcome.trace.total().ToString().c_str());
  std::printf("\nphase breakdown (Figure 4 style):\n%s",
              outcome.trace.ToString().c_str());

  machine::Machine* machine = tenant.node_machine("node-0");
  std::printf("\nwhat the tenant now knows:\n");
  std::printf("  * PCR0 (firmware)  = %s...\n",
              crypto::DigestHex(machine->tpm().ReadPcr(tpm::kPcrFirmware))
                  .substr(0, 16)
                  .c_str());
  std::printf("  * boot event log   = %zu measured stages\n",
              machine->boot_log().size());
  std::printf("  * memory scrubbed  = %s\n",
              machine->memory_dirty() ? "no (!)" : "yes (LinuxBoot)");
  std::printf("  * root disk        = network-mounted clone (stateless)\n");
  std::printf("  * state            = allocated, in enclave VLAN\n");

  // Release: the clone is destroyed, the node power-cycled and freed.
  auto release = [&]() -> sim::Task { co_await tenant.ReleaseNode("node-0"); };
  cloud.sim().Spawn(release());
  cloud.sim().Run();
  std::printf("\nreleased: node owner=%s, image clone exists=%s\n",
              cloud.hil().NodeOwner("node-0").has_value() ? "tenant" : "none",
              cloud.bmi().NodeImage("node-0").has_value() ? "yes" : "no");
  return 0;
}
