// The paper's §4.3 personas sharing one cloud:
//
//   Alice   - grad student: maximum speed, no attestation, no encryption.
//   Bob     - professor: trusts the provider, not the previous tenants;
//             provider-deployed attestation.
//   Charlie - security-sensitive: tenant-deployed Keylime, LUKS + IPsec,
//             continuous attestation.
//
// The example provisions one node for each, compares their provisioning
// costs, and then uses the provider-level packet sniffer to show what a
// malicious insider could read from each tenant's traffic.
//
//   ./build/examples/three_tenants

#include <cstdio>
#include <string>

#include "src/core/cloud.h"
#include "src/core/enclave.h"

int main() {
  using namespace bolted;

  core::CloudConfig config;
  config.num_machines = 8;
  config.linuxboot_in_flash = true;
  core::Cloud cloud(config);

  core::Enclave alice(cloud, "alice", core::TrustProfile::Alice(), 1);
  core::Enclave bob(cloud, "bob", core::TrustProfile::Bob(), 2);
  core::Enclave charlie(cloud, "charlie", core::TrustProfile::Charlie(), 3);

  core::ProvisionOutcome oa;
  core::ProvisionOutcome ob;
  core::ProvisionOutcome oc1;
  core::ProvisionOutcome oc2;
  auto flow = [&]() -> sim::Task {
    co_await alice.ProvisionNode("node-0", &oa);
    co_await bob.ProvisionNode("node-1", &ob);
    co_await charlie.ProvisionNode("node-2", &oc1);
    co_await charlie.ProvisionNode("node-3", &oc2);
  };
  cloud.sim().Spawn(flow());
  cloud.sim().RunUntil(sim::Time::FromNanoseconds(1'200'000'000'000));

  std::printf("provisioning cost by trust profile:\n");
  std::printf("  Alice   (no attestation)          %8.0f s\n",
              oa.trace.total().ToSecondsF());
  std::printf("  Bob     (provider attestation)    %8.0f s\n",
              ob.trace.total().ToSecondsF());
  std::printf("  Charlie (tenant Keylime+LUKS+IPsec)%7.0f s\n",
              oc1.trace.total().ToSecondsF());

  // --- What a provider insider sees on the wire -------------------------
  std::printf("\nprovider-level sniffer experiment:\n");
  std::string captured;
  cloud.fabric().SetSniffer([&](net::VlanId, const net::Message& m) {
    if (m.kind == "app.data") {
      captured.assign(m.payload.begin(), m.payload.end());
    }
  });

  // Alice sends her data in the clear inside her enclave VLAN.
  machine::Machine* a0 = alice.node_machine("node-0");
  a0->endpoint().Post(a0->address(),  // self-addressed loop for demo
                      net::Message{.kind = "app.data",
                                   .payload = crypto::ToBytes("alice: cleartext result")});
  // (Charlie's continuous attestation keeps the queue alive, so bound the run.)
  cloud.sim().RunUntil(cloud.sim().now() + sim::Duration::Seconds(5));
  std::printf("  Alice's traffic as seen by the provider: \"%s\"\n",
              captured.c_str());

  // Charlie's nodes speak ESP: the sniffer sees only ciphertext.
  machine::Machine* c2 = charlie.node_machine("node-2");
  machine::Machine* c3 = charlie.node_machine("node-3");
  const auto sealed =
      c2->ipsec().Seal(c3->address(), crypto::ToBytes("charlie: secret model weights"));
  captured.clear();
  c2->endpoint().Post(c3->address(),
                      net::Message{.kind = "app.data", .payload = *sealed});
  cloud.sim().RunUntil(cloud.sim().now() + sim::Duration::Seconds(5));
  std::printf("  Charlie's traffic as seen by the provider: %zu bytes of ESP, "
              "hex prefix %s...\n",
              captured.size(),
              crypto::ToHex(crypto::ByteView(
                                reinterpret_cast<const uint8_t*>(captured.data()),
                                std::min<size_t>(8, captured.size())))
                  .c_str());
  const auto opened = c3->ipsec().Open(
      c2->address(), crypto::ByteView(
                         reinterpret_cast<const uint8_t*>(captured.data()),
                         captured.size()));
  std::printf("  ...which only node-3 can open: \"%s\"\n",
              opened ? std::string(opened->begin(), opened->end()).c_str()
                     : "(failed)");

  // --- Isolation: Alice cannot reach Bob's node --------------------------
  machine::Machine* b1 = bob.node_machine("node-1");
  std::printf("\nVLAN isolation: alice->bob reachable on a tenant network? %s\n",
              cloud.fabric().SharedVlan(a0->address(), b1->address()) ==
                      cloud.provisioning_vlan()
                  ? "only via the shared provisioning VLAN (iSCSI)"
                  : "no");
  return oa.success && ob.success && oc1.success && oc2.success ? 0 : 1;
}
