// Continuous attestation in action (§7.4): a security-sensitive tenant's
// enclave detects malware executed on one of its servers, revokes the
// node's IPsec keys on every peer within seconds, and cuts it out of the
// enclave network.
//
//   ./build/examples/continuous_attestation

#include <cstdio>

#include "src/core/cloud.h"
#include "src/core/enclave.h"

int main() {
  using namespace bolted;

  core::CloudConfig config;
  config.num_machines = 3;
  config.linuxboot_in_flash = true;
  core::Cloud cloud(config);
  core::Enclave charlie(cloud, "charlie", core::TrustProfile::Charlie(), 77);

  double attack_at = -1;
  double handled_at = -1;
  charlie.SetViolationHandler([&](const std::string& node, const std::string& why) {
    handled_at = cloud.sim().now().ToSecondsF();
    std::printf("[t=%8.2fs] VIOLATION on %s: %s\n", handled_at, node.c_str(),
                why.c_str());
    std::printf("[t=%8.2fs]   -> keys revoked on all peers, node cut from "
                "enclave VLAN (%.2f s after the attack)\n",
                handled_at, handled_at - attack_at);
  });

  core::ProvisionOutcome o0;
  core::ProvisionOutcome o1;
  core::ProvisionOutcome o2;
  auto flow = [&]() -> sim::Task {
    co_await charlie.ProvisionNode("node-0", &o0);
    co_await charlie.ProvisionNode("node-1", &o1);
    co_await charlie.ProvisionNode("node-2", &o2);
    std::printf("[t=%8.2fs] enclave of 3 attested servers is up; continuous "
                "attestation polls every 2 s\n",
                cloud.sim().now().ToSecondsF());

    // A legitimate application rollout: whitelisted first, no alarm.
    co_await sim::Delay(cloud.sim(), sim::Duration::Seconds(10));
    charlie.ExecuteBinary("node-0", "/opt/app/model-server",
                          crypto::Sha256::Hash("model-server v1.4"),
                          /*whitelisted_already=*/true);
    std::printf("[t=%8.2fs] whitelisted binary executed on node-0 "
                "(IMA measures it; verifier stays green)\n",
                cloud.sim().now().ToSecondsF());

    // The attack: an unwhitelisted binary runs as root on node-1.
    co_await sim::Delay(cloud.sim(), sim::Duration::Seconds(15));
    attack_at = cloud.sim().now().ToSecondsF();
    std::printf("[t=%8.2fs] ATTACK: /tmp/.hidden/cryptominer executed on node-1\n",
                attack_at);
    charlie.ExecuteBinary("node-1", "/tmp/.hidden/cryptominer",
                          crypto::Sha256::Hash("cryptominer payload"),
                          /*whitelisted_already=*/false);
  };
  cloud.sim().Spawn(flow());
  cloud.sim().RunUntil(sim::Time::FromNanoseconds(2'000'000'000'000));

  if (!o0.success || !o1.success || !o2.success || handled_at < 0) {
    std::printf("scenario failed\n");
    return 1;
  }

  machine::Machine* m0 = charlie.node_machine("node-0");
  machine::Machine* m2 = charlie.node_machine("node-2");
  machine::Machine* bad = cloud.FindMachine("node-1");
  std::printf("\nfinal state:\n");
  std::printf("  node-1 state:                 %s\n",
              charlie.node_state("node-1") == core::NodeState::kRejected
                  ? "rejected"
                  : "allocated(!)");
  std::printf("  node-0 still trusts node-1?   %s\n",
              m0->ipsec().HasSa(bad->address()) ? "yes(!)" : "no (SA revoked)");
  std::printf("  node-2 still trusts node-1?   %s\n",
              m2->ipsec().HasSa(bad->address()) ? "yes(!)" : "no (SA revoked)");
  std::printf("  healthy pair node-0<->node-2: %s\n",
              m0->ipsec().HasSa(m2->address()) ? "intact" : "broken(!)");
  std::printf("  verifier checks performed:    %llu\n",
              static_cast<unsigned long long>(charlie.verifier().verifications()));
  return 0;
}
