// Fleet-scale provisioning: every node in a 4096-machine datacenter
// provisioned concurrently through the BMI service, measured in host time
// per simulated event.
//
// This is the control-plane stress twin of fleet_attestation: thousands
// of boot flows in flight means the event queue carries a huge population
// of in-flight timers (DHCP retries, RPC timeouts, transfer completions)
// with constant schedule/cancel churn — exactly the shape the timing-wheel
// scheduler is built for.  The bench reports simulated provisioning time
// for the whole fleet plus the host-side events_per_second / ns_per_event
// the regression guard tracks.
//
// The fleet is provisioned twice: once with the classic image pull (every
// node streams its boot working set from the central object store over
// iSCSI) and once with content-addressed chunked distribution (per-rack
// chunk caches, the store only serves cold misses).  The second run emits
// the chunk_cache_hit_rate and origin-bytes rows, and the bench enforces
// the >= 5x origin-byte reduction the chunked path exists to deliver.
//
// The calibration is scaled for fleet runs: LinuxBoot in flash (no iPXE
// chain-load), a 32 MiB boot image, and 64 concurrent airlock slots so
// the run exercises parallelism instead of the prototype's single-airlock
// queue (Fig. 5 covers that regime).
//
// Usage: fleet_provisioning [output-path] [--nodes=N]
//   (default output: BENCH_provisioning.json, default fleet 4096.)

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/cloud.h"
#include "src/core/enclave.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

struct FleetResult {
  double build_ms = 0;
  double wall_ms = 0;
  double sim_seconds = 0;
  uint64_t events = 0;
  double origin_bytes = 0;     // OSD bytes served while the fleet booted
  double cache_hit_rate = 0;   // chunked runs only
};

double OsdBytesServed(bolted::core::Cloud& cloud) {
  double total = 0;
  for (int h = 0; h < cloud.ceph().config().num_osd_hosts; ++h) {
    total += cloud.ceph().osd_resource(h).total_served();
  }
  return total;
}

FleetResult RunFleet(int nodes, bool chunked) {
  using namespace bolted;

  core::CloudConfig config;
  config.num_machines = nodes;
  config.linuxboot_in_flash = true;
  config.racks = nodes >= 256 ? 8 : 1;
  config.chunked_distribution = chunked;
  config.cal.boot_read_bytes = 32ull << 20;
  config.cal.max_concurrent_airlocks = 64;

  const auto build_start = Clock::now();
  core::Cloud cloud(config);
  FleetResult result;
  result.build_ms = MillisSince(build_start);

  // Alice's profile: no attestation, no encryption — the flow is pure
  // control plane + boot I/O, so the event rate measures the scheduler
  // and frame path rather than ECDSA.
  core::Enclave enclave(cloud, "fleet", core::TrustProfile::Alice(), 42);

  // The tenant rolls the fleet in waves: 64 nodes in flight at a time
  // (matching the airlock capacity), the way a real rollout paces itself
  // so concurrent image fetches don't starve each other into RPC
  // timeouts.  The event queue still carries every waiting node's state,
  // so the scheduler sees the full fleet.
  sim::Semaphore rollout(cloud.sim(), config.cal.max_concurrent_airlocks);
  std::vector<core::ProvisionOutcome> outcomes(static_cast<size_t>(nodes));
  auto provision = [&](int i) -> sim::Task {
    co_await rollout.Acquire();
    sim::SemaphoreGuard slot(rollout);
    co_await enclave.ProvisionNode(cloud.node_name(static_cast<size_t>(i)),
                                   &outcomes[static_cast<size_t>(i)]);
  };
  for (int i = 0; i < nodes; ++i) {
    cloud.sim().Spawn(provision(i));
  }

  const double osd_before = OsdBytesServed(cloud);
  const auto start = Clock::now();
  cloud.sim().Run();
  result.wall_ms = MillisSince(start);
  result.origin_bytes = OsdBytesServed(cloud) - osd_before;

  for (int i = 0; i < nodes; ++i) {
    if (!outcomes[static_cast<size_t>(i)].success) {
      std::fprintf(stderr, "provisioning failed for %s: %s\n",
                   cloud.node_name(static_cast<size_t>(i)).c_str(),
                   outcomes[static_cast<size_t>(i)].failure.c_str());
      std::exit(1);
    }
  }

  result.events = cloud.sim().events_processed();
  result.sim_seconds = cloud.sim().now().ToSecondsF();

  if (chunked) {
    uint64_t served = 0;
    uint64_t local = 0;
    for (size_t c = 0; c < cloud.num_rack_chunk_caches(); ++c) {
      const auto& stats = cloud.rack_chunk_cache(c).stats();
      served += stats.hits + stats.coalesced + stats.origin_fetches +
                stats.peer_redirects;
      local += stats.hits + stats.coalesced + stats.peer_redirects;
    }
    result.cache_hit_rate =
        served == 0 ? 0 : static_cast<double>(local) / static_cast<double>(served);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_provisioning.json";
  int nodes = 4096;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--nodes=", 8) == 0 && argv[i][8] != '\0') {
      nodes = std::atoi(argv[i] + 8);
    } else {
      out_path = argv[i];
    }
  }
  if (nodes <= 0) {
    std::fprintf(stderr, "--nodes must be positive\n");
    return 2;
  }

  const FleetResult classic = RunFleet(nodes, /*chunked=*/false);
  const FleetResult chunked = RunFleet(nodes, /*chunked=*/true);

  const double events_per_second =
      static_cast<double>(classic.events) / (classic.wall_ms / 1e3);
  const double ns_per_event =
      classic.wall_ms * 1e6 / static_cast<double>(classic.events);
  const double origin_reduction =
      chunked.origin_bytes > 0 ? classic.origin_bytes / chunked.origin_bytes : 0;

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"fleet_nodes\": %d,\n"
               "  \"airlock_slots\": 64,\n"
               "  \"build_wall_ms\": %.3f,\n"
               "  \"wall_ms\": %.3f,\n"
               "  \"sim_seconds\": %.3f,\n"
               "  \"events\": %" PRIu64 ",\n"
               "  \"events_per_second\": %.0f,\n"
               "  \"ns_per_event\": %.1f,\n"
               "  \"chunked_wall_ms\": %.3f,\n"
               "  \"chunked_sim_seconds\": %.3f,\n"
               "  \"chunk_cache_hit_rate\": %.4f,\n"
               "  \"unchunked_origin_bytes\": %.0f,\n"
               "  \"chunked_origin_bytes\": %.0f,\n"
               "  \"origin_reduction\": %.1f\n"
               "}\n",
               nodes, classic.build_ms, classic.wall_ms, classic.sim_seconds,
               classic.events, events_per_second, ns_per_event, chunked.wall_ms,
               chunked.sim_seconds, chunked.cache_hit_rate, classic.origin_bytes,
               chunked.origin_bytes, origin_reduction);
  std::fclose(f);

  std::printf("provisioned %d nodes in %.1f simulated s (%.1f ms wall)\n",
              nodes, classic.sim_seconds, classic.wall_ms);
  std::printf("%" PRIu64 " events, %.0f events/s, %.1f ns/event\n",
              classic.events, events_per_second, ns_per_event);
  std::printf("chunked: %.1f simulated s, hit rate %.3f, origin %.0f MiB vs "
              "%.0f MiB (%.1fx reduction)\n",
              chunked.sim_seconds, chunked.cache_hit_rate,
              chunked.origin_bytes / (1 << 20), classic.origin_bytes / (1 << 20),
              origin_reduction);
  std::printf("wrote %s\n", out_path);

  // The chunked path exists to stop every node pulling its full image from
  // the central store; hold the line here rather than in a separate guard.
  if (nodes >= 64 && origin_reduction < 5.0) {
    std::fprintf(stderr,
                 "FAIL: chunked distribution reduced origin bytes only %.1fx "
                 "(floor 5.0x)\n",
                 origin_reduction);
    return 1;
  }
  return 0;
}
