// Fleet-scale provisioning: every node in a 4096-machine datacenter
// provisioned concurrently through the BMI service, measured in host time
// per simulated event.
//
// This is the control-plane stress twin of fleet_attestation: thousands
// of boot flows in flight means the event queue carries a huge population
// of in-flight timers (DHCP retries, RPC timeouts, transfer completions)
// with constant schedule/cancel churn — exactly the shape the timing-wheel
// scheduler is built for.  The bench reports simulated provisioning time
// for the whole fleet plus the host-side events_per_second / ns_per_event
// the regression guard tracks.
//
// The calibration is scaled for fleet runs: LinuxBoot in flash (no iPXE
// chain-load), a 32 MiB boot image, and 64 concurrent airlock slots so
// the run exercises parallelism instead of the prototype's single-airlock
// queue (Fig. 5 covers that regime).
//
// Usage: fleet_provisioning [output-path] [--nodes=N]
//   (default output: BENCH_provisioning.json, default fleet 4096.)

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/core/cloud.h"
#include "src/core/enclave.h"

namespace {

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bolted;
  const char* out_path = "BENCH_provisioning.json";
  int nodes = 4096;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--nodes=", 8) == 0 && argv[i][8] != '\0') {
      nodes = std::atoi(argv[i] + 8);
    } else {
      out_path = argv[i];
    }
  }
  if (nodes <= 0) {
    std::fprintf(stderr, "--nodes must be positive\n");
    return 2;
  }

  core::CloudConfig config;
  config.num_machines = nodes;
  config.linuxboot_in_flash = true;
  config.racks = nodes >= 256 ? 8 : 1;
  config.cal.boot_read_bytes = 32ull << 20;
  config.cal.max_concurrent_airlocks = 64;

  const auto build_start = Clock::now();
  core::Cloud cloud(config);
  const double build_ms = MillisSince(build_start);

  // Alice's profile: no attestation, no encryption — the flow is pure
  // control plane + boot I/O, so the event rate measures the scheduler
  // and frame path rather than ECDSA.
  core::Enclave enclave(cloud, "fleet", core::TrustProfile::Alice(), 42);

  // The tenant rolls the fleet in waves: 64 nodes in flight at a time
  // (matching the airlock capacity), the way a real rollout paces itself
  // so concurrent image fetches don't starve each other into RPC
  // timeouts.  The event queue still carries every waiting node's state,
  // so the scheduler sees the full fleet.
  sim::Semaphore rollout(cloud.sim(), config.cal.max_concurrent_airlocks);
  std::vector<core::ProvisionOutcome> outcomes(static_cast<size_t>(nodes));
  auto provision = [&](int i) -> sim::Task {
    co_await rollout.Acquire();
    sim::SemaphoreGuard slot(rollout);
    co_await enclave.ProvisionNode(cloud.node_name(static_cast<size_t>(i)),
                                   &outcomes[static_cast<size_t>(i)]);
  };
  for (int i = 0; i < nodes; ++i) {
    cloud.sim().Spawn(provision(i));
  }

  const auto start = Clock::now();
  cloud.sim().Run();
  const double wall_ms = MillisSince(start);

  for (int i = 0; i < nodes; ++i) {
    if (!outcomes[static_cast<size_t>(i)].success) {
      std::fprintf(stderr, "provisioning failed for %s: %s\n",
                   cloud.node_name(static_cast<size_t>(i)).c_str(),
                   outcomes[static_cast<size_t>(i)].failure.c_str());
      return 1;
    }
  }

  const uint64_t events = cloud.sim().events_processed();
  const double sim_seconds = cloud.sim().now().ToSecondsF();
  const double events_per_second =
      static_cast<double>(events) / (wall_ms / 1e3);
  const double ns_per_event = wall_ms * 1e6 / static_cast<double>(events);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"fleet_nodes\": %d,\n"
               "  \"airlock_slots\": %d,\n"
               "  \"build_wall_ms\": %.3f,\n"
               "  \"wall_ms\": %.3f,\n"
               "  \"sim_seconds\": %.3f,\n"
               "  \"events\": %" PRIu64 ",\n"
               "  \"events_per_second\": %.0f,\n"
               "  \"ns_per_event\": %.1f\n"
               "}\n",
               nodes, config.cal.max_concurrent_airlocks, build_ms, wall_ms,
               sim_seconds, events, events_per_second, ns_per_event);
  std::fclose(f);

  std::printf("provisioned %d nodes in %.1f simulated s (%.1f ms wall)\n",
              nodes, sim_seconds, wall_ms);
  std::printf("%" PRIu64 " events, %.0f events/s, %.1f ns/event\n", events,
              events_per_second, ns_per_event);
  std::printf("wrote %s\n", out_path);
  return 0;
}
