// Figure 5: provisioning time as the number of concurrently booting
// servers grows (1, 2, 4, 8, 16), attested and unattested, with the
// vendor-UEFI firmware (as in the paper's cluster).
//
// Paper shape: both curves are relatively flat to 8 nodes; at 16 the
// unattested case degrades on the small Ceph deployment / iSCSI server,
// and the attested case degrades more because the prototype supports a
// single airlock — attestation is serialized.

#include <vector>

#include "bench/bench_util.h"

namespace bolted {
namespace {

double RunConcurrent(int nodes, bool attested) {
  core::CloudConfig config;
  config.num_machines = nodes;
  config.linuxboot_in_flash = false;  // M620s keep vendor UEFI
  core::Cloud cloud(config);

  core::TrustProfile profile;
  profile.use_attestation = attested;
  core::Enclave enclave(cloud, "tenant", profile, 99);

  std::vector<core::ProvisionOutcome> outcomes(static_cast<size_t>(nodes));
  double last_done = 0;
  auto one = [&](int i) -> sim::Task {
    co_await enclave.ProvisionNode(cloud.node_name(static_cast<size_t>(i)),
                                   &outcomes[static_cast<size_t>(i)]);
    last_done = std::max(last_done, cloud.sim().now().ToSecondsF());
  };
  auto all = [&]() -> sim::Task {
    sim::TaskGroup group(cloud.sim());
    for (int i = 0; i < nodes; ++i) {
      group.Spawn(one(i));
    }
    co_await group.WaitAll();
  };
  cloud.sim().Spawn(all());
  cloud.sim().Run();

  for (const auto& outcome : outcomes) {
    if (!outcome.success) {
      std::fprintf(stderr, "provisioning failed: %s\n", outcome.failure.c_str());
      std::abort();
    }
  }
  return last_done;
}

}  // namespace
}  // namespace bolted

int main() {
  using bolted::bench::PrintHeader;

  PrintHeader("Figure 5: Bolted concurrency (UEFI, time until ALL nodes ready)");
  std::printf("%8s %16s %16s\n", "nodes", "unattested (s)", "attested (s)");
  double una[5];
  double att[5];
  const int counts[] = {1, 2, 4, 8, 16};
  for (int i = 0; i < 5; ++i) {
    una[i] = bolted::RunConcurrent(counts[i], false);
    att[i] = bolted::RunConcurrent(counts[i], true);
    std::printf("%8d %16.0f %16.0f\n", counts[i], una[i], att[i]);
  }

  PrintHeader("Figure 5: headline checks");
  std::printf("unattested flat to 8 nodes: %.0f -> %.0f s (+%.0f%%)\n", una[0],
              una[3], 100.0 * (una[3] - una[0]) / una[0]);
  std::printf("unattested degradation at 16: +%.0f%% over 1 node\n",
              100.0 * (una[4] - una[0]) / una[0]);
  std::printf("attested degradation at 16:   +%.0f%% over 1 node "
              "(single-airlock serialization)\n",
              100.0 * (att[4] - att[0]) / att[0]);
  return 0;
}
