// Figure 5: provisioning time as the number of concurrently booting
// servers grows (1, 2, 4, 8, 16), attested and unattested, with the
// vendor-UEFI firmware (as in the paper's cluster).
//
// Paper shape: both curves are relatively flat to 8 nodes; at 16 the
// unattested case degrades on the small Ceph deployment / iSCSI server,
// and the attested case degrades more because the prototype supports a
// single airlock — attestation is serialized.
//
// Beyond the paper: a 10x section (160 nodes, 8 racks) that re-runs the
// unattested sweep with and without content-addressed chunked
// distribution.  At this scale the central object store is the bottleneck
// the paper's Fig. 5 hints at; the rack chunk caches absorb it and the
// origin-byte column shows why.  `--tenx-only` skips the paper sweep
// (handy for the bench_smoke ctest entry).

#include <cstring>
#include <vector>

#include "bench/bench_util.h"

namespace bolted {
namespace {

struct ConcurrencyResult {
  double last_done = 0;     // sim seconds until ALL nodes are up
  double origin_bytes = 0;  // OSD bytes the run pulled from the store
  double hit_rate = 0;      // chunked runs only
};

ConcurrencyResult RunConcurrent(int nodes, bool attested, bool chunked) {
  core::CloudConfig config;
  config.num_machines = nodes;
  config.linuxboot_in_flash = false;  // M620s keep vendor UEFI
  config.racks = nodes >= 32 ? 8 : 1;
  config.chunked_distribution = chunked;
  core::Cloud cloud(config);

  core::TrustProfile profile;
  profile.use_attestation = attested;
  core::Enclave enclave(cloud, "tenant", profile, 99);

  std::vector<core::ProvisionOutcome> outcomes(static_cast<size_t>(nodes));
  ConcurrencyResult result;
  auto one = [&](int i) -> sim::Task {
    co_await enclave.ProvisionNode(cloud.node_name(static_cast<size_t>(i)),
                                   &outcomes[static_cast<size_t>(i)]);
    result.last_done = std::max(result.last_done, cloud.sim().now().ToSecondsF());
  };
  auto all = [&]() -> sim::Task {
    sim::TaskGroup group(cloud.sim());
    for (int i = 0; i < nodes; ++i) {
      group.Spawn(one(i));
    }
    co_await group.WaitAll();
  };
  cloud.sim().Spawn(all());
  cloud.sim().Run();

  for (const auto& outcome : outcomes) {
    if (!outcome.success) {
      std::fprintf(stderr, "provisioning failed: %s\n", outcome.failure.c_str());
      std::abort();
    }
  }
  for (int h = 0; h < cloud.ceph().config().num_osd_hosts; ++h) {
    result.origin_bytes += cloud.ceph().osd_resource(h).total_served();
  }
  if (chunked) {
    uint64_t served = 0;
    uint64_t local = 0;
    for (size_t c = 0; c < cloud.num_rack_chunk_caches(); ++c) {
      const auto& stats = cloud.rack_chunk_cache(c).stats();
      served += stats.hits + stats.coalesced + stats.origin_fetches +
                stats.peer_redirects;
      local += stats.hits + stats.coalesced + stats.peer_redirects;
    }
    result.hit_rate =
        served == 0 ? 0 : static_cast<double>(local) / static_cast<double>(served);
  }
  return result;
}

void RunTenX() {
  using bolted::bench::PrintHeader;
  // 10x the paper's largest point, spread over 8 racks.
  const int nodes = 160;
  PrintHeader("Figure 5 at 10x: 160 unattested nodes, classic vs chunked");
  const ConcurrencyResult classic =
      RunConcurrent(nodes, /*attested=*/false, /*chunked=*/false);
  const ConcurrencyResult chunked =
      RunConcurrent(nodes, /*attested=*/false, /*chunked=*/true);
  std::printf("%16s %16s %16s %10s\n", "variant", "all ready (s)",
              "origin (MiB)", "hit rate");
  std::printf("%16s %16.0f %16.0f %10s\n", "classic", classic.last_done,
              classic.origin_bytes / (1 << 20), "-");
  std::printf("%16s %16.0f %16.0f %10.3f\n", "chunked", chunked.last_done,
              chunked.origin_bytes / (1 << 20), chunked.hit_rate);
  const double reduction = chunked.origin_bytes > 0
                               ? classic.origin_bytes / chunked.origin_bytes
                               : 0;
  std::printf("origin-byte reduction: %.1fx\n", reduction);
  if (reduction < 5.0) {
    std::fprintf(stderr,
                 "FAIL: chunked distribution reduced origin bytes only %.1fx "
                 "(floor 5.0x)\n",
                 reduction);
    std::abort();
  }
}

}  // namespace
}  // namespace bolted

int main(int argc, char** argv) {
  using bolted::bench::PrintHeader;

  bool tenx_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tenx-only") == 0) {
      tenx_only = true;
    } else {
      std::fprintf(stderr, "usage: %s [--tenx-only]\n", argv[0]);
      return 2;
    }
  }

  if (!tenx_only) {
    PrintHeader(
        "Figure 5: Bolted concurrency (UEFI, time until ALL nodes ready)");
    std::printf("%8s %16s %16s\n", "nodes", "unattested (s)", "attested (s)");
    double una[5];
    double att[5];
    const int counts[] = {1, 2, 4, 8, 16};
    for (int i = 0; i < 5; ++i) {
      una[i] = bolted::RunConcurrent(counts[i], false, false).last_done;
      att[i] = bolted::RunConcurrent(counts[i], true, false).last_done;
      std::printf("%8d %16.0f %16.0f\n", counts[i], una[i], att[i]);
    }

    PrintHeader("Figure 5: headline checks");
    std::printf("unattested flat to 8 nodes: %.0f -> %.0f s (+%.0f%%)\n", una[0],
                una[3], 100.0 * (una[3] - una[0]) / una[0]);
    std::printf("unattested degradation at 16: +%.0f%% over 1 node\n",
                100.0 * (una[4] - una[0]) / una[0]);
    std::printf("attested degradation at 16:   +%.0f%% over 1 node "
                "(single-airlock serialization)\n",
                100.0 * (att[4] - att[0]) / att[0]);
  }

  bolted::RunTenX();
  return 0;
}
