// Sharded-simulation throughput: one fleet, swept over shard counts.
//
// A 4096-node datacenter (64 racks x 64 nodes) runs a steady control-
// plane workload: every node fires a local event each 5-15 us (rng
// jitter), and one in eight of those sends a 128-byte frame to a random
// other rack.  The identical seeded scenario is executed with shards (and
// worker threads) in {1, 2, 4, 8}; shards=1/workers=1 is the
// single-threaded oracle, and every other configuration must reproduce
// its per-rack trace digests exactly — a digest mismatch is a correctness
// bug and the bench fails, not a performance result.
//
// The headline numbers are host-side events/second per shard count and
// the speedup_shardsN ratios.  Parallel speedup obviously requires
// cores: the JSON carries "host_cores" so the regression guard
// (scripts/bench_guard.py) only enforces the >= 3x @ 4 shards bar on
// hosts with at least 4 cores.  On smaller hosts the sweep still runs —
// the digest cross-check and the (honest) thread-overhead numbers are
// worth having everywhere.
//
// Usage: fleet_sharding [output-path] [--nodes=N] [--horizon-ms=M]
//                       [--pcap=<rack>:<file>]
//   (default: 4096 nodes, 5 simulated ms, writes BENCH_sharding.json)
//
// --pcap attaches a rack-local Network to the named rack: its cross-shard
// ingress is delivered through Network::InjectFrame (modeled NIC
// occupancy included) and captured to a deterministic pcap file with
// sim-time timestamps.  Capture mode runs the tapped rack's Network in
// every sweep configuration — the per-rack digest cross-check then also
// covers uplink ingress under sharding — but only the shards=1 oracle run
// writes the file, so the capture holds exactly one run's frames and is
// byte-identical regardless of host parallelism.

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/net/network.h"
#include "src/net/pcap.h"
#include "src/sim/shard.h"
#include "src/sim/simulation.h"

namespace {

using bolted::sim::CrossShardFrame;
using bolted::sim::Duration;
using bolted::sim::Rack;
using bolted::sim::ShardedFleet;
using bolted::sim::ShardOptions;
using bolted::sim::Time;

using Clock = std::chrono::steady_clock;

constexpr uint64_t kSeed = 0x73686172646564u;  // "sharded"

struct Config {
  uint32_t racks = 64;
  uint32_t nodes_per_rack = 64;
  int64_t horizon_ns = 5'000'000;  // 5 simulated ms
  int64_t pcap_rack = -1;          // --pcap: rack whose ingress is modeled
};

struct RunResult {
  uint64_t events = 0;
  uint64_t frames = 0;
  uint64_t windows = 0;
  uint64_t spills = 0;
  double wall_ms = 0;
  uint64_t fleet_digest = 0;
  std::vector<uint64_t> rack_digests;
};

// Self-rescheduling per-node control loop.  All rng draws come from the
// owning rack's seeded stream inside the rack's own event executions, so
// the schedule is a pure function of (seed, rack) — shard/worker layout
// cannot perturb it.
void NodeStep(ShardedFleet& fleet, Rack& rack, uint32_t node) {
  auto& rng = rack.sim().rng();
  if (rng.NextBelow(8) == 0) {
    const uint32_t racks = fleet.num_racks();
    const uint32_t dst =
        (rack.index() + 1 + static_cast<uint32_t>(rng.NextBelow(racks - 1))) %
        racks;
    rack.Send(dst, fleet.lookahead() + Duration::Nanoseconds(
                       static_cast<int64_t>(rng.NextBelow(2000))),
              /*kind=*/1, /*bytes=*/128, /*payload0=*/node);
  }
  const auto next = static_cast<int64_t>(5000 + rng.NextBelow(10000));
  rack.sim().Schedule(Duration::Nanoseconds(next),
                      [&fleet, &rack, node] { NodeStep(fleet, rack, node); });
}

RunResult RunFleet(const Config& config, uint32_t shards, uint32_t workers,
                   bolted::net::PcapWriter* pcap_writer) {
  ShardOptions options;
  options.racks = config.racks;
  options.shards = shards;
  options.workers = workers;
  options.seed = kSeed;
  options.lookahead = Duration::Microseconds(50);
  options.pin_workers = true;
  ShardedFleet fleet(options);

  // Capture mode: the tapped rack hosts a rack-local Network whose one
  // port models the rack uplink; ingress frames ride Network::InjectFrame
  // (NIC occupancy, link-state and VLAN checks, frame digest, pcap tap).
  constexpr bolted::net::VlanId kVlan = 7;
  std::unique_ptr<bolted::net::Network> tap_network;
  bolted::net::Address tap_port = 0;
  if (config.pcap_rack >= 0) {
    Rack& rack = fleet.rack(static_cast<uint32_t>(config.pcap_rack));
    tap_network = std::make_unique<bolted::net::Network>(
        rack.sim(), Duration::Microseconds(10), 1e9);
    bolted::net::Endpoint& port = tap_network->CreateEndpoint(
        "uplink-" + std::to_string(config.pcap_rack));
    tap_network->AttachToVlan(port.address(), kVlan);
    tap_port = port.address();
    if (pcap_writer != nullptr) {
      tap_network->AttachPcapTap(tap_port, pcap_writer);
    }
  }

  // Frame ingress costs the destination rack one follow-up event (the
  // "NIC interrupt" of the model).
  fleet.set_frame_handler([&config, &tap_network, tap_port](
                              Rack& rack, const CrossShardFrame& frame) {
    rack.sim().Schedule(Duration::Microseconds(2), [] {});
    if (tap_network != nullptr &&
        rack.index() == static_cast<uint32_t>(config.pcap_rack)) {
      bolted::net::Message message;
      message.dst = tap_port;
      message.src = 9000 + frame.src_rack;
      message.kind = "shard.ingress";
      message.wire_bytes = frame.bytes;
      message.rpc_id = frame.payload0;
      tap_network->InjectFrame(std::move(message), kVlan);
    }
  });

  for (uint32_t r = 0; r < config.racks; ++r) {
    Rack& rack = fleet.rack(r);
    for (uint32_t n = 0; n < config.nodes_per_rack; ++n) {
      // Staggered starts so rack queues are never in lockstep.
      rack.sim().Schedule(Duration::Nanoseconds(1 + (n * 137) % 5000),
                          [&fleet, &rack, n] { NodeStep(fleet, rack, n); });
    }
  }

  const auto start = Clock::now();
  fleet.RunUntil(Time::FromNanoseconds(config.horizon_ns));
  RunResult result;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  result.events = fleet.events_processed();
  result.frames = fleet.frames_routed();
  result.windows = fleet.windows();
  result.spills = fleet.ring_spills();
  result.fleet_digest = fleet.fleet_digest();
  for (uint32_t r = 0; r < config.racks; ++r) {
    result.rack_digests.push_back(fleet.rack_digest(r));
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_sharding.json";
  uint32_t nodes = 4096;
  int64_t horizon_ms = 5;
  int64_t pcap_rack = -1;
  std::string pcap_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--nodes=", 8) == 0 && argv[i][8] != '\0') {
      nodes = static_cast<uint32_t>(std::strtoul(argv[i] + 8, nullptr, 10));
    } else if (std::strncmp(argv[i], "--horizon-ms=", 13) == 0 &&
               argv[i][13] != '\0') {
      horizon_ms = std::strtol(argv[i] + 13, nullptr, 10);
    } else if (std::strncmp(argv[i], "--pcap=", 7) == 0) {
      const char* spec = argv[i] + 7;
      const char* colon = std::strchr(spec, ':');
      if (colon == nullptr || colon == spec || colon[1] == '\0') {
        std::fprintf(stderr, "--pcap wants <rack>:<file>\n");
        return 2;
      }
      pcap_rack = std::strtol(spec, nullptr, 10);
      pcap_path = colon + 1;
    } else {
      out_path = argv[i];
    }
  }

  Config config;
  // The shard sweep tops out at 8, so keep at least 8 racks; beyond that,
  // 64 nodes per rack (the paper's rack size).
  config.racks = nodes / 64 < 8 ? 8 : nodes / 64;
  config.nodes_per_rack = nodes / config.racks;
  config.horizon_ns = horizon_ms * 1'000'000;
  config.pcap_rack = pcap_rack;
  const uint32_t total_nodes = config.racks * config.nodes_per_rack;
  if (pcap_rack >= 0 && pcap_rack >= static_cast<int64_t>(config.racks)) {
    std::fprintf(stderr, "--pcap rack %" PRId64 " out of range (%u racks)\n",
                 pcap_rack, config.racks);
    return 2;
  }

  bolted::net::PcapWriter pcap_writer;
  if (pcap_rack >= 0 && !pcap_writer.Open(pcap_path)) {
    std::fprintf(stderr, "cannot open pcap output %s\n", pcap_path.c_str());
    return 2;
  }

  const uint32_t shard_counts[] = {1, 2, 4, 8};
  std::vector<RunResult> results;
  for (const uint32_t shards : shard_counts) {
    // Workers scale with shards: the sweep measures the whole parallel
    // runtime (threads included), not just the partitioning.  Only the
    // first (oracle) configuration writes the capture — later runs would
    // append duplicate sweeps to the file.
    const bool capture = pcap_rack >= 0 && results.empty();
    results.push_back(
        RunFleet(config, shards, shards, capture ? &pcap_writer : nullptr));
  }

  // Digest cross-check against the shards=1/workers=1 oracle.
  const RunResult& oracle = results[0];
  for (size_t i = 1; i < results.size(); ++i) {
    if (results[i].fleet_digest != oracle.fleet_digest ||
        results[i].rack_digests != oracle.rack_digests ||
        results[i].events != oracle.events) {
      std::fprintf(stderr,
                   "shards=%u diverged from oracle (events %" PRIu64
                   " vs %" PRIu64 ", fleet digest %016" PRIx64
                   " vs %016" PRIx64 ")\n",
                   shard_counts[i], results[i].events, oracle.events,
                   results[i].fleet_digest, oracle.fleet_digest);
      return 1;
    }
  }

  std::string json = "{\n";
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "  \"nodes\": %u,\n"
                "  \"racks\": %u,\n"
                "  \"host_cores\": %u,\n"
                "  \"sharding_horizon_ms\": %" PRId64 ",\n",
                total_nodes, config.racks,
                std::thread::hardware_concurrency(), horizon_ms);
  json += buf;
  const double oracle_eps =
      static_cast<double>(oracle.events) / (oracle.wall_ms / 1e3);
  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    const double eps = static_cast<double>(r.events) / (r.wall_ms / 1e3);
    const double ns_per_event =
        r.wall_ms * 1e6 / static_cast<double>(r.events);
    std::snprintf(buf, sizeof(buf),
                  "  \"sharding_shards%u_events\": %" PRIu64 ",\n"
                  "  \"sharding_shards%u_frames_routed\": %" PRIu64 ",\n"
                  "  \"sharding_shards%u_windows\": %" PRIu64 ",\n"
                  "  \"sharding_shards%u_ring_spills\": %" PRIu64 ",\n"
                  "  \"sharding_shards%u_wall_ms\": %.3f,\n"
                  "  \"sharding_shards%u_events_per_second\": %.0f,\n"
                  "  \"sharding_shards%u_ns_per_event\": %.1f,\n"
                  "  \"sharding_speedup_shards%u\": %.3f%s\n",
                  shard_counts[i], r.events, shard_counts[i], r.frames,
                  shard_counts[i], r.windows, shard_counts[i], r.spills,
                  shard_counts[i], r.wall_ms, shard_counts[i], eps,
                  shard_counts[i], ns_per_event, shard_counts[i],
                  oracle_eps > 0 ? eps / oracle_eps : 0.0,
                  i + 1 == results.size() ? "" : ",");
    json += buf;
  }
  json += "}\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);

  for (size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    std::printf("shards=%u  %9" PRIu64 " events  %8" PRIu64
                " frames  %6" PRIu64 " windows  %8.1f ms  %.2fx\n",
                shard_counts[i], r.events, r.frames, r.windows, r.wall_ms,
                oracle.wall_ms > 0 ? oracle.wall_ms / r.wall_ms : 0.0);
  }
  if (pcap_rack >= 0) {
    const uint64_t frames = pcap_writer.frames_written();
    const uint64_t bytes = pcap_writer.bytes_written();
    const bool clean = pcap_writer.Close();
    std::printf("pcap rack %" PRId64 ": %" PRIu64 " ingress frames, %" PRIu64
                " bytes -> %s%s\n",
                pcap_rack, frames, bytes, pcap_path.c_str(),
                clean ? "" : " (WRITE FAILED)");
  }
  std::printf("digest %016" PRIx64 " (all shard counts identical)\nwrote %s\n",
              oracle.fleet_digest, out_path);
  return 0;
}
