// Figure 4: time to provision one server, with per-phase breakdown.
//
// Paper rows: Foreman (stateful baseline), then {UEFI, LinuxBoot-in-ROM}
// x {no attestation, attestation, full attestation (LUKS + IPsec)}.
// Headline results being reproduced:
//   * LinuxBoot ROM: < 3 min unattested, < 4 min attested;
//   * attestation adds a modest ~25%;
//   * UEFI full attestation (~7 min) is still ~1.6x faster than Foreman;
//   * LinuxBoot POST is ~3x faster than UEFI POST.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "src/provision/foreman.h"

namespace bolted {
namespace {

struct Scenario {
  std::string label;
  bool linuxboot;
  bool attest;
  bool encrypt;
};

double RunScenario(const Scenario& s, bool print_phases) {
  core::CloudConfig config;
  config.num_machines = 1;
  config.linuxboot_in_flash = s.linuxboot;
  core::Cloud cloud(config);

  core::TrustProfile profile;
  profile.use_attestation = s.attest;
  profile.encrypt_disk = s.encrypt;
  profile.encrypt_network = s.encrypt;
  core::Enclave enclave(cloud, "tenant", profile, 42);

  core::ProvisionOutcome outcome;
  auto flow = [&]() -> sim::Task {
    co_await enclave.ProvisionNode("node-0", &outcome);
  };
  cloud.sim().Spawn(flow());
  cloud.sim().Run();
  if (!outcome.success) {
    std::fprintf(stderr, "%s failed: %s\n", s.label.c_str(), outcome.failure.c_str());
    std::abort();
  }
  if (print_phases) {
    std::printf("%s phase breakdown:\n%s", s.label.c_str(),
                outcome.trace.ToString().c_str());
  }
  return outcome.trace.total().ToSecondsF();
}

double RunForeman() {
  core::CloudConfig config;
  config.num_machines = 1;
  config.linuxboot_in_flash = false;  // Foreman uses the vendor firmware
  core::Cloud cloud(config);

  provision::PhaseTrace trace(cloud.sim());
  provision::ForemanOptions options;
  auto flow = [&]() -> sim::Task {
    co_await provision::ForemanProvision(*cloud.FindMachine("node-0"), options, &trace);
  };
  cloud.sim().Spawn(flow());
  cloud.sim().Run();
  std::printf("Foreman phase breakdown:\n%s", trace.ToString().c_str());
  return trace.total().ToSecondsF();
}

}  // namespace
}  // namespace bolted

int main() {
  using bolted::bench::PrintHeader;
  using bolted::bench::PrintRow;

  PrintHeader("Figure 4: provisioning time of one server");
  const double foreman = bolted::RunForeman();

  const bolted::Scenario scenarios[] = {
      {"UEFI / no attestation", false, false, false},
      {"UEFI / attestation", false, true, false},
      {"UEFI / full attestation", false, true, true},
      {"LinuxBoot ROM / no attestation", true, false, false},
      {"LinuxBoot ROM / attestation", true, true, false},
      {"LinuxBoot ROM / full attestation", true, true, true},
  };
  double totals[6];
  int index = 0;
  for (const auto& scenario : scenarios) {
    totals[index++] = bolted::RunScenario(scenario, /*print_phases=*/true);
  }

  PrintHeader("Figure 4: totals");
  PrintRow("Foreman (stateful baseline)", foreman, "s");
  index = 0;
  for (const auto& scenario : scenarios) {
    PrintRow(scenario.label, totals[index++], "s");
  }

  PrintHeader("Figure 4: headline checks (paper expectation)");
  PrintRow("LinuxBoot unattested (< 180 s)", totals[3], "s");
  PrintRow("LinuxBoot attested (< 240 s)", totals[4], "s");
  PrintRow("attestation overhead (~ +25 %)",
           100.0 * (totals[4] - totals[3]) / totals[3], "%");
  PrintRow("Foreman / UEFI-full (~1.6x)", foreman / totals[2], "x");
  return 0;
}
