// Figure 4: time to provision one server, with per-phase breakdown.
//
// Paper rows: Foreman (stateful baseline), then {UEFI, LinuxBoot-in-ROM}
// x {no attestation, attestation, full attestation (LUKS + IPsec)}.
// Headline results being reproduced:
//   * LinuxBoot ROM: < 3 min unattested, < 4 min attested;
//   * attestation adds a modest ~25%;
//   * UEFI full attestation (~7 min) is still ~1.6x faster than Foreman;
//   * LinuxBoot POST is ~3x faster than UEFI POST.

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/obs/obs.h"
#include "src/provision/chunk_cache.h"
#include "src/provision/foreman.h"

namespace bolted {
namespace {

struct Scenario {
  std::string label;
  bool linuxboot;
  bool attest;
  bool encrypt;
};

// When `trace_path` is non-null, an obs::Registry rides along on the
// scenario's simulation and the full chrome://tracing JSON (provisioning
// phase spans, TPM command latencies, RPC/frame counters) is written there.
double RunScenario(const Scenario& s, bool print_phases,
                   const char* trace_path = nullptr) {
  core::CloudConfig config;
  config.num_machines = 1;
  config.linuxboot_in_flash = s.linuxboot;
  core::Cloud cloud(config);

#if BOLTED_OBS
  std::unique_ptr<obs::Registry> registry;
  if (trace_path != nullptr) {
    registry = std::make_unique<obs::Registry>(cloud.sim());
  }
#endif

  core::TrustProfile profile;
  profile.use_attestation = s.attest;
  profile.encrypt_disk = s.encrypt;
  profile.encrypt_network = s.encrypt;
  core::Enclave enclave(cloud, "tenant", profile, 42);

  core::ProvisionOutcome outcome;
  auto flow = [&]() -> sim::Task {
    co_await enclave.ProvisionNode("node-0", &outcome);
  };
  cloud.sim().Spawn(flow());
  cloud.sim().Run();
  if (!outcome.success) {
    std::fprintf(stderr, "%s failed: %s\n", s.label.c_str(), outcome.failure.c_str());
    std::abort();
  }
  if (print_phases) {
    std::printf("%s phase breakdown:\n%s", s.label.c_str(),
                outcome.trace.ToString().c_str());
  }
#if BOLTED_OBS
  if (registry != nullptr) {
    if (!registry->WriteChromeTrace(trace_path)) {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_path);
      std::abort();
    }
    std::printf("wrote chrome trace (%s) to %s\n", s.label.c_str(), trace_path);
  }
#else
  if (trace_path != nullptr) {
    std::fprintf(stderr, "--trace ignored: built with BOLTED_OBS=0\n");
  }
#endif
  return outcome.trace.total().ToSecondsF();
}

// With `chunked`, the OS install bytes arrive as digest-verified chunks
// through the rack chunk cache instead of a straight stream from the
// provisioning server — the Foreman flow's half of the content-addressed
// distribution path (DESIGN.md §14).
double RunForeman(bool chunked) {
  core::CloudConfig config;
  config.num_machines = 1;
  config.linuxboot_in_flash = false;  // Foreman uses the vendor firmware
  config.chunked_distribution = chunked;
  core::Cloud cloud(config);

  machine::Machine& machine = *cloud.FindMachine("node-0");
  provision::ForemanOptions options;
  std::unique_ptr<provision::ChunkFetcher> fetcher;
  storage::ChunkManifest manifest;
  if (chunked) {
    cloud.BridgeServiceOntoVlan(machine.endpoint().address(),
                                cloud.provisioning_vlan());
    manifest = storage::ChunkManifest::ForImage(
        "foreman-install", options.install_bytes, cloud.cal().chunk_bytes);
    provision::RackChunkCache* cache =
        cloud.rack_chunk_cache_for(machine.endpoint().address());
    fetcher = std::make_unique<provision::ChunkFetcher>(
        cloud.sim(), machine.rpc(), cache->address(), &machine.crypto_cpu());
    fetcher->Start();
    options.chunked_fetch = [&](uint64_t bytes) -> sim::Task {
      bool ok = false;
      co_await fetcher->FetchPrefix(manifest, bytes, &ok);
      if (!ok) {
        std::fprintf(stderr, "chunked install fetch failed\n");
        std::abort();
      }
    };
  }

  provision::PhaseTrace trace(cloud.sim());
  trace.Start(cloud.sim(), "provision:foreman");
  auto flow = [&]() -> sim::Task {
    co_await provision::ForemanProvision(machine, options, &trace);
  };
  cloud.sim().Spawn(flow());
  cloud.sim().Run();
  if (!chunked) {
    std::printf("Foreman phase breakdown:\n%s", trace.ToString().c_str());
  }
  return trace.total().ToSecondsF();
}

}  // namespace
}  // namespace bolted

int main(int argc, char** argv) {
  using bolted::bench::PrintHeader;
  using bolted::bench::PrintRow;

  // --trace=out.json: export a chrome://tracing JSON of the richest
  // scenario (LinuxBoot ROM / full attestation) alongside the usual rows.
  const char* trace_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0 && argv[i][8] != '\0') {
      trace_path = argv[i] + 8;
    } else {
      std::fprintf(stderr, "usage: %s [--trace=out.json]\n", argv[0]);
      return 2;
    }
  }

  PrintHeader("Figure 4: provisioning time of one server");
  const double foreman = bolted::RunForeman(/*chunked=*/false);
  const double foreman_chunked = bolted::RunForeman(/*chunked=*/true);

  const bolted::Scenario scenarios[] = {
      {"UEFI / no attestation", false, false, false},
      {"UEFI / attestation", false, true, false},
      {"UEFI / full attestation", false, true, true},
      {"LinuxBoot ROM / no attestation", true, false, false},
      {"LinuxBoot ROM / attestation", true, true, false},
      {"LinuxBoot ROM / full attestation", true, true, true},
  };
  double totals[6];
  int index = 0;
  for (const auto& scenario : scenarios) {
    const bool traced = index == 5;  // the full-attestation LinuxBoot row
    totals[index++] = bolted::RunScenario(scenario, /*print_phases=*/true,
                                          traced ? trace_path : nullptr);
  }

  PrintHeader("Figure 4: totals");
  PrintRow("Foreman (stateful baseline)", foreman, "s");
  PrintRow("Foreman (chunked rack cache)", foreman_chunked, "s");
  index = 0;
  for (const auto& scenario : scenarios) {
    PrintRow(scenario.label, totals[index++], "s");
  }

  PrintHeader("Figure 4: headline checks (paper expectation)");
  PrintRow("LinuxBoot unattested (< 180 s)", totals[3], "s");
  PrintRow("LinuxBoot attested (< 240 s)", totals[4], "s");
  PrintRow("attestation overhead (~ +25 %)",
           100.0 * (totals[4] - totals[3]) / totals[3], "%");
  PrintRow("Foreman / UEFI-full (~1.6x)", foreman / totals[2], "x");
  return 0;
}
