// Figure 3b: IPsec overhead between two servers (iperf-style bulk flow)
// for hardware (AES-NI) and software AES at MTU 1500 and 9000.
//
// Paper shape: even the best case (HW + jumbo frames) is ~2x below the
// plain 10 Gbit line; software AES and MTU 1500 degrade further; ESP
// processing burns 60-80 % of one core in the HW case.

#include <cinttypes>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "src/net/ipsec.h"
#include "src/net/network.h"
#include "src/net/pcap.h"
#include "src/net/resource.h"

namespace bolted {
namespace {

struct Row {
  std::string label;
  double gbit;
  double core_utilisation;
};

Row RunIperf(const std::string& label, const net::IpsecParams& params) {
  sim::Simulation simu;
  const net::IpsecCostModel model;
  net::SharedResource src_nic(simu, 1.25e9, "src.nic");
  net::SharedResource dst_nic(simu, 1.25e9, "dst.nic");
  net::SharedResource src_cpu(simu, model.cpu_hz, "src.crypto");
  net::SharedResource dst_cpu(simu, model.cpu_hz, "dst.crypto");

  const double bytes = 20e9;  // 20 GB flow
  double seconds = 0;
  auto flow = [&]() -> sim::Task {
    const double t0 = simu.now().ToSecondsF();
    co_await net::BulkTransfer(simu, {&src_nic, &src_cpu}, {&dst_nic, &dst_cpu},
                               bytes, params, model);
    seconds = simu.now().ToSecondsF() - t0;
  };
  simu.Spawn(flow());
  simu.Run();

  const double core = params.enabled
                          ? src_cpu.total_served() / (model.cpu_hz * seconds)
                          : 0.0;
  return Row{label, bytes * 8.0 / seconds / 1e9, core};
}

// A real ESP exchange over the simulated fabric: two switch ports on a
// shared VLAN, every frame sealed with AES-256-GCM and opened (replay
// check included) on the far side.  Optionally taps one port into a pcap
// capture (--pcap=client:/tmp/esp.pcap) so the framing is inspectable
// with wireshark/tcpdump — the capture is deterministic: same build, same
// bytes.
sim::Task EspReceiver(net::Endpoint& server, net::IpsecContext& sa,
                      int frames, uint64_t* verified) {
  for (int i = 0; i < frames; ++i) {
    net::Message m = co_await server.inbox().Recv();
    if (sa.Open(m.src, m.payload).has_value()) {
      ++*verified;
    }
  }
}

void RunEspExchange(const std::string& pcap_spec) {
  sim::Simulation simu;
  net::Network network(simu, sim::Duration::Microseconds(5), 1.25e9);
  net::Endpoint& client = network.CreateEndpoint("client");
  net::Endpoint& server = network.CreateEndpoint("server");
  network.AttachToVlan(client.address(), 2);
  network.AttachToVlan(server.address(), 2);

  net::PcapWriter writer;
  if (!pcap_spec.empty()) {
    const size_t colon = pcap_spec.find(':');
    const std::string link = pcap_spec.substr(0, colon);
    const std::string path =
        colon == std::string::npos ? "" : pcap_spec.substr(colon + 1);
    net::Endpoint* tap = network.FindByName(link);
    if (tap == nullptr || path.empty() || !writer.Open(path)) {
      std::fprintf(stderr,
                   "--pcap wants <link>:<file> with link in {client, server}; "
                   "got \"%s\"\n",
                   pcap_spec.c_str());
      std::exit(2);
    }
    network.AttachPcapTap(tap->address(), &writer);
  }

  net::IpsecContext client_sa;
  net::IpsecContext server_sa;
  const crypto::Bytes key(32, 0x42);
  client_sa.InstallSa(server.address(), key);
  server_sa.InstallSa(client.address(), key);

  constexpr int kFrames = 64;
  uint64_t verified = 0;
  simu.Spawn(EspReceiver(server, server_sa, kFrames, &verified));
  for (int i = 0; i < kFrames; ++i) {
    crypto::Bytes plain(1427, static_cast<uint8_t>(i));
    net::Message m;
    m.kind = "esp";
    m.payload = *client_sa.Seal(server.address(), plain);
    client.Post(server.address(), std::move(m));
  }
  simu.Run();

  std::printf("fabric ESP exchange: %d frames, %" PRIu64
              " opened+replay-checked, digest %016" PRIx64 "\n",
              kFrames, verified, network.frame_digest());
  if (!pcap_spec.empty()) {
    const uint64_t frames = writer.frames_written();
    const uint64_t bytes = writer.bytes_written();
    const bool clean = writer.Close();
    std::printf("pcap capture: %" PRIu64 " frames, %" PRIu64 " bytes%s\n",
                frames, bytes, clean ? "" : " (WRITE FAILED)");
  }
}

}  // namespace
}  // namespace bolted

int main(int argc, char** argv) {
  using bolted::bench::PrintHeader;

  std::string pcap_spec;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--pcap=", 7) == 0) {
      pcap_spec = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: fig3b_ipsec_iperf [--pcap=<link>:<file>]\n");
      return 2;
    }
  }

  PrintHeader("Figure 3b: IPsec overhead (iperf, 10 Gbit link, 20 GB flow)");
  const bolted::Row rows[] = {
      bolted::RunIperf("plain MTU 9000", {.enabled = false, .mtu = 9000}),
      bolted::RunIperf("plain MTU 1500", {.enabled = false, .mtu = 1500}),
      bolted::RunIperf("IPsec HW MTU 9000",
                       {.enabled = true, .hardware_aes = true, .mtu = 9000}),
      bolted::RunIperf("IPsec HW MTU 1500",
                       {.enabled = true, .hardware_aes = true, .mtu = 1500}),
      bolted::RunIperf("IPsec SW MTU 9000",
                       {.enabled = true, .hardware_aes = false, .mtu = 9000}),
      bolted::RunIperf("IPsec SW MTU 1500",
                       {.enabled = true, .hardware_aes = false, .mtu = 1500}),
  };
  std::printf("%-20s %12s %18s\n", "config", "Gbit/s", "crypto core util");
  for (const auto& row : rows) {
    std::printf("%-20s %12.2f %17.0f%%\n", row.label.c_str(), row.gbit,
                row.core_utilisation * 100.0);
  }

  PrintHeader("Figure 3b: headline checks");
  std::printf("plain / IPsec-HW-9000 degradation: %.2fx (paper ~2x)\n",
              rows[0].gbit / rows[2].gbit);
  std::printf("HW crypto core utilisation: %.0f%% (paper 60-80%% of one core)\n",
              rows[2].core_utilisation * 100.0);

  PrintHeader("Figure 3b: ESP frames on the simulated fabric");
  bolted::RunEspExchange(pcap_spec);
  return 0;
}
