// Figure 3b: IPsec overhead between two servers (iperf-style bulk flow)
// for hardware (AES-NI) and software AES at MTU 1500 and 9000.
//
// Paper shape: even the best case (HW + jumbo frames) is ~2x below the
// plain 10 Gbit line; software AES and MTU 1500 degrade further; ESP
// processing burns 60-80 % of one core in the HW case.

#include "bench/bench_util.h"
#include "src/net/ipsec.h"
#include "src/net/resource.h"

namespace bolted {
namespace {

struct Row {
  std::string label;
  double gbit;
  double core_utilisation;
};

Row RunIperf(const std::string& label, const net::IpsecParams& params) {
  sim::Simulation simu;
  const net::IpsecCostModel model;
  net::SharedResource src_nic(simu, 1.25e9, "src.nic");
  net::SharedResource dst_nic(simu, 1.25e9, "dst.nic");
  net::SharedResource src_cpu(simu, model.cpu_hz, "src.crypto");
  net::SharedResource dst_cpu(simu, model.cpu_hz, "dst.crypto");

  const double bytes = 20e9;  // 20 GB flow
  double seconds = 0;
  auto flow = [&]() -> sim::Task {
    const double t0 = simu.now().ToSecondsF();
    co_await net::BulkTransfer(simu, {&src_nic, &src_cpu}, {&dst_nic, &dst_cpu},
                               bytes, params, model);
    seconds = simu.now().ToSecondsF() - t0;
  };
  simu.Spawn(flow());
  simu.Run();

  const double core = params.enabled
                          ? src_cpu.total_served() / (model.cpu_hz * seconds)
                          : 0.0;
  return Row{label, bytes * 8.0 / seconds / 1e9, core};
}

}  // namespace
}  // namespace bolted

int main() {
  using bolted::bench::PrintHeader;

  PrintHeader("Figure 3b: IPsec overhead (iperf, 10 Gbit link, 20 GB flow)");
  const bolted::Row rows[] = {
      bolted::RunIperf("plain MTU 9000", {.enabled = false, .mtu = 9000}),
      bolted::RunIperf("plain MTU 1500", {.enabled = false, .mtu = 1500}),
      bolted::RunIperf("IPsec HW MTU 9000",
                       {.enabled = true, .hardware_aes = true, .mtu = 9000}),
      bolted::RunIperf("IPsec HW MTU 1500",
                       {.enabled = true, .hardware_aes = true, .mtu = 1500}),
      bolted::RunIperf("IPsec SW MTU 9000",
                       {.enabled = true, .hardware_aes = false, .mtu = 9000}),
      bolted::RunIperf("IPsec SW MTU 1500",
                       {.enabled = true, .hardware_aes = false, .mtu = 1500}),
  };
  std::printf("%-20s %12s %18s\n", "config", "Gbit/s", "crypto core util");
  for (const auto& row : rows) {
    std::printf("%-20s %12.2f %17.0f%%\n", row.label.c_str(), row.gbit,
                row.core_utilisation * 100.0);
  }

  PrintHeader("Figure 3b: headline checks");
  std::printf("plain / IPsec-HW-9000 degradation: %.2fx (paper ~2x)\n",
              rows[0].gbit / rows[2].gbit);
  std::printf("HW crypto core utilisation: %.0f%% (paper 60-80%% of one core)\n",
              rows[2].core_utilisation * 100.0);
  return 0;
}
