// Ablation: the single-airlock limitation (§7.3).
//
// The paper attributes the attested curve's degradation at 16 nodes to
// the prototype supporting only one airlock at a time and names
// parallelising it as future work ("a national emergency requiring many
// computers").  This ablation implements that future work — the airlock
// capacity is just a semaphore — and shows the attested curve collapsing
// towards the unattested one.

#include <vector>

#include "bench/bench_util.h"

namespace bolted {
namespace {

double RunConcurrent(int nodes, int airlock_slots) {
  core::CloudConfig config;
  config.num_machines = nodes;
  config.linuxboot_in_flash = false;
  config.cal.max_concurrent_airlocks = airlock_slots;
  core::Cloud cloud(config);

  core::Enclave enclave(cloud, "tenant", core::TrustProfile::Bob(), 99);
  std::vector<core::ProvisionOutcome> outcomes(static_cast<size_t>(nodes));
  auto one = [&](int i) -> sim::Task {
    co_await enclave.ProvisionNode(cloud.node_name(static_cast<size_t>(i)),
                                   &outcomes[static_cast<size_t>(i)]);
  };
  auto all = [&]() -> sim::Task {
    sim::TaskGroup group(cloud.sim());
    for (int i = 0; i < nodes; ++i) {
      group.Spawn(one(i));
    }
    co_await group.WaitAll();
  };
  cloud.sim().Spawn(all());
  cloud.sim().Run();
  for (const auto& outcome : outcomes) {
    if (!outcome.success) {
      std::fprintf(stderr, "failed: %s\n", outcome.failure.c_str());
      std::abort();
    }
  }
  return cloud.sim().now().ToSecondsF();
}

}  // namespace
}  // namespace bolted

int main() {
  using bolted::bench::PrintHeader;

  PrintHeader("Ablation: airlock parallelism (attested, UEFI, 16 nodes)");
  std::printf("%16s %18s\n", "airlock slots", "all-ready (s)");
  double first = 0;
  double last = 0;
  for (int slots : {1, 2, 4, 8, 16}) {
    const double t = bolted::RunConcurrent(16, slots);
    if (slots == 1) {
      first = t;
    }
    last = t;
    std::printf("%16d %18.0f\n", slots, t);
  }
  PrintHeader("Headline");
  std::printf("parallel airlocks recover %.0f s (%.0f%%) of the attested\n"
              "16-node provisioning time lost to serialization\n",
              first - last, 100.0 * (first - last) / first);
  return 0;
}
