// Ablation: sequential-read throughput vs the initiator's read-ahead
// window (extends Fig. 3c's two-point comparison into a sweep).
//
// The mechanism: each request pays a fixed target/OSD cost; bigger
// windows amortise it until the NIC (or, under IPsec, the ESP core)
// becomes the bottleneck.

#include "bench/bench_util.h"
#include "src/net/rpc.h"
#include "src/storage/iscsi.h"

namespace bolted {
namespace {

double RunRead(uint64_t read_ahead, bool ipsec) {
  const core::Calibration cal;
  sim::Simulation simu;
  net::Network fabric(simu, cal.network_latency, cal.nic_bandwidth_bytes_per_second);
  storage::ObjectStore ceph(simu, cal.ceph);
  storage::ImageStore images(simu, ceph);

  net::Endpoint& server_ep = fabric.CreateEndpoint("iscsi-server");
  net::Endpoint& client_ep = fabric.CreateEndpoint("client");
  fabric.AttachToVlan(server_ep.address(), 10);
  fabric.AttachToVlan(client_ep.address(), 10);
  net::RpcNode server(simu, server_ep);
  net::RpcNode client(simu, client_ep);
  storage::IscsiTarget target(simu, server, images);
  net::SharedResource server_cpu(simu, 2.0 * cal.core_hz, "tgt.cpu");
  net::SharedResource esp_cpu(simu, 1.2 * cal.core_hz, "esp.cpu");
  net::SharedResource client_cpu(simu, cal.core_hz, "client.cpu");
  target.SetProcessingModel(&server_cpu, 1.6e6, 0.4);
  target.Register();
  server.Start();
  client.Start();

  const storage::ImageId image = images.Create("vol", 64ull << 30, {});
  images.PrepopulateObjects(image, 0, (64ull << 30) / cal.ceph.object_size);

  storage::IscsiInitiator::Options options;
  options.read_ahead_bytes = read_ahead;
  options.ipsec.enabled = ipsec;
  options.ipsec_model = cal.ipsec;
  options.local_crypto_cpu = &client_cpu;
  options.remote_crypto_cpu = &esp_cpu;
  storage::IscsiInitiator initiator(simu, client, server_ep.address(), image,
                                    64ull << 30, options);

  const uint64_t bytes = 2ull << 30;
  double seconds = 0;
  auto flow = [&]() -> sim::Task {
    const double t0 = simu.now().ToSecondsF();
    co_await initiator.AccountRead(bytes);
    seconds = simu.now().ToSecondsF() - t0;
  };
  simu.Spawn(flow());
  simu.Run();
  return static_cast<double>(bytes) / 1e6 / seconds;
}

}  // namespace
}  // namespace bolted

int main() {
  using bolted::bench::PrintHeader;
  PrintHeader("Ablation: iSCSI read-ahead sweep (2 GB sequential read)");
  std::printf("%14s %16s %16s\n", "read-ahead", "plain (MB/s)", "IPsec (MB/s)");
  for (uint64_t kb : {64, 128, 512, 2048, 4096, 8192, 16384, 32768}) {
    const uint64_t window = kb * 1024;
    std::printf("%11llu KB %16.0f %16.0f\n",
                static_cast<unsigned long long>(kb),
                bolted::RunRead(window, false), bolted::RunRead(window, true));
  }
  std::printf("\nThe paper's two operating points are 128 KB (Linux default)\n"
              "and 8192 KB (their tuning, 2x the Ceph object size).\n");
  return 0;
}
