// Simulation-kernel throughput: timing wheel vs the reference heap.
//
// Three synthetic workloads exercise the scheduler shapes the datacenter
// simulation actually produces, at fleet scale:
//
//   churn    — 4096 nodes each arming a 30 s timeout per operation and
//              cancelling it when the (short) operation completes: the
//              RPC/retry-timer pattern.  Timeouts virtually never fire,
//              so the reference heap drowns in tombstones and compaction
//              sweeps while the wheel unlinks in O(1).
//   pingpong — 64 chains of back-to-back 1 ns events: pure drain-path
//              throughput, batches of same-instant events every step.
//   mixed    — a steady population of events with log-uniform delays from
//              100 ns to ~11 days (so the top wheel levels and the spill
//              heap both participate), with random cancel/re-arm churn.
//
// Each workload runs on both schedulers with identical seeds; the trace
// digests must match (the same equivalence the scheduler_test suite
// checks), and the host-side events/second ratio is the headline number.
//
// Usage: bench_sim_json [output-path] [--events=N]
//   (default output: BENCH_sim.json; --events scales every workload, e.g.
//    --events=50000 for a CI smoke run.)

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/sim/random.h"
#include "src/sim/simulation.h"

namespace {

using bolted::sim::Duration;
using bolted::sim::EventId;
using bolted::sim::Rng;
using bolted::sim::SchedulerKind;
using bolted::sim::Simulation;

using Clock = std::chrono::steady_clock;

struct RunResult {
  uint64_t events = 0;
  double wall_ms = 0;
  uint64_t trace_digest = 0;
};

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// --- churn ------------------------------------------------------------------

class ChurnDriver {
 public:
  ChurnDriver(Simulation& sim, int nodes, uint64_t operations)
      : sim_(sim), rng_(0x636875726eu), timeouts_(static_cast<size_t>(nodes)),
        remaining_(operations) {}

  void Start() {
    for (size_t i = 0; i < timeouts_.size(); ++i) {
      if (remaining_ == 0) {
        return;
      }
      --remaining_;
      Arm(static_cast<uint32_t>(i));
    }
  }

 private:
  void Arm(uint32_t node) {
    timeouts_[node] = sim_.Schedule(Duration::Seconds(30), []() {});
    const auto delay = static_cast<int64_t>(100 + rng_.NextBelow(10000));
    sim_.Schedule(Duration::Nanoseconds(delay),
                  [this, node]() { Complete(node); });
  }

  void Complete(uint32_t node) {
    sim_.Cancel(timeouts_[node]);
    if (remaining_ > 0) {
      --remaining_;
      Arm(node);
    }
  }

  Simulation& sim_;
  Rng rng_;
  std::vector<EventId> timeouts_;
  uint64_t remaining_;
};

RunResult RunChurn(SchedulerKind kind, uint64_t operations) {
  Simulation sim(kind, 1);
  ChurnDriver driver(sim, 4096, operations);
  driver.Start();
  const auto start = Clock::now();
  sim.Run();
  RunResult r;
  r.wall_ms = MillisSince(start);
  r.events = sim.events_processed();
  r.trace_digest = sim.trace_digest();
  return r;
}

// --- pingpong ---------------------------------------------------------------

class PingPongDriver {
 public:
  PingPongDriver(Simulation& sim, int chains, uint64_t operations)
      : sim_(sim), remaining_(operations) {
    for (int i = 0; i < chains; ++i) {
      Step();
    }
  }

 private:
  void Step() {
    if (remaining_ == 0) {
      return;
    }
    --remaining_;
    sim_.Schedule(Duration::Nanoseconds(1), [this]() { Step(); });
  }

  Simulation& sim_;
  uint64_t remaining_;
};

RunResult RunPingPong(SchedulerKind kind, uint64_t operations) {
  Simulation sim(kind, 2);
  PingPongDriver driver(sim, 64, operations);
  const auto start = Clock::now();
  sim.Run();
  RunResult r;
  r.wall_ms = MillisSince(start);
  r.events = sim.events_processed();
  r.trace_digest = sim.trace_digest();
  return r;
}

// --- mixed ------------------------------------------------------------------

class MixedDriver {
 public:
  MixedDriver(Simulation& sim, int population, uint64_t operations)
      : sim_(sim), rng_(0x6d69786564u), slots_(static_cast<size_t>(population)),
        remaining_(operations) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      Spawn(static_cast<uint32_t>(i));
    }
  }

 private:
  Duration RandomDelay() {
    // Log-uniform over [100 ns, ~10^15 ns): most events are near-term, but
    // every wheel level and the overflow spill see traffic.
    const double exponent = 2.0 + rng_.NextDouble() * 13.0;
    return Duration::Nanoseconds(static_cast<int64_t>(std::pow(10.0, exponent)));
  }

  void Spawn(uint32_t slot) {
    slots_[slot] = sim_.Schedule(RandomDelay(), [this, slot]() { Fire(slot); });
  }

  void Fire(uint32_t slot) {
    if (remaining_ == 0) {
      return;
    }
    --remaining_;
    Spawn(slot);
    // A third of operations also cancel and re-arm a random other slot —
    // its pending event may sit anywhere in the wheel or the spill.
    if (rng_.NextDouble() < 0.33) {
      const auto victim =
          static_cast<uint32_t>(rng_.NextBelow(slots_.size()));
      sim_.Cancel(slots_[victim]);
      Spawn(victim);
    }
  }

  Simulation& sim_;
  Rng rng_;
  std::vector<EventId> slots_;
  uint64_t remaining_;
};

RunResult RunMixed(SchedulerKind kind, uint64_t operations) {
  Simulation sim(kind, 3);
  MixedDriver driver(sim, 8192, operations);
  const auto start = Clock::now();
  // The long tail of far-future events never fires; run until the churn
  // budget is exhausted, then stop at the current instant.
  while (sim.events_processed() < operations && sim.Step()) {
  }
  RunResult r;
  r.wall_ms = MillisSince(start);
  r.events = sim.events_processed();
  r.trace_digest = sim.trace_digest();
  return r;
}

struct WorkloadRow {
  const char* name;
  RunResult reference;
  RunResult wheel;
};

void AppendRow(std::string& json, const WorkloadRow& row, bool last) {
  char buf[1024];
  const double ref_eps =
      static_cast<double>(row.reference.events) / (row.reference.wall_ms / 1e3);
  const double wheel_eps =
      static_cast<double>(row.wheel.events) / (row.wheel.wall_ms / 1e3);
  const double ref_ns = row.reference.wall_ms * 1e6 /
                        static_cast<double>(row.reference.events);
  const double wheel_ns =
      row.wheel.wall_ms * 1e6 / static_cast<double>(row.wheel.events);
  std::snprintf(buf, sizeof(buf),
                "  \"%s_events\": %" PRIu64 ",\n"
                "  \"%s_reference_wall_ms\": %.3f,\n"
                "  \"%s_wheel_wall_ms\": %.3f,\n"
                "  \"%s_reference_events_per_second\": %.0f,\n"
                "  \"%s_wheel_events_per_second\": %.0f,\n"
                "  \"%s_reference_ns_per_event\": %.1f,\n"
                "  \"%s_wheel_ns_per_event\": %.1f,\n"
                "  \"%s_speedup_vs_reference\": %.2f%s\n",
                row.name, row.wheel.events, row.name, row.reference.wall_ms,
                row.name, row.wheel.wall_ms, row.name, ref_eps, row.name,
                wheel_eps, row.name, ref_ns, row.name, wheel_ns, row.name,
                ref_eps > 0 ? wheel_eps / ref_eps : 0.0, last ? "" : ",");
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_sim.json";
  uint64_t base_events = 2'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--events=", 9) == 0 && argv[i][9] != '\0') {
      base_events = std::strtoull(argv[i] + 9, nullptr, 10);
    } else {
      out_path = argv[i];
    }
  }

  WorkloadRow rows[] = {
      {"churn", RunChurn(SchedulerKind::kReference, base_events),
       RunChurn(SchedulerKind::kWheel, base_events)},
      {"pingpong", RunPingPong(SchedulerKind::kReference, base_events),
       RunPingPong(SchedulerKind::kWheel, base_events)},
      {"mixed", RunMixed(SchedulerKind::kReference, base_events / 2),
       RunMixed(SchedulerKind::kWheel, base_events / 2)},
  };

  // Same ops, same seeds => the two schedulers must fire the identical
  // (when, seq) stream.  A digest mismatch here is a correctness bug, not
  // a performance result.
  for (const WorkloadRow& row : rows) {
    if (row.reference.trace_digest != row.wheel.trace_digest ||
        row.reference.events != row.wheel.events) {
      std::fprintf(stderr,
                   "%s: scheduler divergence (ref %" PRIu64 " events digest %016" PRIx64
                   ", wheel %" PRIu64 " events digest %016" PRIx64 ")\n",
                   row.name, row.reference.events, row.reference.trace_digest,
                   row.wheel.events, row.wheel.trace_digest);
      return 1;
    }
  }

  std::string json = "{\n";
  for (size_t i = 0; i < 3; ++i) {
    AppendRow(json, rows[i], i == 2);
  }
  json += "}\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);

  for (const WorkloadRow& row : rows) {
    const double speedup = row.reference.wall_ms / row.wheel.wall_ms;
    std::printf("%-8s %9" PRIu64 " events  reference %8.1f ms  wheel %8.1f ms  speedup %.2fx\n",
                row.name, row.wheel.events, row.reference.wall_ms,
                row.wheel.wall_ms, speedup);
  }
  std::printf("wrote %s\n", out_path);
  return 0;
}
