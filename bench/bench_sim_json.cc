// Simulation-kernel throughput: timing wheel vs the reference heap.
//
// Three synthetic workloads exercise the scheduler shapes the datacenter
// simulation actually produces, at fleet scale:
//
//   churn    — 4096 nodes each arming a 30 s timeout per operation and
//              cancelling it when the (short) operation completes: the
//              RPC/retry-timer pattern.  Timeouts virtually never fire,
//              so the reference heap drowns in tombstones and compaction
//              sweeps while the wheel unlinks in O(1).
//   pingpong — 64 chains of back-to-back 1 ns events: pure drain-path
//              throughput, batches of same-instant events every step.
//   mixed    — a steady population of events with log-uniform delays from
//              100 ns to ~11 days (so the top wheel levels and the spill
//              heap both participate), with random cancel/re-arm churn.
//
// Each workload runs on both schedulers with identical seeds; the trace
// digests must match (the same equivalence the scheduler_test suite
// checks), and the host-side events/second ratio is the headline number.
//
// Two additional workloads (net_pingpong, net_mixed) drive a simulated
// Network and compare the burst forwarding fast path against the generic
// coroutine-per-frame path (DESIGN.md §15); there the invariant is the
// frame trace digest and the headline is frames/second.
//
// Usage: bench_sim_json [output-path] [--events=N]
//   (default output: BENCH_sim.json; --events scales every workload, e.g.
//    --events=50000 for a CI smoke run.)

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"

namespace {

using bolted::net::Endpoint;
using bolted::net::ForwardPath;
using bolted::net::FrameFault;
using bolted::net::Message;
using bolted::net::Network;
using bolted::sim::Duration;
using bolted::sim::EventId;
using bolted::sim::Rng;
using bolted::sim::SchedulerKind;
using bolted::sim::Simulation;

using Clock = std::chrono::steady_clock;

struct RunResult {
  uint64_t events = 0;
  double wall_ms = 0;
  uint64_t trace_digest = 0;
};

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

// --- churn ------------------------------------------------------------------

class ChurnDriver {
 public:
  ChurnDriver(Simulation& sim, int nodes, uint64_t operations)
      : sim_(sim), rng_(0x636875726eu), timeouts_(static_cast<size_t>(nodes)),
        remaining_(operations) {}

  void Start() {
    for (size_t i = 0; i < timeouts_.size(); ++i) {
      if (remaining_ == 0) {
        return;
      }
      --remaining_;
      Arm(static_cast<uint32_t>(i));
    }
  }

 private:
  void Arm(uint32_t node) {
    timeouts_[node] = sim_.Schedule(Duration::Seconds(30), []() {});
    const auto delay = static_cast<int64_t>(100 + rng_.NextBelow(10000));
    sim_.Schedule(Duration::Nanoseconds(delay),
                  [this, node]() { Complete(node); });
  }

  void Complete(uint32_t node) {
    sim_.Cancel(timeouts_[node]);
    if (remaining_ > 0) {
      --remaining_;
      Arm(node);
    }
  }

  Simulation& sim_;
  Rng rng_;
  std::vector<EventId> timeouts_;
  uint64_t remaining_;
};

RunResult RunChurn(SchedulerKind kind, uint64_t operations) {
  Simulation sim(kind, 1);
  ChurnDriver driver(sim, 4096, operations);
  driver.Start();
  const auto start = Clock::now();
  sim.Run();
  RunResult r;
  r.wall_ms = MillisSince(start);
  r.events = sim.events_processed();
  r.trace_digest = sim.trace_digest();
  return r;
}

// --- pingpong ---------------------------------------------------------------

class PingPongDriver {
 public:
  PingPongDriver(Simulation& sim, int chains, uint64_t operations)
      : sim_(sim), remaining_(operations) {
    for (int i = 0; i < chains; ++i) {
      Step();
    }
  }

 private:
  void Step() {
    if (remaining_ == 0) {
      return;
    }
    --remaining_;
    sim_.Schedule(Duration::Nanoseconds(1), [this]() { Step(); });
  }

  Simulation& sim_;
  uint64_t remaining_;
};

RunResult RunPingPong(SchedulerKind kind, uint64_t operations) {
  Simulation sim(kind, 2);
  PingPongDriver driver(sim, 64, operations);
  const auto start = Clock::now();
  sim.Run();
  RunResult r;
  r.wall_ms = MillisSince(start);
  r.events = sim.events_processed();
  r.trace_digest = sim.trace_digest();
  return r;
}

// --- mixed ------------------------------------------------------------------

class MixedDriver {
 public:
  MixedDriver(Simulation& sim, int population, uint64_t operations)
      : sim_(sim), rng_(0x6d69786564u), slots_(static_cast<size_t>(population)),
        remaining_(operations) {
    for (size_t i = 0; i < slots_.size(); ++i) {
      Spawn(static_cast<uint32_t>(i));
    }
  }

 private:
  Duration RandomDelay() {
    // Log-uniform over [100 ns, ~10^15 ns): most events are near-term, but
    // every wheel level and the overflow spill see traffic.
    const double exponent = 2.0 + rng_.NextDouble() * 13.0;
    return Duration::Nanoseconds(static_cast<int64_t>(std::pow(10.0, exponent)));
  }

  void Spawn(uint32_t slot) {
    slots_[slot] = sim_.Schedule(RandomDelay(), [this, slot]() { Fire(slot); });
  }

  void Fire(uint32_t slot) {
    if (remaining_ == 0) {
      return;
    }
    --remaining_;
    Spawn(slot);
    // A third of operations also cancel and re-arm a random other slot —
    // its pending event may sit anywhere in the wheel or the spill.
    if (rng_.NextDouble() < 0.33) {
      const auto victim =
          static_cast<uint32_t>(rng_.NextBelow(slots_.size()));
      sim_.Cancel(slots_[victim]);
      Spawn(victim);
    }
  }

  Simulation& sim_;
  Rng rng_;
  std::vector<EventId> slots_;
  uint64_t remaining_;
};

RunResult RunMixed(SchedulerKind kind, uint64_t operations) {
  Simulation sim(kind, 3);
  MixedDriver driver(sim, 8192, operations);
  const auto start = Clock::now();
  // The long tail of far-future events never fires; run until the churn
  // budget is exhausted, then stop at the current instant.
  while (sim.events_processed() < operations && sim.Step()) {
  }
  RunResult r;
  r.wall_ms = MillisSince(start);
  r.events = sim.events_processed();
  r.trace_digest = sim.trace_digest();
  return r;
}

// --- network forwarding: burst fast path vs generic -------------------------
//
// Two Network-level workloads compare the flight engine (DESIGN.md §15)
// against the original coroutine-per-frame path on the same seeded
// traffic.  The cross-run invariant is Network::frame_digest() — the
// delivered-frame multiset per sim instant — which must be byte-identical
// between paths and across schedulers; the kernel (when, seq) digest
// cannot be compared here because the two paths intentionally produce
// different event structures.

struct NetRunResult {
  uint64_t frames = 0;  // delivered copies
  double wall_ms = 0;
  uint64_t frame_digest = 0;
};

// Echoes `rounds` received frames back to `peer`.
bolted::sim::Task EchoLoop(Endpoint& self, bolted::net::Address peer,
                           uint64_t rounds) {
  for (uint64_t i = 0; i < rounds; ++i) {
    (void)co_await self.inbox().Recv();
    Message reply;
    reply.kind = "pong";
    reply.wire_bytes = 200;
    self.Post(peer, std::move(reply));
  }
}

// 64 endpoint pairs playing frame ping-pong: every delivery immediately
// triggers the reply, so the whole run is same-instant-heavy burst
// traffic — the shape run-to-completion delivery exists for.
NetRunResult RunNetPingPong(SchedulerKind kind, ForwardPath path,
                            uint64_t frames) {
  Simulation sim(kind, 4);
  Network net(sim, Duration::Microseconds(1), 1.25e9);
  net.SetForwardPath(path);

  constexpr int kPairs = 64;
  const uint64_t rounds = frames / (2 * kPairs) + 1;
  std::vector<Endpoint*> eps;
  for (int i = 0; i < 2 * kPairs; ++i) {
    Endpoint& ep = net.CreateEndpoint("pp" + std::to_string(i));
    net.AttachToVlan(ep.address(), 100);
    eps.push_back(&ep);
  }
  for (int p = 0; p < kPairs; ++p) {
    Endpoint& a = *eps[static_cast<size_t>(2 * p)];
    Endpoint& b = *eps[static_cast<size_t>(2 * p + 1)];
    sim.Spawn(EchoLoop(a, b.address(), rounds));
    sim.Spawn(EchoLoop(b, a.address(), rounds));
    Message serve;
    serve.kind = "ping";
    serve.wire_bytes = 200;
    a.Post(b.address(), std::move(serve));
  }

  const auto start = Clock::now();
  sim.Run();
  NetRunResult r;
  r.wall_ms = MillisSince(start);
  r.frames = net.frames_delivered();
  r.frame_digest = net.frame_digest();
  return r;
}

// 128 endpoints across 4 oversubscribed ToR switches firing frames of
// mixed sizes at random peers, with a seeded fault filter dropping,
// duplicating, and delaying a slice of the traffic — the steady-state
// control-plane shape, cross-switch uplink contention included.
class NetMixedDriver {
 public:
  NetMixedDriver(Simulation& sim, std::vector<Endpoint*>& eps,
                 uint64_t frames)
      : sim_(sim), eps_(eps), rng_(0x6e65746d69786564u), remaining_(frames) {}

  void Start() {
    for (size_t i = 0; i < eps_.size(); ++i) {
      sim_.Schedule(Duration::Nanoseconds(static_cast<int64_t>(1 + 97 * i)),
                    [this, i]() { Step(static_cast<uint32_t>(i)); });
    }
  }

 private:
  void Step(uint32_t idx) {
    if (remaining_ == 0) {
      return;
    }
    --remaining_;
    const auto peer = static_cast<uint32_t>(rng_.NextBelow(eps_.size() - 1));
    Endpoint* dst = eps_[(idx + 1 + peer) % eps_.size()];
    static constexpr uint64_t kSizes[] = {200, 1500, 9000};
    Message m;
    m.kind = "mix";
    m.wire_bytes = kSizes[rng_.NextBelow(3)];
    eps_[idx]->Post(dst->address(), std::move(m));
    const auto next = static_cast<int64_t>(500 + rng_.NextBelow(4000));
    sim_.Schedule(Duration::Nanoseconds(next), [this, idx]() { Step(idx); });
  }

  Simulation& sim_;
  std::vector<Endpoint*>& eps_;
  Rng rng_;
  uint64_t remaining_;
};

NetRunResult RunNetMixed(SchedulerKind kind, ForwardPath path,
                         uint64_t frames) {
  Simulation sim(kind, 5);
  Network net(sim, Duration::Microseconds(1), 1.25e9);
  net.SetForwardPath(path);
  for (int s = 0; s < 4; ++s) {
    net.AddSwitch(12.5e9);
  }
  std::vector<Endpoint*> eps;
  for (int i = 0; i < 128; ++i) {
    Endpoint& ep =
        net.CreateEndpointOnSwitch("mx" + std::to_string(i), 1 + i % 4);
    net.AttachToVlan(ep.address(), 100);
    eps.push_back(&ep);
  }
  // Deterministic fault slice: the filter is probed once per frame that
  // passed the VLAN check, in send order — identical on both paths, so
  // the rng stream (and thus the digest) stays comparable.
  Rng fault_rng(0x6661756c74u);
  net.SetFaultFilter([&fault_rng](const Message&) {
    FrameFault fault;
    const uint64_t roll = fault_rng.NextBelow(100);
    if (roll < 2) {
      fault.drop = true;
    } else if (roll < 5) {
      fault.duplicates = 1;
    } else if (roll < 10) {
      fault.extra_delay =
          Duration::Nanoseconds(static_cast<int64_t>(500 + roll * 37));
    }
    return fault;
  });

  NetMixedDriver driver(sim, eps, frames);
  driver.Start();
  const auto start = Clock::now();
  sim.Run();
  NetRunResult r;
  r.wall_ms = MillisSince(start);
  r.frames = net.frames_delivered();
  r.frame_digest = net.frame_digest();
  return r;
}

struct NetWorkloadRow {
  const char* name;
  NetRunResult generic;  // generic path, wheel scheduler
  NetRunResult burst;    // burst path, wheel scheduler
  NetRunResult burst_reference;  // burst path, reference scheduler
};

void AppendNetRow(std::string& json, const NetWorkloadRow& row, bool last) {
  char buf[1024];
  const double generic_fps =
      static_cast<double>(row.generic.frames) / (row.generic.wall_ms / 1e3);
  const double burst_fps =
      static_cast<double>(row.burst.frames) / (row.burst.wall_ms / 1e3);
  const double generic_ns =
      row.generic.wall_ms * 1e6 / static_cast<double>(row.generic.frames);
  const double burst_ns =
      row.burst.wall_ms * 1e6 / static_cast<double>(row.burst.frames);
  std::snprintf(buf, sizeof(buf),
                "  \"%s_frames\": %" PRIu64 ",\n"
                "  \"%s_generic_wall_ms\": %.3f,\n"
                "  \"%s_burst_wall_ms\": %.3f,\n"
                "  \"%s_generic_frames_per_second\": %.0f,\n"
                "  \"%s_burst_frames_per_second\": %.0f,\n"
                "  \"%s_generic_ns_per_frame\": %.1f,\n"
                "  \"%s_burst_ns_per_frame\": %.1f,\n"
                "  \"%s_burst_speedup\": %.3f%s\n",
                row.name, row.burst.frames, row.name, row.generic.wall_ms,
                row.name, row.burst.wall_ms, row.name, generic_fps, row.name,
                burst_fps, row.name, generic_ns, row.name, burst_ns, row.name,
                generic_fps > 0 ? burst_fps / generic_fps : 0.0,
                last ? "" : ",");
  json += buf;
}

struct WorkloadRow {
  const char* name;
  RunResult reference;
  RunResult wheel;
};

void AppendRow(std::string& json, const WorkloadRow& row, bool last) {
  char buf[1024];
  const double ref_eps =
      static_cast<double>(row.reference.events) / (row.reference.wall_ms / 1e3);
  const double wheel_eps =
      static_cast<double>(row.wheel.events) / (row.wheel.wall_ms / 1e3);
  const double ref_ns = row.reference.wall_ms * 1e6 /
                        static_cast<double>(row.reference.events);
  const double wheel_ns =
      row.wheel.wall_ms * 1e6 / static_cast<double>(row.wheel.events);
  std::snprintf(buf, sizeof(buf),
                "  \"%s_events\": %" PRIu64 ",\n"
                "  \"%s_reference_wall_ms\": %.3f,\n"
                "  \"%s_wheel_wall_ms\": %.3f,\n"
                "  \"%s_reference_events_per_second\": %.0f,\n"
                "  \"%s_wheel_events_per_second\": %.0f,\n"
                "  \"%s_reference_ns_per_event\": %.1f,\n"
                "  \"%s_wheel_ns_per_event\": %.1f,\n"
                "  \"%s_speedup_vs_reference\": %.2f%s\n",
                row.name, row.wheel.events, row.name, row.reference.wall_ms,
                row.name, row.wheel.wall_ms, row.name, ref_eps, row.name,
                wheel_eps, row.name, ref_ns, row.name, wheel_ns, row.name,
                ref_eps > 0 ? wheel_eps / ref_eps : 0.0, last ? "" : ",");
  json += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_sim.json";
  uint64_t base_events = 2'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--events=", 9) == 0 && argv[i][9] != '\0') {
      base_events = std::strtoull(argv[i] + 9, nullptr, 10);
    } else {
      out_path = argv[i];
    }
  }

  WorkloadRow rows[] = {
      {"churn", RunChurn(SchedulerKind::kReference, base_events),
       RunChurn(SchedulerKind::kWheel, base_events)},
      {"pingpong", RunPingPong(SchedulerKind::kReference, base_events),
       RunPingPong(SchedulerKind::kWheel, base_events)},
      {"mixed", RunMixed(SchedulerKind::kReference, base_events / 2),
       RunMixed(SchedulerKind::kWheel, base_events / 2)},
  };

  // Same ops, same seeds => the two schedulers must fire the identical
  // (when, seq) stream.  A digest mismatch here is a correctness bug, not
  // a performance result.
  for (const WorkloadRow& row : rows) {
    if (row.reference.trace_digest != row.wheel.trace_digest ||
        row.reference.events != row.wheel.events) {
      std::fprintf(stderr,
                   "%s: scheduler divergence (ref %" PRIu64 " events digest %016" PRIx64
                   ", wheel %" PRIu64 " events digest %016" PRIx64 ")\n",
                   row.name, row.reference.events, row.reference.trace_digest,
                   row.wheel.events, row.wheel.trace_digest);
      return 1;
    }
  }

  const uint64_t net_frames = base_events / 8;
  NetWorkloadRow net_rows[] = {
      {"net_pingpong",
       RunNetPingPong(SchedulerKind::kWheel, ForwardPath::kGeneric, net_frames),
       RunNetPingPong(SchedulerKind::kWheel, ForwardPath::kBurst, net_frames),
       RunNetPingPong(SchedulerKind::kReference, ForwardPath::kBurst,
                      net_frames)},
      {"net_mixed",
       RunNetMixed(SchedulerKind::kWheel, ForwardPath::kGeneric, net_frames),
       RunNetMixed(SchedulerKind::kWheel, ForwardPath::kBurst, net_frames),
       RunNetMixed(SchedulerKind::kReference, ForwardPath::kBurst,
                   net_frames)},
  };

  // The frame digest (delivered multiset per instant) must be identical
  // between the burst and generic paths and across schedulers.
  for (const NetWorkloadRow& row : net_rows) {
    if (row.burst.frame_digest != row.generic.frame_digest ||
        row.burst.frames != row.generic.frames ||
        row.burst_reference.frame_digest != row.generic.frame_digest ||
        row.burst_reference.frames != row.generic.frames) {
      std::fprintf(stderr,
                   "%s: forwarding-path divergence (generic %" PRIu64
                   " frames digest %016" PRIx64 ", burst %" PRIu64
                   " frames digest %016" PRIx64 ", burst/ref %" PRIu64
                   " frames digest %016" PRIx64 ")\n",
                   row.name, row.generic.frames, row.generic.frame_digest,
                   row.burst.frames, row.burst.frame_digest,
                   row.burst_reference.frames,
                   row.burst_reference.frame_digest);
      return 1;
    }
  }

  std::string json = "{\n";
  for (size_t i = 0; i < 3; ++i) {
    AppendRow(json, rows[i], false);
  }
  for (size_t i = 0; i < 2; ++i) {
    AppendNetRow(json, net_rows[i], i == 1);
  }
  json += "}\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);

  for (const WorkloadRow& row : rows) {
    const double speedup = row.reference.wall_ms / row.wheel.wall_ms;
    std::printf("%-12s %9" PRIu64 " events  reference %8.1f ms  wheel %8.1f ms  speedup %.2fx\n",
                row.name, row.wheel.events, row.reference.wall_ms,
                row.wheel.wall_ms, speedup);
  }
  for (const NetWorkloadRow& row : net_rows) {
    const double speedup = row.generic.wall_ms / row.burst.wall_ms;
    std::printf("%-12s %9" PRIu64 " frames  generic   %8.1f ms  burst %8.1f ms  speedup %.2fx\n",
                row.name, row.burst.frames, row.generic.wall_ms,
                row.burst.wall_ms, speedup);
  }
  std::printf("wrote %s\n", out_path);
  return 0;
}
