// Scenario-engine throughput: a 4096-node churn scenario on the
// rack-sharded lifecycle model (DESIGN.md §13).
//
// Every node provisions, attests continuously, and churns (release +
// re-provision) for the whole horizon.  The run is executed twice: once
// at shards=1/workers=1 (the single-threaded oracle) and once with the
// parallel configuration; the per-rack digests and final verdict vectors
// must match exactly or the bench fails — a digest mismatch is a
// correctness bug, not a performance result.
//
// The headline numbers are host-side events/second plus the simulated
// provision and attestation phase latencies (mean/max, in sim time).
// The sim-time latency keys are informational; the regression
// guard (scripts/bench_guard.py) tracks the wall_ms / events_per_second /
// ns_per_event keys.
//
// Usage: fleet_scenario [output-path] [--nodes=N] [--horizon-s=S]
//   (default: 4096 nodes, 30 simulated s, writes BENCH_scenario.json)

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "src/scenario/sharded.h"

namespace {

using bolted::scenario::RunShardedScenario;
using bolted::scenario::ShardedScenarioConfig;
using bolted::scenario::ShardedScenarioResult;

using Clock = std::chrono::steady_clock;

ShardedScenarioConfig ChurnConfig(uint32_t nodes, int64_t horizon_s,
                                  uint32_t shards, uint32_t workers) {
  ShardedScenarioConfig config;
  config.racks = nodes / 64 < 4 ? 4 : nodes / 64;
  config.nodes_per_rack = nodes / config.racks;
  config.shards = shards;
  config.workers = workers;
  config.seed = 0x5ce0'6e4cu;
  config.tenants = 3;
  config.horizon_ns = horizon_s * 1'000'000'000;
  config.attest_interval_ns = 1'000'000'000;  // dense attestation traffic
  // Churn for the whole horizon: the lifecycle path (release, re-boot,
  // quote, verdict) is the workload, not just the steady attestation hum.
  config.churn_start_ns = 5'000'000'000;
  config.churn_end_ns = config.horizon_ns - 10'000'000'000;
  config.churn_hold_ns = 6'000'000'000;
  config.churn_release_fraction = 0.5;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_scenario.json";
  uint32_t nodes = 4096;
  int64_t horizon_s = 30;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--nodes=", 8) == 0 && argv[i][8] != '\0') {
      nodes = static_cast<uint32_t>(std::strtoul(argv[i] + 8, nullptr, 10));
    } else if (std::strncmp(argv[i], "--horizon-s=", 12) == 0 &&
               argv[i][12] != '\0') {
      horizon_s = std::strtol(argv[i] + 12, nullptr, 10);
    } else {
      out_path = argv[i];
    }
  }

  const uint32_t cores = std::thread::hardware_concurrency();
  const uint32_t par = cores >= 4 ? 4 : (cores >= 2 ? 2 : 1);

  // Oracle leg: single-threaded, the digest reference.
  const auto oracle_start = Clock::now();
  const ShardedScenarioResult oracle =
      RunShardedScenario(ChurnConfig(nodes, horizon_s, 1, 1));
  const double oracle_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - oracle_start)
          .count();
  if (!oracle.ok()) {
    std::fprintf(stderr, "oracle scenario failed: %s\n",
                 oracle.failures.front().c_str());
    return 1;
  }

  // Parallel leg: must reproduce the oracle byte-for-byte.
  const auto par_start = Clock::now();
  const ShardedScenarioResult sharded =
      RunShardedScenario(ChurnConfig(nodes, horizon_s, par, par));
  const double par_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - par_start)
          .count();
  if (!sharded.ok()) {
    std::fprintf(stderr, "shards=%u scenario failed: %s\n", par,
                 sharded.failures.front().c_str());
    return 1;
  }
  if (sharded.fleet_digest != oracle.fleet_digest ||
      sharded.rack_digests != oracle.rack_digests ||
      sharded.final_states != oracle.final_states ||
      sharded.final_firmware != oracle.final_firmware) {
    std::fprintf(stderr,
                 "shards=%u diverged from oracle (fleet digest %016" PRIx64
                 " vs %016" PRIx64 ")\n",
                 par, sharded.fleet_digest, oracle.fleet_digest);
    return 1;
  }

  const double events = static_cast<double>(oracle.events);
  const double prov_mean_ms =
      oracle.provision_latency_count > 0
          ? static_cast<double>(oracle.provision_latency_sum_ns) /
                static_cast<double>(oracle.provision_latency_count) / 1e6
          : 0.0;
  const double att_mean_us =
      oracle.attest_latency_count > 0
          ? static_cast<double>(oracle.attest_latency_sum_ns) /
                static_cast<double>(oracle.attest_latency_count) / 1e3
          : 0.0;

  char buf[2048];
  std::snprintf(
      buf, sizeof(buf),
      "{\n"
      "  \"nodes\": %u,\n"
      "  \"host_cores\": %u,\n"
      "  \"scenario_horizon_s\": %" PRId64 ",\n"
      "  \"scenario_events\": %" PRIu64 ",\n"
      "  \"scenario_frames_routed\": %" PRIu64 ",\n"
      "  \"scenario_provisions\": %" PRIu64 ",\n"
      "  \"scenario_quotes\": %" PRIu64 ",\n"
      "  \"scenario_churn_cycles\": %" PRIu64 ",\n"
      "  \"scenario_provision_mean_sim_ms\": %.1f,\n"
      "  \"scenario_provision_max_sim_ms\": %.1f,\n"
      "  \"scenario_attest_mean_sim_us\": %.1f,\n"
      "  \"scenario_attest_max_sim_us\": %.1f,\n"
      "  \"scenario_wall_ms\": %.3f,\n"
      "  \"scenario_events_per_second\": %.0f,\n"
      "  \"scenario_ns_per_event\": %.1f,\n"
      "  \"scenario_parallel_shards\": %u,\n"
      "  \"scenario_parallel_wall_ms\": %.3f\n"
      "}\n",
      nodes, cores, horizon_s, oracle.events, oracle.frames_routed,
      oracle.provisions, oracle.quotes, oracle.churn_cycles, prov_mean_ms,
      static_cast<double>(oracle.provision_latency_max_ns) / 1e6, att_mean_us,
      static_cast<double>(oracle.attest_latency_max_ns) / 1e3, oracle_ms,
      events / (oracle_ms / 1e3), oracle_ms * 1e6 / events, par, par_ms);

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  std::fwrite(buf, 1, std::strlen(buf), f);
  std::fclose(f);

  std::printf("%" PRIu64 " events in %.1f ms (%.0f events/s), shards=%u %.1f "
              "ms, digest %016" PRIx64 " identical\n",
              oracle.events, oracle_ms, events / (oracle_ms / 1e3), par, par_ms,
              oracle.fleet_digest);
  std::printf("provision mean %.1f ms max %.1f ms; attest mean %.1f us max "
              "%.1f us (sim time)\nwrote %s\n",
              prov_mean_ms,
              static_cast<double>(oracle.provision_latency_max_ns) / 1e6,
              att_mean_us,
              static_cast<double>(oracle.attest_latency_max_ns) / 1e3,
              out_path);
  return 0;
}
