// Ablation: how much of Figure 4 is firmware POST time.
//
// The paper's surprising result is that the *security* firmware is also
// the *fast* firmware (LinuxBoot POSTs 3-6x quicker than vendor UEFI).
// This sweep varies POST time with everything else fixed, separating the
// "LinuxBoot is deterministic and attestable" benefit from the
// "LinuxBoot boots fast" benefit.

#include "bench/bench_util.h"

namespace bolted {
namespace {

double RunWithPost(int post_seconds) {
  core::CloudConfig config;
  config.num_machines = 1;
  config.linuxboot_in_flash = true;
  core::Cloud cloud(config);
  // Override the flash firmware's POST time on the machine itself.
  machine::Machine* machine = cloud.FindMachine("node-0");
  firmware::FirmwareImage fw = machine->flash_firmware();
  fw.post_time = sim::Duration::Seconds(post_seconds);
  machine->ReflashFirmware(fw);

  core::Enclave enclave(cloud, "tenant", core::TrustProfile::Bob(), 7);
  core::ProvisionOutcome outcome;
  auto flow = [&]() -> sim::Task {
    co_await enclave.ProvisionNode("node-0", &outcome);
  };
  cloud.sim().Spawn(flow());
  cloud.sim().Run();
  if (!outcome.success) {
    std::fprintf(stderr, "failed: %s\n", outcome.failure.c_str());
    std::abort();
  }
  return outcome.trace.total().ToSecondsF();
}

}  // namespace
}  // namespace bolted

int main() {
  using bolted::bench::PrintHeader;
  PrintHeader("Ablation: POST time vs attested provisioning total");
  std::printf("%12s %18s\n", "POST (s)", "provision (s)");
  for (int post : {10, 40, 80, 160, 240}) {
    std::printf("%12d %18.0f\n", post, bolted::RunWithPost(post));
  }
  std::printf("\n40 s is LinuxBoot on the paper's R630s; 240 s is vendor UEFI.\n"
              "POST moves ~1:1 into the total: most of the UEFI-vs-LinuxBoot\n"
              "gap in Fig. 4 is firmware boot time, not attestation mechanics.\n");
  return 0;
}
