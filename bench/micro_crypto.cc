// Micro-benchmarks (google-benchmark) for the real crypto primitives the
// library implements.  These are sanity anchors for the cost models in
// src/core/calibration.h: the simulated XTS/GCM throughput ceilings must
// stay within the regime a real implementation achieves.

#include <benchmark/benchmark.h>

#include "src/crypto/aes.h"
#include "src/crypto/aes_gcm.h"
#include "src/crypto/aes_xts.h"
#include "src/crypto/drbg.h"
#include "src/crypto/hmac.h"
#include "src/crypto/p256.h"
#include "src/crypto/sha256.h"

namespace bolted::crypto {
namespace {

void BM_Sha256(benchmark::State& state) {
  Drbg drbg(uint64_t{1});
  const Bytes data = drbg.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_HmacSha256(benchmark::State& state) {
  Drbg drbg(uint64_t{2});
  const Bytes key = drbg.Generate(32);
  const Bytes data = drbg.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(4096);

void BM_AesEncryptBlock(benchmark::State& state) {
  Drbg drbg(uint64_t{3});
  const Bytes key = drbg.Generate(32);
  Aes256 aes(key);
  uint8_t block[16] = {};
  for (auto _ : state) {
    aes.EncryptBlock(block, block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesEncryptBlock);

void BM_AesXtsSector(benchmark::State& state) {
  Drbg drbg(uint64_t{4});
  const Bytes key = drbg.Generate(64);
  AesXts xts(key);
  Bytes sector = drbg.Generate(static_cast<size_t>(state.range(0)));
  uint64_t sector_number = 0;
  for (auto _ : state) {
    xts.EncryptSector(sector_number++, sector);
    benchmark::DoNotOptimize(sector.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesXtsSector)->Arg(512)->Arg(4096);

void BM_AesGcmSeal(benchmark::State& state) {
  Drbg drbg(uint64_t{5});
  const Bytes key = drbg.Generate(32);
  const Bytes nonce = drbg.Generate(12);
  const Bytes plaintext = drbg.Generate(static_cast<size_t>(state.range(0)));
  AesGcm gcm(key);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.Seal(nonce, plaintext, {}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesGcmSeal)->Arg(1500)->Arg(9000);

void BM_EcdsaSign(benchmark::State& state) {
  const P256& curve = P256::Instance();
  const U256 priv = curve.PrivateKeyFromSeed(ToBytes("bench-signer"));
  const Digest hash = Sha256::Hash("quote to sign");
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.Sign(priv, hash));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  const P256& curve = P256::Instance();
  const U256 priv = curve.PrivateKeyFromSeed(ToBytes("bench-signer"));
  const EcPoint pub = curve.PublicKey(priv);
  const Digest hash = Sha256::Hash("quote to verify");
  const EcdsaSignature sig = curve.Sign(priv, hash);
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.Verify(pub, hash, sig));
  }
}
BENCHMARK(BM_EcdsaVerify);

void BM_EcdhSharedSecret(benchmark::State& state) {
  const P256& curve = P256::Instance();
  const U256 a = curve.PrivateKeyFromSeed(ToBytes("a"));
  const EcPoint b_pub = curve.PublicKey(curve.PrivateKeyFromSeed(ToBytes("b")));
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.SharedSecret(a, b_pub));
  }
}
BENCHMARK(BM_EcdhSharedSecret);

}  // namespace
}  // namespace bolted::crypto

BENCHMARK_MAIN();
