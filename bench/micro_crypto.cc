// Micro-benchmarks (google-benchmark) for the real crypto primitives the
// library implements.  These are sanity anchors for the cost models in
// src/core/calibration.h: the simulated XTS/GCM throughput ceilings must
// stay within the regime a real implementation achieves.

#include <benchmark/benchmark.h>

#include "src/crypto/aes.h"
#include "src/crypto/aes_gcm.h"
#include "src/crypto/aes_xts.h"
#include "src/crypto/cpu.h"
#include "src/crypto/drbg.h"
#include "src/crypto/hmac.h"
#include "src/crypto/p256.h"
#include "src/crypto/sha256.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace bolted::crypto {
namespace {

// Pins the crypto backend for the duration of one benchmark run; objects
// capture their backend at construction, so construct inside the scope.
class ScopedForceScalar {
 public:
  explicit ScopedForceScalar(bool on) : saved_(cpu::ForceScalarEnabled()) {
    cpu::SetForceScalar(on);
  }
  ~ScopedForceScalar() { cpu::SetForceScalar(saved_); }

 private:
  bool saved_;
};

template <bool kForceScalar>
void BM_Sha256(benchmark::State& state) {
  ScopedForceScalar backend(kForceScalar);
  Drbg drbg(uint64_t{1});
  const Bytes data = drbg.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK_TEMPLATE(BM_Sha256, false)->Arg(64)->Arg(4096)->Arg(1 << 20);
BENCHMARK_TEMPLATE(BM_Sha256, true)->Arg(4096)->Arg(1 << 20);

template <bool kForceScalar>
void BM_HmacSha256(benchmark::State& state) {
  ScopedForceScalar backend(kForceScalar);
  Drbg drbg(uint64_t{2});
  const Bytes key = drbg.Generate(32);
  const Bytes data = drbg.Generate(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HmacSha256(key, data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK_TEMPLATE(BM_HmacSha256, false)->Arg(4096);
BENCHMARK_TEMPLATE(BM_HmacSha256, true)->Arg(4096);

void BM_AesEncryptBlock(benchmark::State& state) {
  Drbg drbg(uint64_t{3});
  const Bytes key = drbg.Generate(32);
  Aes256 aes(key);
  uint8_t block[16] = {};
  for (auto _ : state) {
    aes.EncryptBlock(block, block);
    benchmark::DoNotOptimize(block);
  }
  state.SetBytesProcessed(state.iterations() * 16);
}
BENCHMARK(BM_AesEncryptBlock);

template <bool kForceScalar>
void BM_AesXtsSector(benchmark::State& state) {
  ScopedForceScalar backend(kForceScalar);
  Drbg drbg(uint64_t{4});
  const Bytes key = drbg.Generate(64);
  AesXts xts(key);
  Bytes sector = drbg.Generate(static_cast<size_t>(state.range(0)));
  uint64_t sector_number = 0;
  for (auto _ : state) {
    xts.EncryptSector(sector_number++, sector);
    benchmark::DoNotOptimize(sector.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK_TEMPLATE(BM_AesXtsSector, false)->Arg(512)->Arg(4096);
BENCHMARK_TEMPLATE(BM_AesXtsSector, true)->Arg(512)->Arg(4096);

template <bool kForceScalar>
void BM_AesXtsBulk(benchmark::State& state) {
  // 8 consecutive sectors per call through the span API, the shape
  // CryptDevice::ReadSectors/WriteSectors now uses.
  ScopedForceScalar backend(kForceScalar);
  Drbg drbg(uint64_t{6});
  const Bytes key = drbg.Generate(64);
  AesXts xts(key);
  const size_t sector_size = static_cast<size_t>(state.range(0));
  Bytes data = drbg.Generate(sector_size * 8);
  uint64_t first_sector = 0;
  for (auto _ : state) {
    xts.EncryptSectors(first_sector, sector_size, data);
    first_sector += 8;
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(data.size()));
}
BENCHMARK_TEMPLATE(BM_AesXtsBulk, false)->Arg(4096);
BENCHMARK_TEMPLATE(BM_AesXtsBulk, true)->Arg(4096);

template <bool kForceScalar>
void BM_AesGcmSeal(benchmark::State& state) {
  ScopedForceScalar backend(kForceScalar);
  Drbg drbg(uint64_t{5});
  const Bytes key = drbg.Generate(32);
  const Bytes nonce = drbg.Generate(12);
  const Bytes plaintext = drbg.Generate(static_cast<size_t>(state.range(0)));
  AesGcm gcm(key);
  Bytes out(plaintext.size() + AesGcm::kTagSize);
  for (auto _ : state) {
    gcm.SealTo(nonce, plaintext, {}, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK_TEMPLATE(BM_AesGcmSeal, false)->Arg(1500)->Arg(9000);
BENCHMARK_TEMPLATE(BM_AesGcmSeal, true)->Arg(1500)->Arg(9000);

void BM_EcdsaSign(benchmark::State& state) {
  const P256& curve = P256::Instance();
  const U256 priv = curve.PrivateKeyFromSeed(ToBytes("bench-signer"));
  const Digest hash = Sha256::Hash("quote to sign");
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.Sign(priv, hash));
  }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
  const P256& curve = P256::Instance();
  const U256 priv = curve.PrivateKeyFromSeed(ToBytes("bench-signer"));
  const EcPoint pub = curve.PublicKey(priv);
  const Digest hash = Sha256::Hash("quote to verify");
  const EcdsaSignature sig = curve.Sign(priv, hash);
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.Verify(pub, hash, sig));
  }
}
BENCHMARK(BM_EcdsaVerify);

void BM_EcdhSharedSecret(benchmark::State& state) {
  const P256& curve = P256::Instance();
  const U256 a = curve.PrivateKeyFromSeed(ToBytes("a"));
  const EcPoint b_pub = curve.PublicKey(curve.PrivateKeyFromSeed(ToBytes("b")));
  for (auto _ : state) {
    benchmark::DoNotOptimize(curve.SharedSecret(a, b_pub));
  }
}
BENCHMARK(BM_EcdhSharedSecret);

void BM_EventQueueScheduleFire(benchmark::State& state) {
  // Schedule/fire throughput of the simulation event queue: batches of
  // small lambdas, the dominant shape in the coroutine-heavy flows.
  const int batch = static_cast<int>(state.range(0));
  sim::Simulation sim;
  uint64_t sink = 0;
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      sim.Schedule(sim::Duration::Nanoseconds(i), [&sink]() { ++sink; });
    }
    sim.Run();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleFire)->Arg(1024);

void BM_EventQueueScheduleCancel(benchmark::State& state) {
  // Cancellation-heavy pattern (timeouts that rarely fire).
  const int batch = static_cast<int>(state.range(0));
  sim::Simulation sim;
  std::vector<sim::EventId> ids(static_cast<size_t>(batch));
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) {
      ids[static_cast<size_t>(i)] =
          sim.Schedule(sim::Duration::Nanoseconds(i), []() {});
    }
    for (const sim::EventId id : ids) {
      sim.Cancel(id);
    }
    sim.Run();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventQueueScheduleCancel)->Arg(1024);

}  // namespace
}  // namespace bolted::crypto

BENCHMARK_MAIN();
