// Ablation: the cost of resisting provider traffic analysis (§6).
//
// Shaping to a constant cell stream erases the size/timing side channel
// but pays (i) padding overhead, a function of how application message
// sizes align to the cell size, and (ii) a goodput ceiling set by the
// constant cell rate.  This quantifies the tradeoff the paper leaves to
// security-sensitive tenants.

#include "bench/bench_util.h"
#include "src/net/shaping.h"

int main() {
  using bolted::bench::PrintHeader;
  using bolted::net::CellsFor;
  using bolted::net::PaddingOverhead;
  using bolted::net::ShapingPolicy;

  PrintHeader("Ablation: traffic-shaping padding overhead by message size");
  const uint64_t message_sizes[] = {200,        1500,       4096,   16 * 1024,
                                    64 * 1024,  256 * 1024, 1 << 20};
  std::printf("%14s", "cell size");
  for (const uint64_t m : message_sizes) {
    std::printf(" %9llu", static_cast<unsigned long long>(m));
  }
  std::printf("\n");
  for (const uint64_t cell : {1500ull, 4096ull, 16384ull, 65536ull}) {
    ShapingPolicy policy{.cell_bytes = cell, .cells_per_second = 1000};
    std::printf("%11llu B ", static_cast<unsigned long long>(cell));
    for (const uint64_t m : message_sizes) {
      std::printf(" %8.2fx", PaddingOverhead(policy, m));
    }
    std::printf("\n");
  }

  PrintHeader("Goodput ceiling vs constant stream rate (16 KB cells)");
  std::printf("%16s %16s %20s\n", "cells/s", "stream (MB/s)", "max goodput (MB/s)");
  for (const double rate : {500.0, 2000.0, 8000.0, 32000.0}) {
    const ShapingPolicy policy{.cell_bytes = 16 * 1024, .cells_per_second = rate};
    const double stream = rate * static_cast<double>(policy.cell_bytes) / 1e6;
    // Goodput excludes the 4-byte cell header.
    const double goodput = rate * static_cast<double>(policy.cell_bytes - 4) / 1e6;
    std::printf("%16.0f %16.1f %20.1f\n", rate, stream, goodput);
  }
  std::printf("\nThe stream rate is paid constantly (chaff when idle): choosing\n"
              "it is choosing how much bandwidth to burn for unobservability.\n");
  return 0;
}
