// Ablation: node hand-over cost — stateless (Bolted) vs stateful with
// provider disk scrubbing.
//
// The paper's footnote 1 motivates diskless provisioning: transferring a
// stateful machine between tenants safely requires the provider to scrub
// local drives, which "can require hours ... dramatically impacting the
// elasticity of the cloud."  Bolted instead deletes a copy-on-write
// network clone (milliseconds) and relies on attested LinuxBoot to scrub
// DRAM on the next boot.

#include "bench/bench_util.h"

namespace bolted {
namespace {

double StatelessRelease() {
  core::CloudConfig config;
  config.num_machines = 1;
  config.linuxboot_in_flash = true;
  core::Cloud cloud(config);
  core::Enclave tenant(cloud, "t", core::TrustProfile::Bob(), 1);
  double release_seconds = -1;
  auto flow = [&]() -> sim::Task {
    core::ProvisionOutcome outcome;
    co_await tenant.ProvisionNode("node-0", &outcome);
    const double t0 = cloud.sim().now().ToSecondsF();
    co_await tenant.ReleaseNode("node-0");
    release_seconds = cloud.sim().now().ToSecondsF() - t0;
  };
  cloud.sim().Spawn(flow());
  cloud.sim().Run();
  return release_seconds;
}

double StatefulScrub(uint64_t disk_bytes) {
  // Provider-side scrub: overwrite the full local disk once.
  sim::Simulation simu;
  storage::DiskModel disk(simu, disk_bytes / storage::kSectorSize, 110e6,
                          sim::Duration::Milliseconds(8), "local");
  double seconds = -1;
  auto flow = [&]() -> sim::Task {
    const double t0 = simu.now().ToSecondsF();
    co_await disk.AccountWrite(disk_bytes);
    seconds = simu.now().ToSecondsF() - t0;
  };
  simu.Spawn(flow());
  simu.Run();
  return seconds;
}

}  // namespace
}  // namespace bolted

int main() {
  using bolted::bench::PrintHeader;
  PrintHeader("Ablation: node hand-over cost between tenants");
  const double stateless = bolted::StatelessRelease();
  std::printf("%-44s %12.1f s\n",
              "Bolted stateless release (clone delete + detach)", stateless);
  for (const uint64_t gb : {600ull, 2000ull, 8000ull}) {
    const double scrub = bolted::StatefulScrub(gb << 30);
    std::printf("stateful release: scrub %4llu GB local disk %11.0f s (%.1f h)\n",
                static_cast<unsigned long long>(gb), scrub, scrub / 3600.0);
  }
  std::printf("\nPaper footnote 1: disk scrubbing 'can require hours'; the\n"
              "stateless hand-over is what makes bare-metal elasticity\n"
              "competitive with virtualized clouds.\n");
  return 0;
}
