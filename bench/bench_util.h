// Shared helpers for the figure-reproduction benches.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/cloud.h"
#include "src/core/enclave.h"

namespace bolted::bench {

// Provisions `count` nodes sequentially into the enclave; aborts the
// process on failure (benches assume a healthy cloud).
inline sim::Task ProvisionMany(core::Cloud& cloud, core::Enclave& enclave, int count) {
  for (int i = 0; i < count; ++i) {
    core::ProvisionOutcome outcome;
    co_await enclave.ProvisionNode(cloud.node_name(static_cast<size_t>(i)), &outcome);
    if (!outcome.success) {
      std::fprintf(stderr, "provisioning %s failed: %s\n",
                   cloud.node_name(static_cast<size_t>(i)).c_str(),
                   outcome.failure.c_str());
      std::abort();
    }
  }
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::string& label, double value, const char* unit) {
  std::printf("%-34s %10.2f %s\n", label.c_str(), value, unit);
}

}  // namespace bolted::bench

#endif  // BENCH_BENCH_UTIL_H_
