// Figure 7: macro-benchmark performance degradation under encryption.
//
// Applications: NAS Parallel Benchmarks (EP, CG, FT, MG, class-D-like) on
// a 16-server enclave; Spark TeraSort over a 260 GB data set; Filebench
// inside a KVM guest on one server.  Configurations: none, LUKS, IPsec,
// LUKS+IPsec.
//
// Paper shape: NPB overheads come from IPsec only and range from ~18 %
// (EP) to ~200 % (CG); TeraSort degrades ~30 % under LUKS+IPsec;
// Filebench-in-a-VM is ~50 % worse under IPsec.

#include <vector>

#include "bench/bench_util.h"
#include "src/workload/workload.h"

namespace bolted {
namespace {

struct ConfigSpec {
  std::string label;
  bool luks;
  bool ipsec;
};

double RunApp(const workload::WorkloadSpec& app, const ConfigSpec& config,
              int nodes) {
  core::CloudConfig cloud_config;
  cloud_config.num_machines = nodes;
  cloud_config.linuxboot_in_flash = true;
  core::Cloud cloud(cloud_config);

  core::TrustProfile profile;
  profile.use_attestation = false;  // perf configs differ only in encryption
  profile.encrypt_disk = config.luks;
  profile.encrypt_network = config.ipsec;
  core::Enclave enclave(cloud, "tenant", profile, 7);

  sim::Duration elapsed = sim::Duration::Zero();
  workload::WorkloadRunner runner(cloud, enclave);
  auto flow = [&]() -> sim::Task {
    co_await bench::ProvisionMany(cloud, enclave, nodes);
    co_await runner.Run(app, &elapsed);
  };
  cloud.sim().Spawn(flow());
  cloud.sim().Run();
  return elapsed.ToSecondsF();
}

void RunTable(const workload::WorkloadSpec& app, int nodes, double* degradation_out) {
  static const ConfigSpec kConfigs[] = {
      {"none", false, false},
      {"LUKS", true, false},
      {"IPsec", false, true},
      {"LUKS+IPsec", true, true},
  };
  double base = 0;
  std::printf("%-14s", app.name.c_str());
  for (int i = 0; i < 4; ++i) {
    const double seconds = RunApp(app, kConfigs[i], nodes);
    if (i == 0) {
      base = seconds;
    }
    std::printf(" %9.1fs (%+5.0f%%)", seconds, 100.0 * (seconds - base) / base);
    if (i == 3 && degradation_out != nullptr) {
      *degradation_out = 100.0 * (seconds - base) / base;
    }
  }
  std::printf("\n");
}

}  // namespace
}  // namespace bolted

int main() {
  using bolted::bench::PrintHeader;

  PrintHeader("Figure 7: macro-benchmarks (none / LUKS / IPsec / LUKS+IPsec)");
  std::printf("%-14s %18s %18s %18s %18s\n", "app", "none", "LUKS", "IPsec",
              "LUKS+IPsec");

  double ep = 0;
  double cg = 0;
  double tera = 0;
  double fb = 0;
  bolted::RunTable(bolted::workload::NasEp(), 16, &ep);
  bolted::RunTable(bolted::workload::NasCg(), 16, &cg);
  bolted::RunTable(bolted::workload::NasFt(), 16, nullptr);
  bolted::RunTable(bolted::workload::NasMg(), 16, nullptr);
  bolted::RunTable(bolted::workload::SparkTeraSort(), 16, &tera);
  bolted::RunTable(bolted::workload::FilebenchVm(), 1, &fb);

  PrintHeader("Figure 7: headline checks (LUKS+IPsec degradation)");
  std::printf("NPB-EP:   %+6.0f%%  (paper ~+18%%)\n", ep);
  std::printf("NPB-CG:   %+6.0f%%  (paper ~+200%%)\n", cg);
  std::printf("TeraSort: %+6.0f%%  (paper ~+30%%)\n", tera);
  std::printf("Filebench:%+6.0f%%  (paper ~+50%% under IPsec)\n", fb);
  return 0;
}
