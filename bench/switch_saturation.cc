// Switch-saturation microbench: N-port all-to-all frame blast, burst
// fast path vs the generic coroutine-per-frame path (DESIGN.md §15).
//
// Every port posts one frame to every other port at the same instant,
// repeated for a configurable number of rounds — the densest burst shape
// the fabric produces, and the one where per-frame scheduler round-trips
// hurt most.  The identical seeded workload runs three times:
//
//   generic/wheel    — the original forwarding path (the oracle)
//   burst/wheel      — the flight engine (the headline number)
//   burst/reference  — the flight engine on the reference-heap scheduler
//
// All three runs must produce the same delivered-frame count and the same
// frame trace digest (Network::frame_digest — delivered multiset per sim
// instant); a mismatch is a correctness bug and the bench fails.  The
// headline is host-side frames/second, and the bench self-enforces the
// >= 2x burst-vs-generic floor that scripts/bench_guard.py also checks on
// the emitted JSON.
//
// Usage: switch_saturation [output-path] [--ports=N] [--rounds=R]
//   (default: 64 ports, 48 rounds — ~193k frames — writing BENCH_net.json)

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/net/network.h"
#include "src/sim/simulation.h"

namespace {

using bolted::net::Endpoint;
using bolted::net::ForwardPath;
using bolted::net::Message;
using bolted::net::Network;
using bolted::sim::Duration;
using bolted::sim::SchedulerKind;
using bolted::sim::Simulation;

using Clock = std::chrono::steady_clock;

struct RunResult {
  uint64_t frames = 0;
  double wall_ms = 0;
  uint64_t frame_digest = 0;
};

RunResult RunBlast(SchedulerKind kind, ForwardPath path, int ports,
                   int rounds) {
  Simulation sim(kind, 0x73617475u);  // "satu"
  Network net(sim, Duration::Microseconds(1), 1.25e9);
  net.SetForwardPath(path);

  std::vector<Endpoint*> eps;
  eps.reserve(static_cast<size_t>(ports));
  for (int i = 0; i < ports; ++i) {
    Endpoint& ep = net.CreateEndpoint("port" + std::to_string(i));
    net.AttachToVlan(ep.address(), 100);
    eps.push_back(&ep);
  }

  // One round = every port fires a frame at every other port, all at the
  // same instant.  Rounds are spaced far enough apart (1500 B x (N-1)
  // frames per NIC at 1.25 GB/s is ~75 us) that each blast fully drains.
  for (int round = 0; round < rounds; ++round) {
    sim.Schedule(Duration::Microseconds(static_cast<int64_t>(200) * round),
                 [&eps]() {
      const int n = static_cast<int>(eps.size());
      for (int src = 0; src < n; ++src) {
        for (int dst = 0; dst < n; ++dst) {
          if (dst == src) {
            continue;
          }
          Message m;
          m.kind = "blast";
          m.wire_bytes = 1500;
          eps[static_cast<size_t>(src)]->Post(
              eps[static_cast<size_t>(dst)]->address(), std::move(m));
        }
      }
    });
  }

  const auto start = Clock::now();
  sim.Run();
  RunResult r;
  r.wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  r.frames = net.frames_delivered();
  r.frame_digest = net.frame_digest();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = "BENCH_net.json";
  int ports = 64;
  int rounds = 48;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ports=", 8) == 0 && argv[i][8] != '\0') {
      ports = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--rounds=", 9) == 0 &&
               argv[i][9] != '\0') {
      rounds = std::atoi(argv[i] + 9);
    } else {
      out_path = argv[i];
    }
  }
  if (ports < 2 || rounds < 1) {
    std::fprintf(stderr, "need --ports>=2 and --rounds>=1\n");
    return 2;
  }

  const RunResult generic =
      RunBlast(SchedulerKind::kWheel, ForwardPath::kGeneric, ports, rounds);
  const RunResult burst =
      RunBlast(SchedulerKind::kWheel, ForwardPath::kBurst, ports, rounds);
  const RunResult burst_ref =
      RunBlast(SchedulerKind::kReference, ForwardPath::kBurst, ports, rounds);

  const uint64_t expected = static_cast<uint64_t>(rounds) * ports * (ports - 1);
  const RunResult* runs[] = {&generic, &burst, &burst_ref};
  const char* names[] = {"generic/wheel", "burst/wheel", "burst/reference"};
  for (int i = 0; i < 3; ++i) {
    if (runs[i]->frames != expected ||
        runs[i]->frame_digest != generic.frame_digest) {
      std::fprintf(stderr,
                   "%s diverged: %" PRIu64 " frames (expected %" PRIu64
                   "), digest %016" PRIx64 " vs generic %016" PRIx64 "\n",
                   names[i], runs[i]->frames, expected, runs[i]->frame_digest,
                   generic.frame_digest);
      return 1;
    }
  }

  const double generic_fps =
      static_cast<double>(generic.frames) / (generic.wall_ms / 1e3);
  const double burst_fps =
      static_cast<double>(burst.frames) / (burst.wall_ms / 1e3);
  const double generic_ns =
      generic.wall_ms * 1e6 / static_cast<double>(generic.frames);
  const double burst_ns =
      burst.wall_ms * 1e6 / static_cast<double>(burst.frames);
  const double speedup = generic_fps > 0 ? burst_fps / generic_fps : 0.0;

  std::string json = "{\n";
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "  \"ports\": %d,\n"
                "  \"rounds\": %d,\n"
                "  \"host_cores\": %u,\n"
                "  \"saturation_frames\": %" PRIu64 ",\n"
                "  \"saturation_generic_wall_ms\": %.3f,\n"
                "  \"saturation_burst_wall_ms\": %.3f,\n"
                "  \"saturation_generic_frames_per_second\": %.0f,\n"
                "  \"saturation_burst_frames_per_second\": %.0f,\n"
                "  \"saturation_generic_ns_per_frame\": %.1f,\n"
                "  \"saturation_burst_ns_per_frame\": %.1f,\n"
                "  \"saturation_burst_speedup\": %.3f\n",
                ports, rounds, std::thread::hardware_concurrency(),
                burst.frames, generic.wall_ms, burst.wall_ms, generic_fps,
                burst_fps, generic_ns, burst_ns, speedup);
  json += buf;
  json += "}\n";

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);

  std::printf("%-16s %9" PRIu64 " frames  %8.1f ms  %12.0f frames/s  %7.1f ns/frame\n",
              "generic/wheel", generic.frames, generic.wall_ms, generic_fps,
              generic_ns);
  std::printf("%-16s %9" PRIu64 " frames  %8.1f ms  %12.0f frames/s  %7.1f ns/frame\n",
              "burst/wheel", burst.frames, burst.wall_ms, burst_fps, burst_ns);
  std::printf("digest %016" PRIx64 " (paths and schedulers identical)\n",
              generic.frame_digest);
  std::printf("burst speedup %.2fx\nwrote %s\n", speedup, out_path);

  // Self-enforced floor: the whole point of the fast path.
  if (speedup < 2.0) {
    std::fprintf(stderr, "burst speedup %.2fx below the 2x floor\n", speedup);
    return 1;
  }
  return 0;
}
