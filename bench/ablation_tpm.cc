// Ablation: TPM command latency vs the cost of attestation.
//
// The attestation delta in Figure 4 is mostly TPM work (AIK generation at
// registration, quote signing at attestation).  The paper used a hardware
// TPM's latencies on the R630 and emulated them on the M620s; this sweep
// shows how the "attestation adds ~25%" figure depends on that choice —
// and what a fast firmware TPM (fTPM) would buy.

#include "bench/bench_util.h"

namespace bolted {
namespace {

struct Row {
  double unattested;
  double attested;
};

Row RunWithTpm(double scale) {
  Row row{};
  for (const bool attest : {false, true}) {
    core::CloudConfig config;
    config.num_machines = 1;
    config.linuxboot_in_flash = true;
    config.cal.tpm_latency.quote =
        sim::Duration::Milliseconds(static_cast<int64_t>(1500 * scale));
    config.cal.tpm_latency.create_aik =
        sim::Duration::Milliseconds(static_cast<int64_t>(20000 * scale));
    config.cal.tpm_latency.activate_credential =
        sim::Duration::Milliseconds(static_cast<int64_t>(500 * scale));
    core::Cloud cloud(config);

    core::TrustProfile profile;
    profile.use_attestation = attest;
    core::Enclave enclave(cloud, "tenant", profile, 11);
    core::ProvisionOutcome outcome;
    auto flow = [&]() -> sim::Task {
      co_await enclave.ProvisionNode("node-0", &outcome);
    };
    cloud.sim().Spawn(flow());
    cloud.sim().Run();
    if (!outcome.success) {
      std::fprintf(stderr, "failed: %s\n", outcome.failure.c_str());
      std::abort();
    }
    (attest ? row.attested : row.unattested) = outcome.trace.total().ToSecondsF();
  }
  return row;
}

}  // namespace
}  // namespace bolted

int main() {
  using bolted::bench::PrintHeader;
  PrintHeader("Ablation: TPM latency scale vs attestation overhead");
  std::printf("%12s %14s %14s %12s\n", "TPM scale", "unattested", "attested",
              "overhead");
  for (const double scale : {0.1, 0.5, 1.0, 2.0, 4.0}) {
    const bolted::Row row = bolted::RunWithTpm(scale);
    std::printf("%11.1fx %13.0fs %13.0fs %+11.1f%%\n", scale, row.unattested,
                row.attested,
                100.0 * (row.attested - row.unattested) / row.unattested);
  }
  std::printf("\n1.0x is the paper-era hardware TPM; 0.1x approximates an fTPM.\n"
              "Even at 4x the overhead stays modest — the paper's conclusion\n"
              "that \"there is no performance justification for not using\n"
              "attestation\" is robust to the TPM's speed.\n");
  return 0;
}
