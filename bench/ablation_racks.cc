// Ablation: rack topology / uplink oversubscription.
//
// The paper's testbed is one 10 Gbit switch; a production Bolted (the MOC
// deployment) spans racks whose ToR uplinks are oversubscribed.  This
// ablation re-runs the communication-heavy Fig. 7 workloads on 16 nodes
// spread over 1, 2, and 4 racks, showing how much of the encryption
// overhead story survives once the fabric itself is a bottleneck.

#include "bench/bench_util.h"
#include "src/workload/workload.h"

namespace bolted {
namespace {

double RunApp(const workload::WorkloadSpec& app, int racks, bool ipsec) {
  core::CloudConfig config;
  config.num_machines = 16;
  config.linuxboot_in_flash = true;
  config.racks = racks;
  config.rack_uplink_bytes_per_second = 2.5e9;  // 20 Gbit uplink, 8:1-ish
  core::Cloud cloud(config);

  core::TrustProfile profile;
  profile.use_attestation = false;
  profile.encrypt_network = ipsec;
  core::Enclave enclave(cloud, "tenant", profile, 7);

  sim::Duration elapsed = sim::Duration::Zero();
  workload::WorkloadRunner runner(cloud, enclave);
  auto flow = [&]() -> sim::Task {
    co_await bench::ProvisionMany(cloud, enclave, 16);
    co_await runner.Run(app, &elapsed);
  };
  cloud.sim().Spawn(flow());
  cloud.sim().Run();
  return elapsed.ToSecondsF();
}

}  // namespace
}  // namespace bolted

int main() {
  using bolted::bench::PrintHeader;
  PrintHeader("Ablation: rack oversubscription x encryption (16 nodes)");
  std::printf("%-10s %8s %14s %14s %12s\n", "app", "racks", "plain (s)",
              "IPsec (s)", "IPsec cost");
  for (const auto& app : {bolted::workload::NasCg(), bolted::workload::NasFt()}) {
    for (const int racks : {1, 2, 4}) {
      const double plain = bolted::RunApp(app, racks, false);
      const double ipsec = bolted::RunApp(app, racks, true);
      std::printf("%-10s %8d %14.1f %14.1f %+11.0f%%\n", app.name.c_str(), racks,
                  plain, ipsec, 100.0 * (ipsec - plain) / plain);
    }
  }
  std::printf("\nOversubscribed fabrics slow the plain baseline, so the\n"
              "*relative* cost of IPsec shrinks — encryption is cheapest\n"
              "exactly where the network is already the bottleneck.\n");
  return 0;
}
