// Emits BENCH_crypto.json: throughput of each crypto primitive under the
// scalar reference and the runtime-dispatched backend, plus event-queue
// ops/sec.  Self-contained (std::chrono, no google-benchmark) so the file
// can be regenerated anywhere and diffed across commits.
//
// Usage: bench_crypto_json [output-path]   (default: BENCH_crypto.json)

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/crypto/aes_gcm.h"
#include "src/crypto/aes_xts.h"
#include "src/crypto/bytes.h"
#include "src/crypto/cpu.h"
#include "src/crypto/drbg.h"
#include "src/crypto/hmac.h"
#include "src/crypto/p256.h"
#include "src/crypto/sha256.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace {

using Clock = std::chrono::steady_clock;

// Runs fn repeatedly for at least kMinSeconds and returns calls/sec.
template <typename Fn>
double MeasureRate(Fn&& fn) {
  constexpr double kMinSeconds = 0.25;
  // Warm-up and batch sizing.
  fn();
  uint64_t batch = 1;
  for (;;) {
    const auto start = Clock::now();
    for (uint64_t i = 0; i < batch; ++i) {
      fn();
    }
    const double elapsed =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (elapsed >= kMinSeconds) {
      return static_cast<double>(batch) / elapsed;
    }
    batch = elapsed > 1e-4 ? static_cast<uint64_t>(
                                 static_cast<double>(batch) * 1.3 *
                                 kMinSeconds / elapsed)
                           : batch * 8;
  }
}

struct Row {
  std::string name;
  std::string unit;  // "bytes_per_second" or "ops_per_second"
  double scalar = 0;
  double dispatched = 0;
};

// Measures bytes/sec of fn (which processes `bytes` per call) under both
// backends.
template <typename MakeFn>
Row BackendRow(const std::string& name, size_t bytes, MakeFn&& make_fn) {
  namespace cpu = bolted::crypto::cpu;
  Row row{name, "bytes_per_second", 0, 0};
  {
    cpu::SetForceScalar(true);
    auto fn = make_fn();
    row.scalar = MeasureRate(fn) * static_cast<double>(bytes);
  }
  {
    cpu::SetForceScalar(false);
    auto fn = make_fn();
    row.dispatched = MeasureRate(fn) * static_cast<double>(bytes);
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bolted::crypto;

  const char* out_path = argc > 1 ? argv[1] : "BENCH_crypto.json";
  std::vector<Row> rows;

  {
    Drbg drbg(uint64_t{1});
    const Bytes data = drbg.Generate(1 << 20);
    rows.push_back(BackendRow("sha256_1MiB", data.size(), [&] {
      return [&data] { Sha256::Hash(data); };
    }));
  }
  {
    Drbg drbg(uint64_t{2});
    const Bytes key = drbg.Generate(32);
    const Bytes data = drbg.Generate(4096);
    rows.push_back(BackendRow("hmac_sha256_4KiB", data.size(), [&] {
      return [&key, &data] { HmacSha256(key, data); };
    }));
  }
  {
    Drbg drbg(uint64_t{3});
    const Bytes key = drbg.Generate(64);
    rows.push_back(BackendRow("aes_xts_4KiB_sector", 4096, [&] {
      // The XTS object is constructed inside the backend scope so it
      // captures the right kernel.
      auto xts = std::make_shared<AesXts>(key);
      auto sector = std::make_shared<Bytes>(4096, 0xa5);
      return [xts, sector] { xts->EncryptSector(42, *sector); };
    }));
  }
  {
    Drbg drbg(uint64_t{4});
    const Bytes key = drbg.Generate(32);
    const Bytes nonce = drbg.Generate(12);
    rows.push_back(BackendRow("aes_gcm_seal_9000B", 9000, [&] {
      auto gcm = std::make_shared<AesGcm>(key);
      auto plaintext = std::make_shared<Bytes>(9000, 0x5a);
      auto out = std::make_shared<Bytes>(9000 + AesGcm::kTagSize);
      return [gcm, plaintext, out, nonce] {
        gcm->SealTo(nonce, *plaintext, {}, out->data());
      };
    }));
  }
  cpu::SetForceScalar(false);

  // P-256 rows compare algorithms, not instruction sets: "scalar" is the
  // pre-PR double-and-add ladder (the *Reference methods, kept verbatim)
  // and "dispatched" is the comb/wNAF/Shamir fast path.  All are
  // ops/second of one full operation.
  {
    const P256& curve = P256::Instance();
    Drbg drbg(uint64_t{5});
    const U256 priv = curve.PrivateKeyFromSeed(drbg.Generate(32));
    const EcPoint pub = curve.PublicKey(priv);
    const Digest hash = Sha256::Hash(drbg.Generate(64));
    const EcdsaSignature sig = curve.Sign(priv, hash);
    const auto prepared = curve.Prepare(pub);

    Row sign{"ecdsa_p256_sign", "ops_per_second", 0, 0};
    sign.scalar = MeasureRate([&] { curve.SignReference(priv, hash); });
    sign.dispatched = MeasureRate([&] { curve.Sign(priv, hash); });
    rows.push_back(sign);

    // The headline verify row is the attestation hot path: the verifier
    // checks quotes from the same AIK every poll, so the key is prepared
    // once and the short four-table ladder runs per quote.
    Row verify{"ecdsa_p256_verify", "ops_per_second", 0, 0};
    verify.scalar = MeasureRate([&] { curve.VerifyReference(pub, hash, sig); });
    verify.dispatched = MeasureRate([&] { curve.Verify(*prepared, hash, sig); });
    rows.push_back(verify);

    // Cold verify: previously unseen key, on-curve check and odd-multiple
    // table built per call.
    Row verify_cold{"ecdsa_p256_verify_cold", "ops_per_second", 0, 0};
    verify_cold.scalar = verify.scalar;
    verify_cold.dispatched = MeasureRate([&] { curve.Verify(pub, hash, sig); });
    rows.push_back(verify_cold);

    // Batched verify, per-signature rate at batch 64 — the width-7
    // PreparedKey tables cut the per-item q-additions here, so this row is
    // the direct evidence for the table-width choice.  "scalar" is the
    // same work as 64 independent prepared verifies.
    {
      constexpr size_t kBatch = 64;
      std::vector<Digest> hashes(kBatch);
      std::vector<EcdsaSignature> sigs(kBatch);
      std::vector<EcPoint> r_points(kBatch);
      std::vector<P256::BatchEntry> entries(kBatch);
      for (size_t i = 0; i < kBatch; ++i) {
        hashes[i] = Sha256::Hash(drbg.Generate(64));
        // Even-y signing with the nonce point shipped as the batch hint —
        // the same wire contract Tpm::MakeQuote follows.
        sigs[i] = curve.Sign(priv, hashes[i], &r_points[i]);
        entries[i] = {&*prepared, hashes[i], sigs[i], &r_points[i]};
      }
      bool ok[kBatch];
      Row verify_batch{"ecdsa_p256_verify_batch64", "ops_per_second", 0, 0};
      verify_batch.scalar = MeasureRate([&] {
        for (size_t i = 0; i < kBatch; ++i) {
          curve.Verify(*prepared, hashes[i], sigs[i]);
        }
      }) * static_cast<double>(kBatch);
      verify_batch.dispatched =
          MeasureRate([&] { curve.VerifyBatch(entries, ok); }) *
          static_cast<double>(kBatch);
      rows.push_back(verify_batch);
    }

    const U256 peer_priv = curve.PrivateKeyFromSeed(drbg.Generate(32));
    const EcPoint peer = curve.PublicKey(peer_priv);
    Row ecdh{"ecdh_p256", "ops_per_second", 0, 0};
    ecdh.scalar = MeasureRate([&] { curve.SharedSecretReference(priv, peer); });
    ecdh.dispatched = MeasureRate([&] { curve.SharedSecret(priv, peer); });
    rows.push_back(ecdh);
  }

  // Event queue: schedule+fire ops/sec (1024-event batches).
  {
    Row row{"event_queue_schedule_fire", "ops_per_second", 0, 0};
    bolted::sim::Simulation sim;
    uint64_t sink = 0;
    constexpr int kBatch = 1024;
    const double rate = MeasureRate([&] {
      for (int i = 0; i < kBatch; ++i) {
        sim.Schedule(bolted::sim::Duration::Nanoseconds(i),
                     [&sink] { ++sink; });
      }
      sim.Run();
    });
    row.scalar = row.dispatched = rate * kBatch;
    rows.push_back(row);
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"unit\": \"%s\", "
                 "\"scalar\": %.4g, \"dispatched\": %.4g, "
                 "\"speedup\": %.3g}%s\n",
                 r.name.c_str(), r.unit.c_str(), r.scalar, r.dispatched,
                 r.scalar > 0 ? r.dispatched / r.scalar : 0.0,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  for (const Row& r : rows) {
    std::printf("%-28s scalar %12.4g  dispatched %12.4g  (%.2fx)\n",
                r.name.c_str(), r.scalar, r.dispatched,
                r.scalar > 0 ? r.dispatched / r.scalar : 0.0);
  }
  return 0;
}
