// §7.4 (text results): continuous-attestation reaction times.
//
// Paper: Keylime detects a policy violation from IMA measurements and TPM
// quotes in under one second of verification work; the full response —
// revocation notification, IPsec connections reset, node cryptographically
// banned from the network — takes ~3 seconds, plus however long until the
// next periodic quote (the prototype polls every couple of seconds).

#include "bench/bench_util.h"

int main() {
  using bolted::bench::PrintHeader;
  namespace core = bolted::core;
  namespace simns = bolted::sim;

  PrintHeader("Continuous attestation: detection & revocation latency");

  core::CloudConfig config;
  config.num_machines = 4;
  config.linuxboot_in_flash = true;
  core::Cloud cloud(config);
  core::Enclave charlie(cloud, "charlie", core::TrustProfile::Charlie(), 21);

  double attack_at = -1;
  double response_done_at = -1;
  std::string reason_seen;
  // Fires once the verifier has detected the violation, revoked the bad
  // node's keys on every peer, and the tenant script has cut it from the
  // enclave network.
  charlie.SetViolationHandler([&](const std::string&, const std::string& reason) {
    response_done_at = cloud.sim().now().ToSecondsF();
    reason_seen = reason;
  });

  core::ProvisionOutcome o0;
  core::ProvisionOutcome o1;
  auto flow = [&]() -> simns::Task {
    co_await charlie.ProvisionNode("node-0", &o0);
    co_await charlie.ProvisionNode("node-1", &o1);
    co_await simns::Delay(cloud.sim(), simns::Duration::Seconds(20));
    attack_at = cloud.sim().now().ToSecondsF();
    charlie.ExecuteBinary("node-1", "/tmp/rootkit-loader",
                          bolted::crypto::Sha256::Hash("malicious payload"),
                          /*whitelisted_already=*/false);
  };
  cloud.sim().Spawn(flow());
  cloud.sim().RunUntil(simns::Time::FromNanoseconds(3'000'000'000'000));

  if (!o0.success || !o1.success || attack_at < 0 || response_done_at < 0) {
    std::fprintf(stderr, "scenario failed (%s / %s)\n", o0.failure.c_str(),
                 o1.failure.c_str());
    return 1;
  }

  const double total = response_done_at - attack_at;
  std::printf("attack executed at:          t=%.2f s\n", attack_at);
  std::printf("response complete at:        t=%.2f s\n", response_done_at);
  std::printf("violation reason:            %s\n", reason_seen.c_str());
  std::printf("continuous attestation poll: every 2 s\n");

  const bool banned =
      !charlie.node_machine("node-0")
           ->ipsec()
           .HasSa(cloud.FindMachine("node-1")->address());

  PrintHeader("Headline checks");
  std::printf("violation -> keys revoked + node cut: %.2f s "
              "(paper: ~3 s after the triggering quote; poll adds 0-2 s)\n",
              total);
  std::printf("compromised node cryptographically banned: %s\n",
              banned ? "yes" : "NO");
  std::printf("node state: %s (expected: rejected)\n",
              charlie.node_state("node-1") == core::NodeState::kRejected
                  ? "rejected"
                  : "NOT rejected");
  return banned ? 0 : 1;
}
