// Figure 3a: LUKS (AES-256-XTS) overhead on a block RAM disk, dd-style
// sequential read/write.
//
// Paper shape: plain RAM-disk bandwidth is several GB/s; LUKS caps reads
// near ~1 GB/s and writes near ~0.8 GB/s — crypto-bound, but still fast
// enough to keep up with 10 GbE network storage.

#include "bench/bench_util.h"
#include "src/crypto/drbg.h"
#include "src/storage/block_device.h"
#include "src/storage/crypt_device.h"

namespace bolted {
namespace {

struct Result {
  double read_gbps;
  double write_gbps;
};

Result RunDd(bool luks, uint64_t total_bytes) {
  sim::Simulation simu;
  const core::Calibration cal;
  storage::RamDisk ram(simu, (64ull << 30) / storage::kSectorSize,
                       cal.ram_disk_read_bytes_per_second,
                       cal.ram_disk_write_bytes_per_second, "ram0");
  crypto::Drbg drbg(uint64_t{7});
  const crypto::Bytes master_key = drbg.Generate(64);
  storage::CryptDevice crypt(simu, &ram, master_key, cal.luks, "luks-ram0");
  storage::BlockDevice& device = luks ? static_cast<storage::BlockDevice&>(crypt)
                                      : static_cast<storage::BlockDevice&>(ram);

  double read_seconds = 0;
  double write_seconds = 0;
  auto flow = [&]() -> sim::Task {
    const double w0 = simu.now().ToSecondsF();
    co_await device.AccountWrite(total_bytes);
    write_seconds = simu.now().ToSecondsF() - w0;
    const double r0 = simu.now().ToSecondsF();
    co_await device.AccountRead(total_bytes);
    read_seconds = simu.now().ToSecondsF() - r0;
  };
  simu.Spawn(flow());
  simu.Run();

  const double gb = static_cast<double>(total_bytes) / 1e9;
  return Result{gb / read_seconds, gb / write_seconds};
}

}  // namespace
}  // namespace bolted

int main() {
  using bolted::bench::PrintHeader;
  using bolted::bench::PrintRow;

  PrintHeader("Figure 3a: LUKS overhead on a block RAM disk (dd, 16 GB)");
  const auto plain = bolted::RunDd(false, 16ull << 30);
  const auto luks = bolted::RunDd(true, 16ull << 30);

  std::printf("%-14s %14s %14s\n", "config", "read (GB/s)", "write (GB/s)");
  std::printf("%-14s %14.2f %14.2f\n", "plain", plain.read_gbps, plain.write_gbps);
  std::printf("%-14s %14.2f %14.2f\n", "LUKS", luks.read_gbps, luks.write_gbps);

  PrintHeader("Figure 3a: headline checks");
  PrintRow("LUKS read (~1 GB/s)", luks.read_gbps, "GB/s");
  PrintRow("LUKS write (~0.8 GB/s)", luks.write_gbps, "GB/s");
  PrintRow("plain/LUKS read ratio (> 2x)", plain.read_gbps / luks.read_gbps, "x");
  return 0;
}
