// Figure 6: IMA overhead on a Linux kernel compile, threads 1..32.
//
// The paper's stress policy measures every executed file and every file
// read by root, runs the compile as root, and still sees no noticeable
// overhead — measurements happen once per unique file and amortise across
// threads.

#include "bench/bench_util.h"
#include "src/ima/ima.h"
#include "src/tpm/tpm.h"
#include "src/workload/workload.h"

namespace bolted {
namespace {

double RunCompile(int threads, bool with_ima, uint64_t* measurements) {
  sim::Simulation simu;
  tpm::Tpm tpm(crypto::ToBytes("fig6-tpm"), tpm::TpmLatencyModel{});
  ima::ImaPolicy policy;
  policy.measure_executables = true;
  policy.measure_root_reads = true;  // the paper's stress policy
  ima::Ima ima(tpm, policy);

  workload::KernelCompileSpec spec;
  workload::KernelCompileResult result;
  auto flow = [&]() -> sim::Task {
    co_await workload::RunKernelCompile(simu, spec, threads,
                                        with_ima ? &ima : nullptr, &result);
  };
  simu.Spawn(flow());
  simu.Run();
  *measurements = result.measurements;
  return result.elapsed.ToSecondsF();
}

}  // namespace
}  // namespace bolted

int main() {
  using bolted::bench::PrintHeader;

  PrintHeader("Figure 6: IMA overhead on Linux kernel compile");
  std::printf("%8s %14s %14s %10s %14s\n", "threads", "no IMA (s)", "IMA (s)",
              "overhead", "measurements");
  double worst = 0;
  for (int threads : {1, 2, 4, 8, 16, 32}) {
    uint64_t measurements = 0;
    const double base = bolted::RunCompile(threads, false, &measurements);
    const double with_ima = bolted::RunCompile(threads, true, &measurements);
    const double overhead = 100.0 * (with_ima - base) / base;
    worst = std::max(worst, overhead);
    std::printf("%8d %14.1f %14.1f %9.2f%% %14llu\n", threads, base, with_ima,
                overhead, static_cast<unsigned long long>(measurements));
  }

  PrintHeader("Figure 6: headline check");
  std::printf("worst-case IMA overhead: %.2f%% (paper: not noticeable)\n", worst);
  return 0;
}
