// Fleet-scale continuous attestation: one verifier polling a 4096-node
// fleet, measured in wall-clock (host) time per poll round.
//
// The paper's prototype attests each node every couple of seconds; at
// fleet scale the verifier's CPU budget is dominated by per-quote ECDSA
// verification plus per-poll key decoding.  This bench drives the real
// protocol stack — registrar lookup, nonce, TPM quote, log replay,
// whitelist checks — over the simulated network for every node, and
// reports how much host CPU one full round costs.  The first round pays
// the per-node Prepare (decode + on-curve check + verify tables); steady
// rounds hit the verifier's AIK cache and the golden boot-log cache, and
// verify signatures through the batched multi-scalar path
// (Verifier::VerifyFleet).  A final sweep re-times single rounds across
// batch sizes and worker counts, plus the legacy per-node VerifyNode path
// for an honest old-vs-new row.
//
// Usage: fleet_attestation [output-path] [--nodes=N] [--rounds=N]
//                          [--batch=N] [--workers=N] [--no-sweep]
//                          [--trace=out.json]
//   (default output: BENCH_attestation.json, default fleet 4096; --trace
//    additionally exports a chrome://tracing JSON of the whole run.
//    Tracing adds bookkeeping to the timed path, so compare wall numbers
//    only between untraced runs.)

#include <chrono>
#include <thread>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/firmware/firmware.h"
#include "src/keylime/agent.h"
#include "src/keylime/registrar.h"
#include "src/keylime/verifier.h"
#include "src/machine/machine.h"
#include "src/obs/obs.h"

namespace {

constexpr int kDefaultFleetSize = 4096;
constexpr int kDefaultSteadyRounds = 4;
constexpr int kAttestationVlan = 50;

using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bolted;
  const char* out_path = "BENCH_attestation.json";
  const char* trace_path = nullptr;
  int fleet_size = kDefaultFleetSize;
  int steady_rounds = kDefaultSteadyRounds;
  int batch_size = 64;
  int workers = 1;
  bool sweep = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0 && argv[i][8] != '\0') {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--nodes=", 8) == 0 && argv[i][8] != '\0') {
      fleet_size = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--rounds=", 9) == 0 && argv[i][9] != '\0') {
      steady_rounds = std::atoi(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--batch=", 8) == 0 && argv[i][8] != '\0') {
      batch_size = std::atoi(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--workers=", 10) == 0 && argv[i][10] != '\0') {
      workers = std::atoi(argv[i] + 10);
    } else if (std::strcmp(argv[i], "--no-sweep") == 0) {
      sweep = false;
    } else {
      out_path = argv[i];
    }
  }
  if (fleet_size <= 0 || steady_rounds <= 0 || batch_size <= 0 || workers <= 0) {
    std::fprintf(stderr, "--nodes/--rounds/--batch/--workers must be positive\n");
    return 2;
  }
  const int kFleetSize = fleet_size;

  sim::Simulation sim{1234};
#if BOLTED_OBS
  std::unique_ptr<obs::Registry> registry;
  if (trace_path != nullptr) {
    registry = std::make_unique<obs::Registry>(sim);
  }
#else
  if (trace_path != nullptr) {
    std::fprintf(stderr, "--trace ignored: built with BOLTED_OBS=0\n");
  }
#endif
  net::Network fabric{sim, sim::Duration::Microseconds(10), 1.25e9};
  net::Endpoint& registrar_ep = fabric.CreateEndpoint("registrar");
  net::Endpoint& verifier_ep = fabric.CreateEndpoint("verifier");
  keylime::Registrar registrar(sim, registrar_ep, 1);
  keylime::Verifier verifier(sim, verifier_ep, registrar_ep.address(), 2);
  verifier.SetFleetOptions({.workers = workers, .batch_size = batch_size});
  fabric.AttachToVlan(registrar_ep.address(), kAttestationVlan);
  fabric.AttachToVlan(verifier_ep.address(), kAttestationVlan);

  machine::MachineConfig mc;
  mc.flash_firmware = firmware::BuildLinuxBoot("src");
  auto whitelist = std::make_shared<keylime::Whitelist>();
  whitelist->AllowBoot(mc.flash_firmware.digest);

  std::vector<std::unique_ptr<machine::Machine>> machines;
  std::vector<std::unique_ptr<keylime::Agent>> agents;
  std::vector<std::string> names;
  machines.reserve(kFleetSize);
  agents.reserve(kFleetSize);
  for (int i = 0; i < kFleetSize; ++i) {
    names.push_back("node-" + std::to_string(i));
    machines.push_back(
        std::make_unique<machine::Machine>(sim, fabric, names.back(), mc));
    agents.push_back(
        std::make_unique<keylime::Agent>(*machines.back(), 100 + i));
    fabric.AttachToVlan(machines.back()->address(), kAttestationVlan);
  }

  // Registration (AIK credential activation) and boot, all in one sim run.
  std::vector<uint8_t> registered(kFleetSize, 0);
  auto setup = [&](int i) -> sim::Task {
    bool ok = false;
    co_await agents[static_cast<size_t>(i)]->RegisterWithRegistrar(
        registrar_ep.address(), names[static_cast<size_t>(i)], &ok);
    registered[static_cast<size_t>(i)] = ok ? 1 : 0;
    co_await machines[static_cast<size_t>(i)]->PowerOnSelfTest();
  };
  for (int i = 0; i < kFleetSize; ++i) {
    sim.Spawn(setup(i));
  }
  sim.Run();
  for (int i = 0; i < kFleetSize; ++i) {
    if (!registered[static_cast<size_t>(i)]) {
      std::fprintf(stderr, "registration failed for %s\n",
                   names[static_cast<size_t>(i)].c_str());
      return 1;
    }
    keylime::Verifier::NodeConfig config;
    config.agent = machines[static_cast<size_t>(i)]->address();
    config.whitelist = whitelist;
    verifier.AddNode(names[static_cast<size_t>(i)], std::move(config));
  }

  // One poll round = VerifyFleet across the whole fleet, driven to
  // completion through the simulated fabric.
  std::vector<keylime::VerificationResult> results(kFleetSize);
  auto poll_round = [&]() -> double {
    const auto start = Clock::now();
    auto round = [&]() -> sim::Task {
      co_await verifier.VerifyFleet(names, results.data());
    };
    sim.Spawn(round());
    sim.Run();
    return MillisSince(start);
  };
  // The pre-batching path: one VerifyNode task per node, signatures
  // verified one at a time.  Timed once at the end for the old-vs-new row.
  auto legacy_round = [&]() -> double {
    const auto start = Clock::now();
    for (int i = 0; i < kFleetSize; ++i) {
      auto one = [&](int node) -> sim::Task {
        co_await verifier.VerifyNode(names[static_cast<size_t>(node)],
                                     &results[static_cast<size_t>(node)]);
      };
      sim.Spawn(one(i));
    }
    sim.Run();
    return MillisSince(start);
  };
  auto check_round = [&](const char* what) -> bool {
    for (int i = 0; i < kFleetSize; ++i) {
      if (!results[static_cast<size_t>(i)].passed) {
        std::fprintf(stderr, "%s failed for %s: %s\n", what,
                     names[static_cast<size_t>(i)].c_str(),
                     results[static_cast<size_t>(i)].failure.c_str());
        return false;
      }
    }
    return true;
  };

  const double first_round_ms = poll_round();
  if (!check_round("first round")) {
    return 1;
  }
  double steady_total_ms = 0;
  double steady_max_ms = 0;
  const uint64_t steady_events_start = sim.events_processed();
  for (int r = 0; r < steady_rounds; ++r) {
    const double ms = poll_round();
    steady_total_ms += ms;
    if (ms > steady_max_ms) {
      steady_max_ms = ms;
    }
  }
  const uint64_t steady_events = sim.events_processed() - steady_events_start;
  if (!check_round("attestation")) {
    return 1;
  }

  const double steady_mean_ms = steady_total_ms / steady_rounds;
  const double per_node_us = steady_mean_ms * 1000.0 / kFleetSize;
  // Host-side event rate over the steady rounds: the number the scheduler
  // and frame-path optimisations move, tracked by scripts/check.sh --bench.
  const double events_per_second =
      static_cast<double>(steady_events) / (steady_total_ms / 1e3);
  const double ns_per_event =
      steady_total_ms * 1e6 / static_cast<double>(steady_events);

  // Batch-size / worker sweep (one timed round per config), then the
  // legacy per-node path.  All of these run after the steady measurement
  // so they cannot disturb it.
  struct SweepRow {
    int batch;
    int workers;
    double ms;
  };
  std::vector<SweepRow> sweep_rows;
  if (sweep) {
    const int batches[] = {1, 8, 16, 32, 64, 128};
    for (const int b : batches) {
      verifier.SetFleetOptions({.workers = 1, .batch_size = b});
      const double ms = poll_round();
      if (!check_round("sweep round")) {
        return 1;
      }
      sweep_rows.push_back({b, 1, ms});
    }
    // Worker rounds run the signature shards on the persistent
    // sim::WorkerPool (real shard cores when the host has them; on a
    // single-core host the rows measure pool overhead honestly).
    const int worker_counts[] = {2, 4, 8};
    for (const int w : worker_counts) {
      verifier.SetFleetOptions({.workers = w, .batch_size = batch_size});
      const double ms = poll_round();
      if (!check_round("sweep round")) {
        return 1;
      }
      sweep_rows.push_back({batch_size, w, ms});
    }
    verifier.SetFleetOptions({.workers = workers, .batch_size = batch_size});
  }
  const double legacy_ms = legacy_round();
  if (!check_round("legacy round")) {
    return 1;
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::perror("fopen");
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"fleet_nodes\": %d,\n"
               "  \"steady_rounds\": %d,\n"
               "  \"batch_size\": %d,\n"
               "  \"workers\": %d,\n"
               "  \"host_cores\": %u,\n"
               "  \"first_round_wall_ms\": %.3f,\n"
               "  \"steady_round_wall_ms_mean\": %.3f,\n"
               "  \"steady_round_wall_ms_max\": %.3f,\n"
               "  \"per_node_wall_us_mean\": %.3f,\n"
               "  \"legacy_round_wall_ms\": %.3f,\n"
               "  \"steady_events\": %llu,\n"
               "  \"events_per_second\": %.0f,\n"
               "  \"ns_per_event\": %.1f,\n"
               "  \"verifications\": %llu,\n"
               "  \"batched_verifications\": %llu,\n"
               "  \"batch_bisections\": %u,\n"
               "  \"batch_sqrt_recoveries\": %u,\n"
               "  \"batch_rejected_hints\": %u,\n"
               "  \"aik_cache_hits\": %llu,\n"
               "  \"aik_cache_misses\": %llu,\n"
               "  \"boot_log_cache_hits\": %llu,\n"
               "  \"boot_log_cache_misses\": %llu,\n",
               kFleetSize, steady_rounds, batch_size, workers,
               std::thread::hardware_concurrency(), first_round_ms,
               steady_mean_ms, steady_max_ms, per_node_us, legacy_ms,
               static_cast<unsigned long long>(steady_events),
               events_per_second, ns_per_event,
               static_cast<unsigned long long>(verifier.verifications()),
               static_cast<unsigned long long>(verifier.batched_verifications()),
               verifier.batch_stats().bisections,
               verifier.batch_stats().sqrt_recoveries,
               verifier.batch_stats().rejected_hints,
               static_cast<unsigned long long>(verifier.aik_cache_hits()),
               static_cast<unsigned long long>(verifier.aik_cache_misses()),
               static_cast<unsigned long long>(verifier.boot_log_cache_hits()),
               static_cast<unsigned long long>(verifier.boot_log_cache_misses()));
  std::fprintf(f, "  \"sweep\": [");
  for (size_t i = 0; i < sweep_rows.size(); ++i) {
    std::fprintf(f, "%s\n    {\"batch_size\": %d, \"workers\": %d, \"round_wall_ms\": %.3f}",
                 i == 0 ? "" : ",", sweep_rows[i].batch, sweep_rows[i].workers,
                 sweep_rows[i].ms);
  }
  std::fprintf(f, "%s]\n}\n", sweep_rows.empty() ? "" : "\n  ");
  std::fclose(f);

  std::printf("fleet of %d nodes, %d steady rounds (batch %d, %d workers)\n",
              kFleetSize, steady_rounds, batch_size, workers);
  std::printf("first poll round (cold caches):    %8.1f ms wall\n", first_round_ms);
  std::printf("steady poll round mean:            %8.1f ms wall (%.1f us/node)\n",
              steady_mean_ms, per_node_us);
  std::printf("steady poll round max:             %8.1f ms wall\n", steady_max_ms);
  std::printf("legacy per-node round:             %8.1f ms wall\n", legacy_ms);
  std::printf("steady event rate:                 %8.0f events/s (%.1f ns/event)\n",
              events_per_second, ns_per_event);
  std::printf("AIK cache: %llu hits / %llu misses; boot-log cache: %llu / %llu\n",
              static_cast<unsigned long long>(verifier.aik_cache_hits()),
              static_cast<unsigned long long>(verifier.aik_cache_misses()),
              static_cast<unsigned long long>(verifier.boot_log_cache_hits()),
              static_cast<unsigned long long>(verifier.boot_log_cache_misses()));
  for (const SweepRow& row : sweep_rows) {
    std::printf("sweep batch=%-4d workers=%d:         %8.1f ms wall\n", row.batch,
                row.workers, row.ms);
  }
  std::printf("wrote %s\n", out_path);
#if BOLTED_OBS
  if (registry != nullptr) {
    if (!registry->WriteChromeTrace(trace_path)) {
      std::fprintf(stderr, "failed to write trace to %s\n", trace_path);
      return 1;
    }
    std::printf("wrote chrome trace to %s\n", trace_path);
  }
#endif
  return 0;
}
