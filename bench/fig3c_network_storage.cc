// Figure 3c: network-mounted storage (dd over iSCSI backed by the Ceph
// model) under {plain, LUKS, IPsec, LUKS+IPsec}, plus the read-ahead
// ablation the paper calls out (128 KB default vs 8 MB tuned).
//
// Paper shape: LUKS costs a little on writes and nothing on reads; IPsec
// between client and iSCSI server has a major impact; the 8 MB read-ahead
// is critical because Ceph serves 4 MB objects.

#include <memory>

#include "bench/bench_util.h"
#include "src/crypto/drbg.h"
#include "src/net/rpc.h"
#include "src/storage/crypt_device.h"
#include "src/storage/iscsi.h"

namespace bolted {
namespace {

struct Config {
  std::string label;
  bool luks = false;
  bool ipsec = false;
  uint64_t read_ahead = storage::kTunedReadAhead;
};

struct Row {
  std::string label;
  double read_mbps;
  double write_mbps;
};

Row RunDd(const Config& config) {
  const core::Calibration cal;
  sim::Simulation simu;
  net::Network fabric(simu, cal.network_latency, cal.nic_bandwidth_bytes_per_second);
  storage::ObjectStore ceph(simu, cal.ceph);
  storage::ImageStore images(simu, ceph);

  net::Endpoint& server_ep = fabric.CreateEndpoint("iscsi-server");
  net::Endpoint& client_ep = fabric.CreateEndpoint("client");
  fabric.AttachToVlan(server_ep.address(), 10);
  fabric.AttachToVlan(client_ep.address(), 10);
  net::RpcNode server(simu, server_ep);
  net::RpcNode client(simu, client_ep);
  storage::IscsiTarget target(simu, server, images);
  net::SharedResource server_cpu(simu, 2.0 * cal.core_hz, "tgt.cpu");
  target.SetProcessingModel(&server_cpu, 2.2e6, 0.4);
  target.Register();
  server.Start();
  client.Start();

  const storage::ImageId image =
      images.Create("vol", 64ull << 30, storage::BootInfo{});
  images.PrepopulateObjects(image, 0, (64ull << 30) / cal.ceph.object_size);

  net::SharedResource client_cpu(simu, cal.core_hz, "client.crypto");
  storage::IscsiInitiator::Options options;
  options.read_ahead_bytes = config.read_ahead;
  options.ipsec.enabled = config.ipsec;
  options.ipsec.hardware_aes = true;
  options.ipsec.mtu = 9000;
  options.ipsec_model = cal.ipsec;
  options.local_crypto_cpu = &client_cpu;
  options.remote_crypto_cpu = &server_cpu;
  storage::IscsiInitiator initiator(simu, client, server_ep.address(), image,
                                    64ull << 30, options);

  crypto::Drbg drbg(uint64_t{3});
  const crypto::Bytes master_key = drbg.Generate(64);
  std::unique_ptr<storage::CryptDevice> crypt;
  storage::BlockDevice* device = &initiator;
  if (config.luks) {
    crypt = std::make_unique<storage::CryptDevice>(simu, &initiator, master_key,
                                                   cal.luks, "luks-iscsi");
    device = crypt.get();
  }

  const uint64_t bytes = 4ull << 30;
  double read_seconds = 0;
  double write_seconds = 0;
  auto flow = [&]() -> sim::Task {
    const double r0 = simu.now().ToSecondsF();
    co_await device->AccountRead(bytes);
    read_seconds = simu.now().ToSecondsF() - r0;
    const double w0 = simu.now().ToSecondsF();
    co_await device->AccountWrite(bytes);
    write_seconds = simu.now().ToSecondsF() - w0;
  };
  simu.Spawn(flow());
  simu.Run();

  const double mb = static_cast<double>(bytes) / 1e6;
  return Row{config.label, mb / read_seconds, mb / write_seconds};
}

}  // namespace
}  // namespace bolted

int main() {
  using bolted::bench::PrintHeader;

  PrintHeader("Figure 3c: network mounted storage (dd over iSCSI->Ceph, 4 GB)");
  const bolted::Config configs[] = {
      {.label = "plain"},
      {.label = "LUKS", .luks = true},
      {.label = "IPsec", .ipsec = true},
      {.label = "LUKS+IPsec", .luks = true, .ipsec = true},
  };
  bolted::Row rows[4];
  int i = 0;
  for (const auto& config : configs) {
    rows[i++] = bolted::RunDd(config);
  }
  std::printf("%-14s %14s %14s\n", "config", "read (MB/s)", "write (MB/s)");
  for (const auto& row : rows) {
    std::printf("%-14s %14.0f %14.0f\n", row.label.c_str(), row.read_mbps,
                row.write_mbps);
  }

  PrintHeader("Read-ahead ablation (plain config)");
  const bolted::Row tuned = rows[0];
  bolted::Config fallback_config;
  fallback_config.label = "128 KB read-ahead";
  fallback_config.read_ahead = bolted::storage::kDefaultReadAhead;
  const bolted::Row fallback = bolted::RunDd(fallback_config);
  std::printf("%-24s %10.0f MB/s\n", "8 MB read-ahead (tuned)", tuned.read_mbps);
  std::printf("%-24s %10.0f MB/s\n", "128 KB read-ahead", fallback.read_mbps);

  PrintHeader("Figure 3c: headline checks");
  std::printf("LUKS read penalty:  %5.1f%% (paper: ~none)\n",
              100.0 * (1.0 - rows[1].read_mbps / rows[0].read_mbps));
  std::printf("LUKS write penalty: %5.1f%% (paper: small)\n",
              100.0 * (1.0 - rows[1].write_mbps / rows[0].write_mbps));
  std::printf("IPsec read penalty: %5.1f%% (paper: major)\n",
              100.0 * (1.0 - rows[2].read_mbps / rows[0].read_mbps));
  std::printf("read-ahead speedup: %5.1fx (paper: critical)\n",
              tuned.read_mbps / fallback.read_mbps);
  return 0;
}
