// Synthetic workload engine for the macro-benchmarks (§7.5, Fig. 7) and
// the IMA kernel-compile stress test (§7.4, Fig. 6).
//
// Each application is a bulk-synchronous loop of per-node phases:
// compute (consumes the machine's cores), neighbour/all-to-all
// communication (real transfers through the NIC + ESP cost models), and
// storage I/O (through the node's root device: iSCSI, optionally LUKS and
// IPsec).  The phase parameters are calibrated to each application's
// published communication/computation character, so the encryption
// overheads of Fig. 7 — EP barely caring, CG tripling, TeraSort ~30 %,
// Filebench-in-a-VM ~50 % — emerge from the same cost models as the
// micro-benchmarks.

#ifndef SRC_WORKLOAD_WORKLOAD_H_
#define SRC_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "src/core/cloud.h"
#include "src/core/enclave.h"

namespace bolted::workload {

struct WorkloadSpec {
  std::string name;
  int iterations = 1;
  // Per node, per iteration.
  double compute_seconds = 0;          // wall seconds with all cores busy
  uint64_t comm_bytes = 0;             // bytes exchanged with neighbours
  uint64_t message_bytes = 256 * 1024; // MPI message granularity
  int concurrent_streams = 1;          // simultaneous peer exchanges
  uint64_t storage_read_bytes = 0;
  uint64_t storage_write_bytes = 0;
  uint64_t storage_chunk_bytes = 8 * 1024 * 1024;
  bool storage_random = false;         // Filebench-style scattered I/O
};

// NAS Parallel Benchmarks, class D on 16 nodes (§7.5).
WorkloadSpec NasEp();
WorkloadSpec NasCg();
WorkloadSpec NasFt();
WorkloadSpec NasMg();
// Spark TeraSort on a 260 GB data set over 16 servers.
WorkloadSpec SparkTeraSort();
// Filebench (1000 x 12 MB files) inside a KVM guest on one server.
WorkloadSpec FilebenchVm();

class WorkloadRunner {
 public:
  WorkloadRunner(core::Cloud& cloud, core::Enclave& enclave);

  // Runs the workload across every allocated enclave member; *elapsed is
  // the wall-clock (simulated) duration.
  sim::Task Run(const WorkloadSpec& spec, sim::Duration* elapsed);

 private:
  sim::Task RunNodeIteration(const WorkloadSpec& spec, const std::string& node);
  sim::Task CommPhase(const WorkloadSpec& spec, const std::string& node);
  sim::Task ExchangeStream(const WorkloadSpec& spec, machine::Machine& self,
                           machine::Machine& peer, uint64_t bytes);

  core::Cloud& cloud_;
  core::Enclave& enclave_;
};

// --- Fig. 6: Linux kernel compile under IMA ------------------------------

struct KernelCompileSpec {
  int source_files = 25000;
  uint64_t avg_file_bytes = 14 * 1024;
  // Single-threaded compile time for kernel 4.16 on the M620.
  double serial_compile_seconds = 3200;
  double parallel_fraction = 0.97;
  // IMA per-measurement cost: hash setup + PCR extend on the soft TPM.
  double per_measurement_seconds = 0.003;
  double hash_bytes_per_second = 500e6;
};

struct KernelCompileResult {
  sim::Duration elapsed;
  uint64_t measurements = 0;
};

// Compiles with `threads`; when ima is non-null every source file and
// tool invocation is measured (the paper's measure-everything-root-reads
// stress policy).
sim::Task RunKernelCompile(sim::Simulation& sim, const KernelCompileSpec& spec,
                           int threads, ima::Ima* ima, KernelCompileResult* result);

}  // namespace bolted::workload

#endif  // SRC_WORKLOAD_WORKLOAD_H_
