#include "src/workload/workload.h"

#include <algorithm>

#include <cassert>

namespace bolted::workload {
namespace {

// Per-message software + rendezvous latency (MPI handshake on 10 GbE).
constexpr sim::Duration kPerMessageLatency = sim::Duration::Microseconds(60);

}  // namespace

// The phase parameters below are a workload generator calibrated so each
// application reproduces its published communication/computation
// character (and thereby the paper's Fig. 7 ratios); they are not claimed
// to be the applications' literal instruction counts.

WorkloadSpec NasEp() {
  return WorkloadSpec{.name = "NPB-EP",
                      .iterations = 2,
                      .compute_seconds = 10.0,
                      .comm_bytes = 600ull << 20,
                      .message_bytes = 512 * 1024,
                      .concurrent_streams = 1};
}

WorkloadSpec NasCg() {
  return WorkloadSpec{.name = "NPB-CG",
                      .iterations = 2,
                      .compute_seconds = 0.3,
                      .comm_bytes = 1ull << 30,
                      .message_bytes = 32 * 1024,
                      .concurrent_streams = 4};
}

WorkloadSpec NasFt() {
  return WorkloadSpec{.name = "NPB-FT",
                      .iterations = 2,
                      .compute_seconds = 4.0,
                      .comm_bytes = 2560ull << 20,
                      .message_bytes = 1 << 20,
                      .concurrent_streams = 8};
}

WorkloadSpec NasMg() {
  return WorkloadSpec{.name = "NPB-MG",
                      .iterations = 2,
                      .compute_seconds = 6.0,
                      .comm_bytes = 1200ull << 20,
                      .message_bytes = 128 * 1024,
                      .concurrent_streams = 4};
}

WorkloadSpec SparkTeraSort() {
  return WorkloadSpec{.name = "Spark-TeraSort",
                      .iterations = 1,
                      .compute_seconds = 60.0,
                      .comm_bytes = 8ull << 30,  // shuffle
                      .message_bytes = 1 << 20,
                      .concurrent_streams = 8,
                      .storage_read_bytes = 16ull << 30,   // 260 GB / 16
                      .storage_write_bytes = 8ull << 30,
                      .storage_chunk_bytes = 8ull << 20};
}

WorkloadSpec FilebenchVm() {
  return WorkloadSpec{.name = "Filebench-VM",
                      .iterations = 1,
                      .compute_seconds = 5.0,
                      .comm_bytes = 0,
                      .storage_read_bytes = 8ull << 30,
                      .storage_write_bytes = 4ull << 30,
                      .storage_chunk_bytes = 4ull << 20,
                      .storage_random = true};
}

WorkloadRunner::WorkloadRunner(core::Cloud& cloud, core::Enclave& enclave)
    : cloud_(cloud), enclave_(enclave) {}

sim::Task WorkloadRunner::ExchangeStream(const WorkloadSpec& spec,
                                         machine::Machine& self,
                                         machine::Machine& peer, uint64_t bytes) {
  sim::Simulation& sim = cloud_.sim();
  const net::IpsecParams params = enclave_.ipsec_params();
  const net::IpsecCostModel& model = cloud_.cal().ipsec;

  // Rendezvous model: per-message handshake latency, then the wire
  // transfer, then (under IPsec) the non-overlapped ESP processing on
  // both hosts' crypto cores.  The three stages are sequential because a
  // synchronous exchange cannot pipeline across its own messages.
  const uint64_t messages = (bytes + spec.message_bytes - 1) / spec.message_bytes;
  co_await sim::Delay(sim, kPerMessageLatency * static_cast<int64_t>(messages));

  net::DemandList wire;
  wire.push_back({&self.endpoint().tx(), static_cast<double>(bytes)});
  wire.push_back({&peer.endpoint().rx(), static_cast<double>(bytes)});
  // Cross-rack exchanges traverse the oversubscribed ToR uplinks.
  net::Network& fabric = cloud_.fabric();
  const int src_switch = fabric.SwitchOf(self.address());
  const int dst_switch = fabric.SwitchOf(peer.address());
  if (src_switch != dst_switch) {
    if (src_switch != 0) {
      wire.push_back({&fabric.uplink(src_switch), static_cast<double>(bytes)});
    }
    if (dst_switch != 0) {
      wire.push_back({&fabric.uplink(dst_switch), static_cast<double>(bytes)});
    }
  }
  co_await net::ConsumeAllWeighted(sim, std::move(wire));

  if (params.enabled) {
    const uint64_t effective_mtu =
        std::min<uint64_t>(params.mtu, spec.message_bytes + model.esp_overhead_bytes);
    const double cycles = net::IpsecCryptoCycles(model, params.hardware_aes,
                                                 effective_mtu,
                                                 static_cast<double>(bytes));
    net::DemandList crypto;
    crypto.push_back({&self.crypto_cpu(), cycles});
    crypto.push_back({&peer.crypto_cpu(), cycles});
    co_await net::ConsumeAllWeighted(sim, std::move(crypto));
  }
}

sim::Task WorkloadRunner::CommPhase(const WorkloadSpec& spec, const std::string& node) {
  if (spec.comm_bytes == 0 || enclave_.members().size() < 2) {
    co_return;
  }
  machine::Machine* self = enclave_.node_machine(node);
  const auto& members = enclave_.members();
  const size_t self_index =
      static_cast<size_t>(std::find(members.begin(), members.end(), node) -
                          members.begin());
  const int streams =
      std::min<int>(spec.concurrent_streams, static_cast<int>(members.size()) - 1);
  const uint64_t per_stream = spec.comm_bytes / static_cast<uint64_t>(streams);

  sim::TaskGroup group(cloud_.sim());
  for (int s = 1; s <= streams; ++s) {
    const std::string& peer_name =
        members[(self_index + static_cast<size_t>(s)) % members.size()];
    machine::Machine* peer = enclave_.node_machine(peer_name);
    group.Spawn(ExchangeStream(spec, *self, *peer, per_stream));
  }
  co_await group.WaitAll();
}

sim::Task WorkloadRunner::RunNodeIteration(const WorkloadSpec& spec,
                                           const std::string& node) {
  machine::Machine* machine = enclave_.node_machine(node);
  storage::BlockDevice* root = enclave_.node_root_device(node);
  assert(machine != nullptr && root != nullptr);

  // Input phase.
  if (spec.storage_read_bytes > 0) {
    if (spec.storage_random) {
      co_await root->AccountRandomRead(spec.storage_read_bytes,
                                       spec.storage_chunk_bytes);
    } else {
      co_await root->AccountRead(spec.storage_read_bytes);
    }
  }
  // Compute phase: all cores busy.
  if (spec.compute_seconds > 0) {
    co_await machine->cpu().Consume(spec.compute_seconds *
                                    machine->cpu().capacity_per_second());
  }
  // Exchange phase.
  co_await CommPhase(spec, node);
  // Output phase.
  if (spec.storage_write_bytes > 0) {
    co_await root->AccountWrite(spec.storage_write_bytes);
  }
}

sim::Task WorkloadRunner::Run(const WorkloadSpec& spec, sim::Duration* elapsed) {
  sim::Simulation& sim = cloud_.sim();
  const sim::Time start = sim.now();
  for (int iteration = 0; iteration < spec.iterations; ++iteration) {
    sim::TaskGroup barrier(sim);
    for (const std::string& node : enclave_.members()) {
      barrier.Spawn(RunNodeIteration(spec, node));
    }
    co_await barrier.WaitAll();
  }
  *elapsed = sim.now() - start;
}

sim::Task RunKernelCompile(sim::Simulation& sim, const KernelCompileSpec& spec,
                           int threads, ima::Ima* ima, KernelCompileResult* result) {
  const sim::Time start = sim.now();

  // Amdahl: serial residue plus the parallel bulk.
  const double serial = spec.serial_compile_seconds * (1.0 - spec.parallel_fraction);
  const double parallel =
      spec.serial_compile_seconds * spec.parallel_fraction / threads;

  double ima_seconds = 0;
  uint64_t measurements = 0;
  if (ima != nullptr) {
    // Every source file read by root and every tool executed gets
    // measured exactly once; re-reads hit the measured set.
    for (int i = 0; i < spec.source_files; ++i) {
      ima::FileAccess access;
      access.path = "/usr/src/linux/file-" + std::to_string(i) + ".c";
      access.content_digest = crypto::Sha256::Hash(access.path + "-content");
      access.size_bytes = spec.avg_file_bytes;
      access.by_root = true;
      if (ima->OnFileAccess(access)) {
        ++measurements;
      }
      // Second access of a hot header: deduplicated, free.
      ima->OnFileAccess(access);
    }
    const double hashed_bytes =
        static_cast<double>(measurements) * static_cast<double>(spec.avg_file_bytes);
    ima_seconds = static_cast<double>(measurements) * spec.per_measurement_seconds +
                  hashed_bytes / spec.hash_bytes_per_second;
    // Measurement work rides on the compile threads.
    ima_seconds /= threads;
  }

  co_await sim::Delay(sim, sim::Duration::SecondsF(serial + parallel + ima_seconds));
  result->elapsed = sim.now() - start;
  result->measurements = measurements;
}

}  // namespace bolted::workload
