// Registry lifecycle and exporters: chrome://tracing JSON plus flat
// text/JSON metric dumps.  Everything here renders from sim-time-stamped
// state, so output is byte-identical across same-seed runs.

#include "src/obs/obs.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>

namespace bolted::obs {
namespace {

// Minimal JSON string escaping for names, categories, and argument values.
void AppendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

// Chrome trace timestamps are microseconds; render the nanosecond clock
// with fixed millinanosecond precision so formatting is locale-free and
// deterministic.
void AppendMicros(std::string& out, int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", ns / 1000,
                static_cast<int>(ns % 1000));
  out += buf;
}

void AppendEventArgs(std::string& out, const Args& args) {
  out += "\"args\":{";
  bool first = true;
  for (const auto& [key, value] : args) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    AppendEscaped(out, key);
    out += "\":\"";
    AppendEscaped(out, value);
    out += '"';
  }
  out += '}';
}

}  // namespace

Registry::Registry(sim::Simulation& sim) : sim_(sim) {
  Track("sim");  // track 0
  // Pre-register the per-event-dispatch cells consulted by OnSimStep.  The
  // counter is kept as an id (the value vector may reallocate as other
  // metrics register); the histogram lives in deque storage, so its
  // pointer is stable for the Registry's life.
  sim_events_id_ = InternMetric("sim.events");
  AddById(sim_events_id_, 0);
  sim_queue_depth_ = &HistogramById(InternMetric("sim.queue_depth"));
  sim_.set_observer(this);
}

Registry::~Registry() {
  if (sim_.observer() == this) {
    sim_.set_observer(nullptr);
  }
}

uint64_t Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  if (q < 0.0) {
    q = 0.0;
  }
  if (q > 1.0) {
    q = 1.0;
  }
  const auto rank = static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen > rank) {
      // Upper bound of bucket i, clamped into the observed range.
      const uint64_t upper = i == 0 ? 0 : (BucketLowerBound(i) << 1) - 1;
      return upper < min_ ? min_ : (upper > max_ ? max_ : upper);
    }
  }
  return max_;
}

std::string Registry::ChromeTraceJson() const {
  std::string out;
  out.reserve(256 + events_.size() * 96);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out +=
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"bolted\"}}";
  for (size_t tid = 0; tid < track_names_.size(); ++tid) {
    out += ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":";
    AppendU64(out, tid);
    out += ",\"name\":\"thread_name\",\"args\":{\"name\":\"";
    AppendEscaped(out, track_names_[tid]);
    out += "\"}}";
  }
  for (const TraceEvent& event : events_) {
    out += ",\n{\"ph\":\"";
    out += event.kind == TraceEvent::Kind::kComplete ? 'X' : 'i';
    out += "\",\"pid\":1,\"tid\":";
    AppendU64(out, event.track);
    out += ",\"name\":\"";
    AppendEscaped(out, event.name);
    out += "\",\"cat\":\"";
    AppendEscaped(out, event.category.empty() ? std::string_view("bolted")
                                              : std::string_view(event.category));
    out += "\",\"ts\":";
    AppendMicros(out, event.start.nanoseconds());
    if (event.kind == TraceEvent::Kind::kComplete) {
      out += ",\"dur\":";
      AppendMicros(out, event.duration.nanoseconds());
    } else {
      out += ",\"s\":\"t\"";  // thread-scoped instant
    }
    out += ',';
    AppendEventArgs(out, event.args);
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

// The cell vectors are ordered by process-wide intern id (first-use order
// across *all* Registries); exporters re-sort by name so output depends
// only on what this Registry recorded.
std::vector<std::pair<std::string_view, uint64_t>> Registry::SortedCounters()
    const {
  std::vector<std::pair<std::string_view, uint64_t>> out;
  for (uint32_t id = 0; id < counter_values_.size(); ++id) {
    if (counter_touched_[id] != 0) {
      out.emplace_back(MetricName(id), counter_values_[id]);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<std::string_view, const Histogram*>>
Registry::SortedHistograms() const {
  std::vector<std::pair<std::string_view, const Histogram*>> out;
  for (uint32_t id = 0; id < hist_cells_.size(); ++id) {
    if (hist_cells_[id] != nullptr) {
      out.emplace_back(MetricName(id), hist_cells_[id]);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

namespace {

// Shared line/object renderers: the single-Registry exporters and the
// merged (multi-rack) exporters must be byte-identical in format, so both
// go through these.
std::string RenderMetricsText(
    const std::vector<std::pair<std::string_view, uint64_t>>& counters,
    const std::vector<std::pair<std::string_view, const Histogram*>>& hists) {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += "counter ";
    out += name;
    out += ' ';
    AppendU64(out, value);
    out += '\n';
  }
  for (const auto& [name, hist_ptr] : hists) {
    const Histogram& hist = *hist_ptr;
    out += "hist ";
    out += name;
    out += " count=";
    AppendU64(out, hist.count());
    out += " sum=";
    AppendU64(out, hist.sum());
    out += " min=";
    AppendU64(out, hist.min());
    out += " max=";
    AppendU64(out, hist.max());
    out += " p50=";
    AppendU64(out, hist.Quantile(0.50));
    out += " p99=";
    AppendU64(out, hist.Quantile(0.99));
    out += '\n';
  }
  return out;
}

std::string RenderMetricsJson(
    const std::vector<std::pair<std::string_view, uint64_t>>& counters,
    const std::vector<std::pair<std::string_view, const Histogram*>>& hists) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    AppendEscaped(out, name);
    out += "\":";
    AppendU64(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist_ptr] : hists) {
    const Histogram& hist = *hist_ptr;
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    AppendEscaped(out, name);
    out += "\":{\"count\":";
    AppendU64(out, hist.count());
    out += ",\"sum\":";
    AppendU64(out, hist.sum());
    out += ",\"min\":";
    AppendU64(out, hist.min());
    out += ",\"max\":";
    AppendU64(out, hist.max());
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (hist.bucket(i) == 0) {
        continue;
      }
      if (!first_bucket) {
        out += ',';
      }
      first_bucket = false;
      out += '[';
      AppendU64(out, Histogram::BucketLowerBound(i));
      out += ',';
      AppendU64(out, hist.bucket(i));
      out += ']';
    }
    out += "]}";
  }
  out += "}}\n";
  return out;
}

// Name-keyed union of several registries.  std::map keys the merge by
// metric name, so the result is independent of both the intern-id order
// and the order of `parts` — exactly the invariance the sharded digest
// tests need from the obs layer.
struct MergedMetrics {
  std::map<std::string_view, uint64_t> counters;
  std::map<std::string_view, Histogram> hists;

  std::vector<std::pair<std::string_view, uint64_t>> CounterVec() const {
    return {counters.begin(), counters.end()};
  }
  std::vector<std::pair<std::string_view, const Histogram*>> HistVec() const {
    std::vector<std::pair<std::string_view, const Histogram*>> out;
    out.reserve(hists.size());
    for (const auto& [name, hist] : hists) {
      out.emplace_back(name, &hist);
    }
    return out;
  }
};

}  // namespace

std::string Registry::MetricsText() const {
  return RenderMetricsText(SortedCounters(), SortedHistograms());
}

std::string Registry::MetricsJson() const {
  return RenderMetricsJson(SortedCounters(), SortedHistograms());
}

std::string Registry::MergedMetricsText(
    std::span<const Registry* const> parts) {
  MergedMetrics merged;
  for (const Registry* part : parts) {
    if (part == nullptr) {
      continue;
    }
    for (const auto& [name, value] : part->SortedCounters()) {
      merged.counters[name] += value;
    }
    for (const auto& [name, hist] : part->SortedHistograms()) {
      merged.hists[name].Merge(*hist);
    }
  }
  return RenderMetricsText(merged.CounterVec(), merged.HistVec());
}

std::string Registry::MergedMetricsJson(
    std::span<const Registry* const> parts) {
  MergedMetrics merged;
  for (const Registry* part : parts) {
    if (part == nullptr) {
      continue;
    }
    for (const auto& [name, value] : part->SortedCounters()) {
      merged.counters[name] += value;
    }
    for (const auto& [name, hist] : part->SortedHistograms()) {
      merged.hists[name].Merge(*hist);
    }
  }
  return RenderMetricsJson(merged.CounterVec(), merged.HistVec());
}

bool Registry::WriteChromeTrace(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const std::string json = ChromeTraceJson();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace bolted::obs
