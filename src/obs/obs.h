// Unified observability layer (DESIGN.md §9).
//
// One deterministic substrate for everything the benches and the chaos
// harness need to see: hierarchical spans stamped with sim::Time (never
// wall clock, so a fixed seed replays to a byte-identical trace), named
// counters, and log2-bucketed histograms, all owned by a per-Simulation
// Registry.  Exporters render chrome://tracing JSON and flat text/JSON
// metrics dumps (src/obs/registry.cc).
//
// Instrumentation sites go through the free helpers at the bottom
// (obs::Count, obs::Record, obs::Instant, obs::Span, ...), which resolve
// the Simulation's attached Registry.  With no Registry attached they cost
// one pointer test; compiled with BOLTED_OBS=0 they vanish entirely, which
// is the zero-overhead-when-disabled guarantee the attestation bench
// enforces.
//
// Layering: obs sits directly above sim and depends on nothing else.  The
// Simulation stores only an opaque Registry pointer (simulation.h forward
// declares the class), so bolted_sim gains no link-time dependency; every
// hot-path Registry method is defined inline here.

#ifndef SRC_OBS_OBS_H_
#define SRC_OBS_OBS_H_

#ifndef BOLTED_OBS
#define BOLTED_OBS 1
#endif

#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace bolted::obs {

// --- Metric-name interning --------------------------------------------------
// Process-wide name -> dense id table.  Hot call sites intern their metric
// names once (at construction / first use) and then record through the id,
// so the per-event cost is an array index instead of a string hash — and
// string-concatenation keys ("net.link." + name + ".tx_bytes") disappear
// from the frame path entirely.  Ids are process-global and never exported;
// all output is keyed by name, so metric dumps stay deterministic even
// though id assignment order depends on which subsystems ran first.
//
// Defined inline (function-local static) so bolted_net and friends can
// intern without linking bolted_obs, mirroring the inline Registry methods.

namespace detail {
struct MetricInterner {
  std::mutex mu;
  std::map<std::string, uint32_t, std::less<>> ids;
  std::deque<std::string> names;  // deque: stable addresses for map keys

  static MetricInterner& Instance() {
    static MetricInterner interner;
    return interner;
  }
};
}  // namespace detail

inline uint32_t InternMetric(std::string_view name) {
  auto& interner = detail::MetricInterner::Instance();
  std::lock_guard<std::mutex> lock(interner.mu);
  const auto it = interner.ids.find(name);
  if (it != interner.ids.end()) {
    return it->second;
  }
  const auto id = static_cast<uint32_t>(interner.names.size());
  interner.names.emplace_back(name);
  interner.ids.emplace(interner.names.back(), id);
  return id;
}

// Non-creating lookup; -1 when the name has never been interned (in which
// case no Registry in the process can hold data for it).
inline int64_t FindMetricId(std::string_view name) {
  auto& interner = detail::MetricInterner::Instance();
  std::lock_guard<std::mutex> lock(interner.mu);
  const auto it = interner.ids.find(name);
  return it == interner.ids.end() ? -1 : static_cast<int64_t>(it->second);
}

// Interned strings are never removed, so the reference stays valid.
inline const std::string& MetricName(uint32_t id) {
  auto& interner = detail::MetricInterner::Instance();
  std::lock_guard<std::mutex> lock(interner.mu);
  return interner.names[id];
}

// Log2-bucketed histogram over non-negative integer values (nanoseconds,
// bytes, queue depths).  Bucket i counts values whose bit width is i, i.e.
// bucket 0 holds the value 0 and bucket i>0 holds [2^(i-1), 2^i - 1]; the
// exact count/sum/min/max ride alongside so quantiles degrade gracefully
// to bucket resolution while means stay exact.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  static constexpr int BucketIndex(uint64_t value) {
    return static_cast<int>(std::bit_width(value));
  }
  // Smallest value a bucket admits (0 for bucket 0).
  static constexpr uint64_t BucketLowerBound(int index) {
    return index == 0 ? 0 : uint64_t{1} << (index - 1);
  }

  void Record(uint64_t value) {
    ++buckets_[static_cast<size_t>(BucketIndex(value))];
    ++count_;
    sum_ += value;
    if (count_ == 1 || value < min_) {
      min_ = value;
    }
    if (value > max_) {
      max_ = value;
    }
  }

  // Folds another histogram's distribution into this one: buckets, count
  // and sum add exactly; min/max combine.  Used to merge per-rack
  // registries from a sharded run into one fleet-wide view.
  void Merge(const Histogram& other) {
    if (other.count_ == 0) {
      return;
    }
    if (count_ == 0 || other.min_ < min_) {
      min_ = other.min_;
    }
    if (other.max_ > max_) {
      max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
    for (size_t i = 0; i < buckets_.size(); ++i) {
      buckets_[i] += other.buckets_[i];
    }
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  uint64_t bucket(int index) const {
    return buckets_[static_cast<size_t>(index)];
  }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  // Upper bound of the bucket holding the q-quantile (q in [0, 1]);
  // clamped to the exact observed min/max.  Defined in registry.cc.
  uint64_t Quantile(double q) const;

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

// Key/value annotations attached to a trace event; rendered as string
// arguments in the chrome trace "args" object.
using Args = std::vector<std::pair<std::string, std::string>>;

// One exported trace event.  Complete events are recorded when they end
// (the natural order for RAII spans and retroactive phase marks), which is
// deterministic under the sim's deterministic event order.
struct TraceEvent {
  enum class Kind { kComplete, kInstant };
  Kind kind = Kind::kInstant;
  std::string name;
  std::string category;
  uint32_t track = 0;        // chrome tid; see Registry::Track
  sim::Time start;           // ts (instant: the event time)
  sim::Duration duration{};  // dur (complete events only)
  Args args;
};

// Per-Simulation observability registry.  Construction attaches it to the
// Simulation (one at a time; the previous observer, if any, is displaced),
// destruction detaches.  All recorded time is sim::Time.
class Registry {
 public:
  explicit Registry(sim::Simulation& sim);
  ~Registry();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  sim::Simulation& sim() { return sim_; }

  // --- Counters -----------------------------------------------------------
  // Storage is a dense vector indexed by interned metric id; the string
  // overloads intern on each call and exist for cold sites and tests.  Hot
  // sites cache the id (see net::Endpoint's per-link byte counters).
  void Add(std::string_view name, uint64_t delta = 1) {
    AddById(InternMetric(name), delta);
  }
  void AddById(uint32_t id, uint64_t delta = 1) {
    if (id >= counter_values_.size()) {
      counter_values_.resize(id + 1, 0);
      counter_touched_.resize(id + 1, 0);
    }
    counter_values_[id] += delta;
    counter_touched_[id] = 1;
  }
  uint64_t counter(std::string_view name) const {
    const int64_t id = FindMetricId(name);
    return id < 0 ? 0 : CounterById(static_cast<uint32_t>(id));
  }
  uint64_t CounterById(uint32_t id) const {
    return id < counter_values_.size() ? counter_values_[id] : 0;
  }

  // --- Histograms ---------------------------------------------------------
  void Record(std::string_view name, uint64_t value) {
    RecordById(InternMetric(name), value);
  }
  void RecordById(uint32_t id, uint64_t value) {
    HistogramById(id).Record(value);
  }
  void RecordDuration(std::string_view name, sim::Duration duration) {
    RecordDurationById(InternMetric(name), duration);
  }
  void RecordDurationById(uint32_t id, sim::Duration duration) {
    const int64_t ns = duration.nanoseconds();
    RecordById(id, ns > 0 ? static_cast<uint64_t>(ns) : 0);
  }
  const Histogram* FindHistogram(std::string_view name) const {
    const int64_t id = FindMetricId(name);
    if (id < 0 || static_cast<size_t>(id) >= hist_cells_.size()) {
      return nullptr;
    }
    return hist_cells_[static_cast<size_t>(id)];
  }

  // --- Tracks (chrome tids) -----------------------------------------------
  // Stable small integer per track name, assigned in first-use order (which
  // is deterministic).  Track 0 always exists and is named "sim".
  uint32_t Track(std::string_view name) {
    const auto it = track_ids_.find(name);
    if (it != track_ids_.end()) {
      return it->second;
    }
    const auto id = static_cast<uint32_t>(track_names_.size());
    track_names_.emplace_back(name);
    track_ids_.emplace(std::string(name), id);
    return id;
  }
  const std::vector<std::string>& track_names() const { return track_names_; }

  // --- Trace events -------------------------------------------------------
  // Retroactive complete span: [start, start + duration].  Spans emitted on
  // the same track nest in chrome://tracing by containment.
  void EmitComplete(std::string_view name, std::string_view category,
                    uint32_t track, sim::Time start, sim::Duration duration,
                    Args args = {}) {
    events_.push_back(TraceEvent{TraceEvent::Kind::kComplete, std::string(name),
                                 std::string(category), track, start, duration,
                                 std::move(args)});
  }
  void EmitInstant(std::string_view name, std::string_view category,
                   uint32_t track, Args args = {}) {
    events_.push_back(TraceEvent{TraceEvent::Kind::kInstant, std::string(name),
                                 std::string(category), track, sim_.now(),
                                 sim::Duration::Zero(), std::move(args)});
  }
  const std::vector<TraceEvent>& events() const { return events_; }

  // --- Simulation hot path ------------------------------------------------
  // Called from Simulation::Step for every fired event; the counter id and
  // histogram cell are pre-resolved at construction so the cost is an
  // indexed increment and a histogram bump.  (The counter is addressed by
  // id, not pointer — the cell vector may reallocate as metrics register.)
  void OnSimStep(size_t queue_depth) {
    counter_values_[sim_events_id_] += 1;
    sim_queue_depth_->Record(queue_depth);
  }

  // --- Exporters (registry.cc) --------------------------------------------
  // chrome://tracing / Perfetto-loadable JSON ("traceEvents" array plus
  // thread-name metadata).  Deterministic: same seed => same bytes.
  std::string ChromeTraceJson() const;
  // Flat "counter <name> <value>" / "hist <name> ..." lines, sorted by name.
  std::string MetricsText() const;
  // The same metrics as one JSON object.
  std::string MetricsJson() const;
  // Deterministic union of several registries — the per-rack registries
  // of a sharded run: counters with the same name sum, histograms merge
  // bucket-wise, and the output is byte-identical to what one Registry
  // that had recorded everything would export (the shard-count-invariance
  // the sharding tests assert).  Null entries are skipped.
  static std::string MergedMetricsText(std::span<const Registry* const> parts);
  static std::string MergedMetricsJson(std::span<const Registry* const> parts);
  // Writes ChromeTraceJson() to a file; false on I/O failure.
  bool WriteChromeTrace(const std::string& path) const;

 private:
  Histogram& HistogramById(uint32_t id) {
    if (id >= hist_cells_.size()) {
      hist_cells_.resize(id + 1, nullptr);
    }
    Histogram*& cell = hist_cells_[id];
    if (cell == nullptr) {
      // Deque storage: cells never move, so cached Histogram pointers
      // (sim_queue_depth_, bench-side lookups) stay valid for the
      // Registry's lifetime.
      hist_storage_.emplace_back();
      cell = &hist_storage_.back();
    }
    return *cell;
  }

  // Touched counters / materialised histograms sorted by metric name, for
  // the exporters (registry.cc).
  std::vector<std::pair<std::string_view, uint64_t>> SortedCounters() const;
  std::vector<std::pair<std::string_view, const Histogram*>> SortedHistograms()
      const;

  sim::Simulation& sim_;
  // Dense per-interned-id cells.  `touched` distinguishes "registered,
  // value 0" from "never seen here" — only touched counters export, and
  // ids interned by *other* Registries in the same process stay invisible.
  std::vector<uint64_t> counter_values_;
  std::vector<uint8_t> counter_touched_;
  std::vector<Histogram*> hist_cells_;
  std::deque<Histogram> hist_storage_;
  std::vector<TraceEvent> events_;
  std::map<std::string, uint32_t, std::less<>> track_ids_;
  std::vector<std::string> track_names_;
  uint32_t sim_events_id_ = 0;
  Histogram* sim_queue_depth_ = nullptr;
};

// --- Instrumentation helpers ----------------------------------------------
// Every call site in sim/net/tpm/keylime/provision/faults goes through
// these.  They compile away under BOLTED_OBS=0 and cost one pointer test
// when no Registry is attached.

#if BOLTED_OBS

inline Registry* Get(sim::Simulation& sim) { return sim.observer(); }

inline void Count(sim::Simulation& sim, std::string_view name,
                  uint64_t delta = 1) {
  if (Registry* r = sim.observer()) {
    r->Add(name, delta);
  }
}

inline void Record(sim::Simulation& sim, std::string_view name, uint64_t value) {
  if (Registry* r = sim.observer()) {
    r->Record(name, value);
  }
}

inline void RecordDuration(sim::Simulation& sim, std::string_view name,
                           sim::Duration duration) {
  if (Registry* r = sim.observer()) {
    r->RecordDuration(name, duration);
  }
}

// Id-based variants for hot sites that interned their names up front.
inline void CountById(sim::Simulation& sim, uint32_t id, uint64_t delta = 1) {
  if (Registry* r = sim.observer()) {
    r->AddById(id, delta);
  }
}

inline void RecordById(sim::Simulation& sim, uint32_t id, uint64_t value) {
  if (Registry* r = sim.observer()) {
    r->RecordById(id, value);
  }
}

inline void RecordDurationById(sim::Simulation& sim, uint32_t id,
                               sim::Duration duration) {
  if (Registry* r = sim.observer()) {
    r->RecordDurationById(id, duration);
  }
}

inline void Instant(sim::Simulation& sim, std::string_view name,
                    std::string_view category, std::string_view track,
                    Args args = {}) {
  if (Registry* r = sim.observer()) {
    r->EmitInstant(name, category, r->Track(track), std::move(args));
  }
}

// Retroactive span covering [start, sim.now()] — the shape PhaseTrace::Mark
// produces without holding a live object across the phase.
inline void CompleteSince(sim::Simulation& sim, std::string_view name,
                          std::string_view category, std::string_view track,
                          sim::Time start, Args args = {}) {
  if (Registry* r = sim.observer()) {
    r->EmitComplete(name, category, r->Track(track), start, sim.now() - start,
                    std::move(args));
  }
}

// RAII span: records [construction, End()/destruction] on the named track.
// Movable so it can live in coroutine frames; coroutine locals are
// destroyed at co_return (before final suspend), so the end stamp is the
// completion time of the flow, not the frame's eventual destruction.
//
// The span holds the Simulation, not the Registry: a suspended coroutine
// frame can outlive the Registry (e.g. a continuous-attestation loop torn
// down with the Simulation), so the observer is re-resolved at End() and a
// span that closes after the Registry detached is silently dropped.
class Span {
 public:
  Span() = default;
  Span(sim::Simulation& sim, std::string_view name, std::string_view category,
       std::string_view track, Args args = {}) {
    if (sim.observer() != nullptr) {
      sim_ = &sim;
      name_ = name;
      category_ = category;
      track_ = track;
      start_ = sim.now();
      args_ = std::move(args);
    }
  }
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      End();
      sim_ = other.sim_;
      name_ = std::move(other.name_);
      category_ = std::move(other.category_);
      track_ = std::move(other.track_);
      start_ = other.start_;
      args_ = std::move(other.args_);
      other.sim_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  void AddArg(std::string_view key, std::string_view value) {
    if (sim_ != nullptr) {
      args_.emplace_back(std::string(key), std::string(value));
    }
  }

  void End() {
    if (sim_ != nullptr) {
      if (Registry* r = sim_->observer()) {
        r->EmitComplete(name_, category_, r->Track(track_), start_,
                        sim_->now() - start_, std::move(args_));
      }
      sim_ = nullptr;
    }
  }

 private:
  sim::Simulation* sim_ = nullptr;
  std::string name_;
  std::string category_;
  std::string track_;
  sim::Time start_;
  Args args_;
};

#else  // !BOLTED_OBS — every helper is an empty inline; call sites vanish.

inline Registry* Get(sim::Simulation&) { return nullptr; }
inline void Count(sim::Simulation&, std::string_view, uint64_t = 1) {}
inline void Record(sim::Simulation&, std::string_view, uint64_t) {}
inline void RecordDuration(sim::Simulation&, std::string_view, sim::Duration) {}
inline void CountById(sim::Simulation&, uint32_t, uint64_t = 1) {}
inline void RecordById(sim::Simulation&, uint32_t, uint64_t) {}
inline void RecordDurationById(sim::Simulation&, uint32_t, sim::Duration) {}
inline void Instant(sim::Simulation&, std::string_view, std::string_view,
                    std::string_view, Args = {}) {}
inline void CompleteSince(sim::Simulation&, std::string_view, std::string_view,
                          std::string_view, sim::Time, Args = {}) {}

class Span {
 public:
  Span() = default;
  Span(sim::Simulation&, std::string_view, std::string_view, std::string_view,
       Args = {}) {}
  void AddArg(std::string_view, std::string_view) {}
  void End() {}
};

#endif  // BOLTED_OBS

}  // namespace bolted::obs

#endif  // SRC_OBS_OBS_H_
