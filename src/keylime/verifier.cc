#include "src/keylime/verifier.h"

#include "src/crypto/ecies.h"
#include "src/keylime/agent.h"
#include "src/net/wire.h"
#include "src/obs/obs.h"
#include "src/tpm/tpm.h"

namespace bolted::keylime {
namespace {

// Extracts the quoted value for a PCR from a quote's (mask, values) pair.
const crypto::Digest* QuotedPcr(const tpm::Quote& quote, int pcr) {
  if ((quote.pcr_mask & (1u << pcr)) == 0) {
    return nullptr;
  }
  size_t index = 0;
  for (int i = 0; i < pcr; ++i) {
    if (quote.pcr_mask & (1u << i)) {
      ++index;
    }
  }
  return &quote.pcr_values[index];
}

// Splits an uncompressed SEC1 encoding into coordinates without the curve
// membership check — P256::Prepare performs it exactly once when the
// verifier's per-node cache misses.
std::optional<crypto::EcPoint> ParsePointUnchecked(crypto::ByteView encoded) {
  if (encoded.size() != 65 || encoded[0] != 0x04) {
    return std::nullopt;
  }
  crypto::EcPoint p;
  p.x = crypto::U256::FromBytes(encoded.subspan(1, 32));
  p.y = crypto::U256::FromBytes(encoded.subspan(33, 32));
  return p;
}

}  // namespace

bool IsTransientFailure(std::string_view failure) {
  // Everything else is evidence of a bad node, not a bad network: forged or
  // stale quotes, log mismatches, unwhitelisted measurements, registration
  // problems.
  return failure == "registrar lookup failed" || failure == "agent unreachable" ||
         failure == "payload delivery failed";
}

Verifier::Verifier(sim::Simulation& sim, net::Endpoint& endpoint,
                   net::Address registrar, uint64_t seed)
    : sim_(sim), node_(sim, endpoint), registrar_(registrar), drbg_(seed) {
  node_.Start();
}

void Verifier::AddNode(const std::string& name, NodeConfig config) {
  NodeState state;
  state.config = std::move(config);
  nodes_[name] = std::move(state);
}

void Verifier::RemoveNode(const std::string& name) { nodes_.erase(name); }

void Verifier::UpdatePeers(const std::string& name, std::vector<net::Address> peers) {
  const auto it = nodes_.find(name);
  if (it != nodes_.end()) {
    it->second.config.peers = std::move(peers);
  }
}

sim::Task Verifier::DeliverPayload(const std::string& name, const crypto::EcPoint& nk,
                                   bool* ok) {
  *ok = false;
  auto& state = nodes_.at(name);
  const crypto::Bytes sealed_v = crypto::EciesSeal(nk, state.config.v_half, drbg_);

  net::Message message;
  message.kind = std::string(kRpcDeliverV);
  message.payload =
      net::WireWriter().Blob(sealed_v).Blob(state.config.sealed_payload).Take();
  net::Message response;
  bool rpc_ok = false;
  co_await node_.Call(state.config.agent, std::move(message), &response, &rpc_ok);
  if (!rpc_ok) {
    co_return;
  }
  net::WireReader reader(response.payload);
  *ok = reader.U32() == 1 && reader.AtEnd();
  if (*ok) {
    state.payload_delivered = true;
  }
}

// Plain dispatcher: the traced wrapper (a second coroutine frame) is only
// interposed when a Registry is attached, so untraced runs — and the whole
// BOLTED_OBS=0 build — pay nothing for it.
sim::Task Verifier::VerifyNode(const std::string& name, VerificationResult* result) {
#if BOLTED_OBS
  if (sim_.observer() != nullptr) {
    return VerifyNodeTraced(name, result);
  }
#endif
  return VerifyNodeImpl(name, result);
}

sim::Task Verifier::VerifyNodeTraced(const std::string& name,
                                     VerificationResult* result) {
  obs::Span span(sim_, "keylime.verify", "keylime", "verify:" + name);
  co_await VerifyNodeImpl(name, result);
  if (result->passed) {
    obs::Count(sim_, "keylime.verify_pass");
  } else {
    obs::Count(sim_, "keylime.verify_fail");
    span.AddArg("failure", result->failure);
  }
  span.End();
}

sim::Task Verifier::VerifyNodeImpl(const std::string& name,
                                   VerificationResult* result) {
  result->passed = false;
  const auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    result->failure = "unknown node";
    co_return;
  }
  NodeState& state = it->second;
  ++verifications_;

  // 1. Certified keys from the registrar.
  net::Message key_request;
  key_request.kind = std::string(kRpcGetKeys);
  key_request.payload = net::WireWriter().Str(name).Take();
  net::Message key_response;
  bool rpc_ok = false;
  co_await node_.CallWithRetry(registrar_, std::move(key_request), &key_response,
                               &rpc_ok, call_options_);
  if (!rpc_ok || key_response.kind == "kl.reg.error") {
    result->failure = "registrar lookup failed";
    co_return;
  }
  net::WireReader key_reader(key_response.payload);
  key_reader.Blob();  // EK (checked by the tenant against HIL metadata)
  const crypto::Bytes aik_wire = key_reader.Blob();
  const crypto::Bytes nk_wire = key_reader.Blob();
  const bool activated = key_reader.U32() == 1;
  if (!key_reader.AtEnd()) {
    result->failure = "malformed registrar response";
    co_return;
  }
  // Decode + curve-check + table build happen once per distinct wire
  // encoding; steady-state polling reuses the prepared AIK.
  if (!state.aik_prepared.has_value() || state.aik_wire != aik_wire) {
    const auto aik = ParsePointUnchecked(aik_wire);
    state.aik_prepared =
        aik ? crypto::P256::Instance().Prepare(*aik) : std::nullopt;
    state.aik_wire = aik_wire;
    ++aik_cache_misses_;
    obs::Count(sim_, "keylime.aik_cache_miss");
  } else {
    ++aik_cache_hits_;
    obs::Count(sim_, "keylime.aik_cache_hit");
  }
  if (!state.nk_decoded.has_value() || state.nk_wire != nk_wire) {
    state.nk_decoded = crypto::EcPoint::Decode(nk_wire);
    state.nk_wire = nk_wire;
  }
  if (!state.aik_prepared.has_value() || !state.nk_decoded.has_value()) {
    result->failure = "malformed registrar response";
    co_return;
  }
  if (!activated) {
    result->failure = "AIK not activated";
    co_return;
  }

  // 2. Fresh nonce, quote request.  The request carries the incremental
  // cursor so the agent only ships new IMA measurements.
  const crypto::Bytes nonce = drbg_.Generate(20);
  net::Message quote_request;
  quote_request.kind = std::string(kRpcQuote);
  quote_request.payload =
      net::WireWriter().Blob(nonce).U32(kQuotePcrMask).U64(state.ima_seen).Take();
  net::Message quote_response;
  co_await node_.CallWithRetry(state.config.agent, std::move(quote_request),
                               &quote_response, &rpc_ok, call_options_);
  if (!rpc_ok || quote_response.kind == "kl.agent.error") {
    result->failure = "agent unreachable";
    co_return;
  }
  net::WireReader reader(quote_response.payload);
  const auto quote = tpm::Quote::Deserialize(reader.Blob());
  const auto boot_log = tpm::EventLog::Deserialize(reader.Blob());
  const uint64_t ima_total = reader.U64();
  const auto ima_log = tpm::EventLog::Deserialize(reader.Blob());
  if (!reader.AtEnd() || !quote || !boot_log || !ima_log) {
    result->failure = "malformed quote response";
    co_return;
  }
  if (boot_log->events().empty()) {
    // A freshly power-cycled TPM has all-zero PCRs, and an empty boot log
    // replays to exactly those values — so without this check a crashed,
    // unbooted machine would sail through replay and (vacuously) through
    // the whitelist.  A measured boot always logs at least the firmware.
    result->failure = "empty boot event log";
    co_return;
  }
  if (ima_total < state.ima_seen) {
    // The measurement list can only grow within one boot; a shrink means
    // the node rebooted out from under continuous attestation.
    result->failure = "IMA measurement list regressed (unexpected reboot?)";
    co_return;
  }
  if (ima_log->size() != ima_total - state.ima_seen) {
    result->failure = "IMA delta is inconsistent with the advertised total";
    co_return;
  }

  // 3a. Signature and freshness.
  if (!tpm::Tpm::VerifyQuote(*quote, *state.aik_prepared)) {
    result->failure = "quote signature invalid";
    co_return;
  }
  if (quote->nonce != nonce) {
    result->failure = "stale quote (nonce mismatch)";
    co_return;
  }
  if (quote->pcr_mask != kQuotePcrMask) {
    result->failure = "wrong PCR selection";
    co_return;
  }

  // 3b. Log replay must reproduce the quoted PCR values exactly.  The
  // IMA PCR continues from the validated prefix's value; everything else
  // replays from the (static) boot log.
  std::array<crypto::Digest, tpm::kNumPcrs> replayed{};
  for (const tpm::MeasurementEvent& event : boot_log->events()) {
    auto& pcr = replayed[static_cast<size_t>(event.pcr_index)];
    pcr = tpm::ExtendDigest(pcr, event.measurement);
  }
  crypto::Digest ima_pcr = state.ima_pcr;
  for (const tpm::MeasurementEvent& event : ima_log->events()) {
    if (event.pcr_index != tpm::kPcrIma) {
      result->failure = "IMA delta contains a non-IMA event";
      co_return;
    }
    ima_pcr = tpm::ExtendDigest(ima_pcr, event.measurement);
  }
  replayed[static_cast<size_t>(tpm::kPcrIma)] = ima_pcr;
  for (int pcr = 0; pcr < tpm::kNumPcrs; ++pcr) {
    const crypto::Digest* quoted = QuotedPcr(*quote, pcr);
    if (quoted != nullptr && *quoted != replayed[static_cast<size_t>(pcr)]) {
      result->failure = "event log does not match quoted PCR " + std::to_string(pcr);
      co_return;
    }
  }

  // 3c. Whitelist checks.
  if (state.config.whitelist == nullptr) {
    result->failure = "no whitelist configured";
    co_return;
  }
  for (const tpm::MeasurementEvent& event : boot_log->events()) {
    if (!state.config.whitelist->boot.contains(event.measurement)) {
      result->failure = "unwhitelisted boot measurement: " + event.description;
      co_return;
    }
  }
  for (const tpm::MeasurementEvent& event : ima_log->events()) {
    if (!state.config.whitelist->runtime.contains(event.measurement)) {
      result->failure = "unwhitelisted runtime file: " + event.description;
      co_return;
    }
  }

  // 4. Bootstrap delivery on first success.
  if (!state.payload_delivered && !state.config.v_half.empty()) {
    bool delivered = false;
    co_await DeliverPayload(name, *state.nk_decoded, &delivered);
    if (!delivered) {
      result->failure = "payload delivery failed";
      co_return;
    }
  }
  // Commit the incremental cursor only after full success so a failed
  // verification never advances past unvalidated measurements.
  state.ima_seen = ima_total;
  state.ima_pcr = ima_pcr;
  result->passed = true;
}

void Verifier::StartContinuous(const std::string& name, sim::Duration interval) {
  const auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    return;
  }
  it->second.continuous = true;
  sim_.Spawn(ContinuousLoop(name, interval, it->second.generation));
}

void Verifier::StopContinuous(const std::string& name) {
  const auto it = nodes_.find(name);
  if (it != nodes_.end()) {
    it->second.continuous = false;
    ++it->second.generation;
  }
}

sim::Task Verifier::ContinuousLoop(std::string name, sim::Duration interval,
                                   uint64_t generation) {
  sim::Duration wait = interval;
  for (;;) {
    co_await sim::Delay(sim_, wait);
    const auto it = nodes_.find(name);
    if (it == nodes_.end() || !it->second.continuous ||
        it->second.generation != generation) {
      co_return;
    }
    VerificationResult result;
    co_await VerifyNode(name, &result);
    // VerifyNode suspends, so re-check that this loop still owns the node
    // before acting on the verdict.
    const auto after = nodes_.find(name);
    if (after == nodes_.end() || !after->second.continuous ||
        after->second.generation != generation) {
      co_return;
    }
    if (result.passed) {
      after->second.transient_strikes = 0;
      wait = interval;
      continue;
    }
    if (IsTransientFailure(result.failure) &&
        ++after->second.transient_strikes < max_transient_strikes_) {
      // Escalation ladder: a quote timeout earns a fast re-poll (the node
      // may be mid-reboot or behind a flapping link), not an instant
      // quarantine.  Strikes accumulate until a pass resets them.
      ++transient_retries_;
      obs::Count(sim_, "keylime.transient_retries");
      wait = interval.Scaled(0.25);
      continue;
    }
    ++violations_;
    obs::Count(sim_, "keylime.violations");
    obs::Instant(sim_, "keylime.violation", "keylime", "verify:" + name,
                 {{"node", name}, {"reason", result.failure}});
    co_await Revoke(name);
    if (violation_callback_) {
      violation_callback_(name, result.failure);
    }
    co_return;
  }
}

sim::Task Verifier::Revoke(const std::string& name) {
  const auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    co_return;
  }
  const net::Address bad = it->second.config.agent;
  // Notify every enclave peer concurrently; each drops the bad node's SA.
  sim::TaskGroup group(sim_);
  for (const net::Address peer : it->second.config.peers) {
    if (peer != bad) {
      group.Spawn(NotifyRevocation(peer, bad));
    }
  }
  co_await group.WaitAll();
}

sim::Task Verifier::NotifyRevocation(net::Address peer, net::Address bad) {
  net::Message message;
  message.kind = std::string(kRpcRevoke);
  message.payload = net::WireWriter().U32(bad).Take();
  net::Message response;
  bool ok = false;
  co_await node_.Call(peer, std::move(message), &response, &ok,
                      sim::Duration::Seconds(5));
}

}  // namespace bolted::keylime
