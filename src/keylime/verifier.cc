#include "src/keylime/verifier.h"

#include <algorithm>
#include <memory>

#include "src/crypto/ecies.h"
#include "src/keylime/agent.h"
#include "src/net/wire.h"
#include "src/obs/obs.h"
#include "src/sim/shard.h"
#include "src/tpm/tpm.h"

namespace bolted::keylime {
namespace {

// Extracts the quoted value for a PCR from a quote's (mask, values) pair.
const crypto::Digest* QuotedPcr(const tpm::Quote& quote, int pcr) {
  if ((quote.pcr_mask & (1u << pcr)) == 0) {
    return nullptr;
  }
  size_t index = 0;
  for (int i = 0; i < pcr; ++i) {
    if (quote.pcr_mask & (1u << i)) {
      ++index;
    }
  }
  return &quote.pcr_values[index];
}

// Splits an uncompressed SEC1 encoding into coordinates without the curve
// membership check — P256::Prepare performs it exactly once when the
// verifier's per-node cache misses.
std::optional<crypto::EcPoint> ParsePointUnchecked(crypto::ByteView encoded) {
  if (encoded.size() != 65 || encoded[0] != 0x04) {
    return std::nullopt;
  }
  crypto::EcPoint p;
  p.x = crypto::U256::FromBytes(encoded.subspan(1, 32));
  p.y = crypto::U256::FromBytes(encoded.subspan(33, 32));
  return p;
}

}  // namespace

bool IsTransientFailure(std::string_view failure) {
  // Everything else is evidence of a bad node, not a bad network: forged or
  // stale quotes, log mismatches, unwhitelisted measurements, registration
  // problems.
  return failure == "registrar lookup failed" || failure == "agent unreachable" ||
         failure == "payload delivery failed";
}

Verifier::Verifier(sim::Simulation& sim, net::Endpoint& endpoint,
                   net::Address registrar, uint64_t seed)
    : sim_(sim), node_(sim, endpoint), registrar_(registrar), drbg_(seed) {
  node_.Start();
}

Verifier::~Verifier() = default;

void Verifier::AddNode(const std::string& name, NodeConfig config) {
  NodeState state;
  state.config = std::move(config);
  nodes_[name] = std::move(state);
}

void Verifier::RemoveNode(const std::string& name) { nodes_.erase(name); }

void Verifier::UpdatePeers(const std::string& name, std::vector<net::Address> peers) {
  const auto it = nodes_.find(name);
  if (it != nodes_.end()) {
    it->second.config.peers = std::move(peers);
  }
}

sim::Task Verifier::DeliverPayload(const std::string& name, const crypto::EcPoint& nk,
                                   bool* ok) {
  *ok = false;
  auto& state = nodes_.at(name);
  const crypto::Bytes sealed_v = crypto::EciesSeal(nk, state.config.v_half, drbg_);

  net::Message message;
  message.kind = std::string(kRpcDeliverV);
  message.payload =
      net::WireWriter().Blob(sealed_v).Blob(state.config.sealed_payload).Take();
  net::Message response;
  bool rpc_ok = false;
  co_await node_.Call(state.config.agent, std::move(message), &response, &rpc_ok);
  if (!rpc_ok) {
    co_return;
  }
  net::WireReader reader(response.payload);
  *ok = reader.U32() == 1 && reader.AtEnd();
  if (*ok) {
    state.payload_delivered = true;
  }
}

// Plain dispatcher: the traced wrapper (a second coroutine frame) is only
// interposed when a Registry is attached, so untraced runs — and the whole
// BOLTED_OBS=0 build — pay nothing for it.
sim::Task Verifier::VerifyNode(const std::string& name, VerificationResult* result) {
#if BOLTED_OBS
  if (sim_.observer() != nullptr) {
    return VerifyNodeTraced(name, result);
  }
#endif
  return VerifyNodeImpl(name, result);
}

sim::Task Verifier::VerifyNodeTraced(const std::string& name,
                                     VerificationResult* result) {
  obs::Span span(sim_, "keylime.verify", "keylime", "verify:" + name);
  co_await VerifyNodeImpl(name, result);
  if (result->passed) {
    obs::Count(sim_, "keylime.verify_pass");
  } else {
    obs::Count(sim_, "keylime.verify_fail");
    span.AddArg("failure", result->failure);
  }
  span.End();
}

void Verifier::InvalidateKeyCache(const std::string& name) {
  const auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    return;
  }
  it->second.aik_prepared.reset();
  it->second.aik_wire.clear();
  it->second.nk_decoded.reset();
  it->second.nk_wire.clear();
}

const Verifier::BootReplay* Verifier::ReplayBootLog(const crypto::Bytes& wire) {
  const crypto::Digest key = crypto::Sha256::Hash(wire);
  const auto it = boot_log_cache_.find(key);
  if (it != boot_log_cache_.end()) {
    ++boot_log_cache_hits_;
    return &it->second;
  }
  auto decoded = tpm::EventLog::Deserialize(wire);
  if (!decoded.has_value()) {
    return nullptr;  // malformed logs are not cached (they carry no replay)
  }
  BootReplay replay;
  replay.log = std::move(*decoded);
  for (const tpm::MeasurementEvent& event : replay.log.events()) {
    auto& pcr = replay.pcrs[static_cast<size_t>(event.pcr_index)];
    pcr = tpm::ExtendDigest(pcr, event.measurement);
  }
  ++boot_log_cache_misses_;
  obs::Count(sim_, "keylime.boot_log_cache_miss");
  return &boot_log_cache_.emplace(key, std::move(replay)).first->second;
}

sim::Task Verifier::VerifyNodeImpl(const std::string& name,
                                   VerificationResult* result) {
  result->passed = false;
  const auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    result->failure = "unknown node";
    co_return;
  }
  NodeState& state = it->second;
  ++verifications_;

  QuoteExchange exchange;
  co_await FetchQuote(name, state, &exchange);
  if (!exchange.failure.empty()) {
    result->failure = std::move(exchange.failure);
    co_return;
  }
  // 3a (signature): the single-node path verifies inline; VerifyFleet
  // replaces exactly this step with the batched multi-scalar check.
  const bool signature_ok =
      tpm::Tpm::VerifyQuote(*exchange.quote, *state.aik_prepared);
  co_await FinishVerification(name, state, exchange, signature_ok, result);
}

sim::Task Verifier::FetchQuote(const std::string& name, NodeState& state,
                               QuoteExchange* out) {
  // 1. Certified keys from the registrar.
  net::Message key_request;
  key_request.kind = std::string(kRpcGetKeys);
  key_request.payload = net::WireWriter().Str(name).Take();
  net::Message key_response;
  bool rpc_ok = false;
  co_await node_.CallWithRetry(registrar_, std::move(key_request), &key_response,
                               &rpc_ok, call_options_);
  if (!rpc_ok || key_response.kind == "kl.reg.error") {
    out->failure = "registrar lookup failed";
    co_return;
  }
  net::WireReader key_reader(key_response.payload);
  key_reader.Blob();  // EK (checked by the tenant against HIL metadata)
  const crypto::Bytes aik_wire = key_reader.Blob();
  const crypto::Bytes nk_wire = key_reader.Blob();
  const bool activated = key_reader.U32() == 1;
  if (!key_reader.AtEnd()) {
    out->failure = "malformed registrar response";
    co_return;
  }
  // Decode + curve-check + table build happen once per distinct wire
  // encoding; steady-state polling reuses the prepared AIK.
  if (!state.aik_prepared.has_value() || state.aik_wire != aik_wire) {
    const auto aik = ParsePointUnchecked(aik_wire);
    state.aik_prepared =
        aik ? crypto::P256::Instance().Prepare(*aik) : std::nullopt;
    state.aik_wire = aik_wire;
    ++aik_cache_misses_;
    obs::Count(sim_, "keylime.aik_cache_miss");
  } else {
    ++aik_cache_hits_;
    obs::Count(sim_, "keylime.aik_cache_hit");
  }
  if (!state.nk_decoded.has_value() || state.nk_wire != nk_wire) {
    state.nk_decoded = crypto::EcPoint::Decode(nk_wire);
    state.nk_wire = nk_wire;
  }
  if (!state.aik_prepared.has_value() || !state.nk_decoded.has_value()) {
    out->failure = "malformed registrar response";
    co_return;
  }
  if (!activated) {
    out->failure = "AIK not activated";
    co_return;
  }

  // 2. Fresh nonce, quote request.  The request carries the incremental
  // cursor so the agent only ships new IMA measurements.
  out->nonce = drbg_.Generate(20);
  net::Message quote_request;
  quote_request.kind = std::string(kRpcQuote);
  quote_request.payload = net::WireWriter()
                              .Blob(out->nonce)
                              .U32(kQuotePcrMask)
                              .U64(state.ima_seen)
                              .Take();
  net::Message quote_response;
  co_await node_.CallWithRetry(state.config.agent, std::move(quote_request),
                               &quote_response, &rpc_ok, call_options_);
  if (!rpc_ok || quote_response.kind == "kl.agent.error") {
    out->failure = "agent unreachable";
    co_return;
  }
  net::WireReader reader(quote_response.payload);
  out->quote = tpm::Quote::Deserialize(reader.Blob());
  out->boot = ReplayBootLog(reader.Blob());
  out->ima_total = reader.U64();
  out->ima_log = tpm::EventLog::Deserialize(reader.Blob());
  if (!reader.AtEnd() || !out->quote || out->boot == nullptr || !out->ima_log) {
    out->failure = "malformed quote response";
    co_return;
  }
  if (out->boot->log.events().empty()) {
    // A freshly power-cycled TPM has all-zero PCRs, and an empty boot log
    // replays to exactly those values — so without this check a crashed,
    // unbooted machine would sail through replay and (vacuously) through
    // the whitelist.  A measured boot always logs at least the firmware.
    out->failure = "empty boot event log";
    co_return;
  }
  if (out->ima_total < state.ima_seen) {
    // The measurement list can only grow within one boot; a shrink means
    // the node rebooted out from under continuous attestation.
    out->failure = "IMA measurement list regressed (unexpected reboot?)";
    co_return;
  }
  if (out->ima_log->size() != out->ima_total - state.ima_seen) {
    out->failure = "IMA delta is inconsistent with the advertised total";
    co_return;
  }
}

sim::Task Verifier::FinishVerification(const std::string& name, NodeState& state,
                                       QuoteExchange& ex, bool signature_ok,
                                       VerificationResult* result) {
  // 3a. Signature (verdict computed by the caller — inline single verify
  // or the batched multi-scalar check) and freshness.
  const tpm::Quote& quote = *ex.quote;
  if (!signature_ok) {
    result->failure = "quote signature invalid";
    co_return;
  }
  if (quote.nonce != ex.nonce) {
    result->failure = "stale quote (nonce mismatch)";
    co_return;
  }
  if (quote.pcr_mask != kQuotePcrMask) {
    result->failure = "wrong PCR selection";
    co_return;
  }

  // 3b. Log replay must reproduce the quoted PCR values exactly.  The
  // boot-log replay comes precomputed from the golden-log cache; the IMA
  // PCR continues from the validated prefix's value.
  std::array<crypto::Digest, tpm::kNumPcrs> replayed = ex.boot->pcrs;
  crypto::Digest ima_pcr = state.ima_pcr;
  for (const tpm::MeasurementEvent& event : ex.ima_log->events()) {
    if (event.pcr_index != tpm::kPcrIma) {
      result->failure = "IMA delta contains a non-IMA event";
      co_return;
    }
    ima_pcr = tpm::ExtendDigest(ima_pcr, event.measurement);
  }
  replayed[static_cast<size_t>(tpm::kPcrIma)] = ima_pcr;
  for (int pcr = 0; pcr < tpm::kNumPcrs; ++pcr) {
    const crypto::Digest* quoted = QuotedPcr(quote, pcr);
    if (quoted != nullptr && *quoted != replayed[static_cast<size_t>(pcr)]) {
      result->failure = "event log does not match quoted PCR " + std::to_string(pcr);
      co_return;
    }
  }

  // 3c. Whitelist checks.
  if (state.config.whitelist == nullptr) {
    result->failure = "no whitelist configured";
    co_return;
  }
  for (const tpm::MeasurementEvent& event : ex.boot->log.events()) {
    if (!state.config.whitelist->boot.contains(event.measurement)) {
      result->failure = "unwhitelisted boot measurement: " + event.description;
      co_return;
    }
  }
  for (const tpm::MeasurementEvent& event : ex.ima_log->events()) {
    if (!state.config.whitelist->runtime.contains(event.measurement)) {
      result->failure = "unwhitelisted runtime file: " + event.description;
      co_return;
    }
  }

  // 4. Bootstrap delivery on first success.
  if (!state.payload_delivered && !state.config.v_half.empty()) {
    bool delivered = false;
    co_await DeliverPayload(name, *state.nk_decoded, &delivered);
    if (!delivered) {
      result->failure = "payload delivery failed";
      co_return;
    }
  }
  // Commit the incremental cursor only after full success so a failed
  // verification never advances past unvalidated measurements.
  state.ima_seen = ex.ima_total;
  state.ima_pcr = ima_pcr;
  result->passed = true;
}

namespace {

// Stable node-id hash for shard assignment (FNV-1a; std::hash is not
// pinned across standard libraries).
uint64_t ShardHash(std::string_view s) {
  uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

sim::Task Verifier::VerifyFleet(std::span<const std::string> names,
                                VerificationResult* results) {
  const size_t n = names.size();
  std::vector<QuoteExchange> exchanges(n);
  std::vector<NodeState*> states(n, nullptr);
  sim::TaskGroup group(sim_);
  for (size_t i = 0; i < n; ++i) {
    results[i] = VerificationResult{};
    const auto it = nodes_.find(names[i]);
    if (it == nodes_.end()) {
      exchanges[i].failure = "unknown node";
      continue;
    }
    states[i] = &it->second;
    ++verifications_;
    group.Spawn(FetchQuote(names[i], it->second, &exchanges[i]));
  }
  co_await group.WaitAll();

  // Every quote that landed in this round, sharded by node id and verified
  // through the batched multi-scalar path.  This section is host CPU only —
  // it schedules no sim event — so batch size and worker count cannot
  // perturb the event sequence, and verdicts/digests match the workers = 1
  // oracle byte for byte.
  const size_t workers = static_cast<size_t>(std::max(1, fleet_options_.workers));
  const size_t batch_size =
      static_cast<size_t>(std::max(1, fleet_options_.batch_size));
  std::vector<std::vector<size_t>> shards(workers);
  for (size_t i = 0; i < n; ++i) {
    if (exchanges[i].failure.empty()) {
      shards[ShardHash(names[i]) % workers].push_back(i);
    }
  }
  std::vector<uint8_t> signature_ok(n, 0);
  struct ShardReport {
    crypto::P256::BatchStats stats;
    std::vector<uint64_t> chunk_sizes;
  };
  std::vector<ShardReport> reports(workers);
  const auto run_shard = [&](size_t s) {
    const std::vector<size_t>& index = shards[s];
    ShardReport& report = reports[s];
    std::vector<tpm::Tpm::QuoteBatchEntry> entries;
    for (size_t start = 0; start < index.size(); start += batch_size) {
      const size_t count = std::min(batch_size, index.size() - start);
      entries.resize(count);
      for (size_t k = 0; k < count; ++k) {
        const size_t i = index[start + k];
        entries[k].quote = &*exchanges[i].quote;
        entries[k].aik = &*states[i]->aik_prepared;
      }
      const std::unique_ptr<bool[]> ok(new bool[count]());
      tpm::Tpm::VerifyQuoteBatch(entries, ok.get(), &report.stats);
      for (size_t k = 0; k < count; ++k) {
        signature_ok[index[start + k]] = ok[k] ? 1 : 0;
      }
      report.chunk_sizes.push_back(count);
    }
  };
  if (workers == 1 || n < 2) {
    for (size_t s = 0; s < workers; ++s) {
      run_shard(s);
    }
  } else {
    // Shards run on the persistent sim::WorkerPool — the same pinned
    // worker team the sharded simulation uses — striding shards across
    // threads instead of spawning and joining a thread per shard every
    // poll round.
    if (worker_pool_ == nullptr || worker_pool_->threads() != workers) {
      worker_pool_ = std::make_unique<sim::WorkerPool>(
          static_cast<uint32_t>(workers), /*pin=*/true);
    }
    worker_pool_->RunOnAll([&](uint32_t t) {
      for (size_t s = t; s < workers; s += worker_pool_->threads()) {
        run_shard(s);
      }
    });
  }

  // Bookkeeping in deterministic shard order (obs must not be touched from
  // the worker threads).
  for (size_t s = 0; s < workers; ++s) {
    const ShardReport& report = reports[s];
    batched_verifications_ += shards[s].size();
    batch_stats_.bisections += report.stats.bisections;
    batch_stats_.sqrt_recoveries += report.stats.sqrt_recoveries;
    batch_stats_.rejected_hints += report.stats.rejected_hints;
    obs::Record(sim_, "keylime.shard_quotes", shards[s].size());
    for (const uint64_t chunk : report.chunk_sizes) {
      obs::Record(sim_, "keylime.batch_size", chunk);
    }
    if (report.stats.bisections != 0) {
      obs::Count(sim_, "keylime.batch_bisections", report.stats.bisections);
    }
  }

  // Merge verdicts back in submission order; each node's post-signature
  // pipeline runs exactly as the single-node path would.
  for (size_t i = 0; i < n; ++i) {
    if (!exchanges[i].failure.empty()) {
      results[i].failure = std::move(exchanges[i].failure);
      continue;
    }
    co_await FinishVerification(names[i], *states[i], exchanges[i],
                                signature_ok[i] != 0, &results[i]);
  }
}

void Verifier::StartContinuous(const std::string& name, sim::Duration interval) {
  const auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    return;
  }
  it->second.continuous = true;
  sim_.Spawn(ContinuousLoop(name, interval, it->second.generation));
}

void Verifier::StopContinuous(const std::string& name) {
  const auto it = nodes_.find(name);
  if (it != nodes_.end()) {
    it->second.continuous = false;
    ++it->second.generation;
  }
}

sim::Task Verifier::ContinuousLoop(std::string name, sim::Duration interval,
                                   uint64_t generation) {
  sim::Duration wait = interval;
  for (;;) {
    co_await sim::Delay(sim_, wait);
    const auto it = nodes_.find(name);
    if (it == nodes_.end() || !it->second.continuous ||
        it->second.generation != generation) {
      co_return;
    }
    VerificationResult result;
    co_await VerifyNode(name, &result);
    // VerifyNode suspends, so re-check that this loop still owns the node
    // before acting on the verdict.
    const auto after = nodes_.find(name);
    if (after == nodes_.end() || !after->second.continuous ||
        after->second.generation != generation) {
      co_return;
    }
    if (result.passed) {
      after->second.transient_strikes = 0;
      wait = interval;
      continue;
    }
    if (IsTransientFailure(result.failure) &&
        ++after->second.transient_strikes < max_transient_strikes_) {
      // Escalation ladder: a quote timeout earns a fast re-poll (the node
      // may be mid-reboot or behind a flapping link), not an instant
      // quarantine.  Strikes accumulate until a pass resets them.
      ++transient_retries_;
      obs::Count(sim_, "keylime.transient_retries");
      wait = interval.Scaled(0.25);
      continue;
    }
    ++violations_;
    obs::Count(sim_, "keylime.violations");
    obs::Instant(sim_, "keylime.violation", "keylime", "verify:" + name,
                 {{"node", name}, {"reason", result.failure}});
    co_await Revoke(name);
    if (violation_callback_) {
      violation_callback_(name, result.failure);
    }
    co_return;
  }
}

sim::Task Verifier::Revoke(const std::string& name) {
  const auto it = nodes_.find(name);
  if (it == nodes_.end()) {
    co_return;
  }
  const net::Address bad = it->second.config.agent;
  // Notify every enclave peer concurrently; each drops the bad node's SA.
  sim::TaskGroup group(sim_);
  for (const net::Address peer : it->second.config.peers) {
    if (peer != bad) {
      group.Spawn(NotifyRevocation(peer, bad));
    }
  }
  co_await group.WaitAll();
}

sim::Task Verifier::NotifyRevocation(net::Address peer, net::Address bad) {
  net::Message message;
  message.kind = std::string(kRpcRevoke);
  message.payload = net::WireWriter().U32(bad).Take();
  net::Message response;
  bool ok = false;
  co_await node_.Call(peer, std::move(message), &response, &ok,
                      sim::Duration::Seconds(5));
}

}  // namespace bolted::keylime
