// Tenant bootstrap payload and the U/V key split (§5 "Keylime").
//
// After a server passes initial attestation, Keylime delivers an
// encrypted zip to the agent containing the tenant's kernel/initrd
// identity, the LUKS disk secret, the IPsec key seed, and a boot script.
// The bootstrap key K never exists at the verifier: the tenant splits it
// as K = U xor V, hands V (plus the sealed payload) to the cloud
// verifier, and sends U directly to the agent.  Both halves are sealed to
// the agent's per-boot node key (ECIES), so a compromised verifier or a
// snooping provider learns nothing.

#ifndef SRC_KEYLIME_PAYLOAD_H_
#define SRC_KEYLIME_PAYLOAD_H_

#include <optional>
#include <string>

#include "src/crypto/bytes.h"
#include "src/crypto/drbg.h"
#include "src/crypto/sha256.h"

namespace bolted::keylime {

struct TenantPayload {
  crypto::Digest kernel_digest{};
  crypto::Digest initrd_digest{};
  uint64_t kernel_bytes = 0;
  uint64_t initrd_bytes = 0;
  crypto::Bytes disk_secret;       // unlocks the LUKS volume
  crypto::Bytes network_key_seed;  // derives pairwise IPsec keys
  std::string boot_script;         // executed by the agent before kexec

  crypto::Bytes Serialize() const;
  static std::optional<TenantPayload> Deserialize(crypto::ByteView data);
  bool operator==(const TenantPayload&) const = default;
};

// The tenant-side sealing result.
struct SplitPayload {
  crypto::Bytes u_half;           // 32 bytes, goes tenant -> agent
  crypto::Bytes v_half;           // 32 bytes, goes tenant -> verifier -> agent
  crypto::Bytes sealed_payload;   // nonce || GCM(payload) under K = U xor V
};

SplitPayload SealPayload(const TenantPayload& payload, crypto::Drbg& drbg);
// Recombines the halves and opens the payload.
std::optional<TenantPayload> OpenPayload(crypto::ByteView u_half,
                                         crypto::ByteView v_half,
                                         crypto::ByteView sealed_payload);

// Derives the pairwise IPsec key for an (unordered) node pair from the
// tenant's network key seed.
crypto::Bytes DerivePairKey(crypto::ByteView network_key_seed, uint32_t node_a,
                            uint32_t node_b);

}  // namespace bolted::keylime

#endif  // SRC_KEYLIME_PAYLOAD_H_
