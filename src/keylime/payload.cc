#include "src/keylime/payload.h"

#include "src/crypto/aes_gcm.h"
#include "src/crypto/hmac.h"
#include "src/net/wire.h"

namespace bolted::keylime {

crypto::Bytes TenantPayload::Serialize() const {
  return net::WireWriter()
      .Digest(kernel_digest)
      .Digest(initrd_digest)
      .U64(kernel_bytes)
      .U64(initrd_bytes)
      .Blob(disk_secret)
      .Blob(network_key_seed)
      .Str(boot_script)
      .Take();
}

std::optional<TenantPayload> TenantPayload::Deserialize(crypto::ByteView data) {
  net::WireReader reader(data);
  TenantPayload payload;
  payload.kernel_digest = reader.Digest();
  payload.initrd_digest = reader.Digest();
  payload.kernel_bytes = reader.U64();
  payload.initrd_bytes = reader.U64();
  payload.disk_secret = reader.Blob();
  payload.network_key_seed = reader.Blob();
  payload.boot_script = reader.Str();
  if (!reader.AtEnd()) {
    return std::nullopt;
  }
  return payload;
}

SplitPayload SealPayload(const TenantPayload& payload, crypto::Drbg& drbg) {
  SplitPayload split;
  const crypto::Bytes k = drbg.Generate(32);
  split.u_half = drbg.Generate(32);
  split.v_half = crypto::Xor(k, split.u_half);

  const crypto::Bytes nonce = drbg.Generate(crypto::AesGcm::kNonceSize);
  split.sealed_payload = nonce;
  crypto::Append(split.sealed_payload,
                 crypto::AesGcm(k).Seal(nonce, payload.Serialize(), {}));
  return split;
}

std::optional<TenantPayload> OpenPayload(crypto::ByteView u_half,
                                         crypto::ByteView v_half,
                                         crypto::ByteView sealed_payload) {
  if (u_half.size() != 32 || v_half.size() != 32 ||
      sealed_payload.size() < crypto::AesGcm::kNonceSize + crypto::AesGcm::kTagSize) {
    return std::nullopt;
  }
  const crypto::Bytes k = crypto::Xor(u_half, v_half);
  const crypto::ByteView nonce = sealed_payload.subspan(0, crypto::AesGcm::kNonceSize);
  const auto plain = crypto::AesGcm(k).Open(
      nonce, sealed_payload.subspan(crypto::AesGcm::kNonceSize), {});
  if (!plain) {
    return std::nullopt;
  }
  return TenantPayload::Deserialize(*plain);
}

crypto::Bytes DerivePairKey(crypto::ByteView network_key_seed, uint32_t node_a,
                            uint32_t node_b) {
  if (node_a > node_b) {
    std::swap(node_a, node_b);
  }
  crypto::Bytes info = crypto::ToBytes("ipsec-pair");
  crypto::AppendU32(info, node_a);
  crypto::AppendU32(info, node_b);
  return crypto::Hkdf({}, network_key_seed, info, 32);
}

}  // namespace bolted::keylime
