// Keylime agent: runs on the server being attested (§5).
//
// Downloaded and measured by LinuxBoot in the airlock, the agent
//   (i)   creates a per-boot node key (NK),
//   (ii)  registers EK/AIK/NK with the registrar and completes the
//         credential-activation proof,
//   (iii) answers quote requests (TPM quote + boot event log + IMA list),
//   (iv)  receives the U and V bootstrap-key halves, recombines them, and
//         opens the tenant payload,
//   (v)   acts on revocation notifications by tearing down IPsec SAs.

#ifndef SRC_KEYLIME_AGENT_H_
#define SRC_KEYLIME_AGENT_H_

#include <optional>
#include <string>

#include "src/crypto/drbg.h"
#include "src/ima/ima.h"
#include "src/keylime/payload.h"
#include "src/machine/machine.h"

namespace bolted::keylime {

inline constexpr std::string_view kRpcQuote = "kl.agent.quote";
inline constexpr std::string_view kRpcDeliverU = "kl.agent.u";
inline constexpr std::string_view kRpcDeliverV = "kl.agent.v";
inline constexpr std::string_view kRpcRevoke = "kl.agent.revoke";

// PCR selection the verifier demands: firmware, bootloader, kernel, IMA.
inline constexpr uint32_t kQuotePcrMask =
    (1u << tpm::kPcrFirmware) | (1u << tpm::kPcrBootloader) |
    (1u << tpm::kPcrKernel) | (1u << tpm::kPcrIma);

class Agent {
 public:
  // Installs handlers on the machine's RpcNode.  `ima` may be null until
  // the tenant OS boots (runtime measurements then flow through it).
  Agent(machine::Machine& machine, uint64_t seed);

  const crypto::EcPoint& node_key_public() const { return nk_public_; }

  // Performs AIK creation + registration + credential activation against
  // the registrar.  Sets *ok.
  sim::Task RegisterWithRegistrar(net::Address registrar, const std::string& node_name,
                                  bool* ok);

  // Suspends until both key halves have arrived and the payload opened.
  // Sets *payload on success; *ok=false if recombination failed.
  sim::Task AwaitPayload(TenantPayload* payload, bool* ok);

  void AttachIma(ima::Ima* ima) { ima_ = ima; }

  uint64_t quotes_served() const { return quotes_served_; }
  uint64_t revocations_received() const { return revocations_received_; }

 private:
  sim::Task HandleQuote(const net::Message& request, net::Message* response);
  sim::Task HandleDeliverU(const net::Message& request, net::Message* response);
  sim::Task HandleDeliverV(const net::Message& request, net::Message* response);
  sim::Task HandleRevoke(const net::Message& request, net::Message* response);
  void TryCombine();

  machine::Machine& machine_;
  crypto::Drbg drbg_;
  crypto::U256 nk_private_;
  crypto::EcPoint nk_public_;
  ima::Ima* ima_ = nullptr;

  std::optional<crypto::Bytes> u_half_;
  std::optional<crypto::Bytes> v_half_;
  crypto::Bytes sealed_payload_;
  std::optional<TenantPayload> payload_;
  bool combine_failed_ = false;
  sim::Event payload_ready_;

  uint64_t quotes_served_ = 0;
  uint64_t revocations_received_ = 0;
};

}  // namespace bolted::keylime

#endif  // SRC_KEYLIME_AGENT_H_
