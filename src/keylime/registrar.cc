#include "src/keylime/registrar.h"

#include "src/net/wire.h"
#include "src/tpm/tpm.h"

namespace bolted::keylime {

Registrar::Registrar(sim::Simulation& sim, net::Endpoint& endpoint, uint64_t seed)
    : sim_(sim), node_(sim, endpoint), drbg_(seed) {
  node_.RegisterHandler(std::string(kRpcRegister),
                        [this](const net::Message& req, net::Message* resp) {
                          return HandleRegister(req, resp);
                        });
  node_.RegisterHandler(std::string(kRpcActivate),
                        [this](const net::Message& req, net::Message* resp) {
                          return HandleActivate(req, resp);
                        });
  node_.RegisterHandler(std::string(kRpcGetKeys),
                        [this](const net::Message& req, net::Message* resp) {
                          return HandleGetKeys(req, resp);
                        });
  node_.Start();
}

std::optional<NodeKeys> Registrar::Lookup(const std::string& node) const {
  const auto it = records_.find(node);
  if (it == records_.end()) {
    return std::nullopt;
  }
  return it->second.keys;
}

sim::Task Registrar::HandleRegister(const net::Message& request,
                                    net::Message* response) {
  net::WireReader reader(request.payload);
  const std::string name = reader.Str();
  const auto ek = crypto::EcPoint::Decode(reader.Blob());
  const auto aik = crypto::EcPoint::Decode(reader.Blob());
  const auto nk = crypto::EcPoint::Decode(reader.Blob());
  if (!reader.AtEnd() || !ek || !aik || !nk) {
    response->kind = "kl.reg.error";
    co_return;
  }

  // Challenge: a fresh secret only the TPM holding `ek` can recover, and
  // only while its AIK matches.
  const crypto::Bytes secret = drbg_.Generate(32);
  const crypto::Bytes blob = tpm::MakeCredential(*ek, *aik, secret, drbg_);

  Record record;
  record.keys = NodeKeys{*ek, *aik, *nk, /*activated=*/false};
  record.expected_secret_hash = crypto::Sha256::Hash(secret);
  records_[name] = std::move(record);

  response->payload = net::WireWriter().Blob(blob).Take();
}

sim::Task Registrar::HandleActivate(const net::Message& request,
                                    net::Message* response) {
  net::WireReader reader(request.payload);
  const std::string name = reader.Str();
  const crypto::Digest proof = reader.Digest();
  const auto it = records_.find(name);
  uint32_t ok = 0;
  if (reader.AtEnd() && it != records_.end() &&
      crypto::ConstantTimeEqual(crypto::DigestView(proof),
                                crypto::DigestView(it->second.expected_secret_hash))) {
    it->second.keys.activated = true;
    it->second.encoded_keys.clear();
    ok = 1;
  }
  response->payload = net::WireWriter().U32(ok).Take();
  co_return;
}

sim::Task Registrar::HandleGetKeys(const net::Message& request,
                                   net::Message* response) {
  net::WireReader reader(request.payload);
  const std::string name = reader.Str();
  const auto it = records_.find(name);
  if (!reader.AtEnd() || it == records_.end()) {
    response->kind = "kl.reg.error";
    co_return;
  }
  Record& record = it->second;
  if (record.encoded_keys.empty()) {
    record.encoded_keys = net::WireWriter()
                              .Blob(record.keys.ek.Encode())
                              .Blob(record.keys.aik.Encode())
                              .Blob(record.keys.nk.Encode())
                              .U32(record.keys.activated ? 1 : 0)
                              .Take();
  }
  response->payload = record.encoded_keys;
}

}  // namespace bolted::keylime
