// Keylime registrar: the trust root that binds AIKs to TPM EKs (§5).
//
// Agents register their EK, AIK, and per-boot node key (NK); the
// registrar runs the TPM make/activate-credential exchange to prove the
// AIK lives in the TPM with that EK, and only then marks the AIK valid.
// Verifiers and tenants query it for a node's certified keys.  It stores
// no tenant secrets.

#ifndef SRC_KEYLIME_REGISTRAR_H_
#define SRC_KEYLIME_REGISTRAR_H_

#include <map>
#include <optional>
#include <string>

#include "src/crypto/drbg.h"
#include "src/crypto/p256.h"
#include "src/net/rpc.h"

namespace bolted::keylime {

inline constexpr std::string_view kRpcRegister = "kl.reg.register";
inline constexpr std::string_view kRpcActivate = "kl.reg.activate";
inline constexpr std::string_view kRpcGetKeys = "kl.reg.getkeys";

struct NodeKeys {
  crypto::EcPoint ek;
  crypto::EcPoint aik;
  crypto::EcPoint nk;  // agent's per-boot node key
  bool activated = false;
};

class Registrar {
 public:
  Registrar(sim::Simulation& sim, net::Endpoint& endpoint, uint64_t seed);

  net::Address address() const { return node_.address(); }

  // Local (test/inspection) view.
  std::optional<NodeKeys> Lookup(const std::string& node) const;

 private:
  sim::Task HandleRegister(const net::Message& request, net::Message* response);
  sim::Task HandleActivate(const net::Message& request, net::Message* response);
  sim::Task HandleGetKeys(const net::Message& request, net::Message* response);

  sim::Simulation& sim_;
  net::RpcNode node_;
  crypto::Drbg drbg_;
  struct Record {
    NodeKeys keys;
    crypto::Digest expected_secret_hash{};
    // Lazily built GetKeys wire encoding; the fleet's verifiers poll this
    // far more often than keys change.  Cleared whenever keys mutate
    // (re-registration, activation).
    crypto::Bytes encoded_keys;
  };
  std::map<std::string, Record> records_;
};

}  // namespace bolted::keylime

#endif  // SRC_KEYLIME_REGISTRAR_H_
