#include "src/keylime/agent.h"

#include <algorithm>

#include "src/crypto/ecies.h"
#include "src/keylime/registrar.h"
#include "src/net/wire.h"
#include "src/obs/obs.h"

namespace bolted::keylime {
namespace {

// TPM command accounting, by opcode: the full charged latency (model cost
// plus any injected spike) lands in a per-opcode histogram, and failed
// commands are counted separately so chaos traces show where a stalled
// phase burned its time.  The per-opcode metric ids are cached so a busy
// attestation loop never rebuilds the concatenated names.
void ObserveTpmCommand(sim::Simulation& sim, std::string_view opcode,
                       sim::Duration charged, bool failed) {
#if BOLTED_OBS
  if (obs::Registry* r = sim.observer()) {
    struct OpcodeIds {
      uint32_t cmd_ns;
      uint32_t cmd_failed;
    };
    static thread_local std::map<std::string, OpcodeIds, std::less<>> cache;
    auto it = cache.find(opcode);
    if (it == cache.end()) {
      const OpcodeIds ids{
          obs::InternMetric("tpm.cmd_ns." + std::string(opcode)),
          obs::InternMetric("tpm.cmd_failed." + std::string(opcode))};
      it = cache.emplace(std::string(opcode), ids).first;
    }
    r->RecordDurationById(it->second.cmd_ns, charged);
    if (failed) {
      r->AddById(it->second.cmd_failed);
    }
  }
#else
  (void)sim;
  (void)opcode;
  (void)charged;
  (void)failed;
#endif
}

}  // namespace

Agent::Agent(machine::Machine& machine, uint64_t seed)
    : machine_(machine), drbg_(seed), payload_ready_(machine.simulation()) {
  const crypto::P256& curve = crypto::P256::Instance();
  nk_private_ = curve.PrivateKeyFromSeed(drbg_.Generate(32));
  nk_public_ = curve.PublicKey(nk_private_);

  net::RpcNode& node = machine_.rpc();
  node.RegisterHandler(std::string(kRpcQuote),
                       [this](const net::Message& req, net::Message* resp) {
                         return HandleQuote(req, resp);
                       });
  node.RegisterHandler(std::string(kRpcDeliverU),
                       [this](const net::Message& req, net::Message* resp) {
                         return HandleDeliverU(req, resp);
                       });
  node.RegisterHandler(std::string(kRpcDeliverV),
                       [this](const net::Message& req, net::Message* resp) {
                         return HandleDeliverV(req, resp);
                       });
  node.RegisterHandler(std::string(kRpcRevoke),
                       [this](const net::Message& req, net::Message* resp) {
                         return HandleRevoke(req, resp);
                       });
}

sim::Task Agent::RegisterWithRegistrar(net::Address registrar,
                                       const std::string& node_name, bool* ok) {
  *ok = false;
  sim::Simulation& sim = machine_.simulation();
  tpm::Tpm& tpm = machine_.tpm();

  // AIK creation is the slow TPM operation in registration; transient TPM
  // command failures (injected by the fault layer) are retried a bounded
  // number of times before the whole registration is reported failed.
  bool aik_created = false;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const tpm::TpmFault fault = tpm.TakeFault("create_aik");
    co_await sim::Delay(sim, tpm.latency().create_aik + fault.extra_latency);
    ObserveTpmCommand(sim, "create_aik", tpm.latency().create_aik + fault.extra_latency,
                      fault.fail);
    if (!fault.fail) {
      tpm.CreateAik();
      aik_created = true;
      break;
    }
  }
  if (!aik_created) {
    co_return;
  }

  // Registration happens once per boot, often right after a reboot while
  // the fabric is still settling — worth a couple of resends.
  net::CallOptions options;
  options.timeout = sim::Duration::Seconds(10);
  options.max_attempts = 3;

  net::Message request;
  request.kind = std::string(kRpcRegister);
  request.payload = net::WireWriter()
                        .Str(node_name)
                        .Blob(tpm.ek_public().Encode())
                        .Blob(tpm.aik_public().Encode())
                        .Blob(nk_public_.Encode())
                        .Take();
  net::Message response;
  bool rpc_ok = false;
  co_await machine_.rpc().CallWithRetry(registrar, std::move(request), &response,
                                        &rpc_ok, options);
  if (!rpc_ok || response.kind == "kl.reg.error") {
    co_return;
  }

  net::WireReader reader(response.payload);
  const crypto::Bytes blob = reader.Blob();
  if (!reader.AtEnd()) {
    co_return;
  }

  const tpm::TpmFault activate_fault = tpm.TakeFault("activate_credential");
  co_await sim::Delay(
      sim, tpm.latency().activate_credential + activate_fault.extra_latency);
  ObserveTpmCommand(sim, "activate_credential",
                    tpm.latency().activate_credential + activate_fault.extra_latency,
                    activate_fault.fail);
  if (activate_fault.fail) {
    co_return;
  }
  const auto secret = tpm.ActivateCredential(blob);
  if (!secret) {
    co_return;
  }

  net::Message activate;
  activate.kind = std::string(kRpcActivate);
  activate.payload = net::WireWriter()
                         .Str(node_name)
                         .Digest(crypto::Sha256::Hash(*secret))
                         .Take();
  net::Message activate_response;
  co_await machine_.rpc().CallWithRetry(registrar, std::move(activate),
                                        &activate_response, &rpc_ok, options);
  if (!rpc_ok) {
    co_return;
  }
  net::WireReader activate_reader(activate_response.payload);
  *ok = activate_reader.U32() == 1 && activate_reader.AtEnd();
}

sim::Task Agent::HandleQuote(const net::Message& request, net::Message* response) {
  net::WireReader reader(request.payload);
  const crypto::Bytes nonce = reader.Blob();
  const uint32_t mask = reader.U32();
  // Incremental attestation: the verifier tells us how many IMA events it
  // has already validated; only the suffix travels (real Keylime's
  // behaviour — full lists grow to megabytes under IMA stress policies).
  const uint64_t ima_since = reader.U64();
  if (!reader.AtEnd() || !machine_.tpm().has_aik()) {
    response->kind = "kl.agent.error";
    co_return;
  }
  // A faulted quote command still burns the command time (plus any injected
  // latency spike) before the agent reports the error.
  const tpm::TpmFault fault = machine_.tpm().TakeFault("quote");
  co_await sim::Delay(machine_.simulation(),
                      machine_.tpm().latency().quote + fault.extra_latency);
  ObserveTpmCommand(machine_.simulation(), "quote",
                    machine_.tpm().latency().quote + fault.extra_latency,
                    fault.fail);
  if (fault.fail) {
    response->kind = "kl.agent.error";
    co_return;
  }
  const tpm::Quote quote = machine_.tpm().MakeQuote(nonce, mask);
  ++quotes_served_;

  const tpm::EventLog empty;
  const tpm::EventLog& full_ima =
      ima_ != nullptr ? ima_->measurement_list() : empty;
  const uint64_t total = full_ima.size();
  const crypto::Bytes ima_delta =
      full_ima.SubLog(static_cast<size_t>(std::min(ima_since, total))).Serialize();
  response->payload = net::WireWriter()
                          .Blob(quote.Serialize())
                          .Blob(machine_.boot_log().Serialize())
                          .U64(total)
                          .Blob(ima_delta)
                          .Take();
}

sim::Task Agent::HandleDeliverU(const net::Message& request, net::Message* response) {
  net::WireReader reader(request.payload);
  const crypto::Bytes sealed_u = reader.Blob();
  uint32_t ok = 0;
  if (reader.AtEnd()) {
    if (auto u = crypto::EciesOpen(nk_private_, sealed_u)) {
      u_half_ = std::move(*u);
      ok = 1;
      TryCombine();
    }
  }
  response->payload = net::WireWriter().U32(ok).Take();
  co_return;
}

sim::Task Agent::HandleDeliverV(const net::Message& request, net::Message* response) {
  net::WireReader reader(request.payload);
  const crypto::Bytes sealed_v = reader.Blob();
  const crypto::Bytes sealed_payload = reader.Blob();
  uint32_t ok = 0;
  if (reader.AtEnd()) {
    if (auto v = crypto::EciesOpen(nk_private_, sealed_v)) {
      v_half_ = std::move(*v);
      sealed_payload_ = sealed_payload;
      ok = 1;
      TryCombine();
    }
  }
  response->payload = net::WireWriter().U32(ok).Take();
  co_return;
}

void Agent::TryCombine() {
  if (!u_half_ || !v_half_ || payload_ready_.is_set()) {
    return;
  }
  auto payload = OpenPayload(*u_half_, *v_half_, sealed_payload_);
  if (payload) {
    payload_ = std::move(*payload);
  } else {
    combine_failed_ = true;
  }
  payload_ready_.Set();
}

sim::Task Agent::AwaitPayload(TenantPayload* payload, bool* ok) {
  co_await payload_ready_;
  if (payload_.has_value()) {
    *payload = *payload_;
    *ok = true;
  } else {
    *ok = false;
  }
}

sim::Task Agent::HandleRevoke(const net::Message& request, net::Message* response) {
  net::WireReader reader(request.payload);
  const uint32_t peer = reader.U32();
  if (reader.AtEnd()) {
    // Cut the compromised node out of the mesh: drop its SA so further
    // ESP traffic fails authentication.
    machine_.ipsec().RemoveSa(peer);
    ++revocations_received_;
  }
  response->payload = net::WireWriter().U32(1).Take();
  co_return;
}

}  // namespace bolted::keylime
