// Keylime cloud verifier (CV): checks server integrity against tenant
// whitelists and runs continuous attestation (§5, §7.4).
//
// For each node the tenant registers, the verifier:
//   1. fetches the certified AIK (and agent NK) from the registrar,
//   2. sends a fresh nonce, receives a signed quote plus the boot event
//      log and IMA runtime measurement list,
//   3. verifies the signature, the nonce, that replaying the logs yields
//      exactly the quoted PCR values, and that every measurement is
//      whitelisted,
//   4. on first success, delivers the V key half and the sealed tenant
//      payload to the agent,
//   5. in continuous mode, repeats on an interval; a failure triggers the
//      revocation flow: every enclave peer is told to drop the
//      compromised node's IPsec SA, and the tenant callback fires.

#ifndef SRC_KEYLIME_VERIFIER_H_
#define SRC_KEYLIME_VERIFIER_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/crypto/drbg.h"
#include "src/crypto/p256.h"
#include "src/keylime/payload.h"
#include "src/keylime/registrar.h"
#include "src/net/rpc.h"
#include "src/tpm/event_log.h"
#include "src/tpm/tpm.h"

namespace bolted::sim {
class WorkerPool;
}  // namespace bolted::sim

namespace bolted::keylime {

struct Whitelist {
  std::set<crypto::Digest> boot;     // allowed boot-chain measurements
  std::set<crypto::Digest> runtime;  // allowed IMA template digests

  void AllowBoot(const crypto::Digest& digest) { boot.insert(digest); }
  void AllowRuntime(const crypto::Digest& digest) { runtime.insert(digest); }
};

struct VerificationResult {
  bool passed = false;
  std::string failure;  // empty when passed
};

// Classifies a VerificationResult failure string: transient failures
// (unreachable peers, lost RPCs) deserve a re-poll before quarantining the
// node; integrity failures (bad signature, log mismatch, unwhitelisted
// measurement) never do — the evidence is cryptographic, not circumstantial.
bool IsTransientFailure(std::string_view failure);

class Verifier {
 public:
  Verifier(sim::Simulation& sim, net::Endpoint& endpoint, net::Address registrar,
           uint64_t seed);
  // Out of line: worker_pool_ is forward-declared here.
  ~Verifier();

  net::Address address() const { return node_.address(); }

  struct NodeConfig {
    net::Address agent = 0;
    // Shared with the tenant, who may extend it at run time (application
    // rollout) — mirrors Keylime's tenant-pushed whitelist updates.
    std::shared_ptr<const Whitelist> whitelist;
    // Bootstrap delivery material (empty when the tenant handles its own
    // payload, e.g. attestation-only profiles).
    crypto::Bytes v_half;
    crypto::Bytes sealed_payload;
    // Enclave peers to notify on revocation.
    std::vector<net::Address> peers;
  };

  void AddNode(const std::string& name, NodeConfig config);
  void RemoveNode(const std::string& name);
  bool HasNode(const std::string& name) const { return nodes_.contains(name); }
  void UpdatePeers(const std::string& name, std::vector<net::Address> peers);

  // RPC policy for registrar lookups and quote requests.  The default
  // resends once after a 10 s timeout — enough to ride out a dropped frame
  // without masking a genuinely dead agent from the escalation logic.
  void SetCallOptions(net::CallOptions options) { call_options_ = options; }
  // Consecutive transient failures tolerated by the continuous loop before
  // the node is quarantined as if it had failed integrity checks.
  void SetMaxTransientStrikes(int strikes) { max_transient_strikes_ = strikes; }

  // One-shot attestation; delivers the payload on first success.  With an
  // obs::Registry attached, each round is a "keylime.verify" span on the
  // node's track plus pass/fail counters.
  sim::Task VerifyNode(const std::string& name, VerificationResult* result);

  // Fleet poll-round knobs.  Both are HOST-SIDE only: they change how much
  // CPU the signature checks cost, never the simulation's event sequence,
  // so verdicts and trace digests are byte-identical across any batch size
  // and worker count (the single-threaded oracle is workers = 1).
  struct FleetOptions {
    int workers = 1;     // deterministic worker pool for shard verification
    int batch_size = 64; // quotes per VerifyQuoteBatch call within a shard
  };
  void SetFleetOptions(const FleetOptions& options) { fleet_options_ = options; }

  // One poll round over the whole fleet: fans the nonce/quote exchanges out
  // concurrently, collects every quote that lands in the round into
  // per-shard batches (sharded by node id), verifies the signatures through
  // Tpm::VerifyQuoteBatch on the worker pool, and completes each node's
  // replay/whitelist pipeline in submission order.  results[i] is exactly
  // what VerifyNode(names[i], ...) would produce.
  sim::Task VerifyFleet(std::span<const std::string> names,
                        VerificationResult* results);

  // Drops the node's cached prepared AIK / NK.  The cache already keys on
  // the registrar's wire bytes, so a re-registered AIK can never validate
  // against the stale tables; this hook additionally frees the stale entry
  // eagerly when the control plane knows the node was re-provisioned.
  void InvalidateKeyCache(const std::string& name);

  // Continuous attestation loop.  Stops on violation (after running the
  // revocation flow) or StopContinuous().
  void StartContinuous(const std::string& name, sim::Duration interval);
  void StopContinuous(const std::string& name);

  using ViolationCallback =
      std::function<void(const std::string& node, const std::string& reason)>;
  void SetViolationCallback(ViolationCallback callback) {
    violation_callback_ = std::move(callback);
  }

  uint64_t verifications() const { return verifications_; }
  uint64_t violations() const { return violations_; }
  // Transient failures the continuous loop absorbed with a fast re-poll
  // instead of quarantining.
  uint64_t transient_retries() const { return transient_retries_; }
  // Prepared-AIK cache effectiveness: in steady-state polling every
  // verification after a node's first should hit.
  uint64_t aik_cache_hits() const { return aik_cache_hits_; }
  uint64_t aik_cache_misses() const { return aik_cache_misses_; }
  // Quotes whose signatures went through the batched multi-scalar path.
  uint64_t batched_verifications() const { return batched_verifications_; }
  // Cumulative VerifyBatch statistics across all fleet rounds.
  const crypto::P256::BatchStats& batch_stats() const { return batch_stats_; }
  // Golden boot-log cache (decode + replay once per distinct log).
  uint64_t boot_log_cache_hits() const { return boot_log_cache_hits_; }
  uint64_t boot_log_cache_misses() const { return boot_log_cache_misses_; }

 private:
  struct NodeState {
    NodeConfig config;
    bool payload_delivered = false;
    bool continuous = false;
    uint64_t generation = 0;  // bumps on StopContinuous to kill old loops
    // Incremental-attestation cursor: how much of the node's IMA
    // measurement list has been validated, and the PCR-10 value that
    // prefix replays to.  Only the suffix travels on each quote.
    uint64_t ima_seen = 0;
    crypto::Digest ima_pcr{};
    // Consecutive transient-failure count (continuous mode); resets on any
    // pass.
    int transient_strikes = 0;
    // Decoded-key cache, keyed on the registrar's wire encodings: the AIK
    // is decoded, curve-checked, and equipped with verify tables once, not
    // on every poll.  A changed encoding (re-registration) misses and
    // rebuilds.
    crypto::Bytes aik_wire;
    std::optional<crypto::P256::PreparedKey> aik_prepared;
    crypto::Bytes nk_wire;
    std::optional<crypto::EcPoint> nk_decoded;
  };

  // A boot event log decoded and replayed exactly once per distinct wire
  // encoding (the whole fleet boots the same golden firmware, so steady
  // rounds hit this cache 4096 times per decode).  Entries are immutable
  // and pointer-stable once inserted.
  struct BootReplay {
    tpm::EventLog log;
    std::array<crypto::Digest, tpm::kNumPcrs> pcrs{};
  };

  // Everything a node's quote exchange produced ahead of the signature
  // check: either an early failure (exact VerifyNode failure string) or
  // the parsed quote plus decoded logs.
  struct QuoteExchange {
    std::string failure;  // nonempty = failed before the signature stage
    std::optional<tpm::Quote> quote;
    const BootReplay* boot = nullptr;
    std::optional<tpm::EventLog> ima_log;
    uint64_t ima_total = 0;
    crypto::Bytes nonce;
  };

  sim::Task VerifyNodeImpl(const std::string& name, VerificationResult* result);
  sim::Task VerifyNodeTraced(const std::string& name, VerificationResult* result);
  // Stage A: registrar keys, nonce, quote RPC, parsing, and every check
  // that precedes the signature verification, in VerifyNode's order.
  sim::Task FetchQuote(const std::string& name, NodeState& state,
                       QuoteExchange* out);
  // Stage B: everything after the signature verdict — freshness, replay,
  // whitelists, payload delivery, cursor commit.
  sim::Task FinishVerification(const std::string& name, NodeState& state,
                               QuoteExchange& ex, bool signature_ok,
                               VerificationResult* result);
  const BootReplay* ReplayBootLog(const crypto::Bytes& wire);
  sim::Task ContinuousLoop(std::string name, sim::Duration interval,
                           uint64_t generation);
  sim::Task Revoke(const std::string& name);
  sim::Task NotifyRevocation(net::Address peer, net::Address bad);
  sim::Task DeliverPayload(const std::string& name, const crypto::EcPoint& nk,
                           bool* ok);

  sim::Simulation& sim_;
  net::RpcNode node_;
  net::Address registrar_;
  crypto::Drbg drbg_;
  std::map<std::string, NodeState> nodes_;
  ViolationCallback violation_callback_;
  net::CallOptions call_options_{.timeout = sim::Duration::Seconds(10),
                                 .max_attempts = 2};
  int max_transient_strikes_ = 3;
  FleetOptions fleet_options_;
  // Persistent worker team for the fleet poll rounds (sim::WorkerPool,
  // the sharded-simulation runtime's pool): built lazily on the first
  // multi-worker round and kept across rounds, so steady-state polling
  // pays no thread spawn/join.  Rebuilt only when `workers` changes.
  std::unique_ptr<sim::WorkerPool> worker_pool_;
  // Keyed on SHA-256 of the log's wire bytes; std::map keeps entries
  // pointer-stable for the QuoteExchange references.  Bounded by the number
  // of distinct firmware images the fleet runs, not by fleet size.
  std::map<crypto::Digest, BootReplay> boot_log_cache_;
  uint64_t verifications_ = 0;
  uint64_t violations_ = 0;
  uint64_t transient_retries_ = 0;
  uint64_t aik_cache_hits_ = 0;
  uint64_t aik_cache_misses_ = 0;
  uint64_t batched_verifications_ = 0;
  crypto::P256::BatchStats batch_stats_{};
  uint64_t boot_log_cache_hits_ = 0;
  uint64_t boot_log_cache_misses_ = 0;
};

}  // namespace bolted::keylime

#endif  // SRC_KEYLIME_VERIFIER_H_
