#include "src/provision/foreman.h"

namespace bolted::provision {
namespace {

// True when the current attempt of `phase` should count as failed.
bool Faulted(const ForemanOptions& options, std::string_view phase, int attempt) {
  return options.phase_fault && options.phase_fault(phase, attempt);
}

}  // namespace

sim::Task ForemanProvision(machine::Machine& machine, const ForemanOptions& options,
                           PhaseTrace* trace, bool* ok) {
  sim::Simulation& sim = machine.simulation();
  if (ok != nullptr) {
    *ok = false;
  }
  const int max_attempts =
      options.max_phase_attempts < 1 ? 1 : options.max_phase_attempts;

  // Each phase redoes its full work per attempt — a failed install step
  // leaves nothing resumable behind — with a linearly growing backoff
  // between tries.  The first phase to exhaust its attempts aborts the
  // flow; cleanup happens at the bottom.
  enum Phase { kPost, kPxe, kInstall, kPost2, kBoot, kDone };
  bool failed = false;
  for (int phase = kPost; phase != kDone && !failed; ++phase) {
    static constexpr std::string_view kNames[] = {
        "POST", "PXE installer", "install to disk", "POST (2nd)", "OS boot"};
    const std::string_view name = kNames[phase];
    if (phase == kPost2) {
      // Reboot into the installed system: POST all over again.
      machine.PowerCycleReset();
    }
    bool phase_ok = false;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
      if (attempt > 1) {
        co_await sim::Delay(sim, options.retry_backoff * (attempt - 1));
      }
      switch (phase) {
        case kPost:
        case kPost2:
          co_await machine.PowerOnSelfTest();
          break;
        case kPxe:
          // PXE-boot the installer image.
          co_await machine.endpoint().rx().Consume(
              static_cast<double>(options.installer_image_bytes));
          break;
        case kInstall: {
          // Install: stream the full stack over the network onto the local
          // disk; network fetch and disk write overlap, the slower side
          // dominates.
          sim::TaskGroup group(sim);
          if (options.chunked_fetch) {
            group.Spawn(options.chunked_fetch(options.install_bytes));
          } else {
            group.Spawn(machine.endpoint().rx().Consume(
                static_cast<double>(options.install_bytes)));
          }
          group.Spawn(machine.local_disk().AccountWrite(options.install_bytes));
          co_await group.WaitAll();
          break;
        }
        case kBoot:
          // Boot from local disk: scattered reads.
          co_await machine.local_disk().AccountRandomRead(options.boot_read_bytes,
                                                          128 * 1024);
          break;
        default:
          break;
      }
      if (!Faulted(options, name, attempt)) {
        phase_ok = true;
        break;
      }
    }
    if (!phase_ok) {
      failed = true;
      break;
    }
    trace->Mark(std::string(name));
  }

  if (failed) {
    // Abort with cleanup: whatever half-installed state reached the disk
    // or DRAM is invalidated by the power cycle; the node returns to the
    // pool off, not wedged mid-install.
    machine.PowerCycleReset();
    machine.set_power_state(machine::PowerState::kOff);
    co_return;
  }
  machine.set_power_state(machine::PowerState::kTenantOs);
  if (ok != nullptr) {
    *ok = true;
  }
}

}  // namespace bolted::provision
