#include "src/provision/foreman.h"

namespace bolted::provision {

sim::Task ForemanProvision(machine::Machine& machine, const ForemanOptions& options,
                           PhaseTrace* trace) {
  sim::Simulation& sim = machine.simulation();

  // First POST (vendor firmware).
  co_await machine.PowerOnSelfTest();
  trace->Mark("POST");

  // PXE-boot the installer image.
  co_await machine.endpoint().rx().Consume(
      static_cast<double>(options.installer_image_bytes));
  trace->Mark("PXE installer");

  // Install: stream the full stack over the network onto the local disk;
  // network fetch and disk write overlap, the slower side dominates.
  {
    sim::TaskGroup group(sim);
    group.Spawn(machine.endpoint().rx().Consume(
        static_cast<double>(options.install_bytes)));
    group.Spawn(machine.local_disk().AccountWrite(options.install_bytes));
    co_await group.WaitAll();
  }
  trace->Mark("install to disk");

  // Reboot into the installed system: POST all over again.
  machine.PowerCycleReset();
  co_await machine.PowerOnSelfTest();
  trace->Mark("POST (2nd)");

  // Boot from local disk: scattered reads.
  co_await machine.local_disk().AccountRandomRead(options.boot_read_bytes,
                                                  128 * 1024);
  machine.set_power_state(machine::PowerState::kTenantOs);
  trace->Mark("OS boot");
}

}  // namespace bolted::provision
