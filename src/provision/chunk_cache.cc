#include "src/provision/chunk_cache.h"

#include <algorithm>

#include "src/obs/obs.h"

namespace bolted::provision {

RackChunkCache::RackChunkCache(sim::Simulation& sim, net::Endpoint& endpoint,
                               storage::ObjectStore& origin, uint64_t capacity_bytes)
    : sim_(sim), node_(sim, endpoint), origin_(origin),
      capacity_bytes_(capacity_bytes) {
  node_.RegisterHandler(std::string(net::kRpcChunkFetch),
                        [this](const net::Message& req, net::Message* resp) {
                          return HandleFetch(req, resp);
                        });
  node_.RegisterHandler(std::string(net::kRpcChunkHave),
                        [this](const net::Message& req, net::Message* resp) {
                          return HandleHave(req, resp);
                        });
  node_.Start();
}

void RackChunkCache::Insert(const crypto::Digest& digest, uint64_t bytes) {
  auto& line = cache_[digest];
  if (line.bytes == 0) {
    cached_bytes_ += bytes;
  }
  line.bytes = bytes;
  line.lru = ++lru_tick_;
  while (cached_bytes_ > capacity_bytes_ && cache_.size() > 1) {
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->first != digest &&
          (victim == cache_.end() || it->second.lru < victim->second.lru)) {
        victim = it;
      }
    }
    if (victim == cache_.end()) {
      break;
    }
    cached_bytes_ -= victim->second.bytes;
    cache_.erase(victim);
  }
}

net::Address RackChunkCache::PickHolder(const crypto::Digest& digest,
                                        net::Address requester,
                                        net::Address exclude) const {
  const auto it = holders_.find(digest);
  if (it == holders_.end()) {
    return 0;
  }
  for (const net::Address holder : it->second) {
    if (holder == requester || holder == exclude ||
        quarantine_.contains({digest, holder})) {
      continue;
    }
    return holder;
  }
  return 0;
}

sim::Task RackChunkCache::HandleFetch(const net::Message& request,
                                      net::Message* response) {
  net::ChunkFetchRequest req;
  if (!net::ChunkFetchRequest::Decode(
          crypto::ByteView(request.payload.data(), request.payload.size()), &req)) {
    response->kind = "chunk.error";
    co_return;
  }
  if (req.exclude_peer != 0) {
    // The requester verified the peer's serve and it did not hash to the
    // chunk digest: poison that holder entry so nobody is sent there again.
    if (quarantine_.insert({req.digest, req.exclude_peer}).second) {
      ++stats_.quarantined;
      obs::Count(sim_, "chunks.quarantine");
    }
    auto holder_it = holders_.find(req.digest);
    if (holder_it != holders_.end()) {
      std::erase(holder_it->second, req.exclude_peer);
    }
  }

  net::ChunkFetchResponse resp;
  resp.served = req.digest;
  const auto cached = cache_.find(req.digest);
  if (cached != cache_.end()) {
    cached->second.lru = ++lru_tick_;
    ++stats_.hits;
    obs::Count(sim_, "chunks.rack_hit");
    resp.status = net::ChunkFetchStatus::kInlineHit;
    response->payload = resp.Encode();
    response->wire_bytes = req.bytes;
    co_return;
  }

  // Not cached: hand the requester to a rack peer that holds it (unless a
  // prior serve got that peer quarantined for this digest).
  const net::Address holder = PickHolder(req.digest, request.src, req.exclude_peer);
  if (holder != 0) {
    ++stats_.peer_redirects;
    obs::Count(sim_, "chunks.peer_redirect");
    resp.status = net::ChunkFetchStatus::kRedirect;
    resp.peer = holder;
    response->payload = resp.Encode();
    co_return;
  }

  // Cold miss: single-flight to the origin — concurrent fetchers of the
  // same chunk ride one object-store read.
  const auto flight = inflight_.find(req.digest);
  if (flight != inflight_.end()) {
    std::shared_ptr<sim::Event> done = flight->second;
    ++stats_.coalesced;
    obs::Count(sim_, "chunks.coalesced");
    co_await done->Wait();
    resp.status = net::ChunkFetchStatus::kInlineHit;
    response->payload = resp.Encode();
    response->wire_bytes = req.bytes;
    co_return;
  }
  std::shared_ptr<sim::Event> done = std::make_shared<sim::Event>(sim_);
  inflight_[req.digest] = done;
  co_await origin_.ReadObject(storage::ChunkObjectId(req.digest), req.bytes);
  Insert(req.digest, req.bytes);
  ++stats_.origin_fetches;
  stats_.origin_bytes += req.bytes;
  obs::Count(sim_, "chunks.origin_fetch");
  obs::Count(sim_, "chunks.origin_bytes", req.bytes);
  inflight_.erase(req.digest);
  done->Set();
  resp.status = net::ChunkFetchStatus::kInlineOrigin;
  response->payload = resp.Encode();
  response->wire_bytes = req.bytes;
}

sim::Task RackChunkCache::HandleHave(const net::Message& request,
                                     net::Message* response) {
  net::WireReader reader(request.payload);
  const crypto::Digest digest = reader.Digest();
  if (!reader.AtEnd()) {
    response->kind = "chunk.error";
    co_return;
  }
  if (!quarantine_.contains({digest, request.src})) {
    auto& list = holders_[digest];
    if (std::find(list.begin(), list.end(), request.src) == list.end()) {
      list.push_back(request.src);
    }
  }
  response->payload = net::WireWriter().U32(1).Take();
  co_return;
}

ChunkFetcher::ChunkFetcher(sim::Simulation& sim, net::RpcNode& rpc,
                           net::Address rack_cache, net::SharedResource* verify_cpu)
    : sim_(sim), rpc_(rpc), rack_cache_(rack_cache), verify_cpu_(verify_cpu) {}

void ChunkFetcher::Start() {
  rpc_.RegisterHandler(std::string(net::kRpcChunkGet),
                       [this](const net::Message& req, net::Message* resp) {
                         return HandleGet(req, resp);
                       });
}

sim::Task ChunkFetcher::HandleGet(const net::Message& request,
                                  net::Message* response) {
  net::WireReader reader(request.payload);
  const crypto::Digest digest = reader.Digest();
  const uint64_t bytes = reader.U64();
  if (!reader.AtEnd()) {
    response->kind = "chunk.error";
    co_return;
  }
  // Echo the digest of the content actually served.  A corrupt (or
  // chunk-less) peer sends garbage, whose hash cannot equal the requested
  // digest — that is exactly what the requester's verification sees.
  crypto::Digest served = digest;
  if (corrupt_serves_ || !held_.contains(digest)) {
    served[0] ^= 0x01;
  }
  response->payload = net::WireWriter().Digest(served).Take();
  response->wire_bytes = bytes;
  co_return;
}

sim::Task ChunkFetcher::CallFetch(crypto::Digest digest, uint64_t bytes,
                                  net::Address exclude,
                                  net::ChunkFetchResponse* out, bool* ok) {
  *ok = false;
  net::ChunkFetchRequest req;
  req.digest = digest;
  req.bytes = bytes;
  req.exclude_peer = exclude;
  net::Message request;
  request.kind = std::string(net::kRpcChunkFetch);
  request.payload = req.Encode();
  net::Message response;
  bool rpc_ok = false;
  co_await rpc_.Call(rack_cache_, std::move(request), &response, &rpc_ok);
  if (!rpc_ok || response.kind == "chunk.error") {
    co_return;
  }
  *ok = net::ChunkFetchResponse::Decode(
      crypto::ByteView(response.payload.data(), response.payload.size()), out);
}

sim::Task ChunkFetcher::VerifyServed(const crypto::Digest& expected,
                                     const crypto::Digest& served, uint64_t bytes,
                                     bool* ok) {
  // Recomputing SHA-256 over the received chunk rides the machine's
  // crypto core; the comparison itself is the digest echo check.
  if (verify_cpu_ != nullptr) {
    co_await verify_cpu_->Consume(static_cast<double>(bytes));
  }
  *ok = served == expected;
}

sim::Task ChunkFetcher::RegisterHave(crypto::Digest digest) {
  net::Message request;
  request.kind = std::string(net::kRpcChunkHave);
  request.payload = net::WireWriter().Digest(digest).Take();
  net::Message response;
  bool rpc_ok = false;
  co_await rpc_.Call(rack_cache_, std::move(request), &response, &rpc_ok);
}

sim::Task ChunkFetcher::FetchChunk(crypto::Digest digest, uint64_t bytes, bool* ok) {
  *ok = false;
  net::ChunkFetchResponse resp;
  bool fetch_ok = false;
  co_await CallFetch(digest, bytes, /*exclude=*/0, &resp, &fetch_ok);
  if (!fetch_ok) {
    co_return;
  }

  if (resp.status == net::ChunkFetchStatus::kRedirect) {
    const net::Address peer = resp.peer;
    net::Message request;
    request.kind = std::string(net::kRpcChunkGet);
    request.payload = net::WireWriter().Digest(digest).U64(bytes).Take();
    net::Message response;
    bool rpc_ok = false;
    co_await rpc_.Call(peer, std::move(request), &response, &rpc_ok);
    bool verified = false;
    if (rpc_ok && response.kind != "chunk.error") {
      net::WireReader reader(response.payload);
      const crypto::Digest served = reader.Digest();
      if (reader.AtEnd()) {
        co_await VerifyServed(digest, served, bytes, &verified);
      }
    }
    if (!verified) {
      // Bad (or missing) peer serve: report it so the cache quarantines
      // the holder entry, and take the fallback inline path.
      ++stats_.mismatches;
      obs::Count(sim_, "chunks.peer_mismatch");
      fetch_ok = false;
      co_await CallFetch(digest, bytes, /*exclude=*/peer, &resp, &fetch_ok);
      if (!fetch_ok || resp.status == net::ChunkFetchStatus::kRedirect) {
        co_return;
      }
      bool inline_ok = false;
      co_await VerifyServed(digest, resp.served, bytes, &inline_ok);
      if (!inline_ok) {
        co_return;
      }
    } else {
      ++stats_.peer_fetches;
    }
  } else {
    bool inline_ok = false;
    co_await VerifyServed(digest, resp.served, bytes, &inline_ok);
    if (!inline_ok) {
      co_return;
    }
  }

  held_.insert(digest);
  ++stats_.fetched;
  stats_.fetched_bytes += bytes;
  co_await RegisterHave(digest);
  *ok = true;
}

sim::Task ChunkFetcher::FetchPrefix(const storage::ChunkManifest& manifest,
                                    uint64_t bytes, bool* ok) {
  *ok = false;
  const uint64_t limit = std::min(bytes, manifest.image_bytes);
  uint64_t fetched = 0;
  for (uint64_t i = 0; i < manifest.chunks.size() && fetched < limit; ++i) {
    const uint64_t chunk_bytes = manifest.ChunkBytes(i);
    crypto::Digest digest = manifest.chunks[i];
    bool chunk_ok = false;
    co_await FetchChunk(digest, chunk_bytes, &chunk_ok);
    if (!chunk_ok) {
      co_return;
    }
    fetched += chunk_bytes;
  }
  *ok = true;
}

}  // namespace bolted::provision
