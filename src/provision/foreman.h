// Foreman-style stateful provisioning baseline (Fig. 4's left bar).
//
// Foreman installs the OS onto the server's local disk: PXE-boot an
// installer, copy the full software stack over the network to disk, then
// reboot (paying POST a second time) and boot from local disk.  No
// attestation, no security procedures — this is the fastest *stateful*
// baseline, which Bolted's diskless flow beats while adding security.

#ifndef SRC_PROVISION_FOREMAN_H_
#define SRC_PROVISION_FOREMAN_H_

#include <functional>
#include <string_view>

#include "src/machine/machine.h"
#include "src/provision/phase_trace.h"

namespace bolted::provision {

struct ForemanOptions {
  uint64_t installer_image_bytes = 300ull << 20;  // netboot installer
  uint64_t install_bytes = 12ull << 30;           // OS + packages to disk
  uint64_t boot_read_bytes = 400ull << 20;        // what the OS reads to boot
  net::Address provisioning_server = 0;

  // Failure handling: each phase is attempted up to max_phase_attempts
  // times, waiting retry_backoff * attempt between tries.  phase_fault (a
  // deterministic hook installed by the fault layer) is consulted per
  // attempt; returning true fails that attempt after its work was done —
  // the usual Foreman failure mode of a timed-out install step.
  int max_phase_attempts = 1;
  sim::Duration retry_backoff = sim::Duration::Seconds(5);
  std::function<bool(std::string_view phase, int attempt)> phase_fault;

  // When set, the install phase's network side pulls content-addressed
  // chunks through the rack cache (DESIGN.md §14) instead of streaming
  // `install_bytes` from the provisioning server; the disk write still
  // overlaps.  The hook receives the byte count to fetch.
  std::function<sim::Task(uint64_t bytes)> chunked_fetch;
};

// Runs the full Foreman flow on `machine`; phases land in *trace.  When a
// phase exhausts its attempts the flow aborts cleanly: the machine is
// power-cycled back to a scrubbed-off state and *ok (if given) is false.
sim::Task ForemanProvision(machine::Machine& machine, const ForemanOptions& options,
                           PhaseTrace* trace, bool* ok = nullptr);

}  // namespace bolted::provision

#endif  // SRC_PROVISION_FOREMAN_H_
