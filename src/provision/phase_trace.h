// Phase timing traces for provisioning flows (the Fig. 4 breakdown).
//
// Since the obs layer landed, PhaseTrace is a thin façade over spans: each
// Mark() still appends a (name, duration) row — the shape the Fig. 4
// benches print — and also emits a retroactive obs complete-span covering
// the phase, so a Registry attached to the simulation gets a real
// chrome-trace of every provisioning run for free.  With no Registry (or
// with BOLTED_OBS=0) the row-recording behaviour is unchanged.

#ifndef SRC_PROVISION_PHASE_TRACE_H_
#define SRC_PROVISION_PHASE_TRACE_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/obs/obs.h"
#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace bolted::provision {

// Marking a default-constructed trace that was never Start()ed is a bug in
// the calling flow (the phases silently vanish), so debug builds abort.
// BOLTED_STRICT_CHECKS forces the check on in optimized builds — the
// regression test compiles against it so the misuse path stays covered
// even when NDEBUG strips plain asserts.
#if !defined(NDEBUG) || defined(BOLTED_STRICT_CHECKS)
#define BOLTED_PHASE_TRACE_CHECKS 1
#else
#define BOLTED_PHASE_TRACE_CHECKS 0
#endif

class PhaseTrace {
 public:
  // Default-constructed traces record nothing until Start() is called;
  // Mark() before Start() is misuse (see above).
  PhaseTrace() = default;
  explicit PhaseTrace(sim::Simulation& sim) : sim_(&sim), last_(sim.now()) {}

  // Re-Start() rebinds the trace and discards previously recorded phases.
  // `actor` names the obs track phase spans land on (e.g. the node being
  // provisioned); it defaults to a shared "provision" track.
  void Start(sim::Simulation& sim, std::string actor = {}) {
    sim_ = &sim;
    last_ = sim.now();
    actor_ = std::move(actor);
    phases_.clear();
  }

  // Records the time elapsed since the previous mark under `name`.
  void Mark(const std::string& name) {
    if (sim_ == nullptr) {
#if BOLTED_PHASE_TRACE_CHECKS
      std::fprintf(stderr,
                   "PhaseTrace::Mark(\"%s\") on a trace that was never "
                   "Start()ed\n",
                   name.c_str());
      std::abort();
#endif
      return;
    }
    const sim::Time now = sim_->now();
    phases_.push_back(Phase{name, now - last_});
    obs::CompleteSince(*sim_, name, "provision",
                       actor_.empty() ? "provision" : actor_, last_);
    last_ = now;
  }

  struct Phase {
    std::string name;
    sim::Duration duration;
  };

  const std::vector<Phase>& phases() const { return phases_; }
  sim::Duration total() const {
    sim::Duration sum = sim::Duration::Zero();
    for (const Phase& phase : phases_) {
      sum += phase.duration;
    }
    return sum;
  }
  sim::Duration DurationOf(const std::string& name) const {
    for (const Phase& phase : phases_) {
      if (phase.name == name) {
        return phase.duration;
      }
    }
    return sim::Duration::Zero();
  }
  std::string ToString() const {
    std::string out;
    for (const Phase& phase : phases_) {
      out += "  " + phase.name + ": " + phase.duration.ToString() + "\n";
    }
    out += "  total: " + total().ToString() + "\n";
    return out;
  }

 private:
  sim::Simulation* sim_ = nullptr;
  sim::Time last_;
  std::string actor_;
  std::vector<Phase> phases_;
};

}  // namespace bolted::provision

#endif  // SRC_PROVISION_PHASE_TRACE_H_
