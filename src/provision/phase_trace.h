// Phase timing traces for provisioning flows (the Fig. 4 breakdown).

#ifndef SRC_PROVISION_PHASE_TRACE_H_
#define SRC_PROVISION_PHASE_TRACE_H_

#include <string>
#include <vector>

#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace bolted::provision {

class PhaseTrace {
 public:
  // Default-constructed traces record nothing until Start() is called.
  PhaseTrace() = default;
  explicit PhaseTrace(sim::Simulation& sim) : sim_(&sim), last_(sim.now()) {}

  void Start(sim::Simulation& sim) {
    sim_ = &sim;
    last_ = sim.now();
    phases_.clear();
  }

  // Records the time elapsed since the previous mark under `name`.
  void Mark(const std::string& name) {
    if (sim_ == nullptr) {
      return;
    }
    const sim::Time now = sim_->now();
    phases_.push_back(Phase{name, now - last_});
    last_ = now;
  }

  struct Phase {
    std::string name;
    sim::Duration duration;
  };

  const std::vector<Phase>& phases() const { return phases_; }
  sim::Duration total() const {
    sim::Duration sum = sim::Duration::Zero();
    for (const Phase& phase : phases_) {
      sum += phase.duration;
    }
    return sum;
  }
  sim::Duration DurationOf(const std::string& name) const {
    for (const Phase& phase : phases_) {
      if (phase.name == name) {
        return phase.duration;
      }
    }
    return sim::Duration::Zero();
  }
  std::string ToString() const {
    std::string out;
    for (const Phase& phase : phases_) {
      out += "  " + phase.name + ": " + phase.duration.ToString() + "\n";
    }
    out += "  total: " + total().ToString() + "\n";
    return out;
  }

 private:
  sim::Simulation* sim_ = nullptr;
  sim::Time last_;
  std::vector<Phase> phases_;
};

}  // namespace bolted::provision

#endif  // SRC_PROVISION_PHASE_TRACE_H_
