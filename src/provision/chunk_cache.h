// Rack-local content-addressed chunk distribution (DESIGN.md §14).
//
// The paper's provisioning path pulls every byte of every node's image
// from the central object store — the Fig. 5 scaling wall.  This layer
// makes image distribution content-addressed and rack-local:
//
//   * RackChunkCache — one RPC service per top-of-rack switch.  It holds
//     an LRU byte-budgeted cache of chunks, answers `chunk.fetch` either
//     inline (cache hit, or a single-flight origin read on a cold miss)
//     or with a redirect to a rack peer that already holds the chunk,
//     maintains the holder index (`chunk.have`), and quarantines
//     (digest, peer) entries a requester reports as serving bad content.
//     Concurrent fetchers of the same cold chunk coalesce onto one
//     origin read.
//
//   * ChunkFetcher — the node side.  Fetches chunks through the rack
//     cache, verifies the digest of whatever was served (recomputing
//     SHA-256 over received content, modeled by the digest echo), falls
//     back to the cache with an exclusion on a bad peer serve, serves
//     its own held chunks to rack peers over `chunk.get`, and registers
//     verified chunks with the cache.
//
// Every transfer rides the existing net fabric (wire_bytes on the RPC
// responses), so rack locality, uplink contention, and NIC sharing come
// out of the same fluid models as the rest of the data plane.

#ifndef SRC_PROVISION_CHUNK_CACHE_H_
#define SRC_PROVISION_CHUNK_CACHE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/net/chunk_wire.h"
#include "src/net/rpc.h"
#include "src/storage/chunks.h"
#include "src/storage/object_store.h"

namespace bolted::provision {

class RackChunkCache {
 public:
  struct Stats {
    uint64_t hits = 0;            // served inline from the cache
    uint64_t coalesced = 0;       // joined an in-flight origin read
    uint64_t origin_fetches = 0;  // cold misses that read the origin
    uint64_t origin_bytes = 0;    // bytes those reads pulled
    uint64_t peer_redirects = 0;  // answered with a rack peer
    uint64_t quarantined = 0;     // (digest, peer) entries poisoned
  };

  RackChunkCache(sim::Simulation& sim, net::Endpoint& endpoint,
                 storage::ObjectStore& origin, uint64_t capacity_bytes);

  net::Address address() const { return node_.address(); }
  const Stats& stats() const { return stats_; }
  bool Quarantined(const crypto::Digest& digest, net::Address peer) const {
    return quarantine_.contains({digest, peer});
  }
  bool Holds(const crypto::Digest& digest) const { return cache_.contains(digest); }

 private:
  struct CacheLine {
    uint64_t bytes = 0;
    uint64_t lru = 0;
  };

  sim::Task HandleFetch(const net::Message& request, net::Message* response);
  sim::Task HandleHave(const net::Message& request, net::Message* response);

  void Insert(const crypto::Digest& digest, uint64_t bytes);
  net::Address PickHolder(const crypto::Digest& digest, net::Address requester,
                          net::Address exclude) const;

  sim::Simulation& sim_;
  net::RpcNode node_;
  storage::ObjectStore& origin_;
  uint64_t capacity_bytes_;
  uint64_t cached_bytes_ = 0;
  uint64_t lru_tick_ = 0;

  std::map<crypto::Digest, CacheLine> cache_;
  std::map<crypto::Digest, std::vector<net::Address>> holders_;
  std::set<std::pair<crypto::Digest, net::Address>> quarantine_;
  // Single-flight: followers of an in-flight origin read wait here.
  std::map<crypto::Digest, std::shared_ptr<sim::Event>> inflight_;
  Stats stats_;
};

class ChunkFetcher {
 public:
  struct Stats {
    uint64_t fetched = 0;
    uint64_t fetched_bytes = 0;
    uint64_t peer_fetches = 0;
    uint64_t mismatches = 0;  // bad peer serves detected and recovered
  };

  // `verify_cpu` (optional) charges the digest-verification throughput —
  // typically the machine's crypto core.  Start() registers the peer-serve
  // handler on `rpc`; the fetcher must outlive any in-flight handler
  // (park it like a keylime::Agent, do not destroy it mid-flight).
  ChunkFetcher(sim::Simulation& sim, net::RpcNode& rpc, net::Address rack_cache,
               net::SharedResource* verify_cpu);

  void Start();

  // Fetches and digest-verifies one chunk; *ok=false only when the rack
  // cache itself was unreachable or served a digest that does not verify.
  sim::Task FetchChunk(crypto::Digest digest, uint64_t bytes, bool* ok);

  // Fetches the first `bytes` of a manifest's image (the boot working
  // set), chunk by chunk.
  sim::Task FetchPrefix(const storage::ChunkManifest& manifest, uint64_t bytes,
                        bool* ok);

  const Stats& stats() const { return stats_; }
  // Test hook: serve corrupted content to peers (the echoed digest is the
  // hash of what was actually sent, so it will not verify).
  void set_corrupt_serves(bool corrupt) { corrupt_serves_ = corrupt; }
  bool Holds(const crypto::Digest& digest) const { return held_.contains(digest); }

 private:
  sim::Task HandleGet(const net::Message& request, net::Message* response);
  sim::Task CallFetch(crypto::Digest digest, uint64_t bytes, net::Address exclude,
                      net::ChunkFetchResponse* out, bool* ok);
  sim::Task VerifyServed(const crypto::Digest& expected,
                         const crypto::Digest& served, uint64_t bytes, bool* ok);
  sim::Task RegisterHave(crypto::Digest digest);

  sim::Simulation& sim_;
  net::RpcNode& rpc_;
  net::Address rack_cache_;
  net::SharedResource* verify_cpu_;
  std::set<crypto::Digest> held_;
  bool corrupt_serves_ = false;
  Stats stats_;
};

}  // namespace bolted::provision

#endif  // SRC_PROVISION_CHUNK_CACHE_H_
