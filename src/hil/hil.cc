#include "src/hil/hil.h"

namespace bolted::hil {

Hil::Hil(net::Network& fabric) : fabric_(fabric) {}

void Hil::RegisterNode(const std::string& node, net::Address port, BmcHandle* bmc) {
  nodes_[node] = Node{port, bmc, std::nullopt, {}};
}

void Hil::SetNodeMetadata(const std::string& node, const std::string& key,
                          const std::string& value) {
  const auto it = nodes_.find(node);
  if (it != nodes_.end()) {
    it->second.metadata[key] = value;
  }
}

std::optional<std::string> Hil::GetNodeMetadata(const std::string& node,
                                                const std::string& key) const {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    return std::nullopt;
  }
  const auto meta = it->second.metadata.find(key);
  if (meta == it->second.metadata.end()) {
    return std::nullopt;
  }
  return meta->second;
}

void Hil::PublishPlatformMeasurement(const crypto::Digest& digest,
                                     const std::string& description) {
  whitelist_.push_back(PlatformMeasurement{digest, description});
}

bool Hil::CreateProject(const std::string& project) {
  return projects_.insert(project).second;
}

bool Hil::DeleteProject(const std::string& project) {
  if (!projects_.contains(project)) {
    return false;
  }
  for (const auto& [name, node] : nodes_) {
    if (node.owner == project) {
      return false;
    }
  }
  for (const auto& [name, record] : networks_) {
    if (record.owner == project) {
      return false;
    }
  }
  projects_.erase(project);
  return true;
}

bool Hil::ConnectNode(const std::string& project, const std::string& node) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.owner.has_value() ||
      !projects_.contains(project)) {
    return false;
  }
  it->second.owner = project;
  return true;
}

bool Hil::DetachNode(const std::string& project, const std::string& node) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.owner != project) {
    return false;
  }
  // Scorched-earth release: off the wire, power-cycled.
  fabric_.DetachFromAllVlans(it->second.port);
  if (it->second.bmc != nullptr) {
    it->second.bmc->PowerCycle();
  }
  it->second.owner.reset();
  return true;
}

std::optional<std::string> Hil::NodeOwner(const std::string& node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? std::nullopt : it->second.owner;
}

std::vector<std::string> Hil::FreeNodes() const {
  std::vector<std::string> free;
  for (const auto& [name, node] : nodes_) {
    if (!node.owner.has_value() && node.bmc != nullptr) {
      free.push_back(name);
    }
  }
  return free;
}

net::VlanId Hil::CreateNetwork(const std::string& project, const std::string& network) {
  if (!projects_.contains(project) || networks_.contains(network)) {
    return 0;
  }
  const net::VlanId vlan = next_vlan_++;
  networks_[network] = NetworkRecord{vlan, project, {}};
  return vlan;
}

net::VlanId Hil::CreatePublicNetwork(const std::string& network) {
  if (networks_.contains(network)) {
    return 0;
  }
  const net::VlanId vlan = next_vlan_++;
  networks_[network] = NetworkRecord{vlan, std::nullopt, {}};
  return vlan;
}

bool Hil::DeleteNetwork(const std::string& project, const std::string& network) {
  const auto it = networks_.find(network);
  if (it == networks_.end() || it->second.owner != project) {
    return false;
  }
  networks_.erase(it);
  return true;
}

bool Hil::GrantNetworkAccess(const std::string& network, const std::string& project) {
  const auto it = networks_.find(network);
  if (it == networks_.end() || !projects_.contains(project)) {
    return false;
  }
  it->second.granted.insert(project);
  return true;
}

bool Hil::ProjectMayUse(const std::string& project,
                        const NetworkRecord& record) const {
  if (record.owner == project) {
    return true;
  }
  return record.granted.contains(project);
}

bool Hil::ConnectNodeToNetwork(const std::string& project, const std::string& node,
                               const std::string& network) {
  const auto node_it = nodes_.find(node);
  const auto net_it = networks_.find(network);
  if (node_it == nodes_.end() || net_it == networks_.end()) {
    return false;
  }
  if (node_it->second.owner != project || !ProjectMayUse(project, net_it->second)) {
    return false;
  }
  fabric_.AttachToVlan(node_it->second.port, net_it->second.vlan);
  return true;
}

bool Hil::DetachNodeFromNetwork(const std::string& project, const std::string& node,
                                const std::string& network) {
  const auto node_it = nodes_.find(node);
  const auto net_it = networks_.find(network);
  if (node_it == nodes_.end() || net_it == networks_.end() ||
      node_it->second.owner != project) {
    return false;
  }
  fabric_.DetachFromVlan(node_it->second.port, net_it->second.vlan);
  return true;
}

bool Hil::PowerCycleNode(const std::string& project, const std::string& node) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.owner != project || it->second.bmc == nullptr) {
    return false;
  }
  it->second.bmc->PowerCycle();
  return true;
}

}  // namespace bolted::hil
