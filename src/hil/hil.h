// Hardware Isolation Layer (HIL) — the only provider-trusted component.
//
// HIL is the paper's minimal TCB (~3 kLOC in their prototype; this module
// is intentionally the smallest in the repository).  It does exactly
// three things:
//   (i)  allocates physical nodes to projects (tenants),
//   (ii) allocates networks (VLANs) and connects/disconnects node ports,
//   (iii) proxies narrow BMC operations (power cycling) so tenants never
//        touch the BMC directly.
// It additionally acts as the provider's source of truth: per-node
// metadata (e.g. the TPM endorsement key, protecting tenants from server
// spoofing) and the provider-published whitelist of platform PCR
// measurements (vendor firmware a tenant cannot rebuild).
//
// HIL never sees tenant secrets and is not attested; everything else in
// Bolted can be deployed by the tenant.  Dependency rule: this module may
// use only src/sim and src/net.

#ifndef SRC_HIL_HIL_H_
#define SRC_HIL_HIL_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/net/network.h"

namespace bolted::hil {

// Narrow BMC access; implemented by the machine layer.
class BmcHandle {
 public:
  virtual ~BmcHandle() = default;
  virtual void PowerCycle() = 0;
};

struct PlatformMeasurement {
  crypto::Digest digest{};
  std::string description;
};

class Hil {
 public:
  explicit Hil(net::Network& fabric);

  // --- Provider administration ------------------------------------------

  // Registers a physical node (its switch port and BMC).  Service hosts
  // (attestation/provisioning servers) register with a null BMC.
  void RegisterNode(const std::string& node, net::Address port, BmcHandle* bmc);
  // Admin-modifiable metadata; the provider publishes each node's TPM EK
  // here so tenants can detect server spoofing.
  void SetNodeMetadata(const std::string& node, const std::string& key,
                       const std::string& value);
  std::optional<std::string> GetNodeMetadata(const std::string& node,
                                             const std::string& key) const;
  // Provider-published whitelist of platform firmware measurements.
  void PublishPlatformMeasurement(const crypto::Digest& digest,
                                  const std::string& description);
  const std::vector<PlatformMeasurement>& platform_whitelist() const {
    return whitelist_;
  }

  // --- Projects and node allocation --------------------------------------

  bool CreateProject(const std::string& project);
  // Fails when the project still owns nodes or networks.
  bool DeleteProject(const std::string& project);
  // Allocates a free node to the project.
  bool ConnectNode(const std::string& project, const std::string& node);
  // Releases the node: power-cycled and detached from every network, so
  // no tenant state survives on the wire.
  bool DetachNode(const std::string& project, const std::string& node);
  std::optional<std::string> NodeOwner(const std::string& node) const;
  std::vector<std::string> FreeNodes() const;

  // --- Networks -----------------------------------------------------------

  // Creates a project-owned network; returns its VLAN or 0 on failure.
  net::VlanId CreateNetwork(const std::string& project, const std::string& network);
  bool DeleteNetwork(const std::string& project, const std::string& network);
  // Provider-owned network reachable by any project it is granted to.
  net::VlanId CreatePublicNetwork(const std::string& network);
  bool GrantNetworkAccess(const std::string& network, const std::string& project);

  // Connects a node the project owns to a network it may use.
  bool ConnectNodeToNetwork(const std::string& project, const std::string& node,
                            const std::string& network);
  bool DetachNodeFromNetwork(const std::string& project, const std::string& node,
                             const std::string& network);

  // --- BMC proxy ----------------------------------------------------------

  bool PowerCycleNode(const std::string& project, const std::string& node);

  // Approximate implementation size guard used by tests: HIL must stay
  // small (paper: ~3 kLOC).  See tests/hil_test.cc.

 private:
  struct Node {
    net::Address port = 0;
    BmcHandle* bmc = nullptr;
    std::optional<std::string> owner;
    std::map<std::string, std::string> metadata;
  };
  struct NetworkRecord {
    net::VlanId vlan = 0;
    std::optional<std::string> owner;  // nullopt = provider/public
    std::set<std::string> granted;
  };

  bool ProjectMayUse(const std::string& project, const NetworkRecord& record) const;

  net::Network& fabric_;
  std::map<std::string, Node> nodes_;
  std::set<std::string> projects_;
  std::map<std::string, NetworkRecord> networks_;
  std::vector<PlatformMeasurement> whitelist_;
  net::VlanId next_vlan_ = 100;
};

}  // namespace bolted::hil

#endif  // SRC_HIL_HIL_H_
