// Tenant-side orchestration: secure enclaves of bare-metal servers (§4).
//
// An Enclave is the paper's "user-controlled scripts": it drives HIL,
// BMI, and Keylime through the server life cycle of Figure 1
// (free -> airlock -> allocated/rejected), builds the tenant's whitelist,
// splits and delivers the bootstrap payload, sets up LUKS/IPsec according
// to the tenant's trust profile, and reacts to continuous-attestation
// violations by cutting the compromised server out of the enclave.
//
// Trust profiles mirror §4.3's personas:
//   Alice   — trusts everyone: no attestation, no encryption.
//   Bob     — trusts the provider, not other tenants: provider-deployed
//             attestation, no encryption.
//   Charlie — trusts only physical security: tenant-deployed attestation,
//             LUKS + IPsec, continuous attestation.

#ifndef SRC_CORE_ENCLAVE_H_
#define SRC_CORE_ENCLAVE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/cloud.h"
#include "src/ima/ima.h"
#include "src/keylime/agent.h"
#include "src/keylime/payload.h"
#include "src/keylime/verifier.h"
#include "src/provision/phase_trace.h"
#include "src/storage/crypt_device.h"
#include "src/storage/iscsi.h"
#include "src/storage/merkle_device.h"

namespace bolted::core {

struct TrustProfile {
  bool use_attestation = true;
  // Charlie runs his own registrar/verifier instead of the provider's.
  bool tenant_deployed_services = false;
  bool encrypt_disk = false;     // LUKS on the network-mounted root
  bool integrity_disk = false;   // Merkle tree over the root (DESIGN.md §14)
  bool encrypt_network = false;  // IPsec mesh + encrypted iSCSI path
  bool continuous_attestation = false;

  static TrustProfile Alice() {
    return TrustProfile{.use_attestation = false};
  }
  static TrustProfile Bob() { return TrustProfile{.use_attestation = true}; }
  static TrustProfile Charlie() {
    return TrustProfile{.use_attestation = true,
                        .tenant_deployed_services = true,
                        .encrypt_disk = true,
                        .integrity_disk = true,
                        .encrypt_network = true,
                        .continuous_attestation = true};
  }
};

enum class NodeState { kFree, kAirlock, kAllocated, kRejected };

struct ProvisionOutcome {
  bool success = false;
  NodeState state = NodeState::kFree;
  std::string failure;
  provision::PhaseTrace trace;
};

class Enclave {
 public:
  Enclave(Cloud& cloud, std::string project, TrustProfile profile, uint64_t seed);
  ~Enclave();

  const std::string& project() const { return project_; }
  const TrustProfile& profile() const { return profile_; }
  keylime::Verifier& verifier() { return *verifier_; }
  const keylime::TenantPayload& payload() const { return payload_; }

  // Figure 1's full life cycle for one server.
  sim::Task ProvisionNode(const std::string& node, ProvisionOutcome* outcome);
  // Stateless release: image clone destroyed (or snapshotted), node
  // power-cycled and returned to the free pool.
  sim::Task ReleaseNode(const std::string& node, bool keep_snapshot = false);

  NodeState node_state(const std::string& node) const;
  const std::vector<std::string>& members() const { return members_; }

  // The boot device as the tenant OS sees it (through LUKS when the
  // profile encrypts the disk).  Null until the node is allocated.
  storage::BlockDevice* node_root_device(const std::string& node);
  machine::Machine* node_machine(const std::string& node);
  ima::Ima* node_ima(const std::string& node);
  net::IpsecParams ipsec_params() const;

  // Extends the tenant's runtime whitelist (application rollout).
  void AllowRuntimeFile(const std::string& path, const crypto::Digest& content);
  // Extends the tenant's boot whitelist (firmware rollout): the tenant
  // rebuilds the next LinuxBoot from source, predicts its digest, and
  // pushes it before the staged reflash so upgraded canaries attest clean.
  void AllowBootDigest(const crypto::Digest& digest);

  // --- Runtime events (used by tests, examples, and benches) -------------

  // Simulates executing a binary on the node; measured by IMA.  Returns
  // false when the node is not running.
  bool ExecuteBinary(const std::string& node, const std::string& path,
                     const crypto::Digest& content, bool whitelisted_already);

  // Fired after a continuous-attestation violation has been fully handled
  // (keys revoked on every peer, node cut from the enclave network).
  using ViolationHandler =
      std::function<void(const std::string& node, const std::string& reason)>;
  void SetViolationHandler(ViolationHandler handler) {
    violation_handler_ = std::move(handler);
  }
  uint64_t violations_handled() const { return violations_handled_; }

 private:
  struct NodeRuntime {
    machine::Machine* machine = nullptr;
    NodeState state = NodeState::kFree;
    std::unique_ptr<keylime::Agent> agent;
    std::unique_ptr<ima::Ima> ima;
    std::unique_ptr<storage::IscsiInitiator> initiator;
    std::unique_ptr<storage::CryptDevice> crypt;
    // Integrity layer over the (possibly encrypted) root; accounting-only
    // during boot — the tree is never materialised for a 20 GB image.
    std::unique_ptr<storage::MerkleBlockDevice> merkle;
    // Chunked-distribution client; like the agent, RPC handlers hold raw
    // pointers to it, so it is parked (not destroyed) on release/reject.
    std::unique_ptr<provision::ChunkFetcher> fetcher;
    storage::ImageId image = 0;
    net::VlanId airlock_vlan = 0;
    std::string airlock_name;
  };

  std::vector<net::Address> ServiceAddresses() const;
  keylime::Whitelist BuildWhitelist() const;
  sim::Task EnterAirlock(const std::string& node, NodeRuntime& rt);
  sim::Task LeaveAirlockToEnclave(const std::string& node, NodeRuntime& rt);
  sim::Task RejectNode(const std::string& node, NodeRuntime& rt,
                       const std::string& reason, ProvisionOutcome* outcome);
  sim::Task AttestInAirlock(const std::string& node, NodeRuntime& rt, bool* ok,
                            std::string* failure);
  sim::Task SetupStorageAndBoot(const std::string& node, NodeRuntime& rt);
  sim::Task DeliverUHalf(const std::string& node, NodeRuntime& rt, bool* ok);
  void InstallMeshKeys(const std::string& node, NodeRuntime& rt);
  void RefreshVerifierPeers();
  void HandleViolation(const std::string& node, const std::string& reason);
  sim::Task ViolationResponse(std::string node, std::string reason);

  Cloud& cloud_;
  std::string project_;
  TrustProfile profile_;
  crypto::Drbg drbg_;

  // Tenant controller ("outside the cloud"): delivers U halves, runs the
  // scripts.
  net::Endpoint& controller_ep_;
  net::RpcNode controller_;

  // Tenant-deployed Keylime (Charlie) or pointers to the provider's.
  std::unique_ptr<keylime::Registrar> own_registrar_;
  std::unique_ptr<keylime::Verifier> own_verifier_;
  keylime::Registrar* registrar_ = nullptr;
  keylime::Verifier* verifier_ = nullptr;
  net::Address registrar_address_ = 0;

  storage::ImageId golden_image_ = 0;
  keylime::TenantPayload payload_;
  std::shared_ptr<keylime::Whitelist> whitelist_;
  std::map<std::string, keylime::SplitPayload> splits_;

  net::VlanId enclave_vlan_ = 0;
  std::map<std::string, NodeRuntime> nodes_;
  // Agents from rejected/released nodes: their machine-side RPC handlers
  // (and possibly in-flight handler coroutines) reference them, so they
  // outlive their NodeRuntime and die with the enclave.
  std::vector<std::unique_ptr<keylime::Agent>> retired_agents_;
  // Same parking rule for chunk fetchers: the machine-side `chunk.get`
  // handler references them until the next provision replaces it.
  std::vector<std::unique_ptr<provision::ChunkFetcher>> retired_fetchers_;
  std::vector<std::string> members_;
  ViolationHandler violation_handler_;
  uint64_t violations_handled_ = 0;
};

}  // namespace bolted::core

#endif  // SRC_CORE_ENCLAVE_H_
