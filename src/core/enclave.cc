#include "src/core/enclave.h"

#include "src/bmi/bmi.h"
#include "src/crypto/ecies.h"
#include "src/net/wire.h"
#include "src/obs/obs.h"

namespace bolted::core {
namespace {

constexpr std::string_view kEnclaveNetSuffix = "-enclave";

// Retry budgets for the transient half of provisioning failures.  Artifact
// downloads and airlock attestation ride over the same fabric the fault
// layer perturbs; integrity failures (bad measurements, EK mismatch) are
// never retried.
constexpr int kMaxFetchAttempts = 3;
constexpr sim::Duration kFetchRetryBackoff = sim::Duration::Seconds(2);
constexpr int kMaxAttestAttempts = 3;
constexpr sim::Duration kAttestRetryBackoff = sim::Duration::Seconds(5);

bool TransientProvisionFailure(const std::string& failure) {
  return failure == "agent download failed" || failure == "registration failed" ||
         failure == "U-half delivery failed" ||
         keylime::IsTransientFailure(failure);
}

}  // namespace

Enclave::Enclave(Cloud& cloud, std::string project, TrustProfile profile,
                 uint64_t seed)
    : cloud_(cloud),
      project_(std::move(project)),
      profile_(profile),
      // Key material is derived from both the tenant's seed and its
      // identity, so two tenants reusing a seed never share secrets.
      drbg_([this, seed]() {
        crypto::Bytes material = crypto::ToBytes(project_);
        crypto::AppendU64(material, seed);
        return crypto::Drbg(material);
      }()),
      controller_ep_(cloud.CreateServiceEndpoint(project_ + "-controller")),
      controller_(cloud.sim(), controller_ep_) {
  controller_.Start();
  hil::Hil& hil = cloud_.hil();
  hil.CreateProject(project_);
  enclave_vlan_ = hil.CreateNetwork(project_, project_ + std::string(kEnclaveNetSuffix));
  hil.GrantNetworkAccess("bolted-provisioning", project_);
  hil.GrantNetworkAccess("bolted-attestation", project_);
  hil.GrantNetworkAccess("bolted-rejected", project_);

  // The controller lives outside the cloud but can reach the service
  // networks.
  cloud_.BridgeServiceOntoVlan(controller_.address(), cloud_.provisioning_vlan());
  cloud_.BridgeServiceOntoVlan(controller_.address(), cloud_.attestation_vlan());

  if (profile_.use_attestation && profile_.tenant_deployed_services) {
    net::Endpoint& reg_ep =
        cloud_.CreateServiceEndpoint(project_ + "-keylime-registrar");
    net::Endpoint& ver_ep =
        cloud_.CreateServiceEndpoint(project_ + "-keylime-verifier");
    cloud_.BridgeServiceOntoVlan(reg_ep.address(), cloud_.attestation_vlan());
    cloud_.BridgeServiceOntoVlan(ver_ep.address(), cloud_.attestation_vlan());
    own_registrar_ = std::make_unique<keylime::Registrar>(
        cloud_.sim(), reg_ep, seed ^ 0x726567u);
    own_verifier_ = std::make_unique<keylime::Verifier>(
        cloud_.sim(), ver_ep, reg_ep.address(), seed ^ 0x766572u);
    registrar_ = own_registrar_.get();
    verifier_ = own_verifier_.get();
    registrar_address_ = reg_ep.address();
  } else {
    registrar_ = &cloud_.provider_registrar();
    verifier_ = &cloud_.provider_verifier();
    registrar_address_ = cloud_.provider_registrar().address();
  }

  // Tenant image identity: kernel/initrd digests the tenant builds and
  // therefore knows ahead of time.
  const Calibration& cal = cloud_.cal();
  payload_.kernel_digest = crypto::Sha256::Hash(project_ + "-kernel-4.17.9");
  payload_.initrd_digest = crypto::Sha256::Hash(project_ + "-initrd-4.17.9");
  payload_.kernel_bytes = cal.kernel_bytes;
  payload_.initrd_bytes = cal.initrd_bytes;
  payload_.disk_secret = drbg_.Generate(32);
  payload_.network_key_seed = drbg_.Generate(32);
  payload_.boot_script = "join-enclave; unlock-disk; start-ipsec; kexec";

  storage::BootInfo boot_info;
  boot_info.kernel_bytes = cal.kernel_bytes;
  boot_info.initrd_bytes = cal.initrd_bytes;
  boot_info.kernel_cmdline = "root=/dev/bolted0 ro quiet";
  boot_info.kernel_digest = payload_.kernel_digest;
  boot_info.initrd_digest = payload_.initrd_digest;
  golden_image_ = cloud_.bmi().RegisterGoldenImage(project_ + "-golden",
                                                   cal.image_virtual_bytes,
                                                   boot_info);
  // The golden image's content (root filesystem) was uploaded before the
  // experiment window; mark it present so boots read real objects.
  cloud_.images().PrepopulateObjects(
      golden_image_, 0,
      cal.image_virtual_bytes / cloud_.ceph().config().object_size);
  // For unattested tenants the kernel comes straight from the
  // provisioning service instead of via Keylime.
  cloud_.bmi().PublishArtifact(
      project_ + "-kernel-zip",
      bmi::Artifact{cal.kernel_bytes + cal.initrd_bytes, payload_.kernel_digest});
  if (cloud_.config().chunked_distribution) {
    // Content-addressed distribution: publish the golden image's chunk
    // manifest so booting nodes pull chunks through their rack cache.
    cloud_.bmi().RegisterChunkManifest(storage::ChunkManifest::ForImage(
        project_ + "-golden", cal.image_virtual_bytes, cal.chunk_bytes));
  }

  whitelist_ = std::make_shared<keylime::Whitelist>(BuildWhitelist());

  verifier_->SetViolationCallback(
      [this](const std::string& node, const std::string& reason) {
        HandleViolation(node, reason);
      });
}

Enclave::~Enclave() = default;

keylime::Whitelist Enclave::BuildWhitelist() const {
  keylime::Whitelist whitelist;
  // Platform firmware: the tenant rebuilds LinuxBoot from source and gets
  // the same digest (deterministic build); vendor UEFI digests come from
  // the provider-published whitelist, which the tenant chooses to accept.
  whitelist.AllowBoot(cloud_.linuxboot().digest);
  for (const hil::PlatformMeasurement& m : cloud_.hil().platform_whitelist()) {
    whitelist.AllowBoot(m.digest);
  }
  whitelist.AllowBoot(cloud_.ipxe().digest);
  whitelist.AllowBoot(cloud_.heads_runtime().digest);
  whitelist.AllowBoot(cloud_.agent_digest());
  whitelist.AllowBoot(payload_.kernel_digest);
  whitelist.AllowBoot(payload_.initrd_digest);
  return whitelist;
}

void Enclave::AllowBootDigest(const crypto::Digest& digest) {
  // Same shared-whitelist mechanics as AllowRuntimeFile: the verifier sees
  // the new boot digest immediately, ahead of the first upgraded quote.
  whitelist_->AllowBoot(digest);
}

void Enclave::AllowRuntimeFile(const std::string& path, const crypto::Digest& content) {
  // The verifier holds a shared view of this whitelist, so the update is
  // visible to continuous attestation immediately (the tenant "pushing a
  // new whitelist" on application rollout).
  whitelist_->AllowRuntime(ima::Ima::TemplateDigest(path, content));
}

std::vector<net::Address> Enclave::ServiceAddresses() const {
  std::vector<net::Address> addresses;
  addresses.push_back(cloud_.bmi().address());
  addresses.push_back(registrar_address_);
  addresses.push_back(verifier_->address());
  addresses.push_back(controller_.address());
  return addresses;
}

NodeState Enclave::node_state(const std::string& node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? NodeState::kFree : it->second.state;
}

storage::BlockDevice* Enclave::node_root_device(const std::string& node) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.state != NodeState::kAllocated) {
    return nullptr;
  }
  if (it->second.merkle != nullptr) {
    return it->second.merkle.get();
  }
  if (it->second.crypt != nullptr) {
    return it->second.crypt.get();
  }
  return it->second.initiator.get();
}

machine::Machine* Enclave::node_machine(const std::string& node) {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : it->second.machine;
}

ima::Ima* Enclave::node_ima(const std::string& node) {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : it->second.ima.get();
}

net::IpsecParams Enclave::ipsec_params() const {
  net::IpsecParams params;
  params.enabled = profile_.encrypt_network;
  params.hardware_aes = true;
  params.mtu = 9000;
  return params;
}

sim::Task Enclave::EnterAirlock(const std::string& node, NodeRuntime& rt) {
  hil::Hil& hil = cloud_.hil();
  rt.airlock_name = project_ + "-airlock-" + node;
  rt.airlock_vlan = hil.CreateNetwork(project_, rt.airlock_name);
  hil.ConnectNodeToNetwork(project_, node, rt.airlock_name);
  // The provider bridges the service trunk ports into the airlock so the
  // isolated server can reach provisioning/attestation/controller — and
  // nothing else.
  for (const net::Address service : ServiceAddresses()) {
    cloud_.BridgeServiceOntoVlan(service, rt.airlock_vlan);
  }
  co_await sim::Delay(cloud_.sim(), cloud_.cal().switch_reconfig_time);
  hil.PowerCycleNode(project_, node);
  co_await sim::Delay(cloud_.sim(), cloud_.cal().bmc_power_cycle_time);
  rt.state = NodeState::kAirlock;
}

sim::Task Enclave::LeaveAirlockToEnclave(const std::string& node, NodeRuntime& rt) {
  hil::Hil& hil = cloud_.hil();
  for (const net::Address service : ServiceAddresses()) {
    cloud_.UnbridgeServiceFromVlan(service, rt.airlock_vlan);
  }
  hil.DetachNodeFromNetwork(project_, node, rt.airlock_name);
  hil.DeleteNetwork(project_, rt.airlock_name);
  hil.ConnectNodeToNetwork(project_, node, project_ + std::string(kEnclaveNetSuffix));
  // Data path to BMI (iSCSI) and, when attesting, the verifier's path to
  // the agent for continuous attestation.
  hil.ConnectNodeToNetwork(project_, node, "bolted-provisioning");
  if (profile_.use_attestation) {
    hil.ConnectNodeToNetwork(project_, node, "bolted-attestation");
  }
  co_await sim::Delay(cloud_.sim(), cloud_.cal().switch_reconfig_time);
}

sim::Task Enclave::RejectNode(const std::string& node, NodeRuntime& rt,
                              const std::string& reason, ProvisionOutcome* outcome) {
  hil::Hil& hil = cloud_.hil();
  for (const net::Address service : ServiceAddresses()) {
    cloud_.UnbridgeServiceFromVlan(service, rt.airlock_vlan);
  }
  hil.DetachNodeFromNetwork(project_, node, rt.airlock_name);
  hil.DeleteNetwork(project_, rt.airlock_name);
  hil.ConnectNodeToNetwork(project_, node, "bolted-rejected");
  co_await sim::Delay(cloud_.sim(), cloud_.cal().switch_reconfig_time);
  rt.state = NodeState::kRejected;
  obs::Count(cloud_.sim(), "enclave.provision_reject");
  obs::Instant(cloud_.sim(), "enclave.reject", "provision", "provision:" + node,
               {{"node", node}, {"reason", reason}});
  // Clean abort: everything the half-provisioned node acquired is released
  // so a rejection never leaks verifier entries, payload splits, or image
  // clones.  The machine itself stays powered in the rejected pool for
  // examination (§4) until ReleaseNode reclaims it.
  if (profile_.use_attestation) {
    verifier_->StopContinuous(node);
    verifier_->RemoveNode(node);
  }
  splits_.erase(node);
  // The agent's RPC handlers (and any in-flight handler coroutine stuck on
  // a TPM delay) hold raw pointers to it, so it is parked rather than
  // destroyed; the next provisioning of this machine replaces the handlers.
  // Its IMA log dies with rt.ima below, so detach it first — a quote
  // already in flight then reports an empty list instead of reading freed
  // memory.
  if (rt.agent != nullptr) {
    rt.agent->AttachIma(nullptr);
    retired_agents_.push_back(std::move(rt.agent));
  }
  if (rt.fetcher != nullptr) {
    retired_fetchers_.push_back(std::move(rt.fetcher));
  }
  rt.ima.reset();
  rt.merkle.reset();
  rt.crypt.reset();
  rt.initiator.reset();
  if (rt.image != 0) {
    cloud_.bmi().ReleaseNodeImage(node, /*keep_snapshot=*/false);
    rt.image = 0;
  }
  if (outcome != nullptr) {
    outcome->success = false;
    outcome->state = NodeState::kRejected;
    outcome->failure = reason;
  }
}

sim::Task Enclave::DeliverUHalf(const std::string& node, NodeRuntime& rt, bool* ok) {
  *ok = false;
  const auto keys = registrar_->Lookup(node);
  if (!keys) {
    co_return;
  }
  const keylime::SplitPayload& split = splits_.at(node);
  const crypto::Bytes sealed_u = crypto::EciesSeal(keys->nk, split.u_half, drbg_);
  net::Message message;
  message.kind = std::string(keylime::kRpcDeliverU);
  message.payload = net::WireWriter().Blob(sealed_u).Take();
  net::Message response;
  bool rpc_ok = false;
  co_await controller_.Call(rt.machine->address(), std::move(message), &response,
                            &rpc_ok);
  if (!rpc_ok) {
    co_return;
  }
  net::WireReader reader(response.payload);
  *ok = reader.U32() == 1 && reader.AtEnd();
}

sim::Task Enclave::AttestInAirlock(const std::string& node, NodeRuntime& rt, bool* ok,
                                   std::string* failure) {
  *ok = false;
  sim::Simulation& sim = cloud_.sim();
  const Calibration& cal = cloud_.cal();

  // Download the Keylime agent over HTTP from the provisioning service;
  // LinuxBoot measures it before executing it.  On a retry of this phase
  // the already-running agent is reused — recreating it would orphan the
  // machine's RPC handlers mid-flight.
  if (rt.agent == nullptr) {
    crypto::Digest agent_digest{};
    uint64_t agent_bytes = 0;
    bool fetch_ok = false;
    co_await bmi::FetchArtifact(rt.machine->rpc(), cloud_.bmi().address(),
                                "keylime-agent", &agent_digest, &agent_bytes,
                                &fetch_ok);
    if (!fetch_ok) {
      *failure = "agent download failed";
      co_return;
    }
    rt.machine->MeasureIntoPcr(tpm::kPcrBootloader, agent_digest, "keylime-agent");
    co_await sim::Delay(sim, cal.agent_start_time);
    const crypto::Bytes agent_seed = drbg_.Generate(8);
    uint64_t seed = 0;
    for (const uint8_t b : agent_seed) {
      seed = (seed << 8) | b;
    }
    rt.agent = std::make_unique<keylime::Agent>(*rt.machine, seed);
    rt.machine->set_power_state(machine::PowerState::kAgent);
  }

  bool reg_ok = false;
  co_await rt.agent->RegisterWithRegistrar(registrar_address_, node, &reg_ok);
  if (!reg_ok) {
    *failure = "registration failed";
    co_return;
  }

  // Anti-spoofing: the tenant checks the registrar-certified EK against
  // the provider-published metadata for the node it reserved.
  const auto keys = registrar_->Lookup(node);
  const auto published = cloud_.hil().GetNodeMetadata(node, "tpm_ek");
  if (!keys || !published ||
      crypto::ToHex(keys->ek.Encode()) != *published) {
    *failure = "EK mismatch: possible server spoofing";
    co_return;
  }

  // Per-node payload split; register with the verifier and attest.  The
  // split survives a transient retry so a late-arriving key half from the
  // previous attempt can never be mismatched against a fresh one.
  if (!splits_.contains(node)) {
    splits_[node] = keylime::SealPayload(payload_, drbg_);
  }
  keylime::Verifier::NodeConfig config;
  config.agent = rt.machine->address();
  config.whitelist = whitelist_;
  config.v_half = splits_[node].v_half;
  config.sealed_payload = splits_[node].sealed_payload;
  verifier_->AddNode(node, std::move(config));

  keylime::VerificationResult result;
  co_await verifier_->VerifyNode(node, &result);
  if (!result.passed) {
    *failure = result.failure;
    co_return;
  }

  // Tenant sends the U half directly to the agent; with the verifier's V
  // half the agent can open the payload.
  bool u_ok = false;
  co_await DeliverUHalf(node, rt, &u_ok);
  if (!u_ok) {
    *failure = "U-half delivery failed";
    co_return;
  }
  keylime::TenantPayload delivered;
  bool payload_ok = false;
  co_await rt.agent->AwaitPayload(&delivered, &payload_ok);
  if (!payload_ok || delivered != payload_) {
    *failure = "payload recombination failed";
    co_return;
  }

  // Keylime also ships the tenant kernel+initrd zip to the agent.
  net::Message kernel_zip;
  kernel_zip.kind = "kl.kernel-zip";
  kernel_zip.wire_bytes = payload_.kernel_bytes + payload_.initrd_bytes;
  co_await controller_.endpoint().Send(rt.machine->address(), std::move(kernel_zip));

  *ok = true;
}

void Enclave::InstallMeshKeys(const std::string& node, NodeRuntime& rt) {
  (void)node;  // identified by address below; name kept for symmetry/logging
  if (!profile_.encrypt_network) {
    return;
  }
  const net::Address self = rt.machine->address();
  for (const std::string& other : members_) {
    NodeRuntime& peer = nodes_.at(other);
    const net::Address peer_address = peer.machine->address();
    const crypto::Bytes key =
        keylime::DerivePairKey(payload_.network_key_seed, self, peer_address);
    rt.machine->ipsec().InstallSa(peer_address, key);
    peer.machine->ipsec().InstallSa(self, key);
  }
}

void Enclave::RefreshVerifierPeers() {
  if (!profile_.use_attestation) {
    return;
  }
  std::vector<net::Address> peers;
  peers.reserve(members_.size());
  for (const std::string& member : members_) {
    peers.push_back(nodes_.at(member).machine->address());
  }
  for (const std::string& member : members_) {
    verifier_->UpdatePeers(member, peers);
  }
}

sim::Task Enclave::SetupStorageAndBoot(const std::string& node, NodeRuntime& rt) {
  sim::Simulation& sim = cloud_.sim();
  const Calibration& cal = cloud_.cal();

  const auto image = cloud_.bmi().CreateNodeImage(node, golden_image_);
  rt.image = image.value_or(0);

  storage::IscsiInitiator::Options options;
  options.read_ahead_bytes = cal.iscsi_read_ahead_bytes;
  options.ipsec = ipsec_params();
  options.ipsec_model = cal.ipsec;
  options.local_crypto_cpu = &rt.machine->crypto_cpu();
  options.remote_crypto_cpu = &cloud_.bmi_esp_cpu();  // server-side ESP
  rt.initiator = std::make_unique<storage::IscsiInitiator>(
      sim, rt.machine->rpc(), cloud_.bmi().address(), rt.image,
      cal.image_virtual_bytes, options);

  if (profile_.encrypt_disk) {
    // dm-crypt mapping keyed by the Keylime-delivered secret.
    storage::LuksVolume volume = storage::LuksVolume::Format(payload_.disk_secret, drbg_);
    auto crypt = volume.Open(sim, rt.initiator.get(), payload_.disk_secret, cal.luks,
                             node + ".luks");
    rt.crypt = std::move(*crypt);
  }

  InstallMeshKeys(node, rt);

  // kexec into the tenant kernel; IMA comes up with it.
  co_await rt.machine->KexecInto(payload_.kernel_digest, payload_.initrd_digest);
  ima::ImaPolicy policy;
  policy.measure_executables = true;
  rt.ima = std::make_unique<ima::Ima>(rt.machine->tpm(), policy);
  if (rt.agent != nullptr) {
    rt.agent->AttachIma(rt.ima.get());
  }

  // Kernel + userspace come up, reading the root filesystem over iSCSI;
  // init is mostly synchronous with its file reads (the paper's "slow
  // down in booting ... from the slower disk" under IPsec).
  storage::BlockDevice* root = rt.crypt != nullptr
                                   ? static_cast<storage::BlockDevice*>(rt.crypt.get())
                                   : rt.initiator.get();
  if (profile_.integrity_disk) {
    // Merkle integrity layer over the (possibly encrypted) root.  The
    // device is accounting-only here: hash verification rides the crypto
    // throughput in parallel with the backing reads, without ever
    // materialising a 20 GB tree.
    rt.merkle = std::make_unique<storage::MerkleBlockDevice>(
        sim, root, cal.image_virtual_bytes / storage::kSectorSize,
        /*cache_sectors=*/64, cal.merkle, node + ".merkle");
    root = rt.merkle.get();
  }
  co_await sim::Delay(sim, cal.kernel_init_time);

  provision::RackChunkCache* rack_cache =
      cloud_.rack_chunk_cache_for(rt.machine->address());
  if (rack_cache != nullptr) {
    // Content-addressed boot: pull the boot working set as verified chunks
    // through the rack cache (rack-local after the first node warms it)
    // instead of streaming it from the central store over iSCSI.
    storage::ChunkManifest manifest;
    bool manifest_ok = false;
    co_await bmi::FetchChunkManifest(rt.machine->rpc(), cloud_.bmi().address(),
                                     project_ + "-golden", &manifest, &manifest_ok);
    if (manifest_ok) {
      rt.fetcher = std::make_unique<provision::ChunkFetcher>(
          sim, rt.machine->rpc(), rack_cache->address(),
          &rt.machine->crypto_cpu());
      rt.fetcher->Start();
      bool fetch_ok = false;
      co_await rt.fetcher->FetchPrefix(manifest, cal.boot_read_bytes, &fetch_ok);
      if (fetch_ok) {
        if (rt.crypt != nullptr) {
          // Chunks are stored under the tenant's disk key; decrypting them
          // locally pays the same XTS ceiling as the iSCSI path would.
          co_await rt.crypt->decrypt_resource().Consume(
              static_cast<double>(cal.boot_read_bytes));
        }
        co_return;
      }
      // An unreachable rack cache degrades to the classic iSCSI path.
    }
  }

  const auto sequential = static_cast<uint64_t>(
      static_cast<double>(cal.boot_read_bytes) * cal.boot_sequential_fraction);
  co_await root->AccountRead(sequential);
  co_await root->AccountRandomRead(cal.boot_read_bytes - sequential,
                                   cal.boot_random_chunk_bytes);
}

sim::Task Enclave::ProvisionNode(const std::string& node, ProvisionOutcome* outcome) {
  sim::Simulation& sim = cloud_.sim();
  const Calibration& cal = cloud_.cal();
  // Naming the trace after the node routes the phase spans onto a per-node
  // track in the chrome-trace export, so concurrent provisions interleave
  // legibly instead of stacking on one row.
  outcome->trace.Start(sim, "provision:" + node);
  provision::PhaseTrace& trace = outcome->trace;

  machine::Machine* machine = cloud_.FindMachine(node);
  if (machine == nullptr || !cloud_.hil().ConnectNode(project_, node)) {
    outcome->failure = "node unavailable";
    co_return;
  }
  NodeRuntime& rt = nodes_[node];
  if (rt.agent != nullptr) {
    // Left over from a prior life of this node (e.g. a violation without a
    // release): park it, handlers may still reference it.  The runtime —
    // including the IMA log the agent points at — is replaced below, so
    // detach the log before parking.
    rt.agent->AttachIma(nullptr);
    retired_agents_.push_back(std::move(rt.agent));
  }
  if (rt.fetcher != nullptr) {
    retired_fetchers_.push_back(std::move(rt.fetcher));
  }
  rt = NodeRuntime{};
  rt.machine = machine;

  co_await EnterAirlock(node, rt);
  trace.Mark("allocate+airlock");

  co_await machine->PowerOnSelfTest();
  trace.Mark("POST");

  const bool flash_is_linuxboot = machine->flash_firmware().deterministic_build;
  if (!flash_is_linuxboot) {
    // Vendor UEFI path: PXE -> measured iPXE -> download + measure the
    // Heads/LinuxBoot runtime -> boot it.
    crypto::Digest digest{};
    uint64_t bytes = 0;
    bool ok = false;
    for (int attempt = 1; attempt <= kMaxFetchAttempts && !ok; ++attempt) {
      if (attempt > 1) {
        co_await sim::Delay(sim, kFetchRetryBackoff * (attempt - 1));
      }
      co_await bmi::FetchArtifact(machine->rpc(), cloud_.bmi().address(), "ipxe",
                                  &digest, &bytes, &ok);
    }
    if (!ok) {
      co_await RejectNode(node, rt, "iPXE download failed", outcome);
      co_return;
    }
    machine->MeasureIntoPcr(tpm::kPcrBootloader, digest, "ipxe");
    trace.Mark("PXE/iPXE");

    ok = false;
    for (int attempt = 1; attempt <= kMaxFetchAttempts && !ok; ++attempt) {
      if (attempt > 1) {
        co_await sim::Delay(sim, kFetchRetryBackoff * (attempt - 1));
      }
      co_await bmi::FetchArtifact(machine->rpc(), cloud_.bmi().address(),
                                  "heads-runtime", &digest, &bytes, &ok);
    }
    if (!ok) {
      co_await RejectNode(node, rt, "LinuxBoot download failed", outcome);
      co_return;
    }
    machine->MeasureIntoPcr(tpm::kPcrBootloader, digest, "heads-runtime");
    trace.Mark("download LinuxBoot");

    co_await sim::Delay(sim, cal.linuxboot_init_time);
    if (machine->memory_dirty()) {
      co_await machine->ScrubMemory();
    }
    trace.Mark("LinuxBoot boot");
  } else {
    co_await sim::Delay(sim, cal.linuxboot_init_time);
    trace.Mark("LinuxBoot boot");
  }

  if (profile_.use_attestation) {
    // The prototype supports one airlock attestation at a time (Fig. 5).
    co_await cloud_.airlock_slots().Acquire();
    bool ok = false;
    std::string failure;
    {
      sim::SemaphoreGuard slot(cloud_.airlock_slots());
      // Transient attestation failures (lost frames, a slow TPM, a flapped
      // link) are retried inside the airlock; integrity failures reject
      // immediately — re-measuring a bad node cannot make it good.
      for (int attempt = 1; attempt <= kMaxAttestAttempts; ++attempt) {
        if (attempt > 1) {
          co_await sim::Delay(sim, kAttestRetryBackoff * (attempt - 1));
        }
        co_await AttestInAirlock(node, rt, &ok, &failure);
        if (ok || !TransientProvisionFailure(failure)) {
          break;
        }
      }
    }
    if (!ok) {
      co_await RejectNode(node, rt, failure, outcome);
      co_return;
    }
    trace.Mark("attestation");
  } else {
    // Alice: fetch the kernel straight from the provisioning service.
    crypto::Digest digest{};
    uint64_t bytes = 0;
    bool ok = false;
    for (int attempt = 1; attempt <= kMaxFetchAttempts && !ok; ++attempt) {
      if (attempt > 1) {
        co_await sim::Delay(sim, kFetchRetryBackoff * (attempt - 1));
      }
      co_await bmi::FetchArtifact(machine->rpc(), cloud_.bmi().address(),
                                  project_ + "-kernel-zip", &digest, &bytes, &ok);
    }
    if (!ok) {
      co_await RejectNode(node, rt, "kernel download failed", outcome);
      co_return;
    }
    trace.Mark("fetch kernel");
  }

  co_await LeaveAirlockToEnclave(node, rt);
  trace.Mark("move to enclave");

  co_await SetupStorageAndBoot(node, rt);
  trace.Mark("kexec+kernel boot");

  rt.state = NodeState::kAllocated;
  members_.push_back(node);
  RefreshVerifierPeers();
  if (profile_.use_attestation && profile_.continuous_attestation) {
    verifier_->StartContinuous(node, cal.continuous_attestation_interval);
  }
  outcome->success = true;
  outcome->state = NodeState::kAllocated;
  obs::Count(sim, "enclave.provision_success");
}

sim::Task Enclave::ReleaseNode(const std::string& node, bool keep_snapshot) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    co_return;
  }
  NodeRuntime& rt = it->second;
  if (profile_.use_attestation) {
    verifier_->StopContinuous(node);
    verifier_->RemoveNode(node);
  }
  splits_.erase(node);
  if (rt.agent != nullptr) {
    // The parked agent outlives this runtime (in-flight RPC handlers hold
    // raw pointers to it), but the IMA log it points at dies with the
    // nodes_.erase below — detach so a late quote serves an empty list.
    rt.agent->AttachIma(nullptr);
    retired_agents_.push_back(std::move(rt.agent));
  }
  if (rt.fetcher != nullptr) {
    retired_fetchers_.push_back(std::move(rt.fetcher));
  }
  if (rt.image != 0) {
    cloud_.bmi().ReleaseNodeImage(node, keep_snapshot);
  }
  // Drop mesh keys on the remaining members.
  const net::Address self = rt.machine->address();
  for (const std::string& other : members_) {
    if (other != node) {
      nodes_.at(other).machine->ipsec().RemoveSa(self);
    }
  }
  std::erase(members_, node);
  RefreshVerifierPeers();
  // HIL detach: off every network, power-cycled (which also marks memory
  // dirty; LinuxBoot scrubs before the next occupant).
  cloud_.hil().DetachNode(project_, node);
  co_await sim::Delay(cloud_.sim(), cloud_.cal().switch_reconfig_time);
  nodes_.erase(it);
}

bool Enclave::ExecuteBinary(const std::string& node, const std::string& path,
                            const crypto::Digest& content, bool whitelisted_already) {
  const auto it = nodes_.find(node);
  if (it == nodes_.end() || it->second.state != NodeState::kAllocated ||
      it->second.ima == nullptr) {
    return false;
  }
  if (whitelisted_already) {
    AllowRuntimeFile(path, content);
  }
  ima::FileAccess access;
  access.path = path;
  access.content_digest = content;
  access.is_executable = true;
  access.by_root = true;
  it->second.ima->OnFileAccess(access);
  return true;
}

void Enclave::HandleViolation(const std::string& node, const std::string& reason) {
  cloud_.sim().Spawn(ViolationResponse(node, reason));
}

sim::Task Enclave::ViolationResponse(std::string node, std::string reason) {
  // The verifier already revoked the node's keys on every peer; the
  // tenant script now cuts it out of the enclave network entirely.
  const auto it = nodes_.find(node);
  if (it != nodes_.end()) {
    cloud_.hil().DetachNodeFromNetwork(project_, node,
                                       project_ + std::string(kEnclaveNetSuffix));
    it->second.state = NodeState::kRejected;
    std::erase(members_, node);
    RefreshVerifierPeers();
  }
  ++violations_handled_;
  if (violation_handler_) {
    violation_handler_(node, reason);
  }
  co_return;
}

}  // namespace bolted::core
