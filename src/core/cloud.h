// The simulated Bolted datacenter: machines, switch fabric, HIL, and the
// provider-deployed services (BMI provisioning + Keylime attestation).
//
// A Cloud owns the Simulation and everything physical.  Tenants interact
// through Enclave objects (src/core/enclave.h), which orchestrate the
// services exactly the way the paper's Python scripts do — including the
// option (Charlie, §4.3) of standing up their *own* attestation and
// provisioning services instead of the provider's.

#ifndef SRC_CORE_CLOUD_H_
#define SRC_CORE_CLOUD_H_

#include <memory>
#include <string>
#include <vector>

#include "src/bmi/bmi.h"
#include "src/core/calibration.h"
#include "src/firmware/firmware.h"
#include "src/hil/hil.h"
#include "src/keylime/registrar.h"
#include "src/keylime/verifier.h"
#include "src/machine/machine.h"
#include "src/net/network.h"
#include "src/provision/chunk_cache.h"
#include "src/sim/simulation.h"
#include "src/storage/image.h"
#include "src/storage/object_store.h"

namespace bolted::core {

struct CloudConfig {
  int num_machines = 16;
  // Machines with LinuxBoot burned into SPI flash skip the iPXE
  // chain-load (Fig. 4's "LinuxBoot ROM" bars).
  bool linuxboot_in_flash = false;
  // Rack topology: with racks > 1, machines spread round-robin over
  // top-of-rack switches whose uplinks to the core (where the service
  // hosts live) have the given bandwidth — the oversubscription knob for
  // bench/ablation_racks.  racks == 1 keeps the paper's single switch.
  int racks = 1;
  double rack_uplink_bytes_per_second = 5e9;  // 40 Gbit uplink
  // Content-addressed rack-local image distribution (DESIGN.md §14): one
  // chunk-cache service per switch; nodes boot from chunks instead of
  // streaming the image working set over iSCSI from the central store.
  bool chunked_distribution = false;
  Calibration cal;
  uint64_t seed = 0x626f6c746564u;
  // Event-queue implementation for the owned Simulation; kDefault honours
  // the BOLTED_SCHEDULER environment override.  The cross-scheduler
  // equivalence tests pin this explicitly.
  sim::SchedulerKind scheduler = sim::SchedulerKind::kDefault;
};

class Cloud {
 public:
  explicit Cloud(const CloudConfig& config);
  ~Cloud();

  sim::Simulation& sim() { return sim_; }
  net::Network& fabric() { return fabric_; }
  hil::Hil& hil() { return hil_; }
  const CloudConfig& config() const { return config_; }
  const Calibration& cal() const { return config_.cal; }

  storage::ObjectStore& ceph() { return ceph_; }
  storage::ImageStore& images() { return images_; }
  bmi::BmiService& bmi() { return *bmi_; }
  // The iSCSI server VM's CPUs: TGT request processing, and the
  // strongSwan ESP path (which in practice rides on roughly one core and
  // throttles encrypted storage traffic).
  net::SharedResource& bmi_cpu() { return *bmi_cpu_; }
  net::SharedResource& bmi_esp_cpu() { return *bmi_esp_cpu_; }
  keylime::Registrar& provider_registrar() { return *registrar_; }
  keylime::Verifier& provider_verifier() { return *verifier_; }

  // Chunk-cache service of the rack (switch) a node hangs off; null when
  // chunked_distribution is off.
  provision::RackChunkCache* rack_chunk_cache_for(net::Address node);
  size_t num_rack_chunk_caches() const { return rack_chunk_caches_.size(); }
  provision::RackChunkCache& rack_chunk_cache(size_t i) {
    return *rack_chunk_caches_[i];
  }

  size_t num_machines() const { return machines_.size(); }
  machine::Machine& machine(size_t i) { return *machines_[i]; }
  machine::Machine* FindMachine(const std::string& node);
  std::string node_name(size_t i) const;

  // Firmware variants the provider ships.
  const firmware::FirmwareImage& uefi() const { return uefi_; }
  const firmware::FirmwareImage& linuxboot() const { return linuxboot_; }
  const firmware::FirmwareImage& heads_runtime() const { return heads_runtime_; }
  const firmware::FirmwareImage& ipxe() const { return ipxe_; }
  const crypto::Digest& agent_digest() const { return agent_digest_; }

  // Provider admin action: trunk a service endpoint onto a VLAN (used to
  // bridge BMI/Keylime/tenant-controller into airlocks and enclaves).
  void BridgeServiceOntoVlan(net::Address service, net::VlanId vlan);
  void UnbridgeServiceFromVlan(net::Address service, net::VlanId vlan);

  // Creates an extra service endpoint (e.g. a tenant-deployed Keylime or
  // a tenant controller "outside the cloud").
  net::Endpoint& CreateServiceEndpoint(const std::string& name);

  // The prototype's single-airlock limitation (Fig. 5).
  sim::Semaphore& airlock_slots() { return airlock_slots_; }

  // Public (provider) networks.
  net::VlanId provisioning_vlan() const { return provisioning_vlan_; }
  net::VlanId attestation_vlan() const { return attestation_vlan_; }
  net::VlanId rejected_vlan() const { return rejected_vlan_; }

 private:
  class MachineBmc;

  CloudConfig config_;
  sim::Simulation sim_;
  net::Network fabric_;
  hil::Hil hil_;
  storage::ObjectStore ceph_;
  storage::ImageStore images_;

  firmware::FirmwareImage uefi_;
  firmware::FirmwareImage linuxboot_;
  firmware::FirmwareImage heads_runtime_;
  firmware::FirmwareImage ipxe_;
  crypto::Digest agent_digest_{};

  std::vector<std::unique_ptr<machine::Machine>> machines_;
  std::vector<std::unique_ptr<MachineBmc>> bmcs_;

  std::unique_ptr<net::SharedResource> bmi_cpu_;
  std::unique_ptr<net::SharedResource> bmi_esp_cpu_;
  std::unique_ptr<bmi::BmiService> bmi_;
  std::unique_ptr<keylime::Registrar> registrar_;
  std::unique_ptr<keylime::Verifier> verifier_;
  // Indexed by switch id (0 = core).
  std::vector<std::unique_ptr<provision::RackChunkCache>> rack_chunk_caches_;

  net::VlanId provisioning_vlan_ = 0;
  net::VlanId attestation_vlan_ = 0;
  net::VlanId rejected_vlan_ = 0;
  sim::Semaphore airlock_slots_;
};

}  // namespace bolted::core

#endif  // SRC_CORE_CLOUD_H_
