// Calibration constants for the simulated testbed (§7.1 of the paper).
//
// Every number here is sourced from the paper's text or chosen to land in
// the same regime as the authors' hardware; benches sweep the interesting
// ones.  Changing a constant changes the simulated testbed, not the
// system logic.

#ifndef SRC_CORE_CALIBRATION_H_
#define SRC_CORE_CALIBRATION_H_

#include "src/net/ipsec.h"
#include "src/sim/time.h"
#include "src/storage/crypt_device.h"
#include "src/storage/merkle_device.h"
#include "src/storage/object_store.h"
#include "src/tpm/tpm.h"

namespace bolted::core {

struct Calibration {
  // --- Network (10 Gbit switch, §7.1) ------------------------------------
  double nic_bandwidth_bytes_per_second = 1.25e9;
  sim::Duration network_latency = sim::Duration::Microseconds(30);
  net::IpsecCostModel ipsec;

  // --- Servers (Dell M620: 2x8 cores E5-2650v2 @ 2.6 GHz, 64 GB) ---------
  int cores = 16;
  double core_hz = 2.6e9;
  uint64_t memory_bytes = 64ull << 30;
  double memory_scrub_bytes_per_second = 8e9;
  tpm::TpmLatencyModel tpm_latency;

  // --- Storage (Ceph: 3 OSD hosts, 27 spindles; LUKS ceilings, Fig 3a) ---
  storage::ObjectStoreConfig ceph;
  storage::CryptCostModel luks;
  storage::MerkleCostModel merkle;
  double ram_disk_read_bytes_per_second = 5.2e9;
  double ram_disk_write_bytes_per_second = 3.6e9;
  uint64_t iscsi_read_ahead_bytes = storage::kTunedReadAhead;

  // --- Images and boot (Fedora 28 image, §7.1; Fig 4 phases) -------------
  uint64_t image_virtual_bytes = 20ull << 30;
  // "less than 1% of the image is typically used" during a network boot.
  uint64_t boot_read_bytes = 500ull << 20;
  // Mostly scattered small reads during kernel+userspace boot.
  uint64_t boot_random_chunk_bytes = 32 * 1024;
  double boot_sequential_fraction = 0.15;
  uint64_t kernel_bytes = 8ull << 20;
  uint64_t initrd_bytes = 45ull << 20;
  uint64_t keylime_agent_bytes = 30ull << 20;
  // The prototype serves artifacts over plain single-stream HTTP (the
  // paper calls this out as an optimisation opportunity).
  double artifact_http_bytes_per_second = 20e6;
  // Content-addressed distribution (DESIGN.md §14): chunk granularity and
  // the per-rack cache budget.  8 GB comfortably holds a fleet's boot
  // working set (~500 MB) many images over.
  uint64_t chunk_bytes = 4ull << 20;
  uint64_t rack_chunk_cache_bytes = 8ull << 30;
  sim::Duration linuxboot_init_time = sim::Duration::Seconds(15);
  sim::Duration agent_start_time = sim::Duration::Seconds(3);
  sim::Duration kexec_time = sim::Duration::Seconds(2);
  // Kernel + userspace service start, excluding root-disk reads.
  sim::Duration kernel_init_time = sim::Duration::Seconds(20);

  // --- HIL / switch reconfiguration time ----------------------------------
  sim::Duration switch_reconfig_time = sim::Duration::Seconds(3);
  sim::Duration bmc_power_cycle_time = sim::Duration::Seconds(10);

  // --- Keylime ------------------------------------------------------------
  sim::Duration continuous_attestation_interval = sim::Duration::Seconds(2);

  // The paper's prototype supports a single airlock at a time, which
  // serializes attested provisioning (Fig. 5's attested curve).
  int max_concurrent_airlocks = 1;
};

inline Calibration DefaultCalibration() { return Calibration{}; }

}  // namespace bolted::core

#endif  // SRC_CORE_CALIBRATION_H_
