#include "src/core/cloud.h"

namespace bolted::core {

// Adapts a Machine's BMC to HIL's narrow handle.
class Cloud::MachineBmc : public hil::BmcHandle {
 public:
  explicit MachineBmc(machine::Machine& machine) : machine_(machine) {}
  void PowerCycle() override { machine_.PowerCycleReset(); }

 private:
  machine::Machine& machine_;
};

Cloud::Cloud(const CloudConfig& config)
    : config_(config),
      sim_(config.scheduler, config.seed),
      fabric_(sim_, config.cal.network_latency,
              config.cal.nic_bandwidth_bytes_per_second),
      hil_(fabric_),
      ceph_(sim_, config.cal.ceph),
      images_(sim_, ceph_),
      airlock_slots_(sim_, config.cal.max_concurrent_airlocks) {
  // Firmware the provider ships (and publishes measurements for).
  uefi_ = firmware::VendorUefi("dell-uefi-2.7.1");
  linuxboot_ = firmware::BuildLinuxBoot("linuxboot-src-v1.0");
  heads_runtime_ = firmware::BuildHeadsRuntime("linuxboot-src-v1.0");
  ipxe_ = firmware::ModifiedIpxe("ipxe-1.20-measured");
  agent_digest_ = crypto::Sha256::Hash("keylime-agent-v6");

  hil_.PublishPlatformMeasurement(uefi_.digest, "vendor UEFI 2.7.1");
  hil_.PublishPlatformMeasurement(linuxboot_.digest, "LinuxBoot v1.0");

  // Public service networks.
  provisioning_vlan_ = hil_.CreatePublicNetwork("bolted-provisioning");
  attestation_vlan_ = hil_.CreatePublicNetwork("bolted-attestation");
  rejected_vlan_ = hil_.CreatePublicNetwork("bolted-rejected");

  // Machines.
  machine::MachineConfig mc;
  mc.cores = config.cal.cores;
  mc.core_hz = config.cal.core_hz;
  mc.memory_bytes = config.cal.memory_bytes;
  mc.memory_scrub_bytes_per_second = config.cal.memory_scrub_bytes_per_second;
  mc.nic_bandwidth_bytes_per_second = config.cal.nic_bandwidth_bytes_per_second;
  mc.tpm_latency = config.cal.tpm_latency;
  mc.flash_firmware = config.linuxboot_in_flash ? linuxboot_ : uefi_;
  for (int r = 1; r < config.racks; ++r) {
    fabric_.AddSwitch(config.rack_uplink_bytes_per_second);
  }
  for (int i = 0; i < config.num_machines; ++i) {
    auto m = std::make_unique<machine::Machine>(sim_, fabric_, node_name(i), mc);
    if (config.racks > 1) {
      // Round-robin over racks; racks 1..N-1 are ToR switches, rack 0
      // (and every service host) stays on the core switch.
      const int rack = i % config.racks;
      if (rack != 0) {
        fabric_.AssignToSwitch(m->endpoint().address(), rack);
      }
    }
    bmcs_.push_back(std::make_unique<MachineBmc>(*m));
    hil_.RegisterNode(node_name(i), m->endpoint().address(), bmcs_.back().get());
    // The provider publishes each node's TPM EK (anti-spoofing, §5).
    hil_.SetNodeMetadata(node_name(i), "tpm_ek",
                         crypto::ToHex(m->tpm().ek_public().Encode()));
    machines_.push_back(std::move(m));
  }

  // Provider-deployed services on their own hosts.
  net::Endpoint& bmi_ep = fabric_.CreateEndpoint("svc-bmi");
  fabric_.AttachToVlan(bmi_ep.address(), provisioning_vlan_);
  bmi_ = std::make_unique<bmi::BmiService>(sim_, bmi_ep, images_);
  // TGT ran in an 8-vCPU VM; per-request processing is what saturates
  // under concurrent boots.
  bmi_cpu_ = std::make_unique<net::SharedResource>(sim_, 2.0 * config.cal.core_hz,
                                                   "svc-bmi.cpu");
  bmi_esp_cpu_ = std::make_unique<net::SharedResource>(
      sim_, 1.2 * config.cal.core_hz, "svc-bmi.esp");
  bmi_->iscsi_target().SetProcessingModel(bmi_cpu_.get(), /*cycles_per_request=*/1.6e6,
                                          /*cycles_per_byte=*/0.4);
  bmi_->SetHttpRate(config.cal.artifact_http_bytes_per_second);
  bmi_->PublishArtifact("ipxe", bmi::Artifact{ipxe_.image_bytes, ipxe_.digest});
  bmi_->PublishArtifact("heads-runtime", bmi::Artifact{heads_runtime_.image_bytes,
                                                       heads_runtime_.digest});
  bmi_->PublishArtifact("keylime-agent", bmi::Artifact{
                                             config.cal.keylime_agent_bytes,
                                             agent_digest_});

  // Per-rack chunk caches (DESIGN.md §14): one service endpoint per
  // switch, each attached to the provisioning VLAN so booting nodes can
  // reach it.  Cache 0 sits on the core switch beside the other services;
  // rack caches hang off their ToR switch, so a rack-local hit never
  // crosses the uplink.
  if (config.chunked_distribution) {
    for (int s = 0; s < fabric_.num_switches(); ++s) {
      net::Endpoint& cache_ep =
          s == 0 ? fabric_.CreateEndpoint("svc-chunk-0")
                 : fabric_.CreateEndpointOnSwitch(
                       "svc-chunk-" + std::to_string(s), s);
      fabric_.AttachToVlan(cache_ep.address(), provisioning_vlan_);
      rack_chunk_caches_.push_back(std::make_unique<provision::RackChunkCache>(
          sim_, cache_ep, ceph_, config.cal.rack_chunk_cache_bytes));
    }
  }

  net::Endpoint& registrar_ep = fabric_.CreateEndpoint("svc-registrar");
  fabric_.AttachToVlan(registrar_ep.address(), attestation_vlan_);
  registrar_ = std::make_unique<keylime::Registrar>(sim_, registrar_ep,
                                                    config.seed ^ 0x5265670000u);

  net::Endpoint& verifier_ep = fabric_.CreateEndpoint("svc-verifier");
  fabric_.AttachToVlan(verifier_ep.address(), attestation_vlan_);
  verifier_ = std::make_unique<keylime::Verifier>(
      sim_, verifier_ep, registrar_ep.address(), config.seed ^ 0x5665720000u);
}

Cloud::~Cloud() = default;

std::string Cloud::node_name(size_t i) const {
  return "node-" + std::to_string(i);
}

machine::Machine* Cloud::FindMachine(const std::string& node) {
  for (auto& m : machines_) {
    if (m->name() == node) {
      return m.get();
    }
  }
  return nullptr;
}

void Cloud::BridgeServiceOntoVlan(net::Address service, net::VlanId vlan) {
  fabric_.AttachToVlan(service, vlan);
}

void Cloud::UnbridgeServiceFromVlan(net::Address service, net::VlanId vlan) {
  fabric_.DetachFromVlan(service, vlan);
}

net::Endpoint& Cloud::CreateServiceEndpoint(const std::string& name) {
  return fabric_.CreateEndpoint(name);
}

provision::RackChunkCache* Cloud::rack_chunk_cache_for(net::Address node) {
  if (rack_chunk_caches_.empty()) {
    return nullptr;
  }
  const size_t sw = static_cast<size_t>(fabric_.SwitchOf(node));
  return sw < rack_chunk_caches_.size() ? rack_chunk_caches_[sw].get()
                                        : rack_chunk_caches_[0].get();
}

}  // namespace bolted::core
