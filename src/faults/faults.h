// Deterministic fault injection for chaos testing (DESIGN.md §8).
//
// A FaultPlan is a concrete, seed-derived schedule of infrastructure
// faults: frame-level misbehaviour at the switch (drop / duplicate /
// delay), link flaps, fabric partitions, machine crash+reboot, and TPM
// command failures or latency spikes.  The FaultInjector arms the plan
// against a simulated cloud: it installs the network fault filter and TPM
// fault hooks and schedules the discrete events on the simulation clock.
//
// Everything derives from a single uint64 seed through dedicated Rng
// streams, so a failing chaos run replays bit-for-bit from that seed —
// including the frame-level coin flips, whose draw order follows the
// (deterministic) simulated frame stream.
//
// Faults only fire inside the plan's active window.  After the horizon
// the fabric is healthy again (in-flight flaps and reboots still end), so
// harnesses can assert convergence: verdicts settle, provisioning either
// completed or failed cleanly.

#ifndef SRC_FAULTS_FAULTS_H_
#define SRC_FAULTS_FAULTS_H_

#include <cstdint>
#include <vector>

#include "src/machine/machine.h"
#include "src/net/network.h"
#include "src/sim/random.h"
#include "src/sim/simulation.h"

namespace bolted::faults {

// Intensity knobs; defaults model a moderately hostile fabric.  Rates are
// per-frame (or per-TPM-command) probabilities.
struct FaultProfile {
  // Faults fire in [armed, armed + horizon); afterwards the fabric heals.
  sim::Duration horizon = sim::Duration::Minutes(5);

  double frame_drop_rate = 0.02;
  double frame_dup_rate = 0.01;
  double frame_delay_rate = 0.05;
  sim::Duration max_extra_delay = sim::Duration::Milliseconds(250);

  int link_flaps = 3;
  sim::Duration max_flap = sim::Duration::Seconds(8);

  int partitions = 1;
  sim::Duration max_partition = sim::Duration::Seconds(10);

  int crashes = 1;
  // A crashed machine is unreachable (link down) for this long before its
  // BMC completes the power cycle and the link returns.
  sim::Duration crash_reboot = sim::Duration::Seconds(10);

  double tpm_fail_rate = 0.05;
  double tpm_spike_rate = 0.05;
  sim::Duration max_tpm_spike = sim::Duration::Seconds(4);
};

// Targets are indices into the injector's machine list (AddTarget order).
struct LinkFlapEvent {
  size_t target = 0;
  sim::Duration at{};  // offset from arming
  sim::Duration duration{};
};

struct PartitionEvent {
  sim::Duration at{};
  sim::Duration duration{};
  uint64_t salt = 0;  // decides the two endpoint groups
};

struct CrashEvent {
  size_t target = 0;
  sim::Duration at{};
};

// The discrete half of the schedule.  Same (seed, profile, num_targets)
// always generates the same plan.
struct FaultPlan {
  uint64_t seed = 0;
  FaultProfile profile;
  std::vector<LinkFlapEvent> flaps;
  std::vector<PartitionEvent> partitions;
  std::vector<CrashEvent> crashes;

  static FaultPlan Generate(uint64_t seed, const FaultProfile& profile,
                            size_t num_targets);

  // Splits a fleet-wide plan into one plan per rack for the sharded
  // runtime (src/sim/shard.h), where each rack arms its own injector
  // against its own fabric partition.  rack_of_target[i] names the rack
  // owning plan target i; flap and crash events are routed to the owning
  // rack's plan with their target index rewritten to that rack's local
  // AddTarget order (global order preserved within a rack).  Partition
  // events describe fabric-wide splits, so every rack receives a copy —
  // the salt-based grouping keys on addresses, which stay globally
  // unique, so the per-rack injectors reconstruct the same global cut.
  // Union of the returned plans' discrete events == this plan's events.
  std::vector<FaultPlan> PartitionByRack(
      const std::vector<uint32_t>& rack_of_target, uint32_t racks) const;
};

class FaultInjector {
 public:
  FaultInjector(sim::Simulation& sim, net::Network& network, FaultPlan plan);

  // Machines eligible for crashes, link flaps, and TPM faults.  Add all
  // targets before Arm(); AddTarget order defines plan target indices.
  void AddTarget(machine::Machine* machine);

  // Installs the network fault filter and TPM hooks and schedules the
  // plan's discrete events relative to now.  Call once.
  void Arm();

  const FaultPlan& plan() const { return plan_; }
  // First instant at which no new fault can fire (in-flight flap/reboot
  // recoveries may still be pending — they only heal).
  sim::Time quiesce_time() const { return armed_at_ + plan_.profile.horizon; }

  uint64_t crashes_injected() const { return crashes_injected_; }
  uint64_t flaps_injected() const { return flaps_injected_; }
  uint64_t partition_windows() const { return partition_windows_; }
  uint64_t partition_drops() const { return partition_drops_; }
  uint64_t tpm_faults_injected() const { return tpm_faults_injected_; }

 private:
  bool Active() const;
  net::FrameFault FrameVerdict(const net::Message& message);
  tpm::TpmFault TpmVerdict();
  bool PartitionGroup(net::Address address) const;

  sim::Simulation& sim_;
  net::Network& network_;
  FaultPlan plan_;
  std::vector<machine::Machine*> targets_;
  sim::Rng rng_;  // frame/TPM coin flips; independent of the sim's own Rng
  sim::Time armed_at_;
  bool armed_ = false;
  bool partition_active_ = false;
  uint64_t partition_salt_ = 0;
  uint64_t crashes_injected_ = 0;
  uint64_t flaps_injected_ = 0;
  uint64_t partition_windows_ = 0;
  uint64_t partition_drops_ = 0;
  uint64_t tpm_faults_injected_ = 0;
};

}  // namespace bolted::faults

#endif  // SRC_FAULTS_FAULTS_H_
