#include "src/faults/faults.h"

#include "src/obs/obs.h"

namespace bolted::faults {
namespace {

// splitmix64 finalizer: spreads an address+salt into group bits.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15u;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9u;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebu;
  return x ^ (x >> 31);
}

// Uniform offset in the middle of the active window, so every scheduled
// fault has room to land before the horizon.
sim::Duration WindowOffset(sim::Rng& rng, sim::Duration horizon) {
  return horizon.Scaled(rng.Uniform(0.05, 0.85));
}

sim::Duration UniformDuration(sim::Rng& rng, sim::Duration max) {
  return max.Scaled(rng.Uniform(0.25, 1.0));
}

}  // namespace

FaultPlan FaultPlan::Generate(uint64_t seed, const FaultProfile& profile,
                              size_t num_targets) {
  FaultPlan plan;
  plan.seed = seed;
  plan.profile = profile;
  // A dedicated stream per fault class keeps the plan stable under profile
  // tweaks to one class (e.g. more crashes never reshuffles the flaps).
  sim::Rng flap_rng(Mix(seed ^ 0x666c6170u));       // "flap"
  sim::Rng partition_rng(Mix(seed ^ 0x70617274u));  // "part"
  sim::Rng crash_rng(Mix(seed ^ 0x63726173u));      // "cras"
  if (num_targets > 0) {
    for (int i = 0; i < profile.link_flaps; ++i) {
      LinkFlapEvent flap;
      flap.target = static_cast<size_t>(flap_rng.NextBelow(num_targets));
      flap.at = WindowOffset(flap_rng, profile.horizon);
      flap.duration = UniformDuration(flap_rng, profile.max_flap);
      plan.flaps.push_back(flap);
    }
    for (int i = 0; i < profile.crashes; ++i) {
      CrashEvent crash;
      crash.target = static_cast<size_t>(crash_rng.NextBelow(num_targets));
      crash.at = WindowOffset(crash_rng, profile.horizon);
      plan.crashes.push_back(crash);
    }
  }
  for (int i = 0; i < profile.partitions; ++i) {
    PartitionEvent partition;
    partition.at = WindowOffset(partition_rng, profile.horizon);
    partition.duration = UniformDuration(partition_rng, profile.max_partition);
    partition.salt = partition_rng.NextU64();
    plan.partitions.push_back(partition);
  }
  return plan;
}

std::vector<FaultPlan> FaultPlan::PartitionByRack(
    const std::vector<uint32_t>& rack_of_target, uint32_t racks) const {
  std::vector<FaultPlan> parts(racks);
  // Rack-local target index of global target i = its rank among the
  // targets assigned to the same rack, in global (AddTarget) order — the
  // order a per-rack harness naturally re-adds them in.
  std::vector<size_t> local_index(rack_of_target.size(), 0);
  std::vector<size_t> next_local(racks, 0);
  for (size_t i = 0; i < rack_of_target.size(); ++i) {
    local_index[i] = next_local[rack_of_target[i]]++;
  }
  for (uint32_t r = 0; r < racks; ++r) {
    parts[r].seed = seed;
    parts[r].profile = profile;
    // Every rack sees the full fabric-wide partition schedule; the
    // address-salt grouping reproduces the same global cut locally.
    parts[r].partitions = partitions;
  }
  for (const LinkFlapEvent& flap : flaps) {
    const uint32_t r = rack_of_target[flap.target];
    LinkFlapEvent local = flap;
    local.target = local_index[flap.target];
    parts[r].flaps.push_back(local);
  }
  for (const CrashEvent& crash : crashes) {
    const uint32_t r = rack_of_target[crash.target];
    CrashEvent local = crash;
    local.target = local_index[crash.target];
    parts[r].crashes.push_back(local);
  }
  return parts;
}

FaultInjector::FaultInjector(sim::Simulation& sim, net::Network& network,
                             FaultPlan plan)
    : sim_(sim),
      network_(network),
      plan_(std::move(plan)),
      rng_(Mix(plan_.seed ^ 0x6672616du)) {}  // "fram"

void FaultInjector::AddTarget(machine::Machine* machine) {
  targets_.push_back(machine);
}

bool FaultInjector::Active() const {
  return armed_ && sim_.now() < quiesce_time();
}

bool FaultInjector::PartitionGroup(net::Address address) const {
  return (Mix(partition_salt_ ^ address) & 1) != 0;
}

net::FrameFault FaultInjector::FrameVerdict(const net::Message& message) {
  net::FrameFault fault;
  if (!Active()) {
    return fault;
  }
  // A partition is absolute for cross-group pairs — no coin flip.
  if (partition_active_ &&
      PartitionGroup(message.src) != PartitionGroup(message.dst)) {
    ++partition_drops_;
    fault.drop = true;
    return fault;
  }
  if (rng_.NextDouble() < plan_.profile.frame_drop_rate) {
    fault.drop = true;
    return fault;
  }
  if (rng_.NextDouble() < plan_.profile.frame_dup_rate) {
    fault.duplicates = 1;
  }
  if (rng_.NextDouble() < plan_.profile.frame_delay_rate) {
    fault.extra_delay =
        plan_.profile.max_extra_delay.Scaled(rng_.Uniform(0.0, 1.0));
  }
  return fault;
}

tpm::TpmFault FaultInjector::TpmVerdict() {
  tpm::TpmFault fault;
  if (!Active()) {
    return fault;
  }
  if (rng_.NextDouble() < plan_.profile.tpm_fail_rate) {
    fault.fail = true;
    ++tpm_faults_injected_;
    obs::Count(sim_, "fault.tpm");
  }
  if (rng_.NextDouble() < plan_.profile.tpm_spike_rate) {
    fault.extra_latency =
        plan_.profile.max_tpm_spike.Scaled(rng_.Uniform(0.1, 1.0));
    if (!fault.fail) {
      ++tpm_faults_injected_;
      obs::Count(sim_, "fault.tpm");
    }
  }
  return fault;
}

void FaultInjector::Arm() {
  armed_ = true;
  armed_at_ = sim_.now();
  network_.SetFaultFilter(
      [this](const net::Message& message) { return FrameVerdict(message); });
  for (machine::Machine* target : targets_) {
    target->tpm().SetFaultHook(
        [this](std::string_view) { return TpmVerdict(); });
  }

  for (const LinkFlapEvent& flap : plan_.flaps) {
    machine::Machine* target = targets_.at(flap.target);
    const net::Address address = target->address();
    sim_.Schedule(flap.at, [this, address]() {
      ++flaps_injected_;
      sim_.RecordTraceEvent(0xf1a0u ^ address);
      obs::Instant(sim_, "fault.flap", "fault", "faults",
                   {{"target", std::to_string(address)}});
      network_.SetLinkUp(address, false);
    });
    // The recovery always fires, even past the horizon: faults stop, heals
    // don't.
    sim_.Schedule(flap.at + flap.duration,
                  [this, address]() { network_.SetLinkUp(address, true); });
  }

  for (const PartitionEvent& partition : plan_.partitions) {
    sim_.Schedule(partition.at, [this, salt = partition.salt]() {
      ++partition_windows_;
      sim_.RecordTraceEvent(0x9a27u ^ salt);
      obs::Instant(sim_, "fault.partition", "fault", "faults",
                   {{"salt", std::to_string(salt)}});
      partition_active_ = true;
      partition_salt_ = salt;
    });
    sim_.Schedule(partition.at + partition.duration,
                  [this]() { partition_active_ = false; });
  }

  for (const CrashEvent& crash : plan_.crashes) {
    machine::Machine* target = targets_.at(crash.target);
    sim_.Schedule(crash.at, [this, target]() {
      ++crashes_injected_;
      sim_.RecordTraceEvent(0xc4a5u ^ target->address());
      obs::Instant(sim_, "fault.crash", "fault", "faults",
                   {{"target", std::to_string(target->address())}});
      // The BMC-level power cycle wipes PCRs and the boot log; the machine
      // drops off the fabric until the cycle completes.  It comes back
      // *unbooted* — continuous attestation must catch that, not forgive
      // it.
      target->PowerCycleReset();
      target->set_power_state(machine::PowerState::kOff);
      network_.SetLinkUp(target->address(), false);
      sim_.Schedule(plan_.profile.crash_reboot, [this, target]() {
        network_.SetLinkUp(target->address(), true);
      });
    });
  }
}

}  // namespace bolted::faults
