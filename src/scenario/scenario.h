// Declarative scenario engine: long-horizon multi-tenant lifecycle runs
// (DESIGN.md §13).
//
// A ScenarioSpec declares, in data, everything a lifecycle run needs:
// tenant arrival processes (fixed / Poisson / burst), tenant sizes and
// security tiers, run duration, a fault mix (delegating to faults::
// FaultProfile, or an explicit plan), and a schedule of lifecycle phases —
// provision/release churn, a mass-reboot attestation storm, a rolling
// firmware upgrade with staged canaries and rollback-on-failed-attest, a
// compromise-detection sweep that quarantines and re-provisions, and
// elastic airlock resizing under load.
//
// Specs come from a small line-oriented text format (examples/scenarios/)
// or are built programmatically (ScenarioBuilder).  The runners
// (src/scenario/runner.h for the full-fidelity single-Simulation oracle,
// src/scenario/sharded.h for the rack-sharded fleet model) turn a spec
// into a seed-replayable run that asserts the chaos-suite invariants
// continuously, making every scenario an executable specification.

#ifndef SRC_SCENARIO_SCENARIO_H_
#define SRC_SCENARIO_SCENARIO_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/faults/faults.h"
#include "src/sim/time.h"

namespace bolted::scenario {

// Security tiers mirror §4.3's personas (core::TrustProfile).
enum class Tier { kAlice, kBob, kCharlie };

struct TenantSpec {
  std::string name;
  Tier tier = Tier::kCharlie;
  int nodes = 1;
};

enum class ArrivalKind { kFixed, kPoisson, kBurst };

// How tenant nodes (and churn operations) arrive over time.
struct ArrivalProcess {
  ArrivalKind kind = ArrivalKind::kFixed;
  sim::Duration fixed_spacing = sim::Duration::Seconds(5);  // kFixed
  double rate_per_minute = 6.0;                             // kPoisson
  int burst_size = 4;                                       // kBurst
  sim::Duration burst_interval = sim::Duration::Seconds(60);
};

enum class PhaseKind {
  kChurn,            // continuous provision/release loops
  kRebootStorm,      // mass reboot -> attestation storm
  kRollingUpgrade,   // staged firmware canaries, rollback on failed attest
  kQuarantineSweep,  // compromise detection -> quarantine -> re-provision
  kAirlockResize,    // elastic airlock capacity change under load
};

struct PhaseSpec {
  PhaseKind kind = PhaseKind::kChurn;
  sim::Duration start{};     // offset from scenario start
  sim::Duration duration{};  // zero for one-shot phases
  // Phase-specific knobs (only the relevant ones are read):
  sim::Duration hold = sim::Duration::Seconds(120);  // churn: mean hold time
  double release_fraction = 0.5;   // churn: P(release | node allocated)
  double storm_fraction = 1.0;     // reboot_storm: fraction rebooted
  int canaries = 1;                // rolling_upgrade: staged first wave
  bool bad_image = false;          // rolling_upgrade: flash a compromised
                                   // image (whitelist still expects the
                                   // clean build) -> canaries must fail
                                   // attestation and trigger rollback
  double compromise_fraction = 0.5;  // quarantine_sweep: fraction implanted
  int airlock_slots = 0;           // airlock_resize: new capacity
};

enum class FaultMode {
  kOff,   // healthy fabric
  kOn,    // seed-derived FaultPlan::Generate from `fault_profile`
  kPlan,  // only the spec's explicit crash/flap events fire
};

struct ScenarioSpec {
  std::string name = "scenario";
  uint64_t seed = 1;
  sim::Duration duration = sim::Duration::Minutes(10);
  int machines = 4;
  int airlock_slots = 4;
  // Fleet calibration (32 MiB boot image) keeps long-horizon runs cheap;
  // `calibration paper` restores the full Fig-4 boot volume.
  bool fleet_calibration = true;

  std::vector<TenantSpec> tenants;
  ArrivalProcess arrival;

  FaultMode faults = FaultMode::kOff;
  faults::FaultProfile fault_profile;
  // Explicit events (FaultMode::kPlan, or appended to the generated plan
  // when kOn).  Targets index the cloud's machines.
  std::vector<faults::CrashEvent> crashes;
  std::vector<faults::LinkFlapEvent> flaps;

  std::vector<PhaseSpec> phases;

  // Parses the text format.  On failure returns false and sets *error to
  // an exact, stable message ("line N: ..." for syntax, plain for
  // semantic validation) — tests assert these strings verbatim.
  static bool Parse(std::string_view text, ScenarioSpec* spec,
                    std::string* error);

  // Semantic validation (also run by Parse).  Empty string when valid.
  std::string Validate() const;

  int total_tenant_nodes() const;
};

// Fluent programmatic builder for tests and benches.
class ScenarioBuilder {
 public:
  explicit ScenarioBuilder(std::string name) { spec_.name = std::move(name); }

  ScenarioBuilder& Seed(uint64_t seed) { spec_.seed = seed; return *this; }
  ScenarioBuilder& Duration(sim::Duration d) { spec_.duration = d; return *this; }
  ScenarioBuilder& Machines(int n) { spec_.machines = n; return *this; }
  ScenarioBuilder& AirlockSlots(int n) { spec_.airlock_slots = n; return *this; }
  ScenarioBuilder& PaperCalibration() { spec_.fleet_calibration = false; return *this; }
  ScenarioBuilder& Tenant(std::string name, Tier tier, int nodes) {
    spec_.tenants.push_back({std::move(name), tier, nodes});
    return *this;
  }
  ScenarioBuilder& Arrival(ArrivalProcess arrival) {
    spec_.arrival = arrival;
    return *this;
  }
  ScenarioBuilder& Faults(FaultMode mode) { spec_.faults = mode; return *this; }
  ScenarioBuilder& FaultProfile(const faults::FaultProfile& profile) {
    spec_.fault_profile = profile;
    return *this;
  }
  ScenarioBuilder& Crash(size_t target, sim::Duration at) {
    spec_.crashes.push_back({.target = target, .at = at});
    return *this;
  }
  ScenarioBuilder& Flap(size_t target, sim::Duration at, sim::Duration duration) {
    spec_.flaps.push_back({.target = target, .at = at, .duration = duration});
    return *this;
  }
  ScenarioBuilder& Phase(PhaseSpec phase) {
    spec_.phases.push_back(phase);
    return *this;
  }

  // Returns the spec; *error (optional) receives the validation verdict.
  ScenarioSpec Build(std::string* error = nullptr) const {
    if (error != nullptr) {
      *error = spec_.Validate();
    }
    return spec_;
  }

 private:
  ScenarioSpec spec_;
};

// "churn" -> PhaseKind::kChurn etc.; the canonical names the text format
// and the obs phase spans share.
std::string_view PhaseName(PhaseKind kind);

}  // namespace bolted::scenario

#endif  // SRC_SCENARIO_SCENARIO_H_
