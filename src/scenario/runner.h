// Full-fidelity scenario runner (DESIGN.md §13).
//
// Turns a ScenarioSpec into one long-horizon run against a real
// core::Cloud — real enclaves, real Keylime, real fault injection — and
// continuously asserts the chaos-suite invariants while the lifecycle
// phases fire:
//
//   (a) isolation:   the provider sniffer sees no cross-enclave frame;
//   (b) convergence: after the run quiesces every node is allocated and
//                    passing attestation;
//   (c) clean abort: every failed provision left no residue (reason
//                    recorded, node in the rejected pool, deregistered,
//                    no root device) and the node re-provisions cleanly;
//   (d) replayable:  ScenarioResult.digest is a pure function of the spec
//                    (callers replay and compare byte-for-byte).
//
// This is the oracle: the rack-sharded scenario model (sharded.h) must
// match its phase semantics, and tests compare its per-seed verdicts and
// digests across replays and schedulers.

#ifndef SRC_SCENARIO_RUNNER_H_
#define SRC_SCENARIO_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/enclave.h"
#include "src/scenario/scenario.h"
#include "src/sim/scheduler.h"

namespace bolted::scenario {

// What actually happened, phase by phase — the non-vacuousness witnesses
// (a scenario whose quarantine sweep never quarantined anything is a bug
// in the scenario, not a pass).
struct ScenarioStats {
  uint64_t provisions = 0;
  uint64_t provision_failures = 0;
  uint64_t releases = 0;
  uint64_t churn_cycles = 0;
  uint64_t storm_reboots = 0;
  uint64_t upgrades = 0;
  uint64_t rollbacks = 0;
  uint64_t compromises = 0;
  uint64_t quarantines = 0;
  uint64_t airlock_resizes = 0;
  uint64_t faults_fired = 0;
};

struct ScenarioResult {
  // Invariant violations in detection order; empty == every chaos-suite
  // invariant held for the whole run.
  std::vector<std::string> failures;
  bool ok() const { return failures.empty(); }

  // Whole-cloud event-trace digest — the replay invariant.  Two runs of
  // the same spec must agree byte-for-byte.
  uint64_t digest = 0;
  // Final verdict per node, in cloud machine order: the convergence
  // vector replays (and the sharded model) are compared against.
  std::vector<core::NodeState> final_states;

  ScenarioStats stats;
  sim::Duration sim_elapsed{};
};

// Runs the spec to completion on a freshly built cloud.  The spec must be
// valid (Parse/Validate); an invalid spec yields a single-failure result
// rather than a crash.
ScenarioResult RunScenario(
    const ScenarioSpec& spec,
    sim::SchedulerKind scheduler = sim::SchedulerKind::kDefault);

}  // namespace bolted::scenario

#endif  // SRC_SCENARIO_RUNNER_H_
