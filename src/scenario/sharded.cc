#include "src/scenario/sharded.h"

#include <algorithm>

#include "src/core/enclave.h"  // core::NodeState values for final_states
#include "src/sim/shard.h"

namespace bolted::scenario {
namespace {

// Measurement ids.  v1 is the fleet's baseline firmware; v2 is the
// rollout target (whitelisted ahead of the reflash, the deterministic-
// build property); the compromised variant and the runtime implant are
// never whitelisted — attestation is what catches them.
constexpr uint32_t kMeasV1 = 1;
constexpr uint32_t kMeasV2 = 2;
constexpr uint32_t kMeasV2Bad = 3;
constexpr uint32_t kMeasImplant = 4;

constexpr uint32_t kFrameQuote = 1;
constexpr uint32_t kFrameVerdict = 2;
constexpr uint32_t kFrameRolloutGo = 3;
constexpr uint32_t kFrameRolloutAbort = 4;

constexpr uint32_t kVerifierRack = 0;

enum : uint8_t {
  kFree = static_cast<uint8_t>(core::NodeState::kFree),
  kProvisioning = static_cast<uint8_t>(core::NodeState::kAirlock),
  kAllocated = static_cast<uint8_t>(core::NodeState::kAllocated),
  kQuarantined = static_cast<uint8_t>(core::NodeState::kRejected),
};

struct NodeModel {
  uint8_t state = kFree;
  uint32_t flash = kMeasV1;    // firmware in SPI flash
  uint32_t reported = kMeasV1; // what quotes measure (implant when owned)
  uint32_t pending = kMeasV1;  // firmware the next provision boots
  uint32_t gen = 0;            // bumps on every release; stales in-flight work
  int64_t provision_start_ns = 0;
  int64_t quote_sent_ns = 0;
};

struct RackModel {
  std::vector<NodeModel> nodes;
  std::vector<std::string> failures;

  uint64_t provisions = 0;
  uint64_t quotes = 0;
  uint64_t churn_cycles = 0;
  uint64_t storm_reboots = 0;
  uint64_t upgrades = 0;
  uint64_t rollbacks = 0;
  uint64_t compromises = 0;
  uint64_t quarantines = 0;

  uint64_t prov_count = 0, prov_sum = 0, prov_max = 0;
  uint64_t att_count = 0, att_sum = 0, att_max = 0;

  // Rack-0 only: the staged-rollout controller.
  uint32_t canary_pending = 0;
  bool canary_failed = false;
  bool rollout_decided = false;
};

class Model {
 public:
  explicit Model(const ShardedScenarioConfig& config) : config_(config) {
    const uint64_t total =
        static_cast<uint64_t>(config.racks) * config.nodes_per_rack;
    tenant_of_.resize(total);
    for (uint64_t i = 0; i < total; ++i) {
      tenant_of_[i] = static_cast<uint8_t>(i % std::max(1u, config.tenants));
    }
    racks_.resize(config.racks);
    for (RackModel& rack : racks_) {
      rack.nodes.resize(config.nodes_per_rack);
    }
    upgrade_image_ = config.bad_image ? kMeasV2Bad : kMeasV2;
  }

  ShardedScenarioResult Run();

 private:
  uint64_t NodeId(uint32_t rack, uint32_t local) const {
    return static_cast<uint64_t>(rack) * config_.nodes_per_rack + local;
  }
  bool Whitelisted(uint32_t measurement) const {
    // v2 is pre-whitelisted only when a rollout is scheduled (the tenant
    // rebuilt it from source and pushed the digest ahead of the reflash).
    return measurement == kMeasV1 ||
           (measurement == kMeasV2 && config_.upgrade_at_ns > 0);
  }
  bool IsCanary(uint64_t id) const {
    return id < config_.canaries;  // the first rack-0 nodes
  }
  int64_t Jitter(sim::Rack& rack, int64_t bound_ns) {
    if (bound_ns <= 0) {
      return 0;
    }
    return static_cast<int64_t>(
        rack.sim().rng().NextBelow(static_cast<uint64_t>(bound_ns)));
  }
  void Fail(uint32_t rack, std::string detail) {
    RackModel& model = racks_[rack];
    if (model.failures.size() < 16) {  // cap the flood, keep the evidence
      model.failures.push_back(std::move(detail));
    }
  }

  void SendQuote(sim::Rack& rack, uint32_t local, uint32_t gen);
  void StartProvision(sim::Rack& rack, uint32_t local);
  void ReleaseNode(sim::Rack& rack, uint32_t local);
  void ScheduleContinuous(sim::Rack& rack, uint32_t local, uint32_t gen);
  void ApplyVerdict(sim::Rack& rack, const sim::CrossShardFrame& frame);
  void HandleQuote(sim::Rack& rack, const sim::CrossShardFrame& frame);
  void StartRollout(sim::Rack& rack);
  void RackRollout(sim::Rack& rack);
  void CanaryVerdictApplied(sim::Rack& rack, bool passed);
  void StormStep(sim::Rack& rack);
  void SweepStep(sim::Rack& rack);
  void ChurnStep(sim::Rack& rack, uint32_t local);
  void ScheduleNode(sim::ShardedFleet& fleet, uint32_t rack_index,
                    uint32_t local);

  const ShardedScenarioConfig config_;
  std::vector<uint8_t> tenant_of_;  // immutable after construction
  std::vector<RackModel> racks_;    // racks_[r] touched only by rack r
  uint32_t upgrade_image_ = kMeasV2;
  sim::ShardedFleet* fleet_ = nullptr;
};

void Model::StartProvision(sim::Rack& rack, uint32_t local) {
  RackModel& model = racks_[rack.index()];
  NodeModel& node = model.nodes[local];
  node.state = kProvisioning;
  node.flash = node.pending;
  node.reported = node.flash;  // a fresh boot sheds any runtime implant
  node.provision_start_ns = rack.sim().now().nanoseconds();
  ++node.gen;
  ++model.provisions;
  const uint32_t gen = node.gen;
  // Boot time: POST + image fetch + kexec, abstracted to a jittered mean.
  const int64_t boot =
      config_.provision_mean_ns / 2 + Jitter(rack, config_.provision_mean_ns);
  sim::Rack* rack_ptr = &rack;
  rack.sim().Schedule(sim::Duration::Nanoseconds(boot), [this, rack_ptr, local,
                                                         gen] {
    SendQuote(*rack_ptr, local, gen);
  });
}

void Model::SendQuote(sim::Rack& rack, uint32_t local, uint32_t gen) {
  RackModel& model = racks_[rack.index()];
  NodeModel& node = model.nodes[local];
  if (node.gen != gen || node.state == kFree || node.state == kQuarantined) {
    return;  // released or quarantined while the quote was in flight
  }
  node.quote_sent_ns = rack.sim().now().nanoseconds();
  ++model.quotes;
  const uint64_t id = NodeId(rack.index(), local);
  const uint64_t payload =
      (static_cast<uint64_t>(gen) << 32) |
      (static_cast<uint64_t>(tenant_of_[id]) << 24) | node.reported;
  rack.Send(kVerifierRack, fleet_->lookahead() + sim::Duration::Nanoseconds(
                                                     Jitter(rack, 2000)),
            kFrameQuote, /*bytes=*/1200, id, payload);
}

void Model::ReleaseNode(sim::Rack& rack, uint32_t local) {
  NodeModel& node = racks_[rack.index()].nodes[local];
  node.state = kFree;
  ++node.gen;  // stales continuous loops and in-flight verdicts
}

void Model::ScheduleContinuous(sim::Rack& rack, uint32_t local, uint32_t gen) {
  const int64_t next = config_.attest_interval_ns / 2 +
                       Jitter(rack, config_.attest_interval_ns);
  if (rack.sim().now().nanoseconds() + next > config_.horizon_ns) {
    return;  // the scenario horizon: polling stops, the run drains
  }
  sim::Rack* rack_ptr = &rack;
  rack.sim().Schedule(
      sim::Duration::Nanoseconds(next), [this, rack_ptr, local, gen] {
        NodeModel& node = racks_[rack_ptr->index()].nodes[local];
        if (node.gen != gen || node.state != kAllocated) {
          return;
        }
        SendQuote(*rack_ptr, local, gen);
        ScheduleContinuous(*rack_ptr, local, gen);
      });
}

void Model::HandleQuote(sim::Rack& rack, const sim::CrossShardFrame& frame) {
  // Runs on rack 0 (the verifier).  The whitelist and tenant table are
  // immutable, so this is pure: verdict = f(quote).
  const uint64_t id = frame.payload0;
  const uint32_t gen = static_cast<uint32_t>(frame.payload1 >> 32);
  const auto tenant = static_cast<uint8_t>((frame.payload1 >> 24) & 0xff);
  const auto measurement = static_cast<uint32_t>(frame.payload1 & 0xffffff);
  if (tenant != tenant_of_[id]) {
    // Invariant (a): a quote claiming another tenant's identity is the
    // model's cross-enclave frame.
    Fail(rack.index(), "quote for node " + std::to_string(id) +
                           " carries tenant " + std::to_string(tenant) +
                           ", owner is " + std::to_string(tenant_of_[id]));
    return;
  }
  const bool passed = Whitelisted(measurement);
  const auto dst_rack = static_cast<uint32_t>(id / config_.nodes_per_rack);
  const uint64_t payload = (static_cast<uint64_t>(gen) << 32) |
                           (passed ? 1u << 16 : 0u) | measurement;
  rack.Send(dst_rack, fleet_->lookahead() + sim::Duration::Nanoseconds(
                                                Jitter(rack, 2000)),
            kFrameVerdict, /*bytes=*/256, id, payload);
}

void Model::ApplyVerdict(sim::Rack& rack, const sim::CrossShardFrame& frame) {
  RackModel& model = racks_[rack.index()];
  const uint64_t id = frame.payload0;
  if (id / config_.nodes_per_rack != rack.index()) {
    Fail(rack.index(), "verdict for node " + std::to_string(id) +
                           " delivered to rack " + std::to_string(rack.index()));
    return;
  }
  const auto local = static_cast<uint32_t>(id % config_.nodes_per_rack);
  NodeModel& node = model.nodes[local];
  const uint32_t gen = static_cast<uint32_t>(frame.payload1 >> 32);
  const bool passed = (frame.payload1 & (1u << 16)) != 0;
  if (node.gen != gen) {
    return;  // stale: the node was released/requarantined meanwhile
  }
  const int64_t now_ns = rack.sim().now().nanoseconds();
  const auto att = static_cast<uint64_t>(now_ns - node.quote_sent_ns);
  ++model.att_count;
  model.att_sum += att;
  model.att_max = std::max(model.att_max, att);

  if (node.state == kProvisioning) {
    const bool canary_wave =
        IsCanary(id) && rack.index() == kVerifierRack && !model.rollout_decided &&
        model.canary_pending > 0 && node.flash == upgrade_image_;
    if (passed) {
      if (!Whitelisted(node.reported)) {
        Fail(rack.index(), "node " + std::to_string(id) +
                               " passed with unwhitelisted measurement");
      }
      node.state = kAllocated;
      const auto prov =
          static_cast<uint64_t>(now_ns - node.provision_start_ns);
      ++model.prov_count;
      model.prov_sum += prov;
      model.prov_max = std::max(model.prov_max, prov);
      if (node.flash == kMeasV2) {
        ++model.upgrades;
      }
      ScheduleContinuous(rack, local, node.gen);
    } else {
      // Invariant (c), abstracted: a rejected boot quarantines, rolls the
      // firmware back if the reflash caused it, and re-provisions — no
      // node may be left stranded.
      node.state = kQuarantined;
      if (node.flash == kMeasV2Bad || node.flash == kMeasV2) {
        ++model.rollbacks;
        node.pending = kMeasV1;
      } else {
        Fail(rack.index(), "node " + std::to_string(id) +
                               " rejected while booting baseline firmware");
        node.pending = kMeasV1;
      }
      sim::Rack* rack_ptr = &rack;
      rack.sim().Schedule(sim::Duration::Milliseconds(500),
                          [this, rack_ptr, local] {
                            ReleaseNode(*rack_ptr, local);
                            StartProvision(*rack_ptr, local);
                          });
    }
    if (canary_wave) {
      CanaryVerdictApplied(rack, passed);
    }
    return;
  }

  if (node.state == kAllocated && !passed) {
    // Continuous attestation caught a runtime compromise: quarantine,
    // then reclaim — the clean-abort/re-provision cycle.
    node.state = kQuarantined;
    ++model.quarantines;
    node.pending = node.flash;  // reflash not needed; reboot sheds the implant
    sim::Rack* rack_ptr = &rack;
    rack.sim().Schedule(sim::Duration::Milliseconds(500),
                        [this, rack_ptr, local] {
                          ReleaseNode(*rack_ptr, local);
                          StartProvision(*rack_ptr, local);
                        });
  }
}

void Model::CanaryVerdictApplied(sim::Rack& rack, bool passed) {
  RackModel& model = racks_[kVerifierRack];
  if (!passed) {
    model.canary_failed = true;
  }
  if (--model.canary_pending > 0) {
    return;
  }
  model.rollout_decided = true;
  // Broadcast the staged-rollout decision.  Lookahead-bounded frames to
  // every other rack; rack 0 handles its own share locally.
  const uint32_t kind =
      model.canary_failed ? kFrameRolloutAbort : kFrameRolloutGo;
  for (uint32_t r = 0; r < config_.racks; ++r) {
    if (r != kVerifierRack) {
      rack.Send(r, fleet_->lookahead() + sim::Duration::Nanoseconds(Jitter(
                                             rack, 2000)),
                kind, /*bytes=*/64, 0, 0);
    }
  }
  if (!model.canary_failed) {
    sim::Rack* rack_ptr = &rack;
    rack.sim().Schedule(sim::Duration::Microseconds(100),
                        [this, rack_ptr] { RackRollout(*rack_ptr); });
  }
}

void Model::StartRollout(sim::Rack& rack) {
  // Rack 0: upgrade the canaries first.
  RackModel& model = racks_[kVerifierRack];
  uint32_t started = 0;
  for (uint32_t local = 0;
       local < std::min(config_.canaries, config_.nodes_per_rack); ++local) {
    NodeModel& node = model.nodes[local];
    if (node.state != kAllocated) {
      continue;  // churned away right now; the fleet wave covers it
    }
    ReleaseNode(rack, local);
    node.pending = upgrade_image_;
    StartProvision(rack, local);
    ++started;
  }
  model.canary_pending = started;
  if (started == 0) {
    Fail(kVerifierRack, "rolling upgrade found no allocated canary");
    model.rollout_decided = true;
  }
}

void Model::RackRollout(sim::Rack& rack) {
  // The post-canary fleet wave for this rack's nodes, staggered so the
  // verifier sees a rolling stream instead of one synchronized burst.
  RackModel& model = racks_[rack.index()];
  int64_t stagger = 0;
  for (uint32_t local = 0; local < config_.nodes_per_rack; ++local) {
    if (rack.index() == kVerifierRack && IsCanary(NodeId(rack.index(), local))) {
      continue;
    }
    if (model.nodes[local].state != kAllocated ||
        model.nodes[local].flash != kMeasV1) {
      continue;
    }
    stagger += config_.arrival_spacing_ns;
    sim::Rack* rack_ptr = &rack;
    rack.sim().Schedule(
        sim::Duration::Nanoseconds(stagger), [this, rack_ptr, local] {
          NodeModel& node = racks_[rack_ptr->index()].nodes[local];
          if (node.state != kAllocated || node.flash != kMeasV1) {
            return;
          }
          ReleaseNode(*rack_ptr, local);
          node.pending = kMeasV2;
          StartProvision(*rack_ptr, local);
        });
  }
}

void Model::StormStep(sim::Rack& rack) {
  RackModel& model = racks_[rack.index()];
  for (uint32_t local = 0; local < config_.nodes_per_rack; ++local) {
    NodeModel& node = model.nodes[local];
    if (node.state != kAllocated ||
        rack.sim().rng().NextDouble() >= config_.storm_fraction) {
      continue;
    }
    ++model.storm_reboots;
    ReleaseNode(rack, local);
    StartProvision(rack, local);  // mass reboot -> attestation storm
  }
}

void Model::SweepStep(sim::Rack& rack) {
  RackModel& model = racks_[rack.index()];
  for (uint32_t local = 0; local < config_.nodes_per_rack; ++local) {
    NodeModel& node = model.nodes[local];
    if (node.state != kAllocated ||
        rack.sim().rng().NextDouble() >= config_.compromise_fraction) {
      continue;
    }
    // Runtime compromise: the next continuous quote measures the implant.
    node.reported = kMeasImplant;
    ++model.compromises;
  }
}

void Model::ChurnStep(sim::Rack& rack, uint32_t local) {
  const int64_t now_ns = rack.sim().now().nanoseconds();
  if (now_ns >= config_.churn_end_ns || now_ns >= config_.horizon_ns) {
    return;
  }
  RackModel& model = racks_[rack.index()];
  NodeModel& node = model.nodes[local];
  if (node.state == kAllocated &&
      rack.sim().rng().NextDouble() < config_.churn_release_fraction) {
    ++model.churn_cycles;
    ReleaseNode(rack, local);
    sim::Rack* rack_ptr = &rack;
    rack.sim().Schedule(
        sim::Duration::Nanoseconds(config_.churn_hold_ns / 4 +
                                   Jitter(rack, config_.churn_hold_ns / 2)),
        [this, rack_ptr, local] { StartProvision(*rack_ptr, local); });
  }
  sim::Rack* rack_ptr = &rack;
  rack.sim().Schedule(sim::Duration::Nanoseconds(
                          config_.churn_hold_ns / 2 +
                          Jitter(rack, config_.churn_hold_ns)),
                      [this, rack_ptr, local] { ChurnStep(*rack_ptr, local); });
}

void Model::ScheduleNode(sim::ShardedFleet& fleet, uint32_t rack_index,
                         uint32_t local) {
  sim::Rack& rack = fleet.rack(rack_index);
  // Staggered arrival: nodes provision in a rolling wave, never lockstep.
  const int64_t arrive =
      1 + static_cast<int64_t>(local) * config_.arrival_spacing_ns +
      static_cast<int64_t>(rack_index) * (config_.arrival_spacing_ns / 7 + 1);
  sim::Rack* rack_ptr = &rack;
  rack.sim().Schedule(sim::Duration::Nanoseconds(arrive),
                      [this, rack_ptr, local] { StartProvision(*rack_ptr, local); });
  if (config_.churn_end_ns > config_.churn_start_ns) {
    rack.sim().Schedule(
        sim::Duration::Nanoseconds(config_.churn_start_ns + arrive),
        [this, rack_ptr, local] { ChurnStep(*rack_ptr, local); });
  }
}

ShardedScenarioResult Model::Run() {
  sim::ShardOptions options;
  options.racks = config_.racks;
  options.shards = config_.shards;
  options.workers = config_.workers;
  options.seed = config_.seed;
  options.scheduler = config_.scheduler;
  sim::ShardedFleet fleet(options);
  fleet_ = &fleet;

  fleet.set_frame_handler([this](sim::Rack& rack,
                                 const sim::CrossShardFrame& frame) {
    switch (frame.kind) {
      case kFrameQuote:
        HandleQuote(rack, frame);
        break;
      case kFrameVerdict:
        ApplyVerdict(rack, frame);
        break;
      case kFrameRolloutGo:
        RackRollout(rack);
        break;
      case kFrameRolloutAbort:
        break;  // canaries already rolled back; this rack never upgraded
      default:
        Fail(rack.index(), "unknown frame kind " + std::to_string(frame.kind));
    }
  });

  for (uint32_t r = 0; r < config_.racks; ++r) {
    for (uint32_t n = 0; n < config_.nodes_per_rack; ++n) {
      ScheduleNode(fleet, r, n);
    }
    sim::Rack* rack_ptr = &fleet.rack(r);
    if (config_.storm_at_ns > 0) {
      rack_ptr->sim().Schedule(sim::Duration::Nanoseconds(config_.storm_at_ns),
                               [this, rack_ptr] { StormStep(*rack_ptr); });
    }
    if (config_.sweep_at_ns > 0) {
      rack_ptr->sim().Schedule(sim::Duration::Nanoseconds(config_.sweep_at_ns),
                               [this, rack_ptr] { SweepStep(*rack_ptr); });
    }
  }
  if (config_.upgrade_at_ns > 0) {
    sim::Rack* rack0 = &fleet.rack(kVerifierRack);
    rack0->sim().Schedule(sim::Duration::Nanoseconds(config_.upgrade_at_ns),
                          [this, rack0] { StartRollout(*rack0); });
  }

  // Run to drain: every schedule chain is bounded by horizon_ns (churn
  // and continuous attestation stop there), so the queues empty once the
  // in-flight lifecycles complete.
  fleet.Run();

  ShardedScenarioResult result;
  result.fleet_digest = fleet.fleet_digest();
  int64_t final_ns = 0;
  for (uint32_t r = 0; r < config_.racks; ++r) {
    result.rack_digests.push_back(fleet.rack_digest(r));
    final_ns = std::max(final_ns, fleet.rack(r).sim().now().nanoseconds());
  }
  result.final_time_ns = final_ns;
  result.events = fleet.events_processed();
  result.frames_routed = fleet.frames_routed();
  result.windows = fleet.windows();
  result.spills = fleet.ring_spills();

  for (uint32_t r = 0; r < config_.racks; ++r) {
    RackModel& model = racks_[r];
    for (const std::string& failure : model.failures) {
      result.failures.push_back("rack " + std::to_string(r) + ": " + failure);
    }
    for (uint32_t n = 0; n < config_.nodes_per_rack; ++n) {
      const NodeModel& node = model.nodes[n];
      result.final_states.push_back(node.state);
      result.final_firmware.push_back(node.flash);
      // Final convergence: every node allocated on whitelisted firmware.
      if (node.state != kAllocated && result.failures.size() < 32) {
        result.failures.push_back(
            "node " + std::to_string(NodeId(r, n)) +
            " did not converge to allocated (state " +
            std::to_string(node.state) + ")");
      }
      if (node.state == kAllocated && !Whitelisted(node.reported) &&
          result.failures.size() < 32) {
        result.failures.push_back("node " + std::to_string(NodeId(r, n)) +
                                  " allocated with unwhitelisted measurement");
      }
    }
    result.provisions += model.provisions;
    result.quotes += model.quotes;
    result.churn_cycles += model.churn_cycles;
    result.storm_reboots += model.storm_reboots;
    result.upgrades += model.upgrades;
    result.rollbacks += model.rollbacks;
    result.compromises += model.compromises;
    result.quarantines += model.quarantines;
    result.provision_latency_count += model.prov_count;
    result.provision_latency_sum_ns += model.prov_sum;
    result.provision_latency_max_ns =
        std::max(result.provision_latency_max_ns, model.prov_max);
    result.attest_latency_count += model.att_count;
    result.attest_latency_sum_ns += model.att_sum;
    result.attest_latency_max_ns =
        std::max(result.attest_latency_max_ns, model.att_max);
  }

  // Non-vacuousness: a phase that was scheduled must have acted.
  if (result.provisions == 0) {
    result.failures.push_back("scenario provisioned nothing");
  }
  if (config_.storm_at_ns > 0 && result.storm_reboots == 0) {
    result.failures.push_back("reboot storm rebooted nothing");
  }
  if (config_.sweep_at_ns > 0 &&
      (result.compromises == 0 || result.quarantines < result.compromises)) {
    result.failures.push_back(
        "quarantine sweep: " + std::to_string(result.compromises) +
        " compromises but only " + std::to_string(result.quarantines) +
        " quarantines");
  }
  if (config_.upgrade_at_ns > 0) {
    if (config_.bad_image) {
      if (result.rollbacks == 0) {
        result.failures.push_back("bad canary image triggered no rollback");
      }
      if (result.upgrades > 0) {
        result.failures.push_back(
            "bad image aborted the rollout but " +
            std::to_string(result.upgrades) + " nodes upgraded");
      }
    } else if (result.upgrades == 0) {
      result.failures.push_back("rolling upgrade upgraded nothing");
    }
  }

  fleet_ = nullptr;
  return result;
}

}  // namespace

ShardedScenarioConfig ShardedConfigFromSpec(const ScenarioSpec& spec,
                                            uint32_t shards, uint32_t workers) {
  ShardedScenarioConfig config;
  const auto machines = static_cast<uint32_t>(std::max(spec.machines, 4));
  config.racks = std::max(4u, machines / 64);
  config.nodes_per_rack = machines / config.racks;
  config.shards = shards;
  config.workers = workers;
  config.seed = spec.seed;
  config.tenants = std::max<uint32_t>(
      1, static_cast<uint32_t>(spec.tenants.size()));
  config.horizon_ns = spec.duration.nanoseconds();
  if (spec.arrival.kind == ArrivalKind::kFixed) {
    // The oracle provisions whole tenants per arrival; here the spacing
    // maps onto the per-node stagger, scaled down to fleet size.
    config.arrival_spacing_ns =
        std::max<int64_t>(1, spec.arrival.fixed_spacing.nanoseconds() / 512);
  }
  for (const PhaseSpec& phase : spec.phases) {
    switch (phase.kind) {
      case PhaseKind::kChurn:
        config.churn_start_ns = phase.start.nanoseconds();
        config.churn_end_ns = (phase.start + phase.duration).nanoseconds();
        config.churn_hold_ns = std::max<int64_t>(1, phase.hold.nanoseconds());
        config.churn_release_fraction = phase.release_fraction;
        break;
      case PhaseKind::kRebootStorm:
        config.storm_at_ns = phase.start.nanoseconds();
        config.storm_fraction = phase.storm_fraction;
        break;
      case PhaseKind::kRollingUpgrade:
        config.upgrade_at_ns = phase.start.nanoseconds();
        config.canaries = static_cast<uint32_t>(std::max(phase.canaries, 1));
        config.bad_image = phase.bad_image;
        break;
      case PhaseKind::kQuarantineSweep:
        config.sweep_at_ns = phase.start.nanoseconds();
        config.compromise_fraction = phase.compromise_fraction;
        break;
      case PhaseKind::kAirlockResize:
        break;  // airlock capacity is an oracle-side (core::Cloud) concept
    }
  }
  return config;
}

ShardedScenarioResult RunShardedScenario(const ShardedScenarioConfig& config) {
  Model model(config);
  return model.Run();
}

}  // namespace bolted::scenario
