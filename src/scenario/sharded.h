// Rack-sharded scenario model (DESIGN.md §13).
//
// The full-fidelity runner (runner.h) drives a real core::Cloud, which
// owns a single Simulation — it cannot span racks.  This model runs the
// same lifecycle phases as an abstracted state machine on
// sim::ShardedFleet, so the mixed long-horizon scenarios scale to
// thousands of nodes and the determinism contract extends to them:
// per-rack trace digests and the final per-node verdict vector are
// byte-identical for every (shards, workers) configuration, with
// shards=1/workers=1 as the single-threaded oracle.
//
// The abstraction keeps the control-plane shape and drops the crypto:
// each node is a small state machine (free -> provisioning -> allocated
// -> quarantined) whose provisioning ends in an attestation quote — a
// cross-rack frame to the verifier on rack 0 carrying (node, generation,
// tenant, measurement) — answered by a verdict frame checked against an
// immutable measurement whitelist.  Rolling upgrades run rack-0 canaries
// first and broadcast go/abort frames; compromises flip a node's
// reported measurement so the next continuous quote quarantines it.
//
// Thread discipline (the shard.h contract): all mutable state is indexed
// by rack and touched only from that rack's events or frame handler;
// cross-rack influence travels exclusively through frames.

#ifndef SRC_SCENARIO_SHARDED_H_
#define SRC_SCENARIO_SHARDED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/scenario/scenario.h"
#include "src/sim/scheduler.h"

namespace bolted::scenario {

// All times are simulated nanoseconds from t=0; a phase time of 0 turns
// that phase off.
struct ShardedScenarioConfig {
  uint32_t racks = 16;
  uint32_t nodes_per_rack = 64;
  uint32_t shards = 1;
  uint32_t workers = 1;
  uint64_t seed = 1;
  uint32_t tenants = 2;  // node i belongs to tenant i % tenants
  sim::SchedulerKind scheduler = sim::SchedulerKind::kDefault;

  int64_t arrival_spacing_ns = 10'000'000;     // per-node provision stagger
  int64_t provision_mean_ns = 3'000'000'000;   // boot + quote prep
  int64_t attest_interval_ns = 2'000'000'000;  // continuous attestation
  // The scenario horizon: continuous attestation and churn stop here and
  // the run drains, so in-flight lifecycles complete.
  int64_t horizon_ns = 60'000'000'000;

  int64_t churn_start_ns = 0;
  int64_t churn_end_ns = 0;
  int64_t churn_hold_ns = 10'000'000'000;
  double churn_release_fraction = 0.5;

  int64_t storm_at_ns = 0;
  double storm_fraction = 1.0;

  int64_t upgrade_at_ns = 0;
  uint32_t canaries = 4;  // rack-0 nodes upgraded first
  bool bad_image = false;

  int64_t sweep_at_ns = 0;
  double compromise_fraction = 0.25;
};

// Maps a parsed/built ScenarioSpec's phases onto the sharded model's
// knobs (one phase per kind is honoured; arrival spacing, duration, and
// seed carry over).  racks is derived from spec.machines at 64 per rack
// (minimum 4 racks).
ShardedScenarioConfig ShardedConfigFromSpec(const ScenarioSpec& spec,
                                            uint32_t shards, uint32_t workers);

struct ShardedScenarioResult {
  // Invariant violations merged from every rack (rack order, then
  // detection order).  Empty == the run held every in-run invariant and
  // the final convergence check.
  std::vector<std::string> failures;
  bool ok() const { return failures.empty(); }

  // THE determinism artifacts: must match across every (shards, workers)
  // configuration and across replays of the same config.
  uint64_t fleet_digest = 0;
  std::vector<uint64_t> rack_digests;
  // Final node states in global node order (values of core::NodeState
  // cast to uint8_t) and the firmware each node ended on.
  std::vector<uint8_t> final_states;
  std::vector<uint32_t> final_firmware;

  uint64_t events = 0;
  uint64_t frames_routed = 0;
  uint64_t windows = 0;
  uint64_t spills = 0;
  int64_t final_time_ns = 0;

  uint64_t provisions = 0;
  uint64_t quotes = 0;
  uint64_t churn_cycles = 0;
  uint64_t storm_reboots = 0;
  uint64_t upgrades = 0;
  uint64_t rollbacks = 0;
  uint64_t compromises = 0;
  uint64_t quarantines = 0;

  // Sim-time phase latencies (nanoseconds), fleet-wide.
  uint64_t provision_latency_count = 0;
  uint64_t provision_latency_sum_ns = 0;
  uint64_t provision_latency_max_ns = 0;
  uint64_t attest_latency_count = 0;
  uint64_t attest_latency_sum_ns = 0;
  uint64_t attest_latency_max_ns = 0;
};

ShardedScenarioResult RunShardedScenario(const ShardedScenarioConfig& config);

}  // namespace bolted::scenario

#endif  // SRC_SCENARIO_SHARDED_H_
