#include "src/scenario/scenario.h"

#include <charconv>
#include <cstdlib>
#include <sstream>

namespace bolted::scenario {
namespace {

// Splits a line into whitespace-separated tokens; '#' starts a comment.
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
    if (i >= line.size() || line[i] == '#') {
      break;
    }
    const size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' && line[i] != '\r' &&
           line[i] != '#') {
      ++i;
    }
    tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

bool ParseU64(std::string_view token, uint64_t* out) {
  if (token.empty()) {
    return false;
  }
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool ParseInt(std::string_view token, int* out) {
  uint64_t value = 0;
  if (!ParseU64(token, &value) || value > 1u << 30) {
    return false;
  }
  *out = static_cast<int>(value);
  return true;
}

bool ParseFraction(std::string_view token, double* out) {
  if (token.empty()) {
    return false;
  }
  char* end = nullptr;
  const std::string owned(token);
  *out = std::strtod(owned.c_str(), &end);
  return end == owned.c_str() + owned.size() && *out >= 0.0 && *out <= 1.0;
}

// "<integer><ns|us|ms|s|m>", e.g. "90s", "250ms", "10m".
bool ParseDuration(std::string_view token, sim::Duration* out) {
  size_t digits = 0;
  while (digits < token.size() && token[digits] >= '0' && token[digits] <= '9') {
    ++digits;
  }
  if (digits == 0) {
    return false;
  }
  uint64_t value = 0;
  if (!ParseU64(token.substr(0, digits), &value) || value > 1ull << 40) {
    return false;
  }
  const std::string_view unit = token.substr(digits);
  const auto n = static_cast<int64_t>(value);
  if (unit == "ns") {
    *out = sim::Duration::Nanoseconds(n);
  } else if (unit == "us") {
    *out = sim::Duration::Microseconds(n);
  } else if (unit == "ms") {
    *out = sim::Duration::Milliseconds(n);
  } else if (unit == "s") {
    *out = sim::Duration::Seconds(n);
  } else if (unit == "m") {
    *out = sim::Duration::Minutes(n);
  } else {
    return false;
  }
  return true;
}

bool ParseTier(std::string_view token, Tier* out) {
  if (token == "alice") {
    *out = Tier::kAlice;
  } else if (token == "bob") {
    *out = Tier::kBob;
  } else if (token == "charlie") {
    *out = Tier::kCharlie;
  } else {
    return false;
  }
  return true;
}

// "key=value" option splitter.
bool SplitOption(std::string_view token, std::string_view* key,
                 std::string_view* value) {
  const size_t eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0 || eq + 1 >= token.size()) {
    return false;
  }
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

std::string LineError(int line, const std::string& message) {
  return "line " + std::to_string(line) + ": " + message;
}

std::string Quoted(std::string_view token) {
  return "'" + std::string(token) + "'";
}

std::string SecondsString(sim::Duration d) {
  // Phase starts in specs are whole seconds; keep the message exact.
  return std::to_string(d.nanoseconds() / 1'000'000'000) + "s";
}

}  // namespace

std::string_view PhaseName(PhaseKind kind) {
  switch (kind) {
    case PhaseKind::kChurn:
      return "churn";
    case PhaseKind::kRebootStorm:
      return "reboot_storm";
    case PhaseKind::kRollingUpgrade:
      return "rolling_upgrade";
    case PhaseKind::kQuarantineSweep:
      return "quarantine_sweep";
    case PhaseKind::kAirlockResize:
      return "airlock_resize";
  }
  return "?";
}

int ScenarioSpec::total_tenant_nodes() const {
  int total = 0;
  for (const TenantSpec& tenant : tenants) {
    total += tenant.nodes;
  }
  return total;
}

std::string ScenarioSpec::Validate() const {
  if (tenants.empty()) {
    return "scenario has no tenants";
  }
  for (const TenantSpec& tenant : tenants) {
    if (tenant.nodes <= 0) {
      return "tenant " + Quoted(tenant.name) + " has no nodes";
    }
  }
  if (machines < total_tenant_nodes()) {
    return "machines (" + std::to_string(machines) +
           ") fewer than total tenant nodes (" +
           std::to_string(total_tenant_nodes()) + ")";
  }
  if (airlock_slots <= 0) {
    return "airlock_slots must be positive";
  }
  for (const PhaseSpec& phase : phases) {
    if (phase.start >= duration) {
      return "phase '" + std::string(PhaseName(phase.kind)) + "' at " +
             SecondsString(phase.start) + " starts after the scenario ends (" +
             SecondsString(duration) + ")";
    }
    if (phase.kind == PhaseKind::kAirlockResize && phase.airlock_slots <= 0) {
      return "airlock_resize phase needs slots=N";
    }
    if (phase.kind == PhaseKind::kRollingUpgrade && phase.canaries <= 0) {
      return "rolling_upgrade phase needs at least one canary";
    }
  }
  for (const faults::CrashEvent& crash : crashes) {
    if (crash.target >= static_cast<size_t>(machines)) {
      return "crash target " + std::to_string(crash.target) +
             " out of range (machines: " + std::to_string(machines) + ")";
    }
  }
  for (const faults::LinkFlapEvent& flap : flaps) {
    if (flap.target >= static_cast<size_t>(machines)) {
      return "flap target " + std::to_string(flap.target) +
             " out of range (machines: " + std::to_string(machines) + ")";
    }
  }
  return "";
}

bool ScenarioSpec::Parse(std::string_view text, ScenarioSpec* spec,
                         std::string* error) {
  *spec = ScenarioSpec{};
  std::istringstream stream{std::string(text)};
  std::string raw;
  int line = 0;
  const auto fail = [&](const std::string& message) {
    *error = LineError(line, message);
    return false;
  };

  while (std::getline(stream, raw)) {
    ++line;
    const std::vector<std::string_view> tokens = Tokenize(raw);
    if (tokens.empty()) {
      continue;
    }
    const std::string_view directive = tokens[0];
    const size_t args = tokens.size() - 1;

    if (directive == "scenario") {
      if (args != 1) {
        return fail("scenario expects exactly one name");
      }
      spec->name = std::string(tokens[1]);
    } else if (directive == "seed") {
      if (args != 1 || !ParseU64(tokens[1], &spec->seed)) {
        return fail("seed must be a non-negative integer");
      }
    } else if (directive == "duration") {
      if (args != 1 || !ParseDuration(tokens[1], &spec->duration)) {
        return fail("duration " + Quoted(args >= 1 ? tokens[1] : "") +
                    " must be an integer followed by ns, us, ms, s, or m");
      }
    } else if (directive == "machines") {
      if (args != 1 || !ParseInt(tokens[1], &spec->machines)) {
        return fail("machines must be a positive integer");
      }
    } else if (directive == "airlock_slots") {
      if (args != 1 || !ParseInt(tokens[1], &spec->airlock_slots)) {
        return fail("airlock_slots must be a positive integer");
      }
    } else if (directive == "calibration") {
      if (args != 1 || (tokens[1] != "fleet" && tokens[1] != "paper")) {
        return fail("calibration must be fleet or paper");
      }
      spec->fleet_calibration = tokens[1] == "fleet";
    } else if (directive == "tenant") {
      if (args != 3) {
        return fail("tenant expects: tenant <name> <tier> <nodes>");
      }
      TenantSpec tenant;
      tenant.name = std::string(tokens[1]);
      if (!ParseTier(tokens[2], &tenant.tier)) {
        return fail("tier " + Quoted(tokens[2]) +
                    " must be alice, bob, or charlie");
      }
      if (!ParseInt(tokens[3], &tenant.nodes) || tenant.nodes <= 0) {
        return fail("tenant node count must be a positive integer");
      }
      spec->tenants.push_back(std::move(tenant));
    } else if (directive == "arrival") {
      if (args >= 1 && tokens[1] == "fixed") {
        if (args != 2 || !ParseDuration(tokens[2], &spec->arrival.fixed_spacing)) {
          return fail("arrival fixed expects a spacing duration");
        }
        spec->arrival.kind = ArrivalKind::kFixed;
      } else if (args >= 1 && tokens[1] == "poisson") {
        // "arrival poisson 6/min"
        std::string_view rate = args >= 2 ? tokens[2] : "";
        if (rate.size() > 4 && rate.substr(rate.size() - 4) == "/min") {
          rate = rate.substr(0, rate.size() - 4);
        } else {
          rate = "";
        }
        uint64_t per_minute = 0;
        if (args != 2 || !ParseU64(rate, &per_minute) || per_minute == 0) {
          return fail("arrival poisson expects a rate like 6/min");
        }
        spec->arrival.kind = ArrivalKind::kPoisson;
        spec->arrival.rate_per_minute = static_cast<double>(per_minute);
      } else if (args >= 1 && tokens[1] == "burst") {
        if (args != 3 || !ParseInt(tokens[2], &spec->arrival.burst_size) ||
            spec->arrival.burst_size <= 0 ||
            !ParseDuration(tokens[3], &spec->arrival.burst_interval)) {
          return fail("arrival burst expects: arrival burst <size> <interval>");
        }
        spec->arrival.kind = ArrivalKind::kBurst;
      } else {
        return fail("arrival kind " + Quoted(args >= 1 ? tokens[1] : "") +
                    " must be fixed, poisson, or burst");
      }
    } else if (directive == "faults") {
      if (args != 1 ||
          (tokens[1] != "on" && tokens[1] != "off" && tokens[1] != "plan")) {
        return fail("faults must be on, off, or plan");
      }
      spec->faults = tokens[1] == "on"     ? FaultMode::kOn
                     : tokens[1] == "plan" ? FaultMode::kPlan
                                           : FaultMode::kOff;
    } else if (directive == "crash") {
      faults::CrashEvent crash;
      int target = 0;
      if (args != 2 || !ParseInt(tokens[1], &target) ||
          !ParseDuration(tokens[2], &crash.at)) {
        return fail("crash expects: crash <target> <at>");
      }
      crash.target = static_cast<size_t>(target);
      spec->crashes.push_back(crash);
    } else if (directive == "flap") {
      faults::LinkFlapEvent flap;
      int target = 0;
      if (args != 3 || !ParseInt(tokens[1], &target) ||
          !ParseDuration(tokens[2], &flap.at) ||
          !ParseDuration(tokens[3], &flap.duration)) {
        return fail("flap expects: flap <target> <at> <duration>");
      }
      flap.target = static_cast<size_t>(target);
      spec->flaps.push_back(flap);
    } else if (directive == "phase") {
      if (args < 2) {
        return fail("phase expects: phase <kind> <start> [duration] [options]");
      }
      PhaseSpec phase;
      size_t next = 2;  // first token after the kind
      if (tokens[1] == "churn") {
        phase.kind = PhaseKind::kChurn;
      } else if (tokens[1] == "reboot_storm") {
        phase.kind = PhaseKind::kRebootStorm;
      } else if (tokens[1] == "rolling_upgrade") {
        phase.kind = PhaseKind::kRollingUpgrade;
      } else if (tokens[1] == "quarantine_sweep") {
        phase.kind = PhaseKind::kQuarantineSweep;
      } else if (tokens[1] == "airlock_resize") {
        phase.kind = PhaseKind::kAirlockResize;
      } else {
        return fail("unknown phase " + Quoted(tokens[1]));
      }
      if (!ParseDuration(tokens[next], &phase.start)) {
        return fail("phase start " + Quoted(tokens[next]) + " is not a duration");
      }
      ++next;
      // Optional duration (windowed phases), then key=value options.
      if (next < tokens.size() && tokens[next].find('=') == std::string_view::npos) {
        if (!ParseDuration(tokens[next], &phase.duration)) {
          return fail("phase duration " + Quoted(tokens[next]) +
                      " is not a duration");
        }
        ++next;
      }
      for (; next < tokens.size(); ++next) {
        std::string_view key;
        std::string_view value;
        if (!SplitOption(tokens[next], &key, &value)) {
          return fail("phase option " + Quoted(tokens[next]) +
                      " is not key=value");
        }
        bool ok = true;
        if (key == "hold") {
          ok = ParseDuration(value, &phase.hold);
        } else if (key == "release") {
          ok = ParseFraction(value, &phase.release_fraction);
        } else if (key == "fraction") {
          ok = ParseFraction(value, &phase.storm_fraction);
        } else if (key == "canaries") {
          ok = ParseInt(value, &phase.canaries);
        } else if (key == "bad") {
          phase.bad_image = value == "1";
          ok = value == "0" || value == "1";
        } else if (key == "compromise") {
          ok = ParseFraction(value, &phase.compromise_fraction);
        } else if (key == "slots") {
          ok = ParseInt(value, &phase.airlock_slots);
        } else {
          return fail("unknown phase option " + Quoted(key));
        }
        if (!ok) {
          return fail("phase option " + Quoted(tokens[next]) +
                      " has a malformed value");
        }
      }
      spec->phases.push_back(phase);
    } else {
      return fail("unknown directive " + Quoted(directive));
    }
  }

  *error = spec->Validate();
  return error->empty();
}

}  // namespace bolted::scenario
