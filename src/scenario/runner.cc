#include "src/scenario/runner.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "src/core/cloud.h"
#include "src/faults/faults.h"
#include "src/firmware/firmware.h"
#include "src/obs/obs.h"
#include "src/sim/random.h"
#include "src/sim/task.h"

namespace bolted::scenario {
namespace {

// Domain tags folded into the trace digest at phase boundaries, so a
// replay that diverges in phase orchestration (not just event timing)
// breaks the digest immediately.
constexpr uint64_t kPhaseTagBase = 0x5ce0'0000'0000'0000u;

// Mirrors the enclave's own transient/integrity split: integrity evidence
// is cryptographic and triggers rollback; transient failures (the fault
// layer's weather) never should.
bool TransientFailure(const std::string& failure) {
  return failure == "agent download failed" ||
         failure == "registration failed" ||
         failure == "U-half delivery failed" ||
         failure == "iPXE download failed" ||
         failure == "LinuxBoot download failed" ||
         failure == "kernel download failed" ||
         failure == "node unavailable" || keylime::IsTransientFailure(failure);
}

core::TrustProfile ProfileFor(Tier tier) {
  switch (tier) {
    case Tier::kAlice:
      return core::TrustProfile::Alice();
    case Tier::kBob:
      return core::TrustProfile::Bob();
    case Tier::kCharlie:
      return core::TrustProfile::Charlie();
  }
  return core::TrustProfile::Charlie();
}

struct Slot {
  std::string node;
  int tenant = 0;
  bool busy = false;  // claimed by a phase; others must skip it
};

class Runner {
 public:
  Runner(const ScenarioSpec& spec, sim::SchedulerKind scheduler)
      : spec_(spec), rng_(spec.seed ^ 0x5ce0'ab1eu) {
    core::CloudConfig config;
    config.num_machines = spec.machines;
    config.linuxboot_in_flash = true;
    config.seed = spec.seed;
    config.scheduler = scheduler;
    if (spec.fleet_calibration) {
      // Long-horizon knob shared with bench/fleet_provisioning: a 32 MiB
      // boot image keeps a multi-phase run's I/O affordable.
      config.cal.boot_read_bytes = 32ull << 20;
    }
    config.cal.max_concurrent_airlocks = spec.airlock_slots;
    airlock_slots_now_ = spec.airlock_slots;
    cloud_ = std::make_unique<core::Cloud>(config);
  }

  ScenarioResult Run();

 private:
  sim::Simulation& sim() { return cloud_->sim(); }
  core::Enclave& enclave(const Slot& slot) { return *tenants_[slot.tenant]; }

  void Fail(const std::string& detail) {
    result_.failures.push_back(detail);
  }

  sim::Duration ExponentialDelay(sim::Duration mean) {
    const double ns = rng_.Exponential(
        static_cast<double>(std::max<int64_t>(mean.nanoseconds(), 1)));
    return sim::Duration::Nanoseconds(std::max<int64_t>(1, static_cast<int64_t>(ns)));
  }

  // Drives the sim in bounded slices until *flag flips or cap passes (the
  // chaos harness's watchdog idiom — a stuck coroutine cannot hang ctest).
  void RunUntilFlag(const bool* flag, sim::Duration cap) {
    const sim::Time deadline = sim().now() + cap;
    while (!*flag && sim().now() < deadline) {
      const sim::Time slice = sim().now() + sim::Duration::Seconds(30);
      sim().RunUntil(slice < deadline ? slice : deadline);
    }
  }

  sim::Duration NextArrivalGap() {
    switch (spec_.arrival.kind) {
      case ArrivalKind::kFixed:
        return spec_.arrival.fixed_spacing;
      case ArrivalKind::kPoisson:
        return ExponentialDelay(sim::Duration::Nanoseconds(static_cast<int64_t>(
            60e9 / std::max(spec_.arrival.rate_per_minute, 1e-3))));
      case ArrivalKind::kBurst:
        // Gap handling lives in the arrival driver (intra-burst is zero).
        return spec_.arrival.burst_interval;
    }
    return spec_.arrival.fixed_spacing;
  }

  // Invariant (c), inline half: a failed provision must have left nothing
  // behind.  Called after EVERY failed ProvisionNode, in any phase.
  void CheckCleanAbort(const Slot& slot, const core::ProvisionOutcome& outcome) {
    core::Enclave& tenant = enclave(slot);
    if (outcome.failure.empty()) {
      Fail(slot.node + " failed without a failure reason");
    }
    if (outcome.state != core::NodeState::kRejected) {
      Fail(slot.node + " failed but is not in the rejected pool");
    }
    if (tenant.profile().use_attestation && tenant.verifier().HasNode(slot.node)) {
      Fail(slot.node + " rejected but still registered with the verifier");
    }
    if (tenant.node_root_device(slot.node) != nullptr) {
      Fail(slot.node + " rejected but still has a root device");
    }
  }

  // Provision with the clean-abort invariant attached.  Returns success.
  sim::Task Provision(size_t slot_index, bool* success) {
    Slot& slot = slots_[slot_index];
    ++result_.stats.provisions;
    core::ProvisionOutcome outcome;
    co_await enclave(slot).ProvisionNode(slot.node, &outcome);
    if (!outcome.success) {
      ++result_.stats.provision_failures;
      CheckCleanAbort(slot, outcome);
      last_failure_[slot_index] = outcome.failure;
    }
    if (success != nullptr) {
      *success = outcome.success;
    }
  }

  sim::Task Release(size_t slot_index) {
    Slot& slot = slots_[slot_index];
    ++result_.stats.releases;
    co_await enclave(slot).ReleaseNode(slot.node);
  }

  // --- Arrival: the initial provisioning wave -----------------------------
  sim::Task ArrivalDriver() {
    sim::TaskGroup group(sim());
    int in_burst = 0;
    for (size_t i = 0; i < slots_.size(); ++i) {
      group.Spawn(Provision(i, nullptr));
      const bool burst = spec_.arrival.kind == ArrivalKind::kBurst;
      if (burst && ++in_burst < spec_.arrival.burst_size) {
        continue;  // same instant: the burst arrives together
      }
      in_burst = 0;
      if (i + 1 < slots_.size()) {
        co_await sim::Delay(sim(), NextArrivalGap());
      }
    }
    co_await group.WaitAll();
    arrivals_done_ = true;
  }

  // --- Phase: churn --------------------------------------------------------
  sim::Task ChurnCycle(size_t slot_index, sim::TaskGroup* group) {
    Slot& slot = slots_[slot_index];
    co_await Release(slot_index);
    co_await sim::Delay(sim(), sim::Duration::Seconds(1));
    co_await Provision(slot_index, nullptr);
    ++result_.stats.churn_cycles;
    slot.busy = false;
    (void)group;
  }

  sim::Task ChurnPhase(PhaseSpec phase) {
    const sim::Time end = sim().now() + phase.duration;
    sim::TaskGroup group(sim());
    while (sim().now() < end) {
      // Pick a random idle, allocated node; churn it with P(release).
      std::vector<size_t> candidates;
      for (size_t i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].busy && enclave(slots_[i]).node_state(slots_[i].node) ==
                                   core::NodeState::kAllocated) {
          candidates.push_back(i);
        }
      }
      if (!candidates.empty() &&
          rng_.NextDouble() < phase.release_fraction) {
        const size_t pick = candidates[rng_.NextBelow(candidates.size())];
        slots_[pick].busy = true;
        group.Spawn(ChurnCycle(pick, &group));
      }
      co_await sim::Delay(sim(), ExponentialDelay(phase.hold));
    }
    co_await group.WaitAll();
  }

  // --- Phase: reboot storm -------------------------------------------------
  sim::Task StormReboot(size_t slot_index, bool verify_after) {
    Slot& slot = slots_[slot_index];
    co_await Release(slot_index);
    bool ok = false;
    co_await Provision(slot_index, &ok);
    if (ok) {
      ++result_.stats.storm_reboots;
      if (verify_after && enclave(slot).profile().use_attestation) {
        // The storm's attestation burst: every rebooted node demands a
        // fresh verdict at once.
        keylime::VerificationResult verdict;
        co_await enclave(slot).verifier().VerifyNode(slot.node, &verdict);
        if (!verdict.passed && spec_.faults == FaultMode::kOff) {
          Fail(slot.node + " fails attestation after storm reboot: " +
               verdict.failure);
        }
      }
    }
    slot.busy = false;
  }

  sim::Task RebootStormPhase(PhaseSpec phase) {
    sim::TaskGroup group(sim());
    bool any = false;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].busy || enclave(slots_[i]).node_state(slots_[i].node) !=
                                core::NodeState::kAllocated) {
        continue;
      }
      if (rng_.NextDouble() < phase.storm_fraction) {
        slots_[i].busy = true;
        any = true;
        group.Spawn(StormReboot(i, /*verify_after=*/true));
      }
    }
    if (!any) {
      Fail("reboot_storm phase found no allocated node to reboot");
    }
    co_await group.WaitAll();
  }

  // --- Phase: rolling firmware upgrade ------------------------------------
  sim::Task UpgradeOne(size_t slot_index, const firmware::FirmwareImage& flashed,
                       bool* integrity_failed) {
    Slot& slot = slots_[slot_index];
    machine::Machine* machine = cloud_->FindMachine(slot.node);
    co_await Release(slot_index);
    machine->ReflashFirmware(flashed);
    bool ok = false;
    co_await Provision(slot_index, &ok);
    if (ok) {
      ++result_.stats.upgrades;
    } else {
      if (!TransientFailure(last_failure_[slot_index])) {
        // Integrity rejection: the canary caught a bad image.  The caller
        // aborts the rollout.
        *integrity_failed = true;
      }
      // Any node that failed to come up healthy on the new image — even
      // for transient, fault-layer reasons — rolls back to the old
      // firmware.  Leaving an unattested image stranded in flash would
      // poison every later re-provision of this node.
      ++result_.stats.rollbacks;
      co_await Release(slot_index);
      machine->ReflashFirmware(cloud_->linuxboot());
      bool rollback_ok = false;
      co_await Provision(slot_index, &rollback_ok);
      if (!rollback_ok && spec_.faults == FaultMode::kOff) {
        Fail(slot.node + " failed to re-provision after firmware rollback: " +
             last_failure_[slot_index]);
      }
    }
    slot.busy = false;
  }

  sim::Task RollingUpgradePhase(PhaseSpec phase) {
    // The tenant rebuilds LinuxBoot v2 from source and predicts its digest
    // (the deterministic-build property, §5), whitelisting it ahead of the
    // first reflash.  With bad_image the BMC flashes a compromised variant
    // while the whitelist still expects the clean build — the canaries
    // must fail attestation and trigger rollback.
    const firmware::FirmwareImage v2 =
        firmware::BuildLinuxBoot("heads-v2+" + spec_.name);
    const firmware::FirmwareImage flashed =
        phase.bad_image ? firmware::CompromisedVariant(v2, "rollout-implant")
                        : v2;
    for (auto& tenant : tenants_) {
      tenant->AllowBootDigest(v2.digest);
    }

    std::vector<size_t> candidates;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].busy && enclave(slots_[i]).node_state(slots_[i].node) ==
                                 core::NodeState::kAllocated) {
        candidates.push_back(i);
      }
    }
    if (candidates.empty()) {
      Fail("rolling_upgrade phase found no allocated node to upgrade");
      co_return;
    }

    // Canary wave first; the fleet only follows when every canary passed.
    const size_t canaries =
        std::min<size_t>(static_cast<size_t>(phase.canaries), candidates.size());
    bool integrity_failed = false;
    {
      sim::TaskGroup wave(sim());
      for (size_t c = 0; c < canaries; ++c) {
        slots_[candidates[c]].busy = true;
        wave.Spawn(UpgradeOne(candidates[c], flashed, &integrity_failed));
      }
      co_await wave.WaitAll();
    }

    if (integrity_failed) {
      if (!phase.bad_image) {
        Fail("rolling_upgrade: clean image rejected as an integrity failure");
      }
      co_return;  // staged rollout aborted; the fleet keeps old firmware
    }
    if (phase.bad_image) {
      Fail("rolling_upgrade: compromised canary image passed attestation");
      co_return;
    }

    sim::TaskGroup rest(sim());
    for (size_t c = canaries; c < candidates.size(); ++c) {
      const size_t i = candidates[c];
      if (slots_[i].busy || enclave(slots_[i]).node_state(slots_[i].node) !=
                                core::NodeState::kAllocated) {
        continue;  // churn got there first; the sweep at the end covers it
      }
      slots_[i].busy = true;
      rest.Spawn(UpgradeOne(i, flashed, &integrity_failed));
    }
    co_await rest.WaitAll();
  }

  // --- Phase: compromise-detection sweep ----------------------------------
  sim::Task QuarantineOne(size_t slot_index) {
    Slot& slot = slots_[slot_index];
    core::Enclave& tenant = enclave(slot);
    ++result_.stats.compromises;
    tenant.ExecuteBinary(slot.node, "/tmp/.hidden/rootkit",
                         crypto::Sha256::Hash("rootkit-" + spec_.name),
                         /*whitelisted_already=*/false);
    // Continuous attestation must notice the unwhitelisted measurement and
    // quarantine the node.  Give it a generous number of polls.
    const sim::Time deadline = sim().now() + sim::Duration::Minutes(3);
    while (tenant.node_state(slot.node) != core::NodeState::kRejected &&
           sim().now() < deadline) {
      co_await sim::Delay(sim(), sim::Duration::Seconds(1));
    }
    if (tenant.node_state(slot.node) != core::NodeState::kRejected) {
      Fail("compromise on " + slot.node + " was never quarantined");
      slot.busy = false;
      co_return;
    }
    ++result_.stats.quarantines;
    // Quarantined != leaked: the node must release and re-provision.
    co_await Release(slot_index);
    bool ok = false;
    co_await Provision(slot_index, &ok);
    if (!ok && spec_.faults == FaultMode::kOff) {
      Fail(slot.node + " failed to re-provision after quarantine: " +
           last_failure_[slot_index]);
    }
    slot.busy = false;
  }

  sim::Task QuarantineSweepPhase(PhaseSpec phase) {
    std::vector<size_t> candidates;
    for (size_t i = 0; i < slots_.size(); ++i) {
      if (!slots_[i].busy &&
          enclave(slots_[i]).profile().continuous_attestation &&
          enclave(slots_[i]).node_state(slots_[i].node) ==
              core::NodeState::kAllocated) {
        candidates.push_back(i);
      }
    }
    if (candidates.empty()) {
      Fail("quarantine_sweep phase found no continuously-attested node");
      co_return;
    }
    sim::TaskGroup group(sim());
    bool any = false;
    for (const size_t i : candidates) {
      if (rng_.NextDouble() < phase.compromise_fraction) {
        slots_[i].busy = true;
        any = true;
        group.Spawn(QuarantineOne(i));
      }
    }
    if (!any) {  // fraction rounded to nothing: compromise one anyway
      slots_[candidates[0]].busy = true;
      group.Spawn(QuarantineOne(candidates[0]));
    }
    co_await group.WaitAll();
  }

  // --- Phase: elastic airlock resize --------------------------------------
  sim::Task AirlockResizePhase(PhaseSpec phase) {
    const int delta = phase.airlock_slots - airlock_slots_now_;
    cloud_->airlock_slots().AddPermits(delta);
    airlock_slots_now_ = phase.airlock_slots;
    ++result_.stats.airlock_resizes;
    co_return;
  }

  sim::Task PhaseDriver(PhaseSpec phase) {
    co_await sim::Delay(sim(), phase.start);
    const sim::Time started = sim().now();
    sim().RecordTraceEvent(kPhaseTagBase + static_cast<uint64_t>(phase.kind));
    obs::Count(sim(), "scenario.phase_started");
    switch (phase.kind) {
      case PhaseKind::kChurn:
        co_await ChurnPhase(phase);
        break;
      case PhaseKind::kRebootStorm:
        co_await RebootStormPhase(phase);
        break;
      case PhaseKind::kRollingUpgrade:
        co_await RollingUpgradePhase(phase);
        break;
      case PhaseKind::kQuarantineSweep:
        co_await QuarantineSweepPhase(phase);
        break;
      case PhaseKind::kAirlockResize:
        co_await AirlockResizePhase(phase);
        break;
    }
    obs::CompleteSince(sim(), PhaseName(phase.kind), "scenario", "scenario",
                       started);
  }

  sim::Task AllPhases() {
    sim::TaskGroup group(sim());
    group.Spawn(ArrivalDriver());
    for (const PhaseSpec& phase : spec_.phases) {
      group.Spawn(PhaseDriver(phase));
    }
    co_await group.WaitAll();
    phases_done_ = true;
  }

  // Invariant (b) + end-to-end half of (c): on the quiesced fabric, every
  // node must reach allocated (re-provisioning whatever the run rejected)
  // and pass a fresh attestation round.
  sim::Task FinalSweep() {
    for (size_t i = 0; i < slots_.size(); ++i) {
      Slot& slot = slots_[i];
      core::Enclave& tenant = enclave(slot);
      if (tenant.node_state(slot.node) != core::NodeState::kAllocated) {
        co_await Release(i);
        bool ok = false;
        co_await Provision(i, &ok);
        if (!ok) {
          Fail("re-provisioning " + slot.node +
               " failed on a healthy fabric: " + last_failure_[i]);
          continue;
        }
      }
      if (tenant.profile().use_attestation) {
        keylime::VerificationResult verdict;
        co_await tenant.verifier().VerifyNode(slot.node, &verdict);
        if (!verdict.passed) {
          Fail(slot.node + " fails attestation after quiesce: " +
               verdict.failure);
        }
      }
    }
    sweep_done_ = true;
  }

  const ScenarioSpec spec_;
  sim::Rng rng_;
  std::unique_ptr<core::Cloud> cloud_;
  std::vector<std::unique_ptr<core::Enclave>> tenants_;
  std::vector<Slot> slots_;
  std::map<size_t, std::string> last_failure_;
  int airlock_slots_now_ = 1;
  bool arrivals_done_ = false;
  bool phases_done_ = false;
  bool sweep_done_ = false;
  ScenarioResult result_;
};

ScenarioResult Runner::Run() {
  const std::string invalid = spec_.Validate();
  if (!invalid.empty()) {
    Fail("invalid spec: " + invalid);
    return std::move(result_);
  }

#if BOLTED_OBS
  obs::Registry registry(sim());
#endif

  // Tenants and their contiguous node assignments.
  size_t next_node = 0;
  for (size_t t = 0; t < spec_.tenants.size(); ++t) {
    const TenantSpec& tenant = spec_.tenants[t];
    tenants_.push_back(std::make_unique<core::Enclave>(
        *cloud_, tenant.name, ProfileFor(tenant.tier),
        spec_.seed ^ (0x7e00u + t)));
    for (int n = 0; n < tenant.nodes; ++n, ++next_node) {
      slots_.push_back(Slot{cloud_->node_name(next_node), static_cast<int>(t)});
    }
  }

  // Invariant (a): the provider-side sniffer sees every delivered frame; a
  // frame whose endpoints belong to different tenants is a breach no fault
  // or phase may cause.
  std::map<net::Address, int> owner;
  for (const Slot& slot : slots_) {
    owner[cloud_->FindMachine(slot.node)->address()] = slot.tenant;
  }
  for (size_t t = 0; t < spec_.tenants.size(); ++t) {
    for (const char* suffix :
         {"-controller", "-keylime-registrar", "-keylime-verifier"}) {
      if (net::Endpoint* e =
              cloud_->fabric().FindByName(spec_.tenants[t].name + suffix)) {
        owner[e->address()] = static_cast<int>(t);
      }
    }
  }
  bool breached = false;  // report the first breach, not ten thousand
  cloud_->fabric().SetSniffer(
      [this, owner = std::move(owner), &breached](net::VlanId vlan,
                                                  const net::Message& message) {
        if (breached) {
          return;
        }
        const auto src = owner.find(message.src);
        const auto dst = owner.find(message.dst);
        if (src != owner.end() && dst != owner.end() &&
            src->second != dst->second) {
          breached = true;
          Fail("frame '" + message.kind +
               "' delivered across enclaves on VLAN " + std::to_string(vlan));
        }
      });

  // Fault plan: generated from the seed (kOn), explicit events only
  // (kPlan), or absent.
  std::unique_ptr<faults::FaultInjector> injector;
  if (spec_.faults != FaultMode::kOff) {
    faults::FaultPlan plan;
    if (spec_.faults == FaultMode::kOn) {
      plan = faults::FaultPlan::Generate(spec_.seed ^ 0xFA017u,
                                         spec_.fault_profile,
                                         static_cast<size_t>(spec_.machines));
    } else {
      plan.seed = spec_.seed;
      plan.profile = spec_.fault_profile;
      // Explicit-plan mode: no stochastic faults, only the spec's events.
      plan.profile.frame_drop_rate = 0;
      plan.profile.frame_dup_rate = 0;
      plan.profile.frame_delay_rate = 0;
      plan.profile.tpm_fail_rate = 0;
      plan.profile.tpm_spike_rate = 0;
      plan.profile.horizon = spec_.duration;
    }
    for (const faults::CrashEvent& crash : spec_.crashes) {
      plan.crashes.push_back(crash);
    }
    for (const faults::LinkFlapEvent& flap : spec_.flaps) {
      plan.flaps.push_back(flap);
    }
    injector = std::make_unique<faults::FaultInjector>(sim(), cloud_->fabric(),
                                                       std::move(plan));
    for (size_t i = 0; i < cloud_->num_machines(); ++i) {
      injector->AddTarget(&cloud_->machine(i));
    }
    injector->Arm();
  }

  // The run itself: arrivals + phases, watchdogged far past the scenario
  // duration so a deadlocked phase fails loudly instead of hanging ctest.
  sim().Spawn(AllPhases());
  RunUntilFlag(&phases_done_, spec_.duration + sim::Duration::Minutes(45));
  if (!phases_done_) {
    Fail("scenario phases did not terminate within duration + 45 sim-minutes");
    result_.digest = sim().trace_digest();
    result_.sim_elapsed = sim().now() - sim::Time{};
    return std::move(result_);
  }

  // Quiesce: the fault window closes, continuous attestation settles.
  sim::Time settle = sim().now() + sim::Duration::Minutes(1);
  if (injector != nullptr) {
    const sim::Time fault_settle =
        injector->quiesce_time() + sim::Duration::Minutes(2);
    settle = settle < fault_settle ? fault_settle : settle;
  }
  sim().RunUntil(settle);

  sim().Spawn(FinalSweep());
  RunUntilFlag(&sweep_done_, sim::Duration::Minutes(45));
  if (!sweep_done_) {
    Fail("final convergence sweep did not terminate");
  }

  for (const Slot& slot : slots_) {
    result_.final_states.push_back(
        tenants_[slot.tenant]->node_state(slot.node));
  }
  if (injector != nullptr) {
    result_.stats.faults_fired =
        cloud_->fabric().fault_drops() + cloud_->fabric().fault_duplicates() +
        injector->flaps_injected() + injector->crashes_injected() +
        injector->partition_drops() + injector->tpm_faults_injected();
  }
  result_.digest = sim().trace_digest();
  result_.sim_elapsed = sim().now() - sim::Time{};
  return std::move(result_);
}

}  // namespace

ScenarioResult RunScenario(const ScenarioSpec& spec,
                           sim::SchedulerKind scheduler) {
  Runner runner(spec, scheduler);
  return runner.Run();
}

}  // namespace bolted::scenario
