#include "src/storage/merkle_device.h"

#include <algorithm>
#include <utility>

#include "src/crypto/bytes.h"

namespace bolted::storage {
namespace {

// "BLTMRKL1": a committed journal header.  Anything else (including the
// all-zeros sector a clear writes) is treated as "no transaction".
constexpr uint64_t kJournalMagic = 0x424c544d524b4c31ull;

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | p[i];
  }
  return v;
}

crypto::Digest SectorDigest(const crypto::Bytes& sector) {
  return crypto::Sha256::Hash(crypto::ByteView(sector.data(), sector.size()));
}

bool DigestAt(const crypto::Bytes& node, uint64_t entry, crypto::Digest* out) {
  const size_t offset = static_cast<size_t>(entry) * crypto::Sha256::kDigestSize;
  if (offset + crypto::Sha256::kDigestSize > node.size()) {
    return false;
  }
  std::copy(node.begin() + static_cast<ptrdiff_t>(offset),
            node.begin() + static_cast<ptrdiff_t>(offset + crypto::Sha256::kDigestSize),
            out->begin());
  return true;
}

void SetDigestAt(crypto::Bytes* node, uint64_t entry, const crypto::Digest& digest) {
  const size_t offset = static_cast<size_t>(entry) * crypto::Sha256::kDigestSize;
  std::copy(digest.begin(), digest.end(),
            node->begin() + static_cast<ptrdiff_t>(offset));
}

}  // namespace

std::string_view IntegrityFaultName(IntegrityFault fault) {
  switch (fault) {
    case IntegrityFault::kNone:
      return "none";
    case IntegrityFault::kDataMismatch:
      return "data sector mismatch";
    case IntegrityFault::kHashNodeMismatch:
      return "hash node mismatch";
    case IntegrityFault::kRootTampered:
      return "stored root tampered";
    case IntegrityFault::kRollback:
      return "rollback to stale root";
  }
  return "unknown";
}

MerkleGeometry MerkleGeometry::For(uint64_t data_sectors) {
  MerkleGeometry g;
  g.data_sectors = data_sectors;
  uint64_t nodes = (data_sectors + kArity - 1) / kArity;
  if (nodes == 0) {
    nodes = 1;
  }
  uint64_t offset = data_sectors;
  for (;;) {
    g.level_nodes.push_back(nodes);
    g.level_offsets.push_back(offset);
    offset += nodes;
    if (nodes == 1) {
      break;
    }
    nodes = (nodes + kArity - 1) / kArity;
  }
  g.root_sector = offset;
  g.journal_header_sector = offset + 1;
  // Worst-case single transaction: every data sector, every hash node,
  // and the root copy dirty at once.
  g.journal_slots = data_sectors + g.hash_sectors() + 1;
  g.journal_index_sectors = (g.journal_slots * 8 + kSectorSize - 1) / kSectorSize;
  g.total_sectors =
      g.journal_header_sector + 1 + g.journal_index_sectors + g.journal_slots;
  return g;
}

uint64_t MerkleGeometry::hash_sectors() const {
  uint64_t total = 0;
  for (const uint64_t n : level_nodes) {
    total += n;
  }
  return total;
}

MerkleBlockDevice::MerkleBlockDevice(sim::Simulation& sim, BlockDevice* backing,
                                     uint64_t data_sectors, size_t cache_sectors,
                                     const MerkleCostModel& cost, std::string name)
    : sim_(sim),
      backing_(backing),
      geometry_(MerkleGeometry::For(data_sectors)),
      cache_sectors_(cache_sectors == 0 ? 1 : cache_sectors),
      hash_resource_(sim, cost.hash_bytes_per_second, name + ".hash"),
      name_(std::move(name)) {}

sim::Task MerkleBlockDevice::Format(sim::Simulation& sim, BlockDevice& backing,
                                    uint64_t data_sectors, crypto::Digest* root_out) {
  (void)sim;
  const MerkleGeometry g = MerkleGeometry::For(data_sectors);

  // Zero the data region (batched writes keep the event count sane).
  constexpr uint64_t kBatch = 128;
  crypto::Bytes zeros(kBatch * kSectorSize, 0);
  for (uint64_t s = 0; s < data_sectors; s += kBatch) {
    const uint64_t count = std::min(kBatch, data_sectors - s);
    if (count != kBatch) {
      zeros.resize(count * kSectorSize);
    }
    co_await backing.WriteSectors(s, zeros);
  }

  // Build the tree bottom-up in memory; entries past the covered range
  // stay zero bytes (not zero-sector digests).
  const crypto::Bytes zero_sector(kSectorSize, 0);
  const crypto::Digest zero_digest = SectorDigest(zero_sector);
  std::vector<crypto::Digest> child_digests(data_sectors, zero_digest);
  crypto::Digest root{};
  for (int level = 0; level < g.levels(); ++level) {
    const uint64_t nodes = g.level_nodes[static_cast<size_t>(level)];
    std::vector<crypto::Digest> node_digests(nodes);
    for (uint64_t i = 0; i < nodes; ++i) {
      crypto::Bytes node(kSectorSize, 0);
      const uint64_t first = i * MerkleGeometry::kArity;
      const uint64_t last =
          std::min<uint64_t>(first + MerkleGeometry::kArity, child_digests.size());
      for (uint64_t c = first; c < last; ++c) {
        SetDigestAt(&node, c - first, child_digests[c]);
      }
      node_digests[i] = SectorDigest(node);
      co_await backing.WriteSectors(g.NodeSector(level, i), node);
    }
    if (level + 1 == g.levels()) {
      root = node_digests[0];
    }
    child_digests = std::move(node_digests);
  }

  crypto::Bytes root_sector(kSectorSize, 0);
  std::copy(root.begin(), root.end(), root_sector.begin());
  co_await backing.WriteSectors(g.root_sector, root_sector);
  crypto::Bytes empty_header(kSectorSize, 0);
  co_await backing.WriteSectors(g.journal_header_sector, empty_header);

  if (root_out != nullptr) {
    *root_out = root;
  }
}

sim::Task MerkleBlockDevice::ReadBackingSector(uint64_t sector, crypto::Bytes* out) {
  co_await backing_->ReadSectors(sector, 1, out);
}

int MerkleBlockDevice::LevelOfSector(uint64_t sector) const {
  for (int level = geometry_.levels() - 1; level >= 0; --level) {
    if (sector >= geometry_.level_offsets[static_cast<size_t>(level)]) {
      return sector < geometry_.level_offsets[static_cast<size_t>(level)] +
                          geometry_.level_nodes[static_cast<size_t>(level)]
                 ? level
                 : -1;
    }
  }
  return -1;
}

void MerkleBlockDevice::InsertCache(uint64_t sector, crypto::Bytes data, bool dirty) {
  CacheEntry& entry = cache_[sector];
  entry.data = std::move(data);
  entry.dirty = entry.dirty || dirty;
  entry.lru = ++lru_tick_;
  EvictCleanOverflow();
}

void MerkleBlockDevice::EvictCleanOverflow() {
  while (cache_.size() > cache_sectors_) {
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->second.dirty) {
        continue;
      }
      if (victim == cache_.end() || it->second.lru < victim->second.lru) {
        victim = it;
      }
    }
    if (victim == cache_.end()) {
      return;  // everything dirty: pinned until the next Flush
    }
    cache_.erase(victim);
    ++cache_evictions_;
  }
}

sim::Task MerkleBlockDevice::LoadHashNode(int level, uint64_t index,
                                          crypto::Bytes* out, bool* ok) {
  *ok = false;
  const int top = geometry_.levels() - 1;
  crypto::Digest expected = root_;
  crypto::Bytes content;
  for (int l = top; l >= level; --l) {
    const int shift = MerkleGeometry::kArityShift * (l - level);
    const uint64_t idx = index >> shift;
    const uint64_t sector = geometry_.NodeSector(l, idx);
    const auto it = cache_.find(sector);
    if (it != cache_.end()) {
      ++cache_hits_;
      it->second.lru = ++lru_tick_;
      content = it->second.data;
    } else {
      ++cache_misses_;
      co_await ReadBackingSector(sector, &content);
      co_await hash_resource_.Consume(static_cast<double>(kSectorSize));
      if (SectorDigest(content) != expected) {
        fault_ = IntegrityFault::kHashNodeMismatch;
        co_return;
      }
      crypto::Bytes copy = content;
      InsertCache(sector, std::move(copy), /*dirty=*/false);
    }
    if (l > level) {
      const uint64_t child = index >> (MerkleGeometry::kArityShift * (l - 1 - level));
      if (!DigestAt(content, child & (MerkleGeometry::kArity - 1), &expected)) {
        fault_ = IntegrityFault::kHashNodeMismatch;
        co_return;
      }
    }
  }
  *out = std::move(content);
  *ok = true;
}

sim::Task MerkleBlockDevice::LoadDataSector(uint64_t sector, crypto::Bytes* out,
                                            bool* ok) {
  *ok = false;
  const auto it = cache_.find(sector);
  if (it != cache_.end()) {
    ++cache_hits_;
    it->second.lru = ++lru_tick_;
    *out = it->second.data;
    *ok = true;
    co_return;
  }
  ++cache_misses_;
  crypto::Bytes leaf_node;
  bool node_ok = false;
  co_await LoadHashNode(0, sector >> MerkleGeometry::kArityShift, &leaf_node,
                        &node_ok);
  if (!node_ok) {
    co_return;
  }
  crypto::Bytes data;
  co_await ReadBackingSector(sector, &data);
  co_await hash_resource_.Consume(static_cast<double>(kSectorSize));
  crypto::Digest expected{};
  DigestAt(leaf_node, sector & (MerkleGeometry::kArity - 1), &expected);
  if (SectorDigest(data) != expected) {
    fault_ = IntegrityFault::kDataMismatch;
    co_return;
  }
  crypto::Bytes copy = data;
  InsertCache(sector, std::move(copy), /*dirty=*/false);
  *out = std::move(data);
  *ok = true;
}

sim::Task MerkleBlockDevice::ReadSectors(uint64_t first_sector, uint64_t count,
                                         crypto::Bytes* out) {
  out->assign(count * kSectorSize, 0);
  if (fault_ != IntegrityFault::kNone) {
    co_return;  // fail closed: no backing I/O, zero output
  }
  for (uint64_t i = 0; i < count; ++i) {
    crypto::Bytes sector;
    bool ok = false;
    co_await LoadDataSector(first_sector + i, &sector, &ok);
    if (!ok) {
      std::fill(out->begin(), out->end(), 0);
      co_return;
    }
    std::copy(sector.begin(), sector.end(),
              out->begin() + static_cast<ptrdiff_t>(i * kSectorSize));
  }
}

sim::Task MerkleBlockDevice::WriteSectors(uint64_t first_sector,
                                          const crypto::Bytes& data) {
  if (fault_ != IntegrityFault::kNone) {
    co_return;  // refused
  }
  const uint64_t count = data.size() / kSectorSize;
  for (uint64_t i = 0; i < count; ++i) {
    crypto::Bytes sector(data.begin() + static_cast<ptrdiff_t>(i * kSectorSize),
                         data.begin() + static_cast<ptrdiff_t>((i + 1) * kSectorSize));
    InsertCache(first_sector + i, std::move(sector), /*dirty=*/true);
  }
  co_return;
}

sim::Task MerkleBlockDevice::Flush() {
  if (fault_ != IntegrityFault::kNone) {
    co_return;
  }

  // Recompute leaf digests for dirty data sectors, dirtying their leaf
  // nodes, then propagate level by level to a new root.  std::map keeps
  // every pass in ascending-sector order, so the resulting root (and the
  // journal image) is a pure function of content — identical across cache
  // sizes and write orders.
  std::vector<uint64_t> dirty_data;
  for (const auto& [sector, entry] : cache_) {
    if (entry.dirty && sector < geometry_.data_sectors) {
      dirty_data.push_back(sector);
    }
  }
  bool any_dirty = !dirty_data.empty();
  for (const auto& [sector, entry] : cache_) {
    any_dirty = any_dirty || entry.dirty;
  }
  if (!any_dirty) {
    co_return;
  }

  for (const uint64_t sector : dirty_data) {
    crypto::Bytes node;
    bool ok = false;
    co_await LoadHashNode(0, sector >> MerkleGeometry::kArityShift, &node, &ok);
    if (!ok) {
      co_return;
    }
    co_await hash_resource_.Consume(static_cast<double>(kSectorSize));
    SetDigestAt(&node, sector & (MerkleGeometry::kArity - 1),
                SectorDigest(cache_.at(sector).data));
    InsertCache(geometry_.NodeSector(0, sector >> MerkleGeometry::kArityShift),
                std::move(node), /*dirty=*/true);
  }

  crypto::Digest new_root = root_;
  for (int level = 0; level < geometry_.levels(); ++level) {
    std::vector<uint64_t> dirty_nodes;
    const uint64_t level_base = geometry_.level_offsets[static_cast<size_t>(level)];
    const uint64_t level_end =
        level_base + geometry_.level_nodes[static_cast<size_t>(level)];
    for (const auto& [sector, entry] : cache_) {
      if (entry.dirty && sector >= level_base && sector < level_end) {
        dirty_nodes.push_back(sector);
      }
    }
    for (const uint64_t sector : dirty_nodes) {
      co_await hash_resource_.Consume(static_cast<double>(kSectorSize));
      const crypto::Digest digest = SectorDigest(cache_.at(sector).data);
      const uint64_t index = sector - level_base;
      if (level + 1 == geometry_.levels()) {
        new_root = digest;
      } else {
        crypto::Bytes parent;
        bool ok = false;
        co_await LoadHashNode(level + 1, index >> MerkleGeometry::kArityShift,
                              &parent, &ok);
        if (!ok) {
          co_return;
        }
        SetDigestAt(&parent, index & (MerkleGeometry::kArity - 1), digest);
        InsertCache(geometry_.NodeSector(level + 1,
                                         index >> MerkleGeometry::kArityShift),
                    std::move(parent), /*dirty=*/true);
      }
    }
  }

  // Commit set: every dirty sector plus the stored-root update.
  std::vector<std::pair<uint64_t, crypto::Bytes>> commit;
  for (const auto& [sector, entry] : cache_) {
    if (entry.dirty) {
      commit.emplace_back(sector, entry.data);
    }
  }
  crypto::Bytes root_sector(kSectorSize, 0);
  std::copy(new_root.begin(), new_root.end(), root_sector.begin());
  commit.emplace_back(geometry_.root_sector, root_sector);

  // Redo journal: content slots, then the index table, then a checksummed
  // commit header.  Only the header write makes the transaction real.
  crypto::Bytes index_bytes;
  crypto::Sha256 checksum;
  crypto::Bytes count_bytes;
  crypto::AppendU64(count_bytes, commit.size());
  checksum.Update(crypto::ByteView(count_bytes.data(), count_bytes.size()));
  for (size_t i = 0; i < commit.size(); ++i) {
    crypto::AppendU64(index_bytes, commit[i].first);
    co_await backing_->WriteSectors(geometry_.JournalSlotSector(i), commit[i].second);
  }
  checksum.Update(crypto::ByteView(index_bytes.data(), index_bytes.size()));
  for (const auto& [sector, content] : commit) {
    (void)sector;
    checksum.Update(crypto::ByteView(content.data(), content.size()));
  }
  index_bytes.resize(geometry_.journal_index_sectors * kSectorSize, 0);
  for (uint64_t i = 0; i < geometry_.journal_index_sectors; ++i) {
    crypto::Bytes page(
        index_bytes.begin() + static_cast<ptrdiff_t>(i * kSectorSize),
        index_bytes.begin() + static_cast<ptrdiff_t>((i + 1) * kSectorSize));
    co_await backing_->WriteSectors(geometry_.JournalIndexSector(i), page);
  }
  crypto::Bytes header;
  crypto::AppendU64(header, kJournalMagic);
  crypto::AppendU64(header, commit.size());
  const crypto::Digest check = checksum.Finish();
  crypto::Append(header, crypto::DigestView(check));
  header.resize(kSectorSize, 0);
  co_await backing_->WriteSectors(geometry_.journal_header_sector, header);

  // Apply in place, then retire the transaction.
  for (const auto& [sector, content] : commit) {
    co_await backing_->WriteSectors(sector, content);
  }
  crypto::Bytes empty_header(kSectorSize, 0);
  co_await backing_->WriteSectors(geometry_.journal_header_sector, empty_header);

  for (auto& [sector, entry] : cache_) {
    (void)sector;
    entry.dirty = false;
  }
  root_ = new_root;
  opened_ = true;
  EvictCleanOverflow();
}

sim::Task MerkleBlockDevice::Open(const crypto::Digest& expected_root, bool* ok) {
  *ok = false;
  cache_.clear();
  fault_ = IntegrityFault::kNone;

  // Replay a committed journal (idempotent redo).  An absent, torn, or
  // corrupt header means the transaction never happened.
  crypto::Bytes header;
  co_await ReadBackingSector(geometry_.journal_header_sector, &header);
  const uint64_t magic = ReadU64(header.data());
  const uint64_t count = ReadU64(header.data() + 8);
  if (magic == kJournalMagic && count > 0 && count <= geometry_.journal_slots) {
    crypto::Digest stored_check{};
    std::copy(header.begin() + 16, header.begin() + 48, stored_check.begin());
    crypto::Bytes index_bytes;
    for (uint64_t i = 0; i < geometry_.journal_index_sectors; ++i) {
      crypto::Bytes page;
      co_await ReadBackingSector(geometry_.JournalIndexSector(i), &page);
      crypto::Append(index_bytes, crypto::ByteView(page.data(), page.size()));
    }
    std::vector<uint64_t> targets(count);
    for (uint64_t i = 0; i < count; ++i) {
      targets[i] = ReadU64(index_bytes.data() + i * 8);
    }
    std::vector<crypto::Bytes> contents(count);
    for (uint64_t i = 0; i < count; ++i) {
      co_await ReadBackingSector(geometry_.JournalSlotSector(i), &contents[i]);
    }
    crypto::Sha256 checksum;
    crypto::Bytes count_bytes;
    crypto::AppendU64(count_bytes, count);
    checksum.Update(crypto::ByteView(count_bytes.data(), count_bytes.size()));
    crypto::Bytes raw_targets;
    for (uint64_t i = 0; i < count; ++i) {
      crypto::AppendU64(raw_targets, targets[i]);
    }
    checksum.Update(crypto::ByteView(raw_targets.data(), raw_targets.size()));
    for (const crypto::Bytes& content : contents) {
      checksum.Update(crypto::ByteView(content.data(), content.size()));
    }
    if (checksum.Finish() == stored_check) {
      for (uint64_t i = 0; i < count; ++i) {
        co_await backing_->WriteSectors(targets[i], contents[i]);
      }
      crypto::Bytes empty_header(kSectorSize, 0);
      co_await backing_->WriteSectors(geometry_.journal_header_sector, empty_header);
    }
  }

  crypto::Bytes root_sector;
  co_await ReadBackingSector(geometry_.root_sector, &root_sector);
  crypto::Digest stored{};
  std::copy(root_sector.begin(), root_sector.begin() + 32, stored.begin());
  if (stored == expected_root) {
    root_ = expected_root;
    opened_ = true;
    *ok = true;
    co_return;
  }

  // The stored root disagrees with the tenant.  If it still matches the
  // tree actually on disk, the provider restored an older but internally
  // consistent snapshot (rollback); otherwise the root itself was
  // tampered with.
  crypto::Bytes top;
  co_await ReadBackingSector(geometry_.NodeSector(geometry_.levels() - 1, 0), &top);
  co_await hash_resource_.Consume(static_cast<double>(kSectorSize));
  fault_ = SectorDigest(top) == stored ? IntegrityFault::kRollback
                                       : IntegrityFault::kRootTampered;
}

sim::Task MerkleBlockDevice::AccountRead(uint64_t bytes) {
  sim::TaskGroup group(sim_);
  group.Spawn(backing_->AccountRead(bytes));
  group.Spawn(hash_resource_.Consume(static_cast<double>(bytes)));
  co_await group.WaitAll();
}

sim::Task MerkleBlockDevice::AccountWrite(uint64_t bytes) {
  sim::TaskGroup group(sim_);
  group.Spawn(backing_->AccountWrite(bytes));
  group.Spawn(hash_resource_.Consume(static_cast<double>(bytes)));
  co_await group.WaitAll();
}

sim::Task MerkleBlockDevice::AccountRandomRead(uint64_t bytes, uint64_t chunk_bytes) {
  sim::TaskGroup group(sim_);
  group.Spawn(backing_->AccountRandomRead(bytes, chunk_bytes));
  group.Spawn(hash_resource_.Consume(static_cast<double>(bytes)));
  co_await group.WaitAll();
}

}  // namespace bolted::storage
