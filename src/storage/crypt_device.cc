#include "src/storage/crypt_device.h"

#include <cassert>
#include <utility>

#include "src/crypto/aes_gcm.h"
#include "src/crypto/hmac.h"

namespace bolted::storage {

CryptDevice::CryptDevice(sim::Simulation& sim, BlockDevice* backing,
                         const crypto::Bytes& master_key, const CryptCostModel& cost,
                         std::string name)
    : sim_(sim),
      backing_(backing),
      xts_(master_key),
      decrypt_resource_(sim, cost.decrypt_bytes_per_second, name + ".xts-dec"),
      encrypt_resource_(sim, cost.encrypt_bytes_per_second, name + ".xts-enc") {
  assert(master_key.size() == 64);
}

sim::Task CryptDevice::ReadSectors(uint64_t first_sector, uint64_t count,
                                   crypto::Bytes* out) {
  co_await backing_->ReadSectors(first_sector, count, out);
  co_await decrypt_resource_.Consume(static_cast<double>(count * kSectorSize));
  xts_.DecryptSectors(first_sector, kSectorSize,
                      std::span<uint8_t>(out->data(), count * kSectorSize));
}

sim::Task CryptDevice::WriteSectors(uint64_t first_sector, const crypto::Bytes& data) {
  assert(data.size() % kSectorSize == 0);
  crypto::Bytes ciphertext = data;
  co_await encrypt_resource_.Consume(static_cast<double>(data.size()));
  xts_.EncryptSectors(first_sector, kSectorSize, std::span<uint8_t>(ciphertext));
  co_await backing_->WriteSectors(first_sector, ciphertext);
}

sim::Task CryptDevice::AccountRead(uint64_t bytes) {
  // Decryption overlaps the device transfer; the slower stage dominates.
  sim::TaskGroup group(sim_);
  group.Spawn(backing_->AccountRead(bytes));
  group.Spawn(decrypt_resource_.Consume(static_cast<double>(bytes)));
  co_await group.WaitAll();
}

sim::Task CryptDevice::AccountRandomRead(uint64_t bytes, uint64_t chunk_bytes) {
  sim::TaskGroup group(sim_);
  group.Spawn(backing_->AccountRandomRead(bytes, chunk_bytes));
  group.Spawn(decrypt_resource_.Consume(static_cast<double>(bytes)));
  co_await group.WaitAll();
}

sim::Task CryptDevice::AccountWrite(uint64_t bytes) {
  sim::TaskGroup group(sim_);
  group.Spawn(backing_->AccountWrite(bytes));
  group.Spawn(encrypt_resource_.Consume(static_cast<double>(bytes)));
  co_await group.WaitAll();
}

LuksVolume::KeySlot LuksVolume::SealSlot(crypto::ByteView secret,
                                         const crypto::Bytes& master_key,
                                         crypto::Drbg& drbg) {
  KeySlot slot;
  slot.salt = drbg.Generate(16);
  const crypto::Bytes kek =
      crypto::Hkdf(slot.salt, secret, crypto::ToBytes("luks-kek"), 32);
  const crypto::Bytes nonce = drbg.Generate(crypto::AesGcm::kNonceSize);
  slot.sealed_master_key = nonce;
  crypto::Append(slot.sealed_master_key,
                 crypto::AesGcm(kek).Seal(nonce, master_key, {}));
  return slot;
}

std::optional<crypto::Bytes> LuksVolume::OpenSlot(const KeySlot& slot,
                                                  crypto::ByteView secret) {
  const crypto::Bytes kek =
      crypto::Hkdf(slot.salt, secret, crypto::ToBytes("luks-kek"), 32);
  const crypto::ByteView nonce(slot.sealed_master_key.data(),
                               crypto::AesGcm::kNonceSize);
  const crypto::ByteView sealed(
      slot.sealed_master_key.data() + crypto::AesGcm::kNonceSize,
      slot.sealed_master_key.size() - crypto::AesGcm::kNonceSize);
  return crypto::AesGcm(kek).Open(nonce, sealed, {});
}

LuksVolume LuksVolume::Format(crypto::ByteView secret, crypto::Drbg& drbg) {
  LuksVolume volume;
  const crypto::Bytes master_key = drbg.Generate(64);
  volume.key_slots_.push_back(SealSlot(secret, master_key, drbg));
  return volume;
}

bool LuksVolume::AddKeySlot(crypto::ByteView existing_secret,
                            crypto::ByteView new_secret, crypto::Drbg& drbg) {
  const auto master_key = Unlock(existing_secret);
  if (!master_key) {
    return false;
  }
  key_slots_.push_back(SealSlot(new_secret, *master_key, drbg));
  return true;
}

std::optional<crypto::Bytes> LuksVolume::Unlock(crypto::ByteView secret) const {
  for (const KeySlot& slot : key_slots_) {
    if (auto master_key = OpenSlot(slot, secret)) {
      return master_key;
    }
  }
  return std::nullopt;
}

std::optional<std::unique_ptr<CryptDevice>> LuksVolume::Open(
    sim::Simulation& sim, BlockDevice* backing, crypto::ByteView secret,
    const CryptCostModel& cost, std::string name) const {
  const auto master_key = Unlock(secret);
  if (!master_key) {
    return std::nullopt;
  }
  return std::make_unique<CryptDevice>(sim, backing, *master_key, cost,
                                       std::move(name));
}

}  // namespace bolted::storage
