// Copy-on-write disk images over the object store (the RBD role in the
// paper's BMI stack).
//
// An image is a sparse sequence of 4 MB objects plus boot metadata.
// Clones share their parent's objects until written (copy-on-write), which
// is what makes BMI's "boot many servers from one golden image" cheap and
// its snapshots instantaneous.  Reads of never-written ranges are
// zero-fill and charge no OSD bandwidth.

#ifndef SRC_STORAGE_IMAGE_H_
#define SRC_STORAGE_IMAGE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>

#include "src/crypto/sha256.h"
#include "src/storage/object_store.h"

namespace bolted::storage {

using ImageId = uint64_t;

// What BMI's boot-info extraction pulls out of an image filesystem
// (kernel, initramfs, command line) so it can be handed to a booting
// server via Keylime.
struct BootInfo {
  uint64_t kernel_bytes = 0;
  uint64_t initrd_bytes = 0;
  std::string kernel_cmdline;
  crypto::Digest kernel_digest{};
  crypto::Digest initrd_digest{};

  bool operator==(const BootInfo&) const = default;
};

class ImageStore {
 public:
  explicit ImageStore(sim::Simulation& sim, ObjectStore& objects);

  // Creates an empty image of the given virtual size.
  ImageId Create(const std::string& name, uint64_t virtual_size, BootInfo boot_info);
  // Copy-on-write clone; shares all parent objects.
  std::optional<ImageId> Clone(ImageId parent, const std::string& name);
  // Read-only snapshot: freezes current state (same sharing mechanics).
  std::optional<ImageId> Snapshot(ImageId image, const std::string& name);
  // Deletes image metadata; owned objects become unreferenced unless
  // shared with children (children keep working: objects are refcounted
  // by the parent chain remaining intact until the whole chain dies).
  bool Delete(ImageId image);

  bool Exists(ImageId image) const { return images_.contains(image); }
  uint64_t VirtualSize(ImageId image) const;
  std::optional<BootInfo> ExtractBootInfo(ImageId image) const;
  std::optional<ImageId> FindByName(const std::string& name) const;

  // Block I/O used by the iSCSI target.  Timing flows from the object
  // store; reads walk the copy-on-write chain.
  sim::Task ReadRange(ImageId image, uint64_t offset, uint64_t bytes);
  sim::Task WriteRange(ImageId image, uint64_t offset, uint64_t bytes);

  // Marks a contiguous object range as present without charging OSD time
  // — models an image whose content was uploaded before the experiment
  // window (e.g. the tenant's golden image).
  void PrepopulateObjects(ImageId image, uint64_t first_object, uint64_t count);

  // Introspection for tests: how many objects this image owns itself.
  size_t OwnedObjectCount(ImageId image) const;
  // Whether a read of this range would be satisfied by an ancestor.
  bool RangeOwnedLocally(ImageId image, uint64_t offset) const;

 private:
  struct ImageRecord {
    std::string name;
    uint64_t virtual_size = 0;
    std::optional<ImageId> parent;
    bool read_only = false;
    BootInfo boot_info;
    std::set<uint64_t> owned_objects;  // object indices written locally
  };

  // Finds which image in the ancestry owns the object, if any.
  std::optional<ImageId> ResolveObject(ImageId image, uint64_t object_index) const;

  sim::Simulation& sim_;
  ObjectStore& objects_;
  std::map<ImageId, ImageRecord> images_;
  ImageId next_id_ = 1;
};

}  // namespace bolted::storage

#endif  // SRC_STORAGE_IMAGE_H_
