// Block-device abstractions for the storage substrate.
//
// Devices expose coroutine read/write of sector ranges.  Data content is
// carried for small, correctness-relevant I/O (boot blocks, keys); bulk
// experiments use the byte-accounting path, with timing supplied by each
// device's fluid-resource model.

#ifndef SRC_STORAGE_BLOCK_DEVICE_H_
#define SRC_STORAGE_BLOCK_DEVICE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/crypto/bytes.h"
#include "src/net/resource.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"

namespace bolted::storage {

inline constexpr uint64_t kSectorSize = 4096;

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  virtual uint64_t num_sectors() const = 0;
  uint64_t capacity_bytes() const { return num_sectors() * kSectorSize; }

  // Reads `count` sectors starting at `first_sector` into out (resized to
  // count * kSectorSize).  Suspends for the modelled device time.
  virtual sim::Task ReadSectors(uint64_t first_sector, uint64_t count,
                                crypto::Bytes* out) = 0;
  // Writes data (size must be a multiple of kSectorSize).
  virtual sim::Task WriteSectors(uint64_t first_sector, const crypto::Bytes& data) = 0;

  // Byte-accounting fast path for bulk benchmarks: models the time for a
  // sequential transfer of `bytes` without materialising them.
  virtual sim::Task AccountRead(uint64_t bytes) = 0;
  virtual sim::Task AccountWrite(uint64_t bytes) = 0;
  // Random-access read pattern in `chunk_bytes` units (OS boot, package
  // loading).  Defaults to the sequential cost; devices with seek or
  // per-request penalties override it.
  virtual sim::Task AccountRandomRead(uint64_t bytes, uint64_t chunk_bytes);
};

// Memory-backed block device (the Fig. 3a "Block RAM disk").  Unwritten
// sectors read as zero.  Separate read/write bandwidth models DDR
// asymmetry under the dd access pattern.
class RamDisk : public BlockDevice {
 public:
  RamDisk(sim::Simulation& sim, uint64_t num_sectors, double read_bytes_per_second,
          double write_bytes_per_second, std::string name);

  uint64_t num_sectors() const override { return num_sectors_; }
  sim::Task ReadSectors(uint64_t first_sector, uint64_t count,
                        crypto::Bytes* out) override;
  sim::Task WriteSectors(uint64_t first_sector, const crypto::Bytes& data) override;
  sim::Task AccountRead(uint64_t bytes) override;
  sim::Task AccountWrite(uint64_t bytes) override;

  net::SharedResource& read_resource() { return read_resource_; }
  net::SharedResource& write_resource() { return write_resource_; }

 private:
  sim::Simulation& sim_;
  uint64_t num_sectors_;
  net::SharedResource read_resource_;
  net::SharedResource write_resource_;
  std::map<uint64_t, crypto::Bytes> sectors_;  // sparse content
};

// Rotational-disk model: sequential bandwidth plus a per-operation seek
// penalty (used for Foreman's local-disk install path and the disk-scrub
// cost analysis).
class DiskModel : public BlockDevice {
 public:
  DiskModel(sim::Simulation& sim, uint64_t num_sectors,
            double sequential_bytes_per_second, sim::Duration seek_latency,
            std::string name);

  uint64_t num_sectors() const override { return num_sectors_; }
  sim::Task ReadSectors(uint64_t first_sector, uint64_t count,
                        crypto::Bytes* out) override;
  sim::Task WriteSectors(uint64_t first_sector, const crypto::Bytes& data) override;
  sim::Task AccountRead(uint64_t bytes) override;
  sim::Task AccountWrite(uint64_t bytes) override;
  sim::Task AccountRandomRead(uint64_t bytes, uint64_t chunk_bytes) override;

  sim::Duration seek_latency() const { return seek_latency_; }

 private:
  sim::Task Access(uint64_t first_sector, uint64_t bytes);

  sim::Simulation& sim_;
  uint64_t num_sectors_;
  net::SharedResource bandwidth_;
  sim::Duration seek_latency_;
  uint64_t last_sector_ = 0;
  std::map<uint64_t, crypto::Bytes> sectors_;
};

}  // namespace bolted::storage

#endif  // SRC_STORAGE_BLOCK_DEVICE_H_
