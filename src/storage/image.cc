#include "src/storage/image.h"

#include <cassert>

namespace bolted::storage {

ImageStore::ImageStore(sim::Simulation& sim, ObjectStore& objects)
    : sim_(sim), objects_(objects) {}

ImageId ImageStore::Create(const std::string& name, uint64_t virtual_size,
                           BootInfo boot_info) {
  const ImageId id = next_id_++;
  ImageRecord record;
  record.name = name;
  record.virtual_size = virtual_size;
  record.boot_info = std::move(boot_info);
  images_.emplace(id, std::move(record));
  return id;
}

std::optional<ImageId> ImageStore::Clone(ImageId parent, const std::string& name) {
  const auto it = images_.find(parent);
  if (it == images_.end()) {
    return std::nullopt;
  }
  const ImageId id = next_id_++;
  ImageRecord record;
  record.name = name;
  record.virtual_size = it->second.virtual_size;
  record.parent = parent;
  record.boot_info = it->second.boot_info;
  images_.emplace(id, std::move(record));
  return id;
}

std::optional<ImageId> ImageStore::Snapshot(ImageId image, const std::string& name) {
  auto cloned = Clone(image, name);
  if (cloned) {
    images_.at(*cloned).read_only = true;
  }
  return cloned;
}

bool ImageStore::Delete(ImageId image) {
  // Refuse to delete an image that still has children (mirrors RBD's
  // "cannot delete image with clones").
  for (const auto& [id, record] : images_) {
    if (record.parent == image) {
      return false;
    }
  }
  return images_.erase(image) > 0;
}

uint64_t ImageStore::VirtualSize(ImageId image) const {
  const auto it = images_.find(image);
  return it == images_.end() ? 0 : it->second.virtual_size;
}

std::optional<BootInfo> ImageStore::ExtractBootInfo(ImageId image) const {
  const auto it = images_.find(image);
  if (it == images_.end()) {
    return std::nullopt;
  }
  return it->second.boot_info;
}

std::optional<ImageId> ImageStore::FindByName(const std::string& name) const {
  for (const auto& [id, record] : images_) {
    if (record.name == name) {
      return id;
    }
  }
  return std::nullopt;
}

std::optional<ImageId> ImageStore::ResolveObject(ImageId image,
                                                 uint64_t object_index) const {
  std::optional<ImageId> current = image;
  while (current) {
    const auto it = images_.find(*current);
    if (it == images_.end()) {
      return std::nullopt;
    }
    if (it->second.owned_objects.contains(object_index)) {
      return current;
    }
    current = it->second.parent;
  }
  return std::nullopt;
}

void ImageStore::PrepopulateObjects(ImageId image, uint64_t first_object,
                                    uint64_t count) {
  auto it = images_.find(image);
  assert(it != images_.end());
  for (uint64_t i = 0; i < count; ++i) {
    it->second.owned_objects.insert(first_object + i);
  }
}

size_t ImageStore::OwnedObjectCount(ImageId image) const {
  const auto it = images_.find(image);
  return it == images_.end() ? 0 : it->second.owned_objects.size();
}

bool ImageStore::RangeOwnedLocally(ImageId image, uint64_t offset) const {
  const auto it = images_.find(image);
  if (it == images_.end()) {
    return false;
  }
  return it->second.owned_objects.contains(offset / objects_.config().object_size);
}

sim::Task ImageStore::ReadRange(ImageId image, uint64_t offset, uint64_t bytes) {
  [[maybe_unused]] const auto it = images_.find(image);
  assert(it != images_.end());
  assert(offset + bytes <= it->second.virtual_size);
  const uint64_t object_size = objects_.config().object_size;

  // RADOS issues per-object reads in parallel (they usually land on
  // different OSDs), so a multi-object range costs max, not sum.
  sim::TaskGroup group(sim_);
  uint64_t remaining = bytes;
  uint64_t position = offset;
  while (remaining > 0) {
    const uint64_t object_index = position / object_size;
    const uint64_t within = position % object_size;
    const uint64_t chunk = std::min(remaining, object_size - within);
    const auto owner = ResolveObject(image, object_index);
    if (owner) {
      group.Spawn(objects_.ReadObject(ObjectId{*owner, object_index}, chunk));
    }
    // Unwritten ranges are zero-fill: no OSD traffic.
    position += chunk;
    remaining -= chunk;
  }
  co_await group.WaitAll();
}

sim::Task ImageStore::WriteRange(ImageId image, uint64_t offset, uint64_t bytes) {
  auto it = images_.find(image);
  assert(it != images_.end());
  assert(!it->second.read_only && "snapshots are read-only");
  assert(offset + bytes <= it->second.virtual_size);
  const uint64_t object_size = objects_.config().object_size;

  uint64_t remaining = bytes;
  uint64_t position = offset;
  while (remaining > 0) {
    const uint64_t object_index = position / object_size;
    const uint64_t within = position % object_size;
    const uint64_t chunk = std::min(remaining, object_size - within);
    const bool owned = it->second.owned_objects.contains(object_index);
    if (!owned) {
      const auto ancestor_owner = ResolveObject(image, object_index);
      if (ancestor_owner && chunk < object_size) {
        // Copy-up: partial write to a shared object pulls the rest from
        // the ancestor first.
        co_await objects_.ReadObject(ObjectId{*ancestor_owner, object_index},
                                     object_size - chunk);
      }
      it->second.owned_objects.insert(object_index);
    }
    co_await objects_.WriteObject(ObjectId{image, object_index}, chunk);
    position += chunk;
    remaining -= chunk;
  }
}

}  // namespace bolted::storage
