// LUKS-style encrypted block device (dm-crypt with aes-xts-plain64).
//
// A LuksVolume owns an on-device header with key slots: the volume master
// key is sealed under keys derived from passphrases (or, in Bolted, under
// the key Keylime delivers after successful attestation).  Unlocking
// yields a CryptDevice that applies real AES-256-XTS per sector and
// charges the host's crypto throughput model — the source of the Fig. 3a
// overhead curves.

#ifndef SRC_STORAGE_CRYPT_DEVICE_H_
#define SRC_STORAGE_CRYPT_DEVICE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/crypto/aes_xts.h"
#include "src/crypto/bytes.h"
#include "src/crypto/drbg.h"
#include "src/storage/block_device.h"

namespace bolted::storage {

// Throughput ceilings for the XTS data path, calibrated to the paper's
// Fig. 3a (reads ~1 GB/s, writes ~0.8 GB/s on their Xeons).
struct CryptCostModel {
  double decrypt_bytes_per_second = 1.0e9;
  double encrypt_bytes_per_second = 0.8e9;
};

class CryptDevice : public BlockDevice {
 public:
  // master_key must be 64 bytes (XTS double key).  The CryptDevice does
  // not own `backing`.
  CryptDevice(sim::Simulation& sim, BlockDevice* backing,
              const crypto::Bytes& master_key, const CryptCostModel& cost,
              std::string name);

  uint64_t num_sectors() const override { return backing_->num_sectors(); }
  sim::Task ReadSectors(uint64_t first_sector, uint64_t count,
                        crypto::Bytes* out) override;
  sim::Task WriteSectors(uint64_t first_sector, const crypto::Bytes& data) override;
  sim::Task AccountRead(uint64_t bytes) override;
  sim::Task AccountWrite(uint64_t bytes) override;
  sim::Task AccountRandomRead(uint64_t bytes, uint64_t chunk_bytes) override;

  // The XTS data-path ceilings, exposed so stacked layers (chunk fetch,
  // integrity verification) can charge the same crypto cores.
  net::SharedResource& decrypt_resource() { return decrypt_resource_; }
  net::SharedResource& encrypt_resource() { return encrypt_resource_; }

 private:
  sim::Simulation& sim_;
  BlockDevice* backing_;
  crypto::AesXts xts_;
  net::SharedResource decrypt_resource_;
  net::SharedResource encrypt_resource_;
};

// LUKS header and key-slot management.
class LuksVolume {
 public:
  // Formats: generates a random master key and seals it into slot 0 under
  // `secret`.  Any previous header is replaced.
  static LuksVolume Format(crypto::ByteView secret, crypto::Drbg& drbg);

  // Adds another unlock secret (requires knowing an existing one).
  bool AddKeySlot(crypto::ByteView existing_secret, crypto::ByteView new_secret,
                  crypto::Drbg& drbg);

  // Recovers the master key, or nullopt if no slot matches.
  std::optional<crypto::Bytes> Unlock(crypto::ByteView secret) const;

  // Opens the volume: unlock + construct the dm-crypt mapping.
  std::optional<std::unique_ptr<CryptDevice>> Open(sim::Simulation& sim,
                                                   BlockDevice* backing,
                                                   crypto::ByteView secret,
                                                   const CryptCostModel& cost,
                                                   std::string name) const;

  size_t key_slot_count() const { return key_slots_.size(); }

 private:
  struct KeySlot {
    crypto::Bytes salt;
    crypto::Bytes sealed_master_key;  // nonce || GCM(ciphertext || tag)
  };

  static KeySlot SealSlot(crypto::ByteView secret, const crypto::Bytes& master_key,
                          crypto::Drbg& drbg);
  static std::optional<crypto::Bytes> OpenSlot(const KeySlot& slot,
                                               crypto::ByteView secret);

  std::vector<KeySlot> key_slots_;
};

}  // namespace bolted::storage

#endif  // SRC_STORAGE_CRYPT_DEVICE_H_
