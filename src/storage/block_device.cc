#include "src/storage/block_device.h"

#include <cassert>
#include <utility>

namespace bolted::storage {
namespace {

void CopyOutSectors(const std::map<uint64_t, crypto::Bytes>& sectors,
                    uint64_t first_sector, uint64_t count, crypto::Bytes* out) {
  out->assign(count * kSectorSize, 0);
  for (uint64_t i = 0; i < count; ++i) {
    const auto it = sectors.find(first_sector + i);
    if (it != sectors.end()) {
      std::copy(it->second.begin(), it->second.end(),
                out->begin() + static_cast<ptrdiff_t>(i * kSectorSize));
    }
  }
}

void CopyInSectors(std::map<uint64_t, crypto::Bytes>* sectors, uint64_t first_sector,
                   const crypto::Bytes& data) {
  assert(data.size() % kSectorSize == 0);
  const uint64_t count = data.size() / kSectorSize;
  for (uint64_t i = 0; i < count; ++i) {
    crypto::Bytes sector(data.begin() + static_cast<ptrdiff_t>(i * kSectorSize),
                         data.begin() + static_cast<ptrdiff_t>((i + 1) * kSectorSize));
    (*sectors)[first_sector + i] = std::move(sector);
  }
}

}  // namespace

RamDisk::RamDisk(sim::Simulation& sim, uint64_t num_sectors,
                 double read_bytes_per_second, double write_bytes_per_second,
                 std::string name)
    : sim_(sim),
      num_sectors_(num_sectors),
      read_resource_(sim, read_bytes_per_second, name + ".read"),
      write_resource_(sim, write_bytes_per_second, name + ".write") {}

sim::Task RamDisk::ReadSectors(uint64_t first_sector, uint64_t count,
                               crypto::Bytes* out) {
  assert(first_sector + count <= num_sectors_);
  co_await read_resource_.Consume(static_cast<double>(count * kSectorSize));
  CopyOutSectors(sectors_, first_sector, count, out);
}

sim::Task RamDisk::WriteSectors(uint64_t first_sector, const crypto::Bytes& data) {
  assert(first_sector + data.size() / kSectorSize <= num_sectors_);
  co_await write_resource_.Consume(static_cast<double>(data.size()));
  CopyInSectors(&sectors_, first_sector, data);
}

sim::Task RamDisk::AccountRead(uint64_t bytes) {
  co_await read_resource_.Consume(static_cast<double>(bytes));
}

sim::Task RamDisk::AccountWrite(uint64_t bytes) {
  co_await write_resource_.Consume(static_cast<double>(bytes));
}

DiskModel::DiskModel(sim::Simulation& sim, uint64_t num_sectors,
                     double sequential_bytes_per_second, sim::Duration seek_latency,
                     std::string name)
    : sim_(sim),
      num_sectors_(num_sectors),
      bandwidth_(sim, sequential_bytes_per_second, std::move(name)),
      seek_latency_(seek_latency) {}

sim::Task DiskModel::Access(uint64_t first_sector, uint64_t bytes) {
  if (first_sector != last_sector_) {
    co_await sim::Delay(sim_, seek_latency_);
  }
  co_await bandwidth_.Consume(static_cast<double>(bytes));
  last_sector_ = first_sector + (bytes + kSectorSize - 1) / kSectorSize;
}

sim::Task DiskModel::ReadSectors(uint64_t first_sector, uint64_t count,
                                 crypto::Bytes* out) {
  assert(first_sector + count <= num_sectors_);
  co_await Access(first_sector, count * kSectorSize);
  CopyOutSectors(sectors_, first_sector, count, out);
}

sim::Task DiskModel::WriteSectors(uint64_t first_sector, const crypto::Bytes& data) {
  co_await Access(first_sector, data.size());
  CopyInSectors(&sectors_, first_sector, data);
}

sim::Task DiskModel::AccountRead(uint64_t bytes) {
  co_await Access(last_sector_, bytes);
}

sim::Task DiskModel::AccountRandomRead(uint64_t bytes, uint64_t chunk_bytes) {
  const uint64_t chunks = (bytes + chunk_bytes - 1) / chunk_bytes;
  // Jump by a large odd stride so every access seeks.
  uint64_t sector = 1;
  for (uint64_t i = 0; i < chunks; ++i) {
    sector = (sector + 999983) % num_sectors_;
    co_await Access(sector, std::min(chunk_bytes, bytes - i * chunk_bytes));
  }
}

sim::Task DiskModel::AccountWrite(uint64_t bytes) {
  co_await Access(last_sector_, bytes);
}

sim::Task BlockDevice::AccountRandomRead(uint64_t bytes, uint64_t chunk_bytes) {
  (void)chunk_bytes;
  co_await AccountRead(bytes);
}

}  // namespace bolted::storage
