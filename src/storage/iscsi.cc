#include "src/storage/iscsi.h"

#include <cassert>

namespace bolted::storage {
namespace {

struct IoRequest {
  ImageId image = 0;
  uint64_t offset = 0;
  uint64_t bytes = 0;
};

crypto::Bytes EncodeRequest(const IoRequest& request) {
  crypto::Bytes out;
  out.reserve(24);
  crypto::AppendU64(out, request.image);
  crypto::AppendU64(out, request.offset);
  crypto::AppendU64(out, request.bytes);
  return out;
}

std::optional<IoRequest> DecodeRequest(crypto::ByteView payload) {
  if (payload.size() != 24) {
    return std::nullopt;
  }
  auto read_u64 = [&payload]() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v = (v << 8) | payload[static_cast<size_t>(i)];
    }
    payload = payload.subspan(8);
    return v;
  };
  IoRequest request;
  request.image = read_u64();
  request.offset = read_u64();
  request.bytes = read_u64();
  return request;
}

}  // namespace

IscsiTarget::IscsiTarget(sim::Simulation& sim, net::RpcNode& node, ImageStore& images)
    : sim_(sim), node_(node), images_(images) {}

void IscsiTarget::Register() {
  node_.RegisterHandler("iscsi.read",
                        [this](const net::Message& request, net::Message* response) {
                          return HandleRead(request, response);
                        });
  node_.RegisterHandler("iscsi.write",
                        [this](const net::Message& request, net::Message* response) {
                          return HandleWrite(request, response);
                        });
}

void IscsiTarget::SetProcessingModel(net::SharedResource* cpu,
                                     double cycles_per_request,
                                     double cycles_per_byte) {
  processing_cpu_ = cpu;
  cycles_per_request_ = cycles_per_request;
  cycles_per_byte_ = cycles_per_byte;
}

sim::Task IscsiTarget::ChargeProcessing(uint64_t bytes) {
  if (processing_cpu_ != nullptr) {
    co_await processing_cpu_->Consume(cycles_per_request_ +
                                      cycles_per_byte_ * static_cast<double>(bytes));
  }
}

sim::Task IscsiTarget::HandleRead(const net::Message& request,
                                  net::Message* response) {
  const auto io = DecodeRequest(request.payload);
  if (!io || !images_.Exists(io->image)) {
    response->kind = "iscsi.error";
    co_return;
  }
  co_await ChargeProcessing(io->bytes);
  co_await images_.ReadRange(io->image, io->offset, io->bytes);
  ++reads_served_;
  response->kind = "iscsi.data";
  response->wire_bytes = io->bytes;  // the data travels back to the client
}

sim::Task IscsiTarget::HandleWrite(const net::Message& request,
                                   net::Message* response) {
  const auto io = DecodeRequest(request.payload);
  if (!io || !images_.Exists(io->image)) {
    response->kind = "iscsi.error";
    co_return;
  }
  co_await ChargeProcessing(io->bytes);
  co_await images_.WriteRange(io->image, io->offset, io->bytes);
  ++writes_served_;
  response->kind = "iscsi.ack";
}

IscsiInitiator::IscsiInitiator(sim::Simulation& sim, net::RpcNode& node,
                               net::Address target, ImageId image,
                               uint64_t virtual_size, const Options& options)
    : sim_(sim),
      node_(node),
      target_(target),
      image_(image),
      virtual_size_(virtual_size),
      options_(options) {}

sim::Task IscsiInitiator::WithIpsec(uint64_t bytes, sim::Task transfer) {
  if (!options_.ipsec.enabled) {
    co_await transfer;
    co_return;
  }
  const double payload = static_cast<double>(bytes);
  const double cycles = net::IpsecCryptoCycles(
      options_.ipsec_model, options_.ipsec.hardware_aes, options_.ipsec.mtu, payload);
  // Server-side ESP streams concurrently with the transfer...
  sim::TaskGroup group(sim_);
  group.Spawn(std::move(transfer));
  if (options_.remote_crypto_cpu != nullptr) {
    group.Spawn(options_.remote_crypto_cpu->Consume(cycles));
  }
  co_await group.WaitAll();
  // ...but the client cannot hand data to the filesystem until it has
  // decrypted the response, so the local ESP work is serial with the
  // request (the paper's "slower disk accessed over IPsec").  Pipelined
  // sequential readers overlap this across in-flight requests; synchronous
  // random readers (OS boot, Filebench-in-a-VM) eat it per request,
  // together with a fixed kernel-xfrm per-operation overhead.
  if (options_.local_crypto_cpu != nullptr) {
    co_await options_.local_crypto_cpu->Consume(cycles);
  }
  co_await sim::Delay(sim_, sim::Duration::SecondsF(1.5e-3));
}

sim::Task IscsiInitiator::Fetch(uint64_t offset, uint64_t bytes, bool write) {
  ++requests_issued_;
  net::Message request;
  request.kind = write ? "iscsi.write" : "iscsi.read";
  request.payload = EncodeRequest(IoRequest{image_, offset, bytes});
  if (write) {
    request.wire_bytes = bytes;  // the data travels with the request
  }
  net::Message response;
  bool ok = false;
  co_await WithIpsec(bytes,
                     node_.Call(target_, std::move(request), &response, &ok));
  last_op_failed_ = !ok || response.kind == "iscsi.error";
}

sim::Task IscsiInitiator::ReadAt(uint64_t offset, uint64_t bytes) {
  const uint64_t end = offset + bytes;
  assert(end <= virtual_size_);
  if (offset >= prefetch_start_ && end <= prefetched_until_) {
    co_return;  // satisfied by the read-ahead window
  }
  if (offset < prefetch_start_ || offset > prefetched_until_) {
    // Random jump: restart the sequential window here.
    prefetch_start_ = offset;
    prefetched_until_ = offset;
  }
  // Kernel read-ahead keeps a small pipeline of outstanding requests so
  // the target's storage reads overlap response transfers.
  constexpr int kPipelineDepth = 2;
  sim::Semaphore window(sim_, kPipelineDepth);
  sim::TaskGroup group(sim_);
  auto fetch_one = [this, &window](uint64_t at, uint64_t len) -> sim::Task {
    co_await window.Acquire();
    sim::SemaphoreGuard guard(window);
    co_await Fetch(at, len, /*write=*/false);
  };
  while (prefetched_until_ < end) {
    const uint64_t chunk =
        std::min(options_.read_ahead_bytes, virtual_size_ - prefetched_until_);
    group.Spawn(fetch_one(prefetched_until_, chunk));
    prefetched_until_ += chunk;
  }
  co_await group.WaitAll();
}

sim::Task IscsiInitiator::ReadSectors(uint64_t first_sector, uint64_t count,
                                      crypto::Bytes* out) {
  const uint64_t offset = first_sector * kSectorSize;
  const uint64_t bytes = count * kSectorSize;
  co_await ReadAt(offset, bytes);
  // Image content is timing-modelled; remote reads return zero-fill.
  out->assign(bytes, 0);
}

sim::Task IscsiInitiator::WriteSectors(uint64_t first_sector,
                                       const crypto::Bytes& data) {
  co_await Fetch(first_sector * kSectorSize, data.size(), /*write=*/true);
}

sim::Task IscsiInitiator::AccountRead(uint64_t bytes) {
  // Sequential read continuing from the window's high-water mark.
  const uint64_t offset = prefetched_until_;
  assert(offset + bytes <= virtual_size_);
  co_await ReadAt(offset, bytes);
}

sim::Task IscsiInitiator::AccountRandomRead(uint64_t bytes, uint64_t chunk_bytes) {
  // Random access defeats read-ahead: each chunk is its own request.  A
  // large odd stride makes every access miss the window.
  const uint64_t chunks = (bytes + chunk_bytes - 1) / chunk_bytes;
  uint64_t offset = 0;
  const uint64_t stride = 37 * chunk_bytes + storage::kSectorSize;
  for (uint64_t i = 0; i < chunks; ++i) {
    offset = (offset + stride) % (virtual_size_ - chunk_bytes);
    co_await Fetch(offset, std::min(chunk_bytes, bytes - i * chunk_bytes),
                   /*write=*/false);
  }
  prefetch_start_ = 0;
  prefetched_until_ = 0;
}

sim::Task IscsiInitiator::AccountWrite(uint64_t bytes) {
  uint64_t remaining = bytes;
  uint64_t position = 0;
  while (remaining > 0) {
    const uint64_t chunk = std::min(remaining, options_.read_ahead_bytes);
    co_await Fetch(position % virtual_size_, chunk, /*write=*/true);
    position += chunk;
    remaining -= chunk;
  }
}

}  // namespace bolted::storage
