#include "src/storage/chunks.h"

#include "src/crypto/bytes.h"
#include "src/net/wire.h"

namespace bolted::storage {

crypto::Digest ChunkContentDigest(std::string_view image_name, uint64_t index,
                                  uint64_t chunk_bytes) {
  crypto::Bytes material = crypto::ToBytes(image_name);
  material.push_back(':');
  crypto::AppendU64(material, index);
  crypto::AppendU64(material, chunk_bytes);
  return crypto::Sha256::Hash(crypto::ByteView(material.data(), material.size()));
}

ObjectId ChunkObjectId(const crypto::Digest& digest) {
  ObjectId id;
  for (int i = 0; i < 8; ++i) {
    id.hi = (id.hi << 8) | digest[static_cast<size_t>(i)];
    id.lo = (id.lo << 8) | digest[static_cast<size_t>(i + 8)];
  }
  return id;
}

ChunkManifest ChunkManifest::ForImage(const std::string& image_name,
                                      uint64_t image_bytes, uint64_t chunk_bytes) {
  ChunkManifest manifest;
  manifest.image_name = image_name;
  manifest.chunk_bytes = chunk_bytes;
  manifest.image_bytes = image_bytes;
  const uint64_t count = (image_bytes + chunk_bytes - 1) / chunk_bytes;
  manifest.chunks.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    manifest.chunks.push_back(ChunkContentDigest(image_name, i, chunk_bytes));
  }
  return manifest;
}

uint64_t ChunkManifest::ChunkBytes(uint64_t index) const {
  if (index + 1 < chunks.size() || image_bytes % chunk_bytes == 0) {
    return chunk_bytes;
  }
  return image_bytes % chunk_bytes;
}

crypto::Bytes ChunkManifest::Encode() const {
  net::WireWriter writer;
  writer.Str(image_name).U64(chunk_bytes).U64(image_bytes);
  writer.U32(static_cast<uint32_t>(chunks.size()));
  for (const crypto::Digest& digest : chunks) {
    writer.Digest(digest);
  }
  return writer.Take();
}

std::optional<ChunkManifest> ChunkManifest::Decode(crypto::ByteView data) {
  net::WireReader reader(data);
  ChunkManifest manifest;
  manifest.image_name = reader.Str();
  manifest.chunk_bytes = reader.U64();
  manifest.image_bytes = reader.U64();
  const uint32_t count = reader.U32();
  manifest.chunks.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    manifest.chunks.push_back(reader.Digest());
  }
  if (!reader.AtEnd() || manifest.chunk_bytes == 0) {
    return std::nullopt;
  }
  return manifest;
}

}  // namespace bolted::storage
