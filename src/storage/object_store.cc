#include "src/storage/object_store.h"

#include <cassert>
#include <utility>

namespace bolted::storage {

ObjectStore::ObjectStore(sim::Simulation& sim, const ObjectStoreConfig& config)
    : sim_(sim), config_(config) {
  assert(config.replication >= 1 && config.replication <= config.num_osd_hosts);
  const double host_bandwidth = config.spindle_bandwidth_bytes_per_second *
                                static_cast<double>(config.spindles_per_host);
  for (int i = 0; i < config.num_osd_hosts; ++i) {
    osds_.push_back(std::make_unique<net::SharedResource>(
        sim, host_bandwidth, "osd-" + std::to_string(i)));
  }
}

int ObjectStore::PrimaryOsdFor(ObjectId id) const {
  // Stand-in for CRUSH: deterministic mix of the object id.
  uint64_t h = id.hi * 0x9e3779b97f4a7c15u + id.lo;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdu;
  h ^= h >> 33;
  return static_cast<int>(h % static_cast<uint64_t>(config_.num_osd_hosts));
}

double ObjectStore::aggregate_bandwidth() const {
  return config_.spindle_bandwidth_bytes_per_second *
         static_cast<double>(config_.spindles_per_host) *
         static_cast<double>(config_.num_osd_hosts);
}

sim::Task ObjectStore::ReadObject(ObjectId id, uint64_t bytes) {
  assert(bytes <= config_.object_size);
  co_await sim::Delay(sim_, config_.op_latency);
  co_await osds_[static_cast<size_t>(PrimaryOsdFor(id))]->Consume(
      static_cast<double>(bytes + config_.per_op_overhead_bytes));
}

sim::Task ObjectStore::WriteObject(ObjectId id, uint64_t bytes) {
  assert(bytes <= config_.object_size);
  co_await sim::Delay(sim_, config_.op_latency);
  // Replicated write: the primary and replicas all absorb the bytes.
  sim::TaskGroup group(sim_);
  const int primary = PrimaryOsdFor(id);
  for (int r = 0; r < config_.replication; ++r) {
    const int host = (primary + r) % config_.num_osd_hosts;
    group.Spawn(osds_[static_cast<size_t>(host)]->Consume(
        static_cast<double>(bytes + config_.per_op_overhead_bytes)));
  }
  co_await group.WaitAll();
}

sim::Task ObjectStore::Put(ObjectId id, crypto::Bytes data) {
  assert(data.size() <= config_.object_size);
  co_await WriteObject(id, data.size());
  contents_[id] = std::move(data);
}

sim::Task ObjectStore::Get(ObjectId id, crypto::Bytes* out, bool* found) {
  const auto it = contents_.find(id);
  if (it == contents_.end()) {
    *found = false;
    co_return;
  }
  co_await ReadObject(id, it->second.size());
  *out = it->second;
  *found = true;
}

}  // namespace bolted::storage
