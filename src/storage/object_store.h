// Ceph-like replicated object store.
//
// The paper's BMI backend is a 3-host Ceph cluster with 27 spindles in
// total, storing 4 MB objects with 3-way replication.  We model each OSD
// host as a fluid bandwidth aggregate (spindles x per-spindle bandwidth)
// plus a per-operation latency; objects are placed by hash (a stand-in
// for CRUSH) and writes fan out to `replication` OSDs.  The aggregate
// spindle bandwidth is what saturates in the 16-server concurrent-boot
// experiment (Fig. 5, unattested curve).

#ifndef SRC_STORAGE_OBJECT_STORE_H_
#define SRC_STORAGE_OBJECT_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/crypto/bytes.h"
#include "src/net/resource.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"

namespace bolted::storage {

struct ObjectId {
  uint64_t hi = 0;  // e.g. image id
  uint64_t lo = 0;  // e.g. object index within the image
  auto operator<=>(const ObjectId&) const = default;
};

struct ObjectStoreConfig {
  int num_osd_hosts = 3;
  int spindles_per_host = 9;  // 27 total, as in the paper
  double spindle_bandwidth_bytes_per_second = 110e6;
  sim::Duration op_latency = sim::Duration::Milliseconds(2);
  uint64_t object_size = 4 * 1024 * 1024;  // Ceph default
  int replication = 3;
  // Rotational overhead charged per object operation, expressed as
  // equivalent sequential bytes (seek+rotate time x spindle bandwidth).
  // This is what makes many small concurrent reads collapse the
  // aggregate — the paper's "small scale Ceph deployment" effect (Fig 5).
  uint64_t per_op_overhead_bytes = 500 * 1024;
};

class ObjectStore {
 public:
  ObjectStore(sim::Simulation& sim, const ObjectStoreConfig& config);

  const ObjectStoreConfig& config() const { return config_; }

  // Timing-only object I/O (bytes <= object_size).
  sim::Task ReadObject(ObjectId id, uint64_t bytes);
  sim::Task WriteObject(ObjectId id, uint64_t bytes);

  // Content-carrying I/O for small metadata objects.
  sim::Task Put(ObjectId id, crypto::Bytes data);
  // Sets *found=false when the object does not exist.
  sim::Task Get(ObjectId id, crypto::Bytes* out, bool* found);
  bool Exists(ObjectId id) const { return contents_.contains(id); }
  void Delete(ObjectId id) { contents_.erase(id); }

  int PrimaryOsdFor(ObjectId id) const;
  net::SharedResource& osd_resource(int host) { return *osds_[static_cast<size_t>(host)]; }
  double aggregate_bandwidth() const;

 private:
  sim::Simulation& sim_;
  ObjectStoreConfig config_;
  std::vector<std::unique_ptr<net::SharedResource>> osds_;
  std::map<ObjectId, crypto::Bytes> contents_;
};

}  // namespace bolted::storage

#endif  // SRC_STORAGE_OBJECT_STORE_H_
