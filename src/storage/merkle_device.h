// Merkle-tree integrity layer over any BlockDevice (DESIGN.md §14).
//
// The paper's storage stack encrypts tenant disks (LUKS over iSCSI) but
// never authenticates them: a malicious provider can flip bits in, or roll
// back, the network-mounted volume and the tenant decrypts garbage —
// silently.  MerkleBlockDevice closes that gap the way openenclave's
// merkleblkdev/cacheblkdev pair does: every data sector is leafed into a
// SHA-256 hash tree whose interior nodes live on the same (untrusted)
// backing device, while the 32-byte root stays in tenant memory.  Any
// provider-side modification is then detected at read time as a hard
// integrity fault instead of plausible-looking plaintext.
//
// Layout on the backing device (sector numbers):
//   [0, d)                      data sectors (the virtual disk)
//   [d, d+h)                    hash nodes, level 0 (leaves) upward; each
//                               4096-byte node holds 128 child digests
//   root sector                 the stored copy of the current tree root
//   journal header              commit record for crash-atomic flushes
//   journal index + slots       redo journal (see Flush)
//
// Caching and write-back: data and hash sectors share one LRU block
// cache.  Writes land in the cache dirty and are pinned (never evicted)
// until Flush, which recomputes the dirty leaf digests, propagates the
// dirty chain to a new root, and applies the whole dirty set through a
// redo journal — content slots first, then a checksummed commit header,
// then the in-place writes, then the header clear.  A crash at any sector
// boundary therefore leaves the device wholly old (header not committed)
// or wholly new (committed journal replayed on Open), never a mix.
//
// Failure semantics (all sticky; a faulted device fails closed — reads
// return zeros, writes are refused):
//   kDataMismatch      a data sector's content does not match its leaf
//   kHashNodeMismatch  an interior node does not match its parent entry
//   kRootTampered      the stored root matches neither the tenant's root
//                      nor the tree actually on disk
//   kRollback          the on-disk state is internally consistent but
//                      carries a root the tenant has already moved past
//
// The Account* byte paths work without Format/Open: they overlay the
// hash-verification throughput model on the backing device's timing, which
// is how the enclave boot path charges integrity costs for multi-gigabyte
// images without materialising a tree.

#ifndef SRC_STORAGE_MERKLE_DEVICE_H_
#define SRC_STORAGE_MERKLE_DEVICE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/storage/block_device.h"

namespace bolted::storage {

// SHA-256 verification throughput for the integrity data path.  SHA-NI
// hashes a sector far faster than AES-XTS decrypts it, so the verify leg
// overlaps the crypt leg and mostly hides.
struct MerkleCostModel {
  double hash_bytes_per_second = 3.0e9;
};

enum class IntegrityFault {
  kNone = 0,
  kDataMismatch,
  kHashNodeMismatch,
  kRootTampered,
  kRollback,
};

std::string_view IntegrityFaultName(IntegrityFault fault);

// Tree and journal layout derived from the data-sector count.  The
// journal is sized so the worst-case dirty set (every data and hash
// sector plus the root copy) commits in a single transaction — flush
// atomicity never depends on the write pattern.
struct MerkleGeometry {
  static constexpr uint64_t kArity = kSectorSize / crypto::Sha256::kDigestSize;
  static constexpr int kArityShift = 7;  // 128 == 1 << 7

  uint64_t data_sectors = 0;
  std::vector<uint64_t> level_nodes;    // nodes per level, leaves first
  std::vector<uint64_t> level_offsets;  // backing sector of each level
  uint64_t root_sector = 0;
  uint64_t journal_header_sector = 0;
  uint64_t journal_index_sectors = 0;
  uint64_t journal_slots = 0;
  uint64_t total_sectors = 0;  // full backing footprint

  static MerkleGeometry For(uint64_t data_sectors);

  int levels() const { return static_cast<int>(level_nodes.size()); }
  uint64_t hash_sectors() const;
  uint64_t NodeSector(int level, uint64_t index) const {
    return level_offsets[static_cast<size_t>(level)] + index;
  }
  uint64_t JournalIndexSector(uint64_t i) const {
    return journal_header_sector + 1 + i;
  }
  uint64_t JournalSlotSector(uint64_t i) const {
    return journal_header_sector + 1 + journal_index_sectors + i;
  }
};

class MerkleBlockDevice : public BlockDevice {
 public:
  // `backing` must span at least MerkleGeometry::For(data_sectors)
  // .total_sectors.  `cache_sectors` bounds the clean population of the
  // block cache; dirty sectors are pinned beyond it until Flush.
  MerkleBlockDevice(sim::Simulation& sim, BlockDevice* backing,
                    uint64_t data_sectors, size_t cache_sectors,
                    const MerkleCostModel& cost, std::string name);

  // Writes a fresh all-zeros device: zeroed data sectors, the matching
  // hash tree, the stored root, and an empty journal.  Returns the root
  // the tenant must hold to Open the device.
  static sim::Task Format(sim::Simulation& sim, BlockDevice& backing,
                          uint64_t data_sectors, crypto::Digest* root_out);

  // Replays any committed journal, then checks the stored root against
  // the tenant-held one.  On mismatch sets kRollback (disk is internally
  // consistent but old) or kRootTampered and fails closed.
  sim::Task Open(const crypto::Digest& expected_root, bool* ok);

  // Commits every dirty sector crash-atomically and advances the root.
  sim::Task Flush();

  uint64_t num_sectors() const override { return geometry_.data_sectors; }
  sim::Task ReadSectors(uint64_t first_sector, uint64_t count,
                        crypto::Bytes* out) override;
  sim::Task WriteSectors(uint64_t first_sector, const crypto::Bytes& data) override;
  sim::Task AccountRead(uint64_t bytes) override;
  sim::Task AccountWrite(uint64_t bytes) override;
  sim::Task AccountRandomRead(uint64_t bytes, uint64_t chunk_bytes) override;

  IntegrityFault fault() const { return fault_; }
  const crypto::Digest& root() const { return root_; }
  const MerkleGeometry& geometry() const { return geometry_; }

  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }
  uint64_t cache_evictions() const { return cache_evictions_; }

 private:
  struct CacheEntry {
    crypto::Bytes data;
    bool dirty = false;
    uint64_t lru = 0;
  };

  // Verified top-down walk: loads the hash node at (level, index) into
  // *out, checking each uncached node on the path against its parent (the
  // top node against the in-memory root).  *ok=false flips the sticky
  // fault.
  sim::Task LoadHashNode(int level, uint64_t index, crypto::Bytes* out, bool* ok);
  // Loads and verifies one data sector.
  sim::Task LoadDataSector(uint64_t sector, crypto::Bytes* out, bool* ok);
  sim::Task ReadBackingSector(uint64_t sector, crypto::Bytes* out);

  void InsertCache(uint64_t sector, crypto::Bytes data, bool dirty);
  void EvictCleanOverflow();
  // Maps a cache sector number back to its hash-tree level, or -1 for a
  // data sector.
  int LevelOfSector(uint64_t sector) const;

  sim::Simulation& sim_;
  BlockDevice* backing_;
  MerkleGeometry geometry_;
  size_t cache_sectors_;
  net::SharedResource hash_resource_;
  std::string name_;

  crypto::Digest root_{};
  bool opened_ = false;
  IntegrityFault fault_ = IntegrityFault::kNone;

  std::map<uint64_t, CacheEntry> cache_;
  uint64_t lru_tick_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t cache_evictions_ = 0;
};

}  // namespace bolted::storage

#endif  // SRC_STORAGE_MERKLE_DEVICE_H_
