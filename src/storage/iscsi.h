// iSCSI-style network block access (the TGT role in the paper's stack).
//
// The target exposes ImageStore images over the simulated network via RPC;
// the initiator is a BlockDevice whose reads go over the wire, with a
// configurable sequential read-ahead window.  The paper found raising the
// Linux read-ahead from the 128 KB default to 8 MB "critical for
// performance" because Ceph serves 4 MB objects — here the same effect
// emerges from the per-request latency amortisation.
//
// When the tenant does not trust the provider, initiator-target traffic
// runs through the IPsec cost model (Fig. 3c's IPsec curves).

#ifndef SRC_STORAGE_ISCSI_H_
#define SRC_STORAGE_ISCSI_H_

#include <cstdint>
#include <optional>

#include "src/net/ipsec.h"
#include "src/net/rpc.h"
#include "src/storage/block_device.h"
#include "src/storage/image.h"

namespace bolted::storage {

inline constexpr uint64_t kDefaultReadAhead = 128 * 1024;    // Linux default
inline constexpr uint64_t kTunedReadAhead = 8 * 1024 * 1024; // paper's setting

// Serves image block I/O requests.  Registered on the iSCSI server's
// RpcNode; isolation (who can reach the target) is the provisioning
// VLAN's job, as in the paper.
class IscsiTarget {
 public:
  IscsiTarget(sim::Simulation& sim, net::RpcNode& node, ImageStore& images);

  // Registers the protocol handlers; the RpcNode must be Start()ed by its
  // owner.
  void Register();

  // Target-host processing model (the TGT VM in the paper): every request
  // costs CPU, which saturates under many concurrent initiators (Fig 5).
  void SetProcessingModel(net::SharedResource* cpu, double cycles_per_request,
                          double cycles_per_byte);

  uint64_t reads_served() const { return reads_served_; }
  uint64_t writes_served() const { return writes_served_; }

 private:
  sim::Task HandleRead(const net::Message& request, net::Message* response);
  sim::Task HandleWrite(const net::Message& request, net::Message* response);
  sim::Task ChargeProcessing(uint64_t bytes);

  sim::Simulation& sim_;
  net::RpcNode& node_;
  ImageStore& images_;
  net::SharedResource* processing_cpu_ = nullptr;
  double cycles_per_request_ = 0;
  double cycles_per_byte_ = 0;
  uint64_t reads_served_ = 0;
  uint64_t writes_served_ = 0;
};

// Client-side remote block device.
class IscsiInitiator : public BlockDevice {
 public:
  struct Options {
    uint64_t read_ahead_bytes = kDefaultReadAhead;
    net::IpsecParams ipsec;
    net::IpsecCostModel ipsec_model;
    // Crypto cores charged when ipsec.enabled (initiator and target
    // hosts); may be null when IPsec is off.
    net::SharedResource* local_crypto_cpu = nullptr;
    net::SharedResource* remote_crypto_cpu = nullptr;
  };

  IscsiInitiator(sim::Simulation& sim, net::RpcNode& node, net::Address target,
                 ImageId image, uint64_t virtual_size, const Options& options);

  uint64_t num_sectors() const override { return virtual_size_ / kSectorSize; }
  sim::Task ReadSectors(uint64_t first_sector, uint64_t count,
                        crypto::Bytes* out) override;
  sim::Task WriteSectors(uint64_t first_sector, const crypto::Bytes& data) override;
  sim::Task AccountRead(uint64_t bytes) override;
  sim::Task AccountWrite(uint64_t bytes) override;
  sim::Task AccountRandomRead(uint64_t bytes, uint64_t chunk_bytes) override;

  // True when the last operation's RPC failed (e.g. the target became
  // unreachable after an isolation change).
  bool last_op_failed() const { return last_op_failed_; }
  uint64_t requests_issued() const { return requests_issued_; }

 private:
  // Issues one rpc covering [offset, offset+bytes) of the image.
  sim::Task Fetch(uint64_t offset, uint64_t bytes, bool write);
  // Read with the read-ahead window: hits inside the prefetched range are
  // free; misses fetch forward in read_ahead_bytes requests.
  sim::Task ReadAt(uint64_t offset, uint64_t bytes);
  // Applies the IPsec overhead for `bytes` of payload in parallel with fn.
  sim::Task WithIpsec(uint64_t bytes, sim::Task transfer);

  sim::Simulation& sim_;
  net::RpcNode& node_;
  net::Address target_;
  ImageId image_;
  uint64_t virtual_size_;
  Options options_;
  uint64_t prefetched_until_ = 0;  // sequential window high-water mark
  uint64_t prefetch_start_ = 0;
  bool last_op_failed_ = false;
  uint64_t requests_issued_ = 0;
};

}  // namespace bolted::storage

#endif  // SRC_STORAGE_ISCSI_H_
