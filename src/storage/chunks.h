// Content-addressed image chunks (DESIGN.md §14).
//
// An image is split into fixed-size chunks, each named by the SHA-256
// digest of its content.  The simulation never materialises the chunk
// bytes, so the digest is derived deterministically from the image's
// stable identity (name, chunk index, chunk size) — two clones of one
// golden image share every chunk digest, replays are byte-identical
// across runs, and a digest uniquely keys the chunk in the object store
// and every cache above it.

#ifndef SRC_STORAGE_CHUNKS_H_
#define SRC_STORAGE_CHUNKS_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/crypto/sha256.h"
#include "src/storage/object_store.h"

namespace bolted::storage {

// The digest chunk `index` of `image_name` would hash to.  Stands in for
// hashing the actual 4 MB of content (which the timing model does not
// carry); deterministic so chaos/scenario replay invariance holds.
crypto::Digest ChunkContentDigest(std::string_view image_name, uint64_t index,
                                  uint64_t chunk_bytes);

// Where a chunk lives in the object store: content addressing folds the
// digest into the object id, so identical chunks dedup to one object.
ObjectId ChunkObjectId(const crypto::Digest& digest);

struct ChunkManifest {
  std::string image_name;
  uint64_t chunk_bytes = 4ull << 20;
  uint64_t image_bytes = 0;
  std::vector<crypto::Digest> chunks;

  static ChunkManifest ForImage(const std::string& image_name, uint64_t image_bytes,
                                uint64_t chunk_bytes);

  // Bytes of chunk `index` (the tail chunk may be short).
  uint64_t ChunkBytes(uint64_t index) const;

  crypto::Bytes Encode() const;
  static std::optional<ChunkManifest> Decode(crypto::ByteView data);
};

}  // namespace bolted::storage

#endif  // SRC_STORAGE_CHUNKS_H_
