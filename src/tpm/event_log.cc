#include "src/tpm/event_log.h"

#include <algorithm>
#include <cassert>

namespace bolted::tpm {

void EventLog::Add(int pcr_index, const crypto::Digest& measurement,
                   std::string description) {
  assert(pcr_index >= 0 && pcr_index < kNumPcrs);
  events_.push_back(MeasurementEvent{pcr_index, measurement, std::move(description)});
}

std::array<crypto::Digest, kNumPcrs> EventLog::ReplayPcrs() const {
  std::array<crypto::Digest, kNumPcrs> pcrs{};
  for (const MeasurementEvent& event : events_) {
    auto& pcr = pcrs[static_cast<size_t>(event.pcr_index)];
    pcr = ExtendDigest(pcr, event.measurement);
  }
  return pcrs;
}

EventLog EventLog::SubLog(size_t from) const {
  EventLog out;
  if (from < events_.size()) {
    out.events_.assign(events_.begin() + static_cast<ptrdiff_t>(from), events_.end());
  }
  return out;
}

crypto::Bytes EventLog::Serialize() const {
  crypto::Bytes out;
  crypto::AppendU32(out, static_cast<uint32_t>(events_.size()));
  for (const MeasurementEvent& event : events_) {
    crypto::AppendU32(out, static_cast<uint32_t>(event.pcr_index));
    crypto::Append(out, crypto::DigestView(event.measurement));
    crypto::AppendU32(out, static_cast<uint32_t>(event.description.size()));
    crypto::Append(out, crypto::ToBytes(event.description));
  }
  return out;
}

std::optional<EventLog> EventLog::Deserialize(crypto::ByteView data) {
  auto read_u32 = [&](uint32_t& v) -> bool {
    if (data.size() < 4) {
      return false;
    }
    v = (static_cast<uint32_t>(data[0]) << 24) | (static_cast<uint32_t>(data[1]) << 16) |
        (static_cast<uint32_t>(data[2]) << 8) | data[3];
    data = data.subspan(4);
    return true;
  };

  uint32_t count = 0;
  if (!read_u32(count) || count > 1u << 20) {
    return std::nullopt;
  }
  EventLog log;
  for (uint32_t i = 0; i < count; ++i) {
    MeasurementEvent event;
    uint32_t pcr = 0;
    if (!read_u32(pcr) || pcr >= static_cast<uint32_t>(kNumPcrs) || data.size() < 32) {
      return std::nullopt;
    }
    event.pcr_index = static_cast<int>(pcr);
    std::copy_n(data.begin(), 32, event.measurement.begin());
    data = data.subspan(32);
    uint32_t desc_size = 0;
    if (!read_u32(desc_size) || data.size() < desc_size) {
      return std::nullopt;
    }
    event.description.assign(data.begin(), data.begin() + desc_size);
    data = data.subspan(desc_size);
    log.events_.push_back(std::move(event));
  }
  if (!data.empty()) {
    return std::nullopt;
  }
  return log;
}

}  // namespace bolted::tpm
