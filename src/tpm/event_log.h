// TCG-style measured-boot event log.
//
// Each stage of the boot chain records what it measured (and into which
// PCR) before extending the TPM.  A verifier replays the log to recompute
// expected PCR values and checks them against a signed quote — the
// mechanism behind the paper's firmware attestation (§5, Figure 4 steps
// i–vii) and IMA's runtime measurement list (§7.4).

#ifndef SRC_TPM_EVENT_LOG_H_
#define SRC_TPM_EVENT_LOG_H_

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "src/crypto/bytes.h"
#include "src/crypto/sha256.h"
#include "src/tpm/tpm.h"

namespace bolted::tpm {

struct MeasurementEvent {
  int pcr_index = 0;
  crypto::Digest measurement{};
  std::string description;

  bool operator==(const MeasurementEvent&) const = default;
};

class EventLog {
 public:
  void Add(int pcr_index, const crypto::Digest& measurement, std::string description);
  void Clear() { events_.clear(); }

  const std::vector<MeasurementEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  // Recomputes the PCR values this log would produce from power-on.
  std::array<crypto::Digest, kNumPcrs> ReplayPcrs() const;

  // The suffix of the log starting at event index `from` (clamped) — used
  // for incremental attestation, where only new measurements travel.
  EventLog SubLog(size_t from) const;

  crypto::Bytes Serialize() const;
  static std::optional<EventLog> Deserialize(crypto::ByteView data);

  bool operator==(const EventLog&) const = default;

 private:
  std::vector<MeasurementEvent> events_;
};

}  // namespace bolted::tpm

#endif  // SRC_TPM_EVENT_LOG_H_
