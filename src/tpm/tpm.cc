#include "src/tpm/tpm.h"

#include <algorithm>
#include <cassert>

#include "src/crypto/hmac.h"

namespace bolted::tpm {
namespace {

constexpr std::string_view kQuoteContext = "BOLTED_TPM_QUOTE_V1";
constexpr std::string_view kCredentialContext = "BOLTED_TPM_CREDENTIAL_V1";

crypto::Bytes CredentialKdfInfo(const crypto::EcPoint& aik_public) {
  crypto::Bytes info = crypto::ToBytes(kCredentialContext);
  const crypto::Digest aik_digest = crypto::Sha256::Hash(aik_public.Encode());
  crypto::Append(info, crypto::DigestView(aik_digest));
  return info;
}

}  // namespace

crypto::Digest ExtendDigest(const crypto::Digest& old_value,
                            const crypto::Digest& measurement) {
  crypto::Sha256 h;
  h.Update(crypto::DigestView(old_value));
  h.Update(crypto::DigestView(measurement));
  return h.Finish();
}

crypto::Digest Quote::MessageDigest() const {
  crypto::Bytes message = crypto::ToBytes(kQuoteContext);
  crypto::Append(message, nonce);
  crypto::AppendU32(message, pcr_mask);
  for (const crypto::Digest& value : pcr_values) {
    crypto::Append(message, crypto::DigestView(value));
  }
  return crypto::Sha256::Hash(message);
}

crypto::Bytes Quote::Serialize() const {
  crypto::Bytes out;
  crypto::AppendU32(out, static_cast<uint32_t>(nonce.size()));
  crypto::Append(out, nonce);
  crypto::AppendU32(out, pcr_mask);
  crypto::AppendU32(out, static_cast<uint32_t>(pcr_values.size()));
  for (const crypto::Digest& value : pcr_values) {
    crypto::Append(out, crypto::DigestView(value));
  }
  crypto::Append(out, signature.Encode());
  if (r_hint.has_value()) {
    crypto::Append(out, r_hint->x.ToBytes());
    crypto::Append(out, r_hint->y.ToBytes());
  }
  return out;
}

std::optional<Quote> Quote::Deserialize(crypto::ByteView data) {
  auto read_u32 = [&](uint32_t& v) -> bool {
    if (data.size() < 4) {
      return false;
    }
    v = (static_cast<uint32_t>(data[0]) << 24) | (static_cast<uint32_t>(data[1]) << 16) |
        (static_cast<uint32_t>(data[2]) << 8) | data[3];
    data = data.subspan(4);
    return true;
  };

  Quote quote;
  uint32_t nonce_size = 0;
  if (!read_u32(nonce_size) || data.size() < nonce_size || nonce_size > 1024) {
    return std::nullopt;
  }
  quote.nonce.assign(data.begin(), data.begin() + nonce_size);
  data = data.subspan(nonce_size);

  // Trailer is the 64-byte signature, optionally followed by a 64-byte
  // nonce-point hint (x || y) for batched verification.
  uint32_t value_count = 0;
  if (!read_u32(quote.pcr_mask) || !read_u32(value_count) ||
      value_count > kNumPcrs ||
      (data.size() != value_count * 32 + 64 &&
       data.size() != value_count * 32 + 128)) {
    return std::nullopt;
  }
  const bool has_hint = data.size() == value_count * 32 + 128;
  for (uint32_t i = 0; i < value_count; ++i) {
    crypto::Digest value;
    std::copy_n(data.begin(), 32, value.begin());
    data = data.subspan(32);
    quote.pcr_values.push_back(value);
  }
  const auto signature = crypto::EcdsaSignature::Decode(data.subspan(0, 64));
  if (!signature) {
    return std::nullopt;
  }
  quote.signature = *signature;
  if (has_hint) {
    crypto::EcPoint hint;
    hint.x = crypto::U256::FromBytes(data.subspan(64, 32));
    hint.y = crypto::U256::FromBytes(data.subspan(96, 32));
    quote.r_hint = hint;
  }
  return quote;
}

Tpm::Tpm(crypto::ByteView endorsement_seed, const TpmLatencyModel& latency)
    : latency_(latency), drbg_(endorsement_seed) {
  const crypto::P256& curve = crypto::P256::Instance();
  ek_private_ = curve.PrivateKeyFromSeed(drbg_.Generate(32));
  ek_public_ = curve.PublicKey(ek_private_);
  storage_root_key_ = drbg_.Generate(32);  // SRK: survives power cycles
}

crypto::Digest Tpm::PolicyDigest(uint32_t pcr_mask) const {
  crypto::Sha256 h;
  h.Update(crypto::ToBytes("BOLTED_TPM_PCR_POLICY_V1"));
  crypto::Bytes mask_bytes;
  crypto::AppendU32(mask_bytes, pcr_mask);
  h.Update(mask_bytes);
  for (int i = 0; i < kNumPcrs; ++i) {
    if (pcr_mask & (1u << i)) {
      h.Update(crypto::DigestView(pcrs_[static_cast<size_t>(i)]));
    }
  }
  return h.Finish();
}

Tpm::SealedBlob Tpm::Seal(crypto::ByteView secret, uint32_t pcr_mask,
                          crypto::Drbg& drbg) const {
  const crypto::Digest policy = PolicyDigest(pcr_mask);
  const crypto::Bytes key =
      crypto::Hkdf(crypto::DigestView(policy), storage_root_key_,
                   crypto::ToBytes("tpm-seal"), 32);
  const crypto::Bytes nonce = drbg.Generate(crypto::AesGcm::kNonceSize);
  SealedBlob blob;
  blob.pcr_mask = pcr_mask;
  blob.ciphertext = nonce;
  crypto::Append(blob.ciphertext, crypto::AesGcm(key).Seal(nonce, secret, {}));
  return blob;
}

std::optional<crypto::Bytes> Tpm::Unseal(const SealedBlob& blob) const {
  if (blob.ciphertext.size() < crypto::AesGcm::kNonceSize + crypto::AesGcm::kTagSize) {
    return std::nullopt;
  }
  // The policy key is derived from the PCRs *as they are now*; any drift
  // since Seal() yields a different key and authentication fails.
  const crypto::Digest policy = PolicyDigest(blob.pcr_mask);
  const crypto::Bytes key =
      crypto::Hkdf(crypto::DigestView(policy), storage_root_key_,
                   crypto::ToBytes("tpm-seal"), 32);
  const crypto::ByteView nonce(blob.ciphertext.data(), crypto::AesGcm::kNonceSize);
  return crypto::AesGcm(key).Open(
      nonce,
      crypto::ByteView(blob.ciphertext.data() + crypto::AesGcm::kNonceSize,
                       blob.ciphertext.size() - crypto::AesGcm::kNonceSize),
      {});
}

void Tpm::CreateAik() {
  const crypto::P256& curve = crypto::P256::Instance();
  aik_private_ = curve.PrivateKeyFromSeed(drbg_.Generate(32));
  aik_public_ = curve.PublicKey(*aik_private_);
}

void Tpm::ExtendPcr(int index, const crypto::Digest& measurement) {
  assert(index >= 0 && index < kNumPcrs);
  pcrs_[static_cast<size_t>(index)] =
      ExtendDigest(pcrs_[static_cast<size_t>(index)], measurement);
}

const crypto::Digest& Tpm::ReadPcr(int index) const {
  assert(index >= 0 && index < kNumPcrs);
  return pcrs_[static_cast<size_t>(index)];
}

void Tpm::Reset() { pcrs_.fill(crypto::Digest{}); }

bool Tpm::PcrIsClean(int index) const { return ReadPcr(index) == crypto::Digest{}; }

Quote Tpm::MakeQuote(crypto::ByteView nonce, uint32_t pcr_mask) const {
  assert(aik_private_.has_value() && "CreateAik() must be called before quoting");
  Quote quote;
  quote.nonce.assign(nonce.begin(), nonce.end());
  quote.pcr_mask = pcr_mask;
  for (int i = 0; i < kNumPcrs; ++i) {
    if (pcr_mask & (1u << i)) {
      quote.pcr_values.push_back(pcrs_[static_cast<size_t>(i)]);
    }
  }
  // Sign in the batch-friendly even-y form and ship the nonce point as the
  // verifier's batch hint (the digest does not cover it; see Quote::r_hint).
  crypto::EcPoint nonce_point;
  quote.signature = crypto::P256::Instance().Sign(
      *aik_private_, quote.MessageDigest(), &nonce_point);
  quote.r_hint = nonce_point;
  return quote;
}

namespace {

// The value list must match the mask's population count.
bool QuoteShapeOk(const Quote& quote) {
  uint32_t bits = quote.pcr_mask;
  size_t expected = 0;
  while (bits != 0) {
    expected += bits & 1;
    bits >>= 1;
  }
  return quote.pcr_values.size() == expected;
}

}  // namespace

bool Tpm::VerifyQuote(const Quote& quote, const crypto::EcPoint& aik_public) {
  return QuoteShapeOk(quote) &&
         crypto::P256::Instance().Verify(aik_public, quote.MessageDigest(),
                                         quote.signature);
}

bool Tpm::VerifyQuote(const Quote& quote,
                      const crypto::P256::PreparedKey& aik_public) {
  return QuoteShapeOk(quote) &&
         crypto::P256::Instance().Verify(aik_public, quote.MessageDigest(),
                                         quote.signature);
}

bool Tpm::VerifyQuoteBatch(std::span<const QuoteBatchEntry> entries, bool* ok,
                           crypto::P256::BatchStats* stats) {
  const size_t n = entries.size();
  std::vector<crypto::P256::BatchEntry> batch(n);
  for (size_t i = 0; i < n; ++i) {
    const QuoteBatchEntry& e = entries[i];
    ok[i] = false;
    if (e.quote == nullptr || e.aik == nullptr || !QuoteShapeOk(*e.quote)) {
      continue;  // key stays null; VerifyBatch reports it false
    }
    batch[i].key = e.aik;
    batch[i].message_hash = e.quote->MessageDigest();
    batch[i].signature = e.quote->signature;
    if (e.quote->r_hint.has_value()) {
      batch[i].r_hint = &*e.quote->r_hint;
    }
  }
  return crypto::P256::Instance().VerifyBatch(batch, ok, stats);
}

crypto::Bytes MakeCredential(const crypto::EcPoint& ek_public,
                             const crypto::EcPoint& aik_public,
                             crypto::ByteView secret, crypto::Drbg& drbg) {
  const crypto::P256& curve = crypto::P256::Instance();
  const crypto::U256 ephemeral = curve.PrivateKeyFromSeed(drbg.Generate(32));
  const crypto::EcPoint ephemeral_public = curve.PublicKey(ephemeral);
  const auto shared = curve.SharedSecret(ephemeral, ek_public);
  assert(shared.has_value());

  const crypto::Bytes key =
      crypto::Hkdf({}, *shared, CredentialKdfInfo(aik_public), 32);
  const crypto::Bytes nonce = drbg.Generate(crypto::AesGcm::kNonceSize);
  const crypto::Bytes sealed = crypto::AesGcm(key).Seal(nonce, secret, {});

  crypto::Bytes blob = ephemeral_public.Encode();  // 65 bytes
  crypto::Append(blob, nonce);
  crypto::Append(blob, sealed);
  return blob;
}

std::optional<crypto::Bytes> Tpm::ActivateCredential(crypto::ByteView blob) const {
  if (!aik_private_.has_value() || blob.size() < 65 + crypto::AesGcm::kNonceSize) {
    return std::nullopt;
  }
  const auto ephemeral_public = crypto::EcPoint::Decode(blob.subspan(0, 65));
  if (!ephemeral_public) {
    return std::nullopt;
  }
  const crypto::ByteView nonce = blob.subspan(65, crypto::AesGcm::kNonceSize);
  const crypto::ByteView sealed = blob.subspan(65 + crypto::AesGcm::kNonceSize);

  const auto shared =
      crypto::P256::Instance().SharedSecret(ek_private_, *ephemeral_public);
  if (!shared) {
    return std::nullopt;
  }
  // Binding: the KDF mixes in *this TPM's current AIK*; a different AIK
  // yields a different key and authentication fails.
  const crypto::Bytes key =
      crypto::Hkdf({}, *shared, CredentialKdfInfo(aik_public_), 32);
  return crypto::AesGcm(key).Open(nonce, sealed, {});
}

}  // namespace bolted::tpm
