// Software TPM emulator.
//
// Mirrors the slice of TPM functionality Bolted depends on (§2, §5 of the
// paper): SHA-256 PCR banks with extend/read/reset, an Endorsement Key
// burned in at manufacture, Attestation Identity Keys, signed quotes over
// selected PCRs, and the make/activate-credential exchange the Keylime
// registrar uses to prove an AIK lives in the same TPM as an EK.
//
// The paper's M620 cluster also ran a software TPM with injected R630
// latencies; TpmLatencyModel plays that role here.  All keys are P-256
// (substitution documented in DESIGN.md).

#ifndef SRC_TPM_TPM_H_
#define SRC_TPM_TPM_H_

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/crypto/aes_gcm.h"
#include "src/crypto/bytes.h"
#include "src/crypto/drbg.h"
#include "src/crypto/p256.h"
#include "src/crypto/sha256.h"
#include "src/sim/time.h"

namespace bolted::tpm {

inline constexpr int kNumPcrs = 24;

// PCR allocation used by the Bolted boot chain (matches the Linux/TCG
// conventions the paper relies on).
inline constexpr int kPcrFirmware = 0;       // platform firmware (SRTM)
inline constexpr int kPcrFirmwareConfig = 1; // firmware settings
inline constexpr int kPcrBootloader = 4;     // iPXE + downloaded runtime
inline constexpr int kPcrKernel = 8;         // kexec'd kernel/initrd
inline constexpr int kPcrIma = 10;           // IMA runtime measurement list

// Command latencies, defaulting to values in the ballpark of the paper's
// Dell R630 hardware TPM measurements.
struct TpmLatencyModel {
  sim::Duration extend = sim::Duration::Milliseconds(12);
  sim::Duration read = sim::Duration::Milliseconds(5);
  sim::Duration quote = sim::Duration::Milliseconds(1500);
  sim::Duration activate_credential = sim::Duration::Milliseconds(500);
  sim::Duration create_aik = sim::Duration::Seconds(20);
};

// Per-command fault verdict (see Tpm::SetFaultHook): hardware TPMs fail
// transiently under load and show heavy-tailed command latency; both are
// injected here rather than modelled statistically, so chaos runs stay
// seed-deterministic.
struct TpmFault {
  bool fail = false;               // command returns an error
  sim::Duration extra_latency{};   // added to the command's model latency
};

// A signed attestation of a PCR selection.
struct Quote {
  crypto::Bytes nonce;
  uint32_t pcr_mask = 0;
  std::vector<crypto::Digest> pcr_values;  // ascending PCR index order
  crypto::EcdsaSignature signature;        // by the quoting AIK
  // Nonce point R = k·G of the signature, carried as an UNTRUSTED batch-
  // verification accelerator hint (saves the verifier a square root per
  // quote).  Not covered by the signature — VerifyQuoteBatch validates it
  // before use and a corrupted hint can never flip a verdict.  Optional on
  // the wire for compatibility with hint-less quotes.
  std::optional<crypto::EcPoint> r_hint;

  // Digest the signature covers.
  crypto::Digest MessageDigest() const;

  crypto::Bytes Serialize() const;
  static std::optional<Quote> Deserialize(crypto::ByteView data);
};

class Tpm {
 public:
  // endorsement_seed determines the EK; latency models command cost.
  Tpm(crypto::ByteView endorsement_seed, const TpmLatencyModel& latency);

  const crypto::EcPoint& ek_public() const { return ek_public_; }
  const TpmLatencyModel& latency() const { return latency_; }

  // Fault injection.  The Tpm itself is passive (latencies are charged by
  // the coroutine drivers), so callers consult TakeFault("quote") etc.
  // before issuing a command and honour the verdict.  The hook must be
  // deterministic for a given seed.
  using FaultHook = std::function<TpmFault(std::string_view command)>;
  void SetFaultHook(FaultHook hook) { fault_hook_ = std::move(hook); }
  TpmFault TakeFault(std::string_view command) {
    return fault_hook_ ? fault_hook_(command) : TpmFault{};
  }

  // Generates (or regenerates) the attestation identity key.
  void CreateAik();
  bool has_aik() const { return aik_private_.has_value(); }
  const crypto::EcPoint& aik_public() const { return aik_public_; }

  // PCR operations.
  void ExtendPcr(int index, const crypto::Digest& measurement);
  const crypto::Digest& ReadPcr(int index) const;
  // Power-cycle semantics: PCRs reset to zero, EK and (persisted) AIK
  // survive.
  void Reset();
  // True if the PCR still holds its power-on value.
  bool PcrIsClean(int index) const;

  // Produces a quote over the PCRs selected by pcr_mask (bit i = PCR i),
  // signed with the AIK.  Requires CreateAik() first.
  Quote MakeQuote(crypto::ByteView nonce, uint32_t pcr_mask) const;

  // Verifies signature and internal consistency of a quote against an
  // expected AIK public key.  The PreparedKey overload is the polling hot
  // path: the caller validates and tables the AIK once, and every
  // subsequent quote check skips the on-curve test and runs the short
  // precomputed verify ladder.
  static bool VerifyQuote(const Quote& quote, const crypto::EcPoint& aik_public);
  static bool VerifyQuote(const Quote& quote,
                          const crypto::P256::PreparedKey& aik_public);

  // Fleet-rate path: verifies many quotes in one multi-scalar batched
  // signature check (P256::VerifyBatch), sharing one doubling chain and one
  // modular inversion across the whole batch and consuming each quote's
  // r_hint when it validates.  ok[i] is exactly what VerifyQuote would
  // return for entries[i] — a bad quote in the batch is bisected out and
  // blamed individually, never masked and never contagious.  Returns true
  // iff every entry verified.
  struct QuoteBatchEntry {
    const Quote* quote = nullptr;
    const crypto::P256::PreparedKey* aik = nullptr;
  };
  static bool VerifyQuoteBatch(std::span<const QuoteBatchEntry> entries, bool* ok,
                               crypto::P256::BatchStats* stats = nullptr);

  // TPM2_ActivateCredential: recovers the secret from MakeCredential's
  // blob iff this TPM holds the EK private key and its current AIK matches
  // the AIK the blob was bound to.
  std::optional<crypto::Bytes> ActivateCredential(crypto::ByteView blob) const;

  // TPM2 sealed storage: binds a secret to the *current* values of the
  // selected PCRs.  Unseal succeeds only on this TPM and only while those
  // PCRs hold the same values — e.g. a disk key sealed in a known-good
  // boot state becomes unrecoverable after booting modified firmware.
  struct SealedBlob {
    uint32_t pcr_mask = 0;
    crypto::Bytes ciphertext;  // nonce || GCM(secret) under a policy key
  };
  SealedBlob Seal(crypto::ByteView secret, uint32_t pcr_mask, crypto::Drbg& drbg) const;
  std::optional<crypto::Bytes> Unseal(const SealedBlob& blob) const;

 private:
  crypto::Digest PolicyDigest(uint32_t pcr_mask) const;

  TpmLatencyModel latency_;
  FaultHook fault_hook_;
  crypto::Drbg drbg_;
  crypto::Bytes storage_root_key_;
  crypto::U256 ek_private_;
  crypto::EcPoint ek_public_;
  std::optional<crypto::U256> aik_private_;
  crypto::EcPoint aik_public_;
  std::array<crypto::Digest, kNumPcrs> pcrs_{};
};

// Registrar-side half of the credential-activation protocol: encrypts
// secret so that only the TPM holding ek_public can recover it, and only
// if its AIK equals aik_public.
crypto::Bytes MakeCredential(const crypto::EcPoint& ek_public,
                             const crypto::EcPoint& aik_public,
                             crypto::ByteView secret, crypto::Drbg& drbg);

// The hash-extend rule PCRs obey; exposed so verifiers can replay event
// logs: new = SHA256(old || measurement).
crypto::Digest ExtendDigest(const crypto::Digest& old_value,
                            const crypto::Digest& measurement);

}  // namespace bolted::tpm

#endif  // SRC_TPM_TPM_H_
