#include "src/net/pcap.h"

#include <algorithm>
#include <cstring>

#if !defined(_WIN32)
#include <unistd.h>
#endif

namespace bolted::net {

namespace {

// All multi-byte pcap header fields are written little-endian explicitly,
// so captures are byte-identical regardless of host endianness.
void PutLe16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xff));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void PutLe32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v & 0xff));
  out.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<uint8_t>((v >> 24) & 0xff));
}

// Frame-body fields are big-endian: that is what network analyzers expect
// for on-wire integers.
void PutBe16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v & 0xff));
}

void PutBe32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v >> 24));
  out.push_back(static_cast<uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<uint8_t>(v & 0xff));
}

void PutBe64(std::vector<uint8_t>& out, uint64_t v) {
  PutBe32(out, static_cast<uint32_t>(v >> 32));
  PutBe32(out, static_cast<uint32_t>(v & 0xffffffffu));
}

void PutMac(std::vector<uint8_t>& out, Address addr) {
  out.push_back(0x02);  // locally administered unicast
  out.push_back(0x42);
  PutBe32(out, static_cast<uint32_t>(addr));
}

constexpr uint32_t kMagicNanos = 0xa1b23c4d;
constexpr uint16_t kVersionMajor = 2;
constexpr uint16_t kVersionMinor = 4;
constexpr uint32_t kLinktypeEthernet = 1;
constexpr uint16_t kEthertypeVlan = 0x8100;
constexpr uint16_t kEthertypeExperimental = 0x88B5;

}  // namespace

PcapWriter::~PcapWriter() {
  if (file_ != nullptr) {
    Close();
  }
}

bool PcapWriter::Open(const std::string& path, uint32_t snaplen) {
  if (file_ != nullptr) {
    return false;
  }
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return false;
  }

  scratch_.clear();
  PutLe32(scratch_, kMagicNanos);
  PutLe16(scratch_, kVersionMajor);
  PutLe16(scratch_, kVersionMinor);
  PutLe32(scratch_, 0);  // thiszone: sim time has no UTC offset
  PutLe32(scratch_, 0);  // sigfigs (unused by convention)
  PutLe32(scratch_, snaplen);
  PutLe32(scratch_, kLinktypeEthernet);
  if (std::fwrite(scratch_.data(), 1, scratch_.size(), file) !=
      scratch_.size()) {
    std::fclose(file);
    return false;
  }

  file_ = file;
  failed_ = false;
  snaplen_ = snaplen;
  frames_written_ = 0;
  bytes_written_ = scratch_.size();
  return true;
}

bool PcapWriter::WriteFrame(sim::Time when, VlanId vlan,
                            const Message& message) {
  if (file_ == nullptr || failed_) {
    return false;
  }

  scratch_.clear();

  // --- record header (filled after the body is assembled) ---
  const uint64_t ns = static_cast<uint64_t>(when.nanoseconds());
  PutLe32(scratch_, static_cast<uint32_t>(ns / 1000000000u));  // ts_sec
  PutLe32(scratch_, static_cast<uint32_t>(ns % 1000000000u));  // ts_nsec
  PutLe32(scratch_, 0);  // incl_len placeholder
  PutLe32(scratch_, 0);  // orig_len placeholder

  // --- synthesized Ethernet frame ---
  PutMac(scratch_, message.dst);
  PutMac(scratch_, message.src);
  PutBe16(scratch_, kEthertypeVlan);
  PutBe16(scratch_, static_cast<uint16_t>(vlan));  // TCI: PCP/DEI zero
  PutBe16(scratch_, kEthertypeExperimental);

  const size_t kind_len = std::min<size_t>(message.kind.size(), 255);
  scratch_.push_back(static_cast<uint8_t>(kind_len));
  scratch_.insert(scratch_.end(), message.kind.data(),
                  message.kind.data() + kind_len);
  scratch_.push_back(message.rpc_response ? 0x01 : 0x00);
  PutBe64(scratch_, message.rpc_id);
  PutBe32(scratch_, static_cast<uint32_t>(message.payload.size()));
  scratch_.insert(scratch_.end(), message.payload.begin(),
                  message.payload.end());

  const size_t encoded = scratch_.size() - 16;  // body bytes after header
  // Bulk transfers model wire bytes without materializing a payload;
  // orig_len reports the larger of modeled and encoded size so the record
  // reads as a (standard) truncated capture of the true frame.
  const uint64_t modeled = message.EffectiveWireBytes();
  const uint32_t orig_len =
      static_cast<uint32_t>(std::max<uint64_t>(encoded, modeled));
  const uint32_t incl_len =
      std::min(static_cast<uint32_t>(encoded), snaplen_);

  // Patch the two length fields in place (little-endian).
  const auto patch_le32 = [&](size_t at, uint32_t v) {
    scratch_[at] = static_cast<uint8_t>(v & 0xff);
    scratch_[at + 1] = static_cast<uint8_t>((v >> 8) & 0xff);
    scratch_[at + 2] = static_cast<uint8_t>((v >> 16) & 0xff);
    scratch_[at + 3] = static_cast<uint8_t>((v >> 24) & 0xff);
  };
  patch_le32(8, incl_len);
  patch_le32(12, orig_len);

  const size_t record_size = 16 + incl_len;
  if (std::fwrite(scratch_.data(), 1, record_size, file_) != record_size) {
    failed_ = true;  // partial record may be buffered; Close() truncates
    return false;
  }
  frames_written_ += 1;
  bytes_written_ += record_size;
  return true;
}

bool PcapWriter::Close() {
  if (file_ == nullptr) {
    return false;
  }
  std::FILE* file = file_;
  file_ = nullptr;

  bool ok = !failed_;
  if (std::fflush(file) != 0 || std::ferror(file) != 0) {
    ok = false;
  }
  if (!ok) {
    // Drop any trailing partial record so the capture stays parseable up
    // to the last complete frame.
    std::fflush(file);
#if defined(_WIN32)
    // No ftruncate; leave the tail in place.
#else
    (void)::ftruncate(fileno(file), static_cast<off_t>(bytes_written_));
#endif
  }
  if (std::fclose(file) != 0) {
    ok = false;
  }
  failed_ = false;
  return ok;
}

}  // namespace bolted::net
