#include "src/net/rpc.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/obs/obs.h"

namespace bolted::net {

RpcNode::RpcNode(sim::Simulation& sim, Endpoint& endpoint)
    : sim_(sim), endpoint_(endpoint) {}

void RpcNode::RegisterHandler(const std::string& kind, Handler handler) {
  handlers_[kind] = std::move(handler);
}

void RpcNode::Start() {
  assert(!started_);
  started_ = true;
  sim_.Spawn(Dispatch());
}

sim::Task RpcNode::Dispatch() {
  for (;;) {
    Message message = co_await endpoint_.inbox().Recv();
    if (message.rpc_response) {
      const auto it = pending_.find(message.rpc_id);
      if (it == pending_.end()) {
        continue;  // late response after timeout
      }
      PendingCall call = std::move(it->second);
      pending_.erase(it);
      if (call.response != nullptr) {
        *call.response = std::move(message);
      }
      if (call.ok != nullptr) {
        *call.ok = true;
      }
      call.done->Set();
      continue;
    }
    sim_.Spawn(HandleRequest(std::make_shared<Message>(std::move(message))));
  }
}

sim::Task RpcNode::HandleRequest(std::shared_ptr<Message> request) {
  const auto it = handlers_.find(request->kind);
  if (it == handlers_.end()) {
    co_return;  // unknown service; drop like a closed port
  }
  Message response;
  co_await it->second(*request, &response);
  response.rpc_id = request->rpc_id;
  response.rpc_response = true;
  if (response.kind.empty()) {
    response.kind = request->kind + ".resp";
  }
  co_await endpoint_.Send(request->src, std::move(response));
}

// Plain shim: boxes the aggregate before the coroutine boundary.
sim::Task RpcNode::Call(Address dst, Message request, Message* response, bool* ok,
                        sim::Duration timeout) {
  return CallBoxed(dst, std::make_shared<Message>(std::move(request)), response, ok,
                   timeout);
}

sim::Task RpcNode::CallBoxed(Address dst, std::shared_ptr<Message> request,
                             Message* response, bool* ok, sim::Duration timeout) {
  assert(started_ && "Start() the RpcNode before calling");
  const uint64_t id = next_rpc_id_++;
  request->rpc_id = id;
  request->rpc_response = false;
  if (ok != nullptr) {
    *ok = false;
  }

  auto done = std::make_shared<sim::Event>(sim_);
  pending_.emplace(id, PendingCall{done, response, ok});

  const sim::EventId timer = sim_.Schedule(timeout, [this, id]() {
    const auto it = pending_.find(id);
    if (it == pending_.end()) {
      return;
    }
    PendingCall call = std::move(it->second);
    pending_.erase(it);
    ++call_timeouts_;
    obs::Count(sim_, "rpc.timeouts");
    call.done->Set();  // ok stays false
  });

#if BOLTED_OBS
  // Copy the kind (Send consumes the message) only when someone is
  // listening — an unconditional string copy would tax every untraced call.
  const sim::Time call_start = sim_.now();
  const std::string kind =
      sim_.observer() != nullptr ? request->kind : std::string();
#endif
  co_await endpoint_.Send(dst, std::move(*request));
  co_await *done;
  sim_.Cancel(timer);
#if BOLTED_OBS
  if (obs::Registry* r = sim_.observer()) {
    r->Add("rpc.calls");
    r->RecordDuration("rpc.call_ns." + kind, sim_.now() - call_start);
  }
#endif
}

// Plain shim: boxes the aggregate before the coroutine boundary.
sim::Task RpcNode::CallWithRetry(Address dst, Message request, Message* response,
                                 bool* ok, CallOptions options) {
  return CallWithRetryBoxed(dst, std::make_shared<Message>(std::move(request)),
                            response, ok, options);
}

sim::Task RpcNode::CallWithRetryBoxed(Address dst,
                                      std::shared_ptr<Message> request,
                                      Message* response, bool* ok,
                                      CallOptions options) {
  bool attempt_ok = false;
  sim::Duration backoff = options.backoff_base;
  for (int attempt = 1; attempt <= options.max_attempts; ++attempt) {
    if (attempt > 1) {
      ++call_retries_;
      obs::Count(sim_, "rpc.retries");
      // Jittered backoff: scale by a uniform factor in [1 - jitter, 1] so
      // retries from independent callers decorrelate without ever waiting
      // longer than the deterministic cap.
      const double scale =
          1.0 - options.jitter * sim_.rng().NextDouble();
      co_await sim::Delay(sim_, backoff.Scaled(scale));
      backoff = std::min(backoff * 2, options.backoff_cap);
    }
    // CallBoxed consumes the message; each attempt sends a fresh copy.
    co_await CallBoxed(dst, std::make_shared<Message>(*request), response,
                       &attempt_ok, options.timeout);
    if (attempt_ok) {
      break;
    }
  }
  if (ok != nullptr) {
    *ok = attempt_ok;
  }
}

}  // namespace bolted::net
