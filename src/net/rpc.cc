#include "src/net/rpc.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "src/obs/obs.h"

namespace bolted::net {
namespace {

struct RpcMetricIds {
  uint32_t calls = obs::InternMetric("rpc.calls");
  uint32_t timeouts = obs::InternMetric("rpc.timeouts");
  uint32_t retries = obs::InternMetric("rpc.retries");
};

const RpcMetricIds& Ids() {
  static const RpcMetricIds ids;
  return ids;
}

// Sentinel for "observer was not attached at call start".
constexpr uint32_t kNoMetric = 0xffffffffu;

}  // namespace

RpcNode::RpcNode(sim::Simulation& sim, Endpoint& endpoint)
    : sim_(sim), endpoint_(endpoint) {}

uint32_t RpcNode::CallDurationMetric(const std::string& kind) {
  const auto it = call_ns_ids_.find(kind);
  if (it != call_ns_ids_.end()) {
    return it->second;
  }
  const uint32_t id = obs::InternMetric("rpc.call_ns." + kind);
  call_ns_ids_.emplace(kind, id);
  return id;
}

void RpcNode::RegisterHandler(const std::string& kind, Handler handler) {
  handlers_[kind] = std::move(handler);
}

void RpcNode::Start() {
  assert(!started_);
  started_ = true;
  sim_.Spawn(Dispatch());
}

sim::Task RpcNode::Dispatch() {
  for (;;) {
    Message message = co_await endpoint_.inbox().Recv();
    if (message.rpc_response) {
      const auto it = pending_.find(message.rpc_id);
      if (it == pending_.end()) {
        continue;  // late response after timeout
      }
      PendingCall call = std::move(it->second);
      pending_.erase(it);
      if (call.response != nullptr) {
        *call.response = std::move(message);
      }
      if (call.ok != nullptr) {
        *call.ok = true;
      }
      call.done->Set();
      continue;
    }
    sim_.Spawn(HandleRequest(MessageBox(std::move(message))));
  }
}

sim::Task RpcNode::HandleRequest(MessageBox request) {
  const auto it = handlers_.find(request->kind);
  if (it == handlers_.end()) {
    co_return;  // unknown service; drop like a closed port
  }
  Message response;
  co_await it->second(*request, &response);
  response.rpc_id = request->rpc_id;
  response.rpc_response = true;
  if (response.kind.empty()) {
    response.kind = request->kind + ".resp";
  }
  co_await endpoint_.Send(request->src, std::move(response));
}

// Plain shim: boxes the aggregate before the coroutine boundary.
sim::Task RpcNode::Call(Address dst, Message request, Message* response, bool* ok,
                        sim::Duration timeout) {
  return CallBoxed(dst, MessageBox(std::move(request)), response, ok, timeout);
}

sim::Task RpcNode::CallBoxed(Address dst, MessageBox request, Message* response,
                             bool* ok, sim::Duration timeout) {
  assert(started_ && "Start() the RpcNode before calling");
  const uint64_t id = next_rpc_id_++;
  request->rpc_id = id;
  request->rpc_response = false;
  if (ok != nullptr) {
    *ok = false;
  }

  // The completion event lives in this frame; responders and the timeout
  // timer reach it through the pending_ entry, and the frame cannot
  // resume (or die) before one of them fires it.
  sim::Event done(sim_);
  pending_.emplace(id, PendingCall{&done, response, ok});

  const sim::EventId timer = sim_.Schedule(timeout, [this, id]() {
    const auto it = pending_.find(id);
    if (it == pending_.end()) {
      return;
    }
    PendingCall call = std::move(it->second);
    pending_.erase(it);
    ++call_timeouts_;
    obs::CountById(sim_, Ids().timeouts);
    call.done->Set();  // ok stays false
  });

#if BOLTED_OBS
  // Resolve the per-kind duration metric (Send consumes the message) only
  // when someone is listening — the id comes from a per-node cache, so
  // repeated calls of one kind neither copy nor concatenate the name.
  const sim::Time call_start = sim_.now();
  const uint32_t call_ns_metric = sim_.observer() != nullptr
                                      ? CallDurationMetric(request->kind)
                                      : kNoMetric;
#endif
  co_await endpoint_.SendBoxed(dst, std::move(request));
  co_await done;
  sim_.Cancel(timer);
#if BOLTED_OBS
  if (call_ns_metric != kNoMetric) {
    if (obs::Registry* r = sim_.observer()) {
      r->AddById(Ids().calls);
      r->RecordDurationById(call_ns_metric, sim_.now() - call_start);
    }
  }
#endif
}

// Plain shim: boxes the aggregate before the coroutine boundary.
sim::Task RpcNode::CallWithRetry(Address dst, Message request, Message* response,
                                 bool* ok, CallOptions options) {
  return CallWithRetryBoxed(dst, MessageBox(std::move(request)), response, ok,
                            options);
}

sim::Task RpcNode::CallWithRetryBoxed(Address dst, MessageBox request,
                                      Message* response, bool* ok,
                                      CallOptions options) {
  bool attempt_ok = false;
  sim::Duration backoff = options.backoff_base;
  for (int attempt = 1; attempt <= options.max_attempts; ++attempt) {
    if (attempt > 1) {
      ++call_retries_;
      obs::CountById(sim_, Ids().retries);
      // Jittered backoff: scale by a uniform factor in [1 - jitter, 1] so
      // retries from independent callers decorrelate without ever waiting
      // longer than the deterministic cap.
      const double scale =
          1.0 - options.jitter * sim_.rng().NextDouble();
      co_await sim::Delay(sim_, backoff.Scaled(scale));
      backoff = std::min(backoff * 2, options.backoff_cap);
    }
    // CallBoxed consumes the message; each attempt sends a fresh copy
    // (into a recycled pooled box, so no steady-state allocation).
    co_await CallBoxed(dst, MessageBox(*request), response, &attempt_ok,
                       options.timeout);
    if (attempt_ok) {
      break;
    }
  }
  if (ok != nullptr) {
    *ok = attempt_ok;
  }
}

}  // namespace bolted::net
