#include "src/net/network.h"

#include <utility>

#include "src/obs/obs.h"

namespace bolted::net {
namespace {

// Fixed frame-path metric names, interned once per process so the send
// coroutine records through ids (no hashing, no string temporaries).
struct NetMetricIds {
  uint32_t dropped_isolation = obs::InternMetric("net.frames.dropped_isolation");
  uint32_t fault_dropped = obs::InternMetric("net.frames.fault_dropped");
  uint32_t fault_delayed = obs::InternMetric("net.frames.fault_delayed");
  uint32_t fault_extra_delay = obs::InternMetric("net.fault_extra_delay");
  uint32_t dropped_in_flight = obs::InternMetric("net.frames.dropped_in_flight");
  uint32_t forwarded = obs::InternMetric("net.frames.forwarded");
  uint32_t frame_bytes = obs::InternMetric("net.frame_bytes");
  uint32_t fault_duplicated = obs::InternMetric("net.frames.fault_duplicated");
  uint32_t injected = obs::InternMetric("net.frames.injected");
  uint32_t injected_dropped = obs::InternMetric("net.frames.injected_dropped");
};

const NetMetricIds& Ids() {
  static const NetMetricIds ids;
  return ids;
}

}  // namespace

Endpoint::Endpoint(sim::Simulation& sim, Network& network, Address address,
                   std::string name, double bandwidth_bytes_per_second)
    : sim_(sim),
      network_(network),
      address_(address),
      name_(std::move(name)),
      tx_(sim, bandwidth_bytes_per_second, name_ + ".tx"),
      rx_(sim, bandwidth_bytes_per_second, name_ + ".rx"),
      inbox_(sim),
      tx_bytes_metric_(obs::InternMetric("net.link." + name_ + ".tx_bytes")),
      rx_bytes_metric_(obs::InternMetric("net.link." + name_ + ".rx_bytes")) {}

// Plain (non-coroutine) shim: boxes the aggregate before the coroutine
// boundary — see the header note on the GCC 12 parameter-copy bug.  The
// box is pooled, so in the steady state this allocates nothing.
sim::Task Endpoint::Send(Address dst, Message message) {
  return SendBoxed(dst, MessageBox(std::move(message)));
}

sim::Task Endpoint::SendBoxed(Address dst, MessageBox message) {
  message->src = address_;
  message->dst = dst;
  ++messages_sent_;
  // One static-guard check per frame, not one per metric operation.
  const NetMetricIds& ids = Ids();

  Endpoint* receiver = network_.FindEndpoint(dst);
  const VlanId vlan =
      receiver == nullptr
          ? 0
          : VlanSet::LowestShared(vlans_, receiver->vlans_);
  if (vlan == 0 || !network_.LinkUp(address_) || !network_.LinkUp(dst)) {
    ++messages_dropped_;
    ++network_.total_drops_;
    obs::CountById(sim_, ids.dropped_isolation);
    co_return;
  }

  // Fault injection at switch ingress: the frame can die here (before it
  // occupies the receiver's NIC), pick up extra delay, or be duplicated.
  FrameFault fault;
  if (network_.fault_filter_) {
    fault = network_.fault_filter_(*message);
    if (fault.drop) {
      ++messages_dropped_;
      ++network_.total_drops_;
      ++network_.fault_drops_;
      obs::CountById(sim_, ids.fault_dropped);
      co_return;
    }
    if (fault.extra_delay > sim::Duration::Zero()) {
      obs::CountById(sim_, ids.fault_delayed);
      obs::RecordDurationById(sim_, ids.fault_extra_delay, fault.extra_delay);
    }
  }

  const double wire_bytes = static_cast<double>(message->EffectiveWireBytes());
  DemandList demands;
  demands.push_back(WeightedDemand{&tx_, wire_bytes});
  demands.push_back(WeightedDemand{&receiver->rx_, wire_bytes});
  // Cross-switch frames also traverse the top-of-rack uplinks.
  const int src_switch = network_.SwitchOf(address_);
  const int dst_switch = network_.SwitchOf(dst);
  if (src_switch != dst_switch) {
    if (src_switch != 0) {
      demands.push_back(WeightedDemand{&network_.uplink(src_switch), wire_bytes});
    }
    if (dst_switch != 0) {
      demands.push_back(WeightedDemand{&network_.uplink(dst_switch), wire_bytes});
    }
  }
  co_await ConsumeAllWeighted(sim_, std::move(demands));
  co_await sim::Delay(sim_, network_.propagation_latency() + fault.extra_delay);

  // Re-check reachability at delivery time: HIL may have moved ports (or a
  // link may have dropped) while the frame was in flight.
  if (VlanSet::LowestShared(vlans_, receiver->vlans_) == 0 ||
      !network_.LinkUp(address_) || !network_.LinkUp(dst)) {
    ++messages_dropped_;
    ++network_.total_drops_;
    obs::CountById(sim_, ids.dropped_in_flight);
    co_return;
  }
#if BOLTED_OBS
  // Forwarded-frame accounting: totals, size distribution, and per-link
  // byte counters keyed on the endpoint names (the "per-port ifconfig" of
  // the simulated switch).  All ids were interned at attach time, so this
  // block neither hashes nor builds metric-name strings.
  if (obs::Registry* r = sim_.observer()) {
    const auto bytes = message->EffectiveWireBytes();
    r->AddById(ids.forwarded, 1 + static_cast<uint64_t>(fault.duplicates));
    r->RecordById(ids.frame_bytes, bytes);
    r->AddById(tx_bytes_metric_, bytes);
    r->AddById(receiver->rx_bytes_metric_,
               bytes * (1 + static_cast<uint64_t>(fault.duplicates)));
  }
#endif
  // A duplicating switch delivers extra copies of the same frame; each copy
  // is provider-visible traffic, so the sniffer sees all of them.
  for (int copy = 0; copy < fault.duplicates; ++copy) {
    ++network_.fault_duplicates_;
    obs::CountById(sim_, ids.fault_duplicated);
    if (network_.sniffer_) {
      network_.sniffer_(vlan, *message);
    }
    receiver->inbox_.Send(*message);
  }
  if (network_.sniffer_) {
    network_.sniffer_(vlan, *message);
  }
  receiver->inbox_.Send(std::move(*message));
}

void Network::SetLinkUp(Address endpoint, bool up) {
  if (endpoint >= link_down_.size()) {
    if (up) {
      return;  // unknown links default to up
    }
    link_down_.resize(endpoint + 1, 0);
  }
  link_down_[endpoint] = up ? 0 : 1;
}

void Endpoint::Post(Address dst, Message message) {
  sim_.Spawn(Send(dst, std::move(message)));
}

Network::Network(sim::Simulation& sim, sim::Duration propagation_latency,
                 double default_bandwidth_bytes_per_second)
    : sim_(sim),
      latency_(propagation_latency),
      default_bandwidth_(default_bandwidth_bytes_per_second) {}

Endpoint& Network::CreateEndpoint(const std::string& name) {
  return CreateEndpoint(name, default_bandwidth_);
}

Endpoint& Network::CreateEndpoint(const std::string& name,
                                  double bandwidth_bytes_per_second) {
  const Address address = next_address_++;
  auto endpoint = std::make_unique<Endpoint>(sim_, *this, address, name,
                                             bandwidth_bytes_per_second);
  Endpoint& ref = *endpoint;
  endpoints_.emplace(address, std::move(endpoint));
  // emplace keeps the first binding, so duplicate names keep resolving to
  // the earliest-created endpoint (what the old linear scan returned).
  endpoints_by_name_.emplace(name, address);
  // Index slot `address` exactly (SetLinkUp may have grown link_down_ past
  // the created range already, so push_back would misalign).
  if (endpoint_index_.size() <= address) {
    endpoint_index_.resize(address + 1, nullptr);
    switch_index_.resize(address + 1, 0);
  }
  if (link_down_.size() <= address) {
    link_down_.resize(address + 1, 0);
  }
  endpoint_index_[address] = &ref;
  switch_index_[address] = 0;
  return ref;
}

Endpoint& Network::CreateEndpointOnSwitch(const std::string& name, int switch_id) {
  Endpoint& endpoint = CreateEndpoint(name);
  switch_index_[endpoint.address()] = switch_id;
  return endpoint;
}

int Network::AddSwitch(double uplink_bandwidth_bytes_per_second) {
  uplinks_.push_back(std::make_unique<SharedResource>(
      sim_, uplink_bandwidth_bytes_per_second,
      "uplink-" + std::to_string(uplinks_.size() + 1)));
  return static_cast<int>(uplinks_.size());
}

SharedResource& Network::uplink(int switch_id) {
  return *uplinks_.at(static_cast<size_t>(switch_id - 1));
}

void Network::AssignToSwitch(Address endpoint, int switch_id) {
  if (endpoint < switch_index_.size()) {
    switch_index_[endpoint] = switch_id;
  }
}

int Network::SwitchOf(Address endpoint) const {
  return endpoint < switch_index_.size() ? switch_index_[endpoint] : 0;
}

Endpoint* Network::FindEndpoint(Address address) {
  return address < endpoint_index_.size() ? endpoint_index_[address] : nullptr;
}

Endpoint* Network::FindByName(const std::string& name) {
  const auto it = endpoints_by_name_.find(name);
  return it == endpoints_by_name_.end() ? nullptr : FindEndpoint(it->second);
}

void Network::AttachToVlan(Address endpoint, VlanId vlan) {
  if (Endpoint* e = FindEndpoint(endpoint)) {
    e->vlans_.insert(vlan);
  }
}

void Network::DetachFromVlan(Address endpoint, VlanId vlan) {
  if (Endpoint* e = FindEndpoint(endpoint)) {
    e->vlans_.erase(vlan);
  }
}

void Network::DetachFromAllVlans(Address endpoint) {
  if (Endpoint* e = FindEndpoint(endpoint)) {
    e->vlans_.clear();
  }
}

bool Network::InjectFrame(Message message, VlanId tag) {
  Endpoint* receiver = FindEndpoint(message.dst);
  if (receiver == nullptr || tag == 0 || !receiver->InVlan(tag) ||
      !LinkUp(message.dst)) {
    ++total_drops_;
    obs::CountById(sim_, Ids().injected_dropped);
    return false;
  }
  // Boxed before the coroutine boundary for the same GCC 12 reason as
  // Endpoint::Send (see the header note there).
  sim_.Spawn(InjectBoxed(receiver, MessageBox(std::move(message)), tag));
  return true;
}

sim::Task Network::InjectBoxed(Endpoint* receiver, MessageBox message,
                               VlanId tag) {
  const NetMetricIds& ids = Ids();
  const double wire_bytes = static_cast<double>(message->EffectiveWireBytes());
  DemandList demands;
  demands.push_back(WeightedDemand{&receiver->rx_, wire_bytes});
  co_await ConsumeAllWeighted(sim_, std::move(demands));
  // Delivery-time re-check, mirroring the in-flight drop rule of the
  // local send path: the port may have left the VLAN or lost its link
  // while the bytes were clearing the NIC.
  if (!receiver->InVlan(tag) || !LinkUp(receiver->address())) {
    ++total_drops_;
    obs::CountById(sim_, ids.dropped_in_flight);
    co_return;
  }
  ++injected_frames_;
  obs::CountById(sim_, ids.injected);
#if BOLTED_OBS
  if (obs::Registry* r = sim_.observer()) {
    const auto bytes = message->EffectiveWireBytes();
    r->AddById(ids.forwarded, 1);
    r->RecordById(ids.frame_bytes, bytes);
    r->AddById(receiver->rx_bytes_metric_, bytes);
  }
#endif
  if (sniffer_) {
    sniffer_(tag, *message);
  }
  receiver->inbox_.Send(std::move(*message));
}

bool Network::Reachable(Address a, Address b) const {
  return SharedVlan(a, b) != 0;
}

VlanId Network::SharedVlan(Address a, Address b) const {
  if (a >= endpoint_index_.size() || b >= endpoint_index_.size() ||
      endpoint_index_[a] == nullptr || endpoint_index_[b] == nullptr) {
    return 0;
  }
  return VlanSet::LowestShared(endpoint_index_[a]->vlans(),
                               endpoint_index_[b]->vlans());
}

}  // namespace bolted::net
