#include "src/net/network.h"

#include <cstdlib>
#include <string_view>
#include <utility>

#include "src/net/pcap.h"
#include "src/obs/obs.h"

namespace bolted::net {
namespace {

// Fixed frame-path metric names, interned once per process so the send
// coroutine records through ids (no hashing, no string temporaries).
struct NetMetricIds {
  uint32_t dropped_isolation = obs::InternMetric("net.frames.dropped_isolation");
  uint32_t fault_dropped = obs::InternMetric("net.frames.fault_dropped");
  uint32_t fault_delayed = obs::InternMetric("net.frames.fault_delayed");
  uint32_t fault_extra_delay = obs::InternMetric("net.fault_extra_delay");
  uint32_t dropped_in_flight = obs::InternMetric("net.frames.dropped_in_flight");
  uint32_t forwarded = obs::InternMetric("net.frames.forwarded");
  uint32_t frame_bytes = obs::InternMetric("net.frame_bytes");
  uint32_t fault_duplicated = obs::InternMetric("net.frames.fault_duplicated");
  uint32_t injected = obs::InternMetric("net.frames.injected");
  uint32_t injected_dropped = obs::InternMetric("net.frames.injected_dropped");
};

const NetMetricIds& Ids() {
  static const NetMetricIds ids;
  return ids;
}

// splitmix64 finalizer — the same mixing family the kernel trace digest
// uses, so frame tags have full avalanche.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

inline uint64_t HashBytes(const void* data, size_t size) {
  // FNV-1a 64.
  const auto* p = static_cast<const uint8_t*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < size; ++i) {
    h = (h ^ p[i]) * 0x100000001b3ull;
  }
  return h;
}

uint64_t FrameTag(VlanId vlan, const Message& m) {
  uint64_t h = Mix64(0x6672616d65ull ^ m.src);  // "frame"
  h = Mix64(h ^ m.dst);
  h = Mix64(h ^ vlan);
  h = Mix64(h ^ m.EffectiveWireBytes());
  h = Mix64(h ^ HashBytes(m.kind.data(), m.kind.size()));
  h = Mix64(h ^ HashBytes(m.payload.data(), m.payload.size()));
  h = Mix64(h ^ ((m.rpc_id << 1) | (m.rpc_response ? 1u : 0u)));
  return h;
}

ForwardPath DefaultForwardPath() {
  const char* env = std::getenv("BOLTED_NET_PATH");
  if (env != nullptr && std::string_view(env) == "generic") {
    return ForwardPath::kGeneric;
  }
  return ForwardPath::kBurst;
}

}  // namespace

Endpoint::Endpoint(sim::Simulation& sim, Network& network, Address address,
                   std::string name, double bandwidth_bytes_per_second)
    : sim_(sim),
      network_(network),
      address_(address),
      name_(std::move(name)),
      tx_(sim, bandwidth_bytes_per_second, name_ + ".tx"),
      rx_(sim, bandwidth_bytes_per_second, name_ + ".rx"),
      inbox_(sim),
      tx_bytes_metric_(obs::InternMetric("net.link." + name_ + ".tx_bytes")),
      rx_bytes_metric_(obs::InternMetric("net.link." + name_ + ".rx_bytes")) {}

// Plain (non-coroutine) shim: boxes the aggregate before the coroutine
// boundary — see the header note on the GCC 12 parameter-copy bug.  The
// box is pooled, so in the steady state this allocates nothing.
sim::Task Endpoint::Send(Address dst, Message message) {
  return SendBoxed(dst, MessageBox(std::move(message)));
}

// Dispatcher: both implementations produce identical frame timings and
// frame digests; they differ only in per-frame host cost (and in kernel
// event structure, which is why the cross-path invariant is the frame
// digest, not the kernel (when, seq) digest).
sim::Task Endpoint::SendBoxed(Address dst, MessageBox message) {
  if (network_.forward_path_ == ForwardPath::kGeneric) {
    return SendBoxedGeneric(dst, std::move(message));
  }
  return AwaitFlight(dst, std::move(message));
}

// Burst-path awaited send: the synchronous flight engine does all the
// work; this frame only exists to signal the caller at the delivery (or
// drop) instant.  Lazily started like every Task, so StartFlight runs at
// the same point in the event stream as the generic coroutine's body.
sim::Task Endpoint::AwaitFlight(Address dst, MessageBox message) {
  sim::Event done(sim_);
  network_.StartFlight(this, dst, std::move(message), &done);
  co_await done;
}

sim::Task Endpoint::SendBoxedGeneric(Address dst, MessageBox message) {
  message->src = address_;
  message->dst = dst;
  ++messages_sent_;
  // One static-guard check per frame, not one per metric operation.
  const NetMetricIds& ids = Ids();

  Endpoint* receiver = network_.FindEndpoint(dst);
  const VlanId vlan =
      receiver == nullptr
          ? 0
          : VlanSet::LowestShared(vlans_, receiver->vlans_);
  if (vlan == 0 || !network_.LinkUp(address_) || !network_.LinkUp(dst)) {
    ++messages_dropped_;
    ++network_.total_drops_;
    obs::CountById(sim_, ids.dropped_isolation);
    co_return;
  }

  // Fault injection at switch ingress: the frame can die here (before it
  // occupies the receiver's NIC), pick up extra delay, or be duplicated.
  FrameFault fault;
  if (network_.fault_filter_) {
    fault = network_.fault_filter_(*message);
    if (fault.drop) {
      ++messages_dropped_;
      ++network_.total_drops_;
      ++network_.fault_drops_;
      obs::CountById(sim_, ids.fault_dropped);
      co_return;
    }
    if (fault.extra_delay > sim::Duration::Zero()) {
      obs::CountById(sim_, ids.fault_delayed);
      obs::RecordDurationById(sim_, ids.fault_extra_delay, fault.extra_delay);
    }
  }

  const double wire_bytes = static_cast<double>(message->EffectiveWireBytes());
  DemandList demands;
  demands.push_back(WeightedDemand{&tx_, wire_bytes});
  demands.push_back(WeightedDemand{&receiver->rx_, wire_bytes});
  // Cross-switch frames also traverse the top-of-rack uplinks.
  const int src_switch = network_.SwitchOf(address_);
  const int dst_switch = network_.SwitchOf(dst);
  if (src_switch != dst_switch) {
    if (src_switch != 0) {
      demands.push_back(WeightedDemand{&network_.uplink(src_switch), wire_bytes});
    }
    if (dst_switch != 0) {
      demands.push_back(WeightedDemand{&network_.uplink(dst_switch), wire_bytes});
    }
  }
  co_await ConsumeAllWeighted(sim_, std::move(demands));
  co_await sim::Delay(sim_, network_.propagation_latency() + fault.extra_delay);

  // Re-check reachability at delivery time: HIL may have moved ports (or a
  // link may have dropped) while the frame was in flight.
  if (VlanSet::LowestShared(vlans_, receiver->vlans_) == 0 ||
      !network_.LinkUp(address_) || !network_.LinkUp(dst)) {
    ++messages_dropped_;
    ++network_.total_drops_;
    obs::CountById(sim_, ids.dropped_in_flight);
    co_return;
  }
#if BOLTED_OBS
  // Forwarded-frame accounting: totals, size distribution, and per-link
  // byte counters keyed on the endpoint names (the "per-port ifconfig" of
  // the simulated switch).  All ids were interned at attach time, so this
  // block neither hashes nor builds metric-name strings.
  if (obs::Registry* r = sim_.observer()) {
    const auto bytes = message->EffectiveWireBytes();
    r->AddById(ids.forwarded, 1 + static_cast<uint64_t>(fault.duplicates));
    r->RecordById(ids.frame_bytes, bytes);
    r->AddById(tx_bytes_metric_, bytes);
    r->AddById(receiver->rx_bytes_metric_,
               bytes * (1 + static_cast<uint64_t>(fault.duplicates)));
  }
#endif
  // A duplicating switch delivers extra copies of the same frame; each copy
  // is provider-visible traffic, so the sniffer sees all of them.
  for (int copy = 0; copy < fault.duplicates; ++copy) {
    ++network_.fault_duplicates_;
    obs::CountById(sim_, ids.fault_duplicated);
    network_.RecordDelivery(this, receiver, vlan, *message);
    if (network_.sniffer_) {
      network_.sniffer_(vlan, *message);
    }
    receiver->inbox_.Send(*message);
  }
  network_.RecordDelivery(this, receiver, vlan, *message);
  if (network_.sniffer_) {
    network_.sniffer_(vlan, *message);
  }
  receiver->inbox_.Send(std::move(*message));
}

void Network::SetLinkUp(Address endpoint, bool up) {
  if (endpoint >= link_down_.size()) {
    if (up) {
      return;  // unknown links default to up
    }
    link_down_.resize(endpoint + 1, 0);
  }
  link_down_[endpoint] = up ? 0 : 1;
  BumpTopologyEpoch();  // link flap: flow-cached link verdicts are stale
}

void Endpoint::Post(Address dst, Message message) {
  if (network_.forward_path_ == ForwardPath::kBurst) {
    // Fire-and-forget on the fast path needs no coroutine at all: the
    // flight engine runs synchronously here, exactly where the generic
    // path's Spawn would have started the send coroutine.
    network_.StartFlight(this, dst, MessageBox(std::move(message)), nullptr);
    return;
  }
  sim_.Spawn(Send(dst, std::move(message)));
}

Network::Network(sim::Simulation& sim, sim::Duration propagation_latency,
                 double default_bandwidth_bytes_per_second)
    : sim_(sim),
      latency_(propagation_latency),
      default_bandwidth_(default_bandwidth_bytes_per_second),
      forward_path_(DefaultForwardPath()) {}

Endpoint& Network::CreateEndpoint(const std::string& name) {
  return CreateEndpoint(name, default_bandwidth_);
}

Endpoint& Network::CreateEndpoint(const std::string& name,
                                  double bandwidth_bytes_per_second) {
  const Address address = next_address_++;
  auto endpoint = std::make_unique<Endpoint>(sim_, *this, address, name,
                                             bandwidth_bytes_per_second);
  Endpoint& ref = *endpoint;
  endpoints_.emplace(address, std::move(endpoint));
  // emplace keeps the first binding, so duplicate names keep resolving to
  // the earliest-created endpoint (what the old linear scan returned).
  endpoints_by_name_.emplace(name, address);
  // Index slot `address` exactly (SetLinkUp may have grown link_down_ past
  // the created range already, so push_back would misalign).
  if (endpoint_index_.size() <= address) {
    endpoint_index_.resize(address + 1, nullptr);
    switch_index_.resize(address + 1, 0);
  }
  if (link_down_.size() <= address) {
    link_down_.resize(address + 1, 0);
  }
  endpoint_index_[address] = &ref;
  switch_index_[address] = 0;
  // A previously unknown address can now resolve: negative flow-cache
  // entries for it are stale.
  BumpTopologyEpoch();
  return ref;
}

Endpoint& Network::CreateEndpointOnSwitch(const std::string& name, int switch_id) {
  Endpoint& endpoint = CreateEndpoint(name);
  switch_index_[endpoint.address()] = switch_id;
  return endpoint;
}

int Network::AddSwitch(double uplink_bandwidth_bytes_per_second) {
  uplinks_.push_back(std::make_unique<SharedResource>(
      sim_, uplink_bandwidth_bytes_per_second,
      "uplink-" + std::to_string(uplinks_.size() + 1)));
  return static_cast<int>(uplinks_.size());
}

SharedResource& Network::uplink(int switch_id) {
  return *uplinks_.at(static_cast<size_t>(switch_id - 1));
}

void Network::AssignToSwitch(Address endpoint, int switch_id) {
  if (endpoint < switch_index_.size()) {
    switch_index_[endpoint] = switch_id;
    BumpTopologyEpoch();  // HIL port move: cached uplink routes are stale
  }
}

int Network::SwitchOf(Address endpoint) const {
  return endpoint < switch_index_.size() ? switch_index_[endpoint] : 0;
}

Endpoint* Network::FindEndpoint(Address address) {
  return address < endpoint_index_.size() ? endpoint_index_[address] : nullptr;
}

Endpoint* Network::FindByName(const std::string& name) {
  const auto it = endpoints_by_name_.find(name);
  return it == endpoints_by_name_.end() ? nullptr : FindEndpoint(it->second);
}

void Network::AttachToVlan(Address endpoint, VlanId vlan) {
  if (Endpoint* e = FindEndpoint(endpoint)) {
    e->vlans_.insert(vlan);
    BumpTopologyEpoch();  // VLAN membership change
  }
}

void Network::DetachFromVlan(Address endpoint, VlanId vlan) {
  if (Endpoint* e = FindEndpoint(endpoint)) {
    e->vlans_.erase(vlan);
    BumpTopologyEpoch();
  }
}

void Network::DetachFromAllVlans(Address endpoint) {
  if (Endpoint* e = FindEndpoint(endpoint)) {
    e->vlans_.clear();
    BumpTopologyEpoch();
  }
}

bool Network::InjectFrame(Message message, VlanId tag) {
  Endpoint* receiver = FindEndpoint(message.dst);
  if (receiver == nullptr || tag == 0 || !receiver->InVlan(tag) ||
      !LinkUp(message.dst)) {
    ++total_drops_;
    obs::CountById(sim_, Ids().injected_dropped);
    return false;
  }
  if (forward_path_ == ForwardPath::kBurst) {
    // Ingress rides the same flight engine as local frames, so merged
    // metrics (forwarded count, size histogram, per-link rx bytes), the
    // frame digest, and any pcap tap see a cross-shard hop exactly like a
    // local one.
    StartInjectFlight(receiver, MessageBox(std::move(message)), tag);
    return true;
  }
  // Boxed before the coroutine boundary for the same GCC 12 reason as
  // Endpoint::Send (see the header note there).
  sim_.Spawn(InjectBoxed(receiver, MessageBox(std::move(message)), tag));
  return true;
}

sim::Task Network::InjectBoxed(Endpoint* receiver, MessageBox message,
                               VlanId tag) {
  const NetMetricIds& ids = Ids();
  const double wire_bytes = static_cast<double>(message->EffectiveWireBytes());
  DemandList demands;
  demands.push_back(WeightedDemand{&receiver->rx_, wire_bytes});
  co_await ConsumeAllWeighted(sim_, std::move(demands));
  // Delivery-time re-check, mirroring the in-flight drop rule of the
  // local send path: the port may have left the VLAN or lost its link
  // while the bytes were clearing the NIC.
  if (!receiver->InVlan(tag) || !LinkUp(receiver->address())) {
    ++total_drops_;
    obs::CountById(sim_, ids.dropped_in_flight);
    co_return;
  }
  ++injected_frames_;
  obs::CountById(sim_, ids.injected);
#if BOLTED_OBS
  if (obs::Registry* r = sim_.observer()) {
    const auto bytes = message->EffectiveWireBytes();
    r->AddById(ids.forwarded, 1);
    r->RecordById(ids.frame_bytes, bytes);
    r->AddById(receiver->rx_bytes_metric_, bytes);
  }
#endif
  RecordDelivery(nullptr, receiver, tag, *message);
  if (sniffer_) {
    sniffer_(tag, *message);
  }
  receiver->inbox_.Send(std::move(*message));
}

// --- Burst fast path (DESIGN.md §15) ----------------------------------------

void Network::StartFlight(Endpoint* sender, Address dst, MessageBox box,
                          sim::Event* done) {
  Message& m = *box;
  m.src = sender->address_;
  m.dst = dst;
  ++sender->messages_sent_;
  const NetMetricIds& ids = Ids();

  // Flow-cache lookup: a hit skips the endpoint/switch lookups and the
  // VLAN word-AND scan entirely.  Misses (first contact or any topology
  // mutation since) refill in place.
  Endpoint::FlowCacheEntry& slot =
      sender->flow_cache_[dst & (Endpoint::kFlowCacheSlots - 1)];
  if (slot.dst != dst || slot.epoch != topology_epoch_) {
    Endpoint* receiver = FindEndpoint(dst);
    slot.dst = dst;
    slot.epoch = topology_epoch_;
    slot.receiver = receiver;
    slot.vlan = receiver == nullptr
                    ? 0
                    : VlanSet::LowestShared(sender->vlans_, receiver->vlans_);
    slot.deliverable =
        slot.vlan != 0 && LinkUp(sender->address_) && LinkUp(dst);
    slot.src_switch = SwitchOf(sender->address_);
    slot.dst_switch = SwitchOf(dst);
  }
  if (!slot.deliverable) {
    ++sender->messages_dropped_;
    ++total_drops_;
    obs::CountById(sim_, ids.dropped_isolation);
    if (done != nullptr) {
      done->Set();
    }
    return;
  }

  // Fault injection at switch ingress — same probe point (and thus the
  // same rng draw order) as the generic coroutine.
  FrameFault fault;
  if (fault_filter_) {
    fault = fault_filter_(m);
    if (fault.drop) {
      ++sender->messages_dropped_;
      ++total_drops_;
      ++fault_drops_;
      obs::CountById(sim_, ids.fault_dropped);
      if (done != nullptr) {
        done->Set();
      }
      return;
    }
    if (fault.extra_delay > sim::Duration::Zero()) {
      obs::CountById(sim_, ids.fault_delayed);
      obs::RecordDurationById(sim_, ids.fault_extra_delay, fault.extra_delay);
    }
  }

  Flight* flight = AcquireFlight();
  flight->box = std::move(box);
  flight->sender = sender;
  flight->receiver = slot.receiver;
  flight->done = done;
  flight->extra_delay = fault.extra_delay;
  flight->epoch = topology_epoch_;
  flight->vlan = slot.vlan;
  flight->duplicates = static_cast<int16_t>(fault.duplicates);
  flight->injected = false;

  const double wire_bytes =
      static_cast<double>(flight->box->EffectiveWireBytes());
  SharedResource* demands[4];
  int count = 0;
  if (wire_bytes > 0) {
    // Same registration order as the generic path (tx, rx, then uplinks):
    // per-resource job seq numbers tie-break simultaneous completions.
    demands[count++] = &sender->tx_;
    demands[count++] = &slot.receiver->rx_;
    if (slot.src_switch != slot.dst_switch) {
      if (slot.src_switch != 0) {
        demands[count++] = uplinks_[slot.src_switch - 1].get();
      }
      if (slot.dst_switch != 0) {
        demands[count++] = uplinks_[slot.dst_switch - 1].get();
      }
    }
  }
  flight->pending = static_cast<int16_t>(count);
  if (count == 0) {
    CompleteFlight(flight);
    return;
  }
  // `pending` is preset to the full demand count, so a sub-epsilon amount
  // completing synchronously inside ConsumeAsync cannot finish the flight
  // before every demand is registered.
  const uint64_t token = flight->pool_index;
  for (int i = 0; i < count; ++i) {
    demands[i]->ConsumeAsync(wire_bytes, this, token);
  }
}

void Network::StartInjectFlight(Endpoint* receiver, MessageBox box,
                                VlanId tag) {
  Flight* flight = AcquireFlight();
  flight->box = std::move(box);
  flight->sender = nullptr;
  flight->receiver = receiver;
  flight->done = nullptr;
  flight->extra_delay = sim::Duration::Zero();
  flight->epoch = topology_epoch_;
  flight->vlan = tag;
  flight->duplicates = 0;
  flight->injected = true;

  const double wire_bytes =
      static_cast<double>(flight->box->EffectiveWireBytes());
  if (wire_bytes <= 0) {
    flight->pending = 0;
    CompleteFlight(flight);
    return;
  }
  flight->pending = 1;
  receiver->rx_.ConsumeAsync(wire_bytes, this, flight->pool_index);
}

Network::Flight* Network::AcquireFlight() {
  if (flight_free_.empty()) {
    flight_arena_.emplace_back();
    flight_arena_.back().pool_index =
        static_cast<uint32_t>(flight_arena_.size() - 1);
    return &flight_arena_.back();
  }
  const uint32_t index = flight_free_.back();
  flight_free_.pop_back();
  return &flight_arena_[index];
}

void Network::FinishFlight(Flight* flight) {
  if (flight->done != nullptr) {
    flight->done->Set();
    flight->done = nullptr;
  }
  // Hand the pooled message back; the arena slot is reusable immediately.
  { MessageBox discard(std::move(flight->box)); }
  flight_free_.push_back(flight->pool_index);
}

void Network::OnConsumeComplete(uint64_t token) {
  Flight* flight = &flight_arena_[static_cast<size_t>(token)];
  if (--flight->pending > 0) {
    return;  // another NIC/uplink demand is still draining
  }
  CompleteFlight(flight);
}

void Network::CompleteFlight(Flight* flight) {
  // Injected frames already paid their propagation as shard lookahead, so
  // they deliver at the completion instant, like the generic ingress path.
  const sim::Duration delay =
      flight->injected ? sim::Duration::Zero()
                       : latency_ + flight->extra_delay;
  if (delay <= sim::Duration::Zero()) {
    // Run-to-completion: the hop is due at this very instant — deliver
    // inline instead of a scheduler round-trip.
    BurstStats stats;
    stats.registry = sim_.observer();
    DeliverFlight(flight, stats);
    FlushBurstStats(stats);
    PumpReceivers();
    return;
  }
  if (flight->extra_delay > sim::Duration::Zero()) {
    // Fault-delayed frames get their own event: their dues are not
    // monotone with the delivery ring.
    sim_.Schedule(delay, [this, flight]() {
      BurstStats stats;
      stats.registry = sim_.observer();
      DeliverFlight(flight, stats);
      FlushBurstStats(stats);
      PumpReceivers();
    });
    return;
  }
  EnqueueDelivery(flight, sim_.now() + delay);
}

void Network::EnqueueDelivery(Flight* flight, sim::Time due) {
  delivery_ring_.push_back(DeliveryRecord{flight, due});
  if (!delivery_event_pending_) {
    delivery_event_pending_ = true;
    sim_.Schedule(due - sim_.now(), [this]() {
      delivery_event_pending_ = false;
      DrainDeliveries();
    });
  }
}

// Burst dispatch: one event drains every delivery due at this instant.
// The per-frame loop only copies the message into the inbox and updates
// the local stats struct; observer lookup, counter flushes, and receiver
// wake-ups are hoisted out of it.
void Network::DrainDeliveries() {
  const sim::Time now = sim_.now();
  BurstStats stats;
  stats.registry = sim_.observer();
  while (!delivery_ring_.empty() && delivery_ring_.front().due <= now) {
    Flight* flight = delivery_ring_.front().flight;
    delivery_ring_.pop_front();
    DeliverFlight(flight, stats);
  }
  FlushBurstStats(stats);
  PumpReceivers();
  if (!delivery_ring_.empty() && !delivery_event_pending_) {
    delivery_event_pending_ = true;
    sim_.Schedule(delivery_ring_.front().due - now, [this]() {
      delivery_event_pending_ = false;
      DrainDeliveries();
    });
  }
}

void Network::DeliverFlight(Flight* flight, BurstStats& stats) {
  Endpoint* receiver = flight->receiver;
  Message& m = *flight->box;
  // Delivery-time re-check: if the topology epoch is untouched since send
  // time, the send-time verdict still holds and the whole scan is
  // skipped.  Otherwise recompute exactly what the generic path checks.
  bool deliverable = flight->epoch == topology_epoch_;
  if (!deliverable) {
    if (flight->injected) {
      deliverable =
          receiver->InVlan(flight->vlan) && LinkUp(receiver->address_);
    } else {
      deliverable =
          VlanSet::LowestShared(flight->sender->vlans_, receiver->vlans_) !=
              0 &&
          LinkUp(flight->sender->address_) && LinkUp(receiver->address_);
    }
  }
  if (!deliverable) {
    ++total_drops_;
    if (!flight->injected) {
      ++flight->sender->messages_dropped_;
    }
    obs::CountById(sim_, Ids().dropped_in_flight);
    FinishFlight(flight);
    return;
  }

  const uint64_t bytes = m.EffectiveWireBytes();
  const auto copies = static_cast<uint64_t>(1 + flight->duplicates);
  if (flight->injected) {
    ++injected_frames_;
    ++stats.injected;
    ++stats.forwarded;
  } else {
    stats.forwarded += copies;
    stats.duplicated += static_cast<uint64_t>(flight->duplicates);
    fault_duplicates_ += static_cast<uint64_t>(flight->duplicates);
  }
  if (stats.registry != nullptr) {
    stats.registry->RecordById(Ids().frame_bytes, bytes);
    if (!flight->injected) {
      // Per-link byte totals accumulate run-length: consecutive frames on
      // the same link (the common burst shape) flush once.
      if (stats.tx_id != flight->sender->tx_bytes_metric_) {
        if (stats.tx_bytes != 0) {
          stats.registry->AddById(stats.tx_id, stats.tx_bytes);
        }
        stats.tx_id = flight->sender->tx_bytes_metric_;
        stats.tx_bytes = 0;
      }
      stats.tx_bytes += bytes;
    }
    if (stats.rx_id != receiver->rx_bytes_metric_) {
      if (stats.rx_bytes != 0) {
        stats.registry->AddById(stats.rx_id, stats.rx_bytes);
      }
      stats.rx_id = receiver->rx_bytes_metric_;
      stats.rx_bytes = 0;
    }
    stats.rx_bytes += bytes * copies;
  }

  for (int16_t copy = 0; copy < flight->duplicates; ++copy) {
    RecordDelivery(flight->sender, receiver, flight->vlan, m);
    if (sniffer_) {
      sniffer_(flight->vlan, m);
    }
    receiver->inbox_.Enqueue(m);
  }
  RecordDelivery(flight->sender, receiver, flight->vlan, m);
  if (sniffer_) {
    sniffer_(flight->vlan, m);
  }
  receiver->inbox_.Enqueue(std::move(m));
  QueueForPump(receiver);
  FinishFlight(flight);
}

void Network::FlushBurstStats(BurstStats& stats) {
  if (stats.registry == nullptr) {
    return;
  }
  const NetMetricIds& ids = Ids();
  if (stats.forwarded != 0) {
    stats.registry->AddById(ids.forwarded, stats.forwarded);
  }
  if (stats.duplicated != 0) {
    stats.registry->AddById(ids.fault_duplicated, stats.duplicated);
  }
  if (stats.injected != 0) {
    stats.registry->AddById(ids.injected, stats.injected);
  }
  if (stats.tx_bytes != 0) {
    stats.registry->AddById(stats.tx_id, stats.tx_bytes);
  }
  if (stats.rx_bytes != 0) {
    stats.registry->AddById(stats.rx_id, stats.rx_bytes);
  }
}

void Network::QueueForPump(Endpoint* receiver) {
  if (!receiver->queued_for_pump_) {
    receiver->queued_for_pump_ = true;
    pump_list_.push_back(receiver);
  }
}

// Phase 2 of a burst: resume inbox waiters, inline.  The reentrancy guard
// turns what would be recursion (a resumed receiver Posts a zero-latency
// frame, whose inline delivery queues another receiver, ...) into
// iteration over the growing pump list, so stack depth stays constant no
// matter how long a same-instant chain runs.
void Network::PumpReceivers() {
  if (pumping_) {
    return;
  }
  pumping_ = true;
  for (size_t i = 0; i < pump_list_.size(); ++i) {
    Endpoint* receiver = pump_list_[i];
    receiver->queued_for_pump_ = false;
    receiver->inbox_.PumpWaiters();
  }
  pump_list_.clear();
  pumping_ = false;
}

void Network::RecordDelivery(Endpoint* sender, Endpoint* receiver,
                             VlanId vlan, const Message& message) {
  ++frames_delivered_;
  FoldFrameDigest(vlan, message);
  PcapWriter* sender_tap = sender != nullptr ? sender->pcap_tap_ : nullptr;
  if (sender_tap != nullptr) {
    sender_tap->WriteFrame(sim_.now(), vlan, message);
  }
  if (receiver->pcap_tap_ != nullptr && receiver->pcap_tap_ != sender_tap) {
    receiver->pcap_tap_->WriteFrame(sim_.now(), vlan, message);
  }
}

void Network::FoldFrameDigest(VlanId vlan, const Message& message) {
  const sim::Time now = sim_.now();
  if (now != frame_digest_instant_) {
    SealFrameInstant();
    frame_digest_instant_ = now;
  }
  frame_digest_acc_ += FrameTag(vlan, message);
  ++frame_digest_count_;
}

void Network::SealFrameInstant() {
  if (frame_digest_count_ == 0) {
    return;
  }
  uint64_t h = frame_digest_rolling_;
  h = Mix64(h ^ static_cast<uint64_t>(frame_digest_instant_.nanoseconds()));
  h = Mix64(h ^ frame_digest_acc_);
  h = Mix64(h ^ frame_digest_count_);
  frame_digest_rolling_ = h;
  frame_digest_acc_ = 0;
  frame_digest_count_ = 0;
}

uint64_t Network::frame_digest() const {
  uint64_t h = frame_digest_rolling_;
  if (frame_digest_count_ != 0) {
    h = Mix64(h ^ static_cast<uint64_t>(frame_digest_instant_.nanoseconds()));
    h = Mix64(h ^ frame_digest_acc_);
    h = Mix64(h ^ frame_digest_count_);
  }
  return h;
}

void Network::AttachPcapTap(Address endpoint, PcapWriter* writer) {
  if (Endpoint* e = FindEndpoint(endpoint)) {
    e->pcap_tap_ = writer;
  }
}

void Network::DetachPcapTap(Address endpoint) {
  if (Endpoint* e = FindEndpoint(endpoint)) {
    e->pcap_tap_ = nullptr;
  }
}

bool Network::Reachable(Address a, Address b) const {
  return SharedVlan(a, b) != 0;
}

VlanId Network::SharedVlan(Address a, Address b) const {
  if (a >= endpoint_index_.size() || b >= endpoint_index_.size() ||
      endpoint_index_[a] == nullptr || endpoint_index_[b] == nullptr) {
    return 0;
  }
  return VlanSet::LowestShared(endpoint_index_[a]->vlans(),
                               endpoint_index_[b]->vlans());
}

}  // namespace bolted::net
