// Wire protocol for content-addressed chunk distribution (DESIGN.md §14).
//
// Four RPC kinds move image chunks around a rack:
//   chunk.manifest  node -> BMI        image name -> chunk manifest
//   chunk.fetch     node -> rack cache digest -> inline serve or a peer
//                                      redirect (the cache decides)
//   chunk.get       node -> peer node  digest -> the peer echoes the
//                                      digest of what it actually serves;
//                                      the requester verifies it
//   chunk.have      node -> rack cache after a verified fetch, register
//                                      as a holder for peer exchange
//
// Responses model bulk content through Message::wire_bytes (the fabric
// charges NIC/uplink time for them); the digest echo is the verification
// surface — a corrupt peer echoes the digest of the garbage it served,
// which is exactly what recomputing SHA-256 over received content would
// yield.

#ifndef SRC_NET_CHUNK_WIRE_H_
#define SRC_NET_CHUNK_WIRE_H_

#include <cstdint>
#include <string_view>

#include "src/crypto/sha256.h"
#include "src/net/message_pool.h"
#include "src/net/wire.h"

namespace bolted::net {

inline constexpr std::string_view kRpcChunkManifest = "chunk.manifest";
inline constexpr std::string_view kRpcChunkFetch = "chunk.fetch";
inline constexpr std::string_view kRpcChunkGet = "chunk.get";
inline constexpr std::string_view kRpcChunkHave = "chunk.have";

// chunk.fetch request: which chunk, how big, and (on a retry after a bad
// peer serve) which peer to exclude and quarantine.
struct ChunkFetchRequest {
  crypto::Digest digest{};
  uint64_t bytes = 0;
  Address exclude_peer = 0;  // 0: none

  crypto::Bytes Encode() const {
    return WireWriter().Digest(digest).U64(bytes).U64(exclude_peer).Take();
  }
  static bool Decode(crypto::ByteView data, ChunkFetchRequest* out) {
    WireReader reader(data);
    out->digest = reader.Digest();
    out->bytes = reader.U64();
    out->exclude_peer = static_cast<Address>(reader.U64());
    return reader.AtEnd();
  }
};

// chunk.fetch response.  kInlineHit/kInlineOrigin carry the chunk bytes
// on the wire; kRedirect names a rack peer that holds the chunk.
enum class ChunkFetchStatus : uint32_t {
  kInlineHit = 0,
  kInlineOrigin = 1,
  kRedirect = 2,
};

struct ChunkFetchResponse {
  ChunkFetchStatus status = ChunkFetchStatus::kInlineHit;
  Address peer = 0;           // kRedirect only
  crypto::Digest served{};    // digest of the served content (echo)

  crypto::Bytes Encode() const {
    return WireWriter()
        .U32(static_cast<uint32_t>(status))
        .U64(peer)
        .Digest(served)
        .Take();
  }
  static bool Decode(crypto::ByteView data, ChunkFetchResponse* out) {
    WireReader reader(data);
    out->status = static_cast<ChunkFetchStatus>(reader.U32());
    out->peer = static_cast<Address>(reader.U64());
    out->served = reader.Digest();
    return reader.AtEnd();
  }
};

}  // namespace bolted::net

#endif  // SRC_NET_CHUNK_WIRE_H_
