// Deterministic pcap export of simulated links.
//
// A PcapWriter appends classic-pcap records (nanosecond-resolution magic
// 0xa1b23c4d, LINKTYPE_ETHERNET) for frames a tapped port sends or
// receives, so isolation violations and ESP framing bugs can be inspected
// with wireshark/tcpdump.  Timestamps are *sim time*, and frames are
// written in delivery order — the capture is byte-identical across
// reruns, schedulers, and shard/worker counts (the same invariance the
// trace digests pin).
//
// Simulated messages are not Ethernet frames, so each record synthesizes
// a debuggable on-wire shape:
//
//   dst MAC  02:42:<dst address, 4 bytes BE>     (locally administered)
//   src MAC  02:42:<src address, 4 bytes BE>
//   802.1Q   0x8100, TCI = VLAN id               (the isolation tag)
//   type     0x88B5 (IEEE local experimental)
//   body     u8 kind_len, kind bytes, u8 flags (bit0 = rpc_response),
//            u64 rpc_id BE, u32 payload_len BE, payload bytes
//
// The record's orig_len reflects EffectiveWireBytes(), so bulk messages
// that model bytes without carrying them show their true wire size with a
// (standard) truncated capture; snaplen truncation composes on top.

#ifndef SRC_NET_PCAP_H_
#define SRC_NET_PCAP_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/net/message_pool.h"
#include "src/sim/time.h"

namespace bolted::net {

class PcapWriter {
 public:
  static constexpr uint32_t kDefaultSnaplen = 65535;

  PcapWriter() = default;
  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;
  ~PcapWriter();  // closes (best effort) if still open

  // Creates/truncates `path` and writes the global header.  Returns false
  // (and stays closed) if the file can't be opened or the header write
  // fails.
  bool Open(const std::string& path, uint32_t snaplen = kDefaultSnaplen);
  bool is_open() const { return file_ != nullptr; }

  // Appends one frame record.  Returns false when the writer is closed or
  // a previous write already failed; a failed write marks the writer so
  // no partial record is ever followed by another.
  bool WriteFrame(sim::Time when, VlanId vlan, const Message& message);

  // Flushes and closes.  On a prior partial write the file is truncated
  // back to the last complete record, and Close returns false.
  // Idempotent: a second Close (or Close without Open) returns false.
  bool Close();

  uint64_t frames_written() const { return frames_written_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint32_t snaplen() const { return snaplen_; }

 private:
  std::FILE* file_ = nullptr;
  bool failed_ = false;
  uint32_t snaplen_ = kDefaultSnaplen;
  uint64_t frames_written_ = 0;
  // Bytes known to be fully on disk buffers (header + whole records);
  // the truncation point after a partial write.
  uint64_t bytes_written_ = 0;
  std::vector<uint8_t> scratch_;  // record assembly buffer, capacity reused
};

}  // namespace bolted::net

#endif  // SRC_NET_PCAP_H_
