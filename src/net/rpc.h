// Request/response messaging over the simulated network.
//
// Every Bolted service (HIL, BMI, Keylime registrar/verifier, the iSCSI
// target) is an RpcNode: a dispatcher coroutine drains the endpoint inbox,
// routes responses to pending calls, and spawns a handler per request.
// Calls time out rather than hang when isolation (VLAN moves) silently
// drops traffic — which is exactly what happens to a server stuck in the
// airlock or the rejected pool.

#ifndef SRC_NET_RPC_H_
#define SRC_NET_RPC_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/net/network.h"
#include "src/sim/simulation.h"
#include "src/sim/task.h"

namespace bolted::net {

// Failure-handling policy for CallWithRetry.  Attempt n (1-based) that
// times out waits min(backoff_cap, backoff_base * 2^(n-1)), scaled by a
// uniform factor in [1 - jitter, 1], before retrying.  Jitter draws from
// the simulation Rng, so retry schedules stay seed-deterministic.
struct CallOptions {
  sim::Duration timeout = sim::Duration::Seconds(30);
  int max_attempts = 1;
  sim::Duration backoff_base = sim::Duration::Milliseconds(250);
  sim::Duration backoff_cap = sim::Duration::Seconds(8);
  double jitter = 0.5;
};

class RpcNode {
 public:
  // Handlers fill in *response (kind/payload/wire_bytes); correlation
  // fields are managed by the node.
  using Handler = std::function<sim::Task(const Message& request, Message* response)>;

  RpcNode(sim::Simulation& sim, Endpoint& endpoint);

  Endpoint& endpoint() { return endpoint_; }
  Address address() const { return endpoint_.address(); }

  void RegisterHandler(const std::string& kind, Handler handler);

  // Spawns the dispatcher; call once after registering handlers.
  void Start();

  // Issues a call; *ok is false on timeout (e.g. the peer is unreachable
  // after an isolation change).  Plain shim over CallBoxed (see
  // Endpoint::Send for the GCC 12 aggregate-parameter note).
  sim::Task Call(Address dst, Message request, Message* response, bool* ok,
                 sim::Duration timeout = sim::Duration::Seconds(30));

  // Call with timeout-and-retry under the given policy.  Each attempt
  // resends a fresh copy of the request (handlers must be idempotent — all
  // Bolted control-plane handlers are); *ok is false only after every
  // attempt timed out.
  sim::Task CallWithRetry(Address dst, Message request, Message* response,
                          bool* ok, CallOptions options);

  uint64_t call_timeouts() const { return call_timeouts_; }
  uint64_t call_retries() const { return call_retries_; }

 private:
  struct PendingCall {
    // Points at the completion event in CallBoxed's coroutine frame; valid
    // until that frame resumes, which is always after Set() (resumption
    // goes through the event queue).
    sim::Event* done = nullptr;
    Message* response = nullptr;
    bool* ok = nullptr;
  };

  sim::Task Dispatch();
  sim::Task HandleRequest(MessageBox request);
  sim::Task CallBoxed(Address dst, MessageBox request, Message* response,
                      bool* ok, sim::Duration timeout);
  sim::Task CallWithRetryBoxed(Address dst, MessageBox request,
                               Message* response, bool* ok, CallOptions options);
  // Interned id of "rpc.call_ns.<kind>", cached per node so traced calls
  // don't rebuild (or rehash) the concatenated metric name.
  uint32_t CallDurationMetric(const std::string& kind);

  sim::Simulation& sim_;
  Endpoint& endpoint_;
  std::map<std::string, Handler> handlers_;
  std::map<uint64_t, PendingCall> pending_;
  std::map<std::string, uint32_t, std::less<>> call_ns_ids_;
  uint64_t next_rpc_id_ = 1;
  bool started_ = false;
  uint64_t call_timeouts_ = 0;
  uint64_t call_retries_ = 0;
};

}  // namespace bolted::net

#endif  // SRC_NET_RPC_H_
