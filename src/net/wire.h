// Minimal wire-format serialization for protocol payloads.
//
// Big-endian integers, length-prefixed blobs/strings.  WireReader is
// fail-safe: any malformed field flips ok() and subsequent reads return
// zero values, so handlers can validate once at the end.

#ifndef SRC_NET_WIRE_H_
#define SRC_NET_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "src/crypto/bytes.h"
#include "src/crypto/sha256.h"

namespace bolted::net {

class WireWriter {
 public:
  WireWriter& U32(uint32_t v) {
    crypto::AppendU32(out_, v);
    return *this;
  }
  WireWriter& U64(uint64_t v) {
    crypto::AppendU64(out_, v);
    return *this;
  }
  WireWriter& Blob(crypto::ByteView data) {
    crypto::AppendU32(out_, static_cast<uint32_t>(data.size()));
    crypto::Append(out_, data);
    return *this;
  }
  WireWriter& Str(std::string_view s) {
    return Blob(crypto::ByteView(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
  }
  WireWriter& Digest(const crypto::Digest& d) {
    crypto::Append(out_, crypto::DigestView(d));
    return *this;
  }
  crypto::Bytes Take() { return std::move(out_); }

 private:
  crypto::Bytes out_;
};

class WireReader {
 public:
  explicit WireReader(crypto::ByteView data) : data_(data) {}

  // Fixed-width reads go through memcpy + byteswap: one unaligned load
  // and a bswap instruction instead of a byte-at-a-time shift loop.
  uint32_t U32() {
    if (!Require(4)) {
      return 0;
    }
    uint32_t v;
    std::memcpy(&v, data_.data(), sizeof(v));
    data_ = data_.subspan(4);
    return FromBigEndian32(v);
  }
  uint64_t U64() {
    if (!Require(8)) {
      return 0;
    }
    uint64_t v;
    std::memcpy(&v, data_.data(), sizeof(v));
    data_ = data_.subspan(8);
    return FromBigEndian64(v);
  }
  crypto::Bytes Blob() {
    const uint32_t size = U32();
    if (!Require(size)) {
      return {};
    }
    crypto::Bytes out(data_.begin(), data_.begin() + size);
    data_ = data_.subspan(size);
    return out;
  }
  // Reads the string straight out of the buffer — no intermediate Bytes.
  std::string Str() {
    const uint32_t size = U32();
    if (!Require(size)) {
      return {};
    }
    std::string out(reinterpret_cast<const char*>(data_.data()), size);
    data_ = data_.subspan(size);
    return out;
  }
  crypto::Digest Digest() {
    crypto::Digest d{};
    if (!Require(32)) {
      return d;
    }
    std::copy(data_.begin(), data_.begin() + 32, d.begin());
    data_ = data_.subspan(32);
    return d;
  }

  // True when every read so far was in bounds and the input is consumed.
  bool AtEnd() const { return ok_ && data_.empty(); }
  bool ok() const { return ok_; }

 private:
  // C++20 has no std::byteswap; on little-endian targets these lower to a
  // single bswap via the GCC/Clang builtins.
  static uint32_t FromBigEndian32(uint32_t v) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    return v;
#else
    return __builtin_bswap32(v);
#endif
  }
  static uint64_t FromBigEndian64(uint64_t v) {
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    return v;
#else
    return __builtin_bswap64(v);
#endif
  }

  bool Require(size_t n) {
    if (!ok_ || data_.size() < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  crypto::ByteView data_;
  bool ok_ = true;
};

}  // namespace bolted::net

#endif  // SRC_NET_WIRE_H_
