// Traffic shaping against provider-level traffic analysis (§6).
//
// VLAN isolation hides tenant traffic from *other tenants*, and ESP hides
// payload *content* from the provider — but the provider still sees frame
// sizes and timing.  The paper notes a tenant "can ... shape their
// traffic to resist traffic analysis from the provider."  This module
// implements the classic constant-rate cell shaper: application messages
// are segmented into fixed-size cells, padded, and emitted on a fixed
// clock, with chaff cells filling idle slots, so the observable channel
// is a constant stream regardless of what (or whether) the application
// sends.  The price is padding overhead and queueing latency — quantified
// by bench/ablation_shaping.

#ifndef SRC_NET_SHAPING_H_
#define SRC_NET_SHAPING_H_

#include <cstdint>

#include "src/net/ipsec.h"
#include "src/net/network.h"
#include "src/sim/ring_queue.h"

namespace bolted::net {

struct ShapingPolicy {
  uint64_t cell_bytes = 16 * 1024;
  // Cells emitted per second; cell_bytes * cell_rate is the constant
  // observable bandwidth (and the goodput ceiling).
  double cells_per_second = 4000.0;
};

// Number of cells a payload occupies.
uint64_t CellsFor(const ShapingPolicy& policy, uint64_t payload_bytes);
// Wire bytes actually emitted for a payload (always whole cells).
uint64_t PaddedBytes(const ShapingPolicy& policy, uint64_t payload_bytes);
// Padding overhead factor (>= 1).
double PaddingOverhead(const ShapingPolicy& policy, uint64_t payload_bytes);
// Time for the shaper clock to drain a payload queued behind
// `backlog_cells` cells.
sim::Duration DrainTime(const ShapingPolicy& policy, uint64_t payload_bytes,
                        uint64_t backlog_cells);

// A shaped, ESP-protected unidirectional channel between two endpoints.
// Every emitted frame has exactly cell_bytes of ciphertext on the wire —
// data cells and chaff cells are indistinguishable to the provider.
class ShapedChannel {
 public:
  ShapedChannel(sim::Simulation& sim, Endpoint& source, Address destination,
                IpsecContext& ipsec, const ShapingPolicy& policy);

  // Queues an application message (must already be sealed if secrecy is
  // wanted beyond the per-cell ESP layer).
  void Submit(crypto::Bytes payload);

  // Runs the shaper clock for `slots` ticks, emitting one cell per tick —
  // a data cell when the queue is non-empty, a chaff cell otherwise.
  sim::Task RunClock(uint64_t slots);

  uint64_t data_cells_sent() const { return data_cells_; }
  uint64_t chaff_cells_sent() const { return chaff_cells_; }
  uint64_t queued_cells() const;

 private:
  void EmitCell(crypto::ByteView plaintext_cell, bool chaff);

  sim::Simulation& sim_;
  Endpoint& source_;
  Address destination_;
  IpsecContext& ipsec_;
  ShapingPolicy policy_;
  // Segmented, padded cells.  A ring, not a deque: a busy shaper cycles
  // through its high-water capacity allocation-free (the same reasoning
  // as the Channel inboxes — see ring_queue.h).
  sim::RingQueue<crypto::Bytes> queue_;
  uint64_t data_cells_ = 0;
  uint64_t chaff_cells_ = 0;
  uint64_t chaff_counter_ = 0;
};

}  // namespace bolted::net

#endif  // SRC_NET_SHAPING_H_
