// Simulated L2 network with 802.1Q-style VLAN isolation.
//
// This models the provider's switching infrastructure that HIL drives
// (§5): endpoints (server NICs and service NICs) attach to switch ports;
// each port belongs to a set of VLANs; a frame is deliverable only when
// the source and destination ports share a VLAN.  Isolation is therefore
// structural — exactly the property the Hardware Isolation Layer
// manipulates to build enclaves, airlocks, and the rejected pool.
//
// Control-plane messages carry real bytes.  Delivery consumes the sender's
// TX and the receiver's RX NIC resources (fluid model), so concurrent
// traffic contends naturally.  A provider-level sniffer hook sees every
// delivered frame — used by tests and examples to demonstrate that only
// encryption (not VLANs) protects payloads from the provider itself.

#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <array>
#include <bit>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/crypto/bytes.h"
#include "src/net/message_pool.h"
#include "src/net/resource.h"
#include "src/sim/ring_queue.h"
#include "src/sim/simulation.h"
#include "src/sim/small_vec.h"
#include "src/sim/task.h"

namespace bolted::net {

class Network;
class PcapWriter;

// Forwarding implementation selector (DESIGN.md §15).  kBurst is the
// zero-copy flight engine: flow-cached lookups, callback-completed NIC
// demands, ring-batched delivery with run-to-completion for same-instant
// hops.  kGeneric is the original coroutine-per-frame path, kept as the
// semantic oracle that benches and the fast-path test battery replay
// against.  Default kBurst; override with BOLTED_NET_PATH=generic|burst.
enum class ForwardPath { kBurst, kGeneric };

// Switch-port VLAN membership as a bitset.  The per-frame reachability
// check (SharedVlan on the send and delivery paths) is a word-AND scan
// with an early exit — no tree walk, no per-frame allocation — and
// VLAN 0 keeps its "no VLAN" meaning because a zero result already means
// "none" to every caller.
class VlanSet {
 public:
  bool contains(VlanId vlan) const {
    const size_t word = vlan >> 6;
    return word < words_.size() && ((words_[word] >> (vlan & 63)) & 1) != 0;
  }
  void insert(VlanId vlan) {
    const size_t word = vlan >> 6;
    if (word >= words_.size()) {
      words_.resize(word + 1, 0);
    }
    const uint64_t bit = uint64_t{1} << (vlan & 63);
    count_ += static_cast<size_t>((words_[word] & bit) == 0);
    words_[word] |= bit;
  }
  void erase(VlanId vlan) {
    const size_t word = vlan >> 6;
    if (word >= words_.size()) {
      return;
    }
    const uint64_t bit = uint64_t{1} << (vlan & 63);
    count_ -= static_cast<size_t>((words_[word] & bit) != 0);
    words_[word] &= ~bit;
  }
  void clear() {
    words_.clear();
    count_ = 0;
  }
  bool empty() const { return count_ == 0; }
  size_t size() const { return count_; }

  // The lowest VLAN present in both sets, or 0 when the sets are disjoint.
  // The word array of each set only spans up to its highest member (HIL
  // hands out ids monotonically, so a typical endpoint needs one or two
  // words), and the scan stops at the shorter of the two.
  static VlanId LowestShared(const VlanSet& a, const VlanSet& b) {
    const size_t words = std::min(a.words_.size(), b.words_.size());
    for (size_t i = 0; i < words; ++i) {
      const uint64_t both = a.words_[i] & b.words_[i];
      if (both != 0) {
        return static_cast<VlanId>(i * 64 +
                                   static_cast<size_t>(std::countr_zero(both)));
      }
    }
    return 0;
  }

 private:
  // Bitset over VLAN ids, grown a 64-id word at a time up to the id
  // domain (VlanId is 16 bits, so at most 1024 words).
  std::vector<uint64_t> words_;
  size_t count_ = 0;
};

// Per-frame verdict from an installed fault filter (see
// Network::SetFaultFilter).  Defaults model a healthy fabric.
struct FrameFault {
  bool drop = false;              // frame dies in the switch
  int duplicates = 0;             // extra copies delivered after the original
  sim::Duration extra_delay{};    // added to propagation latency
};

// A NIC attached to a switch port.  Endpoint lifetime is managed by the
// Network.
class Endpoint {
 public:
  Endpoint(sim::Simulation& sim, Network& network, Address address, std::string name,
           double bandwidth_bytes_per_second);

  Address address() const { return address_; }
  const std::string& name() const { return name_; }

  // VLAN membership of this endpoint's switch port.
  const VlanSet& vlans() const { return vlans_; }
  bool InVlan(VlanId vlan) const { return vlans_.contains(vlan); }

  SharedResource& tx() { return tx_; }
  SharedResource& rx() { return rx_; }

  // Incoming messages, in delivery order.
  sim::Channel<Message>& inbox() { return inbox_; }

  // Sends a message, suspending until the bytes clear both NICs.  Returns
  // without delivering (silently dropped, counter bumped) when no shared
  // VLAN exists — i.e. isolation is enforced here.
  //
  // Implementation note: Message is an aggregate, and GCC 12 miscompiles
  // by-value aggregate parameters of coroutines (the frame copy is a
  // bitwise copy, aliasing the caller's SSO string buffers).  Send is
  // therefore a plain function that boxes the message — into a pooled
  // MessageBox, so the steady-state frame path is allocation-free —
  // before entering the coroutine (SendBoxed).
  sim::Task Send(Address dst, Message message);
  // Fire-and-forget variant.
  void Post(Address dst, Message message);

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_dropped() const { return messages_dropped_; }

 private:
  friend class Network;
  // RpcNode forwards already-boxed requests straight to SendBoxed, so a
  // call doesn't re-box per hop.
  friend class RpcNode;

  // Direct-mapped per-port flow cache, keyed on the destination address.
  // One entry memoizes everything the send path would otherwise recompute
  // per frame: the dense endpoint lookup, the VLAN word-AND scan, the
  // switch placement of both ports, and the combined link-state verdict.
  // An entry is valid only while its epoch matches the network's topology
  // epoch, which every HIL port move, VLAN membership change, link flap,
  // and endpoint creation bumps — so a hit can never serve a stale
  // isolation decision.
  static constexpr size_t kFlowCacheSlots = 8;
  struct FlowCacheEntry {
    Address dst = 0;
    uint64_t epoch = 0;  // valid iff == Network::topology_epoch_
    Endpoint* receiver = nullptr;
    VlanId vlan = 0;           // lowest shared VLAN at fill time (0: none)
    bool deliverable = false;  // vlan != 0 && both links up
    int32_t src_switch = 0;
    int32_t dst_switch = 0;
  };

  sim::Task SendBoxed(Address dst, MessageBox message);
  // The two implementations behind SendBoxed (see ForwardPath).
  sim::Task SendBoxedGeneric(Address dst, MessageBox message);
  sim::Task AwaitFlight(Address dst, MessageBox message);

  sim::Simulation& sim_;
  Network& network_;
  Address address_;
  std::string name_;
  VlanSet vlans_;
  SharedResource tx_;
  SharedResource rx_;
  sim::Channel<Message> inbox_;
  // Interned per-link byte-counter ids ("net.link.<name>.{tx,rx}_bytes"),
  // resolved once at attach time so the per-frame accounting in SendBoxed
  // never concatenates or hashes metric names.
  uint32_t tx_bytes_metric_;
  uint32_t rx_bytes_metric_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_dropped_ = 0;
  std::array<FlowCacheEntry, kFlowCacheSlots> flow_cache_;
  // Optional wire-level tap (src/net/pcap.h): every frame delivered to or
  // sent from this port is appended to the capture.
  PcapWriter* pcap_tap_ = nullptr;
  // Burst-delivery bookkeeping: true while this endpoint sits in the
  // network's pump list awaiting its post-burst inbox pump.
  bool queued_for_pump_ = false;
};

class Network : public ConsumeSink {
 public:
  // Called for every delivered frame (provider-visible traffic).
  using Sniffer = std::function<void(VlanId, const Message&)>;
  // Fault-injection hook (installed by bolted::faults): consulted once per
  // frame that passed the VLAN check at send time.  Must be deterministic
  // for a given seed — it runs inside the simulated event stream.
  using FaultFilter = std::function<FrameFault(const Message&)>;

  Network(sim::Simulation& sim, sim::Duration propagation_latency,
          double default_bandwidth_bytes_per_second);

  // --- Topology -----------------------------------------------------------
  // By default all ports share one switch.  AddSwitch() grows a star
  // topology: each top-of-rack switch has an uplink of the given
  // bandwidth to the core, and frames between ports on different
  // switches consume both uplinks — the classic oversubscription
  // bottleneck HIL's VLANs stretch across.
  //
  // Switch 0 always exists.  Returns the new switch id.
  int AddSwitch(double uplink_bandwidth_bytes_per_second);
  int num_switches() const { return static_cast<int>(uplinks_.size()) + 1; }
  // Uplink resource of a top-of-rack switch (1-based; switch 0 is the
  // core and has none).
  SharedResource& uplink(int switch_id);

  // Creates an endpoint attached to a fresh switch port with no VLANs.
  Endpoint& CreateEndpoint(const std::string& name);
  Endpoint& CreateEndpoint(const std::string& name, double bandwidth_bytes_per_second);
  Endpoint& CreateEndpointOnSwitch(const std::string& name, int switch_id);
  // Moves an existing port to another switch (provider recabling).
  void AssignToSwitch(Address endpoint, int switch_id);
  int SwitchOf(Address endpoint) const;

  Endpoint* FindEndpoint(Address address);
  // Name lookup through an index maintained by CreateEndpoint — O(log n),
  // not a scan.  Duplicate names resolve to the earliest-created endpoint,
  // matching the original linear search.
  Endpoint* FindByName(const std::string& name);

  // Switch-port VLAN management (privileged: used by HIL only).
  void AttachToVlan(Address endpoint, VlanId vlan);
  void DetachFromVlan(Address endpoint, VlanId vlan);
  void DetachFromAllVlans(Address endpoint);

  // True when the two ports share at least one VLAN.
  bool Reachable(Address a, Address b) const;
  // The lowest shared VLAN (frames are tagged with it), or 0.
  VlanId SharedVlan(Address a, Address b) const;

  void SetSniffer(Sniffer sniffer) { sniffer_ = std::move(sniffer); }
  void SetFaultFilter(FaultFilter filter) { fault_filter_ = std::move(filter); }

  // --- Forwarding path ----------------------------------------------------
  ForwardPath forward_path() const { return forward_path_; }
  // Switch only while no frames are in flight (typically before traffic
  // starts): in-flight generic coroutines and burst flights don't migrate.
  void SetForwardPath(ForwardPath path) { forward_path_ = path; }

  // Monotone counter bumped by every topology mutation (VLAN membership,
  // port moves, link state, endpoint creation); versions the flow caches.
  uint64_t topology_epoch() const { return topology_epoch_; }

  // Rolling digest over delivered frames: each delivery folds a tag of
  // (src, dst, vlan, wire bytes, kind, payload, rpc header).  Tags are
  // accumulated commutatively *within* a sim-time instant and the instant
  // totals are chained in time order, so the digest pins the delivered
  // multiset per instant while staying independent of intra-instant
  // micro-ordering — by construction it is byte-identical between the
  // burst and generic paths, across schedulers, and across shard counts.
  uint64_t frame_digest() const;
  // Delivered frame copies (duplicates from fault injection included).
  uint64_t frames_delivered() const { return frames_delivered_; }

  // --- Wire-level capture (src/net/pcap.h) --------------------------------
  // Attaches a pcap tap to a port: every frame the port sends or receives
  // is appended to the capture in delivery order with sim-time
  // timestamps.  The writer is borrowed, not owned; detach (or keep the
  // writer alive) before it goes away.  One frame is written once even
  // when both its ports share a writer.
  void AttachPcapTap(Address endpoint, PcapWriter* writer);
  void DetachPcapTap(Address endpoint);

  // Uplink ingress: delivers a frame that originated on a remote fabric
  // partition (the sharded runtime, src/sim/shard.h) into this network.
  // The frame already paid its inter-rack latency as shard lookahead, so
  // ingress pays only the receiver-side costs: rx NIC occupancy, the
  // link-state check, and membership of the destination port in the
  // frame's VLAN tag.  message.dst must be set; message.src is preserved
  // (it names a port on the remote partition).  Returns false — dropped
  // and counted — when the port is unknown, down, or not in `tag`.
  bool InjectFrame(Message message, VlanId tag);
  uint64_t injected_frames() const { return injected_frames_; }

  // Administrative link state (fault injection / maintenance).  A downed
  // port neither sends nor receives; frames in flight when a link drops
  // are lost at delivery time.  Links start up.
  void SetLinkUp(Address endpoint, bool up);
  bool LinkUp(Address endpoint) const {
    return endpoint >= link_down_.size() || link_down_[endpoint] == 0;
  }

  sim::Duration propagation_latency() const { return latency_; }
  sim::Simulation& simulation() { return sim_; }
  uint64_t total_drops() const { return total_drops_; }
  // Frames killed or cloned by the installed fault filter / link state.
  uint64_t fault_drops() const { return fault_drops_; }
  uint64_t fault_duplicates() const { return fault_duplicates_; }

 private:
  friend class Endpoint;

  // --- Burst fast path (DESIGN.md §15) ------------------------------------
  // One in-flight frame.  Flights live in a stable-address arena with a
  // freelist, so the steady-state path performs no allocation; `pending`
  // counts outstanding NIC/uplink demands and the flight completes when
  // the last ConsumeAsync callback lands.
  struct Flight {
    MessageBox box;
    Endpoint* sender = nullptr;  // nullptr for injected (cross-shard) frames
    Endpoint* receiver = nullptr;
    sim::Event* done = nullptr;  // completion signal for awaited sends
    sim::Duration extra_delay{};
    uint64_t epoch = 0;  // topology epoch at send time
    uint32_t pool_index = 0;
    VlanId vlan = 0;
    int16_t pending = 0;
    int16_t duplicates = 0;
    bool injected = false;
  };
  struct DeliveryRecord {
    Flight* flight;
    sim::Time due;
  };
  // Per-burst accumulator: interned-counter updates and per-link byte
  // totals are batched here and flushed once per burst (run-length
  // accumulation over consecutive deliveries on the same link).
  struct BurstStats {
    obs::Registry* registry = nullptr;
    uint64_t forwarded = 0;
    uint64_t duplicated = 0;
    uint64_t injected = 0;
    uint32_t tx_id = 0;
    uint64_t tx_bytes = 0;
    uint32_t rx_id = 0;
    uint64_t rx_bytes = 0;
  };

  sim::Task InjectBoxed(Endpoint* receiver, MessageBox message, VlanId tag);

  void StartFlight(Endpoint* sender, Address dst, MessageBox box,
                   sim::Event* done);
  void StartInjectFlight(Endpoint* receiver, MessageBox box, VlanId tag);
  Flight* AcquireFlight();
  void FinishFlight(Flight* flight);
  void OnConsumeComplete(uint64_t token) override;
  void CompleteFlight(Flight* flight);
  void EnqueueDelivery(Flight* flight, sim::Time due);
  void DrainDeliveries();
  void DeliverFlight(Flight* flight, BurstStats& stats);
  void FlushBurstStats(BurstStats& stats);
  void QueueForPump(Endpoint* receiver);
  void PumpReceivers();
  // Per-delivered-copy bookkeeping shared by both paths: frame digest,
  // delivered counter, and the pcap taps of the two ports.
  void RecordDelivery(Endpoint* sender, Endpoint* receiver, VlanId vlan,
                      const Message& message);
  void FoldFrameDigest(VlanId vlan, const Message& message);
  void SealFrameInstant();
  void BumpTopologyEpoch() { ++topology_epoch_; }

  sim::Simulation& sim_;
  sim::Duration latency_;
  double default_bandwidth_;
  Address next_address_ = 1;
  std::map<Address, std::unique_ptr<Endpoint>> endpoints_;
  // Addresses are handed out densely from 1, so the per-frame lookups
  // (endpoint, switch, link state — two of each per frame) are flat array
  // indexing instead of tree walks.  Index = address; slot 0 unused.
  std::vector<Endpoint*> endpoint_index_{nullptr};
  std::vector<int> switch_index_{0};
  std::vector<uint8_t> link_down_{0};
  // Name -> address index for FindByName; heterogeneous compare so a
  // string_view lookup needs no temporary.
  std::map<std::string, Address, std::less<>> endpoints_by_name_;
  std::vector<std::unique_ptr<SharedResource>> uplinks_;  // switch 1..N
  Sniffer sniffer_;
  FaultFilter fault_filter_;
  uint64_t total_drops_ = 0;
  uint64_t fault_drops_ = 0;
  uint64_t fault_duplicates_ = 0;
  uint64_t injected_frames_ = 0;

  // --- Burst fast-path state ---------------------------------------------
  ForwardPath forward_path_;  // constructor reads BOLTED_NET_PATH
  uint64_t topology_epoch_ = 1;
  std::deque<Flight> flight_arena_;  // stable addresses; index = pool_index
  std::vector<uint32_t> flight_free_;
  // Pending deliveries in due order (dues are monotone: every ring entry
  // is completion-time + the network's fixed latency; fault-delayed
  // frames bypass the ring with their own event).  One scheduled event
  // covers the ring head; firing it drains the whole same-instant batch.
  sim::RingQueue<DeliveryRecord> delivery_ring_;
  bool delivery_event_pending_ = false;
  // Receivers touched by the current burst, pumped (inbox waiters resumed
  // inline) after every frame of the instant has been enqueued.
  sim::SmallVec<Endpoint*, 16> pump_list_;
  bool pumping_ = false;

  // --- Frame trace digest -------------------------------------------------
  uint64_t frames_delivered_ = 0;
  uint64_t frame_digest_rolling_ = 0x626f6c746564u;  // "bolted"
  sim::Time frame_digest_instant_{};
  uint64_t frame_digest_acc_ = 0;
  uint64_t frame_digest_count_ = 0;
};

}  // namespace bolted::net

#endif  // SRC_NET_NETWORK_H_
