#include "src/net/ipsec.h"

#include <cassert>
#include <cstring>

#include "src/crypto/hmac.h"

namespace bolted::net {

double IpsecPayloadPerPacket(const IpsecCostModel& model, uint64_t mtu) {
  const double payload = static_cast<double>(mtu) -
                         static_cast<double>(model.esp_overhead_bytes);
  assert(payload > 0);
  return payload;
}

double IpsecWireBytes(const IpsecCostModel& model, uint64_t mtu, double payload_bytes) {
  const double per_packet = IpsecPayloadPerPacket(model, mtu);
  const double packets = payload_bytes / per_packet;
  return payload_bytes + packets * static_cast<double>(model.esp_overhead_bytes);
}

double IpsecCryptoCycles(const IpsecCostModel& model, bool hardware_aes, uint64_t mtu,
                         double payload_bytes) {
  const double cycles_per_byte =
      hardware_aes ? model.cycles_per_byte_hw : model.cycles_per_byte_sw;
  const double per_packet = IpsecPayloadPerPacket(model, mtu);
  const double packets = payload_bytes / per_packet;
  return payload_bytes * cycles_per_byte + packets * model.cycles_per_packet;
}

double IpsecCpuBoundThroughput(const IpsecCostModel& model, bool hardware_aes,
                               uint64_t mtu) {
  const double cycles_per_app_byte =
      IpsecCryptoCycles(model, hardware_aes, mtu, 1.0);
  return model.cpu_hz / cycles_per_app_byte;
}

IpsecContext::SecurityAssociation::SecurityAssociation(const crypto::Bytes& key)
    : salt(crypto::Hkdf({}, key, crypto::ToBytes("esp-salt"), 4)), gcm(key) {}

void IpsecContext::InstallSa(Address peer, const crypto::Bytes& key) {
  assert(key.size() == 32);
  sas_.insert_or_assign(peer, SecurityAssociation(key));
}

void IpsecContext::RemoveSa(Address peer) { sas_.erase(peer); }

bool IpsecContext::HasSa(Address peer) const { return sas_.contains(peer); }

std::optional<crypto::Bytes> IpsecContext::Seal(Address peer,
                                                crypto::ByteView plaintext) {
  const auto it = sas_.find(peer);
  if (it == sas_.end()) {
    return std::nullopt;
  }
  SecurityAssociation& sa = it->second;
  const uint64_t sequence = ++sa.tx_sequence;

  uint8_t seq_be[8];
  for (int i = 0; i < 8; ++i) {
    seq_be[i] = static_cast<uint8_t>(sequence >> (56 - 8 * i));
  }
  // Nonce = 4-byte salt || 8-byte sequence (RFC 4106 style).
  uint8_t nonce[crypto::AesGcm::kNonceSize];
  std::memcpy(nonce, sa.salt.data(), 4);
  std::memcpy(nonce + 4, seq_be, 8);

  // Wire = 8-byte sequence || ciphertext || tag, sealed in place so the
  // ciphertext is produced directly in the framed message.
  crypto::Bytes wire(8 + plaintext.size() + crypto::AesGcm::kTagSize);
  std::memcpy(wire.data(), seq_be, 8);
  sa.gcm.SealTo(crypto::ByteView(nonce, sizeof(nonce)), plaintext,
                crypto::ByteView(seq_be, sizeof(seq_be)), wire.data() + 8);
  return wire;
}

std::optional<crypto::Bytes> IpsecContext::Open(Address peer, crypto::ByteView wire) {
  const auto it = sas_.find(peer);
  if (it == sas_.end() || wire.size() < 8 + crypto::AesGcm::kTagSize) {
    return std::nullopt;
  }
  SecurityAssociation& sa = it->second;

  uint64_t sequence = 0;
  for (int i = 0; i < 8; ++i) {
    sequence = (sequence << 8) | wire[static_cast<size_t>(i)];
  }
  // Strictly-increasing replay protection.
  if (sequence <= sa.rx_window) {
    return std::nullopt;
  }

  uint8_t nonce[crypto::AesGcm::kNonceSize];
  std::memcpy(nonce, sa.salt.data(), 4);
  std::memcpy(nonce + 4, wire.data(), 8);

  auto plaintext = sa.gcm.Open(crypto::ByteView(nonce, sizeof(nonce)),
                               wire.subspan(8), wire.first(8));
  if (!plaintext) {
    return std::nullopt;
  }
  sa.rx_window = sequence;
  return plaintext;
}

sim::Task BulkTransfer(sim::Simulation& sim, PathEnd src, PathEnd dst,
                       double payload_bytes, const IpsecParams& params,
                       const IpsecCostModel& model) {
  DemandList demands;
  if (!params.enabled) {
    // Plain TCP: header overhead only.
    const double payload_per_packet =
        static_cast<double>(params.mtu) - static_cast<double>(model.ip_tcp_header_bytes);
    const double wire =
        payload_bytes * (static_cast<double>(params.mtu) / payload_per_packet);
    demands.push_back({src.nic, wire});
    demands.push_back({dst.nic, wire});
  } else {
    const double wire = IpsecWireBytes(model, params.mtu, payload_bytes);
    const double cycles =
        IpsecCryptoCycles(model, params.hardware_aes, params.mtu, payload_bytes);
    demands.push_back({src.nic, wire});
    demands.push_back({dst.nic, wire});
    demands.push_back({src.crypto_cpu, cycles});
    demands.push_back({dst.crypto_cpu, cycles});
  }
  co_await ConsumeAllWeighted(sim, std::move(demands));
}

}  // namespace bolted::net
