#include "src/net/ipsec.h"

#include <cassert>

#include "src/crypto/hmac.h"

namespace bolted::net {

double IpsecPayloadPerPacket(const IpsecCostModel& model, uint64_t mtu) {
  const double payload = static_cast<double>(mtu) -
                         static_cast<double>(model.esp_overhead_bytes);
  assert(payload > 0);
  return payload;
}

double IpsecWireBytes(const IpsecCostModel& model, uint64_t mtu, double payload_bytes) {
  const double per_packet = IpsecPayloadPerPacket(model, mtu);
  const double packets = payload_bytes / per_packet;
  return payload_bytes + packets * static_cast<double>(model.esp_overhead_bytes);
}

double IpsecCryptoCycles(const IpsecCostModel& model, bool hardware_aes, uint64_t mtu,
                         double payload_bytes) {
  const double cycles_per_byte =
      hardware_aes ? model.cycles_per_byte_hw : model.cycles_per_byte_sw;
  const double per_packet = IpsecPayloadPerPacket(model, mtu);
  const double packets = payload_bytes / per_packet;
  return payload_bytes * cycles_per_byte + packets * model.cycles_per_packet;
}

double IpsecCpuBoundThroughput(const IpsecCostModel& model, bool hardware_aes,
                               uint64_t mtu) {
  const double cycles_per_app_byte =
      IpsecCryptoCycles(model, hardware_aes, mtu, 1.0);
  return model.cpu_hz / cycles_per_app_byte;
}

void IpsecContext::InstallSa(Address peer, const crypto::Bytes& key) {
  assert(key.size() == 32);
  SecurityAssociation sa;
  sa.key = key;
  sa.salt = crypto::Hkdf({}, key, crypto::ToBytes("esp-salt"), 4);
  sas_[peer] = std::move(sa);
}

void IpsecContext::RemoveSa(Address peer) { sas_.erase(peer); }

bool IpsecContext::HasSa(Address peer) const { return sas_.contains(peer); }

std::optional<crypto::Bytes> IpsecContext::Seal(Address peer,
                                                crypto::ByteView plaintext) {
  const auto it = sas_.find(peer);
  if (it == sas_.end()) {
    return std::nullopt;
  }
  SecurityAssociation& sa = it->second;
  const uint64_t sequence = ++sa.tx_sequence;

  // Nonce = 4-byte salt || 8-byte sequence (RFC 4106 style).
  crypto::Bytes nonce = sa.salt;
  crypto::AppendU64(nonce, sequence);

  crypto::Bytes aad;
  crypto::AppendU64(aad, sequence);

  crypto::Bytes wire;
  crypto::AppendU64(wire, sequence);
  crypto::Append(wire, crypto::AesGcm(sa.key).Seal(nonce, plaintext, aad));
  return wire;
}

std::optional<crypto::Bytes> IpsecContext::Open(Address peer, crypto::ByteView wire) {
  const auto it = sas_.find(peer);
  if (it == sas_.end() || wire.size() < 8 + crypto::AesGcm::kTagSize) {
    return std::nullopt;
  }
  SecurityAssociation& sa = it->second;

  uint64_t sequence = 0;
  for (int i = 0; i < 8; ++i) {
    sequence = (sequence << 8) | wire[static_cast<size_t>(i)];
  }
  // Strictly-increasing replay protection.
  if (sequence <= sa.rx_window) {
    return std::nullopt;
  }

  crypto::Bytes nonce = sa.salt;
  crypto::AppendU64(nonce, sequence);
  crypto::Bytes aad;
  crypto::AppendU64(aad, sequence);

  auto plaintext = crypto::AesGcm(sa.key).Open(nonce, wire.subspan(8), aad);
  if (!plaintext) {
    return std::nullopt;
  }
  sa.rx_window = sequence;
  return plaintext;
}

sim::Task BulkTransfer(sim::Simulation& sim, PathEnd src, PathEnd dst,
                       double payload_bytes, const IpsecParams& params,
                       const IpsecCostModel& model) {
  std::vector<WeightedDemand> demands;
  if (!params.enabled) {
    // Plain TCP: header overhead only.
    const double payload_per_packet =
        static_cast<double>(params.mtu) - static_cast<double>(model.ip_tcp_header_bytes);
    const double wire =
        payload_bytes * (static_cast<double>(params.mtu) / payload_per_packet);
    demands.push_back({src.nic, wire});
    demands.push_back({dst.nic, wire});
  } else {
    const double wire = IpsecWireBytes(model, params.mtu, payload_bytes);
    const double cycles =
        IpsecCryptoCycles(model, params.hardware_aes, params.mtu, payload_bytes);
    demands.push_back({src.nic, wire});
    demands.push_back({dst.nic, wire});
    demands.push_back({src.crypto_cpu, cycles});
    demands.push_back({dst.crypto_cpu, cycles});
  }
  co_await ConsumeAllWeighted(sim, std::move(demands));
}

}  // namespace bolted::net
