// IPsec ESP transport: real per-message authenticated encryption for the
// control plane, plus the cycle-accurate cost model that drives the bulk
// throughput results (Figures 3b, 3c, 7).
//
// The paper's configuration is strongSwan host-to-host tunnels with
// AES-256-GCM (hardware AES-NI or software AES) and MTU 1500 or 9000.
// Tunnel keys are distributed by Keylime after successful attestation and
// revoked on continuous-attestation policy violations (§7.4).

#ifndef SRC_NET_IPSEC_H_
#define SRC_NET_IPSEC_H_

#include <cstdint>
#include <map>
#include <optional>

#include "src/crypto/aes_gcm.h"
#include "src/crypto/bytes.h"
#include "src/net/network.h"
#include "src/net/resource.h"
#include "src/sim/task.h"

namespace bolted::net {

// Cost constants for the ESP data path (see src/core/calibration.h for the
// sources).  Capacities are per host: one dedicated processing core, as
// observed in the paper ("CPU usage ... between 60% and 80% of one core").
struct IpsecCostModel {
  double cpu_hz = 2.6e9;             // Xeon E5-2650 v2
  double cycles_per_byte_hw = 1.2;   // AES-NI + GHASH (PCLMULQDQ)
  double cycles_per_byte_sw = 18.0;  // table-based AES
  double cycles_per_packet = 27000;  // kernel ESP path per packet
  uint64_t esp_overhead_bytes = 73;  // ESP hdr + IV + ICV + outer headers
  uint64_t ip_tcp_header_bytes = 52;
};

struct IpsecParams {
  bool enabled = false;
  bool hardware_aes = true;
  uint64_t mtu = 9000;
};

// Payload bytes carried per MTU-sized packet under ESP.
double IpsecPayloadPerPacket(const IpsecCostModel& model, uint64_t mtu);
// Total wire bytes for `payload_bytes` of application data.
double IpsecWireBytes(const IpsecCostModel& model, uint64_t mtu, double payload_bytes);
// CPU cycles to encrypt-or-decrypt `payload_bytes` at the given MTU.
double IpsecCryptoCycles(const IpsecCostModel& model, bool hardware_aes, uint64_t mtu,
                         double payload_bytes);
// Closed-form single-flow throughput (bytes/s of application data) when
// the CPU is the bottleneck; benches use it as a cross-check.
double IpsecCpuBoundThroughput(const IpsecCostModel& model, bool hardware_aes,
                               uint64_t mtu);

// One host's security-association database.  Seal/Open implement a
// simplified ESP: 64-bit sequence number (authenticated, replay-checked)
// followed by AES-256-GCM ciphertext.
class IpsecContext {
 public:
  // key must be 32 bytes; both peers install the same key.
  void InstallSa(Address peer, const crypto::Bytes& key);
  void RemoveSa(Address peer);
  bool HasSa(Address peer) const;
  size_t sa_count() const { return sas_.size(); }

  // Returns the ESP wire format, or nullopt when no SA exists.
  std::optional<crypto::Bytes> Seal(Address peer, crypto::ByteView plaintext);
  // Authenticates, replay-checks, and decrypts.
  std::optional<crypto::Bytes> Open(Address peer, crypto::ByteView wire);

 private:
  struct SecurityAssociation {
    // Builds the AES key schedule and GHASH tables once at SA install;
    // Seal/Open reuse them for every packet on the association.
    explicit SecurityAssociation(const crypto::Bytes& key);

    crypto::Bytes salt;  // 4 bytes, IV prefix
    crypto::AesGcm gcm;
    uint64_t tx_sequence = 0;
    uint64_t rx_window = 0;  // highest sequence accepted
  };

  std::map<Address, SecurityAssociation> sas_;
};

// A pipeline end for bulk transfers: the NIC plus the host's crypto core.
struct PathEnd {
  SharedResource* nic = nullptr;
  SharedResource* crypto_cpu = nullptr;
};

// Transfers `payload_bytes` of application data between two hosts,
// consuming wire bytes on both NICs and, when IPsec is on, crypto cycles
// on both hosts' cores.  Completes when the slowest stage drains.
sim::Task BulkTransfer(sim::Simulation& sim, PathEnd src, PathEnd dst,
                       double payload_bytes, const IpsecParams& params,
                       const IpsecCostModel& model);

}  // namespace bolted::net

#endif  // SRC_NET_IPSEC_H_
