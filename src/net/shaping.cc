#include "src/net/shaping.h"

#include <cassert>

namespace bolted::net {

uint64_t CellsFor(const ShapingPolicy& policy, uint64_t payload_bytes) {
  if (payload_bytes == 0) {
    return 0;
  }
  return (payload_bytes + policy.cell_bytes - 1) / policy.cell_bytes;
}

uint64_t PaddedBytes(const ShapingPolicy& policy, uint64_t payload_bytes) {
  return CellsFor(policy, payload_bytes) * policy.cell_bytes;
}

double PaddingOverhead(const ShapingPolicy& policy, uint64_t payload_bytes) {
  if (payload_bytes == 0) {
    return 1.0;
  }
  return static_cast<double>(PaddedBytes(policy, payload_bytes)) /
         static_cast<double>(payload_bytes);
}

sim::Duration DrainTime(const ShapingPolicy& policy, uint64_t payload_bytes,
                        uint64_t backlog_cells) {
  const double cells =
      static_cast<double>(CellsFor(policy, payload_bytes) + backlog_cells);
  return sim::Duration::SecondsF(cells / policy.cells_per_second);
}

ShapedChannel::ShapedChannel(sim::Simulation& sim, Endpoint& source,
                             Address destination, IpsecContext& ipsec,
                             const ShapingPolicy& policy)
    : sim_(sim), source_(source), destination_(destination), ipsec_(ipsec),
      policy_(policy) {
  assert(policy.cell_bytes > 8);
}

uint64_t ShapedChannel::queued_cells() const { return queue_.size(); }

void ShapedChannel::Submit(crypto::Bytes payload) {
  // Segment into cells; each carries a 4-byte length header so the
  // receiver can strip padding.
  size_t offset = 0;
  const uint64_t body = policy_.cell_bytes - 4;
  while (offset < payload.size()) {
    const size_t take = std::min<size_t>(body, payload.size() - offset);
    crypto::Bytes cell;
    crypto::AppendU32(cell, static_cast<uint32_t>(take));
    cell.insert(cell.end(), payload.begin() + static_cast<ptrdiff_t>(offset),
                payload.begin() + static_cast<ptrdiff_t>(offset + take));
    cell.resize(policy_.cell_bytes, 0);  // pad to the fixed size
    queue_.push_back(std::move(cell));
    offset += take;
  }
}

void ShapedChannel::EmitCell(crypto::ByteView plaintext_cell, bool chaff) {
  // Every cell — data or chaff — is ESP-sealed, so ciphertexts are
  // indistinguishable and uniformly sized.
  const auto sealed = ipsec_.Seal(destination_, plaintext_cell);
  if (!sealed) {
    return;  // no SA: the shaper stays silent rather than leak plaintext
  }
  net::Message frame;
  frame.kind = "shaped.cell";
  frame.payload = *sealed;
  source_.Post(destination_, std::move(frame));
  if (chaff) {
    ++chaff_cells_;
  } else {
    ++data_cells_;
  }
}

sim::Task ShapedChannel::RunClock(uint64_t slots) {
  const sim::Duration tick = sim::Duration::SecondsF(1.0 / policy_.cells_per_second);
  for (uint64_t slot = 0; slot < slots; ++slot) {
    co_await sim::Delay(sim_, tick);
    if (!queue_.empty()) {
      const crypto::Bytes cell = std::move(queue_.front());
      queue_.pop_front();
      EmitCell(cell, /*chaff=*/false);
    } else {
      // Chaff: a zero-length marker plus deterministic filler.
      crypto::Bytes cell;
      crypto::AppendU32(cell, 0);
      crypto::AppendU64(cell, chaff_counter_++);
      cell.resize(policy_.cell_bytes, 0);
      EmitCell(cell, /*chaff=*/true);
    }
  }
}

}  // namespace bolted::net
