// Control-plane messages and their pooled ownership box.
//
// Message is the unit of everything that crosses the simulated fabric.
// The data plane moves one per frame, and the original implementation
// boxed each into a fresh std::shared_ptr (two allocations per send once
// the control block is counted).  MessageBox replaces that: a
// unique-ownership handle whose storage comes from a thread-local
// freelist, so the steady-state frame path never touches the allocator.
// Released messages keep their string/byte-buffer capacity, which means a
// recycled box also absorbs the payload copy without reallocating.
//
// MessageBox has user-declared constructors deliberately: GCC 12 copies
// by-value *aggregate* coroutine parameters bitwise into the frame (see
// the toolchain note in src/sim/task.h), and a user-declared constructor
// is what opts a type out of that bug.  Passing MessageBox by value into
// SendBoxed / CallBoxed is therefore safe where passing Message is not.

#ifndef SRC_NET_MESSAGE_POOL_H_
#define SRC_NET_MESSAGE_POOL_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/crypto/bytes.h"

namespace bolted::net {

using Address = uint32_t;
using VlanId = uint16_t;

struct Message {
  Address src = 0;
  Address dst = 0;
  std::string kind;       // protocol tag, e.g. "keylime.quote"
  crypto::Bytes payload;  // real bytes (may be encrypted)
  // Bytes accounted on the wire; defaults to the payload size but can be
  // larger for messages that model bulk data without carrying it.
  uint64_t wire_bytes = 0;
  // RPC correlation (see src/net/rpc.h).
  uint64_t rpc_id = 0;
  bool rpc_response = false;

  uint64_t EffectiveWireBytes() const {
    return wire_bytes != 0 ? wire_bytes : payload.size();
  }
};

namespace detail {

// Thread-local freelist of hollowed-out Messages.  Single-threaded like
// the simulator; independent simulations on different threads get
// independent pools.  Everything cached is freed at thread exit.
class MessagePool {
 public:
  static Message* Acquire() {
    auto& cache = Instance();
    if (cache.free.empty()) {
      return new Message();
    }
    Message* message = cache.free.back();
    cache.free.pop_back();
    return message;
  }

  static void Release(Message* message) {
    if (message == nullptr) {
      return;
    }
    auto& cache = Instance();
    if (cache.free.size() >= kMaxCached) {
      delete message;
      return;
    }
    // Hollow the message but keep kind/payload capacity for reuse.
    message->src = 0;
    message->dst = 0;
    message->kind.clear();
    message->payload.clear();
    message->wire_bytes = 0;
    message->rpc_id = 0;
    message->rpc_response = false;
    cache.free.push_back(message);
  }

 private:
  static constexpr size_t kMaxCached = 4096;

  struct Cache {
    std::vector<Message*> free;
    ~Cache() {
      for (Message* message : free) {
        delete message;
      }
    }
  };

  static Cache& Instance() {
    static thread_local Cache cache;
    return cache;
  }
};

}  // namespace detail

// Unique-ownership handle to a pooled Message.
class MessageBox {
 public:
  MessageBox() : message_(detail::MessagePool::Acquire()) {}
  explicit MessageBox(Message&& from) : message_(detail::MessagePool::Acquire()) {
    *message_ = std::move(from);
  }
  // Deep copy — the retry path resends a fresh copy per attempt; assigning
  // into the pooled message reuses its retained buffer capacity.
  explicit MessageBox(const Message& from)
      : message_(detail::MessagePool::Acquire()) {
    *message_ = from;
  }
  MessageBox(MessageBox&& other) noexcept
      : message_(std::exchange(other.message_, nullptr)) {}
  MessageBox& operator=(MessageBox&& other) noexcept {
    if (this != &other) {
      detail::MessagePool::Release(message_);
      message_ = std::exchange(other.message_, nullptr);
    }
    return *this;
  }
  MessageBox(const MessageBox&) = delete;
  MessageBox& operator=(const MessageBox&) = delete;
  ~MessageBox() { detail::MessagePool::Release(message_); }

  Message& operator*() const { return *message_; }
  Message* operator->() const { return message_; }
  Message* get() const { return message_; }

 private:
  Message* message_;
};

}  // namespace bolted::net

#endif  // SRC_NET_MESSAGE_POOL_H_
