#include "src/net/resource.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace bolted::net {

SharedResource::SharedResource(sim::Simulation& sim, double capacity_per_second,
                               std::string name)
    : sim_(sim), capacity_(capacity_per_second), name_(std::move(name)),
      last_update_(sim.now()) {
  assert(capacity_ > 0);
}

SharedResource::~SharedResource() {
  if (has_pending_event_) {
    sim_.Cancel(pending_event_);
  }
}

void SharedResource::AdvanceTo(sim::Time now) {
  if (now <= last_update_ || jobs_.empty()) {
    last_update_ = now;
    return;
  }
  const double elapsed = (now - last_update_).ToSecondsF();
  const double rate = capacity_ / static_cast<double>(jobs_.size());
  const double served = rate * elapsed;
  for (Job& job : jobs_) {
    const double delta = std::min(job.remaining, served);
    job.remaining -= delta;
    total_served_ += delta;
  }
  last_update_ = now;
}

void SharedResource::Sync() {
  AdvanceTo(sim_.now());

  // Complete every drained job.  The threshold is relative to capacity:
  // anything under a picosecond of work counts as done, which (together
  // with the 1 ns minimum reschedule below) guarantees forward progress
  // despite floating-point residue.  Survivors compact in place, keeping
  // arrival order (Set() only schedules the resume, so signalling before
  // compaction is safe).
  const double epsilon = capacity_ * 1e-12;
  size_t kept = 0;
  for (size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].remaining <= epsilon) {
      jobs_[i].done->Set();
    } else {
      jobs_[kept++] = jobs_[i];
    }
  }
  jobs_.resize(kept);

  if (has_pending_event_) {
    sim_.Cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (jobs_.empty()) {
    return;
  }

  double min_remaining = jobs_.front().remaining;
  for (const Job& job : jobs_) {
    min_remaining = std::min(min_remaining, job.remaining);
  }
  const double rate = capacity_ / static_cast<double>(jobs_.size());
  const int64_t delay_ns = std::max<int64_t>(
      1, static_cast<int64_t>(min_remaining / rate * 1e9));
  pending_event_ =
      sim_.Schedule(sim::Duration::Nanoseconds(delay_ns), [this]() {
        has_pending_event_ = false;
        Sync();
      });
  has_pending_event_ = true;
}

sim::Task SharedResource::Consume(double amount) {
  if (amount <= 0) {
    co_return;
  }
  // Settle existing jobs up to now before the new one starts competing.
  AdvanceTo(sim_.now());
  // The completion event lives in this frame: the job holds a pointer to
  // it, and the frame stays suspended (alive) until the event fires.
  sim::Event done(sim_);
  jobs_.push_back(Job{amount, &done});
  Sync();
  co_await done;
}

sim::Task ConsumeAll(sim::Simulation& sim, std::vector<SharedResource*> resources,
                     double amount) {
  DemandList demands;
  for (SharedResource* resource : resources) {
    demands.push_back(WeightedDemand{resource, amount});
  }
  co_await ConsumeAllWeighted(sim, std::move(demands));
}

sim::Task ConsumeAllWeighted(sim::Simulation& sim, DemandList demands) {
  sim::TaskGroup group(sim);
  for (const WeightedDemand& demand : demands) {
    if (demand.resource != nullptr && demand.amount > 0) {
      group.Spawn(demand.resource->Consume(demand.amount));
    }
  }
  co_await group.WaitAll();
}

}  // namespace bolted::net
