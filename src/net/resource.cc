#include "src/net/resource.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace bolted::net {

SharedResource::SharedResource(sim::Simulation& sim, double capacity_per_second,
                               std::string name)
    : sim_(sim), capacity_(capacity_per_second), name_(std::move(name)),
      last_update_(sim.now()) {
  assert(capacity_ > 0);
}

SharedResource::~SharedResource() {
  if (has_pending_event_) {
    sim_.Cancel(pending_event_);
  }
}

void SharedResource::AdvanceTo(sim::Time now) {
  if (now > last_update_ && !jobs_.empty()) {
    const double elapsed = (now - last_update_).ToSecondsF();
    v_ += capacity_ * elapsed / static_cast<double>(jobs_.size());
  }
  last_update_ = now;
}

void SharedResource::Sync() {
  AdvanceTo(sim_.now());

  // Complete every drained job, earliest virtual finish first (ties in
  // arrival order).  The threshold is relative to capacity: anything under
  // a picosecond of work counts as done, which (together with the 1 ns
  // minimum reschedule below) guarantees forward progress despite
  // floating-point residue.  The job is copied out and fully accounted
  // *before* its completion is signalled: Set() only schedules the resume
  // (the frame holding the job's Event stays alive until after the pop),
  // and a sink callback may reentrantly push new jobs onto this very
  // resource — the heap and the served-units counters are consistent at
  // that point, and the re-check of front() on the next loop iteration
  // picks up anything a nested Sync() already drained.
  const double epsilon = capacity_ * 1e-12;
  while (!jobs_.empty() && jobs_.front().finish_v - v_ <= epsilon) {
    const Job job = jobs_.front();
    completed_ += job.finish_v - job.start_v;
    start_v_sum_ -= job.start_v;
    std::pop_heap(jobs_.begin(), jobs_.end(), JobLater{});
    jobs_.pop_back();
    if (job.done != nullptr) {
      job.done->Set();
    } else {
      job.sink->OnConsumeComplete(job.token);
    }
  }

  if (has_pending_event_) {
    sim_.Cancel(pending_event_);
    has_pending_event_ = false;
  }
  if (jobs_.empty()) {
    return;
  }

  const double min_remaining = jobs_.front().finish_v - v_;
  const double rate = capacity_ / static_cast<double>(jobs_.size());
  const int64_t delay_ns = std::max<int64_t>(
      1, static_cast<int64_t>(min_remaining / rate * 1e9));
  pending_event_ =
      sim_.Schedule(sim::Duration::Nanoseconds(delay_ns), [this]() {
        has_pending_event_ = false;
        Sync();
      });
  has_pending_event_ = true;
}

sim::Task SharedResource::Consume(double amount) {
  if (amount <= 0) {
    co_return;
  }
  // Settle existing jobs up to now before the new one starts competing.
  AdvanceTo(sim_.now());
  // The completion event lives in this frame: the job holds a pointer to
  // it, and the frame stays suspended (alive) until the event fires.
  sim::Event done(sim_);
  jobs_.push_back(Job{v_ + amount, v_, next_seq_++, &done});
  std::push_heap(jobs_.begin(), jobs_.end(), JobLater{});
  start_v_sum_ += v_;
  Sync();
  co_await done;
}

void SharedResource::ConsumeAsync(double amount, ConsumeSink* sink,
                                  uint64_t token) {
  if (amount <= 0) {
    sink->OnConsumeComplete(token);
    return;
  }
  // Identical arrival bookkeeping to Consume(): settle to now, push the
  // job, resync.  The finish *instant* therefore matches the coroutine
  // path bit for bit — which is what keeps burst-path and generic-path
  // frame timings (and hence trace digests) interchangeable.
  AdvanceTo(sim_.now());
  jobs_.push_back(Job{v_ + amount, v_, next_seq_++, nullptr, sink, token});
  std::push_heap(jobs_.begin(), jobs_.end(), JobLater{});
  start_v_sum_ += v_;
  Sync();
}

sim::Task ConsumeAll(sim::Simulation& sim, std::vector<SharedResource*> resources,
                     double amount) {
  DemandList demands;
  for (SharedResource* resource : resources) {
    demands.push_back(WeightedDemand{resource, amount});
  }
  co_await ConsumeAllWeighted(sim, std::move(demands));
}

sim::Task ConsumeAllWeighted(sim::Simulation& sim, DemandList demands) {
  sim::TaskGroup group(sim);
  for (const WeightedDemand& demand : demands) {
    if (demand.resource != nullptr && demand.amount > 0) {
      group.Spawn(demand.resource->Consume(demand.amount));
    }
  }
  co_await group.WaitAll();
}

}  // namespace bolted::net
