// Processor-sharing fluid resources.
//
// A SharedResource models a capacity-limited device — a NIC, a disk
// spindle aggregate, a CPU core doing crypto — whose capacity is shared
// max-min fairly among concurrent consumers.  Consumers are coroutines:
//
//   co_await resource.Consume(bytes);
//
// suspends for exactly as long as the fluid model says the transfer takes
// given all concurrent activity.  This is how every throughput number in
// the benchmark harness (Figures 3, 5, 7) emerges from contention rather
// than being hard-coded.

#ifndef SRC_NET_RESOURCE_H_
#define SRC_NET_RESOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/simulation.h"
#include "src/sim/small_vec.h"
#include "src/sim/task.h"

namespace bolted::net {

// Callback-style completion for the zero-copy frame path (DESIGN.md §15).
// The network's flight engine counts down outstanding NIC/uplink demands
// without parking a coroutine per resource: a completed job invokes
// OnConsumeComplete(token) synchronously from inside Sync(), after the
// resource's own bookkeeping is consistent.  The callback may start new
// consumptions (on this or any other resource) reentrantly.
class ConsumeSink {
 public:
  virtual void OnConsumeComplete(uint64_t token) = 0;

 protected:
  ~ConsumeSink() = default;
};

class SharedResource {
 public:
  // capacity is in units (typically bytes) per simulated second.
  SharedResource(sim::Simulation& sim, double capacity_per_second, std::string name);
  SharedResource(const SharedResource&) = delete;
  SharedResource& operator=(const SharedResource&) = delete;
  ~SharedResource();

  // Consumes `amount` units; completes when the fluid model has served
  // them.  Zero/negative amounts complete immediately.
  sim::Task Consume(double amount);

  // Non-coroutine variant: registers `amount` units and invokes
  // sink->OnConsumeComplete(token) once served.  Pushes the same Job into
  // the same virtual-time heap as Consume(), so the completion *instant*
  // is identical — only the wake-up mechanism differs (a direct call in
  // place of an Event and a parked coroutine frame).  Zero/negative
  // amounts complete synchronously before returning; sub-epsilon amounts
  // may also complete synchronously (from the Sync() this call performs).
  void ConsumeAsync(double amount, ConsumeSink* sink, uint64_t token);

  // Current number of active consumers (for tests and stats).
  size_t active_consumers() const { return jobs_.size(); }
  double capacity_per_second() const { return capacity_; }
  const std::string& name() const { return name_; }
  // Total units served since construction (partial service of in-flight
  // jobs included: each active job has received v_ - start_v units).
  double total_served() const {
    return completed_ + static_cast<double>(jobs_.size()) * v_ - start_v_sum_;
  }

 private:
  // Processor sharing in virtual time: v_ counts units served *per job*
  // since construction (dv/dt = capacity / active jobs), so a job arriving
  // at virtual time s with demand a finishes exactly when v_ reaches
  // s + a.  Advancing the model is O(1) and a completion is a heap pop —
  // the per-event cost no longer scales with the number of concurrent
  // flows, which is what keeps fleet-size fan-in (thousands of quote
  // responses converging on one verifier NIC) linear instead of
  // quadratic per poll round.
  struct Job {
    double finish_v = 0;  // start_v + demand
    double start_v = 0;
    uint64_t seq = 0;  // arrival order; tie-break for simultaneous finishes
    // Exactly one completion mechanism is set.  `done` points into the
    // consuming coroutine's frame (Consume's local Event); valid until
    // that frame resumes, which cannot happen before done->Set() —
    // resumption goes through the event queue.  `sink` (ConsumeAsync) is
    // invoked directly, after the job has been popped and accounted.
    sim::Event* done = nullptr;
    ConsumeSink* sink = nullptr;
    uint64_t token = 0;
  };
  struct JobLater {
    bool operator()(const Job& a, const Job& b) const {
      return a.finish_v != b.finish_v ? a.finish_v > b.finish_v : a.seq > b.seq;
    }
  };

  // Advances virtual time to now, completes drained jobs, and reschedules
  // the next completion event.
  void Sync();
  void AdvanceTo(sim::Time now);

  sim::Simulation& sim_;
  double capacity_;
  std::string name_;
  // Min-heap on (finish_v, seq).
  std::vector<Job> jobs_;
  sim::Time last_update_;
  sim::EventId pending_event_ = 0;
  bool has_pending_event_ = false;
  double v_ = 0;             // virtual units served per job so far
  uint64_t next_seq_ = 0;
  double completed_ = 0;     // total demand of finished jobs
  double start_v_sum_ = 0;   // sum of start_v over active jobs
};

// Consumes `amount` from several resources concurrently and completes when
// the slowest finishes — the standard approximation for a pipelined
// transfer bottlenecked by its most contended stage (NIC -> wire -> NIC,
// or NIC -> crypto engine).
sim::Task ConsumeAll(sim::Simulation& sim, std::vector<SharedResource*> resources,
                     double amount);

// Like ConsumeAll but with a per-resource amount (e.g. wire bytes on the
// NIC vs payload bytes on the crypto engine).
struct WeightedDemand {
  SharedResource* resource;
  double amount;
};
// Inline-capacity demand list: the common frame shape (tx + rx, plus up to
// two rack uplinks) fits without touching the heap.  SmallVec's
// user-declared constructors also make it safe as a by-value coroutine
// parameter under GCC 12 (see the toolchain note in src/sim/task.h).
using DemandList = sim::SmallVec<WeightedDemand, 4>;
sim::Task ConsumeAllWeighted(sim::Simulation& sim, DemandList demands);

}  // namespace bolted::net

#endif  // SRC_NET_RESOURCE_H_
