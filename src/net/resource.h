// Processor-sharing fluid resources.
//
// A SharedResource models a capacity-limited device — a NIC, a disk
// spindle aggregate, a CPU core doing crypto — whose capacity is shared
// max-min fairly among concurrent consumers.  Consumers are coroutines:
//
//   co_await resource.Consume(bytes);
//
// suspends for exactly as long as the fluid model says the transfer takes
// given all concurrent activity.  This is how every throughput number in
// the benchmark harness (Figures 3, 5, 7) emerges from contention rather
// than being hard-coded.

#ifndef SRC_NET_RESOURCE_H_
#define SRC_NET_RESOURCE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/simulation.h"
#include "src/sim/small_vec.h"
#include "src/sim/task.h"

namespace bolted::net {

class SharedResource {
 public:
  // capacity is in units (typically bytes) per simulated second.
  SharedResource(sim::Simulation& sim, double capacity_per_second, std::string name);
  SharedResource(const SharedResource&) = delete;
  SharedResource& operator=(const SharedResource&) = delete;
  ~SharedResource();

  // Consumes `amount` units; completes when the fluid model has served
  // them.  Zero/negative amounts complete immediately.
  sim::Task Consume(double amount);

  // Current number of active consumers (for tests and stats).
  size_t active_consumers() const { return jobs_.size(); }
  double capacity_per_second() const { return capacity_; }
  const std::string& name() const { return name_; }
  // Total units served since construction.
  double total_served() const { return total_served_; }

 private:
  struct Job {
    double remaining = 0;
    // Points into the consuming coroutine's frame (Consume's local
    // Event).  Valid until that frame resumes, which cannot happen before
    // done->Set() — Sync() signals and erases the job in one pass, and
    // resumption goes through the event queue.
    sim::Event* done = nullptr;
  };

  // Advances all jobs to the current time and reschedules the next
  // completion event.
  void Sync();
  void AdvanceTo(sim::Time now);

  sim::Simulation& sim_;
  double capacity_;
  std::string name_;
  // Contiguous for the fluid-model sweeps; completion compacts in place
  // preserving arrival order.
  std::vector<Job> jobs_;
  sim::Time last_update_;
  sim::EventId pending_event_ = 0;
  bool has_pending_event_ = false;
  double total_served_ = 0;
};

// Consumes `amount` from several resources concurrently and completes when
// the slowest finishes — the standard approximation for a pipelined
// transfer bottlenecked by its most contended stage (NIC -> wire -> NIC,
// or NIC -> crypto engine).
sim::Task ConsumeAll(sim::Simulation& sim, std::vector<SharedResource*> resources,
                     double amount);

// Like ConsumeAll but with a per-resource amount (e.g. wire bytes on the
// NIC vs payload bytes on the crypto engine).
struct WeightedDemand {
  SharedResource* resource;
  double amount;
};
// Inline-capacity demand list: the common frame shape (tx + rx, plus up to
// two rack uplinks) fits without touching the heap.  SmallVec's
// user-declared constructors also make it safe as a by-value coroutine
// parameter under GCC 12 (see the toolchain note in src/sim/task.h).
using DemandList = sim::SmallVec<WeightedDemand, 4>;
sim::Task ConsumeAllWeighted(sim::Simulation& sim, DemandList demands);

}  // namespace bolted::net

#endif  // SRC_NET_RESOURCE_H_
