// Bare Metal Imaging (BMI) — the provisioning service (§5).
//
// BMI manages golden images and per-node copy-on-write clones in the
// object store, serves them to booting servers over the iSCSI target on
// its RPC endpoint, extracts boot info (kernel/initrd/cmdline) from
// images so it can be handed to servers via Keylime, and doubles as the
// artifact server ("HTTP") that LinuxBoot downloads the Keylime agent and
// the Heads runtime from.
//
// Because servers are provisioned statelessly from network-mounted
// clones, releasing a node deletes (or snapshots) its clone — no trust in
// provider disk scrubbing is required, and an image can later be
// restarted on any compatible node.

#ifndef SRC_BMI_BMI_H_
#define SRC_BMI_BMI_H_

#include <map>
#include <optional>
#include <string>

#include "src/net/chunk_wire.h"
#include "src/net/rpc.h"
#include "src/storage/chunks.h"
#include "src/storage/image.h"
#include "src/storage/iscsi.h"

namespace bolted::bmi {

inline constexpr std::string_view kRpcFetchArtifact = "prov.fetch";

struct Artifact {
  uint64_t bytes = 0;
  crypto::Digest digest{};
};

class BmiService {
 public:
  BmiService(sim::Simulation& sim, net::Endpoint& endpoint,
             storage::ImageStore& images);

  net::Address address() const { return node_.address(); }
  storage::ImageStore& images() { return images_; }
  storage::IscsiTarget& iscsi_target() { return iscsi_target_; }

  // --- Image management (tenant- or provider-invoked) --------------------

  storage::ImageId RegisterGoldenImage(const std::string& name, uint64_t size,
                                       storage::BootInfo boot_info);
  // Per-node clone for a boot; returns nullopt for an unknown golden image.
  std::optional<storage::ImageId> CreateNodeImage(const std::string& node,
                                                  storage::ImageId golden);
  // Stateless release: the clone is destroyed (or snapshotted first when
  // the tenant wants to keep its state and restart elsewhere later).
  bool ReleaseNodeImage(const std::string& node, bool keep_snapshot);
  std::optional<storage::ImageId> NodeImage(const std::string& node) const;
  std::optional<storage::BootInfo> ExtractBootInfo(storage::ImageId image) const;

  // --- Artifact server ----------------------------------------------------

  void PublishArtifact(const std::string& name, const Artifact& artifact);
  std::optional<Artifact> FindArtifact(const std::string& name) const;
  // Effective serving rate of the artifact HTTP path (the prototype uses
  // plain single-stream HTTP; the paper lists replacing it as an obvious
  // optimisation).  Zero disables the extra delay.
  void SetHttpRate(double bytes_per_second) { http_rate_ = bytes_per_second; }

  // --- Chunk manifests (DESIGN.md §14) ------------------------------------

  // Registers the chunk manifest for an image name; booting nodes fetch it
  // over `chunk.manifest` and then pull chunks through their rack cache.
  void RegisterChunkManifest(storage::ChunkManifest manifest);
  const storage::ChunkManifest* FindChunkManifest(const std::string& image) const;

 private:
  sim::Task HandleFetch(const net::Message& request, net::Message* response);
  sim::Task HandleManifest(const net::Message& request, net::Message* response);

  sim::Simulation& sim_;
  net::RpcNode node_;
  storage::ImageStore& images_;
  storage::IscsiTarget iscsi_target_;
  std::map<std::string, Artifact> artifacts_;
  std::map<std::string, storage::ChunkManifest> manifests_;
  std::map<std::string, storage::ImageId> node_images_;
  double http_rate_ = 0;
  uint64_t snapshot_counter_ = 0;
};

// Client side: downloads an artifact from the provisioning service,
// returning its advertised digest.  Sets *ok=false on unreachability or
// unknown artifact.
sim::Task FetchArtifact(net::RpcNode& rpc, net::Address service,
                        const std::string& name, crypto::Digest* digest,
                        uint64_t* bytes, bool* ok);

// Client side: fetches the chunk manifest for an image name.  Sets
// *ok=false on unreachability or unknown image.
sim::Task FetchChunkManifest(net::RpcNode& rpc, net::Address service,
                             const std::string& image,
                             storage::ChunkManifest* manifest, bool* ok);

}  // namespace bolted::bmi

#endif  // SRC_BMI_BMI_H_
