#include "src/bmi/bmi.h"

#include "src/net/wire.h"

namespace bolted::bmi {

BmiService::BmiService(sim::Simulation& sim, net::Endpoint& endpoint,
                       storage::ImageStore& images)
    : sim_(sim), node_(sim, endpoint), images_(images),
      iscsi_target_(sim, node_, images) {
  iscsi_target_.Register();
  node_.RegisterHandler(std::string(kRpcFetchArtifact),
                        [this](const net::Message& req, net::Message* resp) {
                          return HandleFetch(req, resp);
                        });
  node_.RegisterHandler(std::string(net::kRpcChunkManifest),
                        [this](const net::Message& req, net::Message* resp) {
                          return HandleManifest(req, resp);
                        });
  node_.Start();
}

storage::ImageId BmiService::RegisterGoldenImage(const std::string& name,
                                                 uint64_t size,
                                                 storage::BootInfo boot_info) {
  return images_.Create(name, size, std::move(boot_info));
}

std::optional<storage::ImageId> BmiService::CreateNodeImage(
    const std::string& node, storage::ImageId golden) {
  const auto clone = images_.Clone(golden, "node:" + node);
  if (clone) {
    node_images_[node] = *clone;
  }
  return clone;
}

bool BmiService::ReleaseNodeImage(const std::string& node, bool keep_snapshot) {
  const auto it = node_images_.find(node);
  if (it == node_images_.end()) {
    return false;
  }
  if (keep_snapshot) {
    images_.Snapshot(it->second,
                     "saved:" + node + ":" + std::to_string(snapshot_counter_++));
    // The clone itself stays alive as the snapshot's parent; it is no
    // longer exported for the node.
  } else {
    images_.Delete(it->second);
  }
  node_images_.erase(it);
  return true;
}

std::optional<storage::ImageId> BmiService::NodeImage(const std::string& node) const {
  const auto it = node_images_.find(node);
  if (it == node_images_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<storage::BootInfo> BmiService::ExtractBootInfo(
    storage::ImageId image) const {
  return images_.ExtractBootInfo(image);
}

void BmiService::PublishArtifact(const std::string& name, const Artifact& artifact) {
  artifacts_[name] = artifact;
}

std::optional<Artifact> BmiService::FindArtifact(const std::string& name) const {
  const auto it = artifacts_.find(name);
  if (it == artifacts_.end()) {
    return std::nullopt;
  }
  return it->second;
}

sim::Task BmiService::HandleFetch(const net::Message& request,
                                  net::Message* response) {
  net::WireReader reader(request.payload);
  const std::string name = reader.Str();
  const auto artifact = FindArtifact(name);
  if (!reader.AtEnd() || !artifact) {
    response->kind = "prov.error";
    co_return;
  }
  if (http_rate_ > 0) {
    co_await sim::Delay(sim_, sim::Duration::SecondsF(
                                  static_cast<double>(artifact->bytes) / http_rate_));
  }
  response->payload =
      net::WireWriter().U64(artifact->bytes).Digest(artifact->digest).Take();
  response->wire_bytes = artifact->bytes;  // the artifact body itself
}

void BmiService::RegisterChunkManifest(storage::ChunkManifest manifest) {
  std::string name = manifest.image_name;
  manifests_[std::move(name)] = std::move(manifest);
}

const storage::ChunkManifest* BmiService::FindChunkManifest(
    const std::string& image) const {
  const auto it = manifests_.find(image);
  return it == manifests_.end() ? nullptr : &it->second;
}

sim::Task BmiService::HandleManifest(const net::Message& request,
                                     net::Message* response) {
  net::WireReader reader(request.payload);
  const std::string image = reader.Str();
  const storage::ChunkManifest* manifest =
      reader.AtEnd() ? FindChunkManifest(image) : nullptr;
  if (manifest == nullptr) {
    response->kind = "prov.error";
    co_return;
  }
  response->payload = manifest->Encode();
  co_return;
}

sim::Task FetchArtifact(net::RpcNode& rpc, net::Address service,
                        const std::string& name, crypto::Digest* digest,
                        uint64_t* bytes, bool* ok) {
  *ok = false;
  net::Message request;
  request.kind = std::string(kRpcFetchArtifact);
  request.payload = net::WireWriter().Str(name).Take();
  net::Message response;
  bool rpc_ok = false;
  co_await rpc.Call(service, std::move(request), &response, &rpc_ok);
  if (!rpc_ok || response.kind == "prov.error") {
    co_return;
  }
  net::WireReader reader(response.payload);
  *bytes = reader.U64();
  *digest = reader.Digest();
  *ok = reader.AtEnd();
}

sim::Task FetchChunkManifest(net::RpcNode& rpc, net::Address service,
                             const std::string& image,
                             storage::ChunkManifest* manifest, bool* ok) {
  *ok = false;
  net::Message request;
  request.kind = std::string(net::kRpcChunkManifest);
  request.payload = net::WireWriter().Str(image).Take();
  net::Message response;
  bool rpc_ok = false;
  co_await rpc.Call(service, std::move(request), &response, &rpc_ok);
  if (!rpc_ok || response.kind == "prov.error") {
    co_return;
  }
  auto decoded = storage::ChunkManifest::Decode(
      crypto::ByteView(response.payload.data(), response.payload.size()));
  if (!decoded) {
    co_return;
  }
  *manifest = std::move(*decoded);
  *ok = true;
}

}  // namespace bolted::bmi
