// AES-256-XTS sector encryption (IEEE P1619), the cipher LUKS/dm-crypt
// uses in the paper's disk-encryption configuration (aes-xts-plain64).
//
// Sector sizes must be a multiple of the AES block size (true for the
// 512 B / 4 KiB sectors used by the storage substrate), so ciphertext
// stealing is not needed.
//
// The bulk entry points (EncryptSectors/DecryptSectors) process a whole
// span of consecutive sectors in one call; with AES-NI present each
// sector runs through an 8-block pipelined kernel (src/crypto/accel.h).

#ifndef SRC_CRYPTO_AES_XTS_H_
#define SRC_CRYPTO_AES_XTS_H_

#include <cstdint>

#include "src/crypto/aes.h"
#include "src/crypto/bytes.h"

namespace bolted::crypto {

class AesXts {
 public:
  // key is 64 bytes: data key || tweak key (AES-256 halves).
  explicit AesXts(ByteView key);

  // In-place sector transform; data.size() must be a nonzero multiple of
  // 16.  sector_number is the dm-crypt "plain64" IV.
  void EncryptSector(uint64_t sector_number, std::span<uint8_t> data) const;
  void DecryptSector(uint64_t sector_number, std::span<uint8_t> data) const;

  // In-place transform of data.size() / sector_size consecutive sectors
  // starting at first_sector.  data.size() must be a nonzero multiple of
  // sector_size, which must itself be a nonzero multiple of 16.
  void EncryptSectors(uint64_t first_sector, size_t sector_size,
                      std::span<uint8_t> data) const;
  void DecryptSectors(uint64_t first_sector, size_t sector_size,
                      std::span<uint8_t> data) const;

 private:
  void Transform(uint64_t sector_number, std::span<uint8_t> data, bool encrypt) const;

  Aes256 data_cipher_;
  Aes256 tweak_cipher_;
};

}  // namespace bolted::crypto

#endif  // SRC_CRYPTO_AES_XTS_H_
