#include "src/crypto/cpu.h"

#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)
#include <cpuid.h>
#define BOLTED_CPU_X86 1
#endif

namespace bolted::crypto::cpu {
namespace {

#if defined(BOLTED_CPU_X86)
// XGETBV without -mxsave (the intrinsic requires target flags we don't
// want on this translation unit).
unsigned long long ReadXcr0() {
  unsigned int lo = 0, hi = 0;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  return (static_cast<unsigned long long>(hi) << 32) | lo;
}
#endif

Features Probe() {
  Features f;
#if defined(BOLTED_CPU_X86)
  unsigned int eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) {
    return f;
  }
  f.aesni = (ecx & bit_AES) != 0 && (ecx & bit_SSE4_1) != 0;
  f.pclmul = (ecx & bit_PCLMUL) != 0;

  const bool osxsave = (ecx & bit_OSXSAVE) != 0;
  bool ymm_enabled = false;
  if (osxsave) {
    // XCR0 bits 1 (SSE) and 2 (AVX) must both be set by the OS.
    ymm_enabled = (ReadXcr0() & 0x6) == 0x6;
  }

  unsigned int eax7 = 0, ebx7 = 0, ecx7 = 0, edx7 = 0;
  if (__get_cpuid_count(7, 0, &eax7, &ebx7, &ecx7, &edx7)) {
    f.shani = (ebx7 & bit_SHA) != 0;
    f.avx2 = (ebx7 & bit_AVX2) != 0 && ymm_enabled;
  }
#endif
  return f;
}

bool EnvForceScalar() {
  const char* v = std::getenv("BOLTED_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

// Single-threaded simulator: plain statics are sufficient.
bool g_force_scalar = EnvForceScalar();

}  // namespace

const Features& Detect() {
  static const Features f = Probe();
  return f;
}

Features Get() {
  if (g_force_scalar) {
    return Features{};
  }
  return Detect();
}

void SetForceScalar(bool on) { g_force_scalar = on; }

bool ForceScalarEnabled() { return g_force_scalar; }

}  // namespace bolted::crypto::cpu
