// Specialized Montgomery arithmetic with the modulus baked in as template
// constants.  The generic `Montgomery` class in u256.h dispatches through
// out-of-line calls and loads its modulus from memory; here the limbs and
// the -m^-1 mod 2^64 constant are compile-time values, so the CIOS loops
// fully unroll, the zero limb of the P-256 prime drops its multiplies, and
// the prime's m' = 1 makes the reduction quotient free.  This is the field
// layer under the comb/wNAF scalar-multiplication paths in p256.cc; the
// pre-PR reference ladder deliberately keeps using the generic class so
// old-vs-new benches compare against the original cost profile.
//
// Values are in the same Montgomery domain (R = 2^256) as the generic
// class, so the two representations interoperate freely.

#ifndef SRC_CRYPTO_P256_FIELD_H_
#define SRC_CRYPTO_P256_FIELD_H_

#include <cstdint>

#include "src/crypto/u256.h"

namespace bolted::crypto::field {

// -(m0^-1) mod 2^64 by Newton iteration, evaluated at compile time.
constexpr uint64_t MontInvNeg64(uint64_t m0) {
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) {
    inv *= 2 - m0 * inv;
  }
  return ~inv + 1;
}

template <uint64_t M0, uint64_t M1, uint64_t M2, uint64_t M3>
struct MontField {
  static constexpr uint64_t kM[4] = {M0, M1, M2, M3};
  static constexpr uint64_t kInvNeg = MontInvNeg64(M0);

  static U256 Modulus() { return U256{{M0, M1, M2, M3}}; }

  static bool GeModulus(const U256& a) {
    for (int i = 3; i >= 0; --i) {
      if (a.limb[static_cast<size_t>(i)] != kM[i]) {
        return a.limb[static_cast<size_t>(i)] > kM[i];
      }
    }
    return true;  // equal
  }

  static U256 SubModulus(const U256& a) {
    U256 out;
    uint64_t borrow = 0;
    for (int i = 0; i < 4; ++i) {
      const unsigned __int128 diff =
          static_cast<unsigned __int128>(a.limb[static_cast<size_t>(i)]) - kM[i] - borrow;
      out.limb[static_cast<size_t>(i)] = static_cast<uint64_t>(diff);
      borrow = static_cast<uint64_t>(diff >> 64) & 1;
    }
    return out;
  }

  static U256 Add(const U256& a, const U256& b) {
    U256 sum;
    const uint64_t carry = AddCarry(a, b, sum);
    if (carry || GeModulus(sum)) {
      return SubModulus(sum);
    }
    return sum;
  }

  static U256 Sub(const U256& a, const U256& b) {
    U256 diff;
    uint64_t borrow = SubBorrow(a, b, diff);
    if (borrow) {
      uint64_t carry = 0;
      for (int i = 0; i < 4; ++i) {
        const unsigned __int128 s =
            static_cast<unsigned __int128>(diff.limb[static_cast<size_t>(i)]) + kM[i] + carry;
        diff.limb[static_cast<size_t>(i)] = static_cast<uint64_t>(s);
        carry = static_cast<uint64_t>(s >> 64);
      }
    }
    return diff;
  }

  static U256 Neg(const U256& a) {
    if (a.IsZero()) {
      return a;
    }
    U256 out;
    uint64_t borrow = 0;
    for (int i = 0; i < 4; ++i) {
      const unsigned __int128 diff =
          static_cast<unsigned __int128>(kM[i]) - a.limb[static_cast<size_t>(i)] - borrow;
      out.limb[static_cast<size_t>(i)] = static_cast<uint64_t>(diff);
      borrow = static_cast<uint64_t>(diff >> 64) & 1;
    }
    return out;
  }

  // CIOS Montgomery product; same algorithm as Montgomery::Mul, but with
  // constant modulus limbs the compiler unrolls and folds.
  static U256 Mul(const U256& a, const U256& b) {
    uint64_t t[6] = {};
    for (int i = 0; i < 4; ++i) {
      uint64_t carry = 0;
      for (int j = 0; j < 4; ++j) {
        const unsigned __int128 acc =
            static_cast<unsigned __int128>(a.limb[static_cast<size_t>(i)]) *
                b.limb[static_cast<size_t>(j)] +
            t[j] + carry;
        t[j] = static_cast<uint64_t>(acc);
        carry = static_cast<uint64_t>(acc >> 64);
      }
      unsigned __int128 acc = static_cast<unsigned __int128>(t[4]) + carry;
      t[4] = static_cast<uint64_t>(acc);
      t[5] = static_cast<uint64_t>(acc >> 64);

      const uint64_t m = t[0] * kInvNeg;
      {
        const unsigned __int128 first = static_cast<unsigned __int128>(m) * kM[0] + t[0];
        carry = static_cast<uint64_t>(first >> 64);
      }
      for (int j = 1; j < 4; ++j) {
        const unsigned __int128 acc2 =
            static_cast<unsigned __int128>(m) * kM[j] + t[j] + carry;
        t[j - 1] = static_cast<uint64_t>(acc2);
        carry = static_cast<uint64_t>(acc2 >> 64);
      }
      acc = static_cast<unsigned __int128>(t[4]) + carry;
      t[3] = static_cast<uint64_t>(acc);
      t[4] = t[5] + static_cast<uint64_t>(acc >> 64);
      t[5] = 0;
    }

    U256 result{{t[0], t[1], t[2], t[3]}};
    if (t[4] != 0 || GeModulus(result)) {
      return SubModulus(result);
    }
    return result;
  }

  static U256 Sqr(const U256& a) { return Mul(a, a); }
};

// The P-256 field prime p = 2^256 - 2^224 + 2^192 + 2^96 - 1: one limb is
// zero and m' = 1, which is where most of the specialization win comes
// from.
using Fp = MontField<0xffffffffffffffffULL, 0x00000000ffffffffULL, 0x0000000000000000ULL,
                     0xffffffff00000001ULL>;

namespace internal {

// Montgomery reduction of a 512-bit value for the P-256 prime.  m' = 1, so
// each round's quotient is just the low limb; and with the prime's limbs
// [2^64-1, 2^32-1, 0, 2^64-2^32+1] the m*(2^64-1) term telescopes
// (t0 + m*(2^64-1) = m*2^64 exactly), leaving two constant multiplies per
// round.  The rounds stay branch-free; only the final correction tests.
inline U256 P256Reduce512(const uint64_t t[8]) {
  using u128 = unsigned __int128;
  uint64_t t0 = t[0], t1 = t[1], t2 = t[2], t3 = t[3];
  uint64_t t4 = t[4], t5 = t[5], t6 = t[6], t7 = t[7];
  uint64_t spill = 0;  // carries that escaped past the active 5-limb window

  const auto round = [](uint64_t m, uint64_t& a1, uint64_t& a2, uint64_t& a3,
                        uint64_t& a4) -> uint64_t {
    u128 r = static_cast<u128>(m) * 0x00000000ffffffffULL + a1 + m;
    a1 = static_cast<uint64_t>(r);
    r = static_cast<u128>(a2) + static_cast<uint64_t>(r >> 64);
    a2 = static_cast<uint64_t>(r);
    r = static_cast<u128>(m) * 0xffffffff00000001ULL + a3 + static_cast<uint64_t>(r >> 64);
    a3 = static_cast<uint64_t>(r);
    r = static_cast<u128>(a4) + static_cast<uint64_t>(r >> 64);
    a4 = static_cast<uint64_t>(r);
    return static_cast<uint64_t>(r >> 64);
  };

  uint64_t c = round(t0, t1, t2, t3, t4);
  uint64_t c2 = round(t1, t2, t3, t4, t5);
  u128 s = static_cast<u128>(t5) + c;
  t5 = static_cast<uint64_t>(s);
  c = c2 + static_cast<uint64_t>(s >> 64);
  c2 = round(t2, t3, t4, t5, t6);
  s = static_cast<u128>(t6) + c;
  t6 = static_cast<uint64_t>(s);
  c = c2 + static_cast<uint64_t>(s >> 64);
  c2 = round(t3, t4, t5, t6, t7);
  s = static_cast<u128>(t7) + c;
  t7 = static_cast<uint64_t>(s);
  spill = c2 + static_cast<uint64_t>(s >> 64);

  U256 r{{t4, t5, t6, t7}};
  if (spill || Fp::GeModulus(r)) {
    return Fp::SubModulus(r);
  }
  return r;
}

}  // namespace internal

// Fp multiplication: full 512-bit schoolbook product, then the dedicated
// P-256 reduction above.  Measurably faster than the interleaved CIOS of
// the primary template on the latency-bound ladder chains.
template <>
inline U256 Fp::Mul(const U256& a, const U256& b) {
  using u128 = unsigned __int128;
  uint64_t t[8];
  u128 acc;
  uint64_t c;
  acc = static_cast<u128>(a.limb[0]) * b.limb[0];
  t[0] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[0]) * b.limb[1] + c;
  t[1] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[0]) * b.limb[2] + c;
  t[2] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[0]) * b.limb[3] + c;
  t[3] = static_cast<uint64_t>(acc);
  t[4] = static_cast<uint64_t>(acc >> 64);

  acc = static_cast<u128>(a.limb[1]) * b.limb[0] + t[1];
  t[1] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[1]) * b.limb[1] + t[2] + c;
  t[2] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[1]) * b.limb[2] + t[3] + c;
  t[3] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[1]) * b.limb[3] + t[4] + c;
  t[4] = static_cast<uint64_t>(acc);
  t[5] = static_cast<uint64_t>(acc >> 64);

  acc = static_cast<u128>(a.limb[2]) * b.limb[0] + t[2];
  t[2] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[2]) * b.limb[1] + t[3] + c;
  t[3] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[2]) * b.limb[2] + t[4] + c;
  t[4] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[2]) * b.limb[3] + t[5] + c;
  t[5] = static_cast<uint64_t>(acc);
  t[6] = static_cast<uint64_t>(acc >> 64);

  acc = static_cast<u128>(a.limb[3]) * b.limb[0] + t[3];
  t[3] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[3]) * b.limb[1] + t[4] + c;
  t[4] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[3]) * b.limb[2] + t[5] + c;
  t[5] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[3]) * b.limb[3] + t[6] + c;
  t[6] = static_cast<uint64_t>(acc);
  t[7] = static_cast<uint64_t>(acc >> 64);

  return internal::P256Reduce512(t);
}

// Fp squaring: the six off-diagonal products are computed once and doubled
// with shifts, so the product half needs 10 multiplies instead of 16.
template <>
inline U256 Fp::Sqr(const U256& a) {
  using u128 = unsigned __int128;
  uint64_t t[8];
  u128 acc;
  uint64_t c;
  acc = static_cast<u128>(a.limb[0]) * a.limb[1];
  t[1] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[0]) * a.limb[2] + c;
  t[2] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[0]) * a.limb[3] + c;
  t[3] = static_cast<uint64_t>(acc);
  t[4] = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[1]) * a.limb[2] + t[3];
  t[3] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[1]) * a.limb[3] + t[4] + c;
  t[4] = static_cast<uint64_t>(acc);
  t[5] = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[2]) * a.limb[3] + t[5];
  t[5] = static_cast<uint64_t>(acc);
  t[6] = static_cast<uint64_t>(acc >> 64);

  t[7] = t[6] >> 63;
  t[6] = (t[6] << 1) | (t[5] >> 63);
  t[5] = (t[5] << 1) | (t[4] >> 63);
  t[4] = (t[4] << 1) | (t[3] >> 63);
  t[3] = (t[3] << 1) | (t[2] >> 63);
  t[2] = (t[2] << 1) | (t[1] >> 63);
  t[1] = t[1] << 1;

  acc = static_cast<u128>(a.limb[0]) * a.limb[0];
  t[0] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(t[1]) + c;
  t[1] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[1]) * a.limb[1] + t[2] + c;
  t[2] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(t[3]) + c;
  t[3] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[2]) * a.limb[2] + t[4] + c;
  t[4] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(t[5]) + c;
  t[5] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  acc = static_cast<u128>(a.limb[3]) * a.limb[3] + t[6] + c;
  t[6] = static_cast<uint64_t>(acc);
  c = static_cast<uint64_t>(acc >> 64);
  t[7] += c;

  return internal::P256Reduce512(t);
}

// The P-256 group order n (no special structure, but the constant-limb
// unrolling still pays in Sign/Verify's scalar-side arithmetic).
using Fn = MontField<0xf3b9cac2fc632551ULL, 0xbce6faada7179e84ULL, 0xffffffffffffffffULL,
                     0xffffffff00000000ULL>;

}  // namespace bolted::crypto::field

#endif  // SRC_CRYPTO_P256_FIELD_H_
