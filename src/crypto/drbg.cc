#include "src/crypto/drbg.h"

#include "src/crypto/hmac.h"

namespace bolted::crypto {

Drbg::Drbg(ByteView seed) { key_ = Sha256::Hash(seed); }

Drbg::Drbg(uint64_t seed) {
  Bytes bytes;
  AppendU64(bytes, seed);
  key_ = Sha256::Hash(bytes);
}

Bytes Drbg::Generate(size_t length) {
  Bytes out;
  out.reserve(length);
  while (out.size() < length) {
    Bytes block_input;
    AppendU64(block_input, counter_++);
    const Digest block = HmacSha256(DigestView(key_), block_input);
    const size_t take = std::min(block.size(), length - out.size());
    out.insert(out.end(), block.begin(), block.begin() + static_cast<ptrdiff_t>(take));
  }
  return out;
}

void Drbg::Reseed(ByteView data) {
  Bytes input = DigestBytes(key_);
  Append(input, data);
  key_ = Sha256::Hash(input);
}

}  // namespace bolted::crypto
