// ECIES over P-256: public-key sealing of short secrets.
//
// Used by Keylime's bootstrap-key split: the tenant seals the U half to
// the agent's ephemeral node key, the cloud verifier seals the V half.
// Construction: ephemeral ECDH -> HKDF -> AES-256-GCM.

#ifndef SRC_CRYPTO_ECIES_H_
#define SRC_CRYPTO_ECIES_H_

#include <optional>

#include "src/crypto/bytes.h"
#include "src/crypto/drbg.h"
#include "src/crypto/p256.h"

namespace bolted::crypto {

// Blob layout: ephemeral public key (65) || nonce (12) || GCM ciphertext.
Bytes EciesSeal(const EcPoint& recipient_public, ByteView plaintext, Drbg& drbg);
std::optional<Bytes> EciesOpen(const U256& recipient_private, ByteView blob);

}  // namespace bolted::crypto

#endif  // SRC_CRYPTO_ECIES_H_
