// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// Used for Keylime's key-derivation steps, the TPM emulator's internal
// key hierarchy, and deterministic ECDSA nonces (RFC 6979 style).

#ifndef SRC_CRYPTO_HMAC_H_
#define SRC_CRYPTO_HMAC_H_

#include "src/crypto/bytes.h"
#include "src/crypto/sha256.h"

namespace bolted::crypto {

Digest HmacSha256(ByteView key, ByteView message);

// HKDF-Extract + HKDF-Expand producing length output bytes.
Bytes Hkdf(ByteView salt, ByteView input_key_material, ByteView info, size_t length);

}  // namespace bolted::crypto

#endif  // SRC_CRYPTO_HMAC_H_
