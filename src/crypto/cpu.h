// Runtime CPU feature detection for the crypto dispatch layer.
//
// Every primitive with an accelerated path (SHA-256, AES, GHASH, XTS)
// probes these flags once when its object is constructed and picks either
// the portable scalar implementation or the SIMD one.  Accelerated output
// is byte-identical to scalar output, so which backend runs never affects
// simulation results — only wall-clock time.
//
// `BOLTED_FORCE_SCALAR=1` in the environment (or SetForceScalar(true)
// from code, e.g. tests and benchmarks) pins the scalar reference paths.

#ifndef SRC_CRYPTO_CPU_H_
#define SRC_CRYPTO_CPU_H_

namespace bolted::crypto::cpu {

struct Features {
  bool aesni = false;   // AES-NI (+SSE4.1): pipelined block/XTS/CTR kernels
  bool pclmul = false;  // PCLMULQDQ: carry-less-multiply GHASH
  bool shani = false;   // SHA extensions: SHA-256 compression
  bool avx2 = false;    // 256-bit integer SIMD (OS must enable YMM state)
};

// Raw hardware probe, cached after the first call.  Ignores force-scalar.
const Features& Detect();

// Effective features: Detect() masked to all-false while force-scalar is
// active.  This is what dispatch call sites consult.
Features Get();

// Overrides the BOLTED_FORCE_SCALAR environment default at run time.
// Objects constructed while the flag is set capture scalar backends and
// keep them for their lifetime.
void SetForceScalar(bool on);
bool ForceScalarEnabled();

}  // namespace bolted::crypto::cpu

#endif  // SRC_CRYPTO_CPU_H_
