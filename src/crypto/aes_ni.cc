// AES-NI / PCLMULQDQ kernels: pipelined ECB, XTS sector transform, GCM
// CTR keystream, and carry-less-multiply GHASH with a precomputed H-power
// table (4-block aggregated reduction).
//
// Compiled with -maes -mpclmul -msse4.1 -mssse3; reachable only through
// the cpu::Get() dispatch, so binaries still run on CPUs without the
// extensions.  The GHASH reduction follows the classic Intel CLMUL white
// paper (bit-reflected operands, shift-left-one then fold modulo
// x^128 + x^7 + x^2 + x + 1).

#include "src/crypto/accel.h"

#include <cstring>

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace bolted::crypto::internal {
namespace {

constexpr int kRounds = 14;  // AES-256

// Encrypts `Lanes` blocks in parallel through the full round pipeline.
template <int Lanes>
inline void EncryptLanes(const __m128i rk[kRounds + 1], __m128i b[Lanes]) {
  for (int j = 0; j < Lanes; ++j) b[j] = _mm_xor_si128(b[j], rk[0]);
  for (int r = 1; r < kRounds; ++r) {
    for (int j = 0; j < Lanes; ++j) b[j] = _mm_aesenc_si128(b[j], rk[r]);
  }
  for (int j = 0; j < Lanes; ++j) b[j] = _mm_aesenclast_si128(b[j], rk[kRounds]);
}

template <int Lanes>
inline void DecryptLanes(const __m128i rk[kRounds + 1], __m128i b[Lanes]) {
  for (int j = 0; j < Lanes; ++j) b[j] = _mm_xor_si128(b[j], rk[0]);
  for (int r = 1; r < kRounds; ++r) {
    for (int j = 0; j < Lanes; ++j) b[j] = _mm_aesdec_si128(b[j], rk[r]);
  }
  for (int j = 0; j < Lanes; ++j) b[j] = _mm_aesdeclast_si128(b[j], rk[kRounds]);
}

inline void LoadSchedule(const uint8_t bytes[kAesRoundKeyBytes],
                         __m128i rk[kRounds + 1]) {
  for (int r = 0; r <= kRounds; ++r) {
    rk[r] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(bytes + 16 * r));
  }
}

// Multiply the XTS tweak by x in GF(2^128) (little-endian 128-bit shift
// left by one with the 0x87 feedback), entirely in SSE.
inline __m128i XtsMulAlpha(__m128i t) {
  __m128i carries = _mm_srai_epi32(t, 31);  // msb of each dword, sign-spread
  // Rotate dword carries up one lane; the carry out of lane 3 wraps to
  // lane 0 where it becomes the 0x87 feedback.
  carries = _mm_shuffle_epi32(carries, _MM_SHUFFLE(2, 1, 0, 3));
  carries = _mm_and_si128(carries, _mm_set_epi32(1, 1, 1, 0x87));
  return _mm_xor_si128(_mm_slli_epi32(t, 1), carries);
}

// ------------------------------------------------------------------ GHASH

// Accumulates the 256-bit carry-less product a*b into (lo, hi) using
// Karatsuba-free four-multiply schoolbook.
inline void ClmulAccumulate(__m128i a, __m128i b, __m128i* lo, __m128i* hi) {
  const __m128i t0 = _mm_clmulepi64_si128(a, b, 0x00);
  __m128i mid = _mm_xor_si128(_mm_clmulepi64_si128(a, b, 0x10),
                              _mm_clmulepi64_si128(a, b, 0x01));
  const __m128i t3 = _mm_clmulepi64_si128(a, b, 0x11);
  *lo = _mm_xor_si128(*lo, _mm_xor_si128(t0, _mm_slli_si128(mid, 8)));
  *hi = _mm_xor_si128(*hi, _mm_xor_si128(t3, _mm_srli_si128(mid, 8)));
}

// Reduces a 256-bit product (in bit-reflected GCM representation) to 128
// bits: shift left one, then fold modulo the GHASH polynomial.
inline __m128i GfReduce(__m128i lo, __m128i hi) {
  // Shift the 256-bit value (hi:lo) left by one bit.
  __m128i lo_carry = _mm_srli_epi32(lo, 31);
  __m128i hi_carry = _mm_srli_epi32(hi, 31);
  lo = _mm_slli_epi32(lo, 1);
  hi = _mm_slli_epi32(hi, 1);
  const __m128i cross = _mm_srli_si128(lo_carry, 12);  // lo bit 127 -> hi bit 0
  lo_carry = _mm_slli_si128(lo_carry, 4);
  hi_carry = _mm_slli_si128(hi_carry, 4);
  lo = _mm_or_si128(lo, lo_carry);
  hi = _mm_or_si128(hi, _mm_or_si128(hi_carry, cross));

  // Fold lo into hi modulo x^128 + x^127 + x^126 + x^121 + 1 (reflected).
  __m128i a = _mm_slli_epi32(lo, 31);
  __m128i b = _mm_slli_epi32(lo, 30);
  __m128i c = _mm_slli_epi32(lo, 25);
  a = _mm_xor_si128(a, _mm_xor_si128(b, c));
  const __m128i a_hi = _mm_srli_si128(a, 4);
  a = _mm_slli_si128(a, 12);
  lo = _mm_xor_si128(lo, a);

  __m128i d = _mm_srli_epi32(lo, 1);
  __m128i e = _mm_srli_epi32(lo, 2);
  __m128i f = _mm_srli_epi32(lo, 7);
  d = _mm_xor_si128(d, _mm_xor_si128(e, f));
  d = _mm_xor_si128(d, a_hi);
  lo = _mm_xor_si128(lo, d);
  return _mm_xor_si128(hi, lo);
}

inline __m128i GfMul(__m128i a, __m128i b) {
  __m128i lo = _mm_setzero_si128();
  __m128i hi = _mm_setzero_si128();
  ClmulAccumulate(a, b, &lo, &hi);
  return GfReduce(lo, hi);
}

inline __m128i ByteSwap(__m128i x) {
  const __m128i rev =
      _mm_set_epi64x(0x0001020304050607ULL, 0x08090a0b0c0d0e0fULL);
  return _mm_shuffle_epi8(x, rev);
}

inline __m128i LoadBlockBE(const uint8_t* p) {
  return ByteSwap(_mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
}

}  // namespace

void AesNiMakeDecryptKeys(const uint8_t enc_rk[kAesRoundKeyBytes],
                          uint8_t dec_rk[kAesRoundKeyBytes]) {
  __m128i enc[kRounds + 1];
  LoadSchedule(enc_rk, enc);
  __m128i* out = reinterpret_cast<__m128i*>(dec_rk);
  _mm_storeu_si128(out + 0, enc[kRounds]);
  for (int r = 1; r < kRounds; ++r) {
    _mm_storeu_si128(out + r, _mm_aesimc_si128(enc[kRounds - r]));
  }
  _mm_storeu_si128(out + kRounds, enc[0]);
}

void AesNiEncryptBlocks(const uint8_t enc_rk[kAesRoundKeyBytes], const uint8_t* in,
                        uint8_t* out, size_t nblocks) {
  __m128i rk[kRounds + 1];
  LoadSchedule(enc_rk, rk);
  while (nblocks >= 8) {
    __m128i b[8];
    for (int j = 0; j < 8; ++j) {
      b[j] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * j));
    }
    EncryptLanes<8>(rk, b);
    for (int j = 0; j < 8; ++j) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * j), b[j]);
    }
    in += 128;
    out += 128;
    nblocks -= 8;
  }
  while (nblocks-- > 0) {
    __m128i b[1] = {_mm_loadu_si128(reinterpret_cast<const __m128i*>(in))};
    EncryptLanes<1>(rk, b);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b[0]);
    in += 16;
    out += 16;
  }
}

void AesNiDecryptBlocks(const uint8_t dec_rk[kAesRoundKeyBytes], const uint8_t* in,
                        uint8_t* out, size_t nblocks) {
  __m128i rk[kRounds + 1];
  LoadSchedule(dec_rk, rk);
  while (nblocks >= 8) {
    __m128i b[8];
    for (int j = 0; j < 8; ++j) {
      b[j] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * j));
    }
    DecryptLanes<8>(rk, b);
    for (int j = 0; j < 8; ++j) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * j), b[j]);
    }
    in += 128;
    out += 128;
    nblocks -= 8;
  }
  while (nblocks-- > 0) {
    __m128i b[1] = {_mm_loadu_si128(reinterpret_cast<const __m128i*>(in))};
    DecryptLanes<1>(rk, b);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), b[0]);
    in += 16;
    out += 16;
  }
}

void AesNiXtsSector(const uint8_t data_rk[kAesRoundKeyBytes],
                    const uint8_t tweak_rk[kAesRoundKeyBytes], uint64_t sector_number,
                    uint8_t* data, size_t len, bool encrypt) {
  __m128i rk[kRounds + 1];
  __m128i trk[kRounds + 1];
  LoadSchedule(data_rk, rk);
  LoadSchedule(tweak_rk, trk);

  // plain64 IV: little-endian sector number, zero padded, then encrypted
  // under the tweak key.
  __m128i tweak[1] = {_mm_set_epi64x(0, static_cast<long long>(sector_number))};
  EncryptLanes<1>(trk, tweak);
  __m128i t = tweak[0];

  size_t nblocks = len / 16;
  while (nblocks >= 8) {
    __m128i tw[8];
    for (int j = 0; j < 8; ++j) {
      tw[j] = t;
      t = XtsMulAlpha(t);
    }
    __m128i b[8];
    for (int j = 0; j < 8; ++j) {
      b[j] = _mm_xor_si128(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(data + 16 * j)), tw[j]);
    }
    if (encrypt) {
      EncryptLanes<8>(rk, b);
    } else {
      DecryptLanes<8>(rk, b);
    }
    for (int j = 0; j < 8; ++j) {
      _mm_storeu_si128(reinterpret_cast<__m128i*>(data + 16 * j),
                       _mm_xor_si128(b[j], tw[j]));
    }
    data += 128;
    nblocks -= 8;
  }
  while (nblocks-- > 0) {
    __m128i b[1] = {
        _mm_xor_si128(_mm_loadu_si128(reinterpret_cast<const __m128i*>(data)), t)};
    if (encrypt) {
      EncryptLanes<1>(rk, b);
    } else {
      DecryptLanes<1>(rk, b);
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(data), _mm_xor_si128(b[0], t));
    t = XtsMulAlpha(t);
    data += 16;
  }
}

void AesNiCtr32Xor(const uint8_t enc_rk[kAesRoundKeyBytes], const uint8_t nonce[12],
                   uint32_t counter, const uint8_t* in, uint8_t* out, size_t len) {
  __m128i rk[kRounds + 1];
  LoadSchedule(enc_rk, rk);

  uint8_t base_bytes[16] = {};
  std::memcpy(base_bytes, nonce, 12);
  const __m128i base = _mm_loadu_si128(reinterpret_cast<const __m128i*>(base_bytes));

  auto counter_block = [&](uint32_t c) {
    return _mm_insert_epi32(base, static_cast<int>(__builtin_bswap32(c)), 3);
  };

  while (len >= 128) {
    __m128i b[8];
    for (int j = 0; j < 8; ++j) {
      b[j] = counter_block(counter + static_cast<uint32_t>(j));
    }
    EncryptLanes<8>(rk, b);
    for (int j = 0; j < 8; ++j) {
      const __m128i x =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + 16 * j));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 16 * j),
                       _mm_xor_si128(x, b[j]));
    }
    counter += 8;
    in += 128;
    out += 128;
    len -= 128;
  }
  while (len > 0) {
    __m128i b[1] = {counter_block(counter++)};
    EncryptLanes<1>(rk, b);
    uint8_t keystream[16];
    _mm_storeu_si128(reinterpret_cast<__m128i*>(keystream), b[0]);
    const size_t n = len < 16 ? len : 16;
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<uint8_t>(in[i] ^ keystream[i]);
    }
    in += n;
    out += n;
    len -= n;
  }
}

void GhashPrecompute(const uint8_t h[16], uint8_t table[kGhashTableBytes]) {
  const __m128i h1 = LoadBlockBE(h);
  __m128i* out = reinterpret_cast<__m128i*>(table);
  __m128i power = h1;
  _mm_storeu_si128(out + 0, power);  // H^1
  for (int i = 1; i < 4; ++i) {
    power = GfMul(power, h1);
    _mm_storeu_si128(out + i, power);  // H^(i+1)
  }
}

void GhashUpdateClmul(const uint8_t table[kGhashTableBytes], uint8_t y[16],
                      const uint8_t* data, size_t len) {
  const __m128i* powers = reinterpret_cast<const __m128i*>(table);
  const __m128i h1 = _mm_loadu_si128(powers + 0);
  const __m128i h2 = _mm_loadu_si128(powers + 1);
  const __m128i h3 = _mm_loadu_si128(powers + 2);
  const __m128i h4 = _mm_loadu_si128(powers + 3);

  __m128i acc = LoadBlockBE(y);

  // 4-block aggregated reduction:
  //   acc' = ((acc + x1)*H^4 + x2*H^3 + x3*H^2 + x4*H) mod P
  // with one shift-and-fold reduction per group.
  while (len >= 64) {
    __m128i lo = _mm_setzero_si128();
    __m128i hi = _mm_setzero_si128();
    ClmulAccumulate(_mm_xor_si128(acc, LoadBlockBE(data)), h4, &lo, &hi);
    ClmulAccumulate(LoadBlockBE(data + 16), h3, &lo, &hi);
    ClmulAccumulate(LoadBlockBE(data + 32), h2, &lo, &hi);
    ClmulAccumulate(LoadBlockBE(data + 48), h1, &lo, &hi);
    acc = GfReduce(lo, hi);
    data += 64;
    len -= 64;
  }
  while (len > 0) {
    uint8_t block[16] = {};
    const size_t n = len < 16 ? len : 16;
    std::memcpy(block, data, n);
    acc = GfMul(_mm_xor_si128(acc, LoadBlockBE(block)), h1);
    data += n;
    len -= n;
  }

  _mm_storeu_si128(reinterpret_cast<__m128i*>(y), ByteSwap(acc));
}

}  // namespace bolted::crypto::internal

#else  // !x86-64

#include <cstdlib>

namespace bolted::crypto::internal {

// Stubs: the dispatch layer never selects these off x86-64.
void AesNiMakeDecryptKeys(const uint8_t*, uint8_t*) { std::abort(); }
void AesNiEncryptBlocks(const uint8_t*, const uint8_t*, uint8_t*, size_t) {
  std::abort();
}
void AesNiDecryptBlocks(const uint8_t*, const uint8_t*, uint8_t*, size_t) {
  std::abort();
}
void AesNiXtsSector(const uint8_t*, const uint8_t*, uint64_t, uint8_t*, size_t,
                    bool) {
  std::abort();
}
void AesNiCtr32Xor(const uint8_t*, const uint8_t*, uint32_t, const uint8_t*,
                   uint8_t*, size_t) {
  std::abort();
}
void GhashPrecompute(const uint8_t*, uint8_t*) { std::abort(); }
void GhashUpdateClmul(const uint8_t*, uint8_t*, const uint8_t*, size_t) {
  std::abort();
}

}  // namespace bolted::crypto::internal

#endif
