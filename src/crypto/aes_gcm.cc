#include "src/crypto/aes_gcm.h"

#include <cassert>
#include <cstring>

#include "src/crypto/accel.h"
#include "src/crypto/cpu.h"

namespace bolted::crypto {
namespace {

void StoreBE64(uint8_t* p, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<uint8_t>(v >> (56 - 8 * i));
  }
}

uint64_t LoadBE64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | p[i];
  }
  return v;
}

}  // namespace

AesGcm::AesGcm(ByteView key) : cipher_(key) {
  uint8_t zero[16] = {};
  uint8_t h[16];
  cipher_.EncryptBlock(zero, h);
  h_.hi = LoadBE64(h);
  h_.lo = LoadBE64(h + 8);
  accel_ = cipher_.accelerated() && cpu::Get().pclmul;
  if (accel_) {
    internal::GhashPrecompute(h, h_powers_);
  } else {
    std::memset(h_powers_, 0, sizeof(h_powers_));
  }
}

// GF(2^128) multiply x * H using GCM's reflected-bit convention.
AesGcm::Block AesGcm::GhashMul(const Block& x) const {
  Block z;
  Block v = h_;
  for (int i = 0; i < 128; ++i) {
    const uint64_t word = i < 64 ? x.hi : x.lo;
    const int bit = 63 - (i % 64);
    if ((word >> bit) & 1) {
      z.hi ^= v.hi;
      z.lo ^= v.lo;
    }
    const bool lsb = v.lo & 1;
    v.lo = (v.lo >> 1) | (v.hi << 63);
    v.hi >>= 1;
    if (lsb) {
      v.hi ^= 0xe100000000000000u;
    }
  }
  return z;
}

AesGcm::Block AesGcm::Ghash(ByteView aad, ByteView ciphertext) const {
  if (accel_) {
    uint8_t y[16] = {};
    internal::GhashUpdateClmul(h_powers_, y, aad.data(), aad.size());
    internal::GhashUpdateClmul(h_powers_, y, ciphertext.data(), ciphertext.size());
    uint8_t lengths[16];
    StoreBE64(lengths, static_cast<uint64_t>(aad.size()) * 8);
    StoreBE64(lengths + 8, static_cast<uint64_t>(ciphertext.size()) * 8);
    internal::GhashUpdateClmul(h_powers_, y, lengths, 16);
    Block s;
    s.hi = LoadBE64(y);
    s.lo = LoadBE64(y + 8);
    return s;
  }

  Block s;
  auto absorb = [&](ByteView data) {
    for (size_t off = 0; off < data.size(); off += 16) {
      uint8_t block[16] = {};
      const size_t n = std::min<size_t>(16, data.size() - off);
      std::memcpy(block, data.data() + off, n);
      s.hi ^= LoadBE64(block);
      s.lo ^= LoadBE64(block + 8);
      s = GhashMul(s);
    }
  };
  absorb(aad);
  absorb(ciphertext);
  s.hi ^= static_cast<uint64_t>(aad.size()) * 8;
  s.lo ^= static_cast<uint64_t>(ciphertext.size()) * 8;
  s = GhashMul(s);
  return s;
}

void AesGcm::Ctr(ByteView nonce, uint32_t initial_counter, ByteView in,
                 uint8_t* out) const {
  if (in.empty()) {
    return;
  }
  if (accel_) {
    internal::AesNiCtr32Xor(cipher_.enc_round_key_bytes(), nonce.data(),
                            initial_counter, in.data(), out, in.size());
    return;
  }
  uint8_t counter_block[16];
  std::memcpy(counter_block, nonce.data(), kNonceSize);
  uint32_t counter = initial_counter;
  for (size_t off = 0; off < in.size(); off += 16) {
    counter_block[12] = static_cast<uint8_t>(counter >> 24);
    counter_block[13] = static_cast<uint8_t>(counter >> 16);
    counter_block[14] = static_cast<uint8_t>(counter >> 8);
    counter_block[15] = static_cast<uint8_t>(counter);
    uint8_t keystream[16];
    cipher_.EncryptBlock(counter_block, keystream);
    const size_t n = std::min<size_t>(16, in.size() - off);
    for (size_t i = 0; i < n; ++i) {
      out[off + i] = in[off + i] ^ keystream[i];
    }
    ++counter;
  }
}

void AesGcm::ComputeTag(ByteView nonce, ByteView aad, ByteView ciphertext,
                        uint8_t tag[kTagSize]) const {
  const Block s = Ghash(aad, ciphertext);
  uint8_t j0[16];
  std::memcpy(j0, nonce.data(), kNonceSize);
  j0[12] = 0;
  j0[13] = 0;
  j0[14] = 0;
  j0[15] = 1;
  uint8_t ek_j0[16];
  cipher_.EncryptBlock(j0, ek_j0);

  StoreBE64(tag, s.hi);
  StoreBE64(tag + 8, s.lo);
  for (size_t i = 0; i < kTagSize; ++i) {
    tag[i] ^= ek_j0[i];
  }
}

void AesGcm::SealTo(ByteView nonce, ByteView plaintext, ByteView aad,
                    uint8_t* out) const {
  assert(nonce.size() == kNonceSize);
  Ctr(nonce, 2, plaintext, out);
  ComputeTag(nonce, aad, ByteView(out, plaintext.size()), out + plaintext.size());
}

Bytes AesGcm::Seal(ByteView nonce, ByteView plaintext, ByteView aad) const {
  Bytes out(plaintext.size() + kTagSize);
  SealTo(nonce, plaintext, aad, out.data());
  return out;
}

std::optional<Bytes> AesGcm::Open(ByteView nonce, ByteView ciphertext_and_tag,
                                  ByteView aad) const {
  assert(nonce.size() == kNonceSize);
  if (ciphertext_and_tag.size() < kTagSize) {
    return std::nullopt;
  }
  const size_t ct_len = ciphertext_and_tag.size() - kTagSize;
  const ByteView ciphertext = ciphertext_and_tag.subspan(0, ct_len);
  const ByteView tag = ciphertext_and_tag.subspan(ct_len);

  uint8_t expected[kTagSize];
  ComputeTag(nonce, aad, ciphertext, expected);
  if (!ConstantTimeEqual(ByteView(expected, kTagSize), tag)) {
    return std::nullopt;
  }

  Bytes plaintext(ct_len);
  Ctr(nonce, 2, ciphertext, plaintext.data());
  return plaintext;
}

}  // namespace bolted::crypto
