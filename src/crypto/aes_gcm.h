// AES-256-GCM authenticated encryption (NIST SP 800-38D).
//
// GCM is the AEAD the paper's IPsec configuration uses (AES-256-GCM
// SHA2-256); it also protects Keylime's payload delivery in this
// implementation.
//
// With AES-NI + PCLMULQDQ present (src/crypto/cpu.h) the CTR keystream is
// pipelined 8 blocks wide and GHASH uses a carry-less-multiply kernel
// with a precomputed H-power table; output is byte-identical to the
// scalar reference.

#ifndef SRC_CRYPTO_AES_GCM_H_
#define SRC_CRYPTO_AES_GCM_H_

#include <cstdint>
#include <optional>

#include "src/crypto/aes.h"
#include "src/crypto/bytes.h"

namespace bolted::crypto {

class AesGcm {
 public:
  static constexpr size_t kTagSize = 16;
  static constexpr size_t kNonceSize = 12;

  // key is 32 bytes (AES-256).
  explicit AesGcm(ByteView key);

  // Returns ciphertext || 16-byte tag.
  Bytes Seal(ByteView nonce, ByteView plaintext, ByteView aad) const;
  // Seals directly into caller storage: writes plaintext.size() + kTagSize
  // bytes at out (which must not alias plaintext).  Lets hot paths build a
  // framed wire message without an intermediate ciphertext copy.
  void SealTo(ByteView nonce, ByteView plaintext, ByteView aad, uint8_t* out) const;
  // Returns plaintext, or nullopt on authentication failure.
  std::optional<Bytes> Open(ByteView nonce, ByteView ciphertext_and_tag,
                            ByteView aad) const;

 private:
  struct Block {
    uint64_t hi = 0;
    uint64_t lo = 0;
  };

  Block GhashMul(const Block& x) const;
  Block Ghash(ByteView aad, ByteView ciphertext) const;
  void Ctr(ByteView nonce, uint32_t initial_counter, ByteView in, uint8_t* out) const;
  void ComputeTag(ByteView nonce, ByteView aad, ByteView ciphertext,
                  uint8_t tag[kTagSize]) const;

  Aes256 cipher_;
  Block h_;  // GHASH key, E(K, 0^128)
  // Precomputed H^1..H^4 for the CLMUL backend; valid only when accel_.
  uint8_t h_powers_[64];
  bool accel_ = false;
};

}  // namespace bolted::crypto

#endif  // SRC_CRYPTO_AES_GCM_H_
