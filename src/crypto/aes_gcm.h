// AES-256-GCM authenticated encryption (NIST SP 800-38D).
//
// GCM is the AEAD the paper's IPsec configuration uses (AES-256-GCM
// SHA2-256); it also protects Keylime's payload delivery in this
// implementation.

#ifndef SRC_CRYPTO_AES_GCM_H_
#define SRC_CRYPTO_AES_GCM_H_

#include <cstdint>
#include <optional>

#include "src/crypto/aes.h"
#include "src/crypto/bytes.h"

namespace bolted::crypto {

class AesGcm {
 public:
  static constexpr size_t kTagSize = 16;
  static constexpr size_t kNonceSize = 12;

  // key is 32 bytes (AES-256).
  explicit AesGcm(ByteView key);

  // Returns ciphertext || 16-byte tag.
  Bytes Seal(ByteView nonce, ByteView plaintext, ByteView aad) const;
  // Returns plaintext, or nullopt on authentication failure.
  std::optional<Bytes> Open(ByteView nonce, ByteView ciphertext_and_tag,
                            ByteView aad) const;

 private:
  struct Block {
    uint64_t hi = 0;
    uint64_t lo = 0;
  };

  Block GhashMul(const Block& x) const;
  Block Ghash(ByteView aad, ByteView ciphertext) const;
  void Ctr(ByteView nonce, uint32_t initial_counter, ByteView in, uint8_t* out) const;

  Aes256 cipher_;
  Block h_;  // GHASH key, E(K, 0^128)
};

}  // namespace bolted::crypto

#endif  // SRC_CRYPTO_AES_GCM_H_
