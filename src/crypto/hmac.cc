#include "src/crypto/hmac.h"

#include <cstring>

namespace bolted::crypto {

Digest HmacSha256(ByteView key, ByteView message) {
  uint8_t block_key[Sha256::kBlockSize] = {};
  if (key.size() > Sha256::kBlockSize) {
    const Digest hashed = Sha256::Hash(key);
    std::memcpy(block_key, hashed.data(), hashed.size());
  } else if (!key.empty()) {  // empty key (HKDF with no salt): all-zero block
    std::memcpy(block_key, key.data(), key.size());
  }

  uint8_t ipad[Sha256::kBlockSize];
  uint8_t opad[Sha256::kBlockSize];
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad[i] = block_key[i] ^ 0x36;
    opad[i] = block_key[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ByteView(ipad, sizeof(ipad)));
  inner.Update(message);
  const Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(ByteView(opad, sizeof(opad)));
  outer.Update(DigestView(inner_digest));
  return outer.Finish();
}

Bytes Hkdf(ByteView salt, ByteView input_key_material, ByteView info, size_t length) {
  const Digest prk = HmacSha256(salt, input_key_material);

  Bytes out;
  out.reserve(length);
  Bytes t;
  uint8_t counter = 1;
  while (out.size() < length) {
    Bytes block = t;
    Append(block, info);
    block.push_back(counter++);
    const Digest d = HmacSha256(DigestView(prk), block);
    t.assign(d.begin(), d.end());
    const size_t take = std::min(t.size(), length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<ptrdiff_t>(take));
  }
  return out;
}

}  // namespace bolted::crypto
