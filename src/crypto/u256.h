// Fixed-width 256-bit integers and Montgomery modular arithmetic.
//
// This is the arithmetic substrate for the P-256 implementation used by
// the TPM emulator's EK/AIK signatures (quotes) and the Keylime bootstrap
// key exchange.  Limbs are little-endian uint64s.

#ifndef SRC_CRYPTO_U256_H_
#define SRC_CRYPTO_U256_H_

#include <array>
#include <cstdint>
#include <span>

#include "src/crypto/bytes.h"

namespace bolted::crypto {

struct U256 {
  std::array<uint64_t, 4> limb = {0, 0, 0, 0};

  static U256 Zero() { return U256{}; }
  static U256 One() { return U256{{1, 0, 0, 0}}; }
  // Parses a 64-hex-digit big-endian string (no prefix).  Asserts on
  // malformed input; used for embedded curve constants and tests.
  static U256 FromHexString(std::string_view hex);
  // Big-endian bytes; short inputs are left-padded, long inputs truncated
  // to the low 256 bits (leading bytes dropped).
  static U256 FromBytes(ByteView be_bytes);

  Bytes ToBytes() const;  // 32 bytes, big-endian
  std::string ToHexString() const;

  bool IsZero() const { return (limb[0] | limb[1] | limb[2] | limb[3]) == 0; }
  bool IsOdd() const { return limb[0] & 1; }
  bool Bit(int i) const { return (limb[i / 64] >> (i % 64)) & 1; }

  auto operator<=>(const U256& other) const {
    for (int i = 3; i >= 0; --i) {
      if (limb[i] != other.limb[i]) {
        return limb[i] <=> other.limb[i];
      }
    }
    return std::strong_ordering::equal;
  }
  bool operator==(const U256&) const = default;
};

// out = a + b, returns carry.
uint64_t AddCarry(const U256& a, const U256& b, U256& out);
// out = a - b, returns borrow.
uint64_t SubBorrow(const U256& a, const U256& b, U256& out);

// (a >> 1) with `top` shifted in as the new bit 255 — the halving step of
// the binary extended-Euclid inverse, where (x + m) can carry into bit 256.
inline U256 ShiftRight1(const U256& a, uint64_t top = 0) {
  U256 out;
  for (int i = 0; i < 3; ++i) {
    out.limb[static_cast<size_t>(i)] =
        (a.limb[static_cast<size_t>(i)] >> 1) | (a.limb[static_cast<size_t>(i) + 1] << 63);
  }
  out.limb[3] = (a.limb[3] >> 1) | (top << 63);
  return out;
}

// a^-1 mod m for odd m and gcd(a, m) = 1, via signed-62-limb divsteps
// (Bernstein–Yang safegcd, variable-time): the gcd state collapses through
// 64-bit transition matrices instead of one U256 pass per bit, which makes
// it several times faster again than the binary extended Euclid below.
// Plain (non Montgomery) domain; requires a < m; returns zero for a = 0.
U256 ModInverseOdd(const U256& a, const U256& m);

// The pre-divstep implementation (binary extended Euclid, one bit per
// round).  Kept as the differential-test oracle for ModInverseOdd.
inline U256 ModInverseOddBinary(const U256& a, const U256& m) {
  if (a.IsZero()) {
    return U256::Zero();
  }
  // Invariants: x1*a ≡ u (mod m), x2*a ≡ v (mod m).  Each round strips
  // factors of two from u/v (halving x1/x2 modulo the odd m) and then
  // subtracts the smaller from the larger, so u+v shrinks geometrically.
  U256 u = a;
  U256 v = m;
  U256 x1 = U256::One();
  U256 x2 = U256::Zero();
  const U256 one = U256::One();
  while (u != one && v != one) {
    while (!u.IsOdd()) {
      u = ShiftRight1(u);
      if (x1.IsOdd()) {
        const uint64_t carry = AddCarry(x1, m, x1);
        x1 = ShiftRight1(x1, carry);
      } else {
        x1 = ShiftRight1(x1);
      }
    }
    while (!v.IsOdd()) {
      v = ShiftRight1(v);
      if (x2.IsOdd()) {
        const uint64_t carry = AddCarry(x2, m, x2);
        x2 = ShiftRight1(x2, carry);
      } else {
        x2 = ShiftRight1(x2);
      }
    }
    if (u >= v) {
      SubBorrow(u, v, u);
      if (SubBorrow(x1, x2, x1)) {
        AddCarry(x1, m, x1);
      }
    } else {
      SubBorrow(v, u, v);
      if (SubBorrow(x2, x1, x2)) {
        AddCarry(x2, m, x2);
      }
    }
  }
  return u == one ? x1 : x2;
}

// Montgomery arithmetic modulo a fixed odd modulus with its top bit set
// (true for the P-256 field prime and group order).  Values passed to
// Mul/Exp must be in the Montgomery domain (use ToMont/FromMont);
// Add/Sub/Neg work in either domain as they are plain modular ops.
class Montgomery {
 public:
  explicit Montgomery(const U256& modulus);

  const U256& modulus() const { return m_; }

  U256 ToMont(const U256& a) const;    // a * R mod m
  U256 FromMont(const U256& a) const;  // a * R^-1 mod m

  U256 Add(const U256& a, const U256& b) const;
  U256 Sub(const U256& a, const U256& b) const;
  U256 Neg(const U256& a) const;
  U256 Mul(const U256& a, const U256& b) const;  // Montgomery product
  U256 Sqr(const U256& a) const { return Mul(a, a); }
  U256 Exp(const U256& base, const U256& exponent) const;  // base in Mont domain
  // Modular inverse via Fermat's little theorem (modulus must be prime).
  // Input and output are in the Montgomery domain.
  U256 Inverse(const U256& a) const;
  // Same value as Inverse but via binary extended Euclid (ModInverseOdd)
  // plus two Montgomery products to fix up the domain — several times
  // faster.  Kept separate so the pre-PR reference paths retain their
  // original cost profile.
  U256 InverseBinary(const U256& a) const;
  // Montgomery-trick batch inversion: replaces every element of `values`
  // with its inverse at the cost of ONE inversion plus 3(n-1) products.
  // All elements must be nonzero; Montgomery domain in and out.
  void BatchInvert(std::span<U256> values) const;
  // Reduces an arbitrary 256-bit value into [0, m).
  U256 Reduce(const U256& a) const;

  U256 one_mont() const { return one_mont_; }

 private:
  U256 m_;
  uint64_t m0_inv_neg_;  // -m^-1 mod 2^64
  U256 r2_;              // R^2 mod m
  U256 one_mont_;        // R mod m
};

}  // namespace bolted::crypto

#endif  // SRC_CRYPTO_U256_H_
