#include "src/crypto/u256.h"

#include <array>
#include <bit>
#include <cassert>
#include <vector>

namespace bolted::crypto {

// --- Divstep modular inverse (variable time) -------------------------------
//
// Bernstein–Yang "safegcd" with signed 62-bit limbs: the (f, g) gcd state
// and the (d, e) Bézout state are advanced 62 divsteps at a time through a
// 2x2 matrix of int64 coefficients computed entirely in registers from the
// low 64 bits of f and g.  Each 62-step batch costs a handful of 128-bit
// multiply-accumulates instead of 62 full-width passes, and the
// variable-time inner loop skips runs of zero bits with a count-trailing-
// zeros jump plus an 8-bit negative-inverse table.
namespace {

constexpr int64_t kM62 = static_cast<int64_t>(UINT64_MAX >> 2);

// 5 signed limbs of 62 bits (little-endian); the top limb carries the sign.
struct Signed62 {
  int64_t v[5];

  bool IsZero() const { return (v[0] | v[1] | v[2] | v[3] | v[4]) == 0; }
};

Signed62 ToSigned62(const U256& a) {
  return {{static_cast<int64_t>(a.limb[0] & static_cast<uint64_t>(kM62)),
           static_cast<int64_t>(((a.limb[0] >> 62) | (a.limb[1] << 2)) &
                                static_cast<uint64_t>(kM62)),
           static_cast<int64_t>(((a.limb[1] >> 60) | (a.limb[2] << 4)) &
                                static_cast<uint64_t>(kM62)),
           static_cast<int64_t>(((a.limb[2] >> 58) | (a.limb[3] << 6)) &
                                static_cast<uint64_t>(kM62)),
           static_cast<int64_t>(a.limb[3] >> 56)}};
}

U256 FromSigned62(const Signed62& a) {
  const uint64_t v0 = static_cast<uint64_t>(a.v[0]);
  const uint64_t v1 = static_cast<uint64_t>(a.v[1]);
  const uint64_t v2 = static_cast<uint64_t>(a.v[2]);
  const uint64_t v3 = static_cast<uint64_t>(a.v[3]);
  const uint64_t v4 = static_cast<uint64_t>(a.v[4]);
  U256 r;
  r.limb[0] = v0 | (v1 << 62);
  r.limb[1] = (v1 >> 2) | (v2 << 60);
  r.limb[2] = (v2 >> 4) | (v3 << 58);
  r.limb[3] = (v3 >> 6) | (v4 << 56);
  return r;
}

// kNegInv256[i] = -(2i+1)^-1 mod 256: with w = (g * kNegInv256[(f>>1)&127])
// masked to b bits, g + w*f clears the low b (<= 8) bits of g in one step.
constexpr std::array<uint8_t, 128> MakeNegInv256() {
  std::array<uint8_t, 128> table{};
  for (int i = 0; i < 128; ++i) {
    const uint8_t f = static_cast<uint8_t>(2 * i + 1);
    uint8_t x = f;  // Newton: x_{k+1} = x_k (2 - f x_k) doubles correct bits
    x = static_cast<uint8_t>(x * (2 - f * x));
    x = static_cast<uint8_t>(x * (2 - f * x));
    x = static_cast<uint8_t>(x * (2 - f * x));
    table[static_cast<size_t>(i)] = static_cast<uint8_t>(-x);
  }
  return table;
}
constexpr std::array<uint8_t, 128> kNegInv256 = MakeNegInv256();

struct Trans2x2 {
  int64_t u, v, q, r;
};

// Runs 62 divsteps on the low limbs of (f, g); fills t with the transition
// matrix (entries bounded by 2^62 in magnitude) such that the full-width
// update is [f'; g'] = t * [f; g] / 2^62.  Returns the updated eta
// (negated divstep delta).
int64_t Divsteps62Var(int64_t eta, uint64_t f0, uint64_t g0, Trans2x2* t) {
  uint64_t u = 1, v = 0, q = 0, r = 1;
  uint64_t f = f0;
  uint64_t g = g0;
  int i = 62;
  for (;;) {
    // Skip the run of zero bits at the bottom of g (capped at the i steps
    // remaining in this batch).
    const int zeros =
        std::countr_zero(g | (~uint64_t{0} << (i == 64 ? 63 : i)));
    g >>= zeros;
    u <<= zeros;
    v <<= zeros;
    eta -= zeros;
    i -= zeros;
    if (i == 0) {
      break;
    }
    // f and g are both odd here.
    if (eta < 0) {
      eta = -eta;
      uint64_t tmp = f;
      f = g;
      g = ~tmp + 1;
      tmp = u;
      u = q;
      q = ~tmp + 1;
      tmp = v;
      v = r;
      r = ~tmp + 1;
    }
    // Clear up to 8 of g's low bits at once: limit is bounded by the
    // remaining step budget and by eta + 1 (the number of divsteps the
    // current delta sign permits without another swap).
    const int limit = eta + 1 > i ? i : static_cast<int>(eta) + 1;
    const uint64_t mask = (UINT64_MAX >> (64 - limit)) & 255u;
    const uint64_t w = (g * kNegInv256[(f >> 1) & 127]) & mask;
    g += w * f;
    q += static_cast<int64_t>(w) * static_cast<int64_t>(u);
    r += static_cast<int64_t>(w) * static_cast<int64_t>(v);
  }
  t->u = static_cast<int64_t>(u);
  t->v = static_cast<int64_t>(v);
  t->q = static_cast<int64_t>(q);
  t->r = static_cast<int64_t>(r);
  return eta;
}

// (f, g) <- t * (f, g) / 2^62, exact (the low 62 bits cancel by
// construction of t).
void UpdateFg62(Signed62* f, Signed62* g, const Trans2x2& t) {
  __int128 cf = static_cast<__int128>(t.u) * f->v[0] +
                static_cast<__int128>(t.v) * g->v[0];
  __int128 cg = static_cast<__int128>(t.q) * f->v[0] +
                static_cast<__int128>(t.r) * g->v[0];
  cf >>= 62;
  cg >>= 62;
  for (int k = 1; k < 5; ++k) {
    cf += static_cast<__int128>(t.u) * f->v[k] +
          static_cast<__int128>(t.v) * g->v[k];
    cg += static_cast<__int128>(t.q) * f->v[k] +
          static_cast<__int128>(t.r) * g->v[k];
    f->v[k - 1] = static_cast<int64_t>(cf) & kM62;
    g->v[k - 1] = static_cast<int64_t>(cg) & kM62;
    cf >>= 62;
    cg >>= 62;
  }
  f->v[4] = static_cast<int64_t>(cf);
  g->v[4] = static_cast<int64_t>(cg);
}

// (d, e) <- t * (d, e) / 2^62 mod m: multiples of m are added to make the
// division exact, keeping both in the range (-2m, m).
void UpdateDe62(Signed62* d, Signed62* e, const Trans2x2& t,
                const Signed62& modulus, uint64_t m_inv62) {
  const uint64_t mask62 = UINT64_MAX >> 2;
  const int64_t sd = d->v[4] >> 63;
  const int64_t se = e->v[4] >> 63;
  int64_t md = (t.u & sd) + (t.v & se);
  int64_t me = (t.q & sd) + (t.r & se);
  __int128 cd = static_cast<__int128>(t.u) * d->v[0] +
                static_cast<__int128>(t.v) * e->v[0];
  __int128 ce = static_cast<__int128>(t.q) * d->v[0] +
                static_cast<__int128>(t.r) * e->v[0];
  md -= static_cast<int64_t>(
      (m_inv62 * static_cast<uint64_t>(cd) + static_cast<uint64_t>(md)) &
      mask62);
  me -= static_cast<int64_t>(
      (m_inv62 * static_cast<uint64_t>(ce) + static_cast<uint64_t>(me)) &
      mask62);
  cd += static_cast<__int128>(modulus.v[0]) * md;
  ce += static_cast<__int128>(modulus.v[0]) * me;
  cd >>= 62;
  ce >>= 62;
  for (int k = 1; k < 5; ++k) {
    cd += static_cast<__int128>(t.u) * d->v[k] +
          static_cast<__int128>(t.v) * e->v[k] +
          static_cast<__int128>(modulus.v[k]) * md;
    ce += static_cast<__int128>(t.q) * d->v[k] +
          static_cast<__int128>(t.r) * e->v[k] +
          static_cast<__int128>(modulus.v[k]) * me;
    d->v[k - 1] = static_cast<int64_t>(cd) & kM62;
    e->v[k - 1] = static_cast<int64_t>(ce) & kM62;
    cd >>= 62;
    ce >>= 62;
  }
  d->v[4] = static_cast<int64_t>(cd);
  e->v[4] = static_cast<int64_t>(ce);
}

// Adds m (in place) while negative, with limb renormalization.
void MakeNonNegative62(Signed62* a, const Signed62& modulus) {
  while (a->v[4] < 0) {
    int64_t carry = 0;
    for (int k = 0; k < 4; ++k) {
      const int64_t sum = a->v[k] + modulus.v[k] + carry;
      a->v[k] = sum & kM62;
      carry = sum >> 62;
    }
    a->v[4] += modulus.v[4] + carry;
  }
}

}  // namespace

U256 ModInverseOdd(const U256& a, const U256& m) {
  assert(m.IsOdd());
  if (a.IsZero()) {
    return U256::Zero();
  }
  const Signed62 modulus = ToSigned62(m);
  Signed62 f = modulus;
  Signed62 g = ToSigned62(a);
  Signed62 d{{0, 0, 0, 0, 0}};
  Signed62 e{{1, 0, 0, 0, 0}};
  // m^-1 mod 2^62 by Newton iteration (m odd).
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) {
    inv *= 2 - m.limb[0] * inv;
  }
  const uint64_t m_inv62 = inv & (UINT64_MAX >> 2);

  int64_t eta = -1;
  // Typical inputs terminate in 9 or 10 batches; the variable-time jumps
  // make the worst case longer than the constant-time 724-divstep bound,
  // so loop to a far-out safety cap instead of the constant-time count.
  for (int iter = 0; iter < 40 && !g.IsZero(); ++iter) {
    Trans2x2 t;
    eta = Divsteps62Var(eta, static_cast<uint64_t>(f.v[0]),
                        static_cast<uint64_t>(g.v[0]), &t);
    UpdateDe62(&d, &e, t, modulus, m_inv62);
    UpdateFg62(&f, &g, t);
  }
  assert(g.IsZero());

  // f is now +-gcd(a, m) = +-1; fold its sign into d and lift d into
  // [0, m) entirely in the signed-62 domain — d can sit anywhere in
  // (-2m, m), and values past 2^256 would not survive the repack.  First
  // add m while negative (brings d to (-m, m) before the sign flip can
  // push it past m), then negate, then add m once more if needed.
  MakeNonNegative62(&d, modulus);
  if (f.v[4] < 0) {
    for (int k = 0; k < 5; ++k) {
      d.v[k] = -d.v[k];
    }
    int64_t carry = 0;
    for (int k = 0; k < 4; ++k) {
      const int64_t val = d.v[k] + carry;
      d.v[k] = val & kM62;
      carry = val >> 62;
    }
    d.v[4] += carry;
    MakeNonNegative62(&d, modulus);
  }
  return FromSigned62(d);
}

U256 U256::FromHexString(std::string_view hex) {
  assert(hex.size() <= 64);
  Bytes bytes = FromHex(hex);
  assert(bytes.size() * 2 == hex.size());
  return FromBytes(bytes);
}

U256 U256::FromBytes(ByteView be_bytes) {
  U256 out;
  // Use the trailing 32 bytes (low 256 bits).
  const size_t n = be_bytes.size() > 32 ? 32 : be_bytes.size();
  const ByteView tail = be_bytes.subspan(be_bytes.size() - n, n);
  for (size_t i = 0; i < n; ++i) {
    const size_t bit_index = (n - 1 - i) * 8;
    out.limb[bit_index / 64] |= static_cast<uint64_t>(tail[i]) << (bit_index % 64);
  }
  return out;
}

Bytes U256::ToBytes() const {
  Bytes out(32);
  for (int i = 0; i < 32; ++i) {
    const int bit_index = (31 - i) * 8;
    out[i] = static_cast<uint8_t>(limb[bit_index / 64] >> (bit_index % 64));
  }
  return out;
}

std::string U256::ToHexString() const { return ToHex(ToBytes()); }

uint64_t AddCarry(const U256& a, const U256& b, U256& out) {
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 sum =
        static_cast<unsigned __int128>(a.limb[i]) + b.limb[i] + carry;
    out.limb[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  return carry;
}

uint64_t SubBorrow(const U256& a, const U256& b, U256& out) {
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 diff = static_cast<unsigned __int128>(a.limb[i]) -
                                   b.limb[i] - borrow;
    out.limb[i] = static_cast<uint64_t>(diff);
    borrow = static_cast<uint64_t>(diff >> 64) & 1;
  }
  return borrow;
}

Montgomery::Montgomery(const U256& modulus) : m_(modulus) {
  assert(modulus.IsOdd());
  assert(modulus.Bit(255));

  // Newton iteration for m^-1 mod 2^64, then negate.
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) {
    inv *= 2 - m_.limb[0] * inv;
  }
  m0_inv_neg_ = ~inv + 1;

  // R mod m = 2^256 - m (since 2^255 <= m < 2^256).
  U256 zero = U256::Zero();
  SubBorrow(zero, m_, one_mont_);

  // R^2 mod m by doubling R mod m 256 times.
  U256 r2 = one_mont_;
  for (int i = 0; i < 256; ++i) {
    const uint64_t carry = AddCarry(r2, r2, r2);
    if (carry || r2 >= m_) {
      U256 reduced;
      SubBorrow(r2, m_, reduced);
      r2 = reduced;
    }
  }
  r2_ = r2;
}

U256 Montgomery::Add(const U256& a, const U256& b) const {
  U256 sum;
  const uint64_t carry = AddCarry(a, b, sum);
  if (carry || sum >= m_) {
    U256 reduced;
    SubBorrow(sum, m_, reduced);
    return reduced;
  }
  return sum;
}

U256 Montgomery::Sub(const U256& a, const U256& b) const {
  U256 diff;
  const uint64_t borrow = SubBorrow(a, b, diff);
  if (borrow) {
    U256 wrapped;
    AddCarry(diff, m_, wrapped);
    return wrapped;
  }
  return diff;
}

U256 Montgomery::Neg(const U256& a) const {
  if (a.IsZero()) {
    return a;
  }
  U256 out;
  SubBorrow(m_, a, out);
  return out;
}

// CIOS Montgomery multiplication.
U256 Montgomery::Mul(const U256& a, const U256& b) const {
  uint64_t t[6] = {};  // t[4] is the running high limb, t[5] its carry
  for (int i = 0; i < 4; ++i) {
    // t += a[i] * b
    uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const unsigned __int128 acc = static_cast<unsigned __int128>(a.limb[i]) *
                                        b.limb[j] +
                                    t[j] + carry;
      t[j] = static_cast<uint64_t>(acc);
      carry = static_cast<uint64_t>(acc >> 64);
    }
    unsigned __int128 acc = static_cast<unsigned __int128>(t[4]) + carry;
    t[4] = static_cast<uint64_t>(acc);
    t[5] = static_cast<uint64_t>(acc >> 64);

    // m = t[0] * m0_inv_neg_; t += m * modulus; t >>= 64
    const uint64_t m = t[0] * m0_inv_neg_;
    carry = 0;
    {
      const unsigned __int128 first =
          static_cast<unsigned __int128>(m) * m_.limb[0] + t[0];
      carry = static_cast<uint64_t>(first >> 64);
    }
    for (int j = 1; j < 4; ++j) {
      const unsigned __int128 acc2 = static_cast<unsigned __int128>(m) * m_.limb[j] +
                                     t[j] + carry;
      t[j - 1] = static_cast<uint64_t>(acc2);
      carry = static_cast<uint64_t>(acc2 >> 64);
    }
    acc = static_cast<unsigned __int128>(t[4]) + carry;
    t[3] = static_cast<uint64_t>(acc);
    t[4] = t[5] + static_cast<uint64_t>(acc >> 64);
    t[5] = 0;
  }

  U256 result{{t[0], t[1], t[2], t[3]}};
  if (t[4] != 0 || result >= m_) {
    U256 reduced;
    SubBorrow(result, m_, reduced);
    return reduced;
  }
  return result;
}

U256 Montgomery::ToMont(const U256& a) const { return Mul(a, r2_); }

U256 Montgomery::FromMont(const U256& a) const { return Mul(a, U256::One()); }

U256 Montgomery::Exp(const U256& base, const U256& exponent) const {
  U256 result = one_mont_;
  for (int i = 255; i >= 0; --i) {
    result = Sqr(result);
    if (exponent.Bit(i)) {
      result = Mul(result, base);
    }
  }
  return result;
}

U256 Montgomery::Inverse(const U256& a) const {
  U256 exp;  // m - 2
  const U256 two{{2, 0, 0, 0}};
  SubBorrow(m_, two, exp);
  return Exp(a, exp);
}

U256 Montgomery::InverseBinary(const U256& a) const {
  // a = xR.  ModInverseOdd gives x^-1 R^-1; two products by R^2 restore
  // the Montgomery domain: (x^-1 R^-1)(R^2)R^-1 = x^-1, then once more
  // yields x^-1 R.
  const U256 plain_inverse = ModInverseOdd(a, m_);
  return Mul(Mul(plain_inverse, r2_), r2_);
}

void Montgomery::BatchInvert(std::span<U256> values) const {
  if (values.empty()) {
    return;
  }
  // prefix[i] = product of values[0..i-1]; one inversion of the total
  // product, then peel elements off back to front.
  std::vector<U256> prefix(values.size());
  U256 acc = one_mont_;
  for (size_t i = 0; i < values.size(); ++i) {
    prefix[i] = acc;
    acc = Mul(acc, values[i]);
  }
  U256 inv = InverseBinary(acc);
  for (size_t i = values.size(); i-- > 0;) {
    const U256 original = values[i];
    values[i] = Mul(inv, prefix[i]);
    inv = Mul(inv, original);
  }
}

U256 Montgomery::Reduce(const U256& a) const {
  if (a < m_) {
    return a;
  }
  U256 out;
  SubBorrow(a, m_, out);
  return out;
}

}  // namespace bolted::crypto
