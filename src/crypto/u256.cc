#include "src/crypto/u256.h"

#include <cassert>
#include <vector>

namespace bolted::crypto {

U256 U256::FromHexString(std::string_view hex) {
  assert(hex.size() <= 64);
  Bytes bytes = FromHex(hex);
  assert(bytes.size() * 2 == hex.size());
  return FromBytes(bytes);
}

U256 U256::FromBytes(ByteView be_bytes) {
  U256 out;
  // Use the trailing 32 bytes (low 256 bits).
  const size_t n = be_bytes.size() > 32 ? 32 : be_bytes.size();
  const ByteView tail = be_bytes.subspan(be_bytes.size() - n, n);
  for (size_t i = 0; i < n; ++i) {
    const size_t bit_index = (n - 1 - i) * 8;
    out.limb[bit_index / 64] |= static_cast<uint64_t>(tail[i]) << (bit_index % 64);
  }
  return out;
}

Bytes U256::ToBytes() const {
  Bytes out(32);
  for (int i = 0; i < 32; ++i) {
    const int bit_index = (31 - i) * 8;
    out[i] = static_cast<uint8_t>(limb[bit_index / 64] >> (bit_index % 64));
  }
  return out;
}

std::string U256::ToHexString() const { return ToHex(ToBytes()); }

uint64_t AddCarry(const U256& a, const U256& b, U256& out) {
  uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 sum =
        static_cast<unsigned __int128>(a.limb[i]) + b.limb[i] + carry;
    out.limb[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  return carry;
}

uint64_t SubBorrow(const U256& a, const U256& b, U256& out) {
  uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const unsigned __int128 diff = static_cast<unsigned __int128>(a.limb[i]) -
                                   b.limb[i] - borrow;
    out.limb[i] = static_cast<uint64_t>(diff);
    borrow = static_cast<uint64_t>(diff >> 64) & 1;
  }
  return borrow;
}

Montgomery::Montgomery(const U256& modulus) : m_(modulus) {
  assert(modulus.IsOdd());
  assert(modulus.Bit(255));

  // Newton iteration for m^-1 mod 2^64, then negate.
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) {
    inv *= 2 - m_.limb[0] * inv;
  }
  m0_inv_neg_ = ~inv + 1;

  // R mod m = 2^256 - m (since 2^255 <= m < 2^256).
  U256 zero = U256::Zero();
  SubBorrow(zero, m_, one_mont_);

  // R^2 mod m by doubling R mod m 256 times.
  U256 r2 = one_mont_;
  for (int i = 0; i < 256; ++i) {
    const uint64_t carry = AddCarry(r2, r2, r2);
    if (carry || r2 >= m_) {
      U256 reduced;
      SubBorrow(r2, m_, reduced);
      r2 = reduced;
    }
  }
  r2_ = r2;
}

U256 Montgomery::Add(const U256& a, const U256& b) const {
  U256 sum;
  const uint64_t carry = AddCarry(a, b, sum);
  if (carry || sum >= m_) {
    U256 reduced;
    SubBorrow(sum, m_, reduced);
    return reduced;
  }
  return sum;
}

U256 Montgomery::Sub(const U256& a, const U256& b) const {
  U256 diff;
  const uint64_t borrow = SubBorrow(a, b, diff);
  if (borrow) {
    U256 wrapped;
    AddCarry(diff, m_, wrapped);
    return wrapped;
  }
  return diff;
}

U256 Montgomery::Neg(const U256& a) const {
  if (a.IsZero()) {
    return a;
  }
  U256 out;
  SubBorrow(m_, a, out);
  return out;
}

// CIOS Montgomery multiplication.
U256 Montgomery::Mul(const U256& a, const U256& b) const {
  uint64_t t[6] = {};  // t[4] is the running high limb, t[5] its carry
  for (int i = 0; i < 4; ++i) {
    // t += a[i] * b
    uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const unsigned __int128 acc = static_cast<unsigned __int128>(a.limb[i]) *
                                        b.limb[j] +
                                    t[j] + carry;
      t[j] = static_cast<uint64_t>(acc);
      carry = static_cast<uint64_t>(acc >> 64);
    }
    unsigned __int128 acc = static_cast<unsigned __int128>(t[4]) + carry;
    t[4] = static_cast<uint64_t>(acc);
    t[5] = static_cast<uint64_t>(acc >> 64);

    // m = t[0] * m0_inv_neg_; t += m * modulus; t >>= 64
    const uint64_t m = t[0] * m0_inv_neg_;
    carry = 0;
    {
      const unsigned __int128 first =
          static_cast<unsigned __int128>(m) * m_.limb[0] + t[0];
      carry = static_cast<uint64_t>(first >> 64);
    }
    for (int j = 1; j < 4; ++j) {
      const unsigned __int128 acc2 = static_cast<unsigned __int128>(m) * m_.limb[j] +
                                     t[j] + carry;
      t[j - 1] = static_cast<uint64_t>(acc2);
      carry = static_cast<uint64_t>(acc2 >> 64);
    }
    acc = static_cast<unsigned __int128>(t[4]) + carry;
    t[3] = static_cast<uint64_t>(acc);
    t[4] = t[5] + static_cast<uint64_t>(acc >> 64);
    t[5] = 0;
  }

  U256 result{{t[0], t[1], t[2], t[3]}};
  if (t[4] != 0 || result >= m_) {
    U256 reduced;
    SubBorrow(result, m_, reduced);
    return reduced;
  }
  return result;
}

U256 Montgomery::ToMont(const U256& a) const { return Mul(a, r2_); }

U256 Montgomery::FromMont(const U256& a) const { return Mul(a, U256::One()); }

U256 Montgomery::Exp(const U256& base, const U256& exponent) const {
  U256 result = one_mont_;
  for (int i = 255; i >= 0; --i) {
    result = Sqr(result);
    if (exponent.Bit(i)) {
      result = Mul(result, base);
    }
  }
  return result;
}

U256 Montgomery::Inverse(const U256& a) const {
  U256 exp;  // m - 2
  const U256 two{{2, 0, 0, 0}};
  SubBorrow(m_, two, exp);
  return Exp(a, exp);
}

U256 Montgomery::InverseBinary(const U256& a) const {
  // a = xR.  ModInverseOdd gives x^-1 R^-1; two products by R^2 restore
  // the Montgomery domain: (x^-1 R^-1)(R^2)R^-1 = x^-1, then once more
  // yields x^-1 R.
  const U256 plain_inverse = ModInverseOdd(a, m_);
  return Mul(Mul(plain_inverse, r2_), r2_);
}

void Montgomery::BatchInvert(std::span<U256> values) const {
  if (values.empty()) {
    return;
  }
  // prefix[i] = product of values[0..i-1]; one inversion of the total
  // product, then peel elements off back to front.
  std::vector<U256> prefix(values.size());
  U256 acc = one_mont_;
  for (size_t i = 0; i < values.size(); ++i) {
    prefix[i] = acc;
    acc = Mul(acc, values[i]);
  }
  U256 inv = InverseBinary(acc);
  for (size_t i = values.size(); i-- > 0;) {
    const U256 original = values[i];
    values[i] = Mul(inv, prefix[i]);
    inv = Mul(inv, original);
  }
}

U256 Montgomery::Reduce(const U256& a) const {
  if (a < m_) {
    return a;
  }
  U256 out;
  SubBorrow(a, m_, out);
  return out;
}

}  // namespace bolted::crypto
