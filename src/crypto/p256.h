// NIST P-256 (secp256r1) elliptic-curve operations: key generation,
// ECDSA with deterministic (RFC 6979 style) nonces, and ECDH.
//
// This is the signature scheme behind the TPM emulator's endorsement and
// attestation identity keys.  The paper's TPMs use RSA-2048; we substitute
// ECDSA-P256 (documented in DESIGN.md) — the attestation protocol is
// structurally identical and quotes are really signed and verified.
//
// Scalar multiplication is not constant-time; this library runs inside a
// simulator, not against live adversaries.

#ifndef SRC_CRYPTO_P256_H_
#define SRC_CRYPTO_P256_H_

#include <optional>

#include "src/crypto/bytes.h"
#include "src/crypto/sha256.h"
#include "src/crypto/u256.h"

namespace bolted::crypto {

struct EcPoint {
  U256 x;
  U256 y;
  bool infinity = false;

  // Uncompressed SEC1 encoding: 0x04 || X || Y (65 bytes).
  Bytes Encode() const;
  static std::optional<EcPoint> Decode(ByteView encoded);
  bool operator==(const EcPoint&) const = default;
};

struct EcdsaSignature {
  U256 r;
  U256 s;

  Bytes Encode() const;  // r || s, 64 bytes
  static std::optional<EcdsaSignature> Decode(ByteView encoded);
};

class P256 {
 public:
  // Returns the process-wide curve instance (the tables are immutable).
  static const P256& Instance();

  // Derives a private scalar in [1, n-1] from seed material.
  U256 PrivateKeyFromSeed(ByteView seed) const;
  EcPoint PublicKey(const U256& private_key) const;
  bool IsOnCurve(const EcPoint& point) const;

  EcdsaSignature Sign(const U256& private_key, const Digest& message_hash) const;
  bool Verify(const EcPoint& public_key, const Digest& message_hash,
              const EcdsaSignature& signature) const;

  // ECDH: x-coordinate of private_key * peer, as 32 bytes.  Returns
  // nullopt when peer is invalid or the product is the point at infinity.
  std::optional<Bytes> SharedSecret(const U256& private_key, const EcPoint& peer) const;

  const U256& order() const { return n_; }

 private:
  P256();

  // Jacobian coordinates in the Montgomery domain of fp_.
  struct Jacobian {
    U256 x;
    U256 y;
    U256 z;  // zero limbs = point at infinity
  };

  Jacobian ToJacobian(const EcPoint& p) const;
  EcPoint ToAffine(const Jacobian& p) const;
  Jacobian Double(const Jacobian& p) const;
  Jacobian AddPoints(const Jacobian& p, const Jacobian& q) const;
  Jacobian ScalarMul(const U256& k, const Jacobian& p) const;

  U256 p_;  // field prime
  U256 n_;  // group order
  Montgomery fp_;
  Montgomery fn_;
  U256 b_mont_;       // curve b in Montgomery form
  U256 three_mont_;   // 3 in Montgomery form
  Jacobian g_;        // base point
};

}  // namespace bolted::crypto

#endif  // SRC_CRYPTO_P256_H_
