// NIST P-256 (secp256r1) elliptic-curve operations: key generation,
// ECDSA with deterministic (RFC 6979 style) nonces, and ECDH.
//
// This is the signature scheme behind the TPM emulator's endorsement and
// attestation identity keys.  The paper's TPMs use RSA-2048; we substitute
// ECDSA-P256 (documented in DESIGN.md) — the attestation protocol is
// structurally identical and quotes are really signed and verified.
//
// Scalar multiplication (DESIGN.md §6) runs on three cooperating fast
// paths: a fixed-base comb table for multiples of G (Sign, PublicKey,
// ECIES ephemeral keys), width-6 wNAF with precomputed odd multiples for
// arbitrary points (ECDH), and Strauss–Shamir interleaving so Verify
// computes u1·G + u2·Q in one joint double-and-add chain.  Table points
// are normalized with Montgomery-trick batch inversion.  The pre-PR
// double-and-add ladder is kept verbatim behind the *Reference methods as
// a differential-test hook and as the bench baseline.
//
// Scalar multiplication is not constant-time; this library runs inside a
// simulator, not against live adversaries.

#ifndef SRC_CRYPTO_P256_H_
#define SRC_CRYPTO_P256_H_

#include <array>
#include <optional>
#include <span>
#include <vector>

#include "src/crypto/bytes.h"
#include "src/crypto/sha256.h"
#include "src/crypto/u256.h"

namespace bolted::crypto {

struct EcPoint {
  U256 x;
  U256 y;
  bool infinity = false;

  // Uncompressed SEC1 encoding: 0x04 || X || Y (65 bytes).
  Bytes Encode() const;
  static std::optional<EcPoint> Decode(ByteView encoded);
  bool operator==(const EcPoint&) const = default;
};

struct EcdsaSignature {
  U256 r;
  U256 s;

  Bytes Encode() const;  // r || s, 64 bytes
  static std::optional<EcdsaSignature> Decode(ByteView encoded);
};

class P256 {
 public:
  // Returns the process-wide curve instance (the tables are immutable).
  static const P256& Instance();

  // Derives a private scalar in [1, n-1] from seed material.
  U256 PrivateKeyFromSeed(ByteView seed) const;
  EcPoint PublicKey(const U256& private_key) const;
  bool IsOnCurve(const EcPoint& point) const;

  EcdsaSignature Sign(const U256& private_key, const Digest& message_hash) const;
  // Like Sign, but also returns the nonce point R = k·G and normalizes the
  // signature to the batch-friendly even-y convention (s ↦ n−s, R ↦ −R
  // when R.y is odd — the same signature, in the variant VerifyBatch's
  // square-root recovery reconstructs from r alone).  The plain Sign
  // output is unchanged, so its known-answer vectors still hold.
  EcdsaSignature Sign(const U256& private_key, const Digest& message_hash,
                      EcPoint* r_point) const;
  bool Verify(const EcPoint& public_key, const Digest& message_hash,
              const EcdsaSignature& signature) const;

  // Affine point in the Montgomery domain of the field prime — the
  // representation the precomputed tables are stored in.
  struct AffineMont {
    U256 x;
    U256 y;
  };

  // A public key that has been decoded, curve-checked, and equipped with
  // precomputed tables exactly once.  Verify(PreparedKey, ...) skips the
  // per-call on-curve check and table build, and — because the tables
  // cover Q, 2^64·Q, 2^128·Q and 2^192·Q — runs the joint ladder over
  // four 64-bit scalar chunks, quartering the doubling count.  This is
  // the hot path of the continuous-attestation loop (the verifier checks
  // the same AIK every poll).
  class PreparedKey {
   public:
    PreparedKey() = default;
    const EcPoint& point() const { return point_; }

   private:
    friend class P256;
    EcPoint point_;
    // Group j (32 entries) holds the odd multiples 1,3,...,63 of 2^{64j}·Q
    // — width-7 NAF, 8 KB per key.
    std::array<AffineMont, 128> odd_{};
  };

  // Returns nullopt when the point is not on the curve (or is infinity).
  std::optional<PreparedKey> Prepare(const EcPoint& public_key) const;
  bool Verify(const PreparedKey& public_key, const Digest& message_hash,
              const EcdsaSignature& signature) const;

  // --- Batch verification --------------------------------------------------
  // One signature's worth of batch input.  r_hint optionally points at the
  // signer's nonce point R = k·G (plain affine coordinates).  The hint is
  // UNTRUSTED accelerator data: it is only accepted after an on-curve check
  // and x ≡ r (mod n); a wrong-but-plausible hint can at worst force the
  // batch into the bisection fallback, never flip a verdict.  Without a
  // hint, R is recovered by a modular square root, which assumes the
  // signer normalized s so that R has even y (Tpm::MakeQuote does); a
  // signature without that convention still verifies correctly, just
  // through the bisection path.
  struct BatchEntry {
    const PreparedKey* key = nullptr;
    Digest message_hash{};
    EcdsaSignature signature;
    const EcPoint* r_hint = nullptr;
  };
  struct BatchStats {
    uint32_t bisections = 0;       // sub-batch RLC checks that failed
    uint32_t sqrt_recoveries = 0;  // entries that paid the sqrt fallback
    uint32_t rejected_hints = 0;   // r_hints that failed validation
  };
  // Verifies all entries jointly: one multi-scalar check of the random
  // linear combination Σ cᵢ·(u1ᵢ·G + u2ᵢ·Qᵢ − Rᵢ) = O with deterministic
  // 64-bit Fiat–Shamir coefficients cᵢ, sharing a single doubling chain,
  // one fixed-base comb pass, and one batched modular inversion across the
  // whole batch.  On failure the batch is bisected until every bad entry
  // is pinned by an exact single verify — ok[i] always equals what
  // Verify(PreparedKey, ...) would return for entry i (fail-closed).
  // Returns true iff every entry verified.
  bool VerifyBatch(std::span<const BatchEntry> entries, bool* ok,
                   BatchStats* stats = nullptr) const;

  // ECDH: x-coordinate of private_key * peer, as 32 bytes.  Returns
  // nullopt when peer is invalid or the product is the point at infinity.
  std::optional<Bytes> SharedSecret(const U256& private_key, const EcPoint& peer) const;

  // General k·P through the wNAF path (infinity in, or k a multiple of
  // the group order, yields the point at infinity).  Exposed for the
  // old-vs-new equivalence sweeps in tests.
  EcPoint Multiply(const U256& k, const EcPoint& point) const;

  // --- Pre-PR reference paths --------------------------------------------
  // The original textbook double-and-add ladder and Fermat inversions,
  // kept byte-for-byte so tests can differentially check the fast paths
  // and benches can report honest old-vs-new speedups.
  EcPoint MultiplyReference(const U256& k, const EcPoint& point) const;
  EcdsaSignature SignReference(const U256& private_key, const Digest& message_hash) const;
  bool VerifyReference(const EcPoint& public_key, const Digest& message_hash,
                       const EcdsaSignature& signature) const;
  std::optional<Bytes> SharedSecretReference(const U256& private_key,
                                             const EcPoint& peer) const;

  const U256& order() const { return n_; }

 private:
  P256();

  // Jacobian coordinates in the Montgomery domain of fp_.
  struct Jacobian {
    U256 x;
    U256 y;
    U256 z;  // zero limbs = point at infinity
  };

  Jacobian ToJacobian(const EcPoint& p) const;
  EcPoint ToAffine(const Jacobian& p) const;
  Jacobian Double(const Jacobian& p) const;
  Jacobian AddPoints(const Jacobian& p, const Jacobian& q) const;
  Jacobian ScalarMul(const U256& k, const Jacobian& p) const;

  // Fast-path group law (field::Fp arithmetic, in-place).
  void DoubleFast(Jacobian& p) const;
  void AddJacobianFast(Jacobian& p, const Jacobian& q) const;
  void AddMixed(Jacobian& p, const AffineMont& q, bool negate) const;
  EcPoint ToAffineFast(const Jacobian& p) const;
  // Batch-normalizes Jacobian points (none at infinity) to affine via
  // Montgomery-trick inversion; out must hold in.size() entries.
  void NormalizeBatch(std::span<const Jacobian> in, AffineMont* out) const;
  void BuildOddMultiples(const EcPoint& p, std::array<AffineMont, 16>& out) const;

  Jacobian MulBaseComb(const U256& k) const;
  Jacobian MulWnaf(const U256& k, const std::array<AffineMont, 16>& odd) const;
  // Joint ladders for u1·G + u2·Q.  The one-shot variant runs u2's wNAF
  // over a fresh 16-entry odd table (256 doublings); the prepared variant
  // splits u2 into four 64-bit chunks over the PreparedKey's four tables
  // (64 doublings).  Both fold u1 in through the fixed-base comb.
  Jacobian MulShamir(const U256& u1, const U256& u2,
                     const std::array<AffineMont, 16>& q_odd) const;
  Jacobian MulShamirPrepared(const U256& u1, const U256& u2,
                             const std::array<AffineMont, 128>& q_tables) const;
  // Computes u1/u2 from the signature and checks x(sum) mod n == r via the
  // Jacobian-coordinate candidate comparison (no field inversion).
  template <typename Ladder>
  bool VerifyCommon(const Digest& message_hash, const EcdsaSignature& signature,
                    const Ladder& ladder) const;

  // Per-entry state shared between the batch RLC check and its bisection
  // retries (defined in p256.cc).
  struct BatchItem;
  // Runs the single multi-scalar RLC check over the listed items; returns
  // whether the combination landed on the point at infinity.
  bool BatchCombinationHolds(const BatchItem* items,
                             std::span<const size_t> idxs) const;
  // Recursive bisection driver over items [lo, hi).
  bool VerifyBatchRange(const BatchItem* items, const BatchEntry* entries,
                        bool* ok, size_t lo, size_t hi, BatchStats* stats) const;

  U256 p_;  // field prime
  U256 n_;  // group order
  Montgomery fp_;
  Montgomery fn_;
  U256 b_mont_;       // curve b in Montgomery form
  U256 three_mont_;   // 3 in Montgomery form
  U256 r2_fp_;        // R^2 mod p, for inline binary inversion
  U256 r2_fn_;        // R^2 mod n
  Jacobian g_;        // base point
  // Fixed-base comb: fixed_[w*4095 + b - 1] = b · 2^{12w} · G for
  // w ∈ [0, 22), b ∈ [1, 4095], so any scalar is a sum of at most 22
  // table points with no doublings.  Row 0 also serves the joint verify
  // ladders: adding b·G from row 0 at ladder position 12w leaves the
  // remaining doublings to raise it to b·2^{12w}·G.
  std::vector<AffineMont> fixed_;
};

}  // namespace bolted::crypto

#endif  // SRC_CRYPTO_P256_H_
