#include "src/crypto/ecies.h"

#include <cassert>

#include "src/crypto/aes_gcm.h"
#include "src/crypto/hmac.h"

namespace bolted::crypto {
namespace {

constexpr std::string_view kKdfInfo = "BOLTED_ECIES_V1";

}  // namespace

Bytes EciesSeal(const EcPoint& recipient_public, ByteView plaintext, Drbg& drbg) {
  const P256& curve = P256::Instance();
  const U256 ephemeral = curve.PrivateKeyFromSeed(drbg.Generate(32));
  const EcPoint ephemeral_public = curve.PublicKey(ephemeral);
  const auto shared = curve.SharedSecret(ephemeral, recipient_public);
  assert(shared.has_value());

  const Bytes key = Hkdf({}, *shared, ToBytes(kKdfInfo), 32);
  const Bytes nonce = drbg.Generate(AesGcm::kNonceSize);

  Bytes blob = ephemeral_public.Encode();
  Append(blob, nonce);
  Append(blob, AesGcm(key).Seal(nonce, plaintext, {}));
  return blob;
}

std::optional<Bytes> EciesOpen(const U256& recipient_private, ByteView blob) {
  if (blob.size() < 65 + AesGcm::kNonceSize + AesGcm::kTagSize) {
    return std::nullopt;
  }
  const auto ephemeral_public = EcPoint::Decode(blob.subspan(0, 65));
  if (!ephemeral_public) {
    return std::nullopt;
  }
  const auto shared =
      P256::Instance().SharedSecret(recipient_private, *ephemeral_public);
  if (!shared) {
    return std::nullopt;
  }
  const Bytes key = Hkdf({}, *shared, ToBytes(kKdfInfo), 32);
  const ByteView nonce = blob.subspan(65, AesGcm::kNonceSize);
  return AesGcm(key).Open(nonce, blob.subspan(65 + AesGcm::kNonceSize), {});
}

}  // namespace bolted::crypto
