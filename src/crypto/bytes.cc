#include "src/crypto/bytes.h"

#include <cassert>

namespace bolted::crypto {
namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') {
    return c - '0';
  }
  if (c >= 'a' && c <= 'f') {
    return c - 'a' + 10;
  }
  if (c >= 'A' && c <= 'F') {
    return c - 'A' + 10;
  }
  return -1;
}

}  // namespace

std::string ToHex(ByteView data) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(data.size() * 2);
  for (uint8_t b : data) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

Bytes FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return {};
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    const int hi = HexValue(hex[i]);
    const int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return {};
    }
    out.push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool ConstantTimeEqual(ByteView a, ByteView b) {
  if (a.size() != b.size()) {
    return false;
  }
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<uint8_t>(a[i] ^ b[i]);
  }
  return diff == 0;
}

Bytes Xor(ByteView a, ByteView b) {
  assert(a.size() == b.size());
  Bytes out(a.size());
  for (size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] ^ b[i];
  }
  return out;
}

void Append(Bytes& dst, ByteView src) { dst.insert(dst.end(), src.begin(), src.end()); }

void AppendU32(Bytes& dst, uint32_t v) {
  for (int shift = 24; shift >= 0; shift -= 8) {
    dst.push_back(static_cast<uint8_t>(v >> shift));
  }
}

void AppendU64(Bytes& dst, uint64_t v) {
  for (int shift = 56; shift >= 0; shift -= 8) {
    dst.push_back(static_cast<uint8_t>(v >> shift));
  }
}

}  // namespace bolted::crypto
