// AES-256 block cipher (FIPS 197).
//
// Byte-oriented implementation; the inverse S-box and the decryption key
// schedule are derived at run time from the forward tables, keeping the
// embedded constant surface to the single canonical S-box.

#ifndef SRC_CRYPTO_AES_H_
#define SRC_CRYPTO_AES_H_

#include <cstdint>

#include "src/crypto/bytes.h"

namespace bolted::crypto {

class Aes256 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 32;
  static constexpr int kRounds = 14;

  // key must be exactly kKeySize bytes.
  explicit Aes256(ByteView key);

  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;
  void DecryptBlock(const uint8_t in[16], uint8_t out[16]) const;

 private:
  // Round keys as 4-byte words, (kRounds + 1) * 4 of them.
  uint32_t round_keys_[(kRounds + 1) * 4];
};

}  // namespace bolted::crypto

#endif  // SRC_CRYPTO_AES_H_
