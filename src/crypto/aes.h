// AES-256 block cipher (FIPS 197).
//
// Byte-oriented reference implementation plus an AES-NI backend picked at
// construction via the cpu feature probe (src/crypto/cpu.h).  The inverse
// S-box and the decryption key schedule are derived at run time from the
// forward tables, keeping the embedded constant surface to the single
// canonical S-box.

#ifndef SRC_CRYPTO_AES_H_
#define SRC_CRYPTO_AES_H_

#include <cstdint>

#include "src/crypto/bytes.h"

namespace bolted::crypto {

class Aes256 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 32;
  static constexpr int kRounds = 14;
  static constexpr size_t kRoundKeyBytes = (kRounds + 1) * kBlockSize;

  // key must be exactly kKeySize bytes.
  explicit Aes256(ByteView key);

  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;
  void DecryptBlock(const uint8_t in[16], uint8_t out[16]) const;

  // Bulk ECB over nblocks consecutive 16-byte blocks (in may equal out).
  // The AES-NI backend pipelines 8 blocks through the round sequence.
  void EncryptBlocks(const uint8_t* in, uint8_t* out, size_t nblocks) const;
  void DecryptBlocks(const uint8_t* in, uint8_t* out, size_t nblocks) const;

  // Dispatch plumbing for the XTS/GCM/CTR kernels (src/crypto/accel.h).
  bool accelerated() const { return accel_; }
  const uint8_t* enc_round_key_bytes() const { return rk_bytes_; }
  const uint8_t* dec_round_key_bytes() const { return drk_bytes_; }

 private:
  // Round keys as 4-byte words, (kRounds + 1) * 4 of them.
  uint32_t round_keys_[(kRounds + 1) * 4];
  // Byte-serialized schedule in AESENC layout, always populated.
  uint8_t rk_bytes_[kRoundKeyBytes];
  // AESIMC-transformed decryption schedule; valid only when accel_.
  uint8_t drk_bytes_[kRoundKeyBytes];
  bool accel_ = false;
};

}  // namespace bolted::crypto

#endif  // SRC_CRYPTO_AES_H_
