#include "src/crypto/aes_xts.h"

#include <cassert>
#include <cstring>

#include "src/crypto/accel.h"

namespace bolted::crypto {
namespace {

// Multiply by x in GF(2^128), little-endian byte order (per P1619).
void Gf128MulAlpha(uint8_t t[16]) {
  uint8_t carry = 0;
  for (int i = 0; i < 16; ++i) {
    const uint8_t next_carry = t[i] >> 7;
    t[i] = static_cast<uint8_t>((t[i] << 1) | carry);
    carry = next_carry;
  }
  if (carry) {
    t[0] ^= 0x87;
  }
}

}  // namespace

AesXts::AesXts(ByteView key)
    : data_cipher_(key.subspan(0, Aes256::kKeySize)),
      tweak_cipher_(key.subspan(Aes256::kKeySize, Aes256::kKeySize)) {
  assert(key.size() == 2 * Aes256::kKeySize);
}

void AesXts::Transform(uint64_t sector_number, std::span<uint8_t> data,
                       bool encrypt) const {
  assert(!data.empty() && data.size() % Aes256::kBlockSize == 0);

  if (data_cipher_.accelerated() && tweak_cipher_.accelerated()) {
    internal::AesNiXtsSector(encrypt ? data_cipher_.enc_round_key_bytes()
                                     : data_cipher_.dec_round_key_bytes(),
                             tweak_cipher_.enc_round_key_bytes(), sector_number,
                             data.data(), data.size(), encrypt);
    return;
  }

  // plain64 IV: little-endian sector number, zero padded.
  uint8_t tweak[16] = {};
  for (int i = 0; i < 8; ++i) {
    tweak[i] = static_cast<uint8_t>(sector_number >> (8 * i));
  }
  tweak_cipher_.EncryptBlock(tweak, tweak);

  for (size_t off = 0; off < data.size(); off += Aes256::kBlockSize) {
    uint8_t block[16];
    for (int i = 0; i < 16; ++i) {
      block[i] = data[off + i] ^ tweak[i];
    }
    if (encrypt) {
      data_cipher_.EncryptBlock(block, block);
    } else {
      data_cipher_.DecryptBlock(block, block);
    }
    for (int i = 0; i < 16; ++i) {
      data[off + i] = block[i] ^ tweak[i];
    }
    Gf128MulAlpha(tweak);
  }
}

void AesXts::EncryptSector(uint64_t sector_number, std::span<uint8_t> data) const {
  Transform(sector_number, data, /*encrypt=*/true);
}

void AesXts::DecryptSector(uint64_t sector_number, std::span<uint8_t> data) const {
  Transform(sector_number, data, /*encrypt=*/false);
}

void AesXts::EncryptSectors(uint64_t first_sector, size_t sector_size,
                            std::span<uint8_t> data) const {
  assert(sector_size > 0 && sector_size % Aes256::kBlockSize == 0);
  assert(!data.empty() && data.size() % sector_size == 0);
  for (size_t off = 0; off < data.size(); off += sector_size) {
    Transform(first_sector++, data.subspan(off, sector_size), /*encrypt=*/true);
  }
}

void AesXts::DecryptSectors(uint64_t first_sector, size_t sector_size,
                            std::span<uint8_t> data) const {
  assert(sector_size > 0 && sector_size % Aes256::kBlockSize == 0);
  assert(!data.empty() && data.size() % sector_size == 0);
  for (size_t off = 0; off < data.size(); off += sector_size) {
    Transform(first_sector++, data.subspan(off, sector_size), /*encrypt=*/false);
  }
}

}  // namespace bolted::crypto
