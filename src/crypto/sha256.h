// SHA-256 (FIPS 180-4), streaming and one-shot interfaces.
//
// SHA-256 is the measurement hash used throughout Bolted: TPM PCR banks,
// IMA measurement lists, firmware deterministic-build digests, and quote
// signatures are all SHA-256 based (the paper configures IMA with SHA-256
// and LinuxBoot attestation extends SHA-256 digests into PCRs).

#ifndef SRC_CRYPTO_SHA256_H_
#define SRC_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>
#include <string>

#include "src/crypto/bytes.h"

namespace bolted::crypto {

using Digest = std::array<uint8_t, 32>;

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  void Update(ByteView data);
  // Finalizes and returns the digest.  The object must not be reused
  // afterwards without Reset().
  Digest Finish();
  void Reset();

  static Digest Hash(ByteView data);
  static Digest Hash(std::string_view data);

 private:
  // Multi-block compression backend, selected once at construction from
  // the cpu feature probe (scalar reference or SHA-NI).  Both produce
  // identical digests; see src/crypto/accel.h.
  void (*compress_)(uint32_t state[8], const uint8_t* blocks, size_t nblocks);

  uint32_t state_[8];
  uint64_t length_ = 0;  // total bytes absorbed
  uint8_t buffer_[64];
  size_t buffered_ = 0;
};

inline ByteView DigestView(const Digest& d) { return ByteView(d.data(), d.size()); }
inline Bytes DigestBytes(const Digest& d) { return Bytes(d.begin(), d.end()); }
std::string DigestHex(const Digest& d);

}  // namespace bolted::crypto

#endif  // SRC_CRYPTO_SHA256_H_
