// Byte-buffer helpers shared by the crypto and protocol code.

#ifndef SRC_CRYPTO_BYTES_H_
#define SRC_CRYPTO_BYTES_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace bolted::crypto {

using Bytes = std::vector<uint8_t>;
using ByteView = std::span<const uint8_t>;

// Lowercase hex encoding.
std::string ToHex(ByteView data);
// Parses lowercase/uppercase hex; returns empty on malformed input of odd
// length or non-hex characters (callers validate out-of-band).
Bytes FromHex(std::string_view hex);

inline Bytes ToBytes(std::string_view s) { return Bytes(s.begin(), s.end()); }

// Constant-time equality; mismatched lengths compare unequal (length is
// not secret in our protocols).
bool ConstantTimeEqual(ByteView a, ByteView b);

// a XOR b; the inputs must have equal length.
Bytes Xor(ByteView a, ByteView b);

// Appends src to dst.
void Append(Bytes& dst, ByteView src);
// Appends a 32/64-bit big-endian integer.
void AppendU32(Bytes& dst, uint32_t v);
void AppendU64(Bytes& dst, uint64_t v);

}  // namespace bolted::crypto

#endif  // SRC_CRYPTO_BYTES_H_
