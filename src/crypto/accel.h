// Internal declarations for the scalar reference kernels and their
// ISA-accelerated counterparts.  Call sites must gate the accelerated
// entry points on cpu::Get(): on non-x86 builds (or CPUs without the
// feature) they are stubs that must never be reached.
//
// Every accelerated kernel is byte-for-byte equivalent to its scalar
// reference; tests/crypto_test.cc verifies this on NIST vectors and
// random sweeps with both backends.

#ifndef SRC_CRYPTO_ACCEL_H_
#define SRC_CRYPTO_ACCEL_H_

#include <cstddef>
#include <cstdint>

namespace bolted::crypto::internal {

// ---------------------------------------------------------------- SHA-256

// FIPS 180-4 round constants (defined in sha256.cc, shared with the
// SHA-NI schedule).
extern const uint32_t kSha256K[64];

using Sha256CompressFn = void (*)(uint32_t state[8], const uint8_t* blocks,
                                  size_t nblocks);

// Portable reference compression over `nblocks` consecutive 64-byte blocks.
void Sha256CompressScalar(uint32_t state[8], const uint8_t* blocks, size_t nblocks);
// SHA-NI compression (requires cpu::Get().shani).
void Sha256CompressShaNi(uint32_t state[8], const uint8_t* blocks, size_t nblocks);

// ------------------------------------------------------------- AES-256-NI
//
// Round keys travel as the 240-byte serialized schedule (15 round keys of
// 16 bytes, encryption order); the decryption schedule is the AESIMC
// ("equivalent inverse cipher") transform of the reversed encryption
// schedule.  All entry points require cpu::Get().aesni.

inline constexpr size_t kAesRoundKeyBytes = 240;  // (14 + 1) * 16

void AesNiMakeDecryptKeys(const uint8_t enc_rk[kAesRoundKeyBytes],
                          uint8_t dec_rk[kAesRoundKeyBytes]);
// ECB encrypt/decrypt of `nblocks` 16-byte blocks, pipelined 8 wide.
void AesNiEncryptBlocks(const uint8_t enc_rk[kAesRoundKeyBytes], const uint8_t* in,
                        uint8_t* out, size_t nblocks);
void AesNiDecryptBlocks(const uint8_t dec_rk[kAesRoundKeyBytes], const uint8_t* in,
                        uint8_t* out, size_t nblocks);

// One XTS sector, in place.  `data_rk` is the data-key schedule matching
// the direction (encryption schedule when encrypt, AESIMC decryption
// schedule otherwise); `tweak_rk` is always an encryption schedule.
// len must be a nonzero multiple of 16.
void AesNiXtsSector(const uint8_t data_rk[kAesRoundKeyBytes],
                    const uint8_t tweak_rk[kAesRoundKeyBytes], uint64_t sector_number,
                    uint8_t* data, size_t len, bool encrypt);

// GCM CTR mode: out = in XOR AES-CTR keystream, counter block =
// nonce (12 bytes) || big-endian 32-bit counter starting at `counter`.
void AesNiCtr32Xor(const uint8_t enc_rk[kAesRoundKeyBytes], const uint8_t nonce[12],
                   uint32_t counter, const uint8_t* in, uint8_t* out, size_t len);

// ----------------------------------------------------------------- GHASH

// Precomputed H-power table H^1..H^4 for the 4-block aggregated reduction.
inline constexpr size_t kGhashTableBytes = 64;

// h is E(K, 0^128) in GCM wire order (big-endian).  Requires pclmul.
void GhashPrecompute(const uint8_t h[16], uint8_t table[kGhashTableBytes]);
// Absorbs `len` bytes (zero-padding the final partial block) into the
// 16-byte GHASH state y.  Requires pclmul.
void GhashUpdateClmul(const uint8_t table[kGhashTableBytes], uint8_t y[16],
                      const uint8_t* data, size_t len);

}  // namespace bolted::crypto::internal

#endif  // SRC_CRYPTO_ACCEL_H_
