// SHA-256 compression using the x86 SHA extensions (SHA-NI).
//
// Compiled with -msha -msse4.1 but only reachable through the dispatch
// layer when cpuid reports the SHA extensions, so plain builds stay safe.
// The block loop keeps the working state in registers across blocks, which
// is where the bulk-hash speedup over the scalar path comes from.

#include "src/crypto/accel.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

namespace bolted::crypto::internal {

void Sha256CompressShaNi(uint32_t state[8], const uint8_t* blocks, size_t nblocks) {
  const __m128i kShuffle = _mm_set_epi64x(0x0c0d0e0f08090a0bULL, 0x0405060700010203ULL);

  // Repack {a..h} into the SHA-NI lane order: STATE0 = ABEF, STATE1 = CDGH.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[0]));
  __m128i state1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(&state[4]));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);        // CDAB
  state1 = _mm_shuffle_epi32(state1, 0x1B);  // EFGH
  __m128i state0 = _mm_alignr_epi8(tmp, state1, 8);  // ABEF
  state1 = _mm_blend_epi16(state1, tmp, 0xF0);       // CDGH

  const __m128i* k = reinterpret_cast<const __m128i*>(kSha256K);

  while (nblocks-- > 0) {
    const __m128i abef_save = state0;
    const __m128i cdgh_save = state1;

    __m128i msg;
    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 0)), kShuffle);
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16)), kShuffle);
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 32)), kShuffle);
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 48)), kShuffle);

    // Rounds 0-3.
    msg = _mm_add_epi32(msg0, _mm_loadu_si128(k + 0));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 4-7.
    msg = _mm_add_epi32(msg1, _mm_loadu_si128(k + 1));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11.
    msg = _mm_add_epi32(msg2, _mm_loadu_si128(k + 2));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15.
    msg = _mm_add_epi32(msg3, _mm_loadu_si128(k + 3));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-51: the same 4-round pattern, message schedule rolling.
    for (int i = 4; i < 13; ++i) {
      msg = _mm_add_epi32(msg0, _mm_loadu_si128(k + i));
      state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
      tmp = _mm_alignr_epi8(msg0, msg3, 4);
      msg1 = _mm_add_epi32(msg1, tmp);
      msg1 = _mm_sha256msg2_epu32(msg1, msg0);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      state0 = _mm_sha256rnds2_epu32(state0, state1, msg);
      msg3 = _mm_sha256msg1_epu32(msg3, msg0);

      const __m128i rotate = msg0;
      msg0 = msg1;
      msg1 = msg2;
      msg2 = msg3;
      msg3 = rotate;
    }

    // Rounds 52-55.
    msg = _mm_add_epi32(msg0, _mm_loadu_si128(k + 13));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg0, msg3, 4);
    msg1 = _mm_add_epi32(msg1, tmp);
    msg1 = _mm_sha256msg2_epu32(msg1, msg0);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 56-59.
    msg = _mm_add_epi32(msg1, _mm_loadu_si128(k + 14));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    tmp = _mm_alignr_epi8(msg1, msg0, 4);
    msg2 = _mm_add_epi32(msg2, tmp);
    msg2 = _mm_sha256msg2_epu32(msg2, msg1);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    // Rounds 60-63.
    msg = _mm_add_epi32(msg2, _mm_loadu_si128(k + 15));
    state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    state0 = _mm_sha256rnds2_epu32(state0, state1, msg);

    state0 = _mm_add_epi32(state0, abef_save);
    state1 = _mm_add_epi32(state1, cdgh_save);
    blocks += 64;
  }

  // Repack ABEF/CDGH back to {a..h}.
  tmp = _mm_shuffle_epi32(state0, 0x1B);         // FEBA
  state1 = _mm_shuffle_epi32(state1, 0xB1);      // DCHG
  state0 = _mm_blend_epi16(tmp, state1, 0xF0);   // DCBA
  state1 = _mm_alignr_epi8(state1, tmp, 8);      // HGFE

  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[0]), state0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(&state[4]), state1);
}

}  // namespace bolted::crypto::internal

#else  // !x86-64

namespace bolted::crypto::internal {

// Unreachable: dispatch never selects SHA-NI off x86-64.
void Sha256CompressShaNi(uint32_t state[8], const uint8_t* blocks, size_t nblocks) {
  Sha256CompressScalar(state, blocks, nblocks);
}

}  // namespace bolted::crypto::internal

#endif
