#include "src/crypto/p256.h"

#include <cassert>

#include "src/crypto/hmac.h"
#include "src/crypto/p256_field.h"

namespace bolted::crypto {
namespace {

using field::Fp;

constexpr std::string_view kPrimeHex =
    "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";
constexpr std::string_view kOrderHex =
    "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551";
constexpr std::string_view kBHex =
    "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b";
constexpr std::string_view kGxHex =
    "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296";
constexpr std::string_view kGyHex =
    "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5";

// Fixed-base comb geometry: 22 twelve-bit windows of 4095 multiples each
// (~5.8 MiB built once per process).  The wide windows trade a one-time
// table build for ladder work: a 256-bit scalar costs at most 22 mixed
// additions and no doublings at all.
constexpr int kCombWindows = 22;
constexpr int kCombRow = 4095;

// Width-w NAF of a 256-bit scalar needs at most 257 digit positions (the
// carry out of the top bit can create one more).
constexpr int kNafDigits = 257;

// Montgomery-domain inverse via binary extended Euclid, compiled into this
// TU so it inlines under the ladder's optimization flags.  a = xR;
// ModInverseOdd yields x^-1 R^-1, and two products by R^2 land on x^-1 R.
U256 InvMontFp(const U256& a, const U256& r2) {
  return Fp::Mul(Fp::Mul(ModInverseOdd(a, Fp::Modulus()), r2), r2);
}

U256 InvMontFn(const U256& a, const U256& r2) {
  using field::Fn;
  return Fn::Mul(Fn::Mul(ModInverseOdd(a, Fn::Modulus()), r2), r2);
}

// Recodes k into width-`width` NAF: every nonzero digit is odd with
// |digit| < 2^{width-1}, and any `width` consecutive digits hold at most
// one nonzero.  Returns the index of the highest nonzero digit, or -1.
int RecodeWnaf(U256 k, int width, int8_t digits[kNafDigits]) {
  for (int i = 0; i < kNafDigits; ++i) {
    digits[i] = 0;
  }
  const uint64_t mask = (uint64_t{1} << width) - 1;
  const uint64_t half = uint64_t{1} << (width - 1);
  uint64_t high = 0;  // virtual bit 256 (adding |d| can carry out)
  int i = 0;
  int last = -1;
  while (!k.IsZero() || high != 0) {
    if (k.IsOdd()) {
      const uint64_t mod = k.limb[0] & mask;
      const int d = mod < half ? static_cast<int>(mod)
                               : static_cast<int>(mod) - static_cast<int>(mask + 1);
      digits[i] = static_cast<int8_t>(d);
      last = i;
      const U256 small{{static_cast<uint64_t>(d < 0 ? -d : d), 0, 0, 0}};
      if (d > 0) {
        SubBorrow(k, small, k);
      } else {
        high += AddCarry(k, small, k);
      }
    }
    k = ShiftRight1(k, high & 1);
    high >>= 1;
    ++i;
  }
  return last;
}

// Extracts the w-th comb window of k: bits [12w, 12w+12).
uint64_t CombWindow(const U256& k, int w) {
  const int bit = 12 * w;
  const int limb = bit >> 6;
  const int shift = bit & 63;
  uint64_t v = k.limb[limb] >> shift;
  if (shift > 52 && limb + 1 < 4) {
    v |= k.limb[limb + 1] << (64 - shift);
  }
  return v & 0xfff;
}

}  // namespace

Bytes EcPoint::Encode() const {
  Bytes out;
  out.reserve(65);
  out.push_back(0x04);
  Append(out, x.ToBytes());
  Append(out, y.ToBytes());
  return out;
}

std::optional<EcPoint> EcPoint::Decode(ByteView encoded) {
  if (encoded.size() != 65 || encoded[0] != 0x04) {
    return std::nullopt;
  }
  EcPoint p;
  p.x = U256::FromBytes(encoded.subspan(1, 32));
  p.y = U256::FromBytes(encoded.subspan(33, 32));
  if (!P256::Instance().IsOnCurve(p)) {
    return std::nullopt;
  }
  return p;
}

Bytes EcdsaSignature::Encode() const {
  Bytes out = r.ToBytes();
  Append(out, s.ToBytes());
  return out;
}

std::optional<EcdsaSignature> EcdsaSignature::Decode(ByteView encoded) {
  if (encoded.size() != 64) {
    return std::nullopt;
  }
  EcdsaSignature sig;
  sig.r = U256::FromBytes(encoded.subspan(0, 32));
  sig.s = U256::FromBytes(encoded.subspan(32, 32));
  return sig;
}

const P256& P256::Instance() {
  static const P256 curve;
  return curve;
}

P256::P256()
    : p_(U256::FromHexString(kPrimeHex)),
      n_(U256::FromHexString(kOrderHex)),
      fp_(p_),
      fn_(n_) {
  b_mont_ = fp_.ToMont(U256::FromHexString(kBHex));
  three_mont_ = fp_.ToMont(U256{{3, 0, 0, 0}});
  g_.x = fp_.ToMont(U256::FromHexString(kGxHex));
  g_.y = fp_.ToMont(U256::FromHexString(kGyHex));
  g_.z = fp_.one_mont();
  // ToMont(x) = x*R, so ToMont(R mod m) = R^2 mod m.
  r2_fp_ = fp_.ToMont(fp_.one_mont());
  r2_fn_ = fn_.ToMont(fn_.one_mont());

  // Build the comb table: row w holds 1..4095 times 2^{12w}·G.  The rows
  // are accumulated in Jacobian coordinates and normalized to affine in
  // one Montgomery-trick batch inversion at the end.
  std::vector<Jacobian> jac(static_cast<size_t>(kCombWindows) * kCombRow);
  Jacobian window_base = g_;
  for (int w = 0; w < kCombWindows; ++w) {
    Jacobian acc = window_base;
    for (int b = 1; b <= kCombRow; ++b) {
      jac[static_cast<size_t>(w) * kCombRow + static_cast<size_t>(b) - 1] = acc;
      AddJacobianFast(acc, window_base);
    }
    window_base = acc;  // 4096 · 2^{12w}·G = 2^{12(w+1)}·G
  }
  fixed_.resize(jac.size());
  NormalizeBatch(jac, fixed_.data());
}

U256 P256::PrivateKeyFromSeed(ByteView seed) const {
  // Hash-and-reduce with a retry counter; the reduction bias is
  // irrelevant for a simulator.
  for (uint32_t counter = 0;; ++counter) {
    Bytes material(seed.begin(), seed.end());
    AppendU32(material, counter);
    const Digest d = Sha256::Hash(material);
    U256 candidate = U256::FromBytes(DigestView(d));
    candidate = fn_.Reduce(candidate);
    if (!candidate.IsZero()) {
      return candidate;
    }
  }
}

bool P256::IsOnCurve(const EcPoint& point) const {
  if (point.infinity) {
    return true;
  }
  if (point.x >= p_ || point.y >= p_) {
    return false;
  }
  const U256 x = fp_.ToMont(point.x);
  const U256 y = fp_.ToMont(point.y);
  // y^2 == x^3 - 3x + b
  const U256 y2 = Fp::Sqr(y);
  const U256 x3 = Fp::Mul(Fp::Sqr(x), x);
  const U256 rhs = Fp::Add(Fp::Sub(x3, Fp::Mul(three_mont_, x)), b_mont_);
  return y2 == rhs;
}

P256::Jacobian P256::ToJacobian(const EcPoint& p) const {
  if (p.infinity) {
    return Jacobian{};
  }
  return Jacobian{fp_.ToMont(p.x), fp_.ToMont(p.y), fp_.one_mont()};
}

EcPoint P256::ToAffine(const Jacobian& p) const {
  if (p.z.IsZero()) {
    return EcPoint{U256::Zero(), U256::Zero(), /*infinity=*/true};
  }
  const U256 z_inv = fp_.Inverse(p.z);
  const U256 z_inv2 = fp_.Sqr(z_inv);
  const U256 z_inv3 = fp_.Mul(z_inv2, z_inv);
  EcPoint out;
  out.x = fp_.FromMont(fp_.Mul(p.x, z_inv2));
  out.y = fp_.FromMont(fp_.Mul(p.y, z_inv3));
  return out;
}

P256::Jacobian P256::Double(const Jacobian& p) const {
  if (p.z.IsZero() || p.y.IsZero()) {
    return Jacobian{};
  }
  // dbl-2001-b for a = -3:
  //   delta = Z^2, gamma = Y^2, beta = X*gamma
  //   alpha = 3*(X-delta)*(X+delta)
  //   X3 = alpha^2 - 8*beta
  //   Z3 = (Y+Z)^2 - gamma - delta
  //   Y3 = alpha*(4*beta - X3) - 8*gamma^2
  const U256 delta = fp_.Sqr(p.z);
  const U256 gamma = fp_.Sqr(p.y);
  const U256 beta = fp_.Mul(p.x, gamma);
  const U256 alpha =
      fp_.Mul(three_mont_, fp_.Mul(fp_.Sub(p.x, delta), fp_.Add(p.x, delta)));

  const U256 beta2 = fp_.Add(beta, beta);
  const U256 beta4 = fp_.Add(beta2, beta2);
  const U256 beta8 = fp_.Add(beta4, beta4);

  Jacobian out;
  out.x = fp_.Sub(fp_.Sqr(alpha), beta8);
  out.z = fp_.Sub(fp_.Sub(fp_.Sqr(fp_.Add(p.y, p.z)), gamma), delta);
  const U256 gamma2 = fp_.Sqr(gamma);
  const U256 gamma2_8 =
      fp_.Add(fp_.Add(fp_.Add(gamma2, gamma2), fp_.Add(gamma2, gamma2)),
              fp_.Add(fp_.Add(gamma2, gamma2), fp_.Add(gamma2, gamma2)));
  out.y = fp_.Sub(fp_.Mul(alpha, fp_.Sub(beta4, out.x)), gamma2_8);
  return out;
}

P256::Jacobian P256::AddPoints(const Jacobian& p, const Jacobian& q) const {
  if (p.z.IsZero()) {
    return q;
  }
  if (q.z.IsZero()) {
    return p;
  }
  const U256 z1z1 = fp_.Sqr(p.z);
  const U256 z2z2 = fp_.Sqr(q.z);
  const U256 u1 = fp_.Mul(p.x, z2z2);
  const U256 u2 = fp_.Mul(q.x, z1z1);
  const U256 s1 = fp_.Mul(fp_.Mul(p.y, q.z), z2z2);
  const U256 s2 = fp_.Mul(fp_.Mul(q.y, p.z), z1z1);
  const U256 h = fp_.Sub(u2, u1);
  const U256 r = fp_.Sub(s2, s1);
  if (h.IsZero()) {
    if (r.IsZero()) {
      return Double(p);
    }
    return Jacobian{};  // P + (-P) = infinity
  }
  const U256 hh = fp_.Sqr(h);
  const U256 hhh = fp_.Mul(h, hh);
  const U256 v = fp_.Mul(u1, hh);

  Jacobian out;
  out.x = fp_.Sub(fp_.Sub(fp_.Sqr(r), hhh), fp_.Add(v, v));
  out.y = fp_.Sub(fp_.Mul(r, fp_.Sub(v, out.x)), fp_.Mul(s1, hhh));
  out.z = fp_.Mul(fp_.Mul(p.z, q.z), h);
  return out;
}

P256::Jacobian P256::ScalarMul(const U256& k, const Jacobian& p) const {
  Jacobian result{};  // infinity
  bool seen_bit = false;
  for (int i = 255; i >= 0; --i) {
    if (seen_bit) {
      result = Double(result);
    }
    if (k.Bit(i)) {
      result = AddPoints(result, p);
      seen_bit = true;
    }
  }
  return result;
}

// --- Fast-path group law ---------------------------------------------------

void P256::DoubleFast(Jacobian& p) const {
  if (p.z.IsZero() || p.y.IsZero()) {
    p = Jacobian{};
    return;
  }
  // Same dbl-2001-b as Double(), with the multiply-by-3 folded into
  // additions: 3M + 5S.
  const U256 delta = Fp::Sqr(p.z);
  const U256 gamma = Fp::Sqr(p.y);
  const U256 beta = Fp::Mul(p.x, gamma);
  const U256 t = Fp::Mul(Fp::Sub(p.x, delta), Fp::Add(p.x, delta));
  const U256 alpha = Fp::Add(Fp::Add(t, t), t);

  const U256 beta2 = Fp::Add(beta, beta);
  const U256 beta4 = Fp::Add(beta2, beta2);
  const U256 beta8 = Fp::Add(beta4, beta4);

  const U256 x3 = Fp::Sub(Fp::Sqr(alpha), beta8);
  const U256 z3 = Fp::Sub(Fp::Sub(Fp::Sqr(Fp::Add(p.y, p.z)), gamma), delta);
  const U256 gamma2 = Fp::Sqr(gamma);
  const U256 gamma2_2 = Fp::Add(gamma2, gamma2);
  const U256 gamma2_4 = Fp::Add(gamma2_2, gamma2_2);
  const U256 gamma2_8 = Fp::Add(gamma2_4, gamma2_4);
  p.y = Fp::Sub(Fp::Mul(alpha, Fp::Sub(beta4, x3)), gamma2_8);
  p.x = x3;
  p.z = z3;
}

void P256::AddJacobianFast(Jacobian& p, const Jacobian& q) const {
  if (p.z.IsZero()) {
    p = q;
    return;
  }
  if (q.z.IsZero()) {
    return;
  }
  const U256 z1z1 = Fp::Sqr(p.z);
  const U256 z2z2 = Fp::Sqr(q.z);
  const U256 u1 = Fp::Mul(p.x, z2z2);
  const U256 u2 = Fp::Mul(q.x, z1z1);
  const U256 s1 = Fp::Mul(Fp::Mul(p.y, q.z), z2z2);
  const U256 s2 = Fp::Mul(Fp::Mul(q.y, p.z), z1z1);
  const U256 h = Fp::Sub(u2, u1);
  const U256 r = Fp::Sub(s2, s1);
  if (h.IsZero()) {
    if (r.IsZero()) {
      DoubleFast(p);
      return;
    }
    p = Jacobian{};  // P + (-P) = infinity
    return;
  }
  const U256 hh = Fp::Sqr(h);
  const U256 hhh = Fp::Mul(h, hh);
  const U256 v = Fp::Mul(u1, hh);
  const U256 x3 = Fp::Sub(Fp::Sub(Fp::Sqr(r), hhh), Fp::Add(v, v));
  p.y = Fp::Sub(Fp::Mul(r, Fp::Sub(v, x3)), Fp::Mul(s1, hhh));
  p.z = Fp::Mul(Fp::Mul(p.z, q.z), h);
  p.x = x3;
}

void P256::AddMixed(Jacobian& p, const AffineMont& q, bool negate) const {
  const U256 qy = negate ? Fp::Neg(q.y) : q.y;
  if (p.z.IsZero()) {
    p = Jacobian{q.x, qy, fp_.one_mont()};
    return;
  }
  // madd (Z2 = 1): 8M + 3S.
  const U256 z1z1 = Fp::Sqr(p.z);
  const U256 u2 = Fp::Mul(q.x, z1z1);
  const U256 s2 = Fp::Mul(Fp::Mul(qy, p.z), z1z1);
  const U256 h = Fp::Sub(u2, p.x);
  const U256 r = Fp::Sub(s2, p.y);
  if (h.IsZero()) {
    if (r.IsZero()) {
      DoubleFast(p);
      return;
    }
    p = Jacobian{};  // P + (-P) = infinity
    return;
  }
  const U256 hh = Fp::Sqr(h);
  const U256 hhh = Fp::Mul(h, hh);
  const U256 v = Fp::Mul(p.x, hh);
  const U256 x3 = Fp::Sub(Fp::Sub(Fp::Sqr(r), hhh), Fp::Add(v, v));
  p.y = Fp::Sub(Fp::Mul(r, Fp::Sub(v, x3)), Fp::Mul(p.y, hhh));
  p.z = Fp::Mul(p.z, h);
  p.x = x3;
}

EcPoint P256::ToAffineFast(const Jacobian& p) const {
  if (p.z.IsZero()) {
    return EcPoint{U256::Zero(), U256::Zero(), /*infinity=*/true};
  }
  const U256 z_inv = InvMontFp(p.z, r2_fp_);
  const U256 z_inv2 = Fp::Sqr(z_inv);
  const U256 z_inv3 = Fp::Mul(z_inv2, z_inv);
  EcPoint out;
  out.x = fp_.FromMont(Fp::Mul(p.x, z_inv2));
  out.y = fp_.FromMont(Fp::Mul(p.y, z_inv3));
  return out;
}

void P256::NormalizeBatch(std::span<const Jacobian> in, AffineMont* out) const {
  // Montgomery trick with one binary inversion: prefix[i] holds the
  // product of all z's before i, so peeling the total inverse back to
  // front yields each individual z^-1 with three products per point.
  std::vector<U256> prefix(in.size());
  U256 acc = fp_.one_mont();
  for (size_t i = 0; i < in.size(); ++i) {
    assert(!in[i].z.IsZero());
    prefix[i] = acc;
    acc = Fp::Mul(acc, in[i].z);
  }
  U256 inv = InvMontFp(acc, r2_fp_);
  for (size_t i = in.size(); i-- > 0;) {
    const U256 z_inv = Fp::Mul(inv, prefix[i]);
    inv = Fp::Mul(inv, in[i].z);
    const U256 z2 = Fp::Sqr(z_inv);
    out[i].x = Fp::Mul(in[i].x, z2);
    out[i].y = Fp::Mul(in[i].y, Fp::Mul(z2, z_inv));
  }
}

void P256::BuildOddMultiples(const EcPoint& p, std::array<AffineMont, 16>& out) const {
  // 1P, 3P, ..., 31P: one doubling plus 15 additions, then one batch
  // normalization so the joint ladder can use mixed additions.
  std::array<Jacobian, 16> jac;
  jac[0] = ToJacobian(p);
  Jacobian twice = jac[0];
  DoubleFast(twice);
  for (size_t i = 1; i < jac.size(); ++i) {
    jac[i] = jac[i - 1];
    AddJacobianFast(jac[i], twice);
  }
  NormalizeBatch(jac, out.data());
}

// --- Scalar multiplication fast paths --------------------------------------

P256::Jacobian P256::MulBaseComb(const U256& k) const {
  // One mixed addition per nonzero 12-bit window; the comb table supplies
  // d · 2^{12w} · G directly, so no doublings at all.
  Jacobian acc{};
  for (int w = 0; w < kCombWindows; ++w) {
    const uint64_t d = CombWindow(k, w);
    if (d != 0) {
      const size_t index = static_cast<size_t>(w) * kCombRow + d - 1;
      AddMixed(acc, fixed_[index], /*negate=*/false);
    }
  }
  return acc;
}

P256::Jacobian P256::MulWnaf(const U256& k, const std::array<AffineMont, 16>& odd) const {
  int8_t digits[kNafDigits];
  const int top = RecodeWnaf(k, /*width=*/6, digits);
  Jacobian acc{};
  for (int i = top; i >= 0; --i) {
    DoubleFast(acc);
    const int d = digits[i];
    if (d != 0) {
      const size_t index = static_cast<size_t>((d < 0 ? -d : d) - 1) / 2;
      AddMixed(acc, odd[index], /*negate=*/d < 0);
    }
  }
  return acc;
}

P256::Jacobian P256::MulShamir(const U256& u1, const U256& u2,
                               const std::array<AffineMont, 16>& q_odd) const {
  // Strauss–Shamir: one shared doubling chain.  u2's digits come from the
  // per-key odd-multiple table (width-6 NAF, |digit| ≤ 31 odd).  u1 rides
  // along for free through the comb: injecting d·G from row 0 at ladder
  // position 12w leaves exactly the doublings that raise it to
  // d·2^{12w}·G, so u1 contributes at most 22 mixed additions and no
  // doublings of its own.
  int8_t q_digits[kNafDigits];
  const int q_top = RecodeWnaf(u2, /*width=*/6, q_digits);
  uint64_t g_windows[kCombWindows];
  int g_top = -1;
  for (int w = 0; w < kCombWindows; ++w) {
    g_windows[w] = CombWindow(u1, w);
    if (g_windows[w] != 0) {
      g_top = 12 * w;
    }
  }
  Jacobian acc{};
  for (int i = g_top > q_top ? g_top : q_top; i >= 0; --i) {
    DoubleFast(acc);
    if (i % 12 == 0) {
      const uint64_t gd = g_windows[i / 12];
      if (gd != 0) {
        AddMixed(acc, fixed_[gd - 1], /*negate=*/false);
      }
    }
    const int qd = q_digits[i];
    if (qd != 0) {
      const size_t index = static_cast<size_t>((qd < 0 ? -qd : qd) - 1) / 2;
      AddMixed(acc, q_odd[index], /*negate=*/qd < 0);
    }
  }
  return acc;
}

P256::Jacobian P256::MulShamirPrepared(
    const U256& u1, const U256& u2,
    const std::array<AffineMont, 128>& q_tables) const {
  // The PreparedKey tables cover 2^{64j}·Q for j ∈ [0, 4), so u2 splits
  // limb-wise into four 64-bit scalars that share one 64-position doubling
  // chain — a quarter of the one-shot ladder's doublings.  u1·G costs no
  // doublings at all: after the chain, each nonzero comb window is added
  // straight from its own table row.
  int8_t digits[4][kNafDigits];
  int top = -1;
  for (int j = 0; j < 4; ++j) {
    const U256 chunk{{u2.limb[j], 0, 0, 0}};
    const int t = RecodeWnaf(chunk, /*width=*/7, digits[j]);
    if (t > top) {
      top = t;
    }
  }
  Jacobian acc{};
  for (int i = top; i >= 0; --i) {
    DoubleFast(acc);
    for (int j = 0; j < 4; ++j) {
      const int d = digits[j][i];
      if (d != 0) {
        const size_t index =
            32 * static_cast<size_t>(j) + static_cast<size_t>((d < 0 ? -d : d) - 1) / 2;
        AddMixed(acc, q_tables[index], /*negate=*/d < 0);
      }
    }
  }
  for (int w = 0; w < kCombWindows; ++w) {
    const uint64_t d = CombWindow(u1, w);
    if (d != 0) {
      AddMixed(acc, fixed_[static_cast<size_t>(w) * kCombRow + d - 1],
               /*negate=*/false);
    }
  }
  return acc;
}

// --- Public API ------------------------------------------------------------

EcPoint P256::PublicKey(const U256& private_key) const {
  return ToAffineFast(MulBaseComb(private_key));
}

EcPoint P256::Multiply(const U256& k, const EcPoint& point) const {
  if (point.infinity || k.IsZero()) {
    return EcPoint{U256::Zero(), U256::Zero(), /*infinity=*/true};
  }
  std::array<AffineMont, 16> odd;
  BuildOddMultiples(point, odd);
  return ToAffineFast(MulWnaf(k, odd));
}

EcPoint P256::MultiplyReference(const U256& k, const EcPoint& point) const {
  return ToAffine(ScalarMul(k, ToJacobian(point)));
}

EcdsaSignature P256::Sign(const U256& private_key, const Digest& message_hash) const {
  return Sign(private_key, message_hash, nullptr);
}

EcdsaSignature P256::Sign(const U256& private_key, const Digest& message_hash,
                          EcPoint* r_point) const {
  const U256 z = fn_.Reduce(U256::FromBytes(DigestView(message_hash)));
  const Bytes priv_bytes = private_key.ToBytes();

  for (uint32_t attempt = 0;; ++attempt) {
    // Deterministic nonce in the spirit of RFC 6979: HMAC over the private
    // key, message hash, and a retry counter.  This derivation is shared
    // with SignReference, and the comb/binary-inverse path below computes
    // the same r and s — signatures stay byte-identical.
    Bytes nonce_input = DigestBytes(message_hash);
    AppendU32(nonce_input, attempt);
    const Digest k_digest = HmacSha256(priv_bytes, nonce_input);
    const U256 k = fn_.Reduce(U256::FromBytes(DigestView(k_digest)));
    if (k.IsZero()) {
      continue;
    }

    const EcPoint kg = ToAffineFast(MulBaseComb(k));
    const U256 r = fn_.Reduce(kg.x);
    if (r.IsZero()) {
      continue;
    }

    // s = k^-1 (z + r*d) mod n, computed in the Montgomery domain of n.
    const U256 k_mont = fn_.ToMont(k);
    const U256 r_mont = fn_.ToMont(r);
    const U256 d_mont = fn_.ToMont(private_key);
    const U256 z_mont = fn_.ToMont(z);
    const U256 sum = field::Fn::Add(z_mont, field::Fn::Mul(r_mont, d_mont));
    const U256 s_mont = field::Fn::Mul(InvMontFn(k_mont, r2_fn_), sum);
    const U256 s = fn_.FromMont(s_mont);
    if (s.IsZero()) {
      continue;
    }
    if (r_point == nullptr) {
      return EcdsaSignature{r, s};
    }
    // Batch-friendly form: (r, s) with nonce point R and (r, n−s) with −R
    // are the same signature, so pick the variant whose R has even y.
    // VerifyBatch's square-root recovery then reconstructs R from r alone.
    EcPoint nonce = kg;
    U256 s_out = s;
    if (kg.y.IsOdd()) {
      SubBorrow(n_, s, s_out);
      SubBorrow(p_, kg.y, nonce.y);
    }
    *r_point = nonce;
    return EcdsaSignature{r, s_out};
  }
}

EcdsaSignature P256::SignReference(const U256& private_key,
                                   const Digest& message_hash) const {
  const U256 z = fn_.Reduce(U256::FromBytes(DigestView(message_hash)));
  const Bytes priv_bytes = private_key.ToBytes();

  for (uint32_t attempt = 0;; ++attempt) {
    Bytes nonce_input = DigestBytes(message_hash);
    AppendU32(nonce_input, attempt);
    const Digest k_digest = HmacSha256(priv_bytes, nonce_input);
    const U256 k = fn_.Reduce(U256::FromBytes(DigestView(k_digest)));
    if (k.IsZero()) {
      continue;
    }

    const EcPoint kg = ToAffine(ScalarMul(k, g_));
    const U256 r = fn_.Reduce(kg.x);
    if (r.IsZero()) {
      continue;
    }

    const U256 k_mont = fn_.ToMont(k);
    const U256 r_mont = fn_.ToMont(r);
    const U256 d_mont = fn_.ToMont(private_key);
    const U256 z_mont = fn_.ToMont(z);
    const U256 sum = fn_.Add(z_mont, fn_.Mul(r_mont, d_mont));
    const U256 s_mont = fn_.Mul(fn_.Inverse(k_mont), sum);
    const U256 s = fn_.FromMont(s_mont);
    if (s.IsZero()) {
      continue;
    }
    return EcdsaSignature{r, s};
  }
}

template <typename Ladder>
bool P256::VerifyCommon(const Digest& message_hash, const EcdsaSignature& signature,
                        const Ladder& ladder) const {
  if (signature.r.IsZero() || signature.s.IsZero() || signature.r >= n_ ||
      signature.s >= n_) {
    return false;
  }
  const U256 z = fn_.Reduce(U256::FromBytes(DigestView(message_hash)));
  const U256 s_mont = fn_.ToMont(signature.s);
  const U256 w_mont = InvMontFn(s_mont, r2_fn_);  // s^-1 in Montgomery form
  const U256 u1 = fn_.FromMont(field::Fn::Mul(fn_.ToMont(z), w_mont));
  const U256 u2 = fn_.FromMont(field::Fn::Mul(fn_.ToMont(signature.r), w_mont));

  const Jacobian sum = ladder(u1, u2);
  if (sum.z.IsZero()) {
    return false;
  }
  // Accept iff x(sum) mod n == r, without leaving Jacobian coordinates:
  // the affine x equals X/Z^2, and x mod n == r means x is r or r + n
  // (the only candidates below p), so test X == candidate * Z^2 instead
  // of paying a field inversion.
  const U256 z2 = Fp::Sqr(sum.z);
  if (Fp::Mul(fp_.ToMont(signature.r), z2) == sum.x) {
    return true;
  }
  U256 r_plus_n;
  if (AddCarry(signature.r, n_, r_plus_n) == 0 && r_plus_n < p_) {
    return Fp::Mul(fp_.ToMont(r_plus_n), z2) == sum.x;
  }
  return false;
}

bool P256::Verify(const EcPoint& public_key, const Digest& message_hash,
                  const EcdsaSignature& signature) const {
  if (!IsOnCurve(public_key) || public_key.infinity) {
    return false;
  }
  std::array<AffineMont, 16> q_odd;
  BuildOddMultiples(public_key, q_odd);
  return VerifyCommon(message_hash, signature, [&](const U256& u1, const U256& u2) {
    return MulShamir(u1, u2, q_odd);
  });
}

std::optional<P256::PreparedKey> P256::Prepare(const EcPoint& public_key) const {
  if (!IsOnCurve(public_key) || public_key.infinity) {
    return std::nullopt;
  }
  PreparedKey key;
  key.point_ = public_key;
  // Four odd-multiple groups, one per 64-bit chunk of the verify scalar:
  // group j holds 1,3,...,63 times 2^{64j}·Q (width-7 NAF).  8 KB per
  // key: a prepared AIK is cached for the node's lifetime, so the wider
  // table trades a one-time 64-addition build and 4 KB of cache footprint
  // for roughly one fewer q-addition per chunk on every verify.
  std::array<Jacobian, 128> jac;
  Jacobian base = ToJacobian(public_key);
  for (int j = 0; j < 4; ++j) {
    Jacobian twice = base;
    DoubleFast(twice);
    jac[32 * j] = base;
    for (int i = 1; i < 32; ++i) {
      jac[32 * j + i] = jac[32 * j + i - 1];
      AddJacobianFast(jac[32 * j + i], twice);
    }
    if (j < 3) {
      for (int k = 0; k < 64; ++k) {
        DoubleFast(base);
      }
    }
  }
  NormalizeBatch(jac, key.odd_.data());
  return key;
}

bool P256::Verify(const PreparedKey& public_key, const Digest& message_hash,
                  const EcdsaSignature& signature) const {
  return VerifyCommon(message_hash, signature, [&](const U256& u1, const U256& u2) {
    return MulShamirPrepared(u1, u2, public_key.odd_);
  });
}

// --- Batch verification ------------------------------------------------------

struct P256::BatchItem {
  const PreparedKey* key = nullptr;
  U256 u1_mont;        // z/s, Montgomery domain of n
  U256 u2_mont;        // r/s, Montgomery domain of n
  AffineMont r_point;  // recovered nonce point R, fp Montgomery affine
  bool batchable = false;
};

namespace {

// a^((p+1)/4) mod p — the square root candidate for p ≡ 3 (mod 4).
// Montgomery domain in and out; the caller re-squares to confirm a was a
// quadratic residue.
U256 SqrtCandidateFp(const U256& a_mont, const U256& one_mont) {
  static const U256 e = U256::FromHexString(
      "3fffffffc000000040000000000000000000000040000000"
      "0000000000000000");
  U256 acc = one_mont;
  bool started = false;
  for (int i = 255; i >= 0; --i) {
    if (started) {
      acc = Fp::Sqr(acc);
    }
    if (e.Bit(i)) {
      acc = started ? Fp::Mul(acc, a_mont) : a_mont;
      started = true;
    }
  }
  return acc;
}

uint64_t Load64BigEndian(const Digest& d) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v = (v << 8) | d[static_cast<size_t>(i)];
  }
  return v;
}

}  // namespace

bool P256::BatchCombinationHolds(const BatchItem* items,
                                 std::span<const size_t> idxs) const {
  // Fiat–Shamir coefficient seed over the sub-batch transcript: the exact
  // (Q, u1, u2, R) tuples the combination will check.  Deterministic, so
  // replays and bisection retries are reproducible.
  Sha256 transcript;
  transcript.Update(ToBytes("bolted-p256-batch-v1"));
  for (const size_t i : idxs) {
    const BatchItem& it = items[i];
    transcript.Update(it.key->point().x.ToBytes());
    transcript.Update(it.key->point().y.ToBytes());
    transcript.Update(it.u1_mont.ToBytes());
    transcript.Update(it.u2_mont.ToBytes());
    transcript.Update(it.r_point.x.ToBytes());
    transcript.Update(it.r_point.y.ToBytes());
  }
  const Digest seed = transcript.Finish();

  // Per item: the 256-bit scalar cᵢ·u2ᵢ split limb-wise over the four
  // PreparedKey table groups (width-7 NAF), and the 64-bit cᵢ itself on
  // Rᵢ (width-4 NAF over odd multiples 1,3,5,7 of R, normalized to
  // affine in one Montgomery-trick batch below).
  const size_t m = idxs.size();
  std::vector<int8_t> q_digits(m * 4 * static_cast<size_t>(kNafDigits));
  std::vector<int8_t> r_digits(m * static_cast<size_t>(kNafDigits));
  std::vector<Jacobian> r_jac(m * 4);
  std::vector<AffineMont> r_tab(m * 4);
  U256 a_mont = U256::Zero();  // Σ cᵢ·u1ᵢ, Montgomery domain of n
  int top = 0;
  for (size_t s = 0; s < m; ++s) {
    const BatchItem& it = items[idxs[s]];
    Bytes c_input = DigestBytes(seed);
    AppendU32(c_input, static_cast<uint32_t>(s));
    uint64_t c64 = Load64BigEndian(Sha256::Hash(c_input));
    if (c64 == 0) {
      c64 = 1;
    }
    const U256 c{{c64, 0, 0, 0}};
    const U256 c_mont = fn_.ToMont(c);
    a_mont = field::Fn::Add(a_mont, field::Fn::Mul(c_mont, it.u1_mont));
    const U256 q_scalar = fn_.FromMont(field::Fn::Mul(c_mont, it.u2_mont));
    for (int j = 0; j < 4; ++j) {
      const U256 chunk{{q_scalar.limb[static_cast<size_t>(j)], 0, 0, 0}};
      const int t = RecodeWnaf(
          chunk, /*width=*/7,
          &q_digits[(s * 4 + static_cast<size_t>(j)) * static_cast<size_t>(kNafDigits)]);
      top = t > top ? t : top;
    }
    const int t = RecodeWnaf(c, /*width=*/4,
                             &r_digits[s * static_cast<size_t>(kNafDigits)]);
    top = t > top ? t : top;

    // Odd multiples 1,3,5,7 of R.  R has order n (it passed the on-curve
    // check and the curve group is prime), so none of them is infinity.
    Jacobian base{it.r_point.x, it.r_point.y, fp_.one_mont()};
    Jacobian twice = base;
    DoubleFast(twice);
    r_jac[s * 4] = base;
    for (size_t k = 1; k < 4; ++k) {
      r_jac[s * 4 + k] = r_jac[s * 4 + k - 1];
      AddJacobianFast(r_jac[s * 4 + k], twice);
    }
  }
  NormalizeBatch(r_jac, r_tab.data());

  // One shared doubling chain for every item's Q and R terms; the ΣG term
  // rides the fixed-base comb afterwards with no doublings of its own.
  Jacobian sum{};
  for (int i = top; i >= 0; --i) {
    DoubleFast(sum);
    for (size_t s = 0; s < m; ++s) {
      const BatchItem& it = items[idxs[s]];
      for (size_t j = 0; j < 4; ++j) {
        const int d =
            q_digits[(s * 4 + j) * static_cast<size_t>(kNafDigits) + static_cast<size_t>(i)];
        if (d != 0) {
          const size_t index =
              32 * j + static_cast<size_t>((d < 0 ? -d : d) - 1) / 2;
          AddMixed(sum, it.key->odd_[index], /*negate=*/d < 0);
        }
      }
      const int d =
          r_digits[s * static_cast<size_t>(kNafDigits) + static_cast<size_t>(i)];
      if (d != 0) {
        const size_t index = s * 4 + static_cast<size_t>((d < 0 ? -d : d) - 1) / 2;
        // The Rᵢ term enters negated: Σ cᵢ(u1ᵢG + u2ᵢQᵢ − Rᵢ) = O.
        AddMixed(sum, r_tab[index], /*negate=*/d > 0);
      }
    }
  }
  const U256 a = fn_.FromMont(a_mont);
  for (int w = 0; w < kCombWindows; ++w) {
    const uint64_t d = CombWindow(a, w);
    if (d != 0) {
      AddMixed(sum, fixed_[static_cast<size_t>(w) * kCombRow + d - 1],
               /*negate=*/false);
    }
  }
  return sum.z.IsZero();
}

bool P256::VerifyBatchRange(const BatchItem* items, const BatchEntry* entries,
                            bool* ok, size_t lo, size_t hi,
                            BatchStats* stats) const {
  std::vector<size_t> idxs;
  idxs.reserve(hi - lo);
  for (size_t i = lo; i < hi; ++i) {
    if (items[i].batchable) {
      idxs.push_back(i);
    }
  }
  if (idxs.empty()) {
    return true;  // every entry in range already settled as invalid
  }
  if (idxs.size() == 1) {
    const size_t i = idxs[0];
    ok[i] = Verify(*entries[i].key, entries[i].message_hash, entries[i].signature);
    return ok[i];
  }
  if (BatchCombinationHolds(items, idxs)) {
    for (const size_t i : idxs) {
      ok[i] = true;
    }
    return true;
  }
  // The combination failed: at least one entry in the range is bad (or
  // carried a wrong R).  Bisect; singletons fall back to the exact
  // sequential verify, so no wrong verdict can survive.
  ++stats->bisections;
  const size_t mid = lo + (hi - lo) / 2;
  const bool left = VerifyBatchRange(items, entries, ok, lo, mid, stats);
  const bool right = VerifyBatchRange(items, entries, ok, mid, hi, stats);
  return left && right;
}

bool P256::VerifyBatch(std::span<const BatchEntry> entries, bool* ok,
                       BatchStats* stats) const {
  const size_t n = entries.size();
  if (n == 0) {
    return true;
  }
  BatchStats local_stats;
  if (stats == nullptr) {
    stats = &local_stats;
  }
  if (n == 1) {
    ok[0] = entries[0].key != nullptr &&
            Verify(*entries[0].key, entries[0].message_hash, entries[0].signature);
    return ok[0];
  }

  const auto on_curve_mont = [&](const U256& x_mont, const U256& y_mont) {
    const U256 y2 = Fp::Sqr(y_mont);
    const U256 x3 = Fp::Mul(Fp::Sqr(x_mont), x_mont);
    return y2 == Fp::Add(Fp::Sub(x3, Fp::Mul(three_mont_, x_mont)), b_mont_);
  };
  // Recovers the nonce point R for one entry: accept the signer's hint if
  // it validates, otherwise take the even-y square root at x = r (then
  // x = r + n when that stays below p).  Returns false when no curve
  // point matches — which proves the signature invalid outright.
  const auto recover_r = [&](const BatchEntry& e, AffineMont* out) -> bool {
    if (e.r_hint != nullptr) {
      const EcPoint& h = *e.r_hint;
      if (!h.infinity && h.x < p_ && h.y < p_ &&
          fn_.Reduce(h.x) == e.signature.r) {
        const U256 hx = fp_.ToMont(h.x);
        const U256 hy = fp_.ToMont(h.y);
        if (on_curve_mont(hx, hy)) {
          out->x = hx;
          out->y = hy;
          return true;
        }
      }
      ++stats->rejected_hints;
    }
    ++stats->sqrt_recoveries;
    for (int attempt = 0; attempt < 2; ++attempt) {
      U256 x = e.signature.r;
      if (attempt == 1 && (AddCarry(e.signature.r, n_, x) != 0 || x >= p_)) {
        break;
      }
      const U256 x_mont = fp_.ToMont(x);
      const U256 rhs = Fp::Add(
          Fp::Sub(Fp::Mul(Fp::Sqr(x_mont), x_mont), Fp::Mul(three_mont_, x_mont)),
          b_mont_);
      U256 y_mont = SqrtCandidateFp(rhs, fp_.one_mont());
      if (Fp::Sqr(y_mont) != rhs) {
        continue;  // x is not on the curve
      }
      if (fp_.FromMont(y_mont).IsOdd()) {
        y_mont = Fp::Neg(y_mont);
      }
      out->x = x_mont;
      out->y = y_mont;
      return true;
    }
    return false;
  };

  // Shape checks plus one batched inversion for every s: prefix products
  // in the Montgomery domain of n, then a single divstep inverse peeled
  // back into the individual w = s⁻¹ values.
  std::vector<BatchItem> items(n);
  std::vector<U256> s_mont(n);
  std::vector<U256> prefix(n);
  U256 acc = fn_.one_mont();
  for (size_t i = 0; i < n; ++i) {
    const BatchEntry& e = entries[i];
    ok[i] = false;
    if (e.key == nullptr || e.signature.r.IsZero() || e.signature.s.IsZero() ||
        e.signature.r >= n_ || e.signature.s >= n_) {
      continue;  // malformed; ok[i] = false is already exact
    }
    items[i].key = e.key;
    s_mont[i] = fn_.ToMont(e.signature.s);
    prefix[i] = acc;
    acc = field::Fn::Mul(acc, s_mont[i]);
  }
  U256 inv = InvMontFn(acc, r2_fn_);
  for (size_t i = n; i-- > 0;) {
    if (items[i].key == nullptr) {
      continue;
    }
    const BatchEntry& e = entries[i];
    const U256 w_mont = field::Fn::Mul(inv, prefix[i]);
    inv = field::Fn::Mul(inv, s_mont[i]);
    const U256 z = fn_.Reduce(U256::FromBytes(DigestView(e.message_hash)));
    items[i].u1_mont = field::Fn::Mul(fn_.ToMont(z), w_mont);
    items[i].u2_mont = field::Fn::Mul(fn_.ToMont(e.signature.r), w_mont);
    items[i].batchable = recover_r(e, &items[i].r_point);
  }

  VerifyBatchRange(items.data(), entries.data(), ok, 0, n, stats);
  bool all = true;
  for (size_t i = 0; i < n; ++i) {
    all = all && ok[i];
  }
  return all;
}

bool P256::VerifyReference(const EcPoint& public_key, const Digest& message_hash,
                           const EcdsaSignature& signature) const {
  if (signature.r.IsZero() || signature.s.IsZero() || signature.r >= n_ ||
      signature.s >= n_) {
    return false;
  }
  if (!IsOnCurve(public_key) || public_key.infinity) {
    return false;
  }

  const U256 z = fn_.Reduce(U256::FromBytes(DigestView(message_hash)));
  const U256 s_mont = fn_.ToMont(signature.s);
  const U256 w_mont = fn_.Inverse(s_mont);  // s^-1 in Montgomery form
  const U256 u1 = fn_.FromMont(fn_.Mul(fn_.ToMont(z), w_mont));
  const U256 u2 = fn_.FromMont(fn_.Mul(fn_.ToMont(signature.r), w_mont));

  const Jacobian sum =
      AddPoints(ScalarMul(u1, g_), ScalarMul(u2, ToJacobian(public_key)));
  if (sum.z.IsZero()) {
    return false;
  }
  const EcPoint affine = ToAffine(sum);
  return fn_.Reduce(affine.x) == signature.r;
}

std::optional<Bytes> P256::SharedSecret(const U256& private_key,
                                        const EcPoint& peer) const {
  if (!IsOnCurve(peer) || peer.infinity) {
    return std::nullopt;
  }
  const EcPoint product = Multiply(private_key, peer);
  if (product.infinity) {
    return std::nullopt;
  }
  return product.x.ToBytes();
}

std::optional<Bytes> P256::SharedSecretReference(const U256& private_key,
                                                 const EcPoint& peer) const {
  if (!IsOnCurve(peer) || peer.infinity) {
    return std::nullopt;
  }
  const Jacobian product = ScalarMul(private_key, ToJacobian(peer));
  if (product.z.IsZero()) {
    return std::nullopt;
  }
  return ToAffine(product).x.ToBytes();
}

}  // namespace bolted::crypto
