#include "src/crypto/p256.h"

#include <cassert>

#include "src/crypto/hmac.h"

namespace bolted::crypto {
namespace {

constexpr std::string_view kPrimeHex =
    "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";
constexpr std::string_view kOrderHex =
    "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551";
constexpr std::string_view kBHex =
    "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b";
constexpr std::string_view kGxHex =
    "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296";
constexpr std::string_view kGyHex =
    "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5";

}  // namespace

Bytes EcPoint::Encode() const {
  Bytes out;
  out.reserve(65);
  out.push_back(0x04);
  Append(out, x.ToBytes());
  Append(out, y.ToBytes());
  return out;
}

std::optional<EcPoint> EcPoint::Decode(ByteView encoded) {
  if (encoded.size() != 65 || encoded[0] != 0x04) {
    return std::nullopt;
  }
  EcPoint p;
  p.x = U256::FromBytes(encoded.subspan(1, 32));
  p.y = U256::FromBytes(encoded.subspan(33, 32));
  if (!P256::Instance().IsOnCurve(p)) {
    return std::nullopt;
  }
  return p;
}

Bytes EcdsaSignature::Encode() const {
  Bytes out = r.ToBytes();
  Append(out, s.ToBytes());
  return out;
}

std::optional<EcdsaSignature> EcdsaSignature::Decode(ByteView encoded) {
  if (encoded.size() != 64) {
    return std::nullopt;
  }
  EcdsaSignature sig;
  sig.r = U256::FromBytes(encoded.subspan(0, 32));
  sig.s = U256::FromBytes(encoded.subspan(32, 32));
  return sig;
}

const P256& P256::Instance() {
  static const P256 curve;
  return curve;
}

P256::P256()
    : p_(U256::FromHexString(kPrimeHex)),
      n_(U256::FromHexString(kOrderHex)),
      fp_(p_),
      fn_(n_) {
  b_mont_ = fp_.ToMont(U256::FromHexString(kBHex));
  three_mont_ = fp_.ToMont(U256{{3, 0, 0, 0}});
  g_.x = fp_.ToMont(U256::FromHexString(kGxHex));
  g_.y = fp_.ToMont(U256::FromHexString(kGyHex));
  g_.z = fp_.one_mont();
}

U256 P256::PrivateKeyFromSeed(ByteView seed) const {
  // Hash-and-reduce with a retry counter; the reduction bias is
  // irrelevant for a simulator.
  for (uint32_t counter = 0;; ++counter) {
    Bytes material(seed.begin(), seed.end());
    AppendU32(material, counter);
    const Digest d = Sha256::Hash(material);
    U256 candidate = U256::FromBytes(DigestView(d));
    candidate = fn_.Reduce(candidate);
    if (!candidate.IsZero()) {
      return candidate;
    }
  }
}

bool P256::IsOnCurve(const EcPoint& point) const {
  if (point.infinity) {
    return true;
  }
  if (point.x >= p_ || point.y >= p_) {
    return false;
  }
  const U256 x = fp_.ToMont(point.x);
  const U256 y = fp_.ToMont(point.y);
  // y^2 == x^3 - 3x + b
  const U256 y2 = fp_.Sqr(y);
  const U256 x3 = fp_.Mul(fp_.Sqr(x), x);
  const U256 rhs = fp_.Add(fp_.Sub(x3, fp_.Mul(three_mont_, x)), b_mont_);
  return y2 == rhs;
}

P256::Jacobian P256::ToJacobian(const EcPoint& p) const {
  if (p.infinity) {
    return Jacobian{};
  }
  return Jacobian{fp_.ToMont(p.x), fp_.ToMont(p.y), fp_.one_mont()};
}

EcPoint P256::ToAffine(const Jacobian& p) const {
  if (p.z.IsZero()) {
    return EcPoint{U256::Zero(), U256::Zero(), /*infinity=*/true};
  }
  const U256 z_inv = fp_.Inverse(p.z);
  const U256 z_inv2 = fp_.Sqr(z_inv);
  const U256 z_inv3 = fp_.Mul(z_inv2, z_inv);
  EcPoint out;
  out.x = fp_.FromMont(fp_.Mul(p.x, z_inv2));
  out.y = fp_.FromMont(fp_.Mul(p.y, z_inv3));
  return out;
}

P256::Jacobian P256::Double(const Jacobian& p) const {
  if (p.z.IsZero() || p.y.IsZero()) {
    return Jacobian{};
  }
  // dbl-2001-b for a = -3:
  //   delta = Z^2, gamma = Y^2, beta = X*gamma
  //   alpha = 3*(X-delta)*(X+delta)
  //   X3 = alpha^2 - 8*beta
  //   Z3 = (Y+Z)^2 - gamma - delta
  //   Y3 = alpha*(4*beta - X3) - 8*gamma^2
  const U256 delta = fp_.Sqr(p.z);
  const U256 gamma = fp_.Sqr(p.y);
  const U256 beta = fp_.Mul(p.x, gamma);
  const U256 alpha =
      fp_.Mul(three_mont_, fp_.Mul(fp_.Sub(p.x, delta), fp_.Add(p.x, delta)));

  const U256 beta2 = fp_.Add(beta, beta);
  const U256 beta4 = fp_.Add(beta2, beta2);
  const U256 beta8 = fp_.Add(beta4, beta4);

  Jacobian out;
  out.x = fp_.Sub(fp_.Sqr(alpha), beta8);
  out.z = fp_.Sub(fp_.Sub(fp_.Sqr(fp_.Add(p.y, p.z)), gamma), delta);
  const U256 gamma2 = fp_.Sqr(gamma);
  const U256 gamma2_8 =
      fp_.Add(fp_.Add(fp_.Add(gamma2, gamma2), fp_.Add(gamma2, gamma2)),
              fp_.Add(fp_.Add(gamma2, gamma2), fp_.Add(gamma2, gamma2)));
  out.y = fp_.Sub(fp_.Mul(alpha, fp_.Sub(beta4, out.x)), gamma2_8);
  return out;
}

P256::Jacobian P256::AddPoints(const Jacobian& p, const Jacobian& q) const {
  if (p.z.IsZero()) {
    return q;
  }
  if (q.z.IsZero()) {
    return p;
  }
  const U256 z1z1 = fp_.Sqr(p.z);
  const U256 z2z2 = fp_.Sqr(q.z);
  const U256 u1 = fp_.Mul(p.x, z2z2);
  const U256 u2 = fp_.Mul(q.x, z1z1);
  const U256 s1 = fp_.Mul(fp_.Mul(p.y, q.z), z2z2);
  const U256 s2 = fp_.Mul(fp_.Mul(q.y, p.z), z1z1);
  const U256 h = fp_.Sub(u2, u1);
  const U256 r = fp_.Sub(s2, s1);
  if (h.IsZero()) {
    if (r.IsZero()) {
      return Double(p);
    }
    return Jacobian{};  // P + (-P) = infinity
  }
  const U256 hh = fp_.Sqr(h);
  const U256 hhh = fp_.Mul(h, hh);
  const U256 v = fp_.Mul(u1, hh);

  Jacobian out;
  out.x = fp_.Sub(fp_.Sub(fp_.Sqr(r), hhh), fp_.Add(v, v));
  out.y = fp_.Sub(fp_.Mul(r, fp_.Sub(v, out.x)), fp_.Mul(s1, hhh));
  out.z = fp_.Mul(fp_.Mul(p.z, q.z), h);
  return out;
}

P256::Jacobian P256::ScalarMul(const U256& k, const Jacobian& p) const {
  Jacobian result{};  // infinity
  bool seen_bit = false;
  for (int i = 255; i >= 0; --i) {
    if (seen_bit) {
      result = Double(result);
    }
    if (k.Bit(i)) {
      result = AddPoints(result, p);
      seen_bit = true;
    }
  }
  return result;
}

EcPoint P256::PublicKey(const U256& private_key) const {
  return ToAffine(ScalarMul(private_key, g_));
}

EcdsaSignature P256::Sign(const U256& private_key, const Digest& message_hash) const {
  const U256 z = fn_.Reduce(U256::FromBytes(DigestView(message_hash)));
  const Bytes priv_bytes = private_key.ToBytes();

  for (uint32_t attempt = 0;; ++attempt) {
    // Deterministic nonce in the spirit of RFC 6979: HMAC over the private
    // key, message hash, and a retry counter.
    Bytes nonce_input = DigestBytes(message_hash);
    AppendU32(nonce_input, attempt);
    const Digest k_digest = HmacSha256(priv_bytes, nonce_input);
    const U256 k = fn_.Reduce(U256::FromBytes(DigestView(k_digest)));
    if (k.IsZero()) {
      continue;
    }

    const EcPoint kg = ToAffine(ScalarMul(k, g_));
    const U256 r = fn_.Reduce(kg.x);
    if (r.IsZero()) {
      continue;
    }

    // s = k^-1 (z + r*d) mod n, computed in the Montgomery domain of n.
    const U256 k_mont = fn_.ToMont(k);
    const U256 r_mont = fn_.ToMont(r);
    const U256 d_mont = fn_.ToMont(private_key);
    const U256 z_mont = fn_.ToMont(z);
    const U256 sum = fn_.Add(z_mont, fn_.Mul(r_mont, d_mont));
    const U256 s_mont = fn_.Mul(fn_.Inverse(k_mont), sum);
    const U256 s = fn_.FromMont(s_mont);
    if (s.IsZero()) {
      continue;
    }
    return EcdsaSignature{r, s};
  }
}

bool P256::Verify(const EcPoint& public_key, const Digest& message_hash,
                  const EcdsaSignature& signature) const {
  if (signature.r.IsZero() || signature.s.IsZero() || signature.r >= n_ ||
      signature.s >= n_) {
    return false;
  }
  if (!IsOnCurve(public_key) || public_key.infinity) {
    return false;
  }

  const U256 z = fn_.Reduce(U256::FromBytes(DigestView(message_hash)));
  const U256 s_mont = fn_.ToMont(signature.s);
  const U256 w_mont = fn_.Inverse(s_mont);  // s^-1 in Montgomery form
  const U256 u1 = fn_.FromMont(fn_.Mul(fn_.ToMont(z), w_mont));
  const U256 u2 = fn_.FromMont(fn_.Mul(fn_.ToMont(signature.r), w_mont));

  const Jacobian sum =
      AddPoints(ScalarMul(u1, g_), ScalarMul(u2, ToJacobian(public_key)));
  if (sum.z.IsZero()) {
    return false;
  }
  const EcPoint affine = ToAffine(sum);
  return fn_.Reduce(affine.x) == signature.r;
}

std::optional<Bytes> P256::SharedSecret(const U256& private_key,
                                        const EcPoint& peer) const {
  if (!IsOnCurve(peer) || peer.infinity) {
    return std::nullopt;
  }
  const Jacobian product = ScalarMul(private_key, ToJacobian(peer));
  if (product.z.IsZero()) {
    return std::nullopt;
  }
  return ToAffine(product).x.ToBytes();
}

}  // namespace bolted::crypto
