// Deterministic random byte generator (HMAC-SHA256 counter construction).
//
// Simulated components derive all key material from a Drbg seeded by the
// simulation's master Rng, keeping experiments reproducible while still
// exercising real cryptography.

#ifndef SRC_CRYPTO_DRBG_H_
#define SRC_CRYPTO_DRBG_H_

#include <cstdint>

#include "src/crypto/bytes.h"
#include "src/crypto/sha256.h"

namespace bolted::crypto {

class Drbg {
 public:
  explicit Drbg(ByteView seed);
  explicit Drbg(uint64_t seed);

  Bytes Generate(size_t length);
  // Mixes additional entropy/context into the state.
  void Reseed(ByteView data);

 private:
  Digest key_;
  uint64_t counter_ = 0;
};

}  // namespace bolted::crypto

#endif  // SRC_CRYPTO_DRBG_H_
