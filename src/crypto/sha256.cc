#include "src/crypto/sha256.h"

#include <cstring>

#include "src/crypto/accel.h"
#include "src/crypto/cpu.h"

namespace bolted::crypto {
namespace internal {

// FIPS 180-4 round constants; shared with the SHA-NI schedule.
const uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

namespace {

uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

}  // namespace

void Sha256CompressScalar(uint32_t state[8], const uint8_t* blocks, size_t nblocks) {
  while (nblocks-- > 0) {
    const uint8_t* block = blocks;
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(block[4 * i]) << 24) |
             (static_cast<uint32_t>(block[4 * i + 1]) << 16) |
             (static_cast<uint32_t>(block[4 * i + 2]) << 8) |
             static_cast<uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      const uint32_t s0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const uint32_t s1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    uint32_t a = state[0];
    uint32_t b = state[1];
    uint32_t c = state[2];
    uint32_t d = state[3];
    uint32_t e = state[4];
    uint32_t f = state[5];
    uint32_t g = state[6];
    uint32_t h = state[7];

    for (int i = 0; i < 64; ++i) {
      const uint32_t s1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
      const uint32_t ch = (e & f) ^ (~e & g);
      const uint32_t temp1 = h + s1 + ch + kSha256K[i] + w[i];
      const uint32_t s0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
      const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }

    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
    blocks += 64;
  }
}

}  // namespace internal

Sha256::Sha256() {
  compress_ = cpu::Get().shani ? &internal::Sha256CompressShaNi
                               : &internal::Sha256CompressScalar;
  Reset();
}

void Sha256::Reset() {
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  length_ = 0;
  buffered_ = 0;
}

void Sha256::Update(ByteView data) {
  length_ += data.size();
  size_t offset = 0;
  if (buffered_ > 0) {
    const size_t take = std::min(data.size(), sizeof(buffer_) - buffered_);
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    offset += take;
    if (buffered_ == sizeof(buffer_)) {
      compress_(state_, buffer_, 1);
      buffered_ = 0;
    }
  }
  // Bulk path: all remaining whole blocks in one backend call, so the
  // SIMD implementation keeps its state in registers across blocks.
  const size_t whole = (data.size() - offset) / 64;
  if (whole > 0) {
    compress_(state_, data.data() + offset, whole);
    offset += whole * 64;
  }
  if (offset < data.size()) {
    std::memcpy(buffer_, data.data() + offset, data.size() - offset);
    buffered_ = data.size() - offset;
  }
}

Digest Sha256::Finish() {
  const uint64_t bit_length = length_ * 8;
  const uint8_t pad_byte = 0x80;
  Update(ByteView(&pad_byte, 1));
  const uint8_t zero = 0;
  while (buffered_ != 56) {
    Update(ByteView(&zero, 1));
  }
  uint8_t len_bytes[8];
  for (int i = 0; i < 8; ++i) {
    len_bytes[i] = static_cast<uint8_t>(bit_length >> (56 - 8 * i));
  }
  Update(ByteView(len_bytes, 8));

  Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(state_[i]);
  }
  return out;
}

Digest Sha256::Hash(ByteView data) {
  Sha256 h;
  h.Update(data);
  return h.Finish();
}

Digest Sha256::Hash(std::string_view data) {
  return Hash(ByteView(reinterpret_cast<const uint8_t*>(data.data()), data.size()));
}

std::string DigestHex(const Digest& d) { return ToHex(DigestView(d)); }

}  // namespace bolted::crypto
