#include "src/machine/machine.h"

#include "src/crypto/bytes.h"

namespace bolted::machine {

Machine::Machine(sim::Simulation& sim, net::Network& network, std::string name,
                 const MachineConfig& config)
    : sim_(sim),
      name_(std::move(name)),
      config_(config),
      endpoint_(network.CreateEndpoint(name_, config.nic_bandwidth_bytes_per_second)),
      rpc_(sim, endpoint_),
      cpu_(sim, static_cast<double>(config.cores) * config.core_hz, name_ + ".cpu"),
      crypto_cpu_(sim, config.core_hz, name_ + ".crypto"),
      tpm_(crypto::ToBytes(name_ + ".tpm"), config.tpm_latency),
      local_disk_(std::make_unique<storage::DiskModel>(
          sim, config.local_disk_sectors,
          config.local_disk_bandwidth_bytes_per_second,
          sim::Duration::Milliseconds(8), name_ + ".disk")),
      peripherals_(PeripheralSet::StandardComplement(name_)) {
  rpc_.Start();
}

void Machine::PowerCycleReset() {
  tpm_.Reset();
  boot_log_.Clear();
  power_state_ = PowerState::kOff;
  memory_dirty_ = true;  // DRAM retains the previous occupant's data
}

void Machine::ReflashFirmware(const firmware::FirmwareImage& image) {
  config_.flash_firmware = image;
}

sim::Task Machine::PowerOnSelfTest() {
  power_state_ = PowerState::kFirmware;
  // SRTM: the platform root of trust measures the flash firmware before
  // executing it.
  MeasureIntoPcr(tpm::kPcrFirmware, config_.flash_firmware.digest,
                 "flash:" + config_.flash_firmware.name);
  // Measurement-capable peripherals (rare; SP 800-193-style) join the
  // chain; everything else is the documented attestation blind spot (§6).
  for (const crypto::Digest& digest : peripherals_.MeasurableDigests()) {
    MeasureIntoPcr(tpm::kPcrFirmwareConfig, digest, "peripheral-fw");
  }
  co_await sim::Delay(sim_, config_.flash_firmware.post_time);
  if (config_.flash_firmware.scrubs_memory && memory_dirty_) {
    co_await ScrubMemory();
  }
}

sim::Task Machine::ScrubMemory() {
  const double seconds = static_cast<double>(config_.memory_bytes) /
                         config_.memory_scrub_bytes_per_second;
  co_await sim::Delay(sim_, sim::Duration::SecondsF(seconds));
  memory_dirty_ = false;
}

void Machine::MeasureIntoPcr(int pcr, const crypto::Digest& digest,
                             const std::string& description) {
  boot_log_.Add(pcr, digest, description);
  tpm_.ExtendPcr(pcr, digest);
}

sim::Task Machine::KexecInto(const crypto::Digest& kernel_digest,
                             const crypto::Digest& initrd_digest) {
  MeasureIntoPcr(tpm::kPcrKernel, kernel_digest, "kexec:kernel");
  MeasureIntoPcr(tpm::kPcrKernel, initrd_digest, "kexec:initrd");
  // kexec itself is fast; the kernel's own boot time is modelled by the
  // boot flow (it depends on where the root disk lives).
  co_await sim::Delay(sim_, sim::Duration::Seconds(2));
  power_state_ = PowerState::kTenantOs;
}

}  // namespace bolted::machine
