// Bare-metal server model.
//
// A Machine bundles the hardware a Bolted node exposes: CPU cores (a fluid
// resource for workloads plus a dedicated crypto core for ESP), memory, a
// NIC on the provider switch, SPI flash holding firmware, a TPM, a local
// disk, and a BMC reachable only by the provider (HIL).  Boot-flow
// coroutines (src/provision) drive its primitives: power-cycle, POST with
// SRTM measurement, chain-loading with iPXE measurement, memory scrub,
// and kexec into a tenant kernel.

#ifndef SRC_MACHINE_MACHINE_H_
#define SRC_MACHINE_MACHINE_H_

#include <memory>
#include <optional>
#include <string>

#include "src/firmware/firmware.h"
#include "src/machine/peripheral.h"
#include "src/net/ipsec.h"
#include "src/net/network.h"
#include "src/net/rpc.h"
#include "src/storage/block_device.h"
#include "src/tpm/event_log.h"
#include "src/tpm/tpm.h"

namespace bolted::machine {

struct MachineConfig {
  int cores = 16;                        // M620: 2x8 cores
  double core_hz = 2.6e9;
  uint64_t memory_bytes = 64ull << 30;   // 64 GB
  double memory_scrub_bytes_per_second = 8e9;
  double nic_bandwidth_bytes_per_second = 1.25e9;  // 10 Gbit
  firmware::FirmwareImage flash_firmware;
  tpm::TpmLatencyModel tpm_latency;
  uint64_t local_disk_sectors = (600ull << 30) / storage::kSectorSize;
  double local_disk_bandwidth_bytes_per_second = 110e6;
};

enum class PowerState {
  kOff,
  kFirmware,   // POST / firmware environment (incl. Heads runtime)
  kAgent,      // attestation agent running pre-kexec
  kTenantOs,   // kexec'd into the tenant's kernel
};

class Machine {
 public:
  Machine(sim::Simulation& sim, net::Network& network, std::string name,
          const MachineConfig& config);

  const std::string& name() const { return name_; }
  const MachineConfig& config() const { return config_; }
  sim::Simulation& simulation() { return sim_; }

  tpm::Tpm& tpm() { return tpm_; }
  net::Endpoint& endpoint() { return endpoint_; }
  net::RpcNode& rpc() { return rpc_; }
  net::Address address() const { return endpoint_.address(); }
  net::SharedResource& cpu() { return cpu_; }
  net::SharedResource& crypto_cpu() { return crypto_cpu_; }
  net::IpsecContext& ipsec() { return ipsec_; }
  tpm::EventLog& boot_log() { return boot_log_; }
  storage::DiskModel& local_disk() { return *local_disk_; }
  PeripheralSet& peripherals() { return peripherals_; }

  PowerState power_state() const { return power_state_; }
  void set_power_state(PowerState state) { power_state_ = state; }

  // --- BMC-level operations (provider/HIL only) -------------------------

  // Cold reset: clears PCRs and the boot log, marks memory dirty (the
  // previous tenant's data is still in DRAM until firmware scrubs it).
  void PowerCycleReset();
  // Reflashing firmware requires BMC access; legitimate for upgrades,
  // also the attack vector attestation must catch.
  void ReflashFirmware(const firmware::FirmwareImage& image);
  const firmware::FirmwareImage& flash_firmware() const {
    return config_.flash_firmware;
  }

  // --- Boot primitives (driven by the boot-flow coroutines) -------------

  // POST: measures the flash firmware into PCR 0 (SRTM) and waits the
  // firmware's POST time.
  sim::Task PowerOnSelfTest();
  // Scrubs all DRAM (LinuxBoot's guarantee to the *next* tenant).
  sim::Task ScrubMemory();
  bool memory_dirty() const { return memory_dirty_; }
  // Measures a downloaded artifact into `pcr` (the modified-iPXE rule:
  // measure before you jump).
  void MeasureIntoPcr(int pcr, const crypto::Digest& digest,
                      const std::string& description);
  // kexec into a tenant kernel: measures kernel+initrd into PCR 8 and
  // transitions to the tenant OS.
  sim::Task KexecInto(const crypto::Digest& kernel_digest,
                      const crypto::Digest& initrd_digest);

 private:
  sim::Simulation& sim_;
  std::string name_;
  MachineConfig config_;
  net::Endpoint& endpoint_;
  net::RpcNode rpc_;
  net::SharedResource cpu_;         // all cores, for workloads
  net::SharedResource crypto_cpu_;  // the ESP core
  net::IpsecContext ipsec_;
  tpm::Tpm tpm_;
  tpm::EventLog boot_log_;
  std::unique_ptr<storage::DiskModel> local_disk_;
  PeripheralSet peripherals_;
  PowerState power_state_ = PowerState::kOff;
  bool memory_dirty_ = false;
};

}  // namespace bolted::machine

#endif  // SRC_MACHINE_MACHINE_H_
