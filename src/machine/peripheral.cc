#include "src/machine/peripheral.h"

namespace bolted::machine {

bool PeripheralSet::Compromise(PeripheralKind kind, std::string_view implant_id) {
  for (PeripheralDevice& device : devices_) {
    if (device.kind == kind) {
      crypto::Sha256 h;
      h.Update(crypto::DigestView(device.firmware_digest));
      h.Update(crypto::ToBytes(implant_id));
      device.firmware_digest = h.Finish();
      device.compromised = true;
      return true;
    }
  }
  return false;
}

bool PeripheralSet::AnyCompromised() const {
  for (const PeripheralDevice& device : devices_) {
    if (device.compromised) {
      return true;
    }
  }
  return false;
}

std::vector<crypto::Digest> PeripheralSet::MeasurableDigests() const {
  std::vector<crypto::Digest> digests;
  for (const PeripheralDevice& device : devices_) {
    if (device.supports_measurement) {
      digests.push_back(device.firmware_digest);
    }
  }
  return digests;
}

PeripheralSet PeripheralSet::StandardComplement(std::string_view host_name) {
  auto digest_for = [&](std::string_view what) {
    crypto::Sha256 h;
    h.Update(crypto::ToBytes(what));
    return h.Finish();
  };
  (void)host_name;  // firmware ships identical across the fleet
  PeripheralSet set;
  set.Add(PeripheralDevice{.kind = PeripheralKind::kNic,
                           .model = "bcm57810-10gbe",
                           .firmware_digest = digest_for("bcm57810-fw-7.10")});
  set.Add(PeripheralDevice{.kind = PeripheralKind::kStorageController,
                           .model = "perc-h710",
                           .firmware_digest = digest_for("perc-h710-fw-21.3")});
  set.Add(PeripheralDevice{.kind = PeripheralKind::kBmc,
                           .model = "idrac7",
                           .firmware_digest = digest_for("idrac7-fw-2.65")});
  return set;
}

}  // namespace bolted::machine
