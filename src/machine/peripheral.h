// Peripheral devices with their own persistent firmware (§6, §9).
//
// The paper is explicit that its prototype cannot attest peripheral
// firmware: NICs, GPUs, storage controllers, and BMCs run code the main
// CPU's SRTM chain never measures, and "there are no standardized and
// implemented methods to attest those ... to an external party."  We
// model that blind spot faithfully: peripherals carry firmware that can
// be compromised, the boot chain does NOT measure it (so attestation
// passes regardless — see tests/peripheral_test.cc), and the §6
// mitigations are expressible:
//
//   * data-path mitigations: disk/network encryption keys bootstrapped by
//     the TPM deny a malicious NIC/storage controller plaintext access;
//   * an opt-in vendor measurement hook models the NIST SP 800-193-style
//     platform-resiliency extensions the paper expects to adopt later.

#ifndef SRC_MACHINE_PERIPHERAL_H_
#define SRC_MACHINE_PERIPHERAL_H_

#include <string>
#include <vector>

#include "src/crypto/sha256.h"

namespace bolted::machine {

enum class PeripheralKind {
  kNic,
  kGpu,
  kStorageController,
  kBmc,
};

struct PeripheralDevice {
  PeripheralKind kind = PeripheralKind::kNic;
  std::string model;
  crypto::Digest firmware_digest{};
  // True once a previous tenant or insider has implanted the firmware.
  bool compromised = false;
  // Whether the device implements an SP 800-193-style measurement
  // interface the host can read (rare in the paper's era).
  bool supports_measurement = false;
};

class PeripheralSet {
 public:
  void Add(PeripheralDevice device) { devices_.push_back(std::move(device)); }
  std::vector<PeripheralDevice>& devices() { return devices_; }
  const std::vector<PeripheralDevice>& devices() const { return devices_; }

  // Implants persistent malware into the first device of the given kind;
  // returns false if absent.  Peripheral firmware survives power cycles
  // and reprovisioning — that is the threat.
  bool Compromise(PeripheralKind kind, std::string_view implant_id);

  bool AnyCompromised() const;

  // The digests a measurement-capable platform would feed into the boot
  // log (only devices with supports_measurement participate; the rest are
  // the blind spot).
  std::vector<crypto::Digest> MeasurableDigests() const;

  // A default M620-like complement: 10 GbE NIC, storage controller, BMC —
  // none measurement-capable (faithful to the paper's hardware).
  static PeripheralSet StandardComplement(std::string_view host_name);

 private:
  std::vector<PeripheralDevice> devices_;
};

}  // namespace bolted::machine

#endif  // SRC_MACHINE_PERIPHERAL_H_
