#include "src/firmware/firmware.h"

namespace bolted::firmware {
namespace {

crypto::Digest BuildDigest(std::string_view domain, std::string_view input) {
  crypto::Sha256 h;
  h.Update(crypto::ToBytes(domain));
  h.Update(crypto::ToBytes(input));
  return h.Finish();
}

}  // namespace

FirmwareImage BuildLinuxBoot(std::string_view source_manifest) {
  return FirmwareImage{
      .name = "linuxboot",
      .digest = BuildDigest("linuxboot-build", source_manifest),
      .post_time = sim::Duration::Seconds(40),
      .deterministic_build = true,
      .scrubs_memory = true,
      .image_bytes = 24ull << 20,  // kernel + initrd runtime
  };
}

FirmwareImage BuildHeadsRuntime(std::string_view source_manifest) {
  FirmwareImage image = BuildLinuxBoot(source_manifest);
  image.name = "heads-runtime";
  image.digest = BuildDigest("heads-runtime-build", source_manifest);
  // Chain-loaded runtime: no POST of its own, only boot time (modelled by
  // the boot flow), but it still scrubs and is deterministic.
  image.post_time = sim::Duration::Zero();
  return image;
}

FirmwareImage VendorUefi(std::string_view vendor_version) {
  return FirmwareImage{
      .name = "vendor-uefi",
      .digest = BuildDigest("vendor-uefi-blob", vendor_version),
      .post_time = sim::Duration::Seconds(240),
      .deterministic_build = false,
      .scrubs_memory = false,
      .image_bytes = 16ull << 20,
  };
}

FirmwareImage ModifiedIpxe(std::string_view version) {
  return FirmwareImage{
      .name = "ipxe-measured",
      .digest = BuildDigest("ipxe-measured", version),
      .post_time = sim::Duration::Zero(),
      .deterministic_build = true,
      .scrubs_memory = false,
      .image_bytes = 1ull << 20,
  };
}

FirmwareImage CompromisedVariant(const FirmwareImage& original,
                                 std::string_view implant_id) {
  FirmwareImage compromised = original;
  crypto::Sha256 h;
  h.Update(crypto::DigestView(original.digest));
  h.Update(crypto::ToBytes(implant_id));
  compromised.digest = h.Finish();
  return compromised;
}

}  // namespace bolted::firmware
