// Firmware artifacts and the measured-boot chain building blocks.
//
// Two firmware families from the paper (§5):
//  * Vendor UEFI: opaque blob, slow POST (~4 min on their R630s), not
//    reproducible — a tenant can only match its digest against the
//    provider-published whitelist.
//  * LinuxBoot/Heads: deterministic build — the digest is a pure function
//    of the source manifest, so a tenant can rebuild from audited source
//    and independently predict the PCR values.  3x faster POST and it
//    scrubs memory before handing the machine over.
//
// iPXE is modelled as the paper modified it: it measures whatever runtime
// it downloads into a TPM PCR before jumping to it, keeping the chain of
// trust unbroken for machines whose flash cannot be reflashed.

#ifndef SRC_FIRMWARE_FIRMWARE_H_
#define SRC_FIRMWARE_FIRMWARE_H_

#include <string>
#include <string_view>

#include "src/crypto/sha256.h"
#include "src/sim/time.h"

namespace bolted::firmware {

struct FirmwareImage {
  std::string name;
  crypto::Digest digest{};       // what gets extended into PCR 0 (or 4)
  sim::Duration post_time;       // power-on self test duration
  bool deterministic_build = false;
  bool scrubs_memory = false;
  uint64_t image_bytes = 0;      // network size when chain-loaded
};

// Deterministically builds LinuxBoot from a source manifest: the digest
// depends only on the manifest, so any party building the same source gets
// the same measurement.  post_time reflects the paper's 40 s.
FirmwareImage BuildLinuxBoot(std::string_view source_manifest);

// The Heads runtime as a network-loadable payload (for machines that keep
// vendor UEFI in flash and chain-load LinuxBoot via iPXE).
FirmwareImage BuildHeadsRuntime(std::string_view source_manifest);

// A vendor UEFI blob: opaque, slow, signed-but-unreproducible.
FirmwareImage VendorUefi(std::string_view vendor_version);

// The iPXE network bootloader (paper-modified to measure its download).
FirmwareImage ModifiedIpxe(std::string_view version);

// A firmware image with a backdoor planted by a previous tenant or rogue
// admin: same name/timing as the original but a different digest —
// attestation is what catches it.
FirmwareImage CompromisedVariant(const FirmwareImage& original,
                                 std::string_view implant_id);

}  // namespace bolted::firmware

#endif  // SRC_FIRMWARE_FIRMWARE_H_
