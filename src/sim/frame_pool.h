// Size-classed freelist for coroutine frames.
//
// Every co_await Delay / Send / Consume in the simulator allocates a
// coroutine frame; under fleet-scale workloads those allocations dominate
// the data-plane profile.  Frames are short-lived and come in a handful
// of sizes (one per coroutine function), so a freelist bucketed by
// rounded size turns the steady state into pointer pops — zero calls
// into the allocator on the frame path.
//
// Single-threaded by design, like the simulator itself: the pool is
// thread-local, so independent simulations on different threads do not
// contend (and tests that run sims on several threads stay correct).
// All chunks are returned to the real allocator at thread exit, keeping
// leak checkers quiet.

#ifndef SRC_SIM_FRAME_POOL_H_
#define SRC_SIM_FRAME_POOL_H_

#include <cstddef>
#include <new>
#include <vector>

namespace bolted::sim::detail {

class FramePool {
 public:
  static void* Allocate(size_t size) {
    const size_t cls = SizeClass(size);
    if (cls >= kNumClasses) {
      return ::operator new(size);
    }
    auto& bucket = Buckets()[cls];
    if (bucket.empty()) {
      return ::operator new((cls + 1) * kGranularity);
    }
    void* chunk = bucket.back();
    bucket.pop_back();
    return chunk;
  }

  static void Deallocate(void* chunk, size_t size) {
    const size_t cls = SizeClass(size);
    if (cls >= kNumClasses) {
      ::operator delete(chunk);
      return;
    }
    auto& bucket = Buckets()[cls];
    if (bucket.size() >= kMaxPerClass) {
      ::operator delete(chunk);  // cap the cache; bursts shrink back
      return;
    }
    bucket.push_back(chunk);
  }

 private:
  // 64-byte granularity covers every coroutine frame in the tree with at
  // most ~15% slack; frames larger than 4 KiB (none today) bypass the
  // pool.
  static constexpr size_t kGranularity = 64;
  static constexpr size_t kNumClasses = 64;
  static constexpr size_t kMaxPerClass = 8192;

  static size_t SizeClass(size_t size) {
    return (size + kGranularity - 1) / kGranularity - 1;
  }

  struct Cache {
    std::vector<void*> buckets[kNumClasses];
    ~Cache() {
      for (auto& bucket : buckets) {
        for (void* chunk : bucket) {
          ::operator delete(chunk);
        }
      }
    }
  };

  static Cache& Instance() {
    static thread_local Cache cache;
    return cache;
  }
  static std::vector<void*>* Buckets() { return Instance().buckets; }
};

}  // namespace bolted::sim::detail

#endif  // SRC_SIM_FRAME_POOL_H_
