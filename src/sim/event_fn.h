// EventFn: a move-only callable for scheduled events with inline storage
// for small captures.
//
// The previous event-queue entry held a std::shared_ptr<std::function>,
// costing two heap allocations (control block + std::function target) per
// scheduled event plus an atomic refcount on every copy.  Almost every
// event in the simulator is a tiny lambda (a coroutine handle, a pointer
// or two), so EventFn stores callables up to kInlineSize bytes in place
// and only falls back to the heap for large captures.  Entries become
// move-only, which the hand-rolled binary heap in Simulation supports
// directly.

#ifndef SRC_SIM_EVENT_FN_H_
#define SRC_SIM_EVENT_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace bolted::sim {

class EventFn {
 public:
  // Sized so Entry (when/seq/id + EventFn) stays within one cache line
  // pair while still fitting every lambda the simulator schedules today.
  static constexpr size_t kInlineSize = 48;

  EventFn() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, EventFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): converting by design
    constexpr bool kFitsInline = sizeof(D) <= kInlineSize &&
                                 alignof(D) <= alignof(std::max_align_t) &&
                                 std::is_nothrow_move_constructible_v<D>;
    if constexpr (kFitsInline) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      Reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void* storage);
    // Moves the callable from src storage into dst storage and destroys
    // the source (for heap targets this is a pointer copy).
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void* storage) noexcept;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* storage) { (*std::launder(reinterpret_cast<D*>(storage)))(); },
      [](void* dst, void* src) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* storage) noexcept {
        std::launder(reinterpret_cast<D*>(storage))->~D();
      }};

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* storage) { (**reinterpret_cast<D**>(storage))(); },
      [](void* dst, void* src) noexcept {
        *reinterpret_cast<D**>(dst) = *reinterpret_cast<D**>(src);
      },
      [](void* storage) noexcept { delete *reinterpret_cast<D**>(storage); }};

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace bolted::sim

#endif  // SRC_SIM_EVENT_FN_H_
