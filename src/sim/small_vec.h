// SmallVec<T, N>: a vector with inline storage for the first N elements.
//
// Hot paths in the kernel and the data plane (per-frame demand lists,
// Event waiter lists) hold a handful of elements almost always; SmallVec
// keeps them on the stack / in the owning object and only touches the
// heap when a workload genuinely exceeds the inline capacity.
//
// The class has user-declared constructors on purpose: GCC 12 miscompiles
// non-trivial *aggregate* temporaries and by-value aggregate parameters in
// coroutines (see the toolchain note in src/sim/task.h), and types with
// user-declared constructors are promoted into coroutine frames correctly.
// SmallVec values may therefore safely cross co_await boundaries by value.

#ifndef SRC_SIM_SMALL_VEC_H_
#define SRC_SIM_SMALL_VEC_H_

#include <cstddef>
#include <new>
#include <utility>

namespace bolted::sim {

template <typename T, size_t N>
class SmallVec {
 public:
  SmallVec() noexcept {}
  SmallVec(SmallVec&& other) noexcept { MoveFrom(other); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      clear();
      ReleaseHeap();
      MoveFrom(other);
    }
    return *this;
  }
  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;
  ~SmallVec() {
    clear();
    ReleaseHeap();
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  size_t size() const { return size_; }
  size_t capacity() const { return capacity_; }
  bool empty() const { return size_ == 0; }

  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& back() { return data_[size_ - 1]; }

  void push_back(const T& value) { emplace_back(value); }
  void push_back(T&& value) { emplace_back(std::move(value)); }

  template <typename... ArgTypes>
  T& emplace_back(ArgTypes&&... args) {
    if (size_ == capacity_) {
      Grow();
    }
    T* slot = data_ + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<ArgTypes>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    --size_;
    data_[size_].~T();
  }

  void clear() {
    while (size_ > 0) {
      pop_back();
    }
  }

 private:
  T* InlineData() { return reinterpret_cast<T*>(inline_storage_); }
  bool IsInline() const {
    return data_ == reinterpret_cast<const T*>(inline_storage_);
  }

  void Grow() {
    const size_t new_capacity = capacity_ * 2;
    T* fresh = static_cast<T*>(::operator new(new_capacity * sizeof(T)));
    for (size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(fresh + i)) T(std::move(data_[i]));
      data_[i].~T();
    }
    ReleaseHeap();
    data_ = fresh;
    capacity_ = new_capacity;
  }

  void ReleaseHeap() {
    if (!IsInline()) {
      ::operator delete(static_cast<void*>(data_));
      data_ = InlineData();
      capacity_ = N;
    }
  }

  // Steals other's heap buffer, or element-moves out of its inline slots;
  // other is left empty (and inline) either way.
  void MoveFrom(SmallVec& other) noexcept {
    if (other.IsInline()) {
      for (size_t i = 0; i < other.size_; ++i) {
        ::new (static_cast<void*>(data_ + i)) T(std::move(other.data_[i]));
        other.data_[i].~T();
      }
      size_ = other.size_;
      other.size_ = 0;
    } else {
      data_ = other.data_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.data_ = other.InlineData();
      other.size_ = 0;
      other.capacity_ = N;
    }
  }

  alignas(T) unsigned char inline_storage_[N * sizeof(T)];
  T* data_ = InlineData();
  size_t size_ = 0;
  size_t capacity_ = N;
};

}  // namespace bolted::sim

#endif  // SRC_SIM_SMALL_VEC_H_
