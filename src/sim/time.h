// Simulated-time primitives for the Bolted discrete-event simulator.
//
// All simulation time is expressed in integer nanoseconds.  Duration and
// Time are distinct strong types so that "a point in time" and "an amount
// of time" cannot be mixed up; the only cross-type operations provided are
// the physically meaningful ones (Time + Duration = Time, Time - Time =
// Duration, and so on).

#ifndef SRC_SIM_TIME_H_
#define SRC_SIM_TIME_H_

#include <cstdint>
#include <limits>
#include <string>

namespace bolted::sim {

// A signed span of simulated time with nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Nanoseconds(int64_t ns) { return Duration(ns); }
  static constexpr Duration Microseconds(int64_t us) { return Duration(us * 1000); }
  static constexpr Duration Milliseconds(int64_t ms) { return Duration(ms * 1000000); }
  static constexpr Duration Seconds(int64_t s) { return Duration(s * 1000000000); }
  static constexpr Duration Minutes(int64_t m) { return Seconds(m * 60); }
  static constexpr Duration SecondsF(double s) {
    return Duration(static_cast<int64_t>(s * 1e9));
  }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Max() {
    return Duration(std::numeric_limits<int64_t>::max());
  }

  constexpr int64_t nanoseconds() const { return ns_; }
  constexpr double ToSecondsF() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double ToMillisecondsF() const { return static_cast<double>(ns_) / 1e6; }

  constexpr Duration operator+(Duration other) const { return Duration(ns_ + other.ns_); }
  constexpr Duration operator-(Duration other) const { return Duration(ns_ - other.ns_); }
  constexpr Duration operator*(int64_t k) const { return Duration(ns_ * k); }
  // Scaling by a real factor (named to avoid int/double overload ambiguity).
  constexpr Duration Scaled(double k) const {
    return Duration(static_cast<int64_t>(static_cast<double>(ns_) * k));
  }
  constexpr Duration operator/(int64_t k) const { return Duration(ns_ / k); }
  constexpr double operator/(Duration other) const {
    return static_cast<double>(ns_) / static_cast<double>(other.ns_);
  }
  constexpr Duration& operator+=(Duration other) {
    ns_ += other.ns_;
    return *this;
  }
  constexpr Duration& operator-=(Duration other) {
    ns_ -= other.ns_;
    return *this;
  }
  constexpr auto operator<=>(const Duration&) const = default;

  // Human-readable rendering with an auto-selected unit, e.g. "3.2s".
  std::string ToString() const;

 private:
  explicit constexpr Duration(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

// An absolute point on the simulated clock.  Time zero is simulation start.
class Time {
 public:
  constexpr Time() = default;

  static constexpr Time FromNanoseconds(int64_t ns) { return Time(ns); }
  static constexpr Time Max() { return Time(std::numeric_limits<int64_t>::max()); }

  constexpr int64_t nanoseconds() const { return ns_; }
  constexpr double ToSecondsF() const { return static_cast<double>(ns_) / 1e9; }

  constexpr Time operator+(Duration d) const { return Time(ns_ + d.nanoseconds()); }
  constexpr Time operator-(Duration d) const { return Time(ns_ - d.nanoseconds()); }
  constexpr Duration operator-(Time other) const {
    return Duration::Nanoseconds(ns_ - other.ns_);
  }
  constexpr auto operator<=>(const Time&) const = default;

  std::string ToString() const;

 private:
  explicit constexpr Time(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

}  // namespace bolted::sim

#endif  // SRC_SIM_TIME_H_
