// Rack-sharded parallel simulation with conservative time synchronization
// (DESIGN.md §12).
//
// The fabric is partitioned into racks; each rack owns a full Simulation
// (its own 8×64 timing wheel, seq counter, Rng stream, and trace digest),
// so the unit of determinism is the rack, not the thread.  Racks are
// grouped into shards — the transport topology — and shards are executed
// by a pool of pinned worker threads.  Because every rack's event stream
// is a pure function of (seed, scenario, routed cross-rack frames), the
// per-rack trace digests are byte-identical for every shard count and
// every worker count: the shards=1, workers=1 configuration is the
// single-threaded oracle the chaos sweep replays against.
//
// Time synchronization is conservative (null-message/LBTS style, run as
// synchronous windows): the inter-rack link latency is the lookahead L.
// Each window, every rack may execute events strictly before
//
//   window_end = (min over all racks of next-event-time) + L,
//
// because any cross-rack frame generated inside the window is sent at
// some t >= min_next with delay >= L, hence delivered at >= window_end —
// it cannot affect the window being executed.  At the window barrier the
// router drains every shard-pair channel, sorts each destination rack's
// inbound frames into the canonical (deliver_ns, src_rack, src_seq)
// order, and schedules them; destination-side seq assignment is therefore
// identical no matter which shard or worker produced the frames.
//
// Cross-shard transport is a netmux-style mesh of single-producer /
// single-consumer ring channels (one per shard pair) with credit-based
// flow control in the firedancer fctl idiom: the producer spends cached
// credits, refreshes them from the consumer's published head when they
// run out, and — since a simulation must never drop or block — spills to
// a producer-owned overflow vector that the router drains at the next
// barrier (counted, so benches can size the rings to make spills rare).
// Consumers also drain opportunistically during the run phase, returning
// credits while producers are still executing.
//
// Thread discipline: a rack is only ever touched by the worker that owns
// its shard (the mapping is fixed for a run), and the run/route phases
// are separated by barriers, so rack Simulations need no locks.  The
// frame handler is invoked on the owning worker and must confine itself
// to the destination rack passed to it.

#ifndef SRC_SIM_SHARD_H_
#define SRC_SIM_SHARD_H_

#include <atomic>
#include <barrier>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/simulation.h"
#include "src/sim/time.h"

namespace bolted::sim {

class ShardedFleet;

// One cross-rack frame.  POD by design: frames travel through shared
// rings between threads, so they carry plain words, not closures — the
// destination rack's frame handler interprets kind/payload.  `bytes` is
// the modeled wire size (accounting only; the latency is the send delay).
struct CrossShardFrame {
  int64_t deliver_ns = 0;  // absolute delivery instant (simulated ns)
  uint64_t payload0 = 0;
  uint64_t payload1 = 0;
  uint32_t src_rack = 0;
  uint32_t dst_rack = 0;
  uint32_t kind = 0;   // application-defined discriminator
  uint32_t bytes = 0;  // modeled wire bytes
  // Per-source-rack send counter; the third key of the canonical inbound
  // sort, so two frames from one rack can never tie.
  uint64_t src_seq = 0;
};

// Lock-free single-producer / single-consumer ring of CrossShardFrames.
// Indices are free-running uint64s; head_ (consumer) and tail_ (producer)
// live on their own cache lines, and each side works against a cached
// copy of the other's index — the fctl credit pattern: TryPush only loads
// head_ when its cached credits run out.
class SpscRing {
 public:
  explicit SpscRing(uint32_t capacity);
  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  uint32_t capacity() const { return mask_ + 1; }

  // Producer side.  False when the ring is full even after refreshing
  // credits (the caller spills to its overflow vector).
  bool TryPush(const CrossShardFrame& frame) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ > mask_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ > mask_) {
        return false;  // out of credits
      }
    }
    slots_[tail & mask_] = frame;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side.  False when the ring is empty.
  bool TryPop(CrossShardFrame* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) {
        return false;
      }
    }
    *out = slots_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

 private:
  std::vector<CrossShardFrame> slots_;
  uint32_t mask_ = 0;
  alignas(64) std::atomic<uint64_t> head_{0};  // consumer cursor
  alignas(64) uint64_t cached_tail_ = 0;       // consumer's view of tail_
  alignas(64) std::atomic<uint64_t> tail_{0};  // producer cursor
  alignas(64) uint64_t cached_head_ = 0;       // producer's credit base
};

// Persistent team of worker threads.  Thread 0 is the calling thread, so
// WorkerPool(1) is a plain inline call with no thread machinery — the
// single-threaded oracle path.  Reused across calls (the sharded fleet
// dispatches one RunOnAll per Run, the fleet verifier one per poll
// round), so worker threads keep their core pinning and warm caches.
class WorkerPool {
 public:
  // Spawns threads-1 workers; with pin=true each thread (including the
  // caller, as thread 0) is pinned to core t % hardware_concurrency —
  // best effort, skipped on single-core hosts and non-Linux platforms.
  explicit WorkerPool(uint32_t threads, bool pin = false);
  ~WorkerPool();
  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  uint32_t threads() const { return threads_; }

  // Invokes job(t) for every t in [0, threads) concurrently — t = 0 runs
  // on the calling thread — and returns when all invocations finished.
  // Not reentrant; one RunOnAll at a time.
  void RunOnAll(const std::function<void(uint32_t)>& job);

 private:
  void WorkerMain(uint32_t index);
  static void PinTo(uint32_t index);

  uint32_t threads_;
  bool pin_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(uint32_t)>* job_ = nullptr;
  uint64_t epoch_ = 0;
  uint32_t done_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

struct ShardOptions {
  uint32_t racks = 1;
  // Rack partitions (the ring-channel topology).  Rack r belongs to the
  // shard owning the contiguous stripe containing r.  Clamped to racks.
  uint32_t shards = 1;
  // Worker threads executing shards (shard s runs on worker s % workers).
  // 0 means one worker per shard.  Clamped to shards.
  uint32_t workers = 0;
  // Conservative lookahead: the minimum cross-rack delivery delay.  Every
  // Rack::Send delay must be >= lookahead (checked fatally).
  Duration lookahead = Duration::Microseconds(50);
  uint64_t seed = 0x626f6c746564u;
  // Per shard-pair ring capacity in frames (rounded up to a power of
  // two).  Overflow spills — counted, never dropped.
  uint32_t ring_capacity = 4096;
  bool pin_workers = false;
  SchedulerKind scheduler = SchedulerKind::kDefault;
};

// One rack: a full Simulation plus its cross-rack egress.  Application
// code receives Rack& (from rack() or the frame handler) and drives the
// rack's sim exactly like a standalone one.
class Rack {
 public:
  Simulation& sim() { return *sim_; }
  const Simulation& sim() const { return *sim_; }
  uint32_t index() const { return index_; }
  uint32_t shard() const { return shard_; }

  // Sends a cross-rack frame delivered `delay` from now.  delay must be
  // >= the fleet lookahead — that bound is exactly what lets this rack's
  // window run ahead of the destination's clock — so a shorter delay is
  // a conservative-sync violation and aborts.  kind/bytes/payload are
  // application-owned; src/seq/deliver_ns are stamped here.
  void Send(uint32_t dst_rack, Duration delay, uint32_t kind, uint32_t bytes,
            uint64_t payload0 = 0, uint64_t payload1 = 0);

  uint64_t frames_sent() const { return send_seq_; }

 private:
  friend class ShardedFleet;
  std::unique_ptr<Simulation> sim_;
  ShardedFleet* fleet_ = nullptr;
  uint32_t index_ = 0;
  uint32_t shard_ = 0;
  uint64_t send_seq_ = 0;
};

class ShardedFleet {
 public:
  // Invoked on the owning worker when a frame's delivery instant fires in
  // the destination rack's event stream.  Must be safe to call
  // concurrently for *different* racks (capture immutable config; mutate
  // only through the Rack argument and per-rack state).
  using FrameHandler = std::function<void(Rack&, const CrossShardFrame&)>;

  explicit ShardedFleet(const ShardOptions& options);
  ~ShardedFleet();
  ShardedFleet(const ShardedFleet&) = delete;
  ShardedFleet& operator=(const ShardedFleet&) = delete;

  uint32_t num_racks() const { return static_cast<uint32_t>(racks_.size()); }
  uint32_t num_shards() const { return num_shards_; }
  uint32_t num_workers() const { return num_workers_; }
  Duration lookahead() const { return lookahead_; }
  Rack& rack(uint32_t index) { return *racks_[index]; }
  const Rack& rack(uint32_t index) const { return *racks_[index]; }

  void set_frame_handler(FrameHandler handler) { handler_ = std::move(handler); }

  // Runs until every rack's queue drains and no frame is in flight.
  void Run();
  // Runs every event with when <= horizon, then advances each rack's
  // clock to the horizon (mirroring Simulation::RunUntil).
  void RunUntil(Time horizon);

  // --- Aggregate statistics (valid between runs) ---------------------------
  uint64_t events_processed() const;
  uint64_t frames_routed() const { return frames_routed_; }
  // Ring pushes that found no credit and took the overflow path.
  uint64_t ring_spills() const { return ring_spills_; }
  // Conservative windows executed (two barriers each).
  uint64_t windows() const { return windows_; }

  // Per-rack trace digest — THE determinism invariant: byte-identical for
  // every (shards, workers) configuration of the same seeded scenario.
  uint64_t rack_digest(uint32_t rack) const {
    return racks_[rack]->sim().trace_digest();
  }
  // Order-sensitive fold of every rack digest (rack 0 first).
  uint64_t fleet_digest() const;

 private:
  friend class Rack;

  struct ShardState {
    std::vector<uint32_t> racks;  // rack indices owned by this shard
    // Inbound frames staged by opportunistic drains during the run phase;
    // merged with the barrier drain and sorted canonically by the router.
    std::vector<CrossShardFrame> staged;
    std::vector<CrossShardFrame> route_buf;
    // Earliest pending event over this shard's racks (ns; INT64_MAX when
    // idle), recomputed in the route phase.
    int64_t min_next = 0;
    uint64_t events = 0;
    uint64_t routed = 0;
    uint64_t spills = 0;
  };

  SpscRing& ring(uint32_t src_shard, uint32_t dst_shard) {
    return *rings_[src_shard * num_shards_ + dst_shard];
  }
  std::vector<CrossShardFrame>& overflow(uint32_t src, uint32_t dst) {
    return overflow_[src * num_shards_ + dst];
  }

  void Submit(uint32_t src_shard, const CrossShardFrame& frame);
  // Drains rings destined to shard d into its staging buffer (run phase:
  // returns credits early; route phase: completes the window's traffic).
  void DrainInbound(uint32_t d);
  // Sorts shard d's inbound frames canonically and schedules them into
  // their destination racks, then recomputes the shard's min_next.
  void RoutePhase(uint32_t d);
  void RunWindows(int64_t limit_ns);
  void WorkerLoop(uint32_t worker, int64_t limit_ns);
  // Barrier-B completion: reduce shard min_next values into the next
  // window (or set done_).  Runs on exactly one thread, with all route
  // phases happened-before it and it happened-before every unblock.
  void ComputeWindow(int64_t limit_ns);

  struct BarrierCompletion {
    ShardedFleet* fleet;
    void operator()() noexcept;
  };

  Duration lookahead_;
  uint32_t num_shards_ = 1;
  uint32_t num_workers_ = 1;
  FrameHandler handler_;
  std::vector<std::unique_ptr<Rack>> racks_;
  std::vector<ShardState> shards_;
  std::vector<std::unique_ptr<SpscRing>> rings_;      // [src * S + dst]
  std::vector<std::vector<CrossShardFrame>> overflow_;  // [src * S + dst]
  std::unique_ptr<WorkerPool> pool_;
  // Barrier A (run -> route) and barrier B (route -> next window); B's
  // completion computes the next window.  Rebuilt per run call.
  std::unique_ptr<std::barrier<>> run_barrier_;
  std::unique_ptr<std::barrier<BarrierCompletion>> route_barrier_;
  int64_t limit_ns_ = 0;

  // Window state: written only by the barrier completion (one thread,
  // between phases), read by all workers after the barrier — the barrier
  // itself provides the happens-before edges.
  int64_t window_end_ns_ = 0;
  bool done_ = false;
  uint64_t windows_ = 0;
  uint64_t frames_routed_ = 0;
  uint64_t ring_spills_ = 0;
};

}  // namespace bolted::sim

#endif  // SRC_SIM_SHARD_H_
