// Coroutine support for simulation processes.
//
// A Task is a lazily-started coroutine representing one simulated activity
// (a boot sequence, a protocol exchange, a workload phase).  Tasks compose
// in two ways:
//
//   co_await ChildFlow(...);          // run a sub-flow to completion
//   sim.Spawn(ConcurrentFlow(...));   // run detached, owned by the kernel
//
// Awaitables provided here:
//   Delay(sim, d)    -- suspend for d of simulated time
//   Event            -- one-shot broadcast signal
//   Channel<T>       -- unbounded FIFO message queue
//   Semaphore        -- counting semaphore with FIFO waiters
//   TaskGroup        -- spawn-many / wait-all
//
// Everything is single-threaded: suspension and resumption always happen
// on the simulator's event loop, so no synchronisation is required.
//
// TOOLCHAIN CAUTION (GCC 12, verified with a 25-line reproducer): inside
// a coroutine, do not materialise a *non-trivial aggregate* temporary
// (e.g. a plain struct holding a std::string) within a co_await
// full-expression — `co_await Foo(Message{.kind = "x"})` is miscompiled.
// When GCC promotes such full-expression temporaries into the coroutine
// frame it copies them bitwise, so SSO string internals alias the stack
// slot and later moves "steal" a dangling buffer pointer (observed as
// interior-pointer double frees under ASan).  Types with user-declared
// constructors are promoted correctly.  Use a named local and std::move
// it instead; by-value aggregate coroutine *parameters* are affected the
// same way, so route them through std::shared_ptr boxes (see
// net::Endpoint::Send / net::RpcNode::Call).

#ifndef SRC_SIM_TASK_H_
#define SRC_SIM_TASK_H_

#include <coroutine>
#include <cstdint>
#include <exception>
#include <optional>
#include <utility>

#include "src/sim/frame_pool.h"
#include "src/sim/ring_queue.h"
#include "src/sim/simulation.h"
#include "src/sim/small_vec.h"
#include "src/sim/time.h"

namespace bolted::sim {

class [[nodiscard]] Task {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct promise_type {
    // Coroutine frames come from the thread-local size-class pool: in the
    // steady state, spawning a flow costs a freelist pop instead of a
    // trip through the allocator (the sized delete gives the pool the
    // class back for free).
    static void* operator new(size_t size) {
      return detail::FramePool::Allocate(size);
    }
    static void operator delete(void* chunk, size_t size) {
      detail::FramePool::Deallocate(chunk, size);
    }

    Task get_return_object() { return Task(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }

    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(Handle h) noexcept {
        promise_type& p = h.promise();
        p.done = true;
        if (p.continuation) {
          return p.continuation;
        }
        return std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }

    void return_void() {}
    void unhandled_exception() { exception = std::current_exception(); }

    std::coroutine_handle<> continuation;
    std::exception_ptr exception;
    bool done = false;
    bool started = false;
  };

  Task() = default;
  explicit Task(Handle h) : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, nullptr)) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      Destroy();
      handle_ = std::exchange(other.handle_, nullptr);
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { Destroy(); }

  bool valid() const { return handle_ != nullptr; }
  bool done() const { return !handle_ || handle_.promise().done; }

  // Starts a detached task; used by Simulation::Spawn.
  void Start() {
    if (handle_ && !handle_.promise().started) {
      handle_.promise().started = true;
      handle_.resume();
    }
  }

  // Rethrows the task's failure, if any.  Call only on done() tasks.
  void RethrowIfFailed() const {
    if (handle_ && handle_.promise().exception) {
      std::rethrow_exception(handle_.promise().exception);
    }
  }

  struct Awaiter {
    Handle h;
    bool await_ready() const { return !h || h.promise().done; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> cont) {
      promise_type& p = h.promise();
      p.continuation = cont;
      if (!p.started) {
        p.started = true;
        return h;  // symmetric transfer into the child
      }
      return std::noop_coroutine();
    }
    void await_resume() const {
      if (h && h.promise().exception) {
        std::rethrow_exception(h.promise().exception);
      }
    }
  };
  Awaiter operator co_await() const& { return Awaiter{handle_}; }
  Awaiter operator co_await() const&& { return Awaiter{handle_}; }

 private:
  void Destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = nullptr;
    }
  }
  Handle handle_;
};

// Suspends the awaiting coroutine for d of simulated time.  A zero delay
// still yields through the event queue (useful for fairness).
struct DelayAwaiter {
  Simulation& sim;
  Duration d;
  bool await_ready() const { return false; }
  void await_suspend(std::coroutine_handle<> h) {
    sim.Schedule(d, [h]() { h.resume(); });
  }
  void await_resume() const {}
};

inline DelayAwaiter Delay(Simulation& sim, Duration d) { return DelayAwaiter{sim, d}; }
inline DelayAwaiter Yield(Simulation& sim) { return DelayAwaiter{sim, Duration::Zero()}; }

// One-shot broadcast event.  Waiters suspended before Set() are resumed
// (via the event queue) when it fires; waiters after Set() do not suspend.
class Event {
 public:
  explicit Event(Simulation& sim) : sim_(sim) {}
  Event(const Event&) = delete;
  Event& operator=(const Event&) = delete;

  void Set() {
    if (set_) {
      return;
    }
    set_ = true;
    for (std::coroutine_handle<> h : waiters_) {
      sim_.Schedule(Duration::Zero(), [h]() { h.resume(); });
    }
    waiters_.clear();
  }

  void Reset() { set_ = false; }
  bool is_set() const { return set_; }

  struct Awaiter {
    Event& event;
    bool await_ready() const { return event.set_; }
    void await_suspend(std::coroutine_handle<> h) { event.waiters_.push_back(h); }
    void await_resume() const {}
  };
  Awaiter Wait() { return Awaiter{*this}; }
  Awaiter operator co_await() { return Awaiter{*this}; }

 private:
  Simulation& sim_;
  bool set_ = false;
  // Most events have zero or one waiter (RPC completions, Consume
  // grants); inline storage keeps frame-local Events allocation-free.
  SmallVec<std::coroutine_handle<>, 2> waiters_;
};

// Unbounded FIFO channel.  Send never blocks; Recv suspends until a value
// is available.  Values are handed directly to the oldest waiter.  Both
// queues are rings (see ring_queue.h): once an inbox has seen its
// high-water mark, steady-state traffic allocates nothing.
template <typename T>
class Channel {
 public:
  explicit Channel(Simulation& sim) : sim_(sim) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  void Send(T value) {
    if (!waiters_.empty()) {
      RecvAwaiter* waiter = waiters_.front();
      waiters_.pop_front();
      waiter->slot = std::move(value);
      std::coroutine_handle<> h = waiter->handle;
      sim_.Schedule(Duration::Zero(), [h]() { h.resume(); });
      return;
    }
    items_.push_back(std::move(value));
  }

  // Enqueues without waking a waiter; pair with PumpWaiters().  The
  // network's burst delivery uses this two-phase form so that every frame
  // of a sim-time instant lands in its inbox before any receiver runs —
  // the same delivery-then-wake order the event-per-frame path produces.
  void Enqueue(T value) { items_.push_back(std::move(value)); }

  // Hands queued items to queued waiters in FIFO order, resuming each
  // waiter inline (no scheduler round-trip).  The channel is consistent
  // before every resume, so a resumed receiver may Recv, Send, or Enqueue
  // reentrantly; the loop re-checks both queues each iteration.
  void PumpWaiters() {
    while (!waiters_.empty() && !items_.empty()) {
      RecvAwaiter* waiter = waiters_.front();
      waiters_.pop_front();
      waiter->slot = std::move(items_.front());
      items_.pop_front();
      waiter->handle.resume();
    }
  }

  size_t size() const { return items_.size(); }
  bool empty() const { return items_.empty(); }

  struct RecvAwaiter {
    Channel& channel;
    std::optional<T> slot;
    std::coroutine_handle<> handle;

    bool await_ready() {
      if (!channel.items_.empty() && channel.waiters_.empty()) {
        slot = std::move(channel.items_.front());
        channel.items_.pop_front();
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) {
      handle = h;
      channel.waiters_.push_back(this);
    }
    T await_resume() { return std::move(*slot); }
  };
  RecvAwaiter Recv() { return RecvAwaiter{*this, std::nullopt, nullptr}; }

 private:
  friend struct RecvAwaiter;
  Simulation& sim_;
  RingQueue<T> items_;
  RingQueue<RecvAwaiter*> waiters_;
};

// Counting semaphore with strictly FIFO waiters.  Used, e.g., to model the
// prototype's single-airlock limitation (attestation serialisation, Fig 5).
class Semaphore {
 public:
  Semaphore(Simulation& sim, int64_t initial) : sim_(sim), count_(initial) {}
  Semaphore(const Semaphore&) = delete;
  Semaphore& operator=(const Semaphore&) = delete;

  struct Awaiter {
    Semaphore& sem;
    bool await_ready() {
      if (sem.count_ > 0) {
        --sem.count_;
        return true;
      }
      return false;
    }
    void await_suspend(std::coroutine_handle<> h) { sem.waiters_.push_back(h); }
    void await_resume() const {}
  };
  Awaiter Acquire() { return Awaiter{*this}; }

  void Release() {
    if (count_ < 0) {
      // A shrink is outstanding: this permit retires the debt instead of
      // waking a waiter — the pool really is smaller now.
      ++count_;
      return;
    }
    if (!waiters_.empty()) {
      std::coroutine_handle<> h = waiters_.front();
      waiters_.pop_front();
      // Ownership of the permit transfers directly to the waiter.
      sim_.Schedule(Duration::Zero(), [h]() { h.resume(); });
      return;
    }
    ++count_;
  }

  // Elastic resizing (e.g. the provider adding/removing airlock capacity
  // under load).  Growing by n releases up to n waiters immediately;
  // shrinking is lazy: count_ goes negative and in-flight holders' future
  // Release() calls retire the debt, so no holder is ever revoked.
  void AddPermits(int64_t n) {
    for (; n > 0; --n) {
      Release();
    }
    count_ += n;  // n <= 0 here; negative count_ is outstanding debt
  }

  int64_t count() const { return count_; }

 private:
  Simulation& sim_;
  int64_t count_;
  RingQueue<std::coroutine_handle<>> waiters_;
};

// RAII permit for Semaphore.
class SemaphoreGuard {
 public:
  explicit SemaphoreGuard(Semaphore& sem) : sem_(&sem) {}
  SemaphoreGuard(SemaphoreGuard&& other) noexcept : sem_(std::exchange(other.sem_, nullptr)) {}
  SemaphoreGuard(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(const SemaphoreGuard&) = delete;
  SemaphoreGuard& operator=(SemaphoreGuard&&) = delete;
  ~SemaphoreGuard() {
    if (sem_ != nullptr) {
      sem_->Release();
    }
  }

 private:
  Semaphore* sem_;
};

// Spawns several tasks and waits for all of them to finish.
class TaskGroup {
 public:
  explicit TaskGroup(Simulation& sim) : sim_(sim), done_(sim) {}

  void Spawn(Task task) {
    ++outstanding_;
    sim_.Spawn(Wrap(std::move(task)));
  }

  // Awaitable that completes when every spawned task has finished.  Safe
  // to call once after all Spawn() calls.
  Task WaitAll() {
    if (outstanding_ == 0) {
      done_.Set();
    }
    return WaitFlow();
  }

 private:
  Task Wrap(Task inner) {
    co_await inner;
    if (--outstanding_ == 0) {
      done_.Set();
    }
  }
  Task WaitFlow() { co_await done_; }

  Simulation& sim_;
  Event done_;
  int64_t outstanding_ = 0;
};

}  // namespace bolted::sim

#endif  // SRC_SIM_TASK_H_
