#include "src/sim/random.h"

#include <cmath>
#include <numbers>

namespace bolted::sim {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15u;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9u;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebu;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) {
    s = SplitMix64(sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[0] + s_[3], 23) + s_[0];
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % bound;
    }
  }
}

double Rng::NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Exponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * std::numbers::pi * u2);
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace bolted::sim
