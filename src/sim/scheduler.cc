#include "src/sim/scheduler.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string_view>
#include <utility>

namespace bolted::sim {

SchedulerKind ResolveSchedulerKind(SchedulerKind kind) {
  if (kind != SchedulerKind::kDefault) {
    return kind;
  }
  if (const char* env = std::getenv("BOLTED_SCHEDULER")) {
    const std::string_view value(env);
    if (value == "reference") {
      return SchedulerKind::kReference;
    }
    if (value == "wheel") {
      return SchedulerKind::kWheel;
    }
  }
  return SchedulerKind::kWheel;
}

std::unique_ptr<Scheduler> MakeScheduler(SchedulerKind kind) {
  switch (ResolveSchedulerKind(kind)) {
    case SchedulerKind::kReference:
      return std::make_unique<ReferenceScheduler>();
    default:
      return std::make_unique<WheelScheduler>();
  }
}

// --- ReferenceScheduler -----------------------------------------------------

EventId ReferenceScheduler::Schedule(Time /*now*/, Time when, uint64_t seq,
                                     EventFn fn) {
  const EventId id = next_id_++;
  pending_.insert(id);
  heap_.push_back(Entry{when, seq, id, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
  return id;
}

void ReferenceScheduler::Cancel(EventId id) {
  // Removing the id from pending_ is the whole cancellation; the heap
  // entry is dropped lazily when it reaches the top.  Cancelling a fired
  // or already-cancelled id finds nothing to erase, so stale cancels can
  // never accumulate state.  This is safe under re-entrancy: the currently
  // firing event was erased from pending_ before its callback ran, so a
  // callback cancelling a same-tick sibling only ever marks entries that
  // have not fired yet.
  if (pending_.erase(id) != 0) {
    ++dead_in_heap_;
    MaybeCompactHeap();
  }
}

void ReferenceScheduler::MaybeCompactHeap() {
  // Lazy deletion leaves cancelled entries in the heap until they surface
  // at the top.  Workloads that re-arm timers far in the future and cancel
  // them every round (RPC retry timeouts under fault injection) would grow
  // the heap without bound; rebuild once tombstones dominate.
  if (dead_in_heap_ < 64 || dead_in_heap_ * 2 < heap_.size()) {
    return;
  }
  std::erase_if(heap_,
                [this](const Entry& e) { return !pending_.contains(e.id); });
  std::make_heap(heap_.begin(), heap_.end(), std::greater<>());
  dead_in_heap_ = 0;
}

ReferenceScheduler::Entry ReferenceScheduler::PopTop() {
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
  Entry entry = std::move(heap_.back());
  heap_.pop_back();
  return entry;
}

void ReferenceScheduler::DropCancelledTop() {
  while (!heap_.empty() && !pending_.contains(heap_.front().id)) {
    PopTop();
    --dead_in_heap_;
  }
}

bool ReferenceScheduler::PeekNextTime(Time* when) {
  DropCancelledTop();
  if (heap_.empty()) {
    return false;
  }
  *when = heap_.front().when;
  return true;
}

bool ReferenceScheduler::PopNext(Time* when, uint64_t* seq, EventFn* fn) {
  DropCancelledTop();
  if (heap_.empty()) {
    return false;
  }
  Entry entry = PopTop();
  pending_.erase(entry.id);
  *when = entry.when;
  *seq = entry.seq;
  *fn = std::move(entry.fn);
  return true;
}

// --- WheelScheduler ---------------------------------------------------------
//
// Ordering argument (the proof DESIGN.md §10 spells out in full):
//
//  * Placement invariant: a record at level k satisfies
//      when >> (6*(k+1)) == wheel_time_ >> (6*(k+1))   (shares the parent
//      window) and, for k >= 1, when >> (6*k) != wheel_time_ >> (6*k).
//    This holds at insertion by construction and is preserved as
//    wheel_time_ advances, because the cursor never passes the earliest
//    live event and prefix equality is monotone over [wheel_time_, when].
//
//  * Cross-level order: level-k events fire before all level-(k+1) events
//    (their level-(k+1) slot index equals the cursor's, which is strictly
//    below any occupied level-(k+1) slot), and all wheel events fire
//    before all spill events (spill records live in a later 2^48 epoch).
//    Hence the earliest live event is always in the earliest occupied
//    slot of the lowest occupied level — found with two ctz scans.
//
//  * Same-instant order: a level-0 slot spans exactly one nanosecond, so
//    a drained slot is one instant.  Slot lists are not seq-sorted
//    (cascades interleave records scheduled at different times), so the
//    drain batch is sorted by seq once on extraction; events scheduled at
//    the drain instant *during* the drain carry larger seqs than the
//    whole batch and are appended.

WheelScheduler::WheelScheduler() {
  for (auto& level : heads_) {
    std::fill(std::begin(level), std::end(level), kNil);
  }
  for (auto& level : tails_) {
    std::fill(std::begin(level), std::end(level), kNil);
  }
}

uint32_t WheelScheduler::AllocRec(int64_t when, uint64_t seq, EventFn fn) {
  uint32_t index;
  if (!free_recs_.empty()) {
    index = free_recs_.back();
    free_recs_.pop_back();
  } else {
    index = static_cast<uint32_t>(recs_.size());
    recs_.emplace_back();
  }
  Rec& rec = recs_[index];
  rec.when = when;
  rec.seq = seq;
  rec.fn = std::move(fn);
  rec.prev = kNil;
  rec.next = kNil;
  return index;
}

void WheelScheduler::FreeRec(uint32_t index) {
  Rec& rec = recs_[index];
  rec.fn = EventFn();
  rec.state = State::kFree;
  // Bump the generation so any outstanding handle to this slot goes
  // stale; skip 0 on wrap so ids are never 0.
  if (++rec.gen == 0) {
    rec.gen = 1;
  }
  free_recs_.push_back(index);
}

void WheelScheduler::PushSlot(int level, int slot, uint32_t index) {
  Rec& rec = recs_[index];
  rec.state = State::kWheel;
  rec.level = static_cast<uint8_t>(level);
  rec.slot = static_cast<uint8_t>(slot);
  rec.next = kNil;
  rec.prev = tails_[level][slot];
  if (rec.prev != kNil) {
    recs_[rec.prev].next = index;
  } else {
    heads_[level][slot] = index;
  }
  tails_[level][slot] = index;
  occupancy_[level] |= uint64_t{1} << slot;
}

void WheelScheduler::UnlinkFromSlot(uint32_t index) {
  Rec& rec = recs_[index];
  const int level = rec.level;
  const int slot = rec.slot;
  if (rec.prev != kNil) {
    recs_[rec.prev].next = rec.next;
  } else {
    heads_[level][slot] = rec.next;
  }
  if (rec.next != kNil) {
    recs_[rec.next].prev = rec.prev;
  } else {
    tails_[level][slot] = rec.prev;
  }
  if (heads_[level][slot] == kNil) {
    occupancy_[level] &= ~(uint64_t{1} << slot);
  }
}

void WheelScheduler::Place(uint32_t index) {
  Rec& rec = recs_[index];
  const int64_t when = rec.when;
  for (int k = 0; k < kLevels; ++k) {
    const int shift = kSlotBits * (k + 1);
    if ((when >> shift) == (wheel_time_ >> shift)) {
      const int slot =
          static_cast<int>((when >> (kSlotBits * k)) & (kSlots - 1));
      PushSlot(k, slot, index);
      return;
    }
  }
  rec.state = State::kSpill;
  spill_.push_back(SpillEntry{when, rec.seq, index});
  std::push_heap(spill_.begin(), spill_.end(), std::greater<>());
}

EventId WheelScheduler::Schedule(Time now_t, Time when_t, uint64_t seq,
                                 EventFn fn) {
  const int64_t when = when_t.nanoseconds();
  assert(when >= wheel_time_);
  const uint32_t index = AllocRec(when, seq, std::move(fn));
  ++live_;
  if (when == drain_time_) {
    // Scheduled at the instant currently draining (only reachable from a
    // same-instant callback, or by arming an immediate event while the
    // clock sits on an exhausted batch): join the batch.  seq exceeds
    // every entry already there, so appending keeps the batch sorted.
    recs_[index].state = State::kDrain;
    drain_.push_back(index);
    ++drain_live_;
  } else {
    if (live_ == 1) {
      // Queue was empty: snap the cursor up to the clock (the lower bound
      // on every future `when`) so placement doesn't cascade down from
      // wherever the last burst left the wheel.
      wheel_time_ = std::max(wheel_time_, now_t.nanoseconds());
    }
    Place(index);
  }
  return MakeId(recs_[index].gen, index);
}

void WheelScheduler::Cancel(EventId id) {
  const uint32_t index = static_cast<uint32_t>(id & 0xffffffffu);
  const uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (index >= recs_.size()) {
    return;
  }
  Rec& rec = recs_[index];
  if (rec.gen != gen) {
    return;  // stale handle: the event fired (or was cancelled) long ago
  }
  switch (rec.state) {
    case State::kWheel:
      UnlinkFromSlot(index);
      --live_;
      FreeRec(index);
      break;
    case State::kDrain:
      // drain_ holds the index by position; tombstone it and let the
      // drain cursor (or the next refill) reclaim the record.
      rec.state = State::kDead;
      rec.fn = EventFn();
      --drain_live_;
      --live_;
      break;
    case State::kSpill:
      rec.state = State::kDead;
      rec.fn = EventFn();
      ++spill_dead_;
      --live_;
      MaybeCompactSpill();
      break;
    case State::kFree:
    case State::kDead:
      break;  // double cancel of a still-referenced tombstone
  }
}

void WheelScheduler::PruneSpillTop() {
  while (!spill_.empty() && recs_[spill_.front().rec].state == State::kDead) {
    const uint32_t index = spill_.front().rec;
    std::pop_heap(spill_.begin(), spill_.end(), std::greater<>());
    spill_.pop_back();
    --spill_dead_;
    FreeRec(index);
  }
}

void WheelScheduler::MaybeCompactSpill() {
  if (spill_dead_ < 64 || spill_dead_ * 2 < spill_.size()) {
    return;
  }
  std::erase_if(spill_, [this](const SpillEntry& e) {
    if (recs_[e.rec].state == State::kDead) {
      FreeRec(e.rec);
      return true;
    }
    return false;
  });
  std::make_heap(spill_.begin(), spill_.end(), std::greater<>());
  spill_dead_ = 0;
}

bool WheelScheduler::RefillDrain() {
  // Reclaim tombstones left in the exhausted batch (entries cancelled
  // after the cursor passed them, or after the batch's instant fired out).
  for (size_t i = drain_cursor_; i < drain_.size(); ++i) {
    if (recs_[drain_[i]].state == State::kDead) {
      FreeRec(drain_[i]);
    }
  }
  drain_.clear();
  drain_cursor_ = 0;
  drain_live_ = 0;

  for (;;) {
    int level = -1;
    for (int k = 0; k < kLevels; ++k) {
      if (occupancy_[k] != 0) {
        level = k;
        break;
      }
    }

    if (level < 0) {
      // Wheel empty: promote the spill's earliest epoch into the wheel.
      PruneSpillTop();
      if (spill_.empty()) {
        return false;
      }
      const int64_t epoch = spill_.front().when >> kEpochBits;
      wheel_time_ = epoch << kEpochBits;
      while (!spill_.empty() && (spill_.front().when >> kEpochBits) == epoch) {
        const SpillEntry top = spill_.front();
        std::pop_heap(spill_.begin(), spill_.end(), std::greater<>());
        spill_.pop_back();
        if (recs_[top.rec].state == State::kDead) {
          --spill_dead_;
          FreeRec(top.rec);
        } else {
          Place(top.rec);  // same epoch => lands in the wheel
        }
      }
      continue;
    }

    const int slot = std::countr_zero(occupancy_[level]);

    if (level == 0) {
      // One exact instant: move the slot into the drain batch.
      const int64_t t =
          ((wheel_time_ >> kSlotBits) << kSlotBits) | int64_t{slot};
      wheel_time_ = t;
      for (uint32_t index = heads_[0][slot]; index != kNil;) {
        const uint32_t next = recs_[index].next;
        recs_[index].state = State::kDrain;
        drain_.push_back(index);
        index = next;
      }
      heads_[0][slot] = kNil;
      tails_[0][slot] = kNil;
      occupancy_[0] &= ~(uint64_t{1} << slot);
      std::sort(drain_.begin(), drain_.end(),
                [this](uint32_t a, uint32_t b) {
                  return recs_[a].seq < recs_[b].seq;
                });
      drain_live_ = drain_.size();
      drain_time_ = t;
      return true;
    }

    // Cascade: advance the cursor to the start of the earliest occupied
    // slot (no lower level holds anything, so nothing is skipped) and
    // redistribute its records, which now fit below this level.
    const int parent_shift = kSlotBits * (level + 1);
    wheel_time_ = ((wheel_time_ >> parent_shift) << parent_shift) |
                  (int64_t{slot} << (kSlotBits * level));
    uint32_t index = heads_[level][slot];
    heads_[level][slot] = kNil;
    tails_[level][slot] = kNil;
    occupancy_[level] &= ~(uint64_t{1} << slot);
    while (index != kNil) {
      const uint32_t next = recs_[index].next;
      Place(index);
      index = next;
    }
  }
}

bool WheelScheduler::PeekNextTime(Time* when) {
  if (drain_live_ > 0) {
    *when = Time::FromNanoseconds(drain_time_);
    return true;
  }
  // Cross-level order makes the earliest live event sit in the earliest
  // occupied slot of the lowest occupied level; within that slot (a span
  // of 2^(6k) ns for level k) the minimum `when` wins.
  for (int k = 0; k < kLevels; ++k) {
    if (occupancy_[k] == 0) {
      continue;
    }
    const int slot = std::countr_zero(occupancy_[k]);
    int64_t earliest = recs_[heads_[k][slot]].when;
    for (uint32_t index = recs_[heads_[k][slot]].next; index != kNil;
         index = recs_[index].next) {
      earliest = std::min(earliest, recs_[index].when);
    }
    *when = Time::FromNanoseconds(earliest);
    return true;
  }
  PruneSpillTop();
  if (!spill_.empty()) {
    *when = Time::FromNanoseconds(spill_.front().when);
    return true;
  }
  return false;
}

bool WheelScheduler::PopNext(Time* when, uint64_t* seq, EventFn* fn) {
  if (drain_live_ == 0 && !RefillDrain()) {
    return false;
  }
  for (;;) {
    const uint32_t index = drain_[drain_cursor_++];
    Rec& rec = recs_[index];
    if (rec.state == State::kDead) {
      FreeRec(index);
      continue;
    }
    *when = Time::FromNanoseconds(rec.when);
    *seq = rec.seq;
    *fn = std::move(rec.fn);
    --drain_live_;
    --live_;
    FreeRec(index);
    return true;
  }
}

}  // namespace bolted::sim
